package chip

import (
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/sim"
)

func model(backend Backend) *Model {
	return New(sim.NewEngine(), backend, circuit.PaperDurations(), 80)
}

func TestSingleQubitCommit(t *testing.T) {
	m := model(NewStateVec(1, 1))
	m.SetTable(0, []TableEntry{{Role: RoleSingle, Kind: circuit.X, Qubit: 0}})
	m.Commit(0, PortXY, 1, 10)
	if m.Gates != 1 || len(m.Errs) != 0 {
		t.Fatalf("gates=%d errs=%v", m.Gates, m.Errs)
	}
	sv := m.Backend().(*StateVecBackend)
	if sv.State.Prob(0) < 0.999 {
		t.Fatal("X not applied")
	}
}

func TestMeasurementDelivery(t *testing.T) {
	m := model(NewStateVec(1, 1))
	m.SetTable(0, []TableEntry{
		{Role: RoleSingle, Kind: circuit.X, Qubit: 0},
		{Role: RoleMeasure, Kind: circuit.Measure, Qubit: 0, Channel: 3},
	})
	var gotVal uint32
	var gotAt sim.Time
	var gotCh int
	m.SetDelivery(func(node, ch int, val uint32, at sim.Time) {
		gotCh, gotVal, gotAt = ch, val, at
	})
	m.Commit(0, PortXY, 1, 5)
	m.Commit(0, PortRO, 2, 100)
	if m.Measurements != 1 {
		t.Fatal("measurement not counted")
	}
	if gotVal != 1 || gotAt != 180 || gotCh != 3 {
		t.Fatalf("delivery = ch%d val%d at%d", gotCh, gotVal, gotAt)
	}
}

func twoQubitTables(m *Model) {
	m.SetTable(0, []TableEntry{{Role: RoleControl, Kind: circuit.CNOT, Qubit: 0, Partner: 1}})
	m.SetTable(1, []TableEntry{{Role: RoleParticipant, Kind: circuit.CNOT, Qubit: 1, Partner: 0}})
}

func TestTwoQubitCoCommit(t *testing.T) {
	m := model(NewStateVec(2, 1))
	twoQubitTables(m)
	sv := m.Backend().(*StateVecBackend)
	sv.State.X(0)
	m.Commit(0, PortZ, 1, 50)
	if m.Gates != 0 {
		t.Fatal("gate applied with one half")
	}
	m.Commit(1, PortZ, 1, 50)
	if m.Gates != 1 || len(m.Violations) != 0 {
		t.Fatalf("gates=%d violations=%v", m.Gates, m.Violations)
	}
	if sv.State.Prob(1) < 0.999 {
		t.Fatal("CNOT not applied")
	}
	if m.PendingHalves() != 0 {
		t.Fatal("pending halves remain")
	}
}

func TestMisalignedHalvesFlagged(t *testing.T) {
	m := model(NewStateVec(2, 1))
	twoQubitTables(m)
	m.Commit(0, PortZ, 1, 50)
	m.Commit(1, PortZ, 1, 53)
	if len(m.Violations) != 1 {
		t.Fatalf("violations = %v", m.Violations)
	}
	v := m.Violations[0]
	if v.TimeA != 50 || v.TimeB != 53 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestWrongPortRejected(t *testing.T) {
	m := model(NewStateVec(1, 1))
	m.SetTable(0, []TableEntry{{Role: RoleMeasure, Kind: circuit.Measure, Qubit: 0}})
	m.Commit(0, PortXY, 1, 10) // measurement trigger on the XY port
	if len(m.Errs) != 1 {
		t.Fatalf("errs = %v", m.Errs)
	}
}

func TestOccupancyOverlapDetected(t *testing.T) {
	m := model(NewStateVec(1, 1))
	m.SetTable(0, []TableEntry{{Role: RoleSingle, Kind: circuit.H, Qubit: 0}})
	m.Commit(0, PortXY, 1, 10) // busy until 15
	m.Commit(0, PortXY, 1, 12)
	if m.Overlaps != 1 {
		t.Fatalf("overlaps = %d", m.Overlaps)
	}
}

func TestOrderInversionDetected(t *testing.T) {
	m := model(NewSeeded(1))
	m.SetTable(0, []TableEntry{{Role: RoleSingle, Kind: circuit.H, Qubit: 0}})
	m.Commit(0, PortXY, 1, 100)
	m.Commit(0, PortXY, 1, 40)
	if m.OrderInversions != 1 {
		t.Fatalf("inversions = %d", m.OrderInversions)
	}
}

func TestCodewordZeroIsNop(t *testing.T) {
	m := model(NewSeeded(1))
	m.SetTable(0, nil)
	m.Commit(0, PortXY, 0, 10)
	if len(m.Errs) != 0 || m.Gates != 0 {
		t.Fatal("codeword 0 must be ignored")
	}
}

func TestSeededBackendOrderIndependence(t *testing.T) {
	// The same (qubit, repetition) must yield the same outcome no matter
	// when other qubits are measured — the Fig. 15 fairness property.
	a := NewSeeded(9)
	_ = a.Measure(1)
	q0a := []int{a.Measure(0), a.Measure(0)}
	b := NewSeeded(9)
	q0b := []int{b.Measure(0)}
	_ = b.Measure(1)
	q0b = append(q0b, b.Measure(0))
	for i := range q0a {
		if q0a[i] != q0b[i] {
			t.Fatal("seeded outcomes depend on global order")
		}
	}
}

func TestStabilizerBackendReset(t *testing.T) {
	b := NewStabilizer(2, 3)
	b.Apply1(circuit.X, 0, 0)
	b.Apply1(circuit.Reset, 0, 0)
	if out := b.Measure(0); out != 0 {
		t.Fatalf("reset failed: %d", out)
	}
}
