package chip

import (
	"testing"

	"dhisq/internal/circuit"
)

func TestPartitionContract(t *testing.T) {
	p, err := NewPartition(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 9 {
		t.Fatalf("Total = %d, want 9 (6 data + 3 comm)", p.Total())
	}
	for j := 0; j < 3; j++ {
		if got := p.Comm(j); got != 6+j {
			t.Fatalf("Comm(%d) = %d, want %d", j, got, 6+j)
		}
	}
	for q := 0; q < 9; q++ {
		if got := p.IsComm(q); got != (q >= 6) {
			t.Fatalf("IsComm(%d) = %v", q, got)
		}
	}
	// The single-chip degenerate case carries no comm qubits.
	single, err := NewPartition(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Total() != 6 || single.IsComm(5) {
		t.Fatalf("single-chip partition grew comm qubits: total=%d", single.Total())
	}
	for _, bad := range [][2]int{{0, 1}, {4, 0}, {3, 4}, {-1, 2}} {
		if _, err := NewPartition(bad[0], bad[1]); err == nil {
			t.Fatalf("NewPartition(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

// eprTables wires controllers 2 and 3 as the comm-qubit pair of an EPR
// generation between qubits 2 and 3.
func eprTables(m *Model) {
	m.SetTable(2, []TableEntry{{Role: RoleControl, Kind: circuit.EPR, Qubit: 2, Partner: 3}})
	m.SetTable(3, []TableEntry{{Role: RoleParticipant, Kind: circuit.EPR, Qubit: 3, Partner: 2}})
}

// TestEPRCommitPreparesBellPair pins the chip-level semantics of the EPR
// kind: both comm qubits are discarded and re-prepared as (|00>+|11>)/√2
// regardless of their prior state, and the generation counts in EPRPairs.
func TestEPRCommitPreparesBellPair(t *testing.T) {
	m := model(NewStateVec(4, 1))
	eprTables(m)
	sv := m.Backend().(*StateVecBackend)
	sv.State.X(2) // junk the comm qubits so the reset is observable
	m.Commit(2, PortZ, 1, 50)
	if m.EPRPairs != 0 {
		t.Fatal("pair counted with one half committed")
	}
	m.Commit(3, PortZ, 1, 50)
	if m.EPRPairs != 1 || m.Gates != 1 || len(m.Violations) != 0 {
		t.Fatalf("pairs=%d gates=%d violations=%v", m.EPRPairs, m.Gates, m.Violations)
	}
	// Both comm qubits now agree perfectly: P(q2=1) = P(q3=1) = 1/2 and
	// measuring one pins the other.
	if p := sv.State.Prob(2); p < 0.499 || p > 0.501 {
		t.Fatalf("P(q2=1) = %v, want 0.5", p)
	}
	got2 := sv.Measure(2)
	got3 := sv.Measure(3)
	if got2 != got3 {
		t.Fatalf("Bell halves disagree: %d vs %d", got2, got3)
	}
}

// TestEPRLatencyOccupiesCommQubits pins the resource cost: with EPRLatency
// set, a commit that lands on a comm qubit inside the generation window is
// an occupancy overlap; with the window past, it is not.
func TestEPRLatencyOccupiesCommQubits(t *testing.T) {
	m := model(NewStateVec(4, 1))
	m.EPRLatency = 500
	eprTables(m)
	m.SetTable(0, []TableEntry{{Role: RoleSingle, Kind: circuit.X, Qubit: 2}})
	m.Commit(2, PortZ, 1, 50)
	m.Commit(3, PortZ, 1, 50)
	m.Commit(0, PortXY, 1, 300) // inside [50, 550)
	if m.Overlaps != 1 {
		t.Fatalf("overlaps = %d, want the mid-generation commit flagged", m.Overlaps)
	}
	m2 := model(NewStateVec(4, 1))
	m2.EPRLatency = 500
	eprTables(m2)
	m2.SetTable(0, []TableEntry{{Role: RoleSingle, Kind: circuit.X, Qubit: 2}})
	m2.Commit(2, PortZ, 1, 50)
	m2.Commit(3, PortZ, 1, 50)
	m2.Commit(0, PortXY, 1, 600) // past the window
	if m2.Overlaps != 0 {
		t.Fatalf("overlaps = %d after the generation window", m2.Overlaps)
	}
}

// TestCommRNGSeparation pins the herald-RNG split (DESIGN.md §13): with a
// comm boundary set, measuring a communication qubit draws from the
// dedicated herald stream, so the data qubits' main-stream draws are
// unchanged by interleaved herald measurements.
func TestCommRNGSeparation(t *testing.T) {
	type commBackend interface {
		Backend
		CommAware
	}
	for name, mk := range map[string]func() commBackend{
		"statevec":   func() commBackend { return NewStateVec(2, 42) },
		"stabilizer": func() commBackend { return NewStabilizer(2, 42) },
	} {
		plain := mk()
		plain.Apply1(circuit.H, 0, 0)
		want := plain.Measure(0) // first main-stream draw

		split := mk()
		split.SetCommFrom(1)
		split.Apply1(circuit.H, 0, 0)
		split.Apply1(circuit.H, 0, 1)
		split.Measure(1) // herald stream: must not consume a main draw
		if got := split.Measure(0); got != want {
			t.Fatalf("%s: data-qubit draw shifted by a herald measurement: %d vs %d", name, got, want)
		}

		// SetCommFrom(0) disables the split again.
		off := mk()
		off.SetCommFrom(1)
		off.SetCommFrom(0)
		off.Apply1(circuit.H, 0, 1)
		off.Apply1(circuit.H, 0, 0)
		off.Measure(1) // now a main-stream draw
		_ = off.Measure(0)
	}
}
