// Package chip models the quantum device attached to the control fabric: it
// is the CWSink that receives committed codewords from every HISQ core,
// binds them to gate-level actions through per-controller codeword tables
// (the "waveform tables + configuration" of Fig. 10), applies them to a
// pluggable quantum-state backend, and returns measurement results to the
// owning controller's result FIFO.
//
// The chip is also the referee for the paper's central invariant: the two
// halves of a two-qubit gate must commit on the same cycle (§1.1, "a timing
// error of even a few nanoseconds can lead to the failure of a quantum
// gate"). Misaligned halves are counted and surfaced to tests and
// experiments.
package chip

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/sim"
)

// Role distinguishes the two commits of a two-qubit gate.
type Role uint8

const (
	RoleSingle      Role = iota // complete one-qubit action
	RoleControl                 // two-qubit gate, applying side
	RoleParticipant             // two-qubit gate, passive side
	RoleMeasure                 // measurement window trigger
)

// Port classes: the compiler emits gate triggers on the XY port, two-qubit
// (flux/coupler) triggers on the Z port, and measurement triggers on the
// readout port, mirroring the channel classes of the DQCtrl boards (§6.1).
const (
	PortXY = 0
	PortZ  = 1
	PortRO = 2
)

// TableEntry is one row of a controller's codeword table: what committing
// codeword (index+1) on this controller means.
//
// Sym carries the symbolic parameter name for entries whose Param is a
// bindable rotation angle ("" = concrete). It is part of the entry's
// identity on purpose: the compiler interns table entries by value, and
// two different symbols must never share a row even when their current
// Params coincide — otherwise patching one would corrupt the other, and a
// structural artifact would stop being byte-equivalent to a fresh compile
// of the bound circuit.
type TableEntry struct {
	Role    Role
	Kind    circuit.Kind
	Param   float64
	Qubit   int    // acted qubit (global index)
	Partner int    // other qubit for two-qubit gates
	Channel int    // result FIFO channel for measurements
	Sym     string // symbolic parameter name ("" = concrete Param)
}

// Port returns the port class this entry's trigger must arrive on.
func (e TableEntry) Port() int {
	switch e.Role {
	case RoleMeasure:
		return PortRO
	case RoleControl, RoleParticipant:
		return PortZ
	default:
		return PortXY
	}
}

// Backend is the quantum-state substrate the chip applies gates to.
// Implementations: StateVecBackend (exact, small n), StabilizerBackend
// (Clifford, large n), SeededBackend (no state; reproducible outcomes for
// timing-only studies of non-Clifford circuits).
//
// Reset restores the backend to its post-construction state (|0...0>, RNG
// reseeded with the given seed) without reallocating, so a loaded machine
// can be re-run in place shot after shot.
type Backend interface {
	Apply1(kind circuit.Kind, param float64, q int)
	Apply2(kind circuit.Kind, param float64, a, b int)
	Measure(q int) int
	Reset(seed int64)
}

// ResultDelivery pushes a measurement result back to a controller; the
// machine wires it to Controller.PushResult via an engine event.
type ResultDelivery func(node, channel int, value uint32, at sim.Time)

// Violation records a co-commitment failure between two-qubit gate halves.
type Violation struct {
	QubitA, QubitB int
	TimeA, TimeB   sim.Time
}

// Overlap records an operation committed while its qubit was still busy.
type Overlap struct {
	Qubit     int
	At        sim.Time
	BusyUntil sim.Time
	Kind      circuit.Kind
}

// Model is the chip. It implements core.CWSink.
type Model struct {
	eng     *sim.Engine
	backend Backend
	// tables is indexed by controller node id — dense small ints, so a
	// slice; map hashing here was measurable on the per-commit hot path.
	tables  [][]TableEntry
	deliver ResultDelivery

	// MeasLatency is the delay from the measurement trigger commit to the
	// result being available at the controller (window + discrimination).
	MeasLatency sim.Time

	// EPRLatency is the duration an inter-chip EPR-pair generation occupies
	// its two communication qubits (attempt + heralding window). Zero falls
	// back to the two-qubit gate duration.
	EPRLatency sim.Time

	// pending holds the first-arrived half of each two-qubit gate, keyed by
	// the packed unordered qubit pair (low qubit in the high word).
	pending map[uint64]pendingHalf

	// busyUntil tracks per-qubit occupancy to detect scheduler bugs: a
	// commit during another operation's window is an overlap violation.
	// Indexed by qubit, grown on demand; zero means free.
	busyUntil []sim.Time
	durations circuit.Durations

	Gates        uint64
	Measurements uint64
	// EPRPairs counts inter-chip EPR-pair generations (remote-gate resource
	// consumption; surfaced through machine.Result).
	EPRPairs    uint64
	Violations  []Violation
	Overlaps    int
	OverlapInfo []Overlap
	// OrderInversions counts backend applications whose timestamp precedes
	// an already-applied operation on the same qubit (would corrupt state
	// semantics; always zero for compiler-generated programs).
	OrderInversions int
	lastApplied     []sim.Time
	Errs            []error
	// BatchMeas collects per-lane measurement outcomes in commit order when
	// the backend is a LaneBackend (batched-shot mode); empty otherwise.
	BatchMeas []BatchMeas
}

type pendingHalf struct {
	entry TableEntry
	at    sim.Time
}

// New builds a chip model bound to the engine.
func New(eng *sim.Engine, backend Backend, durations circuit.Durations, measLatency sim.Time) *Model {
	return &Model{
		eng:         eng,
		backend:     backend,
		MeasLatency: measLatency,
		pending:     map[uint64]pendingHalf{},
		durations:   durations,
	}
}

// SetTable installs the codeword table for one controller.
func (m *Model) SetTable(node int, table []TableEntry) {
	for len(m.tables) <= node {
		m.tables = append(m.tables, nil)
	}
	m.tables[node] = table
}

// Reset restores the chip to its post-construction state — pending
// two-qubit halves, occupancy tracking, counters and error lists clear, and
// the backend is reset with the given seed. Codeword tables, the delivery
// callback and the calibrated durations survive, so a reset chip re-runs
// the loaded program with fresh quantum state.
func (m *Model) Reset(seed int64) {
	m.backend.Reset(seed)
	clear(m.pending)
	clear(m.busyUntil)
	clear(m.lastApplied)
	m.Gates = 0
	m.Measurements = 0
	m.EPRPairs = 0
	m.Violations = nil
	m.Overlaps = 0
	m.OverlapInfo = nil
	m.OrderInversions = 0
	m.Errs = nil
	m.BatchMeas = nil
}

// SetDelivery installs the result-delivery callback.
func (m *Model) SetDelivery(d ResultDelivery) { m.deliver = d }

// Backend exposes the state substrate (tests inspect it after a run).
func (m *Model) Backend() Backend { return m.backend }

func (m *Model) fail(format string, args ...any) {
	m.Errs = append(m.Errs, fmt.Errorf("chip: "+format, args...))
}

// Commit implements core.CWSink: codeword cw committed on (node, port) at
// cycle `at`.
func (m *Model) Commit(node, port int, cw uint32, at sim.Time) {
	if cw == 0 {
		return // codeword 0 is reserved as a no-op marker
	}
	var table []TableEntry
	if node >= 0 && node < len(m.tables) {
		table = m.tables[node]
	}
	idx := int(cw) - 1
	if idx < 0 || idx >= len(table) {
		m.fail("node %d: codeword %d outside table (%d entries)", node, cw, len(table))
		return
	}
	e := table[idx]
	if want := e.Port(); port != want {
		m.fail("node %d: codeword %d arrived on port %d, want %d", node, cw, port, want)
		return
	}
	switch e.Role {
	case RoleSingle:
		m.occupyKind(e.Qubit, at, m.dur(e.Kind, e.Param), e.Kind)
		m.backend.Apply1(e.Kind, e.Param, e.Qubit)
		m.Gates++
	case RoleMeasure:
		m.occupyKind(e.Qubit, at, m.durations.Measure, circuit.Measure)
		out := m.backend.Measure(e.Qubit)
		m.recordBatch(node, e.Qubit)
		m.Measurements++
		if m.deliver != nil {
			m.deliver(node, e.Channel, uint32(out), at+m.MeasLatency)
		}
	case RoleControl, RoleParticipant:
		m.commit2Q(e, at)
	}
}

func (m *Model) commit2Q(e TableEntry, at sim.Time) {
	key := pairKey(e.Qubit, e.Partner)
	prev, ok := m.pending[key]
	if !ok {
		m.pending[key] = pendingHalf{entry: e, at: at}
		return
	}
	delete(m.pending, key)
	if prev.at != at {
		m.Violations = append(m.Violations, Violation{
			QubitA: prev.entry.Qubit, QubitB: e.Qubit, TimeA: prev.at, TimeB: at,
		})
	}
	if prev.entry.Role == e.Role {
		m.fail("two-qubit gate on pair (%d,%d) committed two %v halves", e.Qubit, e.Partner, e.Role)
		return
	}
	// The control-role entry carries the gate.
	ctrl := e
	if prev.entry.Role == RoleControl {
		ctrl = prev.entry
	}
	later := at
	if prev.at > later {
		later = prev.at
	}
	m.occupyKind(ctrl.Qubit, later, m.dur(ctrl.Kind, ctrl.Param), ctrl.Kind)
	m.occupyKind(ctrl.Partner, later, m.dur(ctrl.Kind, ctrl.Param), ctrl.Kind)
	if ctrl.Kind == circuit.EPR {
		// EPR-pair generation across the chip boundary: both comm qubits
		// are discarded and re-prepared as (|00>+|11>)/sqrt(2). Occupancy
		// above already charged EPRLatency via dur().
		m.backend.Apply1(circuit.Reset, 0, ctrl.Qubit)
		m.backend.Apply1(circuit.Reset, 0, ctrl.Partner)
		m.backend.Apply1(circuit.H, 0, ctrl.Qubit)
		m.backend.Apply2(circuit.CNOT, 0, ctrl.Qubit, ctrl.Partner)
		m.EPRPairs++
		m.Gates++
		return
	}
	m.backend.Apply2(ctrl.Kind, ctrl.Param, ctrl.Qubit, ctrl.Partner)
	m.Gates++
}

// PendingHalves reports unmatched two-qubit commits (should be zero after a
// complete run).
func (m *Model) PendingHalves() int { return len(m.pending) }

func (m *Model) dur(kind circuit.Kind, param float64) sim.Time {
	switch {
	case kind == circuit.Measure:
		return m.durations.Measure
	case kind == circuit.Delay:
		return sim.Time(param)
	case kind == circuit.EPR:
		if m.EPRLatency > 0 {
			return m.EPRLatency
		}
		return m.durations.TwoQubit
	case kind.IsTwoQubit():
		return m.durations.TwoQubit
	default:
		return m.durations.OneQubit
	}
}

func (m *Model) occupy(q int, at, dur sim.Time) {
	m.occupyKind(q, at, dur, circuit.KindInvalid)
}

func (m *Model) occupyKind(q int, at, dur sim.Time, kind circuit.Kind) {
	for len(m.busyUntil) <= q {
		m.busyUntil = append(m.busyUntil, 0)
		m.lastApplied = append(m.lastApplied, 0)
	}
	if at < m.busyUntil[q] {
		m.Overlaps++
		if len(m.OverlapInfo) < 32 {
			m.OverlapInfo = append(m.OverlapInfo, Overlap{Qubit: q, At: at, BusyUntil: m.busyUntil[q], Kind: kind})
		}
	}
	if at < m.lastApplied[q] {
		m.OrderInversions++
	}
	m.lastApplied[q] = at
	if end := at + dur; end > m.busyUntil[q] {
		m.busyUntil[q] = end
	}
}

// pairKey packs the unordered qubit pair into one word so the pending map
// hashes a uint64 instead of a 16-byte array.
func pairKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
