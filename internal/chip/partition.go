package chip

import "fmt"

// Partition describes the multi-chip layout of a device: Data data qubits
// split across Chips chips, plus one communication qubit per chip appended
// after the data qubits (comm qubit of chip j is global index Data+j). It is
// the boundary contract shared by the circuit expansion, the machine's
// backend sizing, and the herald-RNG comm split (DESIGN.md §13).
type Partition struct {
	Data  int // data qubits
	Chips int // chips (1 = the single-chip degenerate case, no comm qubits)
}

// NewPartition validates and builds a partition descriptor.
func NewPartition(data, chips int) (Partition, error) {
	if data < 1 || chips < 1 {
		return Partition{}, fmt.Errorf("chip: partition needs data >= 1 and chips >= 1 (got %d, %d)", data, chips)
	}
	if chips > data {
		return Partition{}, fmt.Errorf("chip: %d chips for %d data qubits (each chip needs at least one)", chips, data)
	}
	return Partition{Data: data, Chips: chips}, nil
}

// Total returns the full qubit count including communication qubits.
func (p Partition) Total() int {
	if p.Chips <= 1 {
		return p.Data
	}
	return p.Data + p.Chips
}

// Comm returns the global index of chip j's communication qubit.
func (p Partition) Comm(chip int) int { return p.Data + chip }

// IsComm reports whether global qubit q is a communication qubit.
func (p Partition) IsComm(q int) bool { return p.Chips > 1 && q >= p.Data }
