package chip

import (
	"testing"

	"dhisq/internal/circuit"
)

// laneModel builds a chip over B statevec lanes of n qubits, seeded per lane.
func laneModel(n, lanes int) *Model {
	return model(NewLanes(func(lane int) Backend {
		return NewStateVec(n, int64(lane+1))
	}, lanes))
}

func TestLaneBackendFanOut(t *testing.T) {
	lb := NewLanes(func(lane int) Backend { return NewStateVec(1, int64(lane)) }, 3)
	lb.Apply1(circuit.X, 0, 0)
	for i, l := range lb.Lanes {
		if l.(*StateVecBackend).State.Prob(0) < 0.999 {
			t.Fatalf("lane %d: X not applied", i)
		}
	}
	if out := lb.Measure(0); out != 1 {
		t.Fatalf("measure after X = %d, want 1 (lane 0's outcome)", out)
	}
	for i, v := range lb.last {
		if v != 1 {
			t.Fatalf("lane %d outcome = %d, want 1", i, v)
		}
	}
	lb.Reset(9)
	for i, l := range lb.Lanes {
		if l.(*StateVecBackend).State.Prob(0) > 0.001 {
			t.Fatalf("lane %d: Reset did not restore |0>", i)
		}
	}
}

func TestLaneBackendApply2(t *testing.T) {
	lb := NewLanes(func(lane int) Backend { return NewStateVec(2, int64(lane)) }, 2)
	lb.Apply1(circuit.X, 0, 0)
	lb.Apply2(circuit.CNOT, 0, 0, 1)
	for i, l := range lb.Lanes {
		if l.(*StateVecBackend).State.Prob(1) < 0.999 {
			t.Fatalf("lane %d: CNOT not applied", i)
		}
	}
}

func TestLaneBackendResetLanes(t *testing.T) {
	lb := NewLanes(func(lane int) Backend { return NewSeeded(int64(lane)) }, 2)
	if err := lb.ResetLanes([]int64{7}); err == nil {
		t.Fatal("seed/lane count mismatch not rejected")
	}
	if err := lb.ResetLanes([]int64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if a, b := lb.Lanes[0].(*SeededBackend).Seed, lb.Lanes[1].(*SeededBackend).Seed; a != 7 || b != 8 {
		t.Fatalf("per-lane seeds = %d,%d, want 7,8", a, b)
	}
}

func TestResetBatch(t *testing.T) {
	m := laneModel(1, 2)
	m.SetTable(0, []TableEntry{
		{Role: RoleSingle, Kind: circuit.X, Qubit: 0},
		{Role: RoleMeasure, Kind: circuit.Measure, Qubit: 0, Channel: 0},
	})
	m.Commit(0, PortXY, 1, 10)
	m.Commit(0, PortRO, 2, 20)
	if len(m.BatchMeas) != 1 {
		t.Fatalf("BatchMeas = %v, want one record", m.BatchMeas)
	}
	rec := m.BatchMeas[0]
	if rec.Node != 0 || rec.Qubit != 0 || len(rec.Outcomes) != 2 {
		t.Fatalf("record = %+v", rec)
	}
	for lane, out := range rec.Outcomes {
		if out != 1 {
			t.Fatalf("lane %d outcome = %d after X, want 1", lane, out)
		}
	}
	if err := m.ResetBatch([]int64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if m.Gates != 0 || m.Measurements != 0 || m.BatchMeas != nil {
		t.Fatal("ResetBatch did not clear chip bookkeeping")
	}
	lb := m.Backend().(*LaneBackend)
	for i, l := range lb.Lanes {
		if l.(*StateVecBackend).State.Prob(0) > 0.001 {
			t.Fatalf("lane %d state not reset", i)
		}
	}
	// Seed/lane mismatch surfaces the lane backend's error.
	if err := m.ResetBatch([]int64{3}); err == nil {
		t.Fatal("seed count mismatch not rejected")
	}
}

func TestResetBatchNonLaneBackend(t *testing.T) {
	m := model(NewStateVec(1, 1))
	if err := m.ResetBatch([]int64{1}); err == nil {
		t.Fatal("ResetBatch on a plain backend must error")
	}
	// recordBatch on a non-lane backend is a no-op, not a panic.
	m.SetTable(0, []TableEntry{{Role: RoleMeasure, Kind: circuit.Measure, Qubit: 0}})
	m.Commit(0, PortRO, 1, 10)
	if m.BatchMeas != nil {
		t.Fatal("plain backend must not record batch outcomes")
	}
}

func TestModelReset(t *testing.T) {
	m := model(NewStateVec(1, 1))
	m.SetTable(0, []TableEntry{
		{Role: RoleSingle, Kind: circuit.X, Qubit: 0},
		{Role: RoleMeasure, Kind: circuit.Measure, Qubit: 0},
	})
	m.Commit(0, PortXY, 1, 10)
	m.Commit(0, PortRO, 2, 10) // overlaps the X window on purpose
	if m.Gates != 1 || m.Measurements != 1 || m.Overlaps == 0 {
		t.Fatalf("setup: gates=%d meas=%d overlaps=%d", m.Gates, m.Measurements, m.Overlaps)
	}
	m.Reset(5)
	if m.Gates != 0 || m.Measurements != 0 || m.Overlaps != 0 || len(m.OverlapInfo) != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if m.Backend().(*StateVecBackend).State.Prob(0) > 0.001 {
		t.Fatal("Reset did not reset backend state")
	}
	// Tables survive a reset: the same program re-commits cleanly.
	m.Commit(0, PortXY, 1, 10)
	if m.Gates != 1 || len(m.Errs) != 0 {
		t.Fatalf("post-reset commit: gates=%d errs=%v", m.Gates, m.Errs)
	}
}

func TestStabilizerBackendRoundTrip(t *testing.T) {
	b := NewStabilizer(2, 3)
	b.Apply1(circuit.H, 0, 0)
	b.Apply2(circuit.CNOT, 0, 0, 1)
	a := b.Measure(0)
	if c := b.Measure(1); c != a {
		t.Fatalf("GHZ pair disagreed: %d vs %d", a, c)
	}
	b.Apply2(circuit.SWAP, 0, 0, 1)
	b.Apply2(circuit.CZ, 0, 0, 1)
	b.Apply1(circuit.Reset, 0, 0)
	if out := b.Measure(0); out != 0 {
		t.Fatalf("reset qubit measured %d", out)
	}
	b.Reset(4)
	if out := b.Measure(1); out != 0 {
		t.Fatalf("fresh tableau measured %d", out)
	}
}

func TestSeededBackendReset(t *testing.T) {
	b := NewSeeded(11)
	b.Apply1(circuit.H, 0, 0) // no-op by contract
	b.Apply2(circuit.CNOT, 0, 0, 1)
	first := []int{b.Measure(0), b.Measure(0), b.Measure(3)}
	b.Reset(11)
	second := []int{b.Measure(0), b.Measure(0), b.Measure(3)}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("outcome %d not reproducible after Reset: %v vs %v", i, first, second)
		}
	}
	b.Reset(12)
	diff := false
	for q := 0; q < 64 && !diff; q++ {
		b2 := NewSeeded(11)
		if b.Measure(q) != b2.Measure(q) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical outcome streams")
	}
}

func TestStateVecBackendReset(t *testing.T) {
	b := NewStateVec(2, 1)
	b.Apply1(circuit.RX, 1.1, 0)
	b.Apply2(circuit.CPhase, 0.7, 0, 1)
	b.Apply2(circuit.SWAP, 0, 0, 1)
	b.Reset(2)
	if b.State.Prob(0) > 1e-12 || b.State.Prob(1) > 1e-12 {
		t.Fatal("Reset did not restore |00>")
	}
}
