package chip

import (
	"math/rand"

	"dhisq/internal/circuit"
	"dhisq/internal/quantum"
	"dhisq/internal/stabilizer"
)

// CommAware is implemented by backends that can separate communication-qubit
// measurement randomness from the data stream. With a comm boundary set,
// measurements and resets of qubits at or above it draw from a dedicated
// herald RNG, so the data qubits of a multi-chip run consume exactly the
// same random draws as the merged single-chip run of the same circuit — the
// property the remote-gate distribution-equality oracle relies on.
type CommAware interface {
	// SetCommFrom marks qubits q.. as communication qubits (0 disables).
	SetCommFrom(q int)
}

// heraldSeedMix decorrelates the herald RNG stream from the data stream
// derived from the same shot seed.
const heraldSeedMix = 0x5851F42D4C957F2D

// StateVecBackend applies gates to a dense state vector — the exact oracle
// for small verification runs.
type StateVecBackend struct {
	State *quantum.State
	Rng   *rand.Rand
	comm  int
	hrng  *rand.Rand
}

// NewStateVec builds a dense backend for n qubits.
func NewStateVec(n int, seed int64) *StateVecBackend {
	return &StateVecBackend{
		State: quantum.NewState(n),
		Rng:   rand.New(rand.NewSource(seed)),
		hrng:  rand.New(rand.NewSource(seed ^ heraldSeedMix)),
	}
}

// SetCommFrom implements CommAware.
func (b *StateVecBackend) SetCommFrom(q int) { b.comm = q }

func (b *StateVecBackend) rng(q int) *rand.Rand {
	if b.comm > 0 && q >= b.comm {
		return b.hrng
	}
	return b.Rng
}

// Apply1 implements Backend.
func (b *StateVecBackend) Apply1(kind circuit.Kind, param float64, q int) {
	s := b.State
	switch kind {
	case circuit.H:
		s.H(q)
	case circuit.X:
		s.X(q)
	case circuit.Y:
		s.Y(q)
	case circuit.Z:
		s.Z(q)
	case circuit.S:
		s.S(q)
	case circuit.Sdg:
		s.Sdg(q)
	case circuit.T:
		s.T(q)
	case circuit.Tdg:
		s.Tdg(q)
	case circuit.RX:
		s.RX(q, param)
	case circuit.RY:
		s.RY(q, param)
	case circuit.RZ:
		s.RZ(q, param)
	case circuit.Reset:
		if s.Measure(q, b.rng(q)) == 1 {
			s.X(q)
		}
	case circuit.Delay:
	default:
		panic("chip: statevec backend cannot apply " + kind.String())
	}
}

// Apply2 implements Backend.
func (b *StateVecBackend) Apply2(kind circuit.Kind, param float64, x, y int) {
	switch kind {
	case circuit.CNOT:
		b.State.CNOT(x, y)
	case circuit.CZ:
		b.State.CZ(x, y)
	case circuit.CPhase:
		b.State.CPhase(x, y, param)
	case circuit.SWAP:
		b.State.SWAP(x, y)
	default:
		panic("chip: statevec backend cannot apply " + kind.String())
	}
}

// Measure implements Backend.
func (b *StateVecBackend) Measure(q int) int { return b.State.Measure(q, b.rng(q)) }

// Reset implements Backend: |0...0> in place, both RNG streams reseeded.
func (b *StateVecBackend) Reset(seed int64) {
	b.State.Reset()
	b.Rng = rand.New(rand.NewSource(seed))
	b.hrng = rand.New(rand.NewSource(seed ^ heraldSeedMix))
}

// StabilizerBackend applies Clifford gates to a tableau — exact semantics at
// thousands of qubits.
type StabilizerBackend struct {
	Tab  *stabilizer.Tableau
	Rng  *rand.Rand
	comm int
	hrng *rand.Rand
}

// NewStabilizer builds a tableau backend for n qubits.
func NewStabilizer(n int, seed int64) *StabilizerBackend {
	return &StabilizerBackend{
		Tab:  stabilizer.New(n),
		Rng:  rand.New(rand.NewSource(seed)),
		hrng: rand.New(rand.NewSource(seed ^ heraldSeedMix)),
	}
}

// SetCommFrom implements CommAware.
func (b *StabilizerBackend) SetCommFrom(q int) { b.comm = q }

func (b *StabilizerBackend) rng(q int) *rand.Rand {
	if b.comm > 0 && q >= b.comm {
		return b.hrng
	}
	return b.Rng
}

// Apply1 implements Backend.
func (b *StabilizerBackend) Apply1(kind circuit.Kind, param float64, q int) {
	t := b.Tab
	switch kind {
	case circuit.H:
		t.H(q)
	case circuit.X:
		t.X(q)
	case circuit.Y:
		t.Y(q)
	case circuit.Z:
		t.Z(q)
	case circuit.S:
		t.S(q)
	case circuit.Sdg:
		t.Sdg(q)
	case circuit.Reset:
		if t.MeasureZ(q, b.rng(q)) == 1 {
			t.X(q)
		}
	case circuit.Delay:
	default:
		panic("chip: stabilizer backend cannot apply " + kind.String())
	}
}

// Apply2 implements Backend.
func (b *StabilizerBackend) Apply2(kind circuit.Kind, param float64, x, y int) {
	switch kind {
	case circuit.CNOT:
		b.Tab.CNOT(x, y)
	case circuit.CZ:
		b.Tab.CZ(x, y)
	case circuit.SWAP:
		b.Tab.SWAP(x, y)
	default:
		panic("chip: stabilizer backend cannot apply " + kind.String())
	}
}

// Measure implements Backend.
func (b *StabilizerBackend) Measure(q int) int { return b.Tab.MeasureZ(q, b.rng(q)) }

// Reset implements Backend: identity tableau in place, both RNG streams
// reseeded.
func (b *StabilizerBackend) Reset(seed int64) {
	b.Tab.Reset()
	b.Rng = rand.New(rand.NewSource(seed))
	b.hrng = rand.New(rand.NewSource(seed ^ heraldSeedMix))
}

// SeededBackend tracks no quantum state: gates are no-ops and each
// measurement outcome is a deterministic hash of (seed, qubit, repetition).
// Because outcomes do not depend on the order in which other qubits are
// measured, a BISP run and a lock-step baseline run of the same circuit take
// identical branches — the property Fig. 15's runtime comparison needs.
type SeededBackend struct {
	Seed  int64
	count map[int]uint64
}

// NewSeeded builds the order-independent outcome source.
func NewSeeded(seed int64) *SeededBackend {
	return &SeededBackend{Seed: seed, count: map[int]uint64{}}
}

// Apply1 implements Backend.
func (b *SeededBackend) Apply1(circuit.Kind, float64, int) {}

// Apply2 implements Backend.
func (b *SeededBackend) Apply2(circuit.Kind, float64, int, int) {}

// Reset implements Backend: repetition counters clear, seed replaced.
func (b *SeededBackend) Reset(seed int64) {
	b.Seed = seed
	clear(b.count)
}

// Measure implements Backend.
func (b *SeededBackend) Measure(q int) int {
	n := b.count[q]
	b.count[q] = n + 1
	// splitmix64 over (seed, qubit, repetition)
	x := uint64(b.Seed) ^ uint64(q)*0x9E3779B97F4A7C15 ^ n*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x & 1)
}
