package chip

import (
	"fmt"

	"dhisq/internal/circuit"
)

// LaneBackend fans one backend dispatch out to B independent per-lane
// substrates: the event simulation (controllers, fabric, chip timing) runs
// once per block, and each committed gate is applied to every lane's
// state. Lanes differ only in their RNG seeds, so lane l of a block is
// byte-identical to an unbatched shot run with lane l's seed — valid
// exactly when the program's control flow is outcome-independent (no
// feed-forward), which runner.Batchable checks before selecting this path.
type LaneBackend struct {
	Lanes []Backend
	last  []int // per-lane outcomes of the most recent Measure
}

// NewLanes builds a lane backend over n substrates produced by mk.
func NewLanes(mk func(lane int) Backend, n int) *LaneBackend {
	if n < 1 {
		panic("chip: lane backend needs at least one lane")
	}
	b := &LaneBackend{Lanes: make([]Backend, n), last: make([]int, n)}
	for i := range b.Lanes {
		b.Lanes[i] = mk(i)
	}
	return b
}

// Apply1 implements Backend: the gate lands on every lane.
func (b *LaneBackend) Apply1(kind circuit.Kind, param float64, q int) {
	for _, l := range b.Lanes {
		l.Apply1(kind, param, q)
	}
}

// Apply2 implements Backend.
func (b *LaneBackend) Apply2(kind circuit.Kind, param float64, x, y int) {
	for _, l := range b.Lanes {
		l.Apply2(kind, param, x, y)
	}
}

// Measure implements Backend: every lane measures (collapsing its own
// state and advancing its own RNG), lane 0's outcome is returned — it is
// the value that flows through the result FIFO into controller memory, so
// ReadBits after a batched run reads lane 0's bits. The chip records the
// full per-lane outcome vector in Model.BatchMeas for the other lanes.
func (b *LaneBackend) Measure(q int) int {
	for i, l := range b.Lanes {
		b.last[i] = l.Measure(q)
	}
	return b.last[0]
}

// Reset implements Backend: every lane reseeds with the same seed (the
// unbatched-compatible hygiene path). Batched blocks use ResetLanes.
func (b *LaneBackend) Reset(seed int64) {
	for _, l := range b.Lanes {
		l.Reset(seed)
	}
}

// ResetLanes reseeds lane l with seeds[l] — the per-block entry point that
// gives every lane its own shot seed.
func (b *LaneBackend) ResetLanes(seeds []int64) error {
	if len(seeds) != len(b.Lanes) {
		return fmt.Errorf("chip: %d seeds for %d lanes", len(seeds), len(b.Lanes))
	}
	for i, l := range b.Lanes {
		l.Reset(seeds[i])
	}
	return nil
}

// BatchMeas records the per-lane outcomes of one measurement commit.
// Commits from one controller happen in program order, so the k-th record
// with Node == n corresponds to the k-th measure op lowered to controller
// n — the mapping runner.RunBatched uses to reconstruct per-lane bits.
type BatchMeas struct {
	Node     int
	Qubit    int
	Outcomes []int
}

// ResetBatch is the batched-block counterpart of Reset: chip bookkeeping
// clears identically, but lane l's substrate reseeds with seeds[l]. It
// errors when the backend is not lane-structured.
func (m *Model) ResetBatch(seeds []int64) error {
	lb, ok := m.backend.(*LaneBackend)
	if !ok {
		return fmt.Errorf("chip: ResetBatch on non-lane backend %T", m.backend)
	}
	if err := lb.ResetLanes(seeds); err != nil {
		return err
	}
	clear(m.pending)
	clear(m.busyUntil)
	clear(m.lastApplied)
	m.Gates = 0
	m.Measurements = 0
	m.Violations = nil
	m.Overlaps = 0
	m.OverlapInfo = nil
	m.OrderInversions = 0
	m.Errs = nil
	m.BatchMeas = nil
	return nil
}

// recordBatch snapshots the lane outcomes of a measurement commit.
func (m *Model) recordBatch(node, qubit int) {
	lb, ok := m.backend.(*LaneBackend)
	if !ok {
		return
	}
	m.BatchMeas = append(m.BatchMeas, BatchMeas{
		Node: node, Qubit: qubit, Outcomes: append([]int(nil), lb.last...),
	})
}
