// Package artifact is the compile-once layer of the stack: a
// content-addressed cache of compiled programs keyed by everything that
// determines the compiler's output — the circuit, its qubit→controller
// mapping, the fabric geometry/latencies, and the compiler options.
//
// Compilation is deterministic: the same (circuit, mapping, network
// config, options) tuple always lowers to byte-identical per-controller
// binaries and codeword tables, because the BISP windows the compiler
// books against are pure functions of the topology (DESIGN.md §2.3–§2.4).
// That makes the compiled artifact safe to share: internal/runner already
// hands one *compiler.Compiled to W replicas read-only; this package
// extends the sharing across independent submissions, so a service
// replaying the same circuit for many requests compiles exactly once.
//
// The cache is LRU-bounded and safe for concurrent use. GetOrCompile
// deduplicates concurrent compilations of the same fingerprint
// (singleflight): one caller compiles, the rest wait and share the
// result. machine.Compile/CompileWith route through the process-wide
// Shared cache, which puts every entry point — the facade's Run/RunShots/
// Sample, internal/runner, internal/service, and the CLIs — behind it.
package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/network"
)

// Fingerprint content-addresses one compiled artifact.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex (the form job APIs expose).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short is the abbreviated display form (12 hex digits).
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// keyVersion is bumped whenever the encoding below (or the compiler's
// input surface) changes shape, so stale fingerprints can never collide
// across versions of the code. v2: topology kind and contention fields
// joined the network-config section. v3: the placement policy name joined
// the compiler options — the Place pass resolves nil mappings through the
// named policy, so artifacts (and the replica pools keyed on them) from
// different policies must never alias. v4: params are canonicalized (-0.0
// hashes as +0.0 — the programs were always identical), symbolic
// parameter names are hashed per op, and the structural-key variant
// (params elided) joined the encoding, so a whole angle sweep shares one
// skeleton fingerprint. v5: the schedule policy name joined the compiler
// options — the Schedule pass resolves directives through the named
// policy (internal/compiler's schedule registry), so artifacts from
// different scheduling policies must never alias. v6: the Collective
// option joined the compiler options — the collective-aware lowering
// emits different feed-forward distribution code, so artifacts compiled
// with it on and off must never alias. v7: the Chips and EPRLatency
// options joined the compiler options — the multi-chip expansion rewrites
// the circuit and the EPR latency changes emitted waits, so artifacts from
// different chip configurations must never alias (and replica pools keyed
// on the fingerprint stay chip-homogeneous).
const keyVersion = 7

// Key fingerprints a compilation request. Two requests share a key iff
// the compiler is guaranteed to produce identical output for both: the
// circuit ops, the mapping, every topology/latency field of the network
// config (which fixes the BISP windows), and every compiler option are
// all hashed. A nil mapping hashes differently from an explicit identity
// mapping — the artifacts would be identical, but treating them as
// distinct keys costs one extra compile, never a wrong program.
func Key(c *circuit.Circuit, mapping []int, net network.Config, opt compiler.Options) Fingerprint {
	return key(c, mapping, net, opt, false)
}

// StructuralKey fingerprints the bind-invariant shape of a compilation
// request: identical to Key except that the Param of every symbolic op is
// elided, so all bindings of one skeleton — and the skeleton itself —
// share the fingerprint. It is the cache key of machine.CompileSkeleton:
// a 1000-point parameter sweep compiles exactly once under it. A
// structural marker word keeps it from ever colliding with a full Key.
func StructuralKey(c *circuit.Circuit, mapping []int, net network.Config, opt compiler.Options) Fingerprint {
	return key(c, mapping, net, opt, true)
}

func key(c *circuit.Circuit, mapping []int, net network.Config, opt compiler.Options, structural bool) Fingerprint {
	// Encode into one buffer and hash once: Key sits on the admission
	// path of every submission, and per-field hasher writes cost more
	// than the SHA itself on op-heavy circuits. ~8 words per op is a
	// comfortable overestimate for typical circuits.
	buf := make([]byte, 0, 64+len(c.Ops)*8*8+len(mapping)*8)
	wi := func(v int64) {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	wf := func(v float64) { wi(int64(math.Float64bits(circuit.CanonParam(v)))) }
	wb := func(v bool) {
		if v {
			wi(1)
		} else {
			wi(0)
		}
	}
	ws := func(s string) {
		wi(int64(len(s)))
		buf = append(buf, s...)
	}

	wi(keyVersion)
	wb(structural)

	// Circuit: dimensions plus every op field the compiler reads.
	wi(int64(c.NumQubits))
	wi(int64(c.NumBits))
	wi(int64(len(c.Ops)))
	for _, op := range c.Ops {
		wi(int64(op.Kind))
		wi(int64(len(op.Qubits)))
		for _, q := range op.Qubits {
			wi(int64(q))
		}
		// Symbolic params: the name is structure, the value is not — a
		// structural key elides it so every binding (and the unbound
		// skeleton) lands on the same artifact.
		ws(op.Sym)
		if structural && op.Sym != "" {
			wi(-2)
		} else {
			wf(op.Param)
		}
		wi(int64(op.CBit))
		if op.Cond == nil {
			wi(-1)
		} else {
			wi(int64(len(op.Cond.Bits)))
			for _, b := range op.Cond.Bits {
				wi(int64(b))
			}
			wi(int64(op.Cond.Parity))
		}
	}

	// Mapping: nil (identity) vs explicit are distinct on purpose.
	if mapping == nil {
		wi(-1)
	} else {
		wi(int64(len(mapping)))
		for _, m := range mapping {
			wi(int64(m))
		}
	}

	// Network config: fixes the topology and therefore the sync windows.
	// The contention fields (serialization, ports, queue cap) do not change
	// compiler output — the booked windows are uncontended by design — but
	// they do change runtime behavior, and the fingerprint doubles as the
	// replica-pool key in internal/service; hashing them costs at most one
	// redundant compile per variant and never pools incompatible machines.
	wi(int64(net.MeshW))
	wi(int64(net.MeshH))
	wi(int64(net.RouterFanout))
	wi(int64(net.NeighborLatency))
	wi(int64(net.TreeHopLatency))
	wi(int64(net.RouterProc))
	wi(int64(net.Topology))
	wi(int64(net.LinkSerialization))
	wi(int64(net.RouterPorts))
	wi(int64(net.LinkQueueCap))

	// Compiler options.
	wi(opt.Durations.OneQubit)
	wi(opt.Durations.TwoQubit)
	wi(opt.Durations.Measure)
	wi(int64(opt.MeasLatency))
	wi(int64(opt.Root))
	wi(int64(opt.Controllers))
	wb(opt.InitialBarrier)
	wi(opt.PipeGuard)
	wb(opt.AdvanceBooking)
	// Placement policy: length-prefixed name bytes. "" and "identity"
	// resolve to the same pass behavior but hash differently — one
	// redundant compile at most, never an aliased artifact.
	wi(int64(len(opt.Placement)))
	buf = append(buf, opt.Placement...)
	// Schedule policy: same length-prefixed scheme, same "" vs "fixed"
	// redundancy tradeoff.
	wi(int64(len(opt.Schedule)))
	buf = append(buf, opt.Schedule...)
	// Collective lowering toggle (keyVersion 6).
	wb(opt.Collective)
	// Multi-chip expansion inputs (keyVersion 7).
	wi(int64(opt.Chips))
	wi(int64(opt.EPRLatency))

	return sha256.Sum256(buf)
}

// Stats is a point-in-time snapshot of cache effectiveness. Hits counts
// artifact reuses — Get finding an entry, or GetOrCompile being served
// without compiling (including callers that joined an in-flight
// compilation of the same key, and artifacts restored from the backing
// store: no compile ran). Misses counts compile attempts: only
// GetOrCompile charges them, and a store restore never does, so Misses
// equals actual compiles and "zero fresh compiles after restart" is
// exactly a Misses delta of zero.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Store-tier counters (all zero when no store is attached). StoreHits
	// are restores from disk — each also counts as a Hit. StoreMisses are
	// store lookups that found nothing. Spills are artifacts persisted
	// after a compile; SpillErrors are persists that failed (the artifact
	// still serves from memory — spilling is strictly best-effort).
	StoreHits   uint64 `json:"store_hits"`
	StoreMisses uint64 `json:"store_misses"`
	Spills      uint64 `json:"spills"`
	SpillErrors uint64 `json:"spill_errors"`
	Size        int    `json:"size"`
	Capacity    int    `json:"capacity"`
}

// Store is a persistence tier under the cache: artifacts spill to it
// after compilation and restore from it on a memory miss, which is what
// makes a cold process start warm. internal/store implements it on disk.
// Load reports false for any artifact it cannot produce (absent,
// unreadable, corrupt) — the cache then falls back to compiling.
// Implementations must be safe for concurrent use.
type Store interface {
	Load(Fingerprint) (*compiler.Compiled, bool)
	Save(Fingerprint, *compiler.Compiled) error
}

// Cache is an LRU-bounded, concurrency-safe map from fingerprint to
// compiled artifact. Cached *compiler.Compiled values are shared and must
// be treated as immutable by every consumer (the same contract
// internal/runner's replicas already obey).
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Fingerprint]*list.Element
	order    *list.List // front = most recently used
	inflight map[Fingerprint]*flight
	store    Store // optional persistence tier; nil = memory only
	stats    Stats
}

type entry struct {
	fp Fingerprint
	cp *compiler.Compiled
}

type flight struct {
	done chan struct{}
	cp   *compiler.Compiled
	err  error
}

// DefaultCapacity bounds the Shared cache. Compiled artifacts for the
// Fig. 15 suite run tens of KB to a few MB each; 128 of them is far more
// working set than any current workload while staying well under typical
// container memory.
const DefaultCapacity = 128

// Shared is the process-wide artifact cache that machine.Compile and
// machine.CompileWith consult.
var Shared = New(DefaultCapacity)

// New returns a cache bounded to capacity entries (capacity < 1 is
// clamped to 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Fingerprint]*list.Element),
		order:    list.New(),
		inflight: make(map[Fingerprint]*flight),
	}
}

// SetStore attaches (or, with nil, detaches) a persistence tier. With a
// store attached, Get and GetOrCompile restore memory misses from it and
// GetOrCompile spills every fresh compile to it. Clear leaves the store
// attached — a Clear models a process restart, where memory is gone but
// disk persists.
func (c *Cache) SetStore(st Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
}

// Get returns the cached artifact for fp, counting a hit and marking it
// most recently used when found. A memory miss consults the store (when
// attached): a restore counts as a Hit plus a StoreHit — no compile ran.
// A key absent from both tiers counts nothing — the caller may go on to
// compile through GetOrCompile, which does the miss accounting, so one
// logical request never double-counts.
func (c *Cache) Get(fp Fingerprint) (*compiler.Compiled, bool) {
	c.mu.Lock()
	el, ok := c.entries[fp]
	if ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		cp := el.Value.(*entry).cp
		c.mu.Unlock()
		return cp, true
	}
	st := c.store
	c.mu.Unlock()
	if st == nil {
		return nil, false
	}
	// Disk I/O happens outside the lock; a concurrent restore of the same
	// key is harmless (put is idempotent, decode is deterministic).
	cp, ok := st.Load(fp)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.stats.StoreMisses++
		return nil, false
	}
	c.stats.Hits++
	c.stats.StoreHits++
	c.put(fp, cp)
	return cp, true
}

// Put inserts (or refreshes) an artifact, evicting the least recently
// used entry when over capacity.
func (c *Cache) Put(fp Fingerprint, cp *compiler.Compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(fp, cp)
}

// put inserts with c.mu held.
func (c *Cache) put(fp Fingerprint, cp *compiler.Compiled) {
	if el, ok := c.entries[fp]; ok {
		el.Value.(*entry).cp = cp
		c.order.MoveToFront(el)
		return
	}
	c.entries[fp] = c.order.PushFront(&entry{fp: fp, cp: cp})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).fp)
		c.stats.Evictions++
	}
}

// GetOrCompile returns the artifact for fp, compiling it with compile on
// a miss. Concurrent callers with the same fingerprint are collapsed
// into one compilation: the first caller compiles, the others block and
// share its result (counted as hits — they paid no compile). A compile
// error is propagated to every waiter and nothing is cached.
func (c *Cache) GetOrCompile(fp Fingerprint, compile func() (*compiler.Compiled, error)) (cp *compiler.Compiled, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		cp = el.Value.(*entry).cp
		c.mu.Unlock()
		return cp, true, nil
	}
	if fl, ok := c.inflight[fp]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		<-fl.done
		return fl.cp, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[fp] = fl
	st := c.store
	c.mu.Unlock()

	// Leader path. Before paying a compile, try the persistence tier: a
	// restore is a hit (no compile ran), charges no Miss, and the waiters
	// that joined the flight share it exactly as they would a compile.
	if st != nil {
		if cp, ok := st.Load(fp); ok {
			fl.cp = cp
			c.mu.Lock()
			delete(c.inflight, fp)
			c.stats.Hits++
			c.stats.StoreHits++
			c.put(fp, cp)
			c.mu.Unlock()
			close(fl.done)
			return cp, true, nil
		}
	}

	c.mu.Lock()
	if st != nil {
		c.stats.StoreMisses++
	}
	c.stats.Misses++
	c.mu.Unlock()

	fl.cp, fl.err = compile()

	c.mu.Lock()
	delete(c.inflight, fp)
	if fl.err == nil {
		c.put(fp, fl.cp)
	}
	c.mu.Unlock()
	close(fl.done)

	// Spill outside the lock: persistence is best-effort and must never
	// slow or fail the request that compiled.
	if fl.err == nil && st != nil {
		if err := st.Save(fp, fl.cp); err != nil {
			c.mu.Lock()
			c.stats.SpillErrors++
			c.mu.Unlock()
		} else {
			c.mu.Lock()
			c.stats.Spills++
			c.mu.Unlock()
		}
	}
	return fl.cp, false, fl.err
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.order.Len()
	s.Capacity = c.capacity
	return s
}

// Resize rebounds the cache, evicting LRU entries if it shrank below the
// current population. Counters are preserved.
func (c *Cache) Resize(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).fp)
		c.stats.Evictions++
	}
}

// Clear drops every entry and zeroes the counters (tests and benchmarks
// use it to measure cold-path behavior on the Shared cache). An attached
// store stays attached: Clear models a process restart — memory is gone,
// disk persists — which is precisely the transition the restart-warm
// contract is about.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Fingerprint]*list.Element)
	c.order = list.New()
	c.stats = Stats{}
}
