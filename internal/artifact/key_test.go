package artifact

import (
	"math"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/network"
)

// Key discrimination and collision suite: the fingerprint must separate
// everything that changes compiler output and unify everything that
// cannot (±0 angles, bindings under the structural key).

func keyEnv(n int) (network.Config, compiler.Options) {
	net := network.DefaultConfig(n)
	return net, compiler.DefaultOptions(0, n)
}

func TestKeyCanonicalizesSignedZero(t *testing.T) {
	net, opt := keyEnv(1)
	pos := circuit.New(1).RZGate(0, 0.0)
	neg := circuit.New(1).RZGate(0, math.Copysign(0, -1))
	if Key(pos, nil, net, opt) != Key(neg, nil, net, opt) {
		t.Fatal("-0.0 and +0.0 angles fingerprint differently despite identical programs")
	}
	if StructuralKey(pos, nil, net, opt) != StructuralKey(neg, nil, net, opt) {
		t.Fatal("-0.0 and +0.0 angles structurally distinct")
	}
	other := circuit.New(1).RZGate(0, 1e-300)
	if Key(pos, nil, net, opt) == Key(other, nil, net, opt) {
		t.Fatal("tiny nonzero angle collides with zero")
	}
}

func TestStructuralKeySharedAcrossBindings(t *testing.T) {
	net, opt := keyEnv(2)
	skel := circuit.New(2)
	skel.RZSym(0, "a").CPhaseSym(0, 1, "b").MeasureInto(0, 0)
	b1, err := skel.Bind(map[string]float64{"a": 0.1, "b": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := skel.Bind(map[string]float64{"a": 2.5, "b": -1})
	if err != nil {
		t.Fatal(err)
	}
	sk := StructuralKey(skel, nil, net, opt)
	if StructuralKey(b1, nil, net, opt) != sk || StructuralKey(b2, nil, net, opt) != sk {
		t.Fatal("bindings do not share the skeleton's structural key")
	}
	if Key(b1, nil, net, opt) == Key(b2, nil, net, opt) {
		t.Fatal("different bindings share a full key")
	}
	if Key(skel, nil, net, opt) == sk {
		t.Fatal("structural key collides with the full key of the same circuit")
	}
	// Concrete circuits also get a stable, distinct structural key.
	conc := circuit.New(1).RZGate(0, 0.5)
	if StructuralKey(conc, nil, net, opt) == Key(conc, nil, net, opt) {
		t.Fatal("concrete structural key collides with full key")
	}
}

func TestKeySeparatesSymbolNames(t *testing.T) {
	net, opt := keyEnv(1)
	mk := func(sym string) *circuit.Circuit {
		c := circuit.New(1)
		c.RZSym(0, sym)
		return c
	}
	a, b := mk("alpha"), mk("beta")
	if Key(a, nil, net, opt) == Key(b, nil, net, opt) {
		t.Fatal("different symbol names share a full key")
	}
	if StructuralKey(a, nil, net, opt) == StructuralKey(b, nil, net, opt) {
		t.Fatal("different symbol names share a structural key")
	}
	// A symbolic op and a concrete op never alias, even at equal Params.
	conc := circuit.New(1).RZGate(0, 0)
	if Key(a, nil, net, opt) == Key(conc, nil, net, opt) {
		t.Fatal("symbolic op aliases concrete op")
	}
}
