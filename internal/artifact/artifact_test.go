package artifact_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dhisq/internal/artifact"
	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/isa"
	"dhisq/internal/machine"
	"dhisq/internal/runner"
)

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func testSpec(seed int64) runner.Spec {
	c := ghz(4)
	cfg := machine.DefaultConfig(c.NumQubits)
	cfg.Backend = machine.BackendStateVec
	cfg.Seed = seed
	return runner.Spec{Circuit: c, MeshW: 2, MeshH: 2, Cfg: cfg}
}

// Key must be a pure function of its inputs: same tuple, same fingerprint.
func TestKeyDeterministic(t *testing.T) {
	s := testSpec(1)
	opt := compiler.DefaultOptions(0, 4)
	a := artifact.Key(s.Circuit, nil, s.Cfg.Net, opt)
	b := artifact.Key(ghz(4), nil, s.Cfg.Net, opt)
	if a != b {
		t.Fatalf("identical inputs fingerprint differently: %s vs %s", a, b)
	}
}

// Any input that can change the compiler's output must change the key.
func TestKeyDiscriminates(t *testing.T) {
	base := testSpec(1)
	opt := compiler.DefaultOptions(0, 4)
	ref := artifact.Key(base.Circuit, nil, base.Cfg.Net, opt)

	seen := map[artifact.Fingerprint]string{ref: "base"}
	check := func(name string, fp artifact.Fingerprint) {
		t.Helper()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	other := ghz(4)
	other.H(3)
	check("extra gate", artifact.Key(other, nil, base.Cfg.Net, opt))

	check("explicit identity mapping",
		artifact.Key(base.Circuit, []int{0, 1, 2, 3}, base.Cfg.Net, opt))
	check("permuted mapping",
		artifact.Key(base.Circuit, []int{1, 0, 2, 3}, base.Cfg.Net, opt))

	net := base.Cfg.Net
	net.MeshW, net.MeshH = 4, 1
	check("different mesh shape", artifact.Key(base.Circuit, nil, net, opt))

	net = base.Cfg.Net
	net.NeighborLatency++
	check("different link latency", artifact.Key(base.Circuit, nil, net, opt))

	o2 := opt
	o2.AdvanceBooking = false
	check("ablation options", artifact.Key(base.Circuit, nil, base.Cfg.Net, o2))

	o3 := opt
	o3.Durations.TwoQubit++
	check("different durations", artifact.Key(base.Circuit, nil, base.Cfg.Net, o3))

	// keyVersion 3: the placement policy is compile-relevant (the Place
	// pass resolves nil mappings through it) and must never alias — not
	// even "" vs the "identity" it resolves to.
	o4 := opt
	o4.Placement = "identity"
	check("identity placement name", artifact.Key(base.Circuit, nil, base.Cfg.Net, o4))
	o4.Placement = "interaction"
	check("interaction placement", artifact.Key(base.Circuit, nil, base.Cfg.Net, o4))

	// keyVersion 5: the schedule policy is compile-relevant (the Schedule
	// pass resolves directive replay through it) and must never alias —
	// same "" vs "fixed" contract as placement.
	o5 := opt
	o5.Schedule = "fixed"
	check("fixed schedule name", artifact.Key(base.Circuit, nil, base.Cfg.Net, o5))
	o5.Schedule = "padded"
	check("padded schedule", artifact.Key(base.Circuit, nil, base.Cfg.Net, o5))
}

// Identical submissions hit; the second compile never runs.
func TestCacheHitSkipsCompile(t *testing.T) {
	cache := artifact.New(8)
	s := testSpec(1)
	opt := compiler.DefaultOptions(0, 4)
	fp := artifact.Key(s.Circuit, nil, s.Cfg.Net, opt)

	var compiles atomic.Int64
	compile := func() (*compiler.Compiled, error) {
		compiles.Add(1)
		m, err := machine.NewForCircuit(s.Circuit, s.MeshW, s.MeshH, s.Cfg)
		if err != nil {
			return nil, err
		}
		return m.CompileFresh(s.Circuit, nil, opt)
	}

	first, hit, err := cache.GetOrCompile(fp, compile)
	if err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v", hit, err)
	}
	second, hit, err := cache.GetOrCompile(fp, compile)
	if err != nil || !hit {
		t.Fatalf("second request: hit=%v err=%v", hit, err)
	}
	if second != first {
		t.Fatal("hit returned a different artifact pointer")
	}
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compiled %d times, want 1", n)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

// Distinct machine specs must miss even for the same circuit.
func TestDistinctSpecsMiss(t *testing.T) {
	cache := artifact.New(8)
	s := testSpec(1)
	opt := compiler.DefaultOptions(0, 4)

	compileFor := func(meshW, meshH int) artifact.Fingerprint {
		t.Helper()
		cfg := s.Cfg
		cfg.Net.MeshW, cfg.Net.MeshH = meshW, meshH
		fp := artifact.Key(s.Circuit, nil, cfg.Net, opt)
		_, _, err := cache.GetOrCompile(fp, func() (*compiler.Compiled, error) {
			m, err := machine.NewForCircuit(s.Circuit, meshW, meshH, s.Cfg)
			if err != nil {
				return nil, err
			}
			return m.CompileFresh(s.Circuit, nil, opt)
		})
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}

	a := compileFor(2, 2)
	b := compileFor(4, 1)
	if a == b {
		t.Fatal("2x2 and 4x1 meshes share a fingerprint")
	}
	st := cache.Stats()
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", st)
	}
}

// The LRU bound holds: population never exceeds capacity, oldest goes
// first, and a touched entry survives eviction of its juniors.
func TestLRUEvictionBound(t *testing.T) {
	const capacity = 4
	cache := artifact.New(capacity)
	fps := make([]artifact.Fingerprint, 0, capacity+2)
	for i := 0; i < capacity; i++ {
		fp := artifact.Fingerprint{byte(i)}
		fps = append(fps, fp)
		cache.Put(fp, &compiler.Compiled{})
	}
	// Touch entry 0 so entry 1 is now the LRU victim.
	if _, ok := cache.Get(fps[0]); !ok {
		t.Fatal("resident entry missing")
	}
	for i := 0; i < 2; i++ {
		fp := artifact.Fingerprint{0xF0, byte(i)}
		fps = append(fps, fp)
		cache.Put(fp, &compiler.Compiled{})
	}
	st := cache.Stats()
	if st.Size != capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, capacity)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if _, ok := cache.Get(fps[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := cache.Get(fps[1]); ok {
		t.Fatal("LRU victim survived")
	}
	if _, ok := cache.Get(fps[2]); ok {
		t.Fatal("second LRU victim survived")
	}

	// Shrinking re-applies the bound.
	cache.Resize(1)
	if st := cache.Stats(); st.Size > 1 {
		t.Fatalf("size %d after Resize(1)", st.Size)
	}
}

// Cached and fresh compilation must be byte-identical: same encoded
// binaries, same tables, and identical shot outcomes through the runner.
func TestCachedMatchesFresh(t *testing.T) {
	s := testSpec(7)

	m, err := machine.NewForCircuit(s.Circuit, s.MeshW, s.MeshH, s.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := m.CompileFresh(s.Circuit, nil, m.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := m.Compile(s.Circuit, nil) // populates the shared cache
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.Compile(s.Circuit, nil) // must be served from it
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Fatal("repeat Compile did not return the cached artifact")
	}

	if len(fresh.Programs) != len(cached.Programs) {
		t.Fatalf("program counts differ: %d vs %d", len(fresh.Programs), len(cached.Programs))
	}
	for i := range fresh.Programs {
		fb, err := isa.EncodeProgram(fresh.Programs[i])
		if err != nil {
			t.Fatal(err)
		}
		cb, err := isa.EncodeProgram(cached.Programs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fb, cb) {
			t.Fatalf("controller %d: cached binary differs from fresh", i)
		}
	}
	if fmt.Sprint(fresh.Tables) != fmt.Sprint(cached.Tables) {
		t.Fatal("codeword tables differ")
	}
	if fmt.Sprint(fresh.BitOwner) != fmt.Sprint(cached.BitOwner) {
		t.Fatal("bit owners differ")
	}

	// Shot outcomes: warm-cache runner.Run vs the uncached rebuild path.
	const shots = 12
	warm, err := runner.Run(s, shots, 2)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := runner.RunRebuild(s, shots)
	if err != nil {
		t.Fatal(err)
	}
	for k := range warm.Shots {
		if warm.Shots[k].Key() != rebuilt.Shots[k].Key() || warm.Shots[k].Seed != rebuilt.Shots[k].Seed {
			t.Fatalf("shot %d diverged: cached %q seed %d vs fresh %q seed %d", k,
				warm.Shots[k].Key(), warm.Shots[k].Seed, rebuilt.Shots[k].Key(), rebuilt.Shots[k].Seed)
		}
	}
	if warm.Histogram().String() != rebuilt.Histogram().String() {
		t.Fatal("cached and fresh histograms differ")
	}
}

// Concurrent requests for one fingerprint collapse into one compile.
func TestSingleflight(t *testing.T) {
	cache := artifact.New(4)
	fp := artifact.Fingerprint{42}
	var compiles atomic.Int64
	gate := make(chan struct{})
	want := &compiler.Compiled{}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*compiler.Compiled, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, _, err := cache.GetOrCompile(fp, func() (*compiler.Compiled, error) {
				compiles.Add(1)
				<-gate // hold every other caller in the inflight wait
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = cp
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("%d concurrent compiles, want 1", n)
	}
	for i, cp := range results {
		if cp != want {
			t.Fatalf("caller %d got a different artifact", i)
		}
	}
}

// A failed compile is not cached and the error reaches every caller.
func TestCompileErrorNotCached(t *testing.T) {
	cache := artifact.New(4)
	fp := artifact.Fingerprint{7}
	boom := fmt.Errorf("boom")
	if _, _, err := cache.GetOrCompile(fp, func() (*compiler.Compiled, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := cache.Get(fp); ok {
		t.Fatal("failed compile was cached")
	}
	want := &compiler.Compiled{}
	cp, hit, err := cache.GetOrCompile(fp, func() (*compiler.Compiled, error) { return want, nil })
	if err != nil || hit || cp != want {
		t.Fatalf("retry after failure: cp=%v hit=%v err=%v", cp, hit, err)
	}
}
