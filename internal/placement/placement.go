// Package placement holds the qubit→controller placement policies of the
// compilation pipeline (internal/compiler's Place pass). A policy turns a
// circuit plus the built fabric topology into a mapping slice — the same
// mapping[] the compiler, the artifact cache and the job service already
// speak — so the choice of placer is a named, cacheable compilation input
// rather than ad-hoc call-site logic.
//
// Three policies ship:
//
//   - identity: qubit q runs on controller q, expressed as a nil mapping.
//     This is the legacy behavior byte-for-byte — nil is what every
//     pre-pipeline call site passed, and the artifact cache deliberately
//     distinguishes nil from an explicit identity permutation.
//   - rowmajor: the identity assignment written out as an explicit
//     permutation [0, 1, ..., n-1] — qubit q at mesh position q in
//     row-major order. Same compiled programs as identity; exists as the
//     explicit-mapping baseline the interaction placer is measured against.
//   - interaction: a greedy interaction-graph partitioner. Qubit pairs are
//     weighted by how often they interact (two-qubit gates, plus classical
//     feed-forward traffic between a measured bit's owner and its
//     consumer), and qubits are placed heaviest-first onto the controller
//     minimizing the weighted mesh distance to their already-placed
//     partners. Co-locating chatty qubits shortens calibrated sync windows
//     and cuts inter-controller messages — and therefore queueing stalls
//     once link bandwidth is finite (network.Config.LinkSerialization > 0).
//
// Policies are deterministic: the same (circuit, topology) input always
// yields the same mapping, which is what makes a policy name safe to hash
// into the artifact fingerprint (internal/artifact keyVersion 3).
package placement

import (
	"fmt"
	"sort"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
)

// Policy computes a qubit→controller mapping for a circuit on a built
// topology. A nil mapping means identity (qubit q on controller q) — the
// compiler and artifact cache both honor that convention.
type Policy interface {
	// Name is the registry key ("identity", "rowmajor", "interaction").
	Name() string
	// Place returns the mapping. Implementations must be deterministic
	// and must return either nil or a slice of length c.NumQubits whose
	// entries are distinct controllers in [0, topo.N).
	Place(c *circuit.Circuit, topo *network.Topology) ([]int, error)
}

// Default is the policy an empty name resolves to: the legacy identity
// placement, guaranteed byte-identical to the pre-pipeline compiler.
const Default = "identity"

// policies is the fixed registry, in documentation order.
var policies = []Policy{identityPolicy{}, rowMajorPolicy{}, interactionPolicy{}, congestionPolicy{}}

// Names lists the registered policies in stable order.
func Names() []string {
	out := make([]string, len(policies))
	for i, p := range policies {
		out[i] = p.Name()
	}
	return out
}

// Get resolves a policy by name ("" = Default). Unknown names error with
// the valid set, so CLI and API validation share one message.
func Get(name string) (Policy, error) {
	if name == "" {
		name = Default
	}
	for _, p := range policies {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("placement: unknown policy %q (want %v)", name, Names())
}

// Valid reports whether name resolves to a registered policy ("" counts —
// it resolves to Default). The client-side check dhisq-sim -serve runs
// before a submission travels to the daemon.
func Valid(name string) error {
	_, err := Get(name)
	return err
}

// AutoMesh picks controller-mesh dimensions for an n-qubit circuit whose
// caller didn't fix them: the smallest near-square mesh that fits n. This
// is the single mesh heuristic of the stack — the facade's Sample, the job
// service and dhisq-sim all route through it, so the same circuit
// fingerprints identically at every entry point. Every current policy
// places onto this shape; a future device-shaped policy would grow a
// per-policy hook here.
func AutoMesh(n int) (w, h int) { return network.NearSquareMesh(n) }

// checkFits validates the common preconditions.
func checkFits(c *circuit.Circuit, topo *network.Topology) error {
	if c == nil {
		return fmt.Errorf("placement: nil circuit")
	}
	if topo == nil {
		return fmt.Errorf("placement: nil topology")
	}
	if c.NumQubits > topo.N {
		return fmt.Errorf("placement: %d qubits exceed %d controllers", c.NumQubits, topo.N)
	}
	return nil
}

// identityPolicy is the legacy placement: nil mapping, qubit q on
// controller q.
type identityPolicy struct{}

func (identityPolicy) Name() string { return "identity" }

func (identityPolicy) Place(c *circuit.Circuit, topo *network.Topology) ([]int, error) {
	if err := checkFits(c, topo); err != nil {
		return nil, err
	}
	return nil, nil
}

// rowMajorPolicy writes the identity assignment out as an explicit
// permutation: qubit q at row-major mesh position q.
type rowMajorPolicy struct{}

func (rowMajorPolicy) Name() string { return "rowmajor" }

func (rowMajorPolicy) Place(c *circuit.Circuit, topo *network.Topology) ([]int, error) {
	if err := checkFits(c, topo); err != nil {
		return nil, err
	}
	m := make([]int, c.NumQubits)
	for q := range m {
		m[q] = q
	}
	return m, nil
}

// interactionPolicy is the greedy interaction-graph partitioner.
type interactionPolicy struct{}

func (interactionPolicy) Name() string { return "interaction" }

func (interactionPolicy) Place(c *circuit.Circuit, topo *network.Topology) ([]int, error) {
	if err := checkFits(c, topo); err != nil {
		return nil, err
	}
	n := c.NumQubits
	if n == 0 {
		return nil, nil
	}
	w := interactionWeights(c)

	mapping := greedyPlace(n, w, topo)

	// Never-worse guarantee: the greedy result must not exceed the
	// row-major baseline on the objective it optimizes (total weighted
	// mesh distance). Greedy placement has no approximation bound, so on
	// adversarial graphs it could lose; falling back makes "interaction is
	// at least as good as rowmajor" structural rather than statistical.
	rowMajor := make([]int, n)
	for q := range rowMajor {
		rowMajor[q] = q
	}
	if Cost(w, mapping, topo) > Cost(w, rowMajor, topo) {
		return rowMajor, nil
	}
	return mapping, nil
}

// interactionWeights builds the symmetric qubit-interaction matrix:
// +1 per two-qubit gate between a pair, +1 per conditioned operation
// between the consumer qubit and the qubit whose measurement produced each
// condition bit (that is real send/recv traffic on the fabric at run time).
func interactionWeights(c *circuit.Circuit) [][]int64 {
	n := c.NumQubits
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	add := func(a, b int) {
		if a == b || a < 0 || b < 0 || a >= n || b >= n {
			return
		}
		w[a][b]++
		w[b][a]++
	}
	// Bounds are guarded locally even though the pipeline validates the
	// circuit first — Policy is a public interface and a malformed op must
	// degrade to a missing edge, never an index panic.
	bitSource := make([]int, c.NumBits)
	for i := range bitSource {
		bitSource[i] = -1
	}
	for _, op := range c.Ops {
		if len(op.Qubits) == 0 {
			continue
		}
		if op.Kind == circuit.Measure {
			if op.CBit >= 0 && op.CBit < c.NumBits {
				bitSource[op.CBit] = op.Qubits[0]
			}
			continue
		}
		if op.Kind.IsTwoQubit() && len(op.Qubits) >= 2 {
			add(op.Qubits[0], op.Qubits[1])
		}
		if op.Cond != nil {
			for _, b := range op.Cond.Bits {
				if b >= 0 && b < c.NumBits {
					add(op.Qubits[0], bitSource[b])
				}
			}
		}
	}
	return w
}

// Cost is the objective the interaction placer minimizes: the sum over
// every interacting qubit pair of weight × mesh distance between their
// controllers. Exported so tests (and the bench self-check) can compare
// policies on the metric the placer actually optimizes. mapping must be
// explicit (non-nil).
func Cost(w [][]int64, mapping []int, topo *network.Topology) int64 {
	var total int64
	for a := range w {
		for b := a + 1; b < len(w); b++ {
			if w[a][b] != 0 {
				total += w[a][b] * int64(topo.MeshDistance(mapping[a], mapping[b]))
			}
		}
	}
	return total
}

// CircuitCost is Cost over the interaction graph extracted from c — the
// weighted-distance objective of a mapping for that circuit.
func CircuitCost(c *circuit.Circuit, mapping []int, topo *network.Topology) int64 {
	if mapping == nil {
		mapping = make([]int, c.NumQubits)
		for q := range mapping {
			mapping[q] = q
		}
	}
	return Cost(interactionWeights(c), mapping, topo)
}

// greedyPlace seeds the most-connected qubit at the mesh centroid, then
// repeatedly places the unplaced qubit most attached to the placed set
// onto the free controller minimizing weighted distance to its placed
// partners. All ties break toward lower indices, making the result
// deterministic.
func greedyPlace(n int, w [][]int64, topo *network.Topology) []int {
	totalW := make([]int64, n)
	for a := range w {
		for b := range w[a] {
			totalW[a] += w[a][b]
		}
	}

	// Qubit visit order: heaviest total weight first, then, among the
	// remaining, strongest attachment to the already-placed set.
	placedQ := make([]bool, n)
	order := make([]int, 0, n)
	attach := make([]int64, n)
	for len(order) < n {
		best, bestScore, bestTotal := -1, int64(-1), int64(-1)
		for q := 0; q < n; q++ {
			if placedQ[q] {
				continue
			}
			if attach[q] > bestScore || (attach[q] == bestScore && totalW[q] > bestTotal) {
				best, bestScore, bestTotal = q, attach[q], totalW[q]
			}
		}
		placedQ[best] = true
		order = append(order, best)
		for q := 0; q < n; q++ {
			if !placedQ[q] {
				attach[q] += w[best][q]
			}
		}
	}

	// Controller choice: free controller minimizing weighted distance to
	// placed partners; the seed qubit (and any qubit with no placed
	// partners) takes the free controller nearest the mesh centroid so
	// later neighbors have room on every side.
	mapping := make([]int, n)
	for i := range mapping {
		mapping[i] = -1
	}
	used := make([]bool, topo.N)
	centroid := centroidOrder(topo)
	for _, q := range order {
		bestC, bestCost := -1, int64(0)
		hasPartner := false
		for _, p := range order {
			if mapping[p] >= 0 && w[q][p] != 0 {
				hasPartner = true
				break
			}
		}
		if !hasPartner {
			for _, c := range centroid {
				if !used[c] {
					bestC = c
					break
				}
			}
		} else {
			for c := 0; c < topo.N; c++ {
				if used[c] {
					continue
				}
				var cost int64
				for p := 0; p < n; p++ {
					if mapping[p] >= 0 && w[q][p] != 0 {
						cost += w[q][p] * int64(topo.MeshDistance(c, mapping[p]))
					}
				}
				if bestC < 0 || cost < bestCost {
					bestC, bestCost = c, cost
				}
			}
		}
		mapping[q] = bestC
		used[bestC] = true
	}
	return mapping
}

// centroidOrder lists controllers by distance from the mesh center
// (sum of distances to all controllers), ties toward lower addresses.
func centroidOrder(topo *network.Topology) []int {
	type scored struct {
		c    int
		dist int64
	}
	s := make([]scored, topo.N)
	for c := 0; c < topo.N; c++ {
		var d int64
		for o := 0; o < topo.N; o++ {
			d += int64(topo.MeshDistance(c, o))
		}
		s[c] = scored{c, d}
	}
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].dist != s[j].dist {
			return s[i].dist < s[j].dist
		}
		return s[i].c < s[j].c
	})
	out := make([]int, topo.N)
	for i, e := range s {
		out[i] = e.c
	}
	return out
}
