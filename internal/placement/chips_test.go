package placement

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/workloads"
)

// rungs builds the chain-plus-cross-half-rung structure of the distributed
// VQE ansatz: a nearest-neighbor chain (contiguous splits cut it once) plus
// CNOT(q, q+n/2) rungs that contiguous splits cut n/2 times but a partition
// grouping {q, q+n/2} pairs cuts almost never. Pure greedy growth fails on
// it — the chain pulls every qubit into one blob — so it exercises the KL
// refinement specifically.
func rungs(n int) *circuit.Circuit {
	c := circuit.New(n)
	half := n / 2
	for q := 0; q+1 < n; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < half; q++ {
		c.CNOT(q, q+half)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func TestContiguousChipsBalanced(t *testing.T) {
	for _, n := range []int{1, 4, 7, 16} {
		for chips := 1; chips <= n && chips <= 5; chips++ {
			chipOf := ContiguousChips(n, chips)
			sizes := make([]int, chips)
			prev := 0
			for q, ch := range chipOf {
				if ch < prev {
					t.Fatalf("n=%d chips=%d: chip ids not monotone at qubit %d", n, chips, q)
				}
				prev = ch
				sizes[ch]++
			}
			for j, s := range sizes {
				if s < n/chips || s > n/chips+1 {
					t.Fatalf("n=%d chips=%d: chip %d holds %d qubits, want %d or %d", n, chips, j, s, n/chips, n/chips+1)
				}
			}
		}
	}
}

// TestPartitionChipsNeverWorse pins the fallback contract on every sweep
// workload: the interaction partition's cut is at most contiguous, and the
// block sizes still match the contiguous capacities (KL only swaps).
func TestPartitionChipsNeverWorse(t *testing.T) {
	cases := map[string]*circuit.Circuit{
		"ghz":   workloads.GHZ(16),
		"qft":   workloads.QFT(12),
		"bv":    workloads.BV(16, workloads.AlternatingSecret),
		"rungs": rungs(16),
	}
	for name, c := range cases {
		for _, chips := range []int{2, 3, 4} {
			chipOf, err := PartitionChips(c, chips, "interaction")
			if err != nil {
				t.Fatal(err)
			}
			contiguous := ContiguousChips(c.NumQubits, chips)
			if got, base := ChipCut(c, chipOf), ChipCut(c, contiguous); got > base {
				t.Fatalf("%s chips=%d: interaction cut %d > contiguous %d", name, chips, got, base)
			}
			sizes := make([]int, chips)
			for _, ch := range chipOf {
				if ch < 0 || ch >= chips {
					t.Fatalf("%s chips=%d: chip id %d out of range", name, chips, ch)
				}
				sizes[ch]++
			}
			baseSizes := make([]int, chips)
			for _, ch := range contiguous {
				baseSizes[ch]++
			}
			if !reflect.DeepEqual(sizes, baseSizes) {
				t.Fatalf("%s chips=%d: block sizes %v, want contiguous %v (balance broken)", name, chips, sizes, baseSizes)
			}
		}
	}
}

// TestPartitionChipsBeatsContiguousOnRungs is the strict half of the bench
// gate in unit form: on the rung structure the refined partition must cut
// strictly fewer gates than contiguous — this is exactly the case the
// greedy-only partitioner lost (its chain blob fell back to contiguous).
func TestPartitionChipsBeatsContiguousOnRungs(t *testing.T) {
	c := rungs(16)
	chipOf, err := PartitionChips(c, 2, "interaction")
	if err != nil {
		t.Fatal(err)
	}
	got := ChipCut(c, chipOf)
	base := ChipCut(c, ContiguousChips(16, 2))
	if base != 9 { // chain edge 7-8 plus the 8 rungs
		t.Fatalf("contiguous cut = %d, want 9 (test premise broken)", base)
	}
	if got >= base {
		t.Fatalf("interaction cut %d, want strictly below contiguous %d", got, base)
	}
}

func TestPartitionChipsDeterministic(t *testing.T) {
	c := rungs(14)
	first, err := PartitionChips(c, 3, "interaction")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := PartitionChips(c, 3, "interaction")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced %v, first run %v", i, again, first)
		}
	}
}

func TestPartitionChipsContiguousPolicies(t *testing.T) {
	c := workloads.GHZ(8)
	for _, policy := range []string{"", "identity", "rowmajor"} {
		chipOf, err := PartitionChips(c, 2, policy)
		if err != nil {
			t.Fatal(err)
		}
		if want := ContiguousChips(8, 2); !reflect.DeepEqual(chipOf, want) {
			t.Fatalf("%q partition = %v, want contiguous %v", policy, chipOf, want)
		}
	}
}

func TestPartitionChipsErrors(t *testing.T) {
	c := workloads.GHZ(4)
	if _, err := PartitionChips(c, 2, "bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := PartitionChips(c, 0, "interaction"); err == nil {
		t.Fatal("0 chips accepted")
	}
	if _, err := PartitionChips(c, 5, "interaction"); err == nil {
		t.Fatal("more chips than qubits accepted")
	}
}
