package placement

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
	"dhisq/internal/workloads"
)

func topoFor(t *testing.T, n int) *network.Topology {
	t.Helper()
	topo, err := network.NewTopology(network.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// hotspot builds the adversarial-for-row-major circuit the interaction
// placer exists for: a star where every data qubit talks to one hub that
// row-major order parks in the far corner of the mesh.
func hotspot(n int) *circuit.Circuit {
	c := circuit.New(n)
	hub := n - 1
	for round := 0; round < 3; round++ {
		for q := 0; q < n-1; q++ {
			c.CNOT(q, hub)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func TestRegistry(t *testing.T) {
	want := []string{"identity", "rowmajor", "interaction", "congestion"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range append(want, "") {
		p, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if name == "" && p.Name() != Default {
			t.Fatalf("Get(\"\") resolved to %q, want %q", p.Name(), Default)
		}
		if err := Valid(name); err != nil {
			t.Fatalf("Valid(%q): %v", name, err)
		}
	}
	if _, err := Get("bogus"); err == nil {
		t.Fatal("Get(bogus) succeeded")
	}
	if err := Valid("bogus"); err == nil {
		t.Fatal("Valid(bogus) succeeded")
	}
}

func TestIdentityIsNil(t *testing.T) {
	c := workloads.GHZ(9)
	topo := topoFor(t, 9)
	p, _ := Get("identity")
	m, err := p.Place(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatalf("identity mapping = %v, want nil (legacy convention)", m)
	}
}

func TestRowMajorIsExplicitIdentity(t *testing.T) {
	c := workloads.GHZ(9)
	topo := topoFor(t, 9)
	p, _ := Get("rowmajor")
	m, err := p.Place(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 9 {
		t.Fatalf("mapping length %d", len(m))
	}
	for q, ctrl := range m {
		if ctrl != q {
			t.Fatalf("rowmajor[%d] = %d, want %d", q, ctrl, q)
		}
	}
}

// TestPoliciesProduceValidPermutations: every policy's explicit output is
// a permutation — distinct controllers, all in range — on every workload.
func TestPoliciesProduceValidPermutations(t *testing.T) {
	cases := map[string]*circuit.Circuit{
		"ghz":     workloads.GHZ(12),
		"qft":     workloads.QFT(10),
		"bv":      workloads.BV(11, workloads.AlternatingSecret),
		"hotspot": hotspot(12),
	}
	for name, c := range cases {
		topo := topoFor(t, c.NumQubits)
		for _, pname := range Names() {
			p, _ := Get(pname)
			m, err := p.Place(c, topo)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pname, err)
			}
			if m == nil {
				continue // identity: nil is valid by convention
			}
			if len(m) != c.NumQubits {
				t.Fatalf("%s/%s: mapping length %d, want %d", name, pname, len(m), c.NumQubits)
			}
			seen := map[int]bool{}
			for q, ctrl := range m {
				if ctrl < 0 || ctrl >= topo.N {
					t.Fatalf("%s/%s: qubit %d -> controller %d out of [0,%d)", name, pname, q, ctrl, topo.N)
				}
				if seen[ctrl] {
					t.Fatalf("%s/%s: controller %d assigned twice", name, pname, ctrl)
				}
				seen[ctrl] = true
			}
		}
	}
}

// TestPoliciesDeterministic: repeated placement of the same circuit is
// bit-identical — the property that makes a policy name cacheable.
func TestPoliciesDeterministic(t *testing.T) {
	c := hotspot(14)
	topo := topoFor(t, 14)
	for _, pname := range Names() {
		p, _ := Get(pname)
		first, err := p.Place(c, topo)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			again, err := p.Place(c, topo)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: run %d produced %v, first run %v", pname, i, again, first)
			}
		}
	}
}

// TestInteractionNeverWorseThanRowMajor: on the hand-built hotspot (and
// the standard sweep workloads) the interaction placer's weighted-distance
// objective is <= row-major's — guaranteed by the explicit fallback, and
// strictly better on the hotspot where the hub must leave the corner.
func TestInteractionNeverWorseThanRowMajor(t *testing.T) {
	inter, _ := Get("interaction")
	rowm, _ := Get("rowmajor")
	cases := map[string]*circuit.Circuit{
		"hotspot": hotspot(16),
		"ghz":     workloads.GHZ(16),
		"qft":     workloads.QFT(12),
		"bv":      workloads.BV(16, workloads.AlternatingSecret),
	}
	for name, c := range cases {
		topo := topoFor(t, c.NumQubits)
		im, err := inter.Place(c, topo)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := rowm.Place(c, topo)
		if err != nil {
			t.Fatal(err)
		}
		ic, rc := CircuitCost(c, im, topo), CircuitCost(c, rm, topo)
		if ic > rc {
			t.Fatalf("%s: interaction cost %d > rowmajor cost %d", name, ic, rc)
		}
		if name == "hotspot" && ic >= rc {
			t.Fatalf("hotspot: interaction cost %d should beat rowmajor %d strictly", ic, rc)
		}
	}
}

// TestInteractionUsesFeedforwardTraffic: conditioned ops count as
// interactions between consumer and measuring qubit.
func TestInteractionUsesFeedforwardTraffic(t *testing.T) {
	c := circuit.New(9)
	c.MeasureInto(0, 0)
	for i := 0; i < 4; i++ {
		c.CondGate(circuit.X, circuit.Condition{Bits: []int{0}, Parity: 1}, 8)
	}
	w := interactionWeights(c)
	if w[0][8] != 4 || w[8][0] != 4 {
		t.Fatalf("feed-forward weight = %d/%d, want 4/4", w[0][8], w[8][0])
	}
}

func TestPlacementRejectsOversizedCircuit(t *testing.T) {
	c := workloads.GHZ(10)
	topo := topoFor(t, 4)
	for _, pname := range Names() {
		p, _ := Get(pname)
		if _, err := p.Place(c, topo); err == nil {
			t.Fatalf("%s accepted 10 qubits on 4 controllers", pname)
		}
	}
}

func TestAutoMeshMatchesNearSquare(t *testing.T) {
	for _, n := range []int{1, 2, 3, 9, 10, 30, 100} {
		w, h := AutoMesh(n)
		nw, nh := network.NearSquareMesh(n)
		if w != nw || h != nh {
			t.Fatalf("AutoMesh(%d) = %dx%d, want %dx%d", n, w, h, nw, nh)
		}
	}
}
