package placement

import (
	"dhisq/internal/circuit"
	"dhisq/internal/network"
)

// This file is the congestion-feedback side of placement: re-running the
// interaction partitioner with edge costs scaled by where a previous run's
// traffic actually queued. The neutral LinkLoad form exists because
// placement sits below internal/compiler in the import graph — the
// compiler's Feedback struct converts itself into []LinkLoad
// (compiler.Feedback.LinkLoads) before calling down here.

// LinkLoad is one directed controller-mesh link's observed queueing stall,
// the placement-side view of compiler.LinkStall.
type LinkLoad struct {
	From, To int   // controller endpoints of the directed link
	Stall    int64 // cycles messages waited to enter it
}

// congestionPolicy is the registry entry for congestion-aware placement.
// Through the bare Policy interface no measured feedback is available, so
// it degenerates to the interaction placer — the cold-start mapping the
// feedback loop then improves on. The stall-weighted path is
// CongestionPlace/CongestionCandidates, which the service's re-place hook
// and machine.RePlace drive with real measurements.
type congestionPolicy struct{}

func (congestionPolicy) Name() string { return "congestion" }

func (congestionPolicy) Place(c *circuit.Circuit, topo *network.Topology) ([]int, error) {
	return interactionPolicy{}.Place(c, topo)
}

// stallPressure folds the per-link loads into a per-controller pressure
// score: a link's stall charges both endpoints (the backlog forms at From,
// the traffic was bound for To — moving either side's qubits relieves it).
func stallPressure(n int, loads []LinkLoad) []int64 {
	press := make([]int64, n)
	for _, l := range loads {
		if l.Stall <= 0 {
			continue
		}
		if l.From >= 0 && l.From < n {
			press[l.From] += l.Stall
		}
		if l.To >= 0 && l.To < n {
			press[l.To] += l.Stall
		}
	}
	return press
}

// congestionWeights scales the interaction graph by measured stall
// pressure under the prior mapping: an edge between two qubits whose
// controllers sat in congested corners of the mesh gets up to lambda
// times heavier, so the greedy partitioner pulls exactly those qubits
// closer together on the re-place. Weights stay integral (everything is
// scaled by a common factor of 8) so tie-breaking remains exact.
func congestionWeights(c *circuit.Circuit, topo *network.Topology, prior []int, loads []LinkLoad, lambda int64) [][]int64 {
	w := interactionWeights(c)
	press := stallPressure(topo.N, loads)
	var maxP int64
	for _, p := range press {
		if p > maxP {
			maxP = p
		}
	}
	n := c.NumQubits
	at := func(q int) int64 {
		ctrl := q
		if prior != nil && q < len(prior) {
			ctrl = prior[q]
		}
		if ctrl < 0 || ctrl >= len(press) {
			return 0
		}
		return press[ctrl]
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if w[a][b] == 0 {
				continue
			}
			scale := int64(8)
			if maxP > 0 {
				scale += lambda * 8 * (at(a) + at(b)) / (2 * maxP)
			}
			w[a][b] *= scale
		}
	}
	return w
}

// CongestionPlace re-runs the interaction partitioner with stall-weighted
// edge costs: the measured loads (from a run under prior — nil = identity)
// reweight the interaction graph, and the standard greedy placer
// repartitions it. Deterministic for deterministic inputs. With no stall
// signal it reduces exactly to the interaction placement.
//
// There is deliberately no never-worse fallback here: trading weighted
// distance for congestion balance is the point. Callers that need a
// measured never-worse guarantee probe candidates against the incumbent —
// that is machine.RePlace.
func CongestionPlace(c *circuit.Circuit, topo *network.Topology, prior []int, loads []LinkLoad) ([]int, error) {
	if err := checkFits(c, topo); err != nil {
		return nil, err
	}
	n := c.NumQubits
	if n == 0 {
		return nil, nil
	}
	return greedyPlace(n, congestionWeights(c, topo, prior, loads, 2), topo), nil
}

// CongestionCandidates is the deterministic candidate family a probe-based
// re-placer selects from: the interaction placement plus stall-weighted
// variants at increasing feedback gain. Duplicates are elided; order is
// stable (mildest gain first), so "ties keep the earliest candidate"
// selection is reproducible.
func CongestionCandidates(c *circuit.Circuit, topo *network.Topology, prior []int, loads []LinkLoad) ([][]int, error) {
	if err := checkFits(c, topo); err != nil {
		return nil, err
	}
	n := c.NumQubits
	if n == 0 {
		return nil, nil
	}
	var out [][]int
	add := func(m []int) {
		for _, have := range out {
			if equalMapping(have, m) {
				return
			}
		}
		out = append(out, m)
	}
	if m, err := (interactionPolicy{}).Place(c, topo); err == nil && m != nil {
		add(m)
	}
	for _, lambda := range []int64{1, 2, 4, 8} {
		add(greedyPlace(n, congestionWeights(c, topo, prior, loads, lambda), topo))
	}
	return out, nil
}

func equalMapping(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
