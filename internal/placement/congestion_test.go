package placement

import (
	"reflect"
	"testing"

	"dhisq/internal/network"
)

func congTopo(t *testing.T, n int) *network.Topology {
	t.Helper()
	cfg := network.DefaultConfig(n)
	topo, err := network.NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestCongestionPolicyRegistered: "congestion" resolves through the
// registry and, fed no measurement (the bare Policy interface), degrades
// to the interaction placement — the documented cold-start behavior.
func TestCongestionPolicyRegistered(t *testing.T) {
	p, err := Get("congestion")
	if err != nil {
		t.Fatal(err)
	}
	c := hotspot(9)
	topo := congTopo(t, 9)
	got, err := p.Place(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (interactionPolicy{}).Place(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cold congestion placement %v != interaction %v", got, want)
	}
}

// TestCongestionPlaceNoSignalReducesToInteraction: with zero link loads
// the stall-weighted placer must reproduce the interaction mapping
// exactly (every edge scales by the same constant).
func TestCongestionPlaceNoSignalReducesToInteraction(t *testing.T) {
	c := hotspot(12)
	topo := congTopo(t, 12)
	got, err := CongestionPlace(c, topo, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := greedyPlace(c.NumQubits, interactionWeights(c), topo)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("no-signal CongestionPlace %v != greedy interaction %v", got, want)
	}
}

// TestCongestionPlaceDeterministic: identical loads yield identical
// mappings, and a stall signal actually changes the result on a circuit
// whose interaction graph is symmetric enough to be steerable.
func TestCongestionPlaceDeterministic(t *testing.T) {
	c := hotspot(12)
	topo := congTopo(t, 12)
	loads := []LinkLoad{
		{From: 0, To: 1, Stall: 50},
		{From: 1, To: 0, Stall: 30},
		{From: 4, To: 5, Stall: 10},
	}
	a, err := CongestionPlace(c, topo, nil, loads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CongestionPlace(c, topo, nil, loads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical loads produced different mappings: %v vs %v", a, b)
	}
}

// TestCongestionCandidatesShape: candidates are deduped, deterministic,
// include the interaction placement first, and every entry is a valid
// permutation of controllers.
func TestCongestionCandidatesShape(t *testing.T) {
	c := hotspot(9)
	topo := congTopo(t, 9)
	loads := []LinkLoad{{From: 2, To: 3, Stall: 40}, {From: 3, To: 2, Stall: 12}}
	cands, err := CongestionCandidates(c, topo, nil, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	inter, err := (interactionPolicy{}).Place(c, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cands[0], inter) {
		t.Fatalf("candidate 0 %v is not the interaction placement %v", cands[0], inter)
	}
	for i, m := range cands {
		if len(m) != c.NumQubits {
			t.Fatalf("candidate %d has length %d", i, len(m))
		}
		seen := map[int]bool{}
		for _, ctrl := range m {
			if ctrl < 0 || ctrl >= topo.N || seen[ctrl] {
				t.Fatalf("candidate %d is not a valid placement: %v", i, m)
			}
			seen[ctrl] = true
		}
		for j := 0; j < i; j++ {
			if reflect.DeepEqual(cands[j], m) {
				t.Fatalf("candidates %d and %d are duplicates: %v", j, i, m)
			}
		}
	}
	again, err := CongestionCandidates(c, topo, nil, loads)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cands, again) {
		t.Fatal("candidate family not deterministic")
	}
}

// TestStallPressureChargesBothEndpoints: a link's stall must raise the
// pressure of both its endpoints and ignore out-of-range controllers.
func TestStallPressureChargesBothEndpoints(t *testing.T) {
	press := stallPressure(4, []LinkLoad{
		{From: 1, To: 2, Stall: 10},
		{From: 2, To: 1, Stall: 4},
		{From: 9, To: 0, Stall: 7},  // From out of range: only To charged
		{From: 3, To: 3, Stall: -5}, // non-positive stall ignored
	})
	want := []int64{7, 14, 14, 0}
	if !reflect.DeepEqual(press, want) {
		t.Fatalf("pressure = %v, want %v", press, want)
	}
}
