package placement

import (
	"fmt"

	"dhisq/internal/circuit"
)

// This file holds the chip-level partitioner of the multi-chip model
// (DESIGN.md §13): before controller placement, the Place pass splits the
// data qubits across chips, and every two-qubit gate whose operands land on
// different chips becomes an EPR-mediated remote gate. The objective is
// therefore the cut size — the number of gates teleported — not mesh
// distance, so the partitioner is separate from the controller placers
// above, but it reuses their policy names: "identity"/"rowmajor" cut the
// qubit range into contiguous blocks, "interaction"/"congestion" run a
// greedy balanced min-cut over the same interaction weights.

// ContiguousChips is the baseline partition: qubit q on chip q*chips/n,
// blocks as equal as possible, in index order.
func ContiguousChips(n, chips int) []int {
	chipOf := make([]int, n)
	for q := range chipOf {
		chipOf[q] = q * chips / n
	}
	return chipOf
}

// PartitionChips assigns each of c's qubits to one of chips chips under the
// named placement policy. "identity" and "rowmajor" (and "") return the
// contiguous-block baseline; "interaction" and "congestion" run a greedy
// balanced min-cut and fall back to the baseline when greedy loses on the
// cut objective, so the cut-minimizing partition is never worse than
// contiguous by construction. Deterministic for a fixed (circuit, chips,
// policy) — the partition is hashed into the artifact fingerprint.
func PartitionChips(c *circuit.Circuit, chips int, policy string) ([]int, error) {
	if _, err := Get(policy); err != nil {
		return nil, err
	}
	n := c.NumQubits
	if chips < 1 {
		return nil, fmt.Errorf("placement: %d chips", chips)
	}
	if chips > n {
		return nil, fmt.Errorf("placement: %d chips exceed %d qubits", chips, n)
	}
	contiguous := ContiguousChips(n, chips)
	if chips == 1 || policy == "" || policy == "identity" || policy == "rowmajor" {
		return contiguous, nil
	}

	// Greedy balanced min-cut: qubits in descending total interaction
	// weight, each assigned to the chip (with remaining capacity) holding
	// the most weight toward already-assigned qubits. Capacities mirror the
	// contiguous block sizes so both policies compare like for like.
	w := pairWeights(c)
	totalW := make([]int64, n)
	for a := range w {
		for b := range w[a] {
			totalW[a] += w[a][b]
		}
	}
	order := make([]int, n)
	for q := range order {
		order[q] = q
	}
	for i := 1; i < n; i++ { // insertion sort: stable, deterministic, tiny n
		for j := i; j > 0 && totalW[order[j]] > totalW[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	capacity := make([]int, chips)
	for _, j := range contiguous {
		capacity[j]++
	}
	chipOf := make([]int, n)
	for q := range chipOf {
		chipOf[q] = -1
	}
	for _, q := range order {
		bestChip, bestGain := -1, int64(-1)
		for j := 0; j < chips; j++ {
			if capacity[j] == 0 {
				continue
			}
			var gain int64
			for p := 0; p < n; p++ {
				if chipOf[p] == j {
					gain += w[q][p]
				}
			}
			if gain > bestGain {
				bestChip, bestGain = j, gain
			}
		}
		chipOf[q] = bestChip
		capacity[bestChip]--
	}

	// Greedy alone grows one blob along whatever structure it meets first
	// and gets stuck in local minima (a chain workload with cross-half
	// rungs defeats it entirely), so refine both the greedy assignment and
	// the contiguous baseline with Kernighan–Lin passes and keep whichever
	// cuts less. KL is O(passes × n²) per chip pair; beyond the guard size
	// the unrefined greedy-vs-contiguous comparison stands alone.
	if n <= klMaxQubits {
		klRefine(w, chipOf, chips)
		refined := append([]int(nil), contiguous...)
		klRefine(w, refined, chips)
		if ChipCut(c, refined) < ChipCut(c, chipOf) {
			chipOf = refined
		}
	}

	// Never-worse guarantee on the objective (cf. interactionPolicy.Place).
	if ChipCut(c, chipOf) > ChipCut(c, contiguous) {
		return contiguous, nil
	}
	return chipOf, nil
}

// klMaxQubits bounds the KL refinement: above this the quadratic passes
// stop being compile-time noise, and the greedy/contiguous comparison is
// used as computed.
const klMaxQubits = 512

// pairWeights counts the two-qubit ops between every qubit pair — the
// exact objective ChipCut totals, unlike interactionWeights, which also
// carries feed-forward edges that no chip boundary can cut.
func pairWeights(c *circuit.Circuit) [][]int64 {
	n := c.NumQubits
	w := make([][]int64, n)
	for i := range w {
		w[i] = make([]int64, n)
	}
	for _, op := range c.Ops {
		if op.Kind.IsTwoQubit() && len(op.Qubits) == 2 {
			a, b := op.Qubits[0], op.Qubits[1]
			w[a][b]++
			w[b][a]++
		}
	}
	return w
}

// klRefine improves the partition in place with Kernighan–Lin passes over
// every chip pair: tentative locked swaps that may go uphill mid-pass,
// keeping the best prefix — which escapes exactly the local minima greedy
// hill-climbing cannot. Block sizes are preserved (every move is a swap),
// and the procedure is deterministic: ties break on the lowest qubit
// index, passes run in fixed chip-pair order until no pair improves.
func klRefine(w [][]int64, chipOf []int, chips int) {
	improved := true
	for round := 0; improved && round < 4; round++ {
		improved = false
		for i := 0; i < chips; i++ {
			for j := i + 1; j < chips; j++ {
				for klPass(w, chipOf, i, j) {
					improved = true
				}
			}
		}
	}
}

// klPass runs one Kernighan–Lin pass between chips i and j, returning
// whether it applied a strict improvement.
func klPass(w [][]int64, chipOf []int, i, j int) bool {
	var a, b []int
	for q, ch := range chipOf {
		switch ch {
		case i:
			a = append(a, q)
		case j:
			b = append(b, q)
		}
	}
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	// D[q] = external - internal weight of q relative to the (i, j) pair;
	// edges to other chips are unaffected by any i<->j swap.
	d := map[int]int64{}
	for _, q := range append(append([]int(nil), a...), b...) {
		var ext, int_ int64
		other := j
		if chipOf[q] == j {
			other = i
		}
		for p, ch := range chipOf {
			switch ch {
			case chipOf[q]:
				int_ += w[q][p]
			case other:
				ext += w[q][p]
			}
		}
		d[q] = ext - int_
	}
	locked := map[int]bool{}
	type swap struct{ qa, qb int }
	var swaps []swap
	var gains []int64
	steps := len(a)
	if len(b) < steps {
		steps = len(b)
	}
	for s := 0; s < steps; s++ {
		bestGain := int64(-1 << 62)
		bestA, bestB := -1, -1
		for _, qa := range a {
			if locked[qa] {
				continue
			}
			for _, qb := range b {
				if locked[qb] {
					continue
				}
				if g := d[qa] + d[qb] - 2*w[qa][qb]; g > bestGain {
					bestGain, bestA, bestB = g, qa, qb
				}
			}
		}
		if bestA < 0 {
			break
		}
		locked[bestA], locked[bestB] = true, true
		swaps = append(swaps, swap{bestA, bestB})
		gains = append(gains, bestGain)
		// Update D for unlocked members as if the swap were applied.
		for _, q := range a {
			if !locked[q] {
				d[q] += 2*w[q][bestA] - 2*w[q][bestB]
			}
		}
		for _, q := range b {
			if !locked[q] {
				d[q] += 2*w[q][bestB] - 2*w[q][bestA]
			}
		}
	}
	// Best prefix of cumulative gain; apply only if strictly positive.
	bestK, bestSum, sum := 0, int64(0), int64(0)
	for k, g := range gains {
		sum += g
		if sum > bestSum {
			bestK, bestSum = k+1, sum
		}
	}
	if bestK == 0 {
		return false
	}
	for _, sw := range swaps[:bestK] {
		chipOf[sw.qa], chipOf[sw.qb] = chipOf[sw.qb], chipOf[sw.qa]
	}
	return true
}

// ChipCut counts the two-qubit ops of c crossing the chip partition — the
// gates the expansion teleports (a cross-chip SWAP counts once here even
// though it expands to three remote CNOTs; the runtime EPR-pair count is
// reported separately by the machine).
func ChipCut(c *circuit.Circuit, chipOf []int) int {
	return circuit.RemoteGateCount(c, chipOf)
}
