package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fig12Control is the control-board program from the paper's Figure 12,
// verbatim (comments elided).
const fig12Control = `
addi $2,$0,120
addi $1,$0,0
waiti 1
cw.i.i 21,2
addi $1,$1,40
cw.i.i 20,2
waitr $1
sync 2
waiti 8
cw.i.i 7,1
waiti 50
bne $1,$2,-28
jal $0,-44
`

const fig12Readout = `
waiti 2
sync 1
waiti 6
waiti 57
cw.i.i 5,1
jal $0,-20
`

func TestAssembleFig12Programs(t *testing.T) {
	ctrl, err := Assemble(fig12Control)
	if err != nil {
		t.Fatalf("control board: %v", err)
	}
	if ctrl.Len() != 13 {
		t.Fatalf("control board: %d instrs, want 13", ctrl.Len())
	}
	// Spot-check key instructions.
	if in := ctrl.Instrs[0]; in.Op != OpADDI || in.Rd != 2 || in.Rs1 != 0 || in.Imm != 120 {
		t.Errorf("instr 0 = %v", in)
	}
	if in := ctrl.Instrs[3]; in.Op != OpCWII || in.Rd != 21 || in.Imm != 2 {
		t.Errorf("instr 3 = %v", in)
	}
	if in := ctrl.Instrs[6]; in.Op != OpWAITR || in.Rs1 != 1 {
		t.Errorf("instr 6 = %v", in)
	}
	if in := ctrl.Instrs[7]; in.Op != OpSYNC || in.Imm != 2 {
		t.Errorf("instr 7 = %v", in)
	}
	// bne $1,$2,-28 jumps back 7 instructions: 11 + (-28/4) = 4.
	if in := ctrl.Instrs[11]; in.Op != OpBNE || in.Imm != -28 {
		t.Errorf("instr 11 = %v", in)
	}
	// jal $0,-44 jumps back 11 instructions: 12 - 11 = 1.
	if in := ctrl.Instrs[12]; in.Op != OpJAL || in.Imm != -44 {
		t.Errorf("instr 12 = %v", in)
	}

	ro, err := Assemble(fig12Readout)
	if err != nil {
		t.Fatalf("readout board: %v", err)
	}
	if ro.Len() != 6 {
		t.Fatalf("readout board: %d instrs, want 6", ro.Len())
	}
}

func TestAssembleLabels(t *testing.T) {
	p, err := Assemble(`
		li $1, 0
	loop:
		addi $1, $1, 1
		bne $1, $2, loop
		j end
		addi $3, $0, 99
	end:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// bne at index 2 targets index 1: offset (1-2)*4 = -4.
	if p.Instrs[2].Imm != -4 {
		t.Errorf("bne offset = %d, want -4", p.Instrs[2].Imm)
	}
	// j at index 3 targets index 5: offset +8.
	if p.Instrs[3].Op != OpJAL || p.Instrs[3].Imm != 8 {
		t.Errorf("j = %v", p.Instrs[3])
	}
	if p.Symbols["loop"] != 1 || p.Symbols["end"] != 5 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestAssembleLiExpansion(t *testing.T) {
	p, err := Assemble("li $5, 75000") // 300 us in cycles; needs lui+addi
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Instrs[0].Op != OpLUI || p.Instrs[1].Op != OpADDI {
		t.Fatalf("expansion = %v", p.Instrs)
	}
	// Verify the expansion reconstructs the value.
	v := uint32(p.Instrs[0].Imm) << 12
	v += uint32(p.Instrs[1].Imm)
	if v != 75000 {
		t.Fatalf("li reconstructs %d, want 75000", v)
	}
	// Negative large immediate.
	p2, err := Assemble("li $5, -100000")
	if err != nil {
		t.Fatal(err)
	}
	v2 := uint32(p2.Instrs[0].Imm) << 12
	v2 += uint32(p2.Instrs[1].Imm)
	if int32(v2) != -100000 {
		t.Fatalf("li reconstructs %d, want -100000", int32(v2))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frobnicate $1,$2",     // unknown mnemonic
		"addi $1,$2",           // missing operand
		"addi $32,$0,1",        // bad register
		"cw.i.i 99,1",          // port out of immediate range
		"bne $1,$2,nosuch",     // undefined label -> parse as imm fails
		"waiti 1\nwaiti 40000", // imm too large for I-type encode
		"loop: nop\nloop: nop", // duplicate label
		"jal $0,7",             // misaligned target
	}
	for _, src := range cases {
		p, err := Assemble(src)
		if err == nil {
			if _, err2 := EncodeProgram(p); err2 == nil {
				t.Errorf("Assemble(%q): expected error", src)
			}
		}
	}
}

func TestAssembleRegisterAliases(t *testing.T) {
	p, err := Assemble("add x5, t0, a0\naddi zero, ra, 1")
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Instrs[0]; in.Rd != 5 || in.Rs1 != 5 || in.Rs2 != 10 {
		t.Errorf("aliases: %v", in)
	}
	if in := p.Instrs[1]; in.Rd != 0 || in.Rs1 != 1 {
		t.Errorf("aliases: %v", in)
	}
}

func TestLoadStoreSyntax(t *testing.T) {
	p, err := Assemble("lw $3, 8($2)\nsw $3, -4($2)\nlw $4, ($2)")
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Instrs[0]; in.Op != OpLW || in.Rd != 3 || in.Rs1 != 2 || in.Imm != 8 {
		t.Errorf("lw = %v", in)
	}
	if in := p.Instrs[1]; in.Op != OpSW || in.Rs2 != 3 || in.Rs1 != 2 || in.Imm != -4 {
		t.Errorf("sw = %v", in)
	}
	if in := p.Instrs[2]; in.Imm != 0 {
		t.Errorf("lw no-offset = %v", in)
	}
}

func TestEncodeDecodeAllOpsExamples(t *testing.T) {
	src := `
lui $1, 1000
auipc $2, 4
jal $1, 8
jalr $1, $2, 4
beq $1,$2,8
bne $1,$2,8
blt $1,$2,-4
bge $1,$2,-4
bltu $1,$2,8
bgeu $1,$2,8
lb $1, 1($2)
lh $1, 2($2)
lw $1, 4($2)
lbu $1, 1($2)
lhu $1, 2($2)
sb $1, 1($2)
sh $1, 2($2)
sw $1, 4($2)
addi $1,$2,-5
slti $1,$2,5
sltiu $1,$2,5
xori $1,$2,5
ori $1,$2,5
andi $1,$2,5
slli $1,$2,5
srli $1,$2,5
srai $1,$2,5
add $1,$2,$3
sub $1,$2,$3
sll $1,$2,$3
slt $1,$2,$3
sltu $1,$2,$3
xor $1,$2,$3
srl $1,$2,$3
sra $1,$2,$3
or $1,$2,$3
and $1,$2,$3
waiti 100
waitr $4
sync 2
fmr $5, 3
send $5, 7
recv $6, 7
halt
cw.i.i 21,2
cw.i.r 21,$3
cw.r.i $4,2
cw.r.r $4,$5
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	code, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("length mismatch %d vs %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != q.Instrs[i] {
			t.Errorf("instr %d: %v -> %v", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

// randInstr builds a random but encodable instruction.
func randInstr(r *rand.Rand) Instr {
	ops := []Op{
		OpLUI, OpAUIPC, OpJAL, OpJALR, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU,
		OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW,
		OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI,
		OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpWAITI, OpWAITR, OpSYNC, OpFMR, OpSEND, OpRECV, OpHALT,
		OpCWII, OpCWIR, OpCWRI, OpCWRR,
	}
	in := Instr{Op: ops[r.Intn(len(ops))]}
	reg := func() uint8 { return uint8(r.Intn(32)) }
	switch encTable[in.Op].form {
	case 'R':
		in.Rd, in.Rs1, in.Rs2 = reg(), reg(), reg()
		if in.Op == OpCWRR {
			in.Rd = 0
		}
	case 'I':
		in.Rd, in.Rs1 = reg(), reg()
		in.Imm = int32(r.Intn(4096) - 2048)
		switch in.Op {
		case OpSLLI, OpSRLI, OpSRAI:
			in.Imm = int32(r.Intn(32))
		case OpWAITI, OpSYNC:
			in.Rd, in.Rs1 = 0, 0
			in.Imm = int32(r.Intn(2048))
		case OpWAITR:
			in.Rd = 0
			in.Imm = 0
		case OpFMR, OpRECV:
			in.Rs1 = 0
			in.Imm = int32(r.Intn(2048))
		case OpSEND:
			in.Rd = 0
			in.Imm = int32(r.Intn(2048))
		case OpHALT:
			in.Rd, in.Rs1, in.Imm = 0, 0, 0
		case OpCWII:
			in.Rs1 = 0
			in.Imm = int32(r.Intn(4096) - 2048)
		case OpCWIR:
			in.Imm = 0
		case OpCWRI:
			in.Rd = 0
			in.Imm = int32(r.Intn(4096) - 2048)
		}
	case 'S':
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(r.Intn(4096) - 2048)
	case 'B':
		in.Rs1, in.Rs2 = reg(), reg()
		in.Imm = int32(r.Intn(4096)-2048) &^ 1
	case 'U':
		in.Rd = reg()
		in.Imm = int32(r.Intn(1 << 20))
	case 'J':
		in.Rd = reg()
		in.Imm = int32(r.Intn(1<<20)-(1<<19)) &^ 1
	}
	return in
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		in := randInstr(r)
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %v (%#08x): %v", in, w, err)
		}
		if in != out {
			t.Fatalf("round trip: %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestDisassembleReassembleFixedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var prog Program
	for i := 0; i < 500; i++ {
		in := randInstr(r)
		// Branch/jump offsets must stay in-program for Validate; pin them.
		if in.Op.IsBranch() || in.Op == OpJAL {
			in.Imm = 0
		}
		prog.Instrs = append(prog.Instrs, in)
	}
	text := prog.Text()
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p2.Instrs) != len(prog.Instrs) {
		t.Fatalf("length changed: %d -> %d", len(prog.Instrs), len(p2.Instrs))
	}
	for i := range prog.Instrs {
		if prog.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instr %d changed: %v -> %v", i, prog.Instrs[i], p2.Instrs[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // rejected is fine
		}
		// If accepted, re-encoding must reproduce the semantic fields.
		w2, err := Encode(in)
		if err != nil {
			return false
		}
		in2, err := Decode(w2)
		return err == nil && in == in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesOutOfRangeBranch(t *testing.T) {
	p := &Program{Instrs: []Instr{{Op: OpBEQ, Imm: 400}}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range branch error")
	}
	p2 := &Program{Instrs: []Instr{{Op: OpJAL, Imm: -8}}}
	if err := p2.Validate(); err == nil {
		t.Fatal("expected out-of-range jal error")
	}
}

func TestProgramText(t *testing.T) {
	p := MustAssemble("addi $1,$0,5\ncw.i.i 3,7\nhalt")
	txt := p.Text()
	if !strings.Contains(txt, "addi $1,$0,5") || !strings.Contains(txt, "cw.i.i 3,7") {
		t.Fatalf("text = %q", txt)
	}
}
