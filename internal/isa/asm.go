package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates HISQ assembly text into a Program. The accepted syntax
// is the one used in the paper's Figure 12 listings, extended with labels:
//
//	# comment            (also // and ;)
//	loop:                label
//	addi $1,$1,40        registers as $n, xn, or ABI names
//	cw.i.i 21,2          immediate port, immediate codeword
//	lw $3,8($2)          load/store with displacement
//	bne $1,$2,-28        branch to byte offset ...
//	bne $1,$2,loop       ... or to a label
//	jal $0,-44
//	li $2,120            pseudo: expands to addi / lui+addi
//	nop / mv / j / halt  pseudo-instructions
//
// Numeric branch/jump operands are byte offsets relative to the branch
// instruction itself (RISC-V semantics); instructions are 4 bytes.
func Assemble(src string) (*Program, error) {
	type line struct {
		num    int
		fields []string // mnemonic + operands
	}
	labels := map[string]int{}
	var lines []line
	idx := 0
	for n, raw := range strings.Split(src, "\n") {
		s := stripComment(raw)
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		// Peel off any leading labels ("a: b: instr" is legal).
		for {
			c := strings.IndexByte(s, ':')
			if c < 0 {
				break
			}
			name := strings.TrimSpace(s[:c])
			if !isIdent(name) {
				break
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", n+1, name)
			}
			labels[name] = idx
			s = strings.TrimSpace(s[c+1:])
		}
		if s == "" {
			continue
		}
		mnem, rest, _ := strings.Cut(s, " ")
		fields := []string{strings.ToLower(strings.TrimSpace(mnem))}
		rest = strings.TrimSpace(rest)
		if rest != "" {
			for _, f := range strings.Split(rest, ",") {
				fields = append(fields, strings.TrimSpace(f))
			}
		}
		lines = append(lines, line{num: n + 1, fields: fields})
		idx += pseudoSize(fields)
	}

	p := &Program{Symbols: labels}
	for _, ln := range lines {
		ins, err := parseInstr(ln.fields, len(p.Instrs), labels)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", ln.num, err)
		}
		p.Instrs = append(p.Instrs, ins...)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for known-good sources (tests, examples); it
// panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, sep := range []string{"#", "//", ";"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pseudoSize returns how many machine instructions a source line expands to.
func pseudoSize(fields []string) int {
	if fields[0] == "li" && len(fields) == 3 {
		if v, err := strconv.ParseInt(fields[2], 0, 64); err == nil {
			if v < -2048 || v > 2047 {
				return 2 // lui+addi
			}
		}
	}
	return 1
}

func parseReg(s string) (uint8, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if n, ok := abiNames[t]; ok {
		return n, nil
	}
	if len(t) >= 2 && (t[0] == '$' || t[0] == 'x') {
		v, err := strconv.Atoi(t[1:])
		if err == nil && v >= 0 && v <= 31 {
			return uint8(v), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}

// parseTarget resolves a branch/jump operand: a label or a byte offset.
func parseTarget(s string, at int, labels map[string]int) (int32, error) {
	if tgt, ok := labels[s]; ok {
		return int32((tgt - at) * 4), nil
	}
	return parseImm(s)
}

// parseMem parses "imm(reg)" operands of loads and stores.
func parseMem(s string) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	var off int32
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	reg, err := parseReg(s[open+1 : close])
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

func parseInstr(f []string, at int, labels map[string]int) ([]Instr, error) {
	need := func(n int) error {
		if len(f)-1 != n {
			return fmt.Errorf("%s: want %d operands, got %d", f[0], n, len(f)-1)
		}
		return nil
	}
	one := func(in Instr, err error) ([]Instr, error) {
		if err != nil {
			return nil, err
		}
		return []Instr{in}, nil
	}

	switch f[0] {
	// ---- pseudo-instructions ----
	case "nop":
		return one(Instr{Op: OpADDI}, need(0))
	case "halt":
		return one(Instr{Op: OpHALT}, need(0))
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		rs, err := parseReg(f[2])
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpADDI, Rd: rd, Rs1: rs}}, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := parseTarget(f[1], at, labels)
		if err != nil {
			return nil, err
		}
		return []Instr{{Op: OpJAL, Rd: 0, Imm: off}}, nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(f[2])
		if err != nil {
			return nil, err
		}
		if v >= -2048 && v <= 2047 {
			return []Instr{{Op: OpADDI, Rd: rd, Imm: v}}, nil
		}
		// lui rd, hi ; addi rd, rd, lo — standard RISC-V li expansion with
		// rounding so the sign-extended addi lands on the exact value.
		lo := v << 20 >> 20
		hi := (v - lo) >> 12 & 0xFFFFF
		return []Instr{
			{Op: OpLUI, Rd: rd, Imm: hi},
			{Op: OpADDI, Rd: rd, Rs1: rd, Imm: lo},
		}, nil

	// ---- HISQ extension ----
	case "waiti":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(f[1])
		return one(Instr{Op: OpWAITI, Imm: v}, err)
	case "waitr":
		if err := need(1); err != nil {
			return nil, err
		}
		r, err := parseReg(f[1])
		return one(Instr{Op: OpWAITR, Rs1: r}, err)
	case "sync":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(f[1])
		return one(Instr{Op: OpSYNC, Imm: v}, err)
	case "fmr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		ch, err := parseImm(f[2])
		return one(Instr{Op: OpFMR, Rd: rd, Imm: ch}, err)
	case "send":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		tgt, err := parseImm(f[2])
		return one(Instr{Op: OpSEND, Rs1: rs, Imm: tgt}, err)
	case "recv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		src, err := parseImm(f[2])
		return one(Instr{Op: OpRECV, Rd: rd, Imm: src}, err)
	case "cw.i.i":
		if err := need(2); err != nil {
			return nil, err
		}
		port, err := parseImm(f[1])
		if err != nil {
			return nil, err
		}
		if port < 0 || port > 31 {
			return nil, fmt.Errorf("cw.i.i: immediate port %d out of range 0..31 (use cw.r.*)", port)
		}
		cw, err := parseImm(f[2])
		return one(Instr{Op: OpCWII, Rd: uint8(port), Imm: cw}, err)
	case "cw.i.r":
		if err := need(2); err != nil {
			return nil, err
		}
		port, err := parseImm(f[1])
		if err != nil {
			return nil, err
		}
		if port < 0 || port > 31 {
			return nil, fmt.Errorf("cw.i.r: immediate port %d out of range 0..31", port)
		}
		r, err := parseReg(f[2])
		return one(Instr{Op: OpCWIR, Rd: uint8(port), Rs1: r}, err)
	case "cw.r.i":
		if err := need(2); err != nil {
			return nil, err
		}
		r, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		cw, err := parseImm(f[2])
		return one(Instr{Op: OpCWRI, Rs1: r, Imm: cw}, err)
	case "cw.r.r":
		if err := need(2); err != nil {
			return nil, err
		}
		r1, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		r2, err := parseReg(f[2])
		return one(Instr{Op: OpCWRR, Rs1: r1, Rs2: r2}, err)
	}

	// ---- RV32I ----
	var op Op
	for o := OpLUI; o < opCount; o++ {
		if opNames[o] == f[0] {
			op = o
			break
		}
	}
	if op == OpInvalid {
		return nil, fmt.Errorf("unknown mnemonic %q", f[0])
	}
	switch op {
	case OpLUI, OpAUIPC:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(f[2])
		return one(Instr{Op: op, Rd: rd, Imm: v}, err)
	case OpJAL:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		off, err := parseTarget(f[2], at, labels)
		return one(Instr{Op: op, Rd: rd, Imm: off}, err)
	case OpJALR:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(f[2])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(f[3])
		return one(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: v}, err)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(f[2])
		if err != nil {
			return nil, err
		}
		off, err := parseTarget(f[3], at, labels)
		return one(Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, err)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(f[2])
		return one(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: off}, err)
	case OpSB, OpSH, OpSW:
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		off, rs1, err := parseMem(f[2])
		return one(Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, err)
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(f[2])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(f[3])
		return one(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: v}, err)
	default: // R-type ALU
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseReg(f[1])
		if err != nil {
			return nil, err
		}
		rs1, err := parseReg(f[2])
		if err != nil {
			return nil, err
		}
		rs2, err := parseReg(f[3])
		return one(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, err)
	}
}
