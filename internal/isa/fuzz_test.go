package isa

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"testing"
)

// FuzzAssemble drives the hisq-asm text parser with arbitrary input. The
// assembler must reject garbage with an error, never a panic; accepted
// programs must survive the encode/decode round trip.
func FuzzAssemble(f *testing.F) {
	// Seed corpus: the Figure 12-style constructs the assembler documents,
	// drawn from the examples and the paper listings.
	seeds := []string{
		"addi $1,$0,40\nhalt\n",
		"# comment\nloop:\naddi $1,$1,-1\nbne $1,$0,loop\nhalt\n",
		"li $2,120\ncw.i.i 21,2\nwaiti 100\nhalt\n",
		"sync 5\nfmr $3,0\nsend $3,1\nrecv $4,0\nhalt\n",
		"lw $3,8($2)\nsw $3,12($2)\nnop\nmv $5,$3\n",
		"a: b: jal $0,a\n",
		"lui $1,0xFFFFF\nauipc $2,1\njalr $0,$1,0\n",
		"li $7,1000000\nwaitr $7\ncw.r.r $1,$2\ncw.i.r 3,$4\ncw.r.i $5,9\n",
		"beq x1,x2,8\nblt ra,sp,-4\nsltiu $3,$4,2047\n",
		"halt ; trailing comment\n// another\n",
		"j loop\nloop: halt",
		"",
		":\n::\nx:",
		"addi $1",
		"lw $3,(((($2)",
		"li $2,99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if p == nil {
			t.Fatal("Assemble returned nil program with nil error")
		}
		// Whatever assembles must encode, and the binary must decode back
		// to the same instruction stream.
		code, err := EncodeProgram(p)
		if err != nil {
			// Some assemblable immediates exceed an encoding's field width
			// (e.g. waiti with a 13-bit value); that is a diagnosable
			// error, not a crash.
			return
		}
		p2, err := DecodeProgram(code)
		if err != nil {
			t.Fatalf("assembled program failed to decode: %v", err)
		}
		if len(p2.Instrs) != len(p.Instrs) {
			t.Fatalf("round trip changed length: %d -> %d", len(p.Instrs), len(p2.Instrs))
		}
		for i := range p.Instrs {
			if p.Instrs[i] != p2.Instrs[i] {
				t.Fatalf("instr %d changed in round trip: %v -> %v", i, p.Instrs[i], p2.Instrs[i])
			}
		}
	})
}

// FuzzDecode drives the 32-bit instruction decoder with arbitrary words.
// Unknown encodings must yield an error, never a panic, and any word that
// decodes must re-encode to a word that decodes identically (decode is a
// canonicalizing left inverse of encode).
func FuzzDecode(f *testing.F) {
	// Seed corpus: one canonical word per opcode family.
	seedInstrs := []Instr{
		{Op: OpADDI, Rd: 1, Rs1: 0, Imm: 40},
		{Op: OpLUI, Rd: 2, Imm: 0xFFFFF},
		{Op: OpJAL, Rd: 0, Imm: -44},
		{Op: OpJALR, Rd: 1, Rs1: 2, Imm: 8},
		{Op: OpBNE, Rs1: 1, Rs2: 2, Imm: -28},
		{Op: OpLW, Rd: 3, Rs1: 2, Imm: 8},
		{Op: OpSW, Rs1: 2, Rs2: 3, Imm: 12},
		{Op: OpSRAI, Rd: 4, Rs1: 5, Imm: 31},
		{Op: OpSUB, Rd: 6, Rs1: 7, Rs2: 8},
		{Op: OpWAITI, Imm: 100},
		{Op: OpSYNC, Imm: 5},
		{Op: OpFMR, Rd: 3},
		{Op: OpSEND, Rs1: 3, Imm: 1},
		{Op: OpRECV, Rd: 4},
		{Op: OpHALT},
		{Op: OpCWII, Rd: 21, Imm: 2},
		{Op: OpCWRR, Rs1: 1, Rs2: 2},
	}
	for _, in := range seedInstrs {
		w, err := Encode(in)
		if err != nil {
			f.Fatalf("seed %v does not encode: %v", in, err)
		}
		f.Add(w)
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, w uint32) {
		in, err := Decode(w)
		if err != nil {
			return
		}
		w2, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %v, which does not re-encode: %v", w, in, err)
		}
		in2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %v to %#08x, which does not decode: %v", in, w2, err)
		}
		if in != in2 {
			t.Fatalf("decode not stable: %#08x -> %v -> %#08x -> %v", w, in, w2, in2)
		}
	})
}

// TestRemoteFeedForwardCorpusSeed pins the committed fuzz corpus entry
// testdata/fuzz/FuzzDecodeProgram/remote-feedforward-2chip: the encoded
// program of the communication-qubit controller from a compiled two-chip
// teleported CNOT (regenerate by compiling that circuit with Chips=2 and
// encoding the controller with the most recv instructions). The seed keeps
// the fuzzer exercising the cross-chip feed-forward decode path — herald
// recv, conditional branch on the measured bit, correction codeword — and
// this test fails loudly if the entry ever stops decoding to that shape.
func TestRemoteFeedForwardCorpusSeed(t *testing.T) {
	raw, err := os.ReadFile("testdata/fuzz/FuzzDecodeProgram/remote-feedforward-2chip")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 3)
	if len(lines) < 2 || lines[0] != "go test fuzz v1" {
		t.Fatalf("corpus entry not in go fuzz v1 format: %q", lines[0])
	}
	var code string
	if _, err := fmt.Sscanf(lines[1], "[]byte(%q)", &code); err != nil {
		t.Fatalf("corpus entry body: %v", err)
	}
	p, err := DecodeProgram([]byte(code))
	if err != nil {
		t.Fatalf("corpus seed no longer decodes: %v", err)
	}
	recv, branch := 0, 0
	for _, in := range p.Instrs {
		switch in.Op {
		case OpRECV:
			recv++
		case OpBEQ, OpBNE:
			branch++
		}
	}
	if recv < 2 || branch == 0 {
		t.Fatalf("corpus seed decoded to %d recv, %d branches — lost the feed-forward shape", recv, branch)
	}
}

// FuzzDecodeProgram covers the multi-word path (length handling, error
// position reporting) with arbitrary byte strings.
func FuzzDecodeProgram(f *testing.F) {
	p := MustAssemble("addi $1,$0,40\ncw.i.i 2,7\nhalt\n")
	code, err := EncodeProgram(p)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(code)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, code []byte) {
		p, err := DecodeProgram(code)
		if err != nil {
			return
		}
		if len(p.Instrs) != len(code)/4 {
			t.Fatalf("decoded %d instrs from %d bytes", len(p.Instrs), len(code))
		}
	})
}
