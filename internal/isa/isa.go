// Package isa defines HISQ, the Hardware Instruction Set for Quantum
// computing of the Distributed-HISQ paper (§3.1).
//
// HISQ is an extension of RISC-V RV32I: the classical subset provides
// real-time register computation and program flow (§3.1.1, interrupts and
// fences disabled), and the extension adds the four quantum-control
// capabilities the paper identifies:
//
//   - timing control:      waiti/waitr (queue-based timing, §3.1.2)
//   - triggering:          cw.x.x <port>, <codeword> (§3.1.2)
//   - synchronization:     sync <tgt> (§3.1.3, resolved by the BISP protocol)
//   - classical messaging: send/recv and fmr (§3.1.4)
//
// The paper does not publish binary encodings; we allocate the RISC-V
// custom-0 (0x0B) and custom-1 (0x2B) major opcodes, documented on each Op
// constant. Package isa also provides a two-pass assembler for the textual
// syntax used in the paper's Figure 12 listings ("addi $2,$0,120",
// "cw.i.i 21,2", "waitr $1", ...).
package isa

import "fmt"

// Op identifies an instruction operation.
type Op uint8

// RV32I base integer instructions (standard encodings), followed by the HISQ
// extension. FENCE/ECALL and CSR/interrupt instructions are deliberately
// absent: §3.1.1 disables them to keep timing behaviour deterministic.
const (
	OpInvalid Op = iota

	// U-type
	OpLUI   // lui rd, imm20
	OpAUIPC // auipc rd, imm20

	// Jumps
	OpJAL  // jal rd, offset
	OpJALR // jalr rd, rs1, offset

	// Branches (B-type)
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Loads (I-type)
	OpLB
	OpLH
	OpLW
	OpLBU
	OpLHU

	// Stores (S-type)
	OpSB
	OpSH
	OpSW

	// ALU immediate (I-type)
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI

	// ALU register (R-type)
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND

	// HISQ extension, custom-0 major opcode 0x0B.
	OpWAITI // waiti imm          — advance timing point by imm cycles (funct3=000)
	OpWAITR // waitr rs1          — advance timing point by reg cycles (funct3=001)
	OpSYNC  // sync tgt           — BISP synchronization with controller/router tgt (funct3=010)
	OpFMR   // fmr rd, ch         — fetch measurement result from channel ch (funct3=011)
	OpSEND  // send rs1, tgt      — send GPR value to controller tgt (funct3=100)
	OpRECV  // recv rd, src       — blocking receive from controller src (funct3=101)
	OpHALT  // halt               — stop this core (funct3=110)

	// HISQ extension, custom-1 major opcode 0x2B: the codeword-trigger family
	// "cw.x.x <port>, <codeword>" (§3.1.2). x selects immediate or register
	// operands for port and codeword respectively.
	OpCWII // cw.i.i port, cw    (funct3=000; port in rd field, cw in imm12)
	OpCWIR // cw.i.r port, rs1   (funct3=001)
	OpCWRI // cw.r.i rs1, cw     (funct3=010)
	OpCWRR // cw.r.r rs1, rs2    (funct3=011)

	opCount
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpLUI:     "lui", OpAUIPC: "auipc",
	OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori", OpORI: "ori", OpANDI: "andi",
	OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpADD: "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpWAITI: "waiti", OpWAITR: "waitr", OpSYNC: "sync", OpFMR: "fmr",
	OpSEND: "send", OpRECV: "recv", OpHALT: "halt",
	OpCWII: "cw.i.i", OpCWIR: "cw.i.r", OpCWRI: "cw.r.i", OpCWRR: "cw.r.r",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsQuantum reports whether the instruction is dispatched to the timing
// control unit rather than retired purely in the classical pipeline.
func (o Op) IsQuantum() bool {
	switch o {
	case OpWAITI, OpWAITR, OpSYNC, OpCWII, OpCWIR, OpCWRI, OpCWRR:
		return true
	}
	return false
}

// IsBranch reports whether the op is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// Instr is one decoded HISQ instruction. Field usage mirrors RV32I: Rd is the
// destination, Rs1/Rs2 sources, Imm the sign-extended immediate. The cw
// family reuses Rd as the immediate port number (cw.i.*) and Imm as the
// immediate codeword (cw.*.i); sync/send/recv/fmr carry their controller,
// channel or router address in Imm.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// String renders the instruction in the paper's assembly syntax.
func (in Instr) String() string {
	r := func(n uint8) string { return fmt.Sprintf("$%d", n) }
	switch in.Op {
	case OpLUI, OpAUIPC:
		return fmt.Sprintf("%s %s,%d", in.Op, r(in.Rd), in.Imm)
	case OpJAL:
		return fmt.Sprintf("%s %s,%d", in.Op, r(in.Rd), in.Imm)
	case OpJALR:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		return fmt.Sprintf("%s %s,%d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case OpSB, OpSH, OpSW:
		return fmt.Sprintf("%s %s,%d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI:
		return fmt.Sprintf("%s %s,%s,%d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND:
		return fmt.Sprintf("%s %s,%s,%s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpWAITI:
		return fmt.Sprintf("waiti %d", in.Imm)
	case OpWAITR:
		return fmt.Sprintf("waitr %s", r(in.Rs1))
	case OpSYNC:
		return fmt.Sprintf("sync %d", in.Imm)
	case OpFMR:
		return fmt.Sprintf("fmr %s,%d", r(in.Rd), in.Imm)
	case OpSEND:
		return fmt.Sprintf("send %s,%d", r(in.Rs1), in.Imm)
	case OpRECV:
		return fmt.Sprintf("recv %s,%d", r(in.Rd), in.Imm)
	case OpHALT:
		return "halt"
	case OpCWII:
		return fmt.Sprintf("cw.i.i %d,%d", in.Rd, in.Imm)
	case OpCWIR:
		return fmt.Sprintf("cw.i.r %d,%s", in.Rd, r(in.Rs1))
	case OpCWRI:
		return fmt.Sprintf("cw.r.i %s,%d", r(in.Rs1), in.Imm)
	case OpCWRR:
		return fmt.Sprintf("cw.r.r %s,%s", r(in.Rs1), r(in.Rs2))
	}
	return in.Op.String()
}

// Program is an assembled HISQ binary: a sequence of instructions plus the
// symbol table produced by the assembler (label → instruction index).
type Program struct {
	Instrs  []Instr
	Symbols map[string]int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// Text renders the whole program as assembly, one instruction per line.
func (p *Program) Text() string {
	out := make([]byte, 0, len(p.Instrs)*16)
	for _, in := range p.Instrs {
		out = append(out, in.String()...)
		out = append(out, '\n')
	}
	return string(out)
}

// Validate checks structural well-formedness: register indices < 32, branch
// and jump targets inside the program, and wait immediates non-negative.
func (p *Program) Validate() error {
	n := len(p.Instrs)
	for i, in := range p.Instrs {
		if in.Rd > 31 || in.Rs1 > 31 || in.Rs2 > 31 {
			return fmt.Errorf("isa: instr %d (%s): register index out of range", i, in)
		}
		switch {
		case in.Op.IsBranch() || in.Op == OpJAL:
			if in.Imm%4 != 0 {
				return fmt.Errorf("isa: instr %d (%s): misaligned offset %d", i, in, in.Imm)
			}
			tgt := i + int(in.Imm/4)
			if tgt < 0 || tgt >= n {
				return fmt.Errorf("isa: instr %d (%s): target %d outside program of %d instrs", i, in, tgt, n)
			}
		case in.Op == OpWAITI:
			if in.Imm < 0 {
				return fmt.Errorf("isa: instr %d (%s): negative wait", i, in)
			}
		}
	}
	return nil
}

// Register name tables for the assembler/disassembler.
var abiNames = map[string]uint8{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
	"s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}
