package isa

import (
	"encoding/binary"
	"fmt"
)

// RISC-V major opcodes used by HISQ. The quantum extension occupies the two
// custom opcode slots reserved by the RISC-V specification for vendor
// extensions, so HISQ binaries remain decodable by an RV32I front-end.
const (
	opcLUI    = 0x37
	opcAUIPC  = 0x17
	opcJAL    = 0x6F
	opcJALR   = 0x67
	opcBranch = 0x63
	opcLoad   = 0x03
	opcStore  = 0x23
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcHISQ   = 0x0B // custom-0: wait/sync/fmr/send/recv/halt
	opcCW     = 0x2B // custom-1: cw.x.x family
)

type encInfo struct {
	opc    uint32
	funct3 uint32
	funct7 uint32
	form   byte // R, I, S, B, U, J
}

var encTable = map[Op]encInfo{
	OpLUI:   {opcLUI, 0, 0, 'U'},
	OpAUIPC: {opcAUIPC, 0, 0, 'U'},
	OpJAL:   {opcJAL, 0, 0, 'J'},
	OpJALR:  {opcJALR, 0, 0, 'I'},
	OpBEQ:   {opcBranch, 0, 0, 'B'},
	OpBNE:   {opcBranch, 1, 0, 'B'},
	OpBLT:   {opcBranch, 4, 0, 'B'},
	OpBGE:   {opcBranch, 5, 0, 'B'},
	OpBLTU:  {opcBranch, 6, 0, 'B'},
	OpBGEU:  {opcBranch, 7, 0, 'B'},
	OpLB:    {opcLoad, 0, 0, 'I'},
	OpLH:    {opcLoad, 1, 0, 'I'},
	OpLW:    {opcLoad, 2, 0, 'I'},
	OpLBU:   {opcLoad, 4, 0, 'I'},
	OpLHU:   {opcLoad, 5, 0, 'I'},
	OpSB:    {opcStore, 0, 0, 'S'},
	OpSH:    {opcStore, 1, 0, 'S'},
	OpSW:    {opcStore, 2, 0, 'S'},
	OpADDI:  {opcOpImm, 0, 0, 'I'},
	OpSLLI:  {opcOpImm, 1, 0, 'I'},
	OpSLTI:  {opcOpImm, 2, 0, 'I'},
	OpSLTIU: {opcOpImm, 3, 0, 'I'},
	OpXORI:  {opcOpImm, 4, 0, 'I'},
	OpSRLI:  {opcOpImm, 5, 0x00, 'I'},
	OpSRAI:  {opcOpImm, 5, 0x20, 'I'},
	OpORI:   {opcOpImm, 6, 0, 'I'},
	OpANDI:  {opcOpImm, 7, 0, 'I'},
	OpADD:   {opcOp, 0, 0x00, 'R'},
	OpSUB:   {opcOp, 0, 0x20, 'R'},
	OpSLL:   {opcOp, 1, 0, 'R'},
	OpSLT:   {opcOp, 2, 0, 'R'},
	OpSLTU:  {opcOp, 3, 0, 'R'},
	OpXOR:   {opcOp, 4, 0, 'R'},
	OpSRL:   {opcOp, 5, 0x00, 'R'},
	OpSRA:   {opcOp, 5, 0x20, 'R'},
	OpOR:    {opcOp, 6, 0, 'R'},
	OpAND:   {opcOp, 7, 0, 'R'},

	OpWAITI: {opcHISQ, 0, 0, 'I'},
	OpWAITR: {opcHISQ, 1, 0, 'I'},
	OpSYNC:  {opcHISQ, 2, 0, 'I'},
	OpFMR:   {opcHISQ, 3, 0, 'I'},
	OpSEND:  {opcHISQ, 4, 0, 'I'},
	OpRECV:  {opcHISQ, 5, 0, 'I'},
	OpHALT:  {opcHISQ, 6, 0, 'I'},

	OpCWII: {opcCW, 0, 0, 'I'},
	OpCWIR: {opcCW, 1, 0, 'I'},
	OpCWRI: {opcCW, 2, 0, 'I'},
	OpCWRR: {opcCW, 3, 0, 'R'},
}

// Encode packs an instruction into its 32-bit machine word. It returns an
// error for immediates that do not fit the encoding's field width.
func Encode(in Instr) (uint32, error) {
	ei, ok := encTable[in.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode op %s", in.Op)
	}
	rd, rs1, rs2 := uint32(in.Rd), uint32(in.Rs1), uint32(in.Rs2)
	if rd > 31 || rs1 > 31 || rs2 > 31 {
		return 0, fmt.Errorf("isa: register out of range in %s", in)
	}
	imm := in.Imm
	switch ei.form {
	case 'R':
		return ei.funct7<<25 | rs2<<20 | rs1<<15 | ei.funct3<<12 | rd<<7 | ei.opc, nil
	case 'I':
		if in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI {
			if imm < 0 || imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range in %s", imm, in)
			}
			return ei.funct7<<25 | uint32(imm)<<20 | rs1<<15 | ei.funct3<<12 | rd<<7 | ei.opc, nil
		}
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("isa: I-immediate %d out of range in %s", imm, in)
		}
		return uint32(imm)&0xFFF<<20 | rs1<<15 | ei.funct3<<12 | rd<<7 | ei.opc, nil
	case 'S':
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("isa: S-immediate %d out of range in %s", imm, in)
		}
		u := uint32(imm) & 0xFFF
		return (u>>5)<<25 | rs2<<20 | rs1<<15 | ei.funct3<<12 | (u&0x1F)<<7 | ei.opc, nil
	case 'B':
		if imm < -4096 || imm > 4095 || imm%2 != 0 {
			return 0, fmt.Errorf("isa: B-offset %d invalid in %s", imm, in)
		}
		u := uint32(imm)
		w := (u>>12&1)<<31 | (u>>5&0x3F)<<25 | rs2<<20 | rs1<<15 | ei.funct3<<12 |
			(u>>1&0xF)<<8 | (u>>11&1)<<7 | ei.opc
		return w, nil
	case 'U':
		if imm < 0 || imm > 0xFFFFF {
			return 0, fmt.Errorf("isa: U-immediate %d out of range in %s", imm, in)
		}
		return uint32(imm)<<12 | rd<<7 | ei.opc, nil
	case 'J':
		if imm < -(1<<20) || imm >= 1<<20 || imm%2 != 0 {
			return 0, fmt.Errorf("isa: J-offset %d invalid in %s", imm, in)
		}
		u := uint32(imm)
		w := (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u>>12&0xFF)<<12 | rd<<7 | ei.opc
		return w, nil
	}
	return 0, fmt.Errorf("isa: unknown form %c", ei.form)
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode unpacks a 32-bit machine word. Unknown encodings yield OpInvalid
// with an error rather than a panic, so a corrupted binary is diagnosable.
func Decode(w uint32) (Instr, error) {
	opc := w & 0x7F
	rd := uint8(w >> 7 & 0x1F)
	funct3 := w >> 12 & 7
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	funct7 := w >> 25
	iImm := signExtend(w>>20, 12)
	sImm := signExtend((w>>25)<<5|uint32(rd), 12)
	bImm := signExtend((w>>31&1)<<12|(w>>7&1)<<11|(w>>25&0x3F)<<5|(w>>8&0xF)<<1, 13)
	uImm := int32(w >> 12)
	jImm := signExtend((w>>31&1)<<20|(w>>12&0xFF)<<12|(w>>20&1)<<11|(w>>21&0x3FF)<<1, 21)

	bad := func() (Instr, error) {
		return Instr{}, fmt.Errorf("isa: cannot decode word %#08x", w)
	}
	switch opc {
	case opcLUI:
		return Instr{Op: OpLUI, Rd: rd, Imm: uImm}, nil
	case opcAUIPC:
		return Instr{Op: OpAUIPC, Rd: rd, Imm: uImm}, nil
	case opcJAL:
		return Instr{Op: OpJAL, Rd: rd, Imm: jImm}, nil
	case opcJALR:
		if funct3 != 0 {
			return bad()
		}
		return Instr{Op: OpJALR, Rd: rd, Rs1: rs1, Imm: iImm}, nil
	case opcBranch:
		ops := map[uint32]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
		op, ok := ops[funct3]
		if !ok {
			return bad()
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: bImm}, nil
	case opcLoad:
		ops := map[uint32]Op{0: OpLB, 1: OpLH, 2: OpLW, 4: OpLBU, 5: OpLHU}
		op, ok := ops[funct3]
		if !ok {
			return bad()
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: iImm}, nil
	case opcStore:
		ops := map[uint32]Op{0: OpSB, 1: OpSH, 2: OpSW}
		op, ok := ops[funct3]
		if !ok {
			return bad()
		}
		return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: sImm}, nil
	case opcOpImm:
		switch funct3 {
		case 0:
			return Instr{Op: OpADDI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 1:
			if funct7 != 0 {
				return bad()
			}
			return Instr{Op: OpSLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 2:
			return Instr{Op: OpSLTI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 3:
			return Instr{Op: OpSLTIU, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 4:
			return Instr{Op: OpXORI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 5:
			switch funct7 {
			case 0x00:
				return Instr{Op: OpSRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Instr{Op: OpSRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return bad()
		case 6:
			return Instr{Op: OpORI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		case 7:
			return Instr{Op: OpANDI, Rd: rd, Rs1: rs1, Imm: iImm}, nil
		}
		return bad()
	case opcOp:
		type key struct {
			f3, f7 uint32
		}
		ops := map[key]Op{
			{0, 0x00}: OpADD, {0, 0x20}: OpSUB,
			{1, 0}: OpSLL, {2, 0}: OpSLT, {3, 0}: OpSLTU, {4, 0}: OpXOR,
			{5, 0x00}: OpSRL, {5, 0x20}: OpSRA, {6, 0}: OpOR, {7, 0}: OpAND,
		}
		op, ok := ops[key{funct3, funct7}]
		if !ok {
			return bad()
		}
		return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case opcHISQ:
		switch funct3 {
		case 0:
			return Instr{Op: OpWAITI, Imm: iImm}, nil
		case 1:
			return Instr{Op: OpWAITR, Rs1: rs1}, nil
		case 2:
			return Instr{Op: OpSYNC, Imm: iImm}, nil
		case 3:
			return Instr{Op: OpFMR, Rd: rd, Imm: iImm}, nil
		case 4:
			return Instr{Op: OpSEND, Rs1: rs1, Imm: iImm}, nil
		case 5:
			return Instr{Op: OpRECV, Rd: rd, Imm: iImm}, nil
		case 6:
			return Instr{Op: OpHALT}, nil
		}
		return bad()
	case opcCW:
		switch funct3 {
		case 0:
			return Instr{Op: OpCWII, Rd: rd, Imm: iImm}, nil
		case 1:
			return Instr{Op: OpCWIR, Rd: rd, Rs1: rs1}, nil
		case 2:
			return Instr{Op: OpCWRI, Rs1: rs1, Imm: iImm}, nil
		case 3:
			return Instr{Op: OpCWRR, Rs1: rs1, Rs2: rs2}, nil
		}
		return bad()
	}
	return bad()
}

// EncodeProgram serializes a program to little-endian machine code.
func EncodeProgram(p *Program) ([]byte, error) {
	buf := make([]byte, 0, 4*len(p.Instrs))
	for i, in := range p.Instrs {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instr %d: %w", i, err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, w)
	}
	return buf, nil
}

// DecodeProgram parses little-endian machine code back into a Program.
func DecodeProgram(code []byte) (*Program, error) {
	if len(code)%4 != 0 {
		return nil, fmt.Errorf("isa: code length %d not a multiple of 4", len(code))
	}
	p := &Program{Instrs: make([]Instr, 0, len(code)/4)}
	for i := 0; i < len(code); i += 4 {
		in, err := Decode(binary.LittleEndian.Uint32(code[i:]))
		if err != nil {
			return nil, fmt.Errorf("isa: word %d: %w", i/4, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	return p, nil
}
