package service

import (
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/runner"
)

func ghz4() *circuit.Circuit {
	c := circuit.New(4)
	c.H(0)
	c.CNOT(0, 1).CNOT(1, 2).CNOT(2, 3)
	for q := 0; q < 4; q++ {
		c.MeasureNew(q)
	}
	return c
}

// TestServiceMultiChipJob runs a chips=2 job end to end through the
// service: the status echoes the resolved chip count, the run generates
// EPR pairs, the histogram only contains public (original) bits, and the
// GHZ correlation survives the teleported gates.
func TestServiceMultiChipJob(t *testing.T) {
	s := New(Config{Workers: 1, ShotWorkers: 2})
	defer s.Close()
	id, err := s.Submit(Request{Circuit: ghz4(), Shots: 40, Seed: 5, Chips: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait(id)
	if !ok || st.State != StateDone {
		t.Fatalf("job state %s err %q", st.State, st.Err)
	}
	if st.Chips != 2 {
		t.Fatalf("status echoes chips=%d, want 2", st.Chips)
	}
	if st.EPRPairs == 0 {
		t.Fatalf("multi-chip GHZ job generated no EPR pairs")
	}
	for key, n := range st.Histogram {
		if len(key) != 4 {
			t.Fatalf("histogram key %q spans %d bits, want the 4 public bits", key, len(key))
		}
		if key != "0000" && key != "1111" {
			t.Fatalf("GHZ correlation broken: %d shots of %q", n, key)
		}
	}
}

// TestServiceMultiChipDeterministic: same seed, same chips → identical
// histograms across submissions (worker-count invariance rides on the
// runner's per-shot seed derivation, already exercised there).
func TestServiceMultiChipDeterministic(t *testing.T) {
	s := New(Config{Workers: 2, ShotWorkers: 4})
	defer s.Close()
	run := func() runner.Histogram {
		id, err := s.Submit(Request{Circuit: ghz4(), Shots: 32, Seed: 77, Chips: 2})
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.Wait(id)
		if st.State != StateDone {
			t.Fatalf("job failed: %s", st.Err)
		}
		return st.Histogram
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("histograms differ: %v vs %v", a, b)
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("histograms differ at %q: %d vs %d", k, n, b[k])
		}
	}
}

// TestServiceChipPoolSeparation: a chips=2 submission and a single-chip
// submission of the same circuit must land in different replica pools —
// the chip count is part of the compile fingerprint (artifact keyVersion
// 7), so the fingerprints themselves must differ.
func TestServiceChipPoolSeparation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	submit := func(chips int) JobStatus {
		id, err := s.Submit(Request{Circuit: ghz4(), Shots: 2, Seed: 3, Chips: chips})
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.Wait(id)
		if st.State != StateDone {
			t.Fatalf("chips=%d job failed: %s", chips, st.Err)
		}
		return st
	}
	single := submit(0)
	multi := submit(2)
	if single.Fingerprint == multi.Fingerprint {
		t.Fatalf("chips=2 job shares fingerprint %s with single-chip job", multi.Fingerprint)
	}
	if one := submit(1); one.Fingerprint != single.Fingerprint {
		t.Fatalf("chips=1 fingerprint %s differs from chips=0 fingerprint %s", one.Fingerprint, single.Fingerprint)
	}
}

// TestServiceMultiChipValidation: admission rejects malformed multi-chip
// requests before any work queues.
func TestServiceMultiChipValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cases := []Request{
		{Circuit: ghz4(), Shots: 1, Chips: -2},
		{Circuit: ghz4(), Shots: 1, Chips: 2, EPRLatency: -5},
		{Circuit: ghz4(), Shots: 1, Chips: 9},                             // more chips than qubits
		{Circuit: ghz4(), Shots: 1, Chips: 2, Mapping: []int{0, 1, 2, 3}}, // explicit mapping
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("case %d: expected admission rejection", i)
		}
	}
}
