package service_test

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"

	"dhisq/internal/service"
	"dhisq/internal/workloads"
)

func testKeys(n int) [][sha256.Size]byte {
	rng := rand.New(rand.NewSource(7))
	keys := make([][sha256.Size]byte, n)
	for i := range keys {
		rng.Read(keys[i][:])
	}
	return keys
}

func shardNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

// Every key routes to exactly one shard, and that shard is a member.
func TestRingRoutesEveryKey(t *testing.T) {
	shards := shardNames(5)
	ring, err := service.NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[string]bool)
	for _, s := range shards {
		member[s] = true
	}
	for _, k := range testKeys(5000) {
		owner := ring.Route(k)
		if !member[owner] {
			t.Fatalf("key routed to non-member %q", owner)
		}
	}
}

// Routing is a pure function of the member list: two independently built
// rings — including one built from a permuted list, as different cluster
// processes may order their -cluster flag differently — agree on every
// key. This is what lets shards route without coordinating.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	shards := shardNames(4)
	a, _ := service.NewRing(shards)
	b, _ := service.NewRing(shards)
	permuted := []string{shards[2], shards[0], shards[3], shards[1]}
	c, _ := service.NewRing(permuted)
	for _, k := range testKeys(2000) {
		if a.Route(k) != b.Route(k) || a.Route(k) != c.Route(k) {
			t.Fatalf("independently built rings disagree on key %x", k[:6])
		}
	}
}

// The consistent-hashing contract, pinned exactly: removing one of N
// shards remaps ONLY the keys that shard owned. Every key owned by a
// surviving shard keeps its owner — their caches, replica pools, and
// on-disk stores stay valid through the membership change.
func TestRingRemovalChurn(t *testing.T) {
	shards := shardNames(5)
	full, _ := service.NewRing(shards)
	reduced, _ := service.NewRing(shards[:4]) // drop the last shard
	removed := shards[4]

	keys := testKeys(10000)
	moved := 0
	for _, k := range keys {
		before, after := full.Route(k), reduced.Route(k)
		if before == removed {
			moved++
			continue // these keys must move somewhere
		}
		if before != after {
			t.Fatalf("key owned by surviving shard %q remapped to %q", before, after)
		}
	}
	// The removed shard owned ~1/5 of the keyspace; allow generous slack
	// around the expectation, but a grossly skewed split means the vnode
	// spread is broken.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.35 {
		t.Errorf("removed shard owned %.1f%% of keys, expected ~20%%", 100*frac)
	}
}

// The keyspace splits roughly evenly across shards (vnode smoothing).
func TestRingBalance(t *testing.T) {
	shards := shardNames(4)
	ring, _ := service.NewRing(shards)
	counts := make(map[string]int)
	keys := testKeys(20000)
	for _, k := range keys {
		counts[ring.Route(k)]++
	}
	expect := float64(len(keys)) / float64(len(shards))
	for s, n := range counts {
		if f := float64(n) / expect; f < 0.5 || f > 1.5 {
			t.Errorf("shard %s owns %d keys, expected ~%.0f (ratio %.2f)", s, n, expect, f)
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := service.NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := service.NewRing([]string{"a", ""}); err == nil {
		t.Error("empty shard name accepted")
	}
	if _, err := service.NewRing([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate shard accepted")
	}
}

// RouteKey is bind-invariant and deterministic: every binding of one
// parameterized family yields the same routing key, different circuit
// families yield different keys, and the key never depends on seeds or
// shot counts.
func TestRouteKeyBindInvariant(t *testing.T) {
	sweep := workloads.QFTSweep(4)
	base := service.Request{Circuit: sweep, Shots: 10,
		Params: workloads.QFTSweepPoint(4, 0)}
	k1, err := service.RouteKey(base)
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Params = workloads.QFTSweepPoint(4, 3)
	other.Shots = 999
	other.Seed = 42
	k2, err := service.RouteKey(other)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("two bindings of one skeleton route to different keys")
	}
	ghz := service.Request{Circuit: workloads.GHZ(4), Shots: 10}
	k3, err := service.RouteKey(ghz)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("distinct circuit families share a routing key")
	}
	if _, err := service.RouteKey(service.Request{Shots: 1}); err == nil {
		t.Error("RouteKey accepted a nil circuit")
	}
}
