package service

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
)

// hub builds the adversarial hotspot workload: every data qubit CNOTs
// into one hub controller, congesting the hub's links under finite link
// bandwidth. Same shape as dhisq-bench's CI-gated hotspot.
func hub(n int) *circuit.Circuit {
	c := circuit.New(n)
	h := n - 1
	for round := 0; round < 3; round++ {
		for q := 0; q < n-1; q++ {
			c.CNOT(q, h)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func contendedCfg(n int) machine.Config {
	cfg := machine.DefaultConfig(n)
	cfg.Backend = machine.BackendSeeded
	cfg.Net.LinkSerialization = 4
	return cfg
}

func stallOf(st JobStatus) int64 {
	var total int64
	for _, shot := range st.Set.Shots {
		total += int64(shot.Result.Net.TotalStall())
	}
	return total
}

// TestFeedbackReplaceSwapsPool drives the whole service-level loop: a
// contended job crosses the stall threshold, the pool group is re-placed
// exactly once, and the next identical submission runs under the
// re-placed mapping — which machine.RePlace on the first job's own
// measured feedback must predict exactly.
func TestFeedbackReplaceSwapsPool(t *testing.T) {
	cfg := contendedCfg(16)
	s := New(Config{Workers: 1, ReplaceStallThreshold: 1})
	defer s.Close()

	req := Request{Circuit: hub(16), Cfg: &cfg, Placement: "interaction", Shots: 1, Seed: 1}
	id1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := s.Wait(id1)
	if st1.State != StateDone {
		t.Fatalf("cold job: state %s, err %q", st1.State, st1.Err)
	}
	if st1.Mapping == nil {
		t.Fatal("interaction placement echoed a nil mapping")
	}

	// Predict the re-placed mapping from the cold job's own results: the
	// service must arrive at exactly what RePlace computes from them.
	var results []machine.Result
	for _, shot := range st1.Set.Shots {
		results = append(results, shot.Result)
	}
	fb := machine.HarvestFeedback(results)
	rcfg := cfg
	rcfg.Net.MeshW, rcfg.Net.MeshH = st1.MeshW, st1.MeshH
	rcfg.Placement = "interaction"
	rcfg.Seed = st1.Seed
	want, _, err := machine.RePlace(hub(16), rcfg, st1.Mapping, fb)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(want, st1.Mapping) {
		t.Fatal("workload did not provoke a re-placement; the test needs a harder hotspot")
	}

	id2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := s.Wait(id2)
	if st2.State != StateDone {
		t.Fatalf("post-replace job: state %s, err %q", st2.State, st2.Err)
	}
	if !reflect.DeepEqual(st2.Mapping, want) {
		t.Fatalf("re-placed mapping %v, want RePlace's %v", st2.Mapping, want)
	}
	if !st2.CacheHit {
		t.Fatal("re-placed artifact not served as a cache hit")
	}
	if s1, s2 := stallOf(st1), stallOf(st2); s2 >= s1 {
		t.Fatalf("re-placement did not reduce stall: %d -> %d cycles", s1, s2)
	}

	// One-shot claim: a third identical job must not trigger another
	// replacement.
	id3, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st3, _ := s.Wait(id3)
	if st3.State != StateDone {
		t.Fatalf("third job: state %s, err %q", st3.State, st3.Err)
	}
	if !reflect.DeepEqual(st3.Mapping, want) {
		t.Fatalf("third job mapping %v drifted from re-placed %v", st3.Mapping, want)
	}
	if got := s.Stats().Replacements; got != 1 {
		t.Fatalf("Replacements = %d, want exactly 1", got)
	}
}

// replaceScenario runs the contended hotspot to a re-placement and
// returns the post-replacement mapping and the replacement count.
func replaceScenario(t *testing.T, shotWorkers int) ([]int, uint64) {
	t.Helper()
	cfg := contendedCfg(16)
	s := New(Config{Workers: 1, ShotWorkers: shotWorkers, ReplaceStallThreshold: 1})
	defer s.Close()
	req := Request{Circuit: hub(16), Cfg: &cfg, Placement: "interaction", Shots: 4, Seed: 1}
	for i := 0; i < 2; i++ {
		id, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.Wait(id)
		if st.State != StateDone {
			t.Fatalf("job %d: state %s, err %q", i, st.State, st.Err)
		}
		if i == 1 {
			return st.Mapping, s.Stats().Replacements
		}
	}
	panic("unreachable")
}

// TestFeedbackReplaceWorkerCountInvariant: identical traffic must yield
// the identical re-placed mapping whether shots fan out across one
// replica or four — the determinism the commutative feedback digest buys.
func TestFeedbackReplaceWorkerCountInvariant(t *testing.T) {
	m1, r1 := replaceScenario(t, 1)
	m4, r4 := replaceScenario(t, 4)
	if r1 != r4 {
		t.Fatalf("replacement counts diverged: %d vs %d", r1, r4)
	}
	if r1 == 0 {
		t.Fatal("scenario did not trigger a replacement")
	}
	if !reflect.DeepEqual(m1, m4) {
		t.Fatalf("re-placed mapping depends on shot fan-out: %v vs %v", m1, m4)
	}
}

// TestFeedbackDisabledByDefault: with the threshold at its zero default
// the loop must stay fully inert — no replacements, stable mapping —
// even under heavy contention.
func TestFeedbackDisabledByDefault(t *testing.T) {
	cfg := contendedCfg(16)
	s := New(Config{Workers: 1})
	defer s.Close()
	req := Request{Circuit: hub(16), Cfg: &cfg, Placement: "interaction", Shots: 1, Seed: 1}
	var first []int
	for i := 0; i < 2; i++ {
		id, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := s.Wait(id)
		if st.State != StateDone {
			t.Fatalf("job %d: state %s, err %q", i, st.State, st.Err)
		}
		if i == 0 {
			first = st.Mapping
		} else if !reflect.DeepEqual(st.Mapping, first) {
			t.Fatalf("mapping changed with feedback off: %v -> %v", first, st.Mapping)
		}
	}
	if got := s.Stats().Replacements; got != 0 {
		t.Fatalf("Replacements = %d with the loop disabled", got)
	}
}
