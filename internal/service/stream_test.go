package service_test

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"dhisq/internal/artifact"
	"dhisq/internal/service"
	"dhisq/internal/workloads"
)

func sweepRequest(n, points, shots int) service.Request {
	sweep := make([]map[string]float64, points)
	for k := range sweep {
		sweep[k] = workloads.QFTSweepPoint(n, k)
	}
	return service.Request{Circuit: workloads.QFTSweep(n), Shots: shots, Seed: 7, Sweep: sweep}
}

// A stream watcher attached before the job runs sees every sweep point
// exactly once, and the streamed set equals the final Points (same
// histograms, same indices) — streaming changes delivery, not results.
func TestStreamDeliversEveryPoint(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, ShotWorkers: 4, Artifacts: artifact.New(8)})
	defer svc.Close()
	const points = 8
	id, err := svc.Submit(sweepRequest(4, points, 20))
	if err != nil {
		t.Fatal(err)
	}
	var got []service.PointStatus
	final, ok := svc.Stream(context.Background(), id, func(p service.PointStatus) {
		got = append(got, p)
	})
	if !ok {
		t.Fatal("stream lost the job")
	}
	if final.State != service.StateDone {
		t.Fatalf("job finished %s: %s", final.State, final.Err)
	}
	if len(got) != points {
		t.Fatalf("streamed %d points, want %d", len(got), points)
	}
	seen := make(map[int]bool)
	for _, p := range got {
		if seen[p.Index] {
			t.Fatalf("point %d streamed twice", p.Index)
		}
		seen[p.Index] = true
	}
	// Re-sort into index order and compare against the terminal snapshot.
	sort.Slice(got, func(i, j int) bool { return got[i].Index < got[j].Index })
	if !reflect.DeepEqual(got, final.Points) {
		t.Error("streamed points differ from final JobStatus.Points")
	}
}

// A watcher attaching after completion replays the full stream.
func TestStreamReplayAfterDone(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, Artifacts: artifact.New(8)})
	defer svc.Close()
	id, err := svc.Submit(sweepRequest(4, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := svc.Wait(id); st.State != service.StateDone {
		t.Fatalf("job failed: %s", st.Err)
	}
	count := 0
	if _, ok := svc.Stream(context.Background(), id, func(service.PointStatus) { count++ }); !ok {
		t.Fatal("stream lost the job")
	}
	if count != 5 {
		t.Errorf("late watcher replayed %d points, want 5", count)
	}
}

// Cancelling the watcher's context ends the stream without affecting the
// job, and the unknown-ID contract matches Get/Wait.
func TestStreamCancelAndUnknown(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, Artifacts: artifact.New(8)})
	defer svc.Close()
	if _, ok := svc.Stream(context.Background(), "job-999999", func(service.PointStatus) {}); ok {
		t.Error("stream found an unknown job")
	}
	id, err := svc.Submit(sweepRequest(4, 6, 20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the stream must return promptly
	st, ok := svc.Stream(ctx, id, func(service.PointStatus) {})
	if !ok {
		t.Fatal("stream lost the job")
	}
	// The job may or may not have finished — but the call returned, and
	// the snapshot is coherent.
	if st.ID != id {
		t.Errorf("snapshot for %q, want %q", st.ID, id)
	}
	if final, _ := svc.Wait(id); final.State != service.StateDone {
		t.Errorf("job failed after watcher cancelled: %s", final.Err)
	}
}

// Non-sweep jobs stream zero points and return the terminal snapshot —
// Stream degrades to WaitContext.
func TestStreamNonSweepDegradesToWait(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, Artifacts: artifact.New(8)})
	defer svc.Close()
	id, err := svc.Submit(service.Request{Circuit: workloads.GHZ(4), Shots: 10})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	st, ok := svc.Stream(context.Background(), id, func(service.PointStatus) { calls++ })
	if !ok || st.State != service.StateDone {
		t.Fatalf("stream: ok=%v state=%s err=%s", ok, st.State, st.Err)
	}
	if calls != 0 {
		t.Errorf("non-sweep job streamed %d points", calls)
	}
	if len(st.Histogram) == 0 {
		t.Error("terminal snapshot lost the histogram")
	}
}

// The extended race battery: many submitters, pollers, streamers, and
// stat readers against one service, with watcher contexts being cancelled
// mid-stream — run under -race in CI. The original PR 3 battery covers
// submit/poll/close; this adds stats-under-load and
// streaming-while-cancelled, the two windows the sharded-serve work
// touched.
func TestStatsAndStreamUnderLoad(t *testing.T) {
	svc := service.New(service.Config{
		Workers: 4, ShotWorkers: 2, QueueDepth: 256, Artifacts: artifact.New(16),
	})
	defer svc.Close()

	const submitters = 4
	ids := make(chan string, submitters*8)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				var req service.Request
				if i%2 == 0 {
					req = sweepRequest(4, 4, 5)
				} else {
					req = service.Request{Circuit: workloads.GHZ(3 + w%2), Shots: 5}
				}
				id, err := svc.Submit(req)
				if err != nil {
					continue // queue-full is a legal outcome under load
				}
				ids <- id
			}
		}(w)
	}

	// Stats hammer: concurrent with every submit, execute, and finish.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st := svc.Stats()
					if st.Completed > st.Submitted {
						t.Error("completed exceeds submitted")
						return
					}
				}
			}
		}()
	}

	// Streamers racing cancellation: half watch to completion, half get
	// cancelled after a hair — both while workers publish points.
	var watchers sync.WaitGroup
	go func() {
		wg.Wait()
		close(ids)
	}()
	n := 0
	for id := range ids {
		n++
		watchers.Add(1)
		go func(id string, cancelEarly bool) {
			defer watchers.Done()
			ctx := context.Background()
			if cancelEarly {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
				defer cancel()
			}
			svc.Stream(ctx, id, func(service.PointStatus) {})
		}(id, n%2 == 0)
	}
	watchers.Wait()
	close(stop)
	readers.Wait()

	st := svc.Stats()
	if st.Completed+st.Failed == 0 {
		t.Error("no jobs completed under load")
	}
}

// Submissions racing Close: every Submit either returns an error or a
// job that reaches a terminal state — no hangs, no races. (Covers the
// drain path's stats increments, which Stats readers hit concurrently.)
func TestSubmitRacingClose(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 64, Artifacts: artifact.New(8)})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id, err := svc.Submit(service.Request{Circuit: workloads.GHZ(3), Shots: 2})
				if err != nil {
					return
				}
				if st, ok := svc.Wait(id); ok && !st.Done() {
					t.Errorf("job %s not terminal after Wait", id)
				}
			}
		}()
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		svc.Close()
	}()
	wg.Wait()
	svc.Close()
	if _, err := svc.Submit(service.Request{Circuit: workloads.GHZ(3), Shots: 1}); err == nil {
		t.Error("Submit succeeded after Close")
	}
}
