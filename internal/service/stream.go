package service

import "context"

// Stream delivers a job's sweep points to fn as they finish — completion
// order, not submission order (PointStatus.Index carries the position) —
// and returns the job's terminal snapshot once it finishes. The
// false return means the job ID is unknown (same contract as Get/Wait).
//
// Any number of watchers may stream one job concurrently, attaching at
// any time: each gets every point from the beginning (the points already
// finished replay immediately, then the live tail). A cancelled context
// stops the stream early and returns the job's snapshot at that moment —
// the caller distinguishes "finished" from "gave up" by JobStatus.Done(),
// exactly like WaitContext. fn is called from the watcher's goroutine,
// never concurrently with itself.
//
// Non-sweep jobs have no points: Stream then degrades to WaitContext,
// returning the terminal snapshot with fn never called.
func (s *Service) Stream(ctx context.Context, id string, fn func(PointStatus)) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	cursor := 0
	// deliver hands fn everything published past the cursor. The snapshot
	// is taken under j.mu but fn runs outside it: a slow consumer (an HTTP
	// watcher on a congested connection) must never stall the workers
	// publishing points.
	deliver := func() {
		j.mu.Lock()
		fresh := j.streamed[cursor:]
		j.mu.Unlock()
		cursor += len(fresh)
		for _, p := range fresh {
			fn(p)
		}
	}
	for {
		j.mu.Lock()
		notify := j.notify
		j.mu.Unlock()
		deliver()
		select {
		case <-j.done:
			// Every publish happens before finish closes done, so one
			// final drain observes the complete stream.
			deliver()
			return j.status(), true
		case <-ctx.Done():
			return j.status(), true
		case <-notify:
			// New points landed (the channel we held was closed and
			// replaced); loop to deliver them.
		}
	}
}
