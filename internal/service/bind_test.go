package service

import (
	"math"
	"testing"

	"dhisq/internal/artifact"
	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/workloads"
)

func submitWait(t *testing.T, svc *Service, req Request) JobStatus {
	t.Helper()
	id, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := svc.Wait(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if st.State != StateDone {
		t.Fatalf("job %s: %s (%s)", id, st.State, st.Err)
	}
	return st
}

// TestParamsJobMatchesFreshCompile: a parameter-bound job served off the
// cached skeleton is byte-identical to the same binding compiled in full
// (FreshCompile), and repeat bindings compile nothing.
func TestParamsJobMatchesFreshCompile(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	c := workloads.VQEAnsatz(6, 1)
	p1 := workloads.VQEAnsatzPoint(6, 1, 1)
	p2 := workloads.VQEAnsatzPoint(6, 1, 2)

	warm1 := submitWait(t, svc, Request{Circuit: c, Shots: 10, Seed: 5, Params: p1})
	before := artifact.Shared.Stats()
	warm2 := submitWait(t, svc, Request{Circuit: c, Shots: 10, Seed: 5, Params: p2})
	after := artifact.Shared.Stats()
	if d := after.Misses - before.Misses; d != 0 {
		t.Fatalf("second binding compiled %d times, want 0", d)
	}
	if !warm2.CacheHit {
		t.Fatal("second binding missed the skeleton cache")
	}
	fresh1 := submitWait(t, svc, Request{Circuit: c, Shots: 10, Seed: 5, Params: p1, FreshCompile: true})
	if warm1.Histogram.String() != fresh1.Histogram.String() {
		t.Fatalf("bind path broke determinism:\nwarm:\n%s\nfresh:\n%s", warm1.Histogram, fresh1.Histogram)
	}
	if warm1.Histogram.String() == warm2.Histogram.String() {
		t.Log("note: different bindings produced identical histograms (possible but unlikely)")
	}
	st := svc.Stats()
	if st.Binds < 2 || st.BindHits < 1 {
		t.Fatalf("bind counters not accounted: binds=%d bind_hits=%d", st.Binds, st.BindHits)
	}
}

// TestSweepJob: one job runs every point against one compiled skeleton;
// point k matches a separate params job seeded with DeriveSeed(jobSeed, k).
func TestSweepJob(t *testing.T) {
	svc := New(Config{Workers: 1, ShotWorkers: 2})
	defer svc.Close()
	c := workloads.VQEAnsatz(6, 1)
	points := []map[string]float64{
		workloads.VQEAnsatzPoint(6, 1, 0),
		workloads.VQEAnsatzPoint(6, 1, 1),
		workloads.VQEAnsatzPoint(6, 1, 2),
	}
	before := artifact.Shared.Stats()
	st := submitWait(t, svc, Request{Circuit: c, Shots: 6, Seed: 9, Sweep: points})
	after := artifact.Shared.Stats()
	if d := after.Misses - before.Misses; d > 1 {
		t.Fatalf("sweep compiled %d times, want at most 1", d)
	}
	if st.Set != nil || st.Histogram != nil {
		t.Fatal("sweep job returned a flat shot set")
	}
	if len(st.Points) != len(points) {
		t.Fatalf("got %d points, want %d", len(st.Points), len(points))
	}
	if st.Makespan == 0 || st.Makespan != st.Points[0].Makespan {
		t.Fatalf("sweep makespan not echoed from point 0: %d", st.Makespan)
	}
	for k, pt := range st.Points {
		single := submitWait(t, svc, Request{
			Circuit: c, Shots: 6, Seed: machine.DeriveSeed(9, k), Params: points[k],
		})
		if pt.Histogram.String() != single.Histogram.String() {
			t.Fatalf("sweep point %d differs from the equivalent single job:\n%s\nvs\n%s",
				k, pt.Histogram, single.Histogram)
		}
	}
}

// TestBindAdmissionErrors: malformed parameter submissions are rejected
// before any work queues.
func TestBindAdmissionErrors(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	c := workloads.VQEAnsatz(4, 1)
	full := workloads.VQEAnsatzPoint(4, 1, 0)
	cases := map[string]Request{
		"unbound-no-params": {Circuit: c, Shots: 1},
		"params-and-sweep":  {Circuit: c, Shots: 1, Params: full, Sweep: []map[string]float64{full}},
		"missing-param":     {Circuit: c, Shots: 1, Params: map[string]float64{"t0_0": 1}},
		"unknown-param": {Circuit: workloads.GHZ(4), Shots: 1,
			Params: map[string]float64{"bogus": 1}},
		"nan-param": {Circuit: c, Shots: 1, Params: func() map[string]float64 {
			m := map[string]float64{}
			for k, v := range full {
				m[k] = v
			}
			m["t0_0"] = math.NaN()
			return m
		}()},
		"bad-sweep-point": {Circuit: c, Shots: 1,
			Sweep: []map[string]float64{full, {"t0_0": 1}}},
	}
	for name, req := range cases {
		if _, err := svc.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// An empty params map on a concrete circuit is legal (bind no-op).
	submitWait(t, svc, Request{Circuit: workloads.GHZ(4), Shots: 2, Seed: 3,
		Params: map[string]float64{}})
}

// TestFreshSweepMatchesCachedSweep: the FreshCompile sweep baseline —
// full compile per point, private machines — must agree point for point
// with the bind-patched path.
func TestFreshSweepMatchesCachedSweep(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	c := workloads.VQEAnsatz(5, 1)
	points := []map[string]float64{
		workloads.VQEAnsatzPoint(5, 1, 0),
		workloads.VQEAnsatzPoint(5, 1, 4),
	}
	warm := submitWait(t, svc, Request{Circuit: c, Shots: 5, Seed: 13, Sweep: points})
	fresh := submitWait(t, svc, Request{Circuit: c, Shots: 5, Seed: 13, Sweep: points, FreshCompile: true})
	if len(fresh.Points) != len(warm.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(fresh.Points), len(warm.Points))
	}
	for k := range warm.Points {
		if warm.Points[k].Histogram.String() != fresh.Points[k].Histogram.String() {
			t.Fatalf("point %d: bind path %v vs fresh %v", k, warm.Points[k].Histogram, fresh.Points[k].Histogram)
		}
		if warm.Points[k].Makespan != fresh.Points[k].Makespan {
			t.Fatalf("point %d makespans differ", k)
		}
	}
}

// TestSweepCongestionAccounted: a sweep under finite link bandwidth must
// move the /v1/stats net_* counters even though its per-shot sets are
// dropped after the per-point snapshots are taken.
func TestSweepCongestionAccounted(t *testing.T) {
	svc := New(Config{Workers: 1})
	defer svc.Close()
	c := workloads.VQEAnsatz(6, 1)
	cfg := machine.DefaultConfig(6)
	cfg.Net.Topology = network.TopoTree
	cfg.Net.LinkSerialization = 4
	submitWait(t, svc, Request{
		Circuit: c, Shots: 4, Seed: 3, Cfg: &cfg,
		Sweep: []map[string]float64{workloads.VQEAnsatzPoint(6, 1, 0)},
	})
	st := svc.Stats()
	if st.NetMessages == 0 {
		t.Fatalf("sweep congestion vanished from service stats: %+v", st)
	}
}

// TestSweepPointCap: the bounded queue counts jobs, so a single sweep
// must not smuggle unbounded work past admission.
func TestSweepPointCap(t *testing.T) {
	svc := New(Config{Workers: 1, MaxSweepPoints: 3})
	defer svc.Close()
	c := workloads.VQEAnsatz(4, 1)
	pts := make([]map[string]float64, 4)
	for k := range pts {
		pts[k] = workloads.VQEAnsatzPoint(4, 1, k)
	}
	if _, err := svc.Submit(Request{Circuit: c, Shots: 1, Sweep: pts}); err == nil {
		t.Fatal("over-limit sweep accepted")
	}
	submitWait(t, svc, Request{Circuit: c, Shots: 1, Seed: 2, Sweep: pts[:3]})
}
