package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dhisq/internal/machine"
	"dhisq/internal/network"
)

// Concurrency edge tests: these exist to fail under -race (the CI race
// step covers internal/service) as much as to assert behavior.

func TestWaitContextAlreadyCancelled(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	id, err := s.Submit(Request{Circuit: ghz(3), Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the wait even starts

	done := make(chan struct{})
	var st JobStatus
	var ok bool
	go func() {
		st, ok = s.WaitContext(ctx, id)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitContext hung on an already-cancelled context")
	}
	if !ok {
		t.Fatal("job must still be found under a cancelled context")
	}
	// The snapshot is whatever the job's state was at that instant —
	// queued, running, or done are all legal; a hang or panic is not.
	switch st.State {
	case StateQueued, StateRunning, StateDone:
	default:
		t.Fatalf("unexpected state %q", st.State)
	}

	// The job itself must still complete normally afterwards.
	final, ok := s.Wait(id)
	if !ok || final.State != StateDone {
		t.Fatalf("job did not finish after cancelled wait: %+v", final)
	}

	if _, ok := s.WaitContext(ctx, "job-999999"); ok {
		t.Fatal("unknown job must report not-found even with a cancelled context")
	}
}

func TestSubmitRacingShutdown(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	var submitted, rejected atomic.Int64
	var ids sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id, err := s.Submit(Request{Circuit: ghz(3), Shots: 1, Seed: int64(1 + g*100 + i)})
				switch {
				case err == nil:
					submitted.Add(1)
					ids.Store(id, true)
				case errors.Is(err, ErrClosed), errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(g)
	}
	// Close while submitters are mid-flight: admitted jobs must reach a
	// terminal state (done, drained-to-failure, or already forgotten),
	// never hang, and late submitters must get ErrClosed, not a panic.
	s.Close()
	wg.Wait()

	ids.Range(func(k, _ any) bool {
		st, ok := s.Get(k.(string))
		if ok && !st.Done() {
			t.Errorf("job %s stuck in state %q after Close", k, st.State)
		}
		return true
	})
	if submitted.Load()+rejected.Load() != 160 {
		t.Fatalf("accounted %d+%d of 160 submissions", submitted.Load(), rejected.Load())
	}
	if _, err := s.Submit(Request{Circuit: ghz(3), Shots: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
}

func TestRetentionEvictionUnderConcurrentGet(t *testing.T) {
	const retain = 4
	s := New(Config{Workers: 2, MaxRetainedJobs: retain})
	defer s.Close()

	var mu sync.Mutex
	var known []string
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				snapshot := append([]string(nil), known...)
				mu.Unlock()
				for _, id := range snapshot {
					// Found or forgotten are both fine; racing eviction must
					// never corrupt a snapshot.
					if st, ok := s.Get(id); ok && st.ID != id {
						t.Errorf("Get(%s) returned snapshot for %s", id, st.ID)
						return
					}
				}
			}
		}()
	}

	for i := 0; i < 40; i++ {
		id, err := s.Submit(Request{Circuit: ghz(3), Shots: 1, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		known = append(known, id)
		mu.Unlock()
		if _, ok := s.Wait(id); !ok {
			t.Fatalf("job %s vanished before Wait returned", id)
		}
	}
	close(stop)
	readers.Wait()

	// Everything finished, so retention is the only thing keeping jobs
	// alive: at most `retain` of the 40 may still resolve.
	var found int
	for _, id := range known {
		if _, ok := s.Get(id); ok {
			found++
		}
	}
	if found > retain {
		t.Fatalf("%d jobs retained, bound is %d", found, retain)
	}
	if found == 0 {
		t.Fatal("the newest jobs should still be retained")
	}
}

func TestServiceAggregatesCongestion(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	// A tree-only, bandwidth-1 fabric on a QFT-ish all-to-all circuit is
	// guaranteed to queue at the router ports.
	c := ghz(6)
	cfg := machine.DefaultConfig(c.NumQubits)
	cfg.Backend = machine.BackendSeeded
	cfg.Net.Topology = network.TopoTree
	cfg.Net.LinkSerialization = 1
	id, err := s.Submit(Request{Circuit: c, MeshW: 3, MeshH: 2, Cfg: &cfg, Shots: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := s.Wait(id); !ok || st.State != StateDone {
		t.Fatalf("job: %+v", st)
	}
	stats := s.Stats()
	if stats.NetMessages == 0 {
		t.Fatalf("no network messages aggregated: %+v", stats)
	}
	if stats.NetStallCycles == 0 || stats.NetMaxQueue == 0 {
		t.Fatalf("congestion counters empty under contention: %+v", stats)
	}

	// A contention-free job must not move the congestion counters.
	cfg2 := machine.DefaultConfig(c.NumQubits)
	cfg2.Backend = machine.BackendSeeded
	id2, err := s.Submit(Request{Circuit: c, MeshW: 3, MeshH: 2, Cfg: &cfg2, Shots: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := s.Wait(id2); !ok || st.State != StateDone {
		t.Fatalf("job 2: %+v", st)
	}
	if after := s.Stats(); after.NetStallCycles != stats.NetStallCycles ||
		after.NetMessages != stats.NetMessages {
		t.Fatalf("contention-free job moved congestion counters: %+v -> %+v", stats, after)
	}
}
