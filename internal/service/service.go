// Package service is the request-serving layer of the stack: a long-lived
// job manager that turns circuit submissions into shot executions on a
// bounded worker pool, built directly on internal/runner's deterministic
// shot merge and internal/artifact's compile-once cache.
//
// The execution model separates the reusable compiled program from the
// per-request schedule (the split Riverlane's distributed VQE controller
// and the DisQ processor model both argue for): a job is fingerprinted on
// submission, compilation goes through the shared artifact cache, and
// loaded machine replicas are pooled *per artifact*, so a burst of jobs
// for the same circuit batches onto the same warm replicas — no compile,
// no machine construction, just reset-and-run per shot.
//
// Determinism survives the service boundary. Every job runs with its own
// base seed (caller-chosen, or derived from the service seed and the job's
// admission index), shot k of a job uses machine.DeriveSeed(jobSeed, k),
// and results merge shot-indexed via runner.RunOn — so a job's ShotSet is
// byte-identical whether it ran on one pooled replica or four, cold cache
// or warm.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"dhisq/internal/artifact"
	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/placement"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the number of jobs executed concurrently (<= 0 picks
	// GOMAXPROCS/2, minimum 1). Each running job additionally fans its
	// shots across ShotWorkers replicas.
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted jobs;
	// Submit fails with ErrQueueFull beyond it (<= 0 means 64).
	QueueDepth int
	// ShotWorkers is the replica count a single job's shots fan out
	// across (<= 0 means 1; service throughput usually comes from job
	// parallelism, not per-job fan-out).
	ShotWorkers int
	// Seed is the service base seed: job n with no explicit seed runs
	// with machine.DeriveSeed(Seed, n) (0 means 1).
	Seed int64
	// MaxPooledReplicas bounds the loaded machines kept warm across all
	// artifacts (<= 0 means 4 * Workers). Least recently used artifact
	// pools are dropped first.
	MaxPooledReplicas int
	// MaxRetainedJobs bounds how many finished jobs stay queryable
	// (<= 0 means 4096). Oldest-finished are forgotten first, so a
	// long-lived daemon's memory does not grow with total traffic; a
	// Get/Wait for a forgotten job reports not-found.
	MaxRetainedJobs int
	// MaxSweepPoints bounds the points one sweep job may carry
	// (<= 0 means 4096). The job queue bounds jobs, not work: without
	// this cap a single submission could monopolize a worker forever and
	// retain an unbounded Points snapshot past completion.
	MaxSweepPoints int
	// Artifacts is the compiled-artifact cache this service compiles
	// through (nil = the process-wide artifact.Shared). A service with a
	// private cache — typically one with an on-disk store attached via
	// artifact.Cache.SetStore — keeps its compile accounting and its
	// restart-warm behavior independent of everything else in the process,
	// which is what the in-process cluster and crash/restart tests need.
	Artifacts *artifact.Cache
	// ReplaceStallThreshold enables congestion-feedback re-placement: the
	// service aggregates per-link fabric stalls per replica-pool group
	// (compiler.Feedback), and once a group's total crosses this many
	// cycles it recompiles the circuit with a feedback-weighted placement
	// (machine.RePlace) and swaps the group's replicas — the structural
	// key is untouched, so a sweep family keeps its bind cache while its
	// warm replicas get a less congested mapping. 0 (the default)
	// disables the loop entirely: first-run behavior is byte-identical to
	// a service without it.
	ReplaceStallThreshold uint64
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Request describes one job: a circuit, its placement, and how many shots
// to run.
type Request struct {
	Circuit *circuit.Circuit
	// MeshW/MeshH give the controller mesh; 0 picks a near-square mesh
	// for the circuit like the facade's Sample.
	MeshW, MeshH int
	Mapping      []int // qubit -> controller; nil = identity
	// Cfg overrides the machine configuration when non-nil (the mesh
	// fields are taken from MeshW/MeshH either way).
	Cfg *machine.Config
	// Placement names the placement policy the compiler applies when
	// Mapping is nil ("" defers to Cfg.Placement, then to identity).
	// Unknown names are rejected at admission, before any work queues.
	Placement string
	// Schedule names the scheduling policy of the compiler's Schedule
	// pass ("" defers to Cfg.Schedule, then to the fixed replay).
	// Validated at admission exactly like Placement.
	Schedule string
	// Collective names a network.CollSchedule ("naive", "ring", "halving",
	// "tree", "auto") and switches the job onto the collective-aware
	// lowering plus the post-run digest reduce ("" defers to
	// Cfg.Collective, then to off). Validated at admission like the other
	// policy names.
	Collective string
	// Chips splits the device into a multi-chip partition (machine
	// config Chips; 0/1 = the legacy single-chip machine). Cross-chip
	// two-qubit gates compile into EPR-mediated teleported gates, so
	// chip count is compile-relevant: it joins the artifact fingerprint
	// and thereby the replica-pool key, keeping pools chip-homogeneous.
	// Validated at admission (bounded by the circuit's qubit count,
	// incompatible with an explicit Mapping).
	Chips int
	// EPRLatency overrides the EPR pair-generation latency in cycles for
	// multi-chip jobs (0 defers to Cfg.EPRLatency, then to the machine
	// default). Compile-relevant like Chips.
	EPRLatency sim.Time
	Shots      int
	// Seed, when non-zero, is the job's base seed; 0 lets the service
	// derive a per-job seed from its own seed stream.
	Seed int64
	// FreshCompile makes this job bypass the artifact cache and the
	// replica pool entirely: compile + build paid in full, nothing
	// cached or pooled. The baseline knob of the cache experiments and
	// a diagnostic escape hatch; results are still byte-identical.
	FreshCompile bool
	// Params binds the circuit's symbolic parameters for this job. The
	// job is fingerprinted on the bind-invariant structural key, so every
	// binding of one skeleton shares a single compiled artifact (patched
	// per job by BindParams) and one replica pool. The map must supply
	// every symbolic parameter of the circuit. Mutually exclusive with
	// Sweep.
	Params map[string]float64
	// Sweep runs the circuit at every listed parameter point — Shots
	// repetitions each, point k seeded from DeriveSeed(jobSeed, k) — all
	// inside one job against one compiled skeleton. Results arrive as
	// JobStatus.Points instead of a single ShotSet.
	Sweep []map[string]float64
}

// bindJob reports whether the request goes through the parameter-binding
// path (structural fingerprint + per-point BindParams).
func (r Request) bindJob() bool { return r.Params != nil || len(r.Sweep) > 0 }

// JobStatus is a point-in-time snapshot of a job, safe to retain.
type JobStatus struct {
	ID          string
	State       State
	Shots       int
	Seed        int64
	Fingerprint string // artifact fingerprint (hex)
	CacheHit    bool   // compilation was served from the artifact cache
	Batched     bool   // ran on pooled replicas warmed by an earlier job
	// MeshW/MeshH are the resolved controller-mesh dimensions and
	// Placement the resolved policy name — echoed so remote users can see
	// why two submissions landed in different replica pools.
	MeshW, MeshH int
	Placement    string
	// Schedule is the resolved scheduling policy name, echoed like
	// Placement.
	Schedule string
	// Chips is the resolved chip count the job compiled with (0 = the
	// legacy single-chip machine), echoed like Placement; EPRPairs
	// totals the EPR pairs generated across the job's shots (0 for
	// single-chip jobs and for sweep jobs, which drop their shot sets).
	Chips    int
	EPRPairs uint64
	// Mapping is the final qubit→controller mapping the job compiled with
	// (nil = identity), as resolved by the compiler's Place pass. A job
	// served by a feedback-re-placed replica pool echoes the re-placed
	// mapping.
	Mapping []int
	// Set and Histogram are populated once State == StateDone (nil for
	// sweep jobs, whose results arrive per point in Points).
	Set       *runner.ShotSet
	Histogram runner.Histogram
	// Points holds the per-point outcomes of a sweep job, in point order.
	Points []PointStatus
	// Makespan is shot 0's makespan in cycles (0 until done; for sweep
	// jobs, point 0 shot 0).
	Makespan int64
	Err      string
}

// PointStatus is one sweep point's outcome. Index is the point's position
// in the submitted sweep — in JobStatus.Points the slice is already in
// index order, but a stream delivers points in completion order, and
// under multiple shot workers that is not submission order.
type PointStatus struct {
	Index     int                `json:"index"`
	Params    map[string]float64 `json:"params"`
	Histogram runner.Histogram   `json:"histogram"`
	Makespan  int64              `json:"makespan_cycles"`
}

// pointStatusOf folds one finished sweep point into its retainable
// snapshot (histogram + makespan; the full shot set is dropped).
func pointStatusOf(p runner.SweepPoint) PointStatus {
	st := PointStatus{Index: p.Index, Params: p.Params, Histogram: p.Set.Histogram()}
	if len(p.Set.Shots) > 0 {
		st.Makespan = int64(p.Set.Shots[0].Result.Makespan)
	}
	return st
}

// Done reports whether the job has reached a terminal state.
func (s JobStatus) Done() bool { return s.State == StateDone || s.State == StateFailed }

// Stats is a point-in-time snapshot of service health, the payload of
// dhisq-serve's /v1/stats.
type Stats struct {
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	// BatchedJobs counts jobs that found warm replicas for their
	// artifact already pooled (no machine construction at all).
	BatchedJobs uint64 `json:"batched_jobs"`
	// Binds counts BindParams patch operations performed on the cached
	// path (one per parameter-bound job, one per sweep point); BindHits
	// counts parameter-bound jobs whose compiled skeleton was served from
	// the artifact cache — the compile the binding layer saved.
	Binds          uint64         `json:"binds"`
	BindHits       uint64         `json:"bind_hits"`
	PooledReplicas int            `json:"pooled_replicas"`
	Cache          artifact.Stats `json:"artifact_cache"`
	// Congestion counters, aggregated across every shot of every
	// completed job. All zero unless jobs ran with the fabric's
	// contention model enabled (network.Config.LinkSerialization > 0).
	// NetStallCycles counts queueing at every link and router port —
	// all traffic, router-originated hops included — matching
	// BENCH_fabric.json's total_stall_cycles, not its narrower
	// controller-charged net_stall_cycles.
	NetStallCycles uint64 `json:"net_total_stall_cycles"`
	NetMaxQueue    int    `json:"net_max_queue"`
	NetMessages    uint64 `json:"net_messages"`
	NetOverflows   uint64 `json:"net_overflows"`
	// Collective-layer counters (network.CongestionStats): operations the
	// fabric's collective layer executed across completed jobs' shots, and
	// the queueing cycles their messages accrued. Ops count even with the
	// contention model disabled; the stall needs finite link bandwidth.
	NetCollectiveOps   uint64 `json:"net_collective_ops"`
	NetCollectiveStall uint64 `json:"net_collective_stall_cycles"`
	// Replacements counts replica-pool groups re-placed via congestion
	// feedback (0 unless Config.ReplaceStallThreshold is set).
	Replacements uint64 `json:"replacements"`
}

// ErrQueueFull is returned by Submit when the bounded queue is at depth.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: closed")

// poolKey identifies machines that are interchangeable for job
// execution: same compiled artifact AND same runtime configuration. The
// artifact fingerprint only covers compile-relevant inputs; two jobs can
// share binaries yet need different machines (state-vector vs seeded
// backend, event logging, deadline), so those ride along here. Seed is
// deliberately absent — Reset(seed) re-seeds a pooled machine per shot.
type poolKey struct {
	fp        artifact.Fingerprint
	backend   machine.BackendKind // resolved, never BackendAuto
	logEvents bool
	deadline  sim.Time
	// collective is the resolved Config.Collective schedule name. The
	// schedule is runtime configuration — every schedule shares one
	// compiled artifact (keyVersion 6 hashes only the on/off toggle) — but
	// a pooled machine is built with one Cfg, so "ring" and "tree" jobs
	// must not trade replicas.
	collective string
}

type job struct {
	id        string
	req       Request
	spec      runner.Spec
	fp        artifact.Fingerprint
	pk        poolKey
	seed      int64
	placement string // resolved placement policy name (never "")
	schedule  string // resolved schedule policy name (never "")

	trackFeedback bool // aggregate per-link feedback for the re-place loop

	mu       sync.Mutex
	state    State
	cacheHit bool
	batched  bool
	mapping  []int // final qubit→controller mapping (nil = identity)
	set      *runner.ShotSet
	hist     runner.Histogram // computed once at finish, not per poll
	points   []PointStatus    // sweep jobs: per-point outcomes, index order
	// streamed holds sweep points in completion order as they finish —
	// the publication log Stream cursors over while the job still runs.
	// notify is closed and replaced under mu on every publish, so any
	// number of streaming watchers can wait for "something new" without
	// polling and without a Cond (a channel honors context cancellation).
	streamed []PointStatus
	notify   chan struct{}
	net      congestionAgg // sweep jobs: congestion folded at setPoints
	err      error
	done     chan struct{}
}

// publish appends one finished sweep point to the stream log and wakes
// every watcher. Called from runner worker goroutines mid-execution.
func (j *job) publish(ps PointStatus) {
	j.mu.Lock()
	j.streamed = append(j.streamed, ps)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// setPoints folds a finished sweep's per-point shot sets into retainable
// snapshots (histogram + makespan; the full sets are dropped so a
// long-lived daemon's retention bound stays a bound). Fabric congestion
// is aggregated here, before the per-shot data goes away, so sweep jobs
// still move the /v1/stats net_* counters.
func (j *job) setPoints(pts []runner.SweepPoint) {
	out := make([]PointStatus, len(pts))
	aggs := make([]congestionAgg, len(pts))
	for i, p := range pts {
		out[i] = pointStatusOf(p)
		aggs[i] = congestionAgg{track: j.trackFeedback}
		aggs[i].add(p.Set)
	}
	// Per-point aggregates fold over the host reduction tree, mirroring the
	// per-shot fold inside add; for a zero-point sweep the zero aggregate
	// stands.
	agg, ok := runner.TreeReduce(aggs, digestGrain, congestionAgg.merge)
	if !ok {
		agg = congestionAgg{track: j.trackFeedback}
	}
	j.mu.Lock()
	j.points = out
	j.net = agg
	j.mu.Unlock()
}

// netAgg snapshots the congestion the job aggregated before dropping its
// per-shot data (sweep jobs; zero for everything else).
func (j *job) netAgg() congestionAgg {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.net
}

// setMapping records the final mapping the job's artifact was compiled
// with (the Place pass may have computed it from the policy). Copied:
// the artifact is cached process-wide, and JobStatus hands the slice to
// callers who are free to mutate their snapshot.
func (j *job) setMapping(cp *compiler.Compiled) {
	if cp == nil || cp.Mapping == nil {
		return
	}
	j.mu.Lock()
	j.mapping = append([]int(nil), cp.Mapping...)
	j.mu.Unlock()
}

// Service is the job manager. Construct with New, stop with Close.
type Service struct {
	cfg   Config
	arts  *artifact.Cache // resolved Config.Artifacts (never nil)
	queue chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // completion order, oldest first (retention bound)
	nextID   uint64
	closed   bool
	running  int
	stats    Stats
	pool     *replicaPool
	// feedback tracks aggregated congestion per replica-pool group when
	// Config.ReplaceStallThreshold is set (nil entries never exist; the
	// map stays empty with the loop disabled).
	feedback map[poolKey]*feedbackState

	wg sync.WaitGroup
}

// feedbackState is one replica-pool group's accumulated congestion and,
// once the threshold tripped, the re-placed artifact every later job of
// the group executes with.
type feedbackState struct {
	fb       compiler.Feedback
	replaced bool               // re-place triggered (claims are one-shot)
	artifact *compiler.Compiled // re-placed artifact (nil until swap done)
}

// New starts a service with cfg's worker pool running.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) / 2
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ShotWorkers <= 0 {
		cfg.ShotWorkers = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxPooledReplicas <= 0 {
		cfg.MaxPooledReplicas = 4 * cfg.Workers
	}
	if cfg.MaxRetainedJobs <= 0 {
		cfg.MaxRetainedJobs = 4096
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = 4096
	}
	if cfg.Artifacts == nil {
		cfg.Artifacts = artifact.Shared
	}
	s := &Service{
		cfg:      cfg,
		arts:     cfg.Artifacts,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		pool:     newReplicaPool(cfg.MaxPooledReplicas),
		feedback: make(map[poolKey]*feedbackState),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// resolveRequest normalizes a request exactly the way Submit will run
// it: mesh dimensions default via AutoMesh, the machine config via
// DefaultConfig, Request.Placement/Request.Schedule override their Cfg
// counterparts, and the resulting policy names are validated. Shared
// between Submit (admission) and RouteKey (cluster routing) so a shard
// and a router can never disagree about what a request means.
func resolveRequest(req Request) (Request, machine.Config, string, string, error) {
	if req.Circuit == nil {
		return req, machine.Config{}, "", "", fmt.Errorf("service: nil circuit")
	}
	if req.Shots < 1 {
		return req, machine.Config{}, "", "", fmt.Errorf("service: shots %d < 1", req.Shots)
	}
	if req.MeshW <= 0 || req.MeshH <= 0 {
		req.MeshW, req.MeshH = placement.AutoMesh(req.Circuit.NumQubits)
	}
	var cfg machine.Config
	if req.Cfg != nil {
		cfg = *req.Cfg
	} else {
		cfg = machine.DefaultConfig(req.Circuit.NumQubits)
	}
	cfg.Net.MeshW, cfg.Net.MeshH = req.MeshW, req.MeshH
	if req.Placement != "" {
		cfg.Placement = req.Placement
	}
	if req.Schedule != "" {
		cfg.Schedule = req.Schedule
	}
	if req.Collective != "" {
		cfg.Collective = req.Collective
	}
	if req.Chips != 0 {
		cfg.Chips = req.Chips
	}
	if req.EPRLatency != 0 {
		cfg.EPRLatency = req.EPRLatency
	}
	if cfg.Chips < 0 {
		return req, machine.Config{}, "", "", fmt.Errorf("service: negative chip count %d", cfg.Chips)
	}
	if cfg.EPRLatency < 0 {
		return req, machine.Config{}, "", "", fmt.Errorf("service: negative EPR latency %d", cfg.EPRLatency)
	}
	if cfg.Chips > 1 {
		if req.Mapping != nil {
			return req, machine.Config{}, "", "", fmt.Errorf("service: explicit mapping with %d chips unsupported (the chip expansion adds communication qubits; use a placement policy)", cfg.Chips)
		}
		if cfg.Chips > req.Circuit.NumQubits {
			return req, machine.Config{}, "", "", fmt.Errorf("service: %d chips exceed %d qubits (each chip needs at least one data qubit)", cfg.Chips, req.Circuit.NumQubits)
		}
		// The expansion appends one communication qubit per chip; grow
		// the mesh here, at admission, exactly the way machine.New
		// would, so the fingerprint this request is admitted and routed
		// under matches the machine it will run on.
		if total := cfg.TotalQubits(req.Circuit.NumQubits); req.MeshW*req.MeshH < total {
			req.MeshW, req.MeshH = placement.AutoMesh(total)
			cfg.Net.MeshW, cfg.Net.MeshH = req.MeshW, req.MeshH
		}
	}
	// Validate the policies the job will actually compile with — whether
	// they arrived via the request or a caller-supplied Cfg — so unknown
	// names are rejected here, before any work queues.
	resolvedPolicy := cfg.Placement
	if resolvedPolicy == "" {
		resolvedPolicy = placement.Default
	}
	if err := placement.Valid(resolvedPolicy); err != nil {
		return req, machine.Config{}, "", "", err
	}
	resolvedSchedule := cfg.Schedule
	if resolvedSchedule == "" {
		resolvedSchedule = compiler.DefaultSchedule
	}
	if err := compiler.ValidSchedule(resolvedSchedule); err != nil {
		return req, machine.Config{}, "", "", err
	}
	if cfg.Collective != "" {
		if _, err := network.ParseCollSchedule(cfg.Collective); err != nil {
			return req, machine.Config{}, "", "", err
		}
	}
	return req, cfg, resolvedPolicy, resolvedSchedule, nil
}

// RouteKey is the fingerprint cluster routing shards on: always the
// bind-invariant structural key, so every binding of one parameterized
// family — and the unparameterized circuit itself — routes to the same
// shard, landing on that shard's warm skeleton and replica pool. It is a
// pure function of the request (no service state, no seeds), so every
// node of a cluster computes the same key for the same submission.
func RouteKey(req Request) (artifact.Fingerprint, error) {
	req, cfg, _, _, err := resolveRequest(req)
	if err != nil {
		return artifact.Fingerprint{}, err
	}
	return machine.StructuralKeyFor(req.Circuit, req.Mapping, cfg)
}

// Submit validates and enqueues a job, returning its ID immediately. The
// queue is bounded: a full queue rejects with ErrQueueFull rather than
// blocking the caller (admission control, not backpressure-by-hanging).
func (s *Service) Submit(req Request) (string, error) {
	req, cfg, resolvedPolicy, resolvedSchedule, err := resolveRequest(req)
	if err != nil {
		return "", err
	}
	// Jobs compile through this service's artifact cache (unless the
	// caller pinned one in req.Cfg): the field rides the machine config
	// into runner.Build without touching any fingerprint.
	if cfg.Artifacts == nil {
		cfg.Artifacts = s.arts
	}
	if len(req.Sweep) > s.cfg.MaxSweepPoints {
		return "", fmt.Errorf("service: sweep has %d points, limit %d (split it into multiple jobs — they share the compiled skeleton anyway)",
			len(req.Sweep), s.cfg.MaxSweepPoints)
	}
	if err := validateParams(req); err != nil {
		return "", err
	}

	// Fingerprint at admission, outside the service lock: KeyFor hashes
	// every circuit op, so holding s.mu here would serialize all
	// admission and every Get/Wait/Stats behind it. The key is what
	// batches this job with others compiling the same program; KeyFor
	// needs only the topology, so admission never builds a machine. The
	// resolved backend joins the pool key (execution-relevant but not
	// compile-relevant). Neither depends on the seed assigned below.
	// Parameter-bound jobs fingerprint on the bind-invariant structural
	// key instead, so every binding of one skeleton — and every point of
	// a sweep — shares one artifact and one replica pool.
	keyFn := machine.KeyFor
	if req.bindJob() {
		keyFn = machine.StructuralKeyFor
	}
	fp, err := keyFn(req.Circuit, req.Mapping, cfg)
	if err != nil {
		return "", err
	}
	j := &job{
		req:       req,
		fp:        fp,
		placement: resolvedPolicy,
		schedule:  resolvedSchedule,
		pk: poolKey{
			fp: fp, backend: machine.ResolveBackend(req.Circuit, cfg.Backend),
			logEvents: cfg.LogEvents, deadline: cfg.Deadline,
			collective: cfg.Collective,
		},
		state:  StateQueued,
		done:   make(chan struct{}),
		notify: make(chan struct{}),
		// Per-link feedback is only worth aggregating when the re-place
		// loop can consume it; FreshCompile jobs opt out of pooling and
		// therefore out of the loop.
		trackFeedback: s.cfg.ReplaceStallThreshold > 0 && !req.FreshCompile,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", ErrClosed
	}
	n := s.nextID
	s.nextID++
	seed := req.Seed
	if seed == 0 {
		seed = machine.DeriveSeed(s.cfg.Seed, int(n))
	}
	cfg.Seed = seed
	j.id = fmt.Sprintf("job-%06d", n)
	j.seed = seed
	j.spec = runner.Spec{
		Circuit: req.Circuit, MeshW: req.MeshW, MeshH: req.MeshH,
		Mapping: req.Mapping, Cfg: cfg, FreshCompile: req.FreshCompile,
	}
	select {
	case s.queue <- j:
	default:
		s.nextID = n // roll the ID back so rejects don't burn seeds
		s.stats.Rejected++
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	s.jobs[j.id] = j
	s.stats.Submitted++
	s.mu.Unlock()
	return j.id, nil
}

// validateParams rejects malformed parameter bindings at admission,
// before any work queues: a bind/sweep job must supply exactly the
// circuit's symbolic parameter set (NaN-free) at every point, and a plain
// job must not submit an unbound skeleton — its table angles would
// silently execute as zero.
func validateParams(req Request) error {
	if req.Params != nil && len(req.Sweep) > 0 {
		return fmt.Errorf("service: give params or sweep, not both")
	}
	if !req.bindJob() {
		if ub := req.Circuit.UnboundParams(); len(ub) > 0 {
			return fmt.Errorf("service: circuit has unbound parameters %v: supply params or sweep", ub)
		}
		return nil
	}
	syms := req.Circuit.Params()
	check := func(where string, vals map[string]float64) error {
		if len(vals) != len(syms) {
			return fmt.Errorf("service: %s binds %d parameters, circuit has %d (%v)",
				where, len(vals), len(syms), syms)
		}
		for _, name := range syms {
			v, ok := vals[name]
			if !ok {
				return fmt.Errorf("service: %s missing parameter %q", where, name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("service: %s parameter %q is %v (angles must be finite)", where, name, v)
			}
		}
		return nil
	}
	if req.Params != nil {
		return check("params", req.Params)
	}
	for i, pt := range req.Sweep {
		if err := check(fmt.Sprintf("sweep point %d", i), pt); err != nil {
			return err
		}
	}
	return nil
}

// Get snapshots a job by ID.
func (s *Service) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Wait blocks until the job reaches a terminal state and returns its
// final snapshot (the "stream the result" path; Get is the poll path).
func (s *Service) Wait(id string) (JobStatus, bool) {
	return s.WaitContext(context.Background(), id)
}

// WaitContext is Wait with a deadline: it blocks until the job reaches a
// terminal state or the context is done, whichever comes first, and
// returns the job's snapshot at that moment. A cancelled context does not
// fail the lookup — the boolean still reports whether the job exists, and
// the caller distinguishes "finished" from "gave up waiting" by
// JobStatus.Done(). An already-cancelled context degrades to Get.
func (s *Service) WaitContext(ctx context.Context, id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.status(), true
}

// Stats snapshots service counters plus the shared artifact-cache stats.
// Every s.stats mutation — admission, rejection, the worker's
// completion/failure/bind accounting, and congestion folding — happens
// under s.mu, so the snapshot is internally consistent (Completed never
// exceeds Submitted) no matter how many readers poll under load.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	st.QueueDepth = len(s.queue)
	st.Running = s.running
	s.mu.Unlock()
	st.PooledReplicas = s.pool.size()
	st.Cache = s.arts.Stats()
	return st
}

// Close stops admission, drains queued jobs to failure, and waits for
// running jobs to finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		if s.closed {
			// Drain: jobs admitted before Close but not started fail
			// deterministically instead of hanging their waiters.
			s.stats.Failed++
			s.retire(j.id)
			s.mu.Unlock()
			j.finish(nil, fmt.Errorf("service: shut down before job started"))
			continue
		}
		s.running++
		s.mu.Unlock()
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()

		set, cacheHit, batched, err := s.execute(j)
		j.mu.Lock()
		j.cacheHit, j.batched = cacheHit, batched
		j.mu.Unlock()
		j.finish(set, err)

		s.mu.Lock()
		s.running--
		var agg congestionAgg
		if err != nil {
			s.stats.Failed++
		} else {
			s.stats.Completed++
			if batched {
				s.stats.BatchedJobs++
			}
			if j.req.bindJob() && !j.req.FreshCompile {
				n := uint64(1)
				if len(j.req.Sweep) > 0 {
					n = uint64(len(j.req.Sweep))
				}
				s.stats.Binds += n
				if cacheHit {
					s.stats.BindHits++
				}
			}
			agg = j.netAgg() // sweep jobs folded theirs at setPoints
			agg.track = j.trackFeedback
			if set != nil {
				agg.add(set)
			}
			s.foldCongestion(agg)
		}
		s.retire(j.id)
		s.mu.Unlock()
		if err == nil {
			s.maybeReplace(j, agg.fb)
		}
	}
}

// netDigest is one shot's fabric-congestion summary, the element type of
// the host reduction tree: add builds one per shot and folds them with
// runner.TreeReduce instead of a linear accumulation loop. Collective
// counters fold even when the contention model is disabled — the
// collective layer runs (and counts operations) either way.
type netDigest struct {
	stall, messages, overflows uint64
	collOps, collStall         uint64
	maxQueue                   int
}

// digestOf extracts a shot's congestion digest from its result.
func digestOf(res machine.Result) netDigest {
	net := res.Net
	d := netDigest{
		collOps:   net.CollectiveOps,
		collStall: uint64(net.CollectiveStall),
	}
	if !net.Enabled {
		return d
	}
	d.stall = uint64(net.TotalStall())
	d.messages = net.LinkMessages + net.PortMessages
	d.overflows = net.LinkOverflows + net.PortOverflows
	d.maxQueue = net.MaxQueue()
	return d
}

// merge combines two digests (associative and commutative — sums and a
// max — so the reduction tree agrees with any fold order).
func (d netDigest) merge(e netDigest) netDigest {
	d.stall += e.stall
	d.messages += e.messages
	d.overflows += e.overflows
	d.collOps += e.collOps
	d.collStall += e.collStall
	if e.maxQueue > d.maxQueue {
		d.maxQueue = e.maxQueue
	}
	return d
}

// digestGrain keeps small shot sets on the sequential leaf path of the
// reduction tree; only jobs with hundreds of shots fan the fold out.
const digestGrain = 256

// congestionAgg accumulates per-shot fabric congestion so it can outlive
// the shot sets it came from (sweep jobs drop theirs at setPoints). With
// track set it additionally folds the per-link attribution into a
// compiler.Feedback for the re-place loop; aggregation is commutative
// either way, so the result is independent of shot completion order.
type congestionAgg struct {
	net   netDigest
	track bool
	fb    compiler.Feedback
}

func (a *congestionAgg) add(set *runner.ShotSet) {
	if len(set.Shots) == 0 {
		return
	}
	digests := make([]netDigest, len(set.Shots))
	for i, shot := range set.Shots {
		digests[i] = digestOf(shot.Result)
	}
	folded, _ := runner.TreeReduce(digests, digestGrain, netDigest.merge)
	a.net = a.net.merge(folded)
	if a.track {
		// Per-link attribution feeds the re-place loop; Feedback's maps make
		// a per-shot copy too heavy for the tree, so absorption stays linear
		// (Absorb is commutative, determinism is unaffected).
		for _, shot := range set.Shots {
			if shot.Result.Net.Enabled {
				a.fb.Absorb(shot.Result.Net, shot.Result.RouterUtilization)
			}
		}
	}
}

// merge combines two aggregates (sweep jobs fold their per-point
// aggregates over the reduction tree in setPoints). The receiver's track
// flag wins; b's feedback is merged in either way.
func (a congestionAgg) merge(b congestionAgg) congestionAgg {
	a.net = a.net.merge(b.net)
	a.fb.Merge(&b.fb)
	return a
}

// foldCongestion merges aggregated congestion into the service stats.
// Called with s.mu held.
func (s *Service) foldCongestion(a congestionAgg) {
	s.stats.NetStallCycles += a.net.stall
	s.stats.NetMessages += a.net.messages
	s.stats.NetOverflows += a.net.overflows
	s.stats.NetCollectiveOps += a.net.collOps
	s.stats.NetCollectiveStall += a.net.collStall
	if a.net.maxQueue > s.stats.NetMaxQueue {
		s.stats.NetMaxQueue = a.net.maxQueue
	}
}

// maybeReplace folds a finished job's feedback into its pool group and,
// once the group's aggregated stall crosses the configured threshold,
// re-places it: search for a measurably better mapping (machine.RePlace),
// recompile under it, and swap the group's replicas. Runs on the worker
// goroutine outside s.mu — the search compiles and probes.
func (s *Service) maybeReplace(j *job, fb compiler.Feedback) {
	if !j.trackFeedback {
		return
	}
	s.mu.Lock()
	fs := s.feedback[j.pk]
	if fs == nil {
		fs = &feedbackState{}
		s.feedback[j.pk] = fs
	}
	fs.fb.Merge(&fb)
	if fs.replaced || uint64(fs.fb.TotalStall) < s.cfg.ReplaceStallThreshold {
		s.mu.Unlock()
		return
	}
	fs.replaced = true // one-shot claim: a group is re-placed at most once
	snapshot := fs.fb
	s.mu.Unlock()

	cp, err := s.rePlace(j, &snapshot)
	if err != nil || cp == nil {
		return // the search kept the incumbent (or failed): nothing to swap
	}
	s.mu.Lock()
	fs.artifact = cp
	s.stats.Replacements++
	s.mu.Unlock()
	// Drop the stale warm replicas; the group's next job rebuilds from the
	// re-placed artifact under the unchanged pool key, so a sweep family
	// keeps its bind cache and its batching.
	s.pool.drop(j.pk)
}

// rePlace computes the re-placed artifact for j's pool group: probe-search
// a mapping with lower measured fabric stall under the accumulated
// feedback, then compile the job's circuit (the unbound skeleton, for bind
// jobs) with it. Returns nil when the search kept the incumbent mapping.
// The re-placed artifact caches under its own fingerprint — the original
// entry is never overwritten, so the content-addressed cache stays honest.
func (s *Service) rePlace(j *job, fb *compiler.Feedback) (*compiler.Compiled, error) {
	probeCirc := j.req.Circuit
	if j.req.bindJob() {
		// Probes need a runnable circuit; the first binding of the family
		// is the deterministic stand-in for its traffic.
		params := j.req.Params
		if len(j.req.Sweep) > 0 {
			params = j.req.Sweep[0]
		}
		bound, err := probeCirc.Bind(params)
		if err != nil {
			return nil, err
		}
		probeCirc = bound
	}
	j.mu.Lock()
	prior := append([]int(nil), j.mapping...) // nil stays nil (= identity)
	j.mu.Unlock()
	cfg := j.spec.Cfg
	newMap, _, err := machine.RePlace(probeCirc, cfg, prior, fb)
	if err != nil {
		return nil, err
	}
	if sameMapping(newMap, prior) {
		return nil, nil
	}
	m, err := machine.NewForCircuit(j.req.Circuit, j.req.MeshW, j.req.MeshH, cfg)
	if err != nil {
		return nil, err
	}
	if j.req.bindJob() {
		return m.CompileSkeleton(j.req.Circuit, newMap)
	}
	return m.Compile(j.req.Circuit, newMap)
}

// replacedArtifact returns the re-placed artifact for a pool group (nil
// when the group was never re-placed).
func (s *Service) replacedArtifact(pk poolKey) *compiler.Compiled {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fs := s.feedback[pk]; fs != nil {
		return fs.artifact
	}
	return nil
}

// sameMapping compares a mapping against a prior one, treating a nil
// prior as the identity.
func sameMapping(m, prior []int) bool {
	if m == nil {
		return prior == nil
	}
	for q, c := range m {
		want := q
		if prior != nil {
			if q >= len(prior) {
				return false
			}
			want = prior[q]
		}
		if c != want {
			return false
		}
	}
	return prior == nil || len(m) == len(prior)
}

// retire records a finished job and forgets the oldest-finished beyond
// the retention bound. Called with s.mu held. A waiter that already
// holds the *job keeps it alive until it reads the status; only the
// service's own reference is dropped.
func (s *Service) retire(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.MaxRetainedJobs {
		oldest := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, oldest)
	}
}

// execute runs one job: check out (or build) the replicas for its
// artifact, fan the shots out with the runner's deterministic merge, and
// return the replicas to the pool for the next job sharing the artifact.
// Every job resolves its artifact through the shared cache exactly once,
// so the hit/miss counters reflect per-job artifact reuse even when the
// replica pool made the lookup unnecessary for execution.
func (s *Service) execute(j *job) (set *runner.ShotSet, cacheHit, batched bool, err error) {
	if j.req.bindJob() {
		return s.executeBind(j)
	}
	want := s.cfg.ShotWorkers
	if want > j.req.Shots {
		want = j.req.Shots
	}
	if j.req.FreshCompile {
		// Baseline/diagnostic path: private machines, full compiles, no
		// cache or pool interaction (spec.FreshCompile routes the build
		// through CompileFresh).
		machines := make([]*machine.Machine, 0, want)
		for len(machines) < want {
			m, _, buildErr := runner.Build(j.spec, nil)
			if buildErr != nil {
				return nil, false, false, buildErr
			}
			machines = append(machines, m)
		}
		j.setMapping(machines[0].Loaded())
		set, err = runner.RunOn(machines, j.seed, j.req.Shots, j.req.Circuit.NumBits)
		return set, false, false, err
	}
	machines := s.pool.checkout(j.pk, want)
	batched = len(machines) > 0

	// Resolve the artifact through the shared cache: a present entry
	// counts one hit per job (and stays MRU while its replicas are
	// hot); an absent entry counts nothing here — if replicas must be
	// built, the first Build's GetOrCompile charges the miss, so misses
	// always equal actual compiles.
	var cp *compiler.Compiled
	cp, cacheHit = s.arts.Get(j.fp)
	if ov := s.replacedArtifact(j.pk); ov != nil {
		// The group was re-placed: run from the swapped artifact (a hit —
		// nothing compiles). Replicas pooled before the swap still hold the
		// old program; drop them rather than run the stale placement.
		cp, cacheHit = ov, true
		kept := machines[:0]
		for _, m := range machines {
			if m.Loaded() == ov {
				kept = append(kept, m)
			}
		}
		machines = kept
		batched = len(machines) > 0
	}
	for len(machines) < want {
		m, built, buildErr := runner.Build(j.spec, cp)
		if buildErr != nil {
			s.pool.checkin(j.pk, machines)
			return nil, false, false, buildErr
		}
		cp = built
		machines = append(machines, m)
	}
	// Echo the final mapping off the loaded artifact — it is there even
	// when every replica came warm from the pool and the cache probe
	// missed (an evicted artifact can outlive its cache entry in the pool).
	j.setMapping(machines[0].Loaded())

	set, err = runner.RunOn(machines, j.seed, j.req.Shots, j.req.Circuit.NumBits)
	s.pool.checkin(j.pk, machines)
	if err != nil {
		return nil, cacheHit, batched, err
	}
	return set, cacheHit, batched, nil
}

// executeBind runs a parameter-bound job: resolve the compiled *skeleton*
// through the shared cache under the structural fingerprint, patch it with
// BindParams (per point for sweeps), and run on pooled replicas. Replicas
// pool under the structural key, so a 1000-point sweep — or 1000 separate
// single-binding jobs — compiles once and reuses the same warm machines;
// only the cheap bind+load is per point. FreshCompile keeps its baseline
// meaning: the circuit is bound up front and every point pays a full
// compile on private machines.
func (s *Service) executeBind(j *job) (set *runner.ShotSet, cacheHit, batched bool, err error) {
	numBits := j.req.Circuit.NumBits
	if j.req.FreshCompile {
		set, err = s.executeBindFresh(j)
		return set, false, false, err
	}

	want := s.cfg.ShotWorkers
	if len(j.req.Sweep) > 0 {
		// Sweeps fan points (not shots) across replicas; each point's
		// shots run on one machine.
		if want > len(j.req.Sweep) {
			want = len(j.req.Sweep)
		}
	} else if want > j.req.Shots {
		want = j.req.Shots
	}
	if want < 1 {
		want = 1
	}
	machines := s.pool.checkout(j.pk, want)
	batched = len(machines) > 0

	var skel *compiler.Compiled
	skel, cacheHit = s.arts.Get(j.fp)
	for len(machines) < want {
		m, built, buildErr := runner.BuildSkeleton(j.spec, skel)
		if buildErr != nil {
			s.pool.checkin(j.pk, machines)
			return nil, false, false, buildErr
		}
		skel = built
		machines = append(machines, m)
	}
	if ov := s.replacedArtifact(j.pk); ov != nil {
		// The group was re-placed: bind from the swapped skeleton. Pooled
		// replicas are harmless here — the bind path re-Loads the bound
		// program onto every machine before running, so whatever they held
		// is overwritten.
		skel, cacheHit = ov, true
	}
	if skel == nil {
		// Every replica came warm from the pool and the cache entry was
		// evicted: the loaded artifact is a previous binding of the same
		// skeleton, and its parameter slots survive re-binding.
		skel = machines[0].Loaded()
	}
	j.setMapping(skel)

	if len(j.req.Sweep) > 0 {
		// The observer runs on the runner's worker goroutines: each point
		// is published to streaming watchers the moment it finishes, while
		// later points are still executing.
		pts, runErr := runner.RunSweepOnObserved(machines, skel, j.req.Sweep, j.seed, j.req.Shots, numBits, func(p runner.SweepPoint) {
			j.publish(pointStatusOf(p))
		})
		s.pool.checkin(j.pk, machines)
		if runErr != nil {
			return nil, cacheHit, batched, runErr
		}
		j.setPoints(pts)
		return nil, cacheHit, batched, nil
	}

	bound, bindErr := skel.BindParams(j.req.Params)
	if bindErr != nil {
		s.pool.checkin(j.pk, machines)
		return nil, cacheHit, batched, bindErr
	}
	for _, m := range machines {
		if loadErr := m.Load(bound); loadErr != nil {
			s.pool.checkin(j.pk, machines)
			return nil, cacheHit, batched, loadErr
		}
	}
	set, err = runner.RunOn(machines, j.seed, j.req.Shots, numBits)
	s.pool.checkin(j.pk, machines)
	return set, cacheHit, batched, err
}

// executeBindFresh is the FreshCompile baseline of the binding layer:
// bind the circuit itself, then pay the full compile (and private machine
// builds) per binding — exactly what a stack without BindParams would do.
func (s *Service) executeBindFresh(j *job) (*runner.ShotSet, error) {
	runBound := func(params map[string]float64, seed int64) (*runner.ShotSet, *compiler.Compiled, error) {
		bc, err := j.req.Circuit.Bind(params)
		if err != nil {
			return nil, nil, err
		}
		spec := j.spec
		spec.Circuit = bc
		spec.Cfg.Seed = seed
		m, cp, err := runner.Build(spec, nil)
		if err != nil {
			return nil, nil, err
		}
		set, err := runner.RunOn([]*machine.Machine{m}, seed, j.req.Shots, j.req.Circuit.NumBits)
		return set, cp, err
	}
	if len(j.req.Sweep) > 0 {
		pts := make([]runner.SweepPoint, len(j.req.Sweep))
		for k, params := range j.req.Sweep {
			set, cp, err := runBound(params, machine.DeriveSeed(j.seed, k))
			if err != nil {
				return nil, fmt.Errorf("sweep point %d: %w", k, err)
			}
			if k == 0 {
				j.setMapping(cp)
			}
			pts[k] = runner.SweepPoint{Index: k, Params: params, Set: set}
			j.publish(pointStatusOf(pts[k]))
		}
		j.setPoints(pts)
		return nil, nil
	}
	set, cp, err := runBound(j.req.Params, j.seed)
	if err != nil {
		return nil, err
	}
	j.setMapping(cp)
	return set, nil
}

func (j *job) finish(set *runner.ShotSet, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = StateFailed
		j.err = err
	} else {
		j.state = StateDone
		if set != nil { // sweep jobs deliver per-point results instead
			j.set = set
			j.hist = set.Histogram()
		}
	}
	j.mu.Unlock()
	close(j.done)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Shots: j.req.Shots, Seed: j.seed,
		Fingerprint: j.fp.String(), CacheHit: j.cacheHit, Batched: j.batched,
		MeshW: j.req.MeshW, MeshH: j.req.MeshH,
		Placement: j.placement, Schedule: j.schedule, Mapping: j.mapping,
		Chips: j.spec.Cfg.Chips,
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	if j.set != nil {
		st.Set = j.set
		st.Histogram = j.hist
		if len(j.set.Shots) > 0 {
			st.Makespan = int64(j.set.Shots[0].Result.Makespan)
		}
		for _, shot := range j.set.Shots {
			st.EPRPairs += shot.Result.EPRPairs
		}
	}
	if j.points != nil {
		st.Points = j.points
		st.Makespan = j.points[0].Makespan
	}
	return st
}

// replicaPool keeps loaded machines warm, grouped by artifact
// fingerprint, bounded by a global replica budget with LRU group
// eviction. Checkout removes machines from the pool (a machine is never
// shared by two running jobs); checkin returns them.
type replicaPool struct {
	mu     sync.Mutex
	budget int
	groups map[poolKey][]*machine.Machine
	order  []poolKey // front = most recently used
	total  int
}

func newReplicaPool(budget int) *replicaPool {
	return &replicaPool{budget: budget, groups: make(map[poolKey][]*machine.Machine)}
}

func (p *replicaPool) touch(fp poolKey) {
	for i, f := range p.order {
		if f == fp {
			copy(p.order[1:i+1], p.order[:i])
			p.order[0] = fp
			return
		}
	}
	p.order = append([]poolKey{fp}, p.order...)
}

// checkout takes up to want machines pooled for fp.
func (p *replicaPool) checkout(fp poolKey, want int) []*machine.Machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.groups[fp]
	if len(g) == 0 {
		return nil
	}
	n := want
	if n > len(g) {
		n = len(g)
	}
	// Copy out: the truncated group keeps its backing array, so handing
	// the caller a sub-slice would let a later checkin append into the
	// very machines the caller is still running on.
	out := make([]*machine.Machine, n)
	copy(out, g[len(g)-n:])
	for i := len(g) - n; i < len(g); i++ {
		g[i] = nil
	}
	p.groups[fp] = g[:len(g)-n]
	p.total -= n
	p.touch(fp)
	return out
}

// checkin returns machines to fp's group, evicting least recently used
// groups if the global budget is exceeded.
func (p *replicaPool) checkin(fp poolKey, machines []*machine.Machine) {
	if len(machines) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.groups[fp] = append(p.groups[fp], machines...)
	p.total += len(machines)
	p.touch(fp)
	for p.total > p.budget && len(p.order) > 0 {
		victim := p.order[len(p.order)-1]
		if victim == fp && len(p.order) == 1 {
			// Only the active group remains: trim it instead, nil-ing the
			// dropped slots so the backing array releases the machines.
			g := p.groups[fp]
			drop := p.total - p.budget
			if drop > len(g) {
				drop = len(g)
			}
			for i := len(g) - drop; i < len(g); i++ {
				g[i] = nil
			}
			p.groups[fp] = g[:len(g)-drop]
			p.total -= drop
			break
		}
		p.total -= len(p.groups[victim])
		delete(p.groups, victim)
		p.order = p.order[:len(p.order)-1]
	}
}

// drop discards fp's pooled group: its machines are loaded with an
// artifact the re-place path just superseded, and running them would mean
// running the old placement.
func (p *replicaPool) drop(fp poolKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[fp]
	if !ok {
		return
	}
	p.total -= len(g)
	delete(p.groups, fp)
	for i, f := range p.order {
		if f == fp {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

func (p *replicaPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}
