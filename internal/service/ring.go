package service

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Consistent-hash routing for a dhisq-serve cluster. Jobs are routed by
// their bind-invariant structural key (RouteKey), so every binding of a
// circuit family lands on one shard — that shard compiles the family's
// skeleton once, keeps its replica pool warm, and owns its spilled
// artifact on disk. Consistent hashing (rather than key mod N) bounds
// the damage of membership change: when one of N shards leaves, only the
// keys it owned move (~K/N of the keyspace), so the other shards' caches,
// pools, and stores stay valid. TestRingRemovalChurn pins that property
// exactly, not approximately.

// ringVnodes is the number of points each shard contributes to the ring.
// More vnodes smooth the keyspace split (the expected imbalance across
// shards falls as 1/sqrt(vnodes)); 128 keeps the ring a few KB for any
// plausible cluster while holding the spread within a few percent.
const ringVnodes = 128

type ringPoint struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring maps fingerprints to shard names. It is immutable once built and
// therefore safe for concurrent use; it is also a pure function of the
// member list — two processes that build a Ring from the same names agree
// on every routing decision without ever talking to each other, which is
// what lets any shard answer "who owns this job" locally.
type Ring struct {
	shards []string
	points []ringPoint // sorted by hash
}

// NewRing builds a ring over the given shard names (order-insensitive:
// the names are hashed, not their positions). Names must be non-empty
// and unique — duplicate members would silently double a shard's
// keyspace share.
func NewRing(shards []string) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("service: ring needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("service: empty shard name")
		}
		if seen[s] {
			return nil, fmt.Errorf("service: duplicate shard %q", s)
		}
		seen[s] = true
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*ringVnodes),
	}
	for i, s := range r.shards {
		for v := 0; v < ringVnodes; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", s, v)))
			r.points = append(r.points, ringPoint{
				hash:  binary.BigEndian.Uint64(sum[:8]),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between vnodes is effectively
		// impossible, but the tiebreak keeps Route deterministic even then.
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// Members returns the shard names (a copy, in construction order).
func (r *Ring) Members() []string { return append([]string(nil), r.shards...) }

// Route returns the shard that owns the fingerprint: the first ring
// point at or clockwise-after the key's position (wrapping past the top).
// The key's position is the first 8 bytes of the fingerprint — already a
// uniform SHA-256 prefix, so no rehash is needed.
func (r *Ring) Route(fp [sha256.Size]byte) string {
	h := binary.BigEndian.Uint64(fp[:8])
	i := sort.Search(len(r.points), func(k int) bool { return r.points[k].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}
