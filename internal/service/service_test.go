package service

import (
	"errors"
	"sync"
	"testing"

	"dhisq/internal/artifact"
	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/runner"
)

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// A job's results must be byte-identical to running the same spec
// directly through the runner with the job's seed.
func TestJobMatchesDirectRun(t *testing.T) {
	s := New(Config{Workers: 2, ShotWorkers: 2})
	defer s.Close()

	const shots = 16
	id, err := s.Submit(Request{Circuit: ghz(4), Shots: shots, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := s.Wait(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if st.State != StateDone {
		t.Fatalf("state %s, err %q", st.State, st.Err)
	}
	if st.Seed != 99 {
		t.Fatalf("seed %d, want the explicit 99", st.Seed)
	}

	cfg := machine.DefaultConfig(4)
	cfg.Seed = 99
	direct, err := runner.Run(runner.Spec{Circuit: ghz(4), MeshW: 2, MeshH: 2, Cfg: cfg}, shots, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Histogram.String() != direct.Histogram().String() {
		t.Fatalf("service histogram diverged:\n%s\nvs direct:\n%s", st.Histogram, direct.Histogram())
	}
	for k := range direct.Shots {
		if st.Set.Shots[k].Key() != direct.Shots[k].Key() {
			t.Fatalf("shot %d diverged", k)
		}
	}
	// GHZ sanity: only the two correlated outcomes may appear.
	for outcome := range st.Histogram {
		if outcome != "0000" && outcome != "1111" {
			t.Fatalf("impossible GHZ outcome %q", outcome)
		}
	}
}

// Jobs without an explicit seed draw distinct seeds from the service
// stream, and the stream is deterministic per admission index.
func TestPerJobSeeds(t *testing.T) {
	s := New(Config{Workers: 1, Seed: 7})
	defer s.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit(Request{Circuit: ghz(3), Shots: 2})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	seen := map[int64]bool{}
	for i, id := range ids {
		st, _ := s.Wait(id)
		if st.State != StateDone {
			t.Fatalf("job %d: %s %q", i, st.State, st.Err)
		}
		if want := machine.DeriveSeed(7, i); st.Seed != want {
			t.Fatalf("job %d seed %d, want DeriveSeed(7,%d)=%d", i, st.Seed, i, want)
		}
		if seen[st.Seed] {
			t.Fatalf("seed %d reused across jobs", st.Seed)
		}
		seen[st.Seed] = true
	}
}

// The second job for the same circuit must hit the artifact cache and
// batch onto the replicas the first job warmed.
func TestRepeatCircuitBatches(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	first, err := s.Submit(Request{Circuit: ghz(4), Shots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Wait(first); st.State != StateDone {
		t.Fatalf("first job failed: %q", st.Err)
	}
	second, err := s.Submit(Request{Circuit: ghz(4), Shots: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Wait(second)
	if st.State != StateDone {
		t.Fatalf("second job failed: %q", st.Err)
	}
	if !st.CacheHit {
		t.Fatal("second identical job missed the artifact cache")
	}
	if !st.Batched {
		t.Fatal("second identical job did not reuse pooled replicas")
	}
	if stats := s.Stats(); stats.BatchedJobs < 1 {
		t.Fatalf("stats.BatchedJobs = %d, want >= 1", stats.BatchedJobs)
	}

	// A different circuit must not be batched onto those replicas.
	other, err := s.Submit(Request{Circuit: ghz(5), Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Wait(other); st.Batched {
		t.Fatal("distinct circuit claimed pooled replicas")
	}
}

// The queue is bounded: once Workers are busy and QueueDepth jobs wait,
// Submit rejects with ErrQueueFull instead of blocking.
func TestQueueBound(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// Occupy the worker long enough to observe the bound (the first job
	// may be picked up instantly, freeing one queue slot).
	if _, err := s.Submit(Request{Circuit: ghz(4), Shots: 800}); err != nil {
		t.Fatal(err)
	}
	var full bool
	for i := 0; i < 3; i++ {
		_, err := s.Submit(Request{Circuit: ghz(4), Shots: 800})
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("queue never filled: 3 submissions on a depth-1 queue with a busy worker")
	}
	if stats := s.Stats(); stats.Rejected < 1 {
		t.Fatalf("stats.Rejected = %d, want >= 1", stats.Rejected)
	}
}

// Submit after Close fails; queued work still completes or fails
// deterministically, and Close is idempotent.
func TestClose(t *testing.T) {
	s := New(Config{Workers: 1})
	id, err := s.Submit(Request{Circuit: ghz(3), Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if _, err := s.Submit(Request{Circuit: ghz(3), Shots: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	st, ok := s.Get(id)
	if !ok || !st.Done() {
		t.Fatalf("pre-Close job not terminal: ok=%v state=%s", ok, st.State)
	}
}

// A job whose artifact was compiled elsewhere in the process (a prior
// facade run, another experiment) is a cache hit on its very first
// submission: the hit counter increments and no compile happens.
func TestPrewarmedCacheHit(t *testing.T) {
	c := ghz(6)
	cfg := machine.DefaultConfig(6)
	m, err := machine.NewForCircuit(c, 3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compile(c, nil); err != nil { // populate the shared cache
		t.Fatal(err)
	}
	before := artifact.Shared.Stats()

	s := New(Config{Workers: 1})
	defer s.Close()
	id, err := s.Submit(Request{Circuit: ghz(6), MeshW: 3, MeshH: 2, Shots: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Wait(id)
	if st.State != StateDone {
		t.Fatalf("state %s: %q", st.State, st.Err)
	}
	if !st.CacheHit {
		t.Fatal("first submission of a pre-compiled circuit missed the cache")
	}
	after := artifact.Shared.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("pre-warmed job compiled anyway: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("pre-warmed job did not count a hit: hits %d -> %d", before.Hits, after.Hits)
	}
}

// Finished jobs beyond the retention bound are forgotten oldest-first,
// so a long-lived service does not accumulate every result ever run.
func TestRetentionBound(t *testing.T) {
	s := New(Config{Workers: 1, MaxRetainedJobs: 2})
	defer s.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit(Request{Circuit: ghz(3), Shots: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := s.Wait(id); st.State != StateDone {
			t.Fatalf("job %d failed: %q", i, st.Err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		_, ok := s.Get(id)
		if want := i >= 2; ok != want {
			t.Fatalf("job %d (%s): retained=%v, want %v", i, id, ok, want)
		}
	}
}

// Invalid submissions are rejected at the door.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(Request{Circuit: nil, Shots: 1}); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := s.Submit(Request{Circuit: ghz(3), Shots: 0}); err == nil {
		t.Fatal("zero shots accepted")
	}
	if _, ok := s.Get("job-999999"); ok {
		t.Fatal("unknown job ID found")
	}
}

// Concurrent submissions of a mix of circuits stay deterministic per
// seed and race-clean (run under -race in CI).
func TestConcurrentSubmissions(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, ShotWorkers: 2})
	defer s.Close()

	const jobs = 12
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Submit(Request{
				Circuit: ghz(3 + i%2), Shots: 8, Seed: int64(1000 + i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		if id == "" {
			continue
		}
		st, ok := s.Wait(id)
		if !ok || st.State != StateDone {
			t.Fatalf("job %d: ok=%v state=%s err=%q", i, ok, st.State, st.Err)
		}
		n := 3 + i%2
		cfg := machine.DefaultConfig(n)
		cfg.Seed = int64(1000 + i)
		w := 1
		for w*w < n {
			w++
		}
		direct, err := runner.Run(runner.Spec{
			Circuit: ghz(n), MeshW: w, MeshH: (n + w - 1) / w, Cfg: cfg,
		}, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Histogram.String() != direct.Histogram().String() {
			t.Fatalf("job %d histogram diverged under concurrency", i)
		}
	}
}

// Placement is resolved at admission and echoed on the job status: the
// policy name, the auto-picked mesh, and the final mapping the compiler's
// Place pass produced.
func TestPlacementEchoedOnStatus(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	id, err := s.Submit(Request{Circuit: ghz(6), Shots: 2, Seed: 7, Placement: "interaction"})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Wait(id)
	if st.State != StateDone {
		t.Fatalf("state %s, err %q", st.State, st.Err)
	}
	if st.Placement != "interaction" {
		t.Fatalf("placement %q, want interaction", st.Placement)
	}
	if st.MeshW != 3 || st.MeshH != 2 {
		t.Fatalf("mesh %dx%d, want the 3x2 auto mesh", st.MeshW, st.MeshH)
	}
	if len(st.Mapping) != 6 {
		t.Fatalf("mapping %v, want 6 resolved entries", st.Mapping)
	}
	seen := map[int]bool{}
	for _, ctrl := range st.Mapping {
		if ctrl < 0 || ctrl >= 6 || seen[ctrl] {
			t.Fatalf("mapping %v is not a valid permutation", st.Mapping)
		}
		seen[ctrl] = true
	}

	// Default placement: identity policy, nil mapping, same auto mesh.
	id2, err := s.Submit(Request{Circuit: ghz(6), Shots: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := s.Wait(id2)
	if st2.Placement != "identity" {
		t.Fatalf("default placement %q, want identity", st2.Placement)
	}
	if st2.Mapping != nil {
		t.Fatalf("identity mapping %v, want nil", st2.Mapping)
	}
	if st2.Fingerprint == st.Fingerprint {
		t.Fatal("identity and interaction jobs shared a fingerprint")
	}
}

// An unknown placement policy is rejected at Submit, before any queueing.
func TestPlacementValidatedAtSubmit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(Request{Circuit: ghz(4), Shots: 1, Placement: "bogus"}); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// A bogus policy smuggled in via an explicit Cfg is rejected at Submit
// too — validation covers the policy the job will actually compile with.
func TestCfgPlacementValidatedAtSubmit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	cfg := machine.DefaultConfig(4)
	cfg.Placement = "bogus"
	if _, err := s.Submit(Request{Circuit: ghz(4), Shots: 1, Cfg: &cfg}); err == nil {
		t.Fatal("unknown Cfg.Placement accepted")
	}
}
