// Package workloads generates the benchmark circuits of the paper's
// evaluation (§6.4.2): the near-term circuits converted from static
// QASMBench-style programs to dynamic circuits with long-range CNOTs
// (adder, bv, qft, w_state) and the logical-T lattice-surgery QEC circuits.
// All circuits are built from scratch; the dynamic conversion reuses the
// Fig. 14 constructions in internal/circuit.
package workloads

import (
	"fmt"
	"math"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
)

// GHZ prepares an n-qubit GHZ state and measures every qubit.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// QFT builds the quantum Fourier transform on n qubits: H plus controlled
// phases with geometrically decreasing angles. The final qubit-reversal
// swaps are omitted (the standard benchmark convention); measurements close
// the circuit.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < n; i++ {
		c.H(i)
		for j := i + 1; j < n; j++ {
			c.CPhaseGate(j, i, math.Pi/float64(int64(1)<<uint(j-i)))
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// BV builds a Bernstein–Vazirani circuit over n qubits (n-1 data + 1
// ancilla) with the given secret string (bit i of secret = coefficient of
// data qubit i; only the low n-1 bits are used).
func BV(n int, secret func(i int) bool) *circuit.Circuit {
	if n < 2 {
		panic("workloads: BV needs >= 2 qubits")
	}
	c := circuit.New(n)
	anc := n - 1
	c.X(anc)
	c.H(anc)
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	for q := 0; q < n-1; q++ {
		if secret(q) {
			c.CNOT(q, anc)
		}
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
		c.MeasureInto(q, q)
	}
	return c
}

// AlternatingSecret is the deterministic secret used by the benchmark suite.
func AlternatingSecret(i int) bool { return i%2 == 0 }

// VQEAnsatz builds a hardware-efficient variational ansatz skeleton:
// `layers` rounds of per-qubit symbolic RY rotations followed by a
// nearest-neighbor CNOT entangler chain, closed by measurements. Every
// rotation angle is a free parameter named t<layer>_<qubit>; bind them
// with Circuit.Bind (or submit with a params/sweep field) before running.
// This is the angle-sweep workload the parameter-binding layer exists for:
// a VQE outer loop re-runs the same skeleton at thousands of parameter
// points, so the circuit compiles once and each point is a table patch.
func VQEAnsatz(n, layers int) *circuit.Circuit {
	if n < 2 {
		panic("workloads: VQEAnsatz needs >= 2 qubits")
	}
	if layers < 1 {
		layers = 1
	}
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RYSym(q, fmt.Sprintf("t%d_%d", l, q))
		}
		for q := 0; q < n-1; q++ {
			c.CNOT(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// VQEAnsatzPoint returns a deterministic full binding for a VQEAnsatz
// skeleton: point k of a sweep, with angles spread over (0, 2π) by a
// golden-ratio stride so no two points coincide.
func VQEAnsatzPoint(n, layers, k int) map[string]float64 {
	out := make(map[string]float64, n*layers)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			x := float64(k)*0.6180339887498949 + float64(l*n+q)/float64(n*layers)
			out[fmt.Sprintf("t%d_%d", l, q)] = 2 * math.Pi * (x - math.Floor(x))
		}
	}
	return out
}

// DistributedVQE builds the multi-chip variational workload: the
// hardware-efficient ansatz of VQEAnsatz — per-qubit symbolic RY layers
// (angles t<layer>_<qubit>) between entanglers — but with an entangler
// deliberately split across device halves: the nearest-neighbor chain
// plus a rung of CNOT(q, q+n/2) pairs. On a single chip the rungs are
// ordinary long-range gates; under -chips 2 with the contiguous
// partition every rung is a cut gate, while the interaction partitioner
// can trade chain edges for rungs — which is exactly the spread the
// remote-gate experiment sweeps. All angles stay symbolic, so remote-gate
// sweeps flow through the parameter-binding path: one multi-chip skeleton
// compiles once and every point is a table patch.
func DistributedVQE(n, layers int) *circuit.Circuit {
	if n < 4 {
		panic("workloads: DistributedVQE needs >= 4 qubits")
	}
	if layers < 1 {
		layers = 1
	}
	c := circuit.New(n)
	half := n / 2
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RYSym(q, fmt.Sprintf("t%d_%d", l, q))
		}
		for q := 0; q < n-1; q++ {
			c.CNOT(q, q+1)
		}
		for q := 0; q < half; q++ {
			c.CNOT(q, q+half)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// DistributedVQEPoint returns a deterministic full binding for a
// DistributedVQE skeleton, point k of a sweep (same golden-ratio spread
// as VQEAnsatzPoint — the two ansatz share a parameter naming scheme).
func DistributedVQEPoint(n, layers, k int) map[string]float64 {
	return VQEAnsatzPoint(n, layers, k)
}

// QFTSweep builds a parameterized QFT workload: a layer of symbolic RZ
// phase preparations (phi0..phi<n-1>) followed by the full QFT and
// measurements — the "estimate the spectrum at many phase settings" sweep.
// The QFT's own controlled-phase angles stay concrete; only the
// preparation layer is bindable.
func QFTSweep(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
		c.RZSym(q, fmt.Sprintf("phi%d", q))
	}
	c.Append(QFT(n))
	return c
}

// QFTSweepPoint returns a deterministic full binding for a QFTSweep
// skeleton (point k).
func QFTSweepPoint(n, k int) map[string]float64 {
	out := make(map[string]float64, n)
	for q := 0; q < n; q++ {
		x := float64(k)*0.6180339887498949 + float64(q)/float64(n)
		out[fmt.Sprintf("phi%d", q)] = 2 * math.Pi * (x - math.Floor(x))
	}
	return out
}

// CCX appends a Toffoli decomposed into the standard 7-T construction
// (2 H, 6 CNOT, 7 T/T†) — the form control hardware executes.
func CCX(c *circuit.Circuit, a, b, t int) {
	c.H(t)
	c.CNOT(b, t)
	c.Tdg(t)
	c.CNOT(a, t)
	c.T(t)
	c.CNOT(b, t)
	c.Tdg(t)
	c.CNOT(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CNOT(a, b)
	c.T(a)
	c.Tdg(b)
	c.CNOT(a, b)
}

// CuccaroAdder builds the CDKM ripple-carry adder computing b := a + b over
// k-bit registers, with aVal/bVal loaded by X gates. Qubit layout follows
// the Cuccaro paper's line ordering — c, b0, a0, b1, a1, ..., z — so every
// MAJ/UMA acts on a window of three adjacent qubits (distance ≤ 2), keeping
// the dynamic conversion shallow. Total qubits: 2k + 2.
func CuccaroAdder(k int, aVal, bVal uint64) *circuit.Circuit {
	n := 2*k + 2
	c := circuit.New(n)
	aq := func(i int) int { return 2*i + 2 } // a_i
	bq := func(i int) int { return 2*i + 1 } // b_i
	carry := 0
	z := n - 1
	for i := 0; i < k; i++ {
		if aVal>>uint(i)&1 == 1 {
			c.X(aq(i))
		}
		if bVal>>uint(i)&1 == 1 {
			c.X(bq(i))
		}
	}
	maj := func(x, y, zq int) { // MAJ(c_in, b, a)
		c.CNOT(zq, y)
		c.CNOT(zq, x)
		CCX(c, x, y, zq)
	}
	uma := func(x, y, zq int) {
		CCX(c, x, y, zq)
		c.CNOT(zq, x)
		c.CNOT(x, y)
	}
	maj(carry, bq(0), aq(0))
	for i := 1; i < k; i++ {
		maj(aq(i-1), bq(i), aq(i))
	}
	c.CNOT(aq(k-1), z)
	for i := k - 1; i >= 1; i-- {
		uma(aq(i-1), bq(i), aq(i))
	}
	uma(carry, bq(0), aq(0))
	// Read out the sum: b register plus the carry-out z.
	for i := 0; i < k; i++ {
		c.MeasureInto(bq(i), i)
	}
	c.MeasureInto(z, k)
	return c
}

// WState prepares the n-qubit W state with the linear chain of controlled
// rotations (decomposed to RY/CNOT) and measures every qubit.
func WState(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.X(0)
	for i := 0; i < n-1; i++ {
		theta := 2 * math.Acos(1/math.Sqrt(float64(n-i)))
		cry(c, i, i+1, theta)
		c.CNOT(i+1, i)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// cry appends a controlled-RY(theta) from ctrl to tgt via the standard
// two-CNOT decomposition.
func cry(c *circuit.Circuit, ctrl, tgt int, theta float64) {
	c.RYGate(tgt, theta/2)
	c.CNOT(ctrl, tgt)
	c.RYGate(tgt, -theta/2)
	c.CNOT(ctrl, tgt)
}

// WStateTree prepares the n-qubit W state with the log-depth divide-and-
// conquer construction: the single excitation is recursively split between
// block halves with a controlled rotation plus a CNOT at half-block
// distance. The long-range gates make it a natural dynamic-circuit workload
// (the chain construction WState has only nearest-neighbor gates).
func WStateTree(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.X(0)
	var split func(lo, size int)
	split = func(lo, size int) {
		if size <= 1 {
			return
		}
		left := (size + 1) / 2
		right := size - left
		// Move the excitation to the right half with amplitude right/size.
		theta := 2 * math.Acos(math.Sqrt(float64(left)/float64(size)))
		mid := lo + left
		cry(c, lo, mid, theta)
		c.CNOT(mid, lo)
		split(lo, left)
		split(mid, right)
	}
	split(0, n)
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// Dynamic converts a logical circuit to a dynamic physical circuit on a
// dual-rail (data row + ancilla row) device, replacing every non-adjacent
// two-qubit gate with the Fig. 14 long-range construction.
func Dynamic(logical *circuit.Circuit) (*circuit.Circuit, error) {
	return circuit.DualRailEmbedding{}.Embed(logical)
}

// Benchmark is one named entry of the Figure 15 suite, together with the
// controller-mesh shape and qubit→controller mapping that keep its two-qubit
// gates nearest-neighbor on the fabric.
type Benchmark struct {
	Name    string
	Qubits  int // physical qubit count (the _nX in the name)
	Logical int // logical qubits before dynamic conversion
	Circuit *circuit.Circuit
	MeshW   int
	MeshH   int
	Mapping []int // qubit -> controller; nil means identity
	// DefaultParams is a full binding for parameterized benchmarks
	// (sweep point 0), applied by the CLI and the serve daemon when the
	// caller supplies no params of their own. Nil for concrete circuits.
	DefaultParams map[string]float64
}

// SnakeMapping maps a 1-D qubit chain onto a W-wide mesh boustrophedon-style
// so that chain neighbors stay mesh-adjacent across row boundaries.
func SnakeMapping(n, w int) []int {
	m := make([]int, n)
	for i := 0; i < n; i++ {
		row, col := i/w, i%w
		if row%2 == 1 {
			col = w - 1 - col
		}
		m[i] = row*w + col
	}
	return m
}

// fig15Spec describes how each paper benchmark maps onto our generators.
// Line-style benchmarks use the dual-rail embedding: half the physical
// qubits are the logical chain, half the dedicated ancilla rail.
type fig15Spec struct {
	name   string
	qubits int
	build  func(logical int) *circuit.Circuit
}

func fig15Specs() []fig15Spec {
	adder := func(l int) *circuit.Circuit {
		k := (l - 2) / 2
		if k < 1 {
			k = 1
		}
		return CuccaroAdder(k, 0xB5A3%(1<<uint(min(k, 60))), 0x6CD1%(1<<uint(min(k, 60))))
	}
	bv := func(l int) *circuit.Circuit { return BV(l, AlternatingSecret) }
	qft := func(l int) *circuit.Circuit { return QFT(l) }
	ws := func(l int) *circuit.Circuit { return WState(l) }
	return []fig15Spec{
		{"adder_n577", 577, adder},
		{"adder_n1153", 1153, adder},
		{"bv_n400", 400, bv},
		{"bv_n1000", 1000, bv},
		{"logical_t_n432", 432, nil}, // handled by LogicalT
		{"logical_t_n864", 864, nil},
		{"qft_n30", 30, qft},
		{"qft_n100", 100, qft},
		{"qft_n200", 200, qft},
		{"qft_n300", 300, qft},
		{"w_state_n800", 800, ws},
		{"w_state_n1000", 1000, ws},
	}
}

// Fig15Names lists the benchmark names in the paper's order.
func Fig15Names() []string {
	specs := fig15Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// Build constructs one Figure 15 benchmark by name. The physical qubit count
// matches the name; logical circuits are line-embedded with the listed
// spacing (intermediate qubits act as ancillas for dynamic long-range
// gates), padding any remainder with idle qubits.
func Build(name string) (Benchmark, error) {
	return buildSized(name, 1)
}

// BuildScaled builds a reduced-size variant of a named benchmark for tests:
// the physical size is divided by div (minimum 8 qubits), preserving
// structure.
func BuildScaled(name string, div int) (Benchmark, error) {
	return buildSized(name, div)
}

func buildSized(name string, div int) (Benchmark, error) {
	if name == "dvqe" {
		// Distributed-VQE is not a Fig. 15 benchmark; it exists for the
		// multi-chip remote-gate experiments. 16 qubits, 2 layers at
		// full size; scaled variants shrink the register but keep it
		// even so the cross-half rungs stay well defined.
		q := 16 / div
		if q < 4 {
			q = 4
		}
		q -= q % 2
		c := DistributedVQE(q, 2)
		w, h := network.NearSquareMesh(q)
		return Benchmark{
			Name: name, Qubits: q, Logical: q, Circuit: c, MeshW: w, MeshH: h,
			DefaultParams: DistributedVQEPoint(q, 2, 0),
		}, nil
	}
	for _, s := range fig15Specs() {
		if s.name != name {
			continue
		}
		q := s.qubits / div
		if q < 8 {
			q = 8
		}
		if s.build == nil { // logical_t family: 2-D patch grid, identity map
			cfg := DefaultLogicalTConfig(q)
			c := LogicalT(cfg)
			w := cfg.GridW()
			h := (q + w - 1) / w
			return Benchmark{
				Name: s.name, Qubits: q, Logical: q, Circuit: c,
				MeshW: w, MeshH: h,
			}, nil
		}
		logical := q / 2
		if logical < 4 {
			logical = 4
		}
		lc := s.build(logical)
		logical = lc.NumQubits // generators may round (adder needs 2k+2)
		pc, err := Dynamic(lc)
		if err != nil {
			return Benchmark{}, fmt.Errorf("workloads: %s: %w", name, err)
		}
		if q < pc.NumQubits {
			q = pc.NumQubits
		}
		pc.NumQubits = q // pad idle qubits to the advertised size
		// Dual-rail mesh: data rail on row 0, ancilla rail on row 1.
		w := (q + 1) / 2
		mapping := make([]int, q)
		for i := 0; i < q; i++ {
			if i < logical {
				mapping[i] = i // data qubit i -> row 0, column i
			} else if i < 2*logical {
				mapping[i] = w + (i - logical) // ancilla i -> row 1, column i
			} else {
				mapping[i] = i // padding qubits: anywhere injective
			}
		}
		// Padding indices may collide with rail slots; fix up injectively.
		used := make(map[int]bool, q)
		for i := 0; i < 2*logical && i < q; i++ {
			used[mapping[i]] = true
		}
		next := 0
		for i := 2 * logical; i < q; i++ {
			for used[next] {
				next++
			}
			mapping[i] = next
			used[next] = true
		}
		return Benchmark{
			Name: s.name, Qubits: q, Logical: logical, Circuit: pc,
			MeshW: w, MeshH: 2, Mapping: mapping,
		}, nil
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
