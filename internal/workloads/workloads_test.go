package workloads

import (
	"math"
	"math/rand"
	"testing"

	"dhisq/internal/circuit"
)

func TestCCXTruthTable(t *testing.T) {
	for in := 0; in < 8; in++ {
		c := circuit.New(3)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				c.X(q)
			}
		}
		CCX(c, 0, 1, 2)
		for q := 0; q < 3; q++ {
			c.MeasureInto(q, q)
		}
		_, bits, err := c.RunStateVector(rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		wantT := in >> 2 & 1
		if in&1 == 1 && in>>1&1 == 1 {
			wantT ^= 1
		}
		if bits[0] != in&1 || bits[1] != in>>1&1 || bits[2] != wantT {
			t.Fatalf("input %03b: got %v, want target %d", in, bits, wantT)
		}
	}
}

func TestCuccaroAdderComputesSums(t *testing.T) {
	cases := []struct {
		k    int
		a, b uint64
	}{
		{2, 1, 2}, {2, 3, 3}, {3, 5, 6}, {3, 7, 7}, {4, 9, 13},
	}
	for _, tc := range cases {
		c := CuccaroAdder(tc.k, tc.a, tc.b)
		_, bits, err := c.RunStateVector(rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		got := uint64(0)
		for i := 0; i <= tc.k; i++ {
			got |= uint64(bits[i]) << uint(i)
		}
		if want := tc.a + tc.b; got != want {
			t.Fatalf("k=%d: %d + %d = %d, want %d", tc.k, tc.a, tc.b, got, want)
		}
	}
}

func TestCuccaroAdderDynamicStillAdds(t *testing.T) {
	// The full pipeline the paper benchmarks: adder -> line embedding with
	// dynamic long-range gates -> same arithmetic result.
	lc := CuccaroAdder(2, 2, 3)
	pc, err := Dynamic(lc)
	if err != nil {
		t.Fatal(err)
	}
	_, bits, err := pc.RunStateVector(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	got := bits[0] | bits[1]<<1 | bits[2]<<2
	if got != 5 {
		t.Fatalf("dynamic adder: 2+3 = %d", got)
	}
}

func TestBVRecoversSecret(t *testing.T) {
	secret := func(i int) bool { return i%3 == 0 }
	c := BV(9, secret)
	_, bits, err := c.RunStateVector(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := 0
		if secret(i) {
			want = 1
		}
		if bits[i] != want {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want)
		}
	}
}

func TestBVDynamicRecoversSecret(t *testing.T) {
	c := BV(5, AlternatingSecret)
	pc, err := Dynamic(c)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		_, bits, err := pc.RunStateVector(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			want := 0
			if AlternatingSecret(i) {
				want = 1
			}
			if bits[i] != want {
				t.Fatalf("seed %d: bit %d = %d, want %d", seed, i, bits[i], want)
			}
		}
	}
}

func TestWStateDistribution(t *testing.T) {
	const n = 5
	c := WState(n)
	// Strip the measurements to inspect the state directly.
	c.Ops = c.Ops[:len(c.Ops)-n]
	st, _, err := c.RunStateVector(rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	probs := st.Probabilities()
	for idx, p := range probs {
		oneHot := idx != 0 && idx&(idx-1) == 0
		want := 0.0
		if oneHot {
			want = 1.0 / n
		}
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("P[%05b] = %g, want %g", idx, p, want)
		}
	}
}

func TestQFTUniformOnZero(t *testing.T) {
	const n = 4
	c := QFT(n)
	c.Ops = c.Ops[:len(c.Ops)-n] // drop measurements
	st, _, err := c.RunStateVector(rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	for idx, p := range st.Probabilities() {
		if math.Abs(p-1.0/(1<<n)) > 1e-9 {
			t.Fatalf("QFT|0>: P[%d] = %g", idx, p)
		}
	}
}

func TestGHZCorrelations(t *testing.T) {
	c := GHZ(10)
	for seed := int64(0); seed < 10; seed++ {
		_, bits, err := c.RunStabilizer(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 10; i++ {
			if bits[i] != bits[0] {
				t.Fatalf("GHZ broken at %d: %v", i, bits)
			}
		}
	}
}

func TestLogicalTBuildsAndValidates(t *testing.T) {
	cfg := DefaultLogicalTConfig(120)
	c := LogicalT(cfg)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.CountStats()
	if st.Measurements == 0 || st.Conditioned == 0 || st.TwoQubit == 0 {
		t.Fatalf("degenerate logical-T circuit: %+v", st)
	}
	// It must be stabilizer-simulable (all-Clifford including conditioned S).
	if !c.IsClifford() {
		t.Fatal("logical-T circuit should be Clifford")
	}
	if _, _, err := c.RunStabilizer(rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalTGridLocality(t *testing.T) {
	cfg := DefaultLogicalTConfig(120)
	c := LogicalT(cfg)
	w := cfg.GridW()
	for i, op := range c.Ops {
		if !op.Kind.IsTwoQubit() {
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		dx := a%w - b%w
		dy := a/w - b/w
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("op %d (%s): grid distance %d", i, op, dx+dy)
		}
	}
}

func TestDefaultLogicalTConfigSizes(t *testing.T) {
	for _, n := range []int{432, 864} {
		cfg := DefaultLogicalTConfig(n)
		used := cfg.GridW() * cfg.GridH()
		if used > n {
			t.Fatalf("n=%d: grid %dx%d exceeds budget", n, cfg.GridW(), cfg.GridH())
		}
		if float64(used) < 0.85*float64(n) {
			t.Fatalf("n=%d: only %d qubits used", n, used)
		}
	}
}

func TestFig15SuiteBuildsScaled(t *testing.T) {
	for _, name := range Fig15Names() {
		b, err := BuildScaled(name, 16)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Circuit.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.MeshW*b.MeshH < b.Qubits {
			t.Fatalf("%s: mesh %dx%d too small for %d qubits", name, b.MeshW, b.MeshH, b.Qubits)
		}
		if b.Mapping != nil {
			seen := map[int]bool{}
			for _, m := range b.Mapping {
				if m < 0 || m >= b.MeshW*b.MeshH || seen[m] {
					t.Fatalf("%s: bad mapping", name)
				}
				seen[m] = true
			}
		}
		st := b.Circuit.CountStats()
		if st.Measurements == 0 {
			t.Fatalf("%s: no measurements", name)
		}
	}
}

func TestFig15FullSizesMatchNames(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size benchmark construction")
	}
	for _, name := range []string{"qft_n30", "bv_n400", "logical_t_n432"} {
		b, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int{"qft_n30": 30, "bv_n400": 400, "logical_t_n432": 432}[name]
		if b.Qubits != want {
			t.Fatalf("%s: %d qubits", name, b.Qubits)
		}
		if err := b.Circuit.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSnakeMappingAdjacency(t *testing.T) {
	const n, w = 23, 5
	m := SnakeMapping(n, w)
	for i := 0; i+1 < n; i++ {
		a, b := m[i], m[i+1]
		dx := a%w - b%w
		dy := a/w - b/w
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("chain neighbors %d,%d land at mesh distance %d", i, i+1, dx+dy)
		}
	}
}

func TestDynamicConversionAddsFeedback(t *testing.T) {
	// The point of the benchmark suite: static circuits gain feed-forward
	// operations when converted (§6.4.2).
	static := QFT(6)
	if static.CountStats().Feedforward != 0 {
		t.Fatal("static QFT should have no feedback")
	}
	dyn, err := Dynamic(static)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.CountStats().Feedforward == 0 {
		t.Fatal("dynamic QFT should have feedback operations")
	}
}

func TestWStateTreeDistribution(t *testing.T) {
	for _, n := range []int{4, 5, 7, 8} {
		c := WStateTree(n)
		c.Ops = c.Ops[:len(c.Ops)-n] // strip measurements
		st, _, err := c.RunStateVector(rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		for idx, p := range st.Probabilities() {
			oneHot := idx != 0 && idx&(idx-1) == 0
			want := 0.0
			if oneHot {
				want = 1.0 / float64(n)
			}
			if math.Abs(p-want) > 1e-9 {
				t.Fatalf("n=%d: P[%b] = %g, want %g", n, idx, p, want)
			}
		}
	}
}

func TestWStateTreeHasLongRangeGates(t *testing.T) {
	c := WStateTree(16)
	far := 0
	for _, op := range c.Ops {
		if op.Kind == circuit.CNOT {
			d := op.Qubits[0] - op.Qubits[1]
			if d < 0 {
				d = -d
			}
			if d > 1 {
				far++
			}
		}
	}
	if far == 0 {
		t.Fatal("tree W-state should contain long-range CNOTs")
	}
}

func TestVQEAnsatzAndQFTSweepSkeletons(t *testing.T) {
	vqe := VQEAnsatz(6, 2)
	if err := vqe.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(vqe.UnboundParams()); got != 12 {
		t.Fatalf("VQEAnsatz(6,2) has %d params, want 12", got)
	}
	p0, p1 := VQEAnsatzPoint(6, 2, 0), VQEAnsatzPoint(6, 2, 1)
	if len(p0) != 12 || len(p1) != 12 {
		t.Fatalf("point sizes %d/%d, want 12", len(p0), len(p1))
	}
	same := true
	for k, v := range p0 {
		if v < 0 || v >= 2*math.Pi {
			t.Fatalf("angle %s=%v outside [0, 2pi)", k, v)
		}
		if p1[k] != v {
			same = false
		}
	}
	if same {
		t.Fatal("consecutive sweep points coincide")
	}
	if _, err := vqe.Bind(p0); err != nil {
		t.Fatal(err)
	}

	qs := QFTSweep(8)
	if err := qs.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(qs.UnboundParams()); got != 8 {
		t.Fatalf("QFTSweep(8) has %d params, want 8", got)
	}
	if _, err := qs.Bind(QFTSweepPoint(8, 3)); err != nil {
		t.Fatal(err)
	}
}
