package workloads

import (
	"dhisq/internal/circuit"
)

// This file generates the logical-T benchmark family (§6.4.2 type 2): the
// control-level structure of a lattice-surgery logical T gate on surface
// code patches (Fig. 2). Per the paper, error decoding is not implemented;
// its latency is modeled with delay (wait) instructions using published
// hardware-decoder figures [2], and the magic state is assumed
// pre-prepared, so the circuit covers the logical feedback portion: syndrome
// extraction rounds, the merge (joint ZZ measurement), the decoder wait, and
// the conditioned logical-S block.

// LogicalTConfig parameterizes the workload.
type LogicalTConfig struct {
	PhysicalQubits int   // total budget; the patch grid is the largest fit
	Distance       int   // code distance d (patch width)
	Rounds         int   // initial memory rounds (defaults to d)
	MergeRounds    int   // lattice-surgery merge rounds (defaults to d)
	DecoderLatency int64 // cycles of decoder wait per logical measurement [2]
	// ActiveReset recycles syndrome ancillas with measurement-conditioned X
	// (per-ancilla feedback); false uses an unconditional reset drive. The
	// benchmark suite uses the reset drive, matching the paper's choice to
	// simulate only the *logical* feedback portion of the T gate (§6.4.2).
	ActiveReset bool
}

// DefaultLogicalTConfig sizes the workload for n physical qubits: the
// largest distance d with d*(2d+2) <= n (two d×d patches plus a two-row
// merge bus), d rounds, and a 1 µs (250-cycle) decoder latency.
func DefaultLogicalTConfig(n int) LogicalTConfig {
	d := 3
	for (d+1)*(2*(d+1)+2) <= n {
		d++
	}
	return LogicalTConfig{
		PhysicalQubits: n,
		Distance:       d,
		Rounds:         d,
		MergeRounds:    d,
		DecoderLatency: 250,
		ActiveReset:    false,
	}
}

// GridW returns the qubit grid width the circuit assumes (the patch width);
// mapping qubit r*d+c to mesh position (c, r) keeps every syndrome CNOT
// nearest-neighbor on the controller mesh.
func (cfg LogicalTConfig) GridW() int { return cfg.Distance }

// GridH returns the grid height actually used.
func (cfg LogicalTConfig) GridH() int { return 2*cfg.Distance + 2 }

// LogicalT builds the benchmark circuit.
func LogicalT(cfg LogicalTConfig) *circuit.Circuit {
	d := cfg.Distance
	w, h := cfg.GridW(), cfg.GridH()
	n := cfg.PhysicalQubits
	if w*h > n {
		panic("workloads: logical-T grid exceeds qubit budget")
	}
	c := circuit.New(n)
	q := func(r, col int) int { return r*w + col }
	isAnc := func(r, col int) bool { return (r+col)%2 == 1 }

	// syndromeRound measures every stabilizer ancilla in rows [r0, r1).
	// X-type ancillas (odd row) use H + outgoing CNOTs; Z-type use incoming
	// CNOTs. Returns the measurement bits of ancillas within rows [br0,br1)
	// (the merge-bus window) for logical-outcome parity extraction.
	syndromeRound := func(r0, r1, br0, br1 int) []int {
		var busBits []int
		for r := r0; r < r1; r++ {
			for col := 0; col < w; col++ {
				if !isAnc(r, col) {
					continue
				}
				anc := q(r, col)
				var nbrs []int
				for _, dr := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nr, nc := r+dr[0], col+dr[1]
					if nr >= r0 && nr < r1 && nc >= 0 && nc < w && !isAnc(nr, nc) {
						nbrs = append(nbrs, q(nr, nc))
					}
				}
				if len(nbrs) == 0 {
					continue
				}
				if r%2 == 1 { // X-type
					c.H(anc)
					for _, nb := range nbrs {
						c.CNOT(anc, nb)
					}
					c.H(anc)
				} else { // Z-type
					for _, nb := range nbrs {
						c.CNOT(nb, anc)
					}
				}
				bit := c.MeasureNew(anc)
				if r >= br0 && r < br1 {
					busBits = append(busBits, bit)
				}
				if cfg.ActiveReset {
					// Feedback reset: flip the ancilla back to |0⟩.
					c.CondGate(circuit.X, circuit.Condition{Bits: []int{bit}, Parity: 1}, anc)
				} else {
					c.ResetGate(anc)
				}
			}
		}
		return busBits
	}

	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = d
	}
	merge := cfg.MergeRounds
	if merge <= 0 {
		merge = d
	}

	// Phase 1: independent memory rounds on the data patch (rows [0,d)) and
	// the magic patch (rows [d+2, 2d+2)), concurrently.
	for round := 0; round < rounds; round++ {
		syndromeRound(0, d, -1, -1)
		syndromeRound(d+2, h, -1, -1)
	}
	c.BarrierAll()

	// Phase 2: lattice-surgery merge — joint syndrome extraction across the
	// whole region including the two bus rows. The logical ZZ outcome is the
	// parity of the bus ancilla measurements of the final merge round.
	var logicalBits []int
	for round := 0; round < merge; round++ {
		logicalBits = syndromeRound(0, h, d, d+2)
	}
	c.BarrierAll()

	// Phase 3: decoder latency before the feedback decision [2].
	if cfg.DecoderLatency > 0 {
		c.DelayGate(q(0, 0), cfg.DecoderLatency)
	}

	// Phase 4: conditioned logical S on the data patch (Fig. 2): a
	// multi-operation sub-circuit — a twist of S gates along the boundary
	// row plus a stabilizing round — executed only when the logical
	// measurement parity is 1.
	cond := circuit.Condition{Bits: logicalBits, Parity: 1}
	for col := 0; col < w; col++ {
		if !isAnc(0, col) {
			c.CondGate(circuit.S, cond, q(0, col))
		}
	}
	syndromeRound(0, d, -1, -1)
	c.BarrierAll()

	// Final transversal readout of the data patch.
	for r := 0; r < d; r++ {
		for col := 0; col < w; col++ {
			if !isAnc(r, col) {
				c.MeasureNew(q(r, col))
			}
		}
	}
	return c
}
