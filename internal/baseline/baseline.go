// Package baseline implements the lock-step synchronization scheme the paper
// evaluates against (§6.4.3, after [18, 51]): a central controller with a
// star topology distributes the entire program flow to every controller, so
// all controllers execute the same instruction stream with idles substituted
// for other controllers' operations.
//
// Consequences modeled here, following the paper's description:
//
//   - every measurement outcome is broadcast through the central controller
//     at a constant latency, independent of system size (the paper calls
//     this assumption favourable to the baseline and keeps it; so do we);
//   - there is a single global program flow: every controller walks the same
//     branch structure, so a conditioned region acts as a global decision
//     point — operations after it (in program order) cannot start before it
//     resolves, and concurrent feedback serializes (the QuAPE limitation
//     cited in §2.1.2);
//   - deterministic operations before a decision point still execute in
//     parallel on their own qubits.
//
// The executor walks the circuit in program order with per-qubit timelines
// plus a global watermark that every conditioned operation advances.
package baseline

import (
	"fmt"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/sim"
)

// Config parameterizes the lock-step run.
type Config struct {
	Durations circuit.Durations
	// MeasLatency is the delay from measurement start to the result being
	// latched at its own controller (window + discrimination), as in the
	// Distributed-HISQ machine.
	MeasLatency sim.Time
	// Broadcast is the constant result-distribution latency through the
	// central controller (§6.4.3: "communication latency of a feedback
	// operation as constant, regardless of the number of qubits").
	Broadcast sim.Time
	// Backend supplies measurement outcomes; use the same seeded backend as
	// the BISP run for a branch-identical comparison.
	Backend chip.Backend
	// IssueCost models the instruction-issue-rate burden of the shared
	// program flow (§1.1, §2.1.2): every controller steps through the merged
	// program — including other controllers' operations replaced by
	// wait/idle/delay instructions — so the global flow advances at least
	// IssueCost cycles per program operation.
	IssueCost sim.Time
	// SerializeBroadcasts routes every measurement result through the single
	// central controller's bus (one broadcast at a time). The paper's
	// favourable baseline assumes constant per-feedback latency, which this
	// preserves, but a star hub still serializes *simultaneous* results.
	SerializeBroadcasts bool
}

// DefaultConfig mirrors the machine defaults with a 10-cycle (40 ns)
// round-trip broadcast through the central controller.
func DefaultConfig(backend chip.Backend) Config {
	d := circuit.PaperDurations()
	return Config{
		Durations:           d,
		MeasLatency:         d.Measure + 5,
		Broadcast:           10,
		Backend:             backend,
		IssueCost:           0,
		SerializeBroadcasts: true,
	}
}

// FavorableConfig is the paper's §6.4.3 assumption taken literally:
// feedback latency constant regardless of qubit count *and* unlimited
// broadcast concurrency (no hub bus). It is strictly generous to lock-step.
func FavorableConfig(backend chip.Backend) Config {
	c := DefaultConfig(backend)
	c.SerializeBroadcasts = false
	return c
}

// Result summarizes a lock-step execution.
type Result struct {
	Makespan     sim.Time
	Gates        uint64
	Measurements uint64
	Feedbacks    uint64
	// SerializedWait is the total extra time conditioned operations spent
	// waiting on the global watermark beyond their data dependencies — the
	// cost of forcing one program flow.
	SerializedWait sim.Time
	Bits           []int
}

// Run executes the circuit under lock-step semantics and returns the
// makespan and classical record.
func Run(c *circuit.Circuit, cfg Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Backend == nil {
		cfg.Backend = chip.NewSeeded(1)
	}
	d := cfg.Durations
	avail := make([]sim.Time, c.NumQubits)  // per-qubit availability
	bitReady := make([]sim.Time, c.NumBits) // when a bit is broadcast-visible
	bits := make([]int, c.NumBits)
	var watermark sim.Time // global flow position: decisions gate everything
	var busUntil sim.Time  // the central controller's broadcast bus
	res := Result{Bits: bits}

	dur := func(op circuit.Op) sim.Time {
		switch {
		case op.Kind == circuit.Measure:
			return d.Measure
		case op.Kind == circuit.Delay:
			return sim.Time(op.Param)
		case op.Kind.IsTwoQubit():
			return d.TwoQubit
		default:
			return d.OneQubit
		}
	}

	for _, op := range c.Ops {
		// Issue-rate floor: the shared flow steps through every operation of
		// the merged program on all controllers.
		watermark += cfg.IssueCost
		if op.Kind == circuit.Barrier {
			// Global barrier: lift the watermark to every qubit's frontier.
			for _, t := range avail {
				if t > watermark {
					watermark = t
				}
			}
			continue
		}
		start := watermark
		for _, q := range op.Qubits {
			if avail[q] > start {
				start = avail[q]
			}
		}
		taken := true
		if op.Cond != nil {
			res.Feedbacks++
			// The decision needs every condition bit broadcast to all
			// controllers; the whole flow waits for the decision.
			dataReady := start
			for _, b := range op.Cond.Bits {
				if bitReady[b] > dataReady {
					dataReady = bitReady[b]
				}
			}
			if dataReady > start {
				start = dataReady
			}
			// Decision point: the shared flow cannot advance past an
			// unresolved branch, so later operations in program order start
			// no earlier than this decision.
			if start > watermark {
				res.SerializedWait += start - watermark
				watermark = start
			}
			p := 0
			for _, b := range op.Cond.Bits {
				p ^= bits[b]
			}
			taken = p == op.Cond.Parity
			if !taken {
				// The skipped branch still consumes the decision point but
				// no gate time (shared flow skips together, unlike
				// time-reservation).
				continue
			}
		}
		end := start + dur(op)
		for _, q := range op.Qubits {
			avail[q] = end
		}
		switch {
		case op.Kind == circuit.Measure:
			out := cfg.Backend.Measure(op.Qubits[0])
			bits[op.CBit] = out
			res.Measurements++
			// Result latched locally, then broadcast via the central node.
			latched := start + cfg.MeasLatency
			if cfg.SerializeBroadcasts {
				// The star topology has one hub: simultaneous results
				// serialize on its bus.
				if latched > busUntil {
					busUntil = latched
				}
				busUntil += cfg.Broadcast
				bitReady[op.CBit] = busUntil
			} else {
				bitReady[op.CBit] = latched + cfg.Broadcast
			}
		case op.Kind == circuit.Delay:
		case op.Kind.IsTwoQubit():
			cfg.Backend.Apply2(op.Kind, op.Param, op.Qubits[0], op.Qubits[1])
			res.Gates++
		default:
			cfg.Backend.Apply1(op.Kind, op.Param, op.Qubits[0])
			res.Gates++
		}
		if end > res.Makespan {
			res.Makespan = end
		}
	}
	// Trailing broadcast of the last results is part of program completion
	// only if someone consumes them; makespan tracks operation ends.
	if res.Makespan < watermark {
		res.Makespan = watermark
	}
	return res, nil
}

// Compare is a convenience for experiments: it reports the ratio of BISP
// makespan to lock-step makespan.
func Compare(bisp, lockstep sim.Time) (float64, error) {
	if lockstep <= 0 {
		return 0, fmt.Errorf("baseline: non-positive lock-step makespan")
	}
	return float64(bisp) / float64(lockstep), nil
}
