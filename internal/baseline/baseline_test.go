package baseline

import (
	"testing"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
)

func run(t *testing.T, c *circuit.Circuit, cfg Config) Result {
	t.Helper()
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterministicOpsOverlap(t *testing.T) {
	// Parallel H gates on different qubits cost one gate time, not four.
	c := circuit.New(4)
	c.H(0).H(1).H(2).H(3)
	cfg := DefaultConfig(chip.NewSeeded(1))
	cfg.IssueCost = 0
	res := run(t, c, cfg)
	if res.Makespan != cfg.Durations.OneQubit {
		t.Fatalf("makespan = %d, want %d", res.Makespan, cfg.Durations.OneQubit)
	}
}

func TestIssueCostSerializesFlow(t *testing.T) {
	c := circuit.New(4)
	for i := 0; i < 100; i++ {
		c.H(i % 4)
	}
	cfg := DefaultConfig(chip.NewSeeded(1))
	cfg.IssueCost = 2
	res := run(t, c, cfg)
	if res.Makespan < 200 {
		t.Fatalf("issue cost not charged: makespan %d", res.Makespan)
	}
}

func TestConditionalWaitsForBroadcast(t *testing.T) {
	c := circuit.New(2)
	c.X(0)
	b := c.MeasureNew(0)
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{b}, Parity: 1}, 1)
	cfg := DefaultConfig(chip.NewSeeded(1))
	cfg.IssueCost = 0
	res := run(t, c, cfg)
	// X(5) + measure start at 5, latched at 5+80, broadcast +10, then X(5).
	want := int64(5) + cfg.MeasLatency + cfg.Broadcast + 5
	if int64(res.Makespan) != want {
		t.Fatalf("makespan = %d, want %d", res.Makespan, want)
	}
	if res.Feedbacks != 1 {
		t.Fatalf("feedbacks = %d", res.Feedbacks)
	}
}

func TestUntakenBranchSkipsGateTime(t *testing.T) {
	// Shared flow skips together: an untaken conditional costs no gate time
	// (unlike time-reservation, §2.1.2).
	build := func(prepOne bool) *circuit.Circuit {
		c := circuit.New(2)
		if prepOne {
			c.X(0)
		}
		b := c.MeasureNew(0)
		c.CondGate(circuit.X, circuit.Condition{Bits: []int{b}, Parity: 1}, 1)
		c.H(1)
		return c
	}
	cfg := DefaultConfig(chip.NewStateVec(2, 1))
	cfg.IssueCost = 0
	taken := run(t, build(true), cfg)
	cfg2 := DefaultConfig(chip.NewStateVec(2, 2))
	cfg2.IssueCost = 0
	skipped := run(t, build(false), cfg2)
	if skipped.Makespan >= taken.Makespan {
		t.Fatalf("skipped branch (%d) should beat taken (%d)", skipped.Makespan, taken.Makespan)
	}
}

func TestHubSerializesSimultaneousResults(t *testing.T) {
	// Four simultaneous measurements: with the hub bus, the last result is
	// delayed by 3 extra broadcast slots.
	build := func() *circuit.Circuit {
		c := circuit.New(4)
		var bits []int
		for q := 0; q < 4; q++ {
			bits = append(bits, c.MeasureNew(q))
		}
		for q := 0; q < 4; q++ {
			c.CondGate(circuit.X, circuit.Condition{Bits: []int{bits[q]}, Parity: 0}, q)
		}
		return c
	}
	hub := DefaultConfig(chip.NewSeeded(3))
	hub.IssueCost = 0
	fav := FavorableConfig(chip.NewSeeded(3))
	fav.IssueCost = 0
	hr := run(t, build(), hub)
	fr := run(t, build(), fav)
	if hr.Makespan <= fr.Makespan {
		t.Fatalf("hub (%d) should be slower than favorable (%d)", hr.Makespan, fr.Makespan)
	}
	// The last consumed result trails by up to 3 extra broadcast slots
	// (exactly which conditional ends last depends on the seeded outcomes).
	if d := hr.Makespan - fr.Makespan; d < 2*hub.Broadcast || d > 3*hub.Broadcast {
		t.Fatalf("hub penalty = %d, want within [%d,%d]", d, 2*hub.Broadcast, 3*hub.Broadcast)
	}
}

func TestBarrierLiftsWatermark(t *testing.T) {
	c := circuit.New(2)
	c.MeasureInto(0, 0) // 75 cycles on qubit 0
	c.BarrierAll()
	c.H(1) // must start after the barrier
	cfg := DefaultConfig(chip.NewSeeded(1))
	cfg.IssueCost = 0
	res := run(t, c, cfg)
	if res.Makespan != 75+5 {
		t.Fatalf("makespan = %d, want 80", res.Makespan)
	}
}

func TestOutcomesMatchBackend(t *testing.T) {
	// Deterministic circuit: the recorded bits follow the quantum state.
	c := circuit.New(2)
	c.X(0)
	c.CNOT(0, 1)
	c.MeasureInto(0, 0)
	c.MeasureInto(1, 1)
	cfg := DefaultConfig(chip.NewStateVec(2, 5))
	res := run(t, c, cfg)
	if res.Bits[0] != 1 || res.Bits[1] != 1 {
		t.Fatalf("bits = %v", res.Bits)
	}
}

func TestCompareRejectsZero(t *testing.T) {
	if _, err := Compare(10, 0); err == nil {
		t.Fatal("expected error")
	}
	r, err := Compare(50, 100)
	if err != nil || r != 0.5 {
		t.Fatalf("ratio = %v err = %v", r, err)
	}
}
