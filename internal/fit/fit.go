// Package fit provides the small least-squares toolkit the calibration
// experiments of Figure 11 need: exponential decay (T1), Lorentzian
// (spectroscopy), sinusoidal Rabi oscillation, and circle fitting (IQ
// plane). Nonlinear fits run Nelder–Mead simplex on the sum of squared
// residuals from heuristic starting points.
package fit

import (
	"errors"
	"math"
	"sort"
)

// Model is a parametric curve y = f(x; p).
type Model func(x float64, p []float64) float64

// SSE returns the sum of squared residuals of the model on the data.
func SSE(xs, ys []float64, m Model, p []float64) float64 {
	s := 0.0
	for i := range xs {
		d := ys[i] - m(xs[i], p)
		s += d * d
	}
	return s
}

// NelderMead minimizes f over dim dimensions starting from x0 with the
// given initial step sizes. It returns the best point found after iters
// iterations — plenty for the well-conditioned calibration fits.
func NelderMead(f func([]float64) float64, x0, step []float64, iters int) []float64 {
	dim := len(x0)
	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	for i := range simplex {
		x := append([]float64{}, x0...)
		if i > 0 {
			x[i-1] += step[i-1]
		}
		simplex[i] = vertex{x: x, v: f(x)}
	}
	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5
	for it := 0; it < iters; it++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		best, worst := simplex[0], simplex[dim]
		centroid := make([]float64, dim)
		for _, vtx := range simplex[:dim] {
			for j := range centroid {
				centroid[j] += vtx.x[j] / float64(dim)
			}
		}
		mix := func(a float64) []float64 {
			x := make([]float64, dim)
			for j := range x {
				x[j] = centroid[j] + a*(worst.x[j]-centroid[j])
			}
			return x
		}
		refl := mix(-alpha)
		fr := f(refl)
		switch {
		case fr < best.v:
			exp := mix(-gamma)
			if fe := f(exp); fe < fr {
				simplex[dim] = vertex{exp, fe}
			} else {
				simplex[dim] = vertex{refl, fr}
			}
		case fr < simplex[dim-1].v:
			simplex[dim] = vertex{refl, fr}
		default:
			con := mix(rho)
			if fc := f(con); fc < worst.v {
				simplex[dim] = vertex{con, fc}
			} else {
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + sigma*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].v = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x
}

// Exponential fits y = A·exp(-x/Tau) + C.
type Exponential struct {
	A, Tau, C float64
}

// FitExponential fits a decay curve; xs must span a meaningful fraction of
// the decay for Tau to be identifiable.
func FitExponential(xs, ys []float64) (Exponential, error) {
	if len(xs) < 4 || len(xs) != len(ys) {
		return Exponential{}, errors.New("fit: need >= 4 points")
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
	}
	span := xs[len(xs)-1] - xs[0]
	m := func(x float64, p []float64) float64 { return p[0]*math.Exp(-x/math.Abs(p[1])) + p[2] }
	p := NelderMead(func(p []float64) float64 { return SSE(xs, ys, m, p) },
		[]float64{maxY - minY, span / 3, minY},
		[]float64{(maxY - minY) / 4, span / 6, (maxY-minY)/4 + 1e-6}, 600)
	return Exponential{A: p[0], Tau: math.Abs(p[1]), C: p[2]}, nil
}

// Lorentzian fits y = A / (1 + ((x-X0)/Gamma)^2) + C.
type Lorentzian struct {
	A, X0, Gamma, C float64
}

// FitLorentzian fits a resonance peak (or dip, with negative A).
func FitLorentzian(xs, ys []float64) (Lorentzian, error) {
	if len(xs) < 5 || len(xs) != len(ys) {
		return Lorentzian{}, errors.New("fit: need >= 5 points")
	}
	// Heuristic start: extremum location.
	minY, maxY := ys[0], ys[0]
	peakX, base := xs[0], 0.0
	for i, y := range ys {
		if y > maxY {
			maxY = y
			peakX = xs[i]
		}
		minY = math.Min(minY, y)
	}
	base = minY
	span := math.Abs(xs[len(xs)-1]-xs[0]) + 1e-12
	m := func(x float64, p []float64) float64 {
		d := (x - p[1]) / math.Abs(p[2])
		return p[0]/(1+d*d) + p[3]
	}
	p := NelderMead(func(p []float64) float64 { return SSE(xs, ys, m, p) },
		[]float64{maxY - base, peakX, span / 10, base},
		[]float64{(maxY - base) / 4, span / 20, span / 20, (maxY-base)/4 + 1e-9}, 800)
	return Lorentzian{A: p[0], X0: p[1], Gamma: math.Abs(p[2]), C: p[3]}, nil
}

// Rabi fits y = A·(1 - cos(Omega·x))/2 + C — excited-state population under
// a varying drive amplitude or duration.
type Rabi struct {
	A, Omega, C float64
}

// FitRabi fits the oscillation; Omega is found by a frequency scan before
// refinement, so multiple periods in the data are handled.
func FitRabi(xs, ys []float64) (Rabi, error) {
	if len(xs) < 6 || len(xs) != len(ys) {
		return Rabi{}, errors.New("fit: need >= 6 points")
	}
	span := xs[len(xs)-1] - xs[0]
	m := func(x float64, p []float64) float64 {
		return p[0]*(1-math.Cos(p[1]*x))/2 + p[2]
	}
	// Coarse frequency scan, capped at the Nyquist band of the sampling so
	// noise cannot alias the oscillation to an absurd frequency.
	spacing := span / float64(len(xs)-1)
	wMax := math.Pi / spacing
	bestW, bestSSE := 0.0, math.Inf(1)
	for k := 1; k <= 400; k++ {
		w := float64(k) / 400 * wMax
		if s := SSE(xs, ys, m, []float64{1, w, 0}); s < bestSSE {
			bestSSE = s
			bestW = w
		}
	}
	p := NelderMead(func(p []float64) float64 { return SSE(xs, ys, m, p) },
		[]float64{1, bestW, 0},
		[]float64{0.2, bestW / 20, 0.1}, 800)
	return Rabi{A: p[0], Omega: math.Abs(p[1]), C: p[2]}, nil
}

// PiAmplitude returns the drive value producing a pi rotation under the
// fitted oscillation.
func (r Rabi) PiAmplitude() float64 {
	if r.Omega == 0 {
		return math.Inf(1)
	}
	return math.Pi / r.Omega
}

// Circle is a fitted circle in the IQ plane.
type Circle struct {
	X0, Y0, R float64
}

// FitCircle performs the Kåsa algebraic fit: linear least squares on
// x² + y² = 2ax + 2by + c.
func FitCircle(xs, ys []float64) (Circle, error) {
	n := len(xs)
	if n < 3 || n != len(ys) {
		return Circle{}, errors.New("fit: need >= 3 points")
	}
	// Normal equations for [a b c].
	var sxx, sxy, syy, sx, sy, sxz, syz, sz float64
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		z := x*x + y*y
		sxx += x * x
		sxy += x * y
		syy += y * y
		sx += x
		sy += y
		sxz += x * z
		syz += y * z
		sz += z
	}
	fn := float64(n)
	// Solve the 3x3 system via Cramer's rule.
	a11, a12, a13 := 2*sxx, 2*sxy, sx
	a21, a22, a23 := 2*sxy, 2*syy, sy
	a31, a32, a33 := 2*sx, 2*sy, fn
	b1, b2, b3 := sxz, syz, sz
	det := a11*(a22*a33-a23*a32) - a12*(a21*a33-a23*a31) + a13*(a21*a32-a22*a31)
	if math.Abs(det) < 1e-12 {
		return Circle{}, errors.New("fit: degenerate circle")
	}
	da := b1*(a22*a33-a23*a32) - a12*(b2*a33-a23*b3) + a13*(b2*a32-a22*b3)
	db := a11*(b2*a33-a23*b3) - b1*(a21*a33-a23*a31) + a13*(a21*b3-b2*a31)
	dc := a11*(a22*b3-b2*a32) - a12*(a21*b3-b2*a31) + b1*(a21*a32-a22*a31)
	a, b, cc := da/det, db/det, dc/det
	return Circle{X0: a, Y0: b, R: math.Sqrt(cc + a*a + b*b)}, nil
}

// RMSE returns the root-mean-square residual of points to the circle.
func (c Circle) RMSE(xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for i := range xs {
		d := math.Hypot(xs[i]-c.X0, ys[i]-c.Y0) - c.R
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
