package fit

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitExponentialRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = float64(i) * 1.5
		ys[i] = 0.95*math.Exp(-xs[i]/9.9) + 0.02 + rng.NormFloat64()*0.01
	}
	f, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Tau-9.9) > 0.8 {
		t.Fatalf("tau = %.2f, want ~9.9", f.Tau)
	}
	if math.Abs(f.A-0.95) > 0.1 {
		t.Fatalf("A = %.2f", f.A)
	}
}

func TestFitLorentzianRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = 4.5 + 0.004*float64(i)
		d := (xs[i] - 4.62) / 0.02
		ys[i] = 0.8/(1+d*d) + 0.05 + rng.NormFloat64()*0.02
	}
	f, err := FitLorentzian(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.X0-4.62) > 0.005 {
		t.Fatalf("x0 = %.4f, want 4.62", f.X0)
	}
	if math.Abs(f.Gamma-0.02) > 0.01 {
		t.Fatalf("gamma = %.4f", f.Gamma)
	}
}

func TestFitRabiRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const omega = 125.6
	xs := make([]float64, 40)
	ys := make([]float64, 40)
	for i := range xs {
		xs[i] = 0.003 * float64(i)
		ys[i] = (1-math.Cos(omega*xs[i]))/2 + rng.NormFloat64()*0.03
	}
	f, err := FitRabi(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Omega-omega)/omega > 0.05 {
		t.Fatalf("omega = %.1f, want ~%.1f", f.Omega, omega)
	}
	if pi := f.PiAmplitude(); math.Abs(pi-math.Pi/omega)/(math.Pi/omega) > 0.05 {
		t.Fatalf("pi amplitude = %.4f", pi)
	}
}

func TestFitCircleRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		th := 2 * math.Pi * float64(i) / 50
		xs[i] = 0.3 + 1.7*math.Cos(th) + rng.NormFloat64()*0.01
		ys[i] = -0.2 + 1.7*math.Sin(th) + rng.NormFloat64()*0.01
	}
	c, err := FitCircle(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.R-1.7) > 0.05 || math.Abs(c.X0-0.3) > 0.05 || math.Abs(c.Y0+0.2) > 0.05 {
		t.Fatalf("circle = %+v", c)
	}
	if rmse := c.RMSE(xs, ys); rmse > 0.05 {
		t.Fatalf("rmse = %.4f", rmse)
	}
}

func TestFitCircleDegenerate(t *testing.T) {
	if _, err := FitCircle([]float64{1, 1, 1}, []float64{2, 2, 2}); err == nil {
		t.Fatal("expected degenerate-circle error")
	}
	if _, err := FitCircle([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected too-few-points error")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(p []float64) float64 {
		return (p[0]-3)*(p[0]-3) + (p[1]+2)*(p[1]+2)
	}
	p := NelderMead(f, []float64{0, 0}, []float64{1, 1}, 300)
	if math.Abs(p[0]-3) > 1e-3 || math.Abs(p[1]+2) > 1e-3 {
		t.Fatalf("minimum at %v", p)
	}
}

func TestFitErrorsOnShortData(t *testing.T) {
	if _, err := FitExponential([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := FitLorentzian([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := FitRabi([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
}
