package sim

// Resource models one serialized stage of the interconnect — a mesh link
// or a router port — as a busy-until FIFO: each message occupies the
// stage for a fixed serialization interval, and a message arriving while
// the stage is busy queues behind the in-flight ones in arrival order.
// The simulation kernel is single-threaded and processes events in
// nondecreasing time, so reservations arrive in causal order and a plain
// high-water line suffices; no event structure is needed per queued
// message.
//
// With occupancy 0 the resource is transparent: Reserve returns the
// requested time unchanged, records nothing, and the caller's schedule is
// byte-identical to a model without the resource. That is the
// disabled-equals-seed guarantee of DESIGN.md §6.
type Resource struct {
	busyUntil Time
	// Stats, valid after any Reserve with occupancy > 0.
	Messages    uint64 // messages that traversed this stage
	StallCycles Time   // cumulative cycles messages waited for the stage
	MaxQueue    int    // deepest simultaneous backlog observed
	Overflows   uint64 // reservations that found the backlog at or above cap
	BusyCycles  Time   // total occupancy charged (utilization numerator)
}

// Reserve books the stage for one message that wants to enter at time
// `at`, occupying it for `occupancy` cycles once in service. It returns
// the service start time (>= at) and how long the message waited. cap
// bounds the FIFO depth used for the overflow statistic; cap <= 0 means
// unbounded. Messages are never dropped — a lossy fabric would break the
// BISP protocol — so an over-cap arrival is counted, not discarded.
func (r *Resource) Reserve(at, occupancy Time, cap int) (depart, waited Time) {
	if occupancy <= 0 {
		return at, 0
	}
	depart = at
	if r.busyUntil > at {
		depart = r.busyUntil
		waited = depart - at
		// Everything between `at` and busyUntil is earlier messages still
		// in service or queued; with uniform occupancy the backlog depth
		// is the wait divided by the service interval, rounded up.
		depth := int((waited + occupancy - 1) / occupancy)
		if depth > r.MaxQueue {
			r.MaxQueue = depth
		}
		if cap > 0 && depth >= cap {
			r.Overflows++
		}
	}
	r.busyUntil = depart + occupancy
	r.Messages++
	r.StallCycles += waited
	r.BusyCycles += occupancy
	return depart, waited
}

// Reset clears the booking line and statistics for the next shot.
func (r *Resource) Reset() {
	*r = Resource{}
}
