package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, PriResume, func() { got = append(got, 3) })
	e.At(10, PriResume, func() { got = append(got, 1) })
	e.At(20, PriResume, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineSameTimePriorityThenFIFO(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(5, PriResume, func() { got = append(got, "resume-a") })
	e.At(5, PriDeliver, func() { got = append(got, "deliver") })
	e.At(5, PriResume, func() { got = append(got, "resume-b") })
	e.Run(0)
	want := []string{"deliver", "resume-a", "resume-b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, PriResume, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, PriResume, func() {})
	})
	e.Run(0)
}

func TestEngineEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.After(1, PriResume, rec)
		}
	}
	e.After(0, PriResume, rec)
	e.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("now = %d, want 99", e.Now())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, PriResume, func() { ran++ })
	e.At(100, PriResume, func() { ran++ })
	e.RunUntil(50)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != 50 {
		t.Fatalf("now = %d, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunWithLimit(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.At(Time(i), PriResume, func() {})
	}
	if n := e.Run(4); n != 4 {
		t.Fatalf("ran %d, want 4", n)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestCyclesConversion(t *testing.T) {
	cases := []struct {
		ns   int64
		want Time
	}{{0, 0}, {1, 1}, {4, 1}, {5, 2}, {20, 5}, {40, 10}, {300, 75}, {-3, 0}}
	for _, c := range cases {
		if got := Cycles(c.ns); got != c.want {
			t.Errorf("Cycles(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if Nanoseconds(75) != 300 {
		t.Errorf("Nanoseconds(75) = %d, want 300", Nanoseconds(75))
	}
}

func TestCyclesNanosecondsRoundTrip(t *testing.T) {
	// Property: for any non-negative cycle count, ns->cycles is the identity.
	f := func(c uint16) bool {
		return Cycles(Nanoseconds(Time(c))) == Time(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	// The same schedule must produce the same execution order, twice.
	build := func() (*Engine, *[]int) {
		e := NewEngine()
		var order []int
		for i := 0; i < 50; i++ {
			id := i
			e.At(Time(i%7), Priority(i%3), func() { order = append(order, id) })
		}
		return e, &order
	}
	e1, o1 := build()
	e1.Run(0)
	e2, o2 := build()
	e2.Run(0)
	if len(*o1) != len(*o2) {
		t.Fatal("different lengths")
	}
	for i := range *o1 {
		if (*o1)[i] != (*o2)[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, *o1, *o2)
		}
	}
}
