// Package sim provides the deterministic discrete-event simulation kernel that
// drives every component of the Distributed-HISQ model: controllers, routers,
// links, and the quantum chip model all schedule work on a single Engine.
//
// The kernel is transaction-level in the sense of the paper's CACTUS-Light
// simulator (§6.4.1): components advance in units of controller clock cycles
// (4 ns at the 250 MHz TCU clock) and interact through timestamped events.
// Determinism is guaranteed by a total order on events: (time, priority,
// insertion sequence).
package sim

import (
	"fmt"
)

// Time is an absolute simulation time in TCU clock cycles (4 ns each).
type Time = int64

// CyclesPerSecond is the TCU clock rate from §6.1 (250 MHz, 4 ns grid).
const CyclesPerSecond = 250_000_000

// NsPerCycle is the duration of one cycle in nanoseconds.
const NsPerCycle = 4

// Nanoseconds converts a cycle count to nanoseconds.
func Nanoseconds(t Time) int64 { return int64(t) * NsPerCycle }

// Cycles converts a duration in nanoseconds to cycles, rounding up to the
// 4 ns grid (the hardware cannot act between grid points).
func Cycles(ns int64) Time {
	if ns <= 0 {
		return 0
	}
	return Time((ns + NsPerCycle - 1) / NsPerCycle)
}

// Priority orders events that share a timestamp. Lower runs first. Deliveries
// run before process resumptions so that a controller unblocked by a message
// observes it in the same cycle.
type Priority int

const (
	PriDeliver Priority = iota // link/router deliveries
	PriResume                  // process resumptions
	PriCleanup                 // end-of-cycle bookkeeping
)

// event is a heap entry by value: no per-event allocation, no interface
// dispatch in the hot loop. The (priority, insertion sequence) pair is
// packed into one key word — priority in the top byte, sequence below —
// so ordering is a two-field compare. 56 bits of sequence is ~7×10^16
// events, far beyond any run (Reset rewinds the counter anyway).
type event struct {
	at   Time
	key  uint64 // Priority<<seqBits | seq
	call func()
}

const seqBits = 56

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// eventHeap is a hand-rolled binary min-heap over event values, ordered
// by (at, key). It replaces container/heap: the simulation spends a
// third of its shot time in queue operations, and the interface-based
// heap paid an allocation per event plus dynamic dispatch per compare.
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	// Sift up.
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the func for GC
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && eventLess(s[right], s[left]) {
			least = right
		}
		if !eventLess(s[least], s[i]) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// Engine is a deterministic discrete-event scheduler. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	nRun   uint64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Reset restores the engine to its post-construction state: the event heap
// is drained, the clock rewinds to 0 and the sequence/processed counters
// clear. The backing heap storage is retained, so a reset engine re-runs a
// workload without reallocating. It is the bottom of the machine-wide
// Reset path that makes multi-shot execution cheap.
func (e *Engine) Reset() {
	for i := range e.events {
		e.events[i] = event{}
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.nRun = 0
}

// Processed reports how many events have been executed.
func (e *Engine) Processed() uint64 { return e.nRun }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn at absolute time t. Scheduling in the past is a programming
// error and panics: it would silently violate causality.
func (e *Engine) At(t Time, pri Priority, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at t=%d before now=%d", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, key: uint64(pri)<<seqBits | e.seq, call: fn})
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay Time, pri Priority, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.At(e.now+delay, pri, fn)
}

// Step executes the single next event, returning false when none remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	e.now = ev.at
	e.nRun++
	ev.call()
	return true
}

// Run executes events until the queue drains or limit events have run
// (limit <= 0 means unlimited). It returns the number executed in this call.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit <= 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events beyond the
// deadline remain queued; the clock advances to deadline if it ran dry early.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
