package store_test

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"dhisq/internal/compiler"
	"dhisq/internal/isa"
	"dhisq/internal/store"
)

// FuzzStoreDecode is the adversarial half of the persistence contract: a
// store file may be truncated mid-write crash, bit-rotted, or written by
// a different version of the encoder, and Decode must reject every such
// input with an error — never panic, never over-allocate, and never
// return a silently wrong artifact. The final property is the sharp one:
// any mutation that survives decoding must have failed the checksum, so
// a successful decode of valid input re-encodes to the identical bytes.
func FuzzStoreDecode(f *testing.F) {
	valid := store.Encode(&compiler.Compiled{
		Programs: []*isa.Program{{
			Instrs:  []isa.Instr{{Op: isa.OpHALT, Rd: 1, Imm: 42}},
			Symbols: map[string]int{"start": 0},
		}},
		BitOwner:   []int{0, 1},
		MemBytes:   64,
		Mapping:    []int{0, 1},
		ParamSlots: []compiler.ParamSlot{{Ctrl: 0, Index: 0, Sym: "theta0"}},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-payload
	f.Add(valid[:11])            // truncated inside the header
	f.Add([]byte{})              // empty
	f.Add([]byte("DHSQART\x00")) // magic only
	bumped := append([]byte(nil), valid...)
	bumped[8]++ // future version
	f.Add(bumped)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01 // payload bit rot
	f.Add(flipped)
	huge := append([]byte(nil), valid...)
	huge[12] = 0xFF // forged element count
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := store.Decode(data)
		if err != nil {
			if cp != nil {
				t.Fatal("Decode returned both an artifact and an error")
			}
			return
		}
		// Whatever decoded must be the canonical decoding of its own
		// encoding: Decode accepts exactly the image of Encode, so a
		// mutated file can never smuggle in a different artifact.
		again, err := store.Decode(store.Encode(cp))
		if err != nil {
			t.Fatalf("re-decode of re-encoded artifact failed: %v", err)
		}
		if !reflect.DeepEqual(again, cp) {
			t.Fatal("decode/encode/decode changed the artifact")
		}
		// And the input itself must have been a well-formed file: correct
		// trailing checksum over everything before it.
		body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
		if sum := sha256.Sum256(body); string(sum[:]) != string(tail) {
			t.Fatal("Decode accepted input with a bad checksum")
		}
	})
}
