// Package store is the persistence layer under the compiled-artifact
// cache: a content-addressed on-disk store of compiler.Compiled values,
// keyed by the same fingerprints internal/artifact computes (for
// parameterized circuits, the bind-invariant structural key — so one
// spilled skeleton warms every binding of the family).
//
// The store exists so that serving processes survive restarts warm: a
// dhisq-serve daemon spills every artifact it compiles, and a cold
// process start restores them instead of recompiling — the crash/restart
// contract is that a repeat job after restart performs zero fresh
// compiles and returns byte-identical histograms (cmd/dhisq-serve tests
// and the -exp serve-load gate hold it).
//
// On-disk format (one file per fingerprint, named <64-hex>.art):
//
//	magic "DHSQART\x00" | u32 version | payload | sha256(all preceding bytes)
//
// The payload is a fixed little-endian encoding of every Compiled field
// (programs, symbol maps sorted by name, codeword tables, bit owners,
// stats, mapping, param slots). Decode verifies the trailing checksum
// before touching the payload and rejects unknown versions, so a
// truncated, corrupted, or version-bumped file is an error — never a
// panic, never a silently wrong artifact (FuzzStoreDecode enforces
// this). Writes are atomic (temp file + rename into place), so a crash
// mid-spill leaves either the old bytes or nothing. The store is
// size-bounded: Put evicts least-recently-written files once the byte
// budget is exceeded.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dhisq/internal/artifact"
	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/isa"
)

// Version is bumped whenever the payload encoding changes shape; Decode
// rejects every other version, so a store directory can never feed a
// differently-shaped artifact into a newer process.
const Version = 1

var magic = [8]byte{'D', 'H', 'S', 'Q', 'A', 'R', 'T', 0}

// ErrNotFound reports a fingerprint with no stored artifact.
var ErrNotFound = errors.New("store: artifact not found")

// ErrCorrupt wraps every decode failure: bad magic, unknown version,
// checksum mismatch, or a truncated/overlong payload.
var ErrCorrupt = errors.New("store: corrupt artifact")

const (
	ext         = ".art"
	headerLen   = 8 + 4       // magic + version
	checksumLen = sha256.Size // trailing integrity hash
	minFileLen  = headerLen + checksumLen
	// DefaultMaxBytes bounds a store at 512 MiB — thousands of artifacts
	// for the current workloads, while a runaway workload cannot fill the
	// disk of a long-lived daemon.
	DefaultMaxBytes = 512 << 20
)

// Stats is a point-in-time snapshot of store effectiveness.
type Stats struct {
	// Restores counts Get calls served from disk; Spills counts Put
	// writes that landed; Evictions counts files the byte budget removed;
	// CorruptDropped counts files Get found undecodable and deleted.
	Restores       uint64 `json:"restores"`
	Spills         uint64 `json:"spills"`
	Evictions      uint64 `json:"evictions"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	Files          int    `json:"files"`
	Bytes          int64  `json:"bytes"`
	MaxBytes       int64  `json:"max_bytes"`
}

type fileInfo struct {
	size int64
	seq  uint64 // write recency: larger = newer (load order at Open)
}

// Store is a size-bounded, concurrency-safe on-disk artifact store. It
// implements artifact.Store, so it plugs directly under the in-memory
// cache via artifact.Cache.SetStore.
type Store struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[artifact.Fingerprint]fileInfo
	bytes int64
	seq   uint64
	stats Stats
}

// Open scans dir (creating it if needed) and returns a store bounded to
// maxBytes on disk (<= 0 picks DefaultMaxBytes). Existing files are
// indexed by name; anything that is not a well-formed <64-hex>.art name
// is ignored — decode validation happens at Get, not Open, so a corrupt
// file costs nothing until someone asks for it.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes, index: make(map[artifact.Fingerprint]fileInfo)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Index in modification-time order so eviction recency survives the
	// restart: the oldest file on disk is the first GC victim.
	type onDisk struct {
		fp    artifact.Fingerprint
		size  int64
		mtime int64
		name  string
	}
	var found []onDisk
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ext) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ext))
		if err != nil || len(raw) != sha256.Size {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		var fp artifact.Fingerprint
		copy(fp[:], raw)
		found = append(found, onDisk{fp: fp, size: info.Size(), mtime: info.ModTime().UnixNano(), name: name})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		s.seq++
		s.index[f.fp] = fileInfo{size: f.size, seq: s.seq}
		s.bytes += f.size
	}
	return s, nil
}

// Dir returns the directory backing the store.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(fp artifact.Fingerprint) string {
	return filepath.Join(s.dir, fp.String()+ext)
}

// Put encodes and atomically writes the artifact, then evicts the
// least-recently-written other files while the store exceeds its byte
// budget (the just-written artifact is never its own victim, so a single
// oversized artifact still persists).
func (s *Store) Put(fp artifact.Fingerprint, cp *compiler.Compiled) error {
	data := Encode(cp)
	tmp, err := os.CreateTemp(s.dir, "spill-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmpName, s.path(fp)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if old, ok := s.index[fp]; ok {
		s.bytes -= old.size
	}
	s.seq++
	s.index[fp] = fileInfo{size: int64(len(data)), seq: s.seq}
	s.bytes += int64(len(data))
	s.stats.Spills++
	s.gc(fp)
	return nil
}

// gc evicts least-recently-written files until the byte budget holds,
// sparing keep. Called with s.mu held.
func (s *Store) gc(keep artifact.Fingerprint) {
	for s.bytes > s.maxBytes && len(s.index) > 1 {
		var victim artifact.Fingerprint
		var oldest uint64 = math.MaxUint64
		for fp, fi := range s.index {
			if fp == keep {
				continue
			}
			if fi.seq < oldest {
				oldest = fi.seq
				victim = fp
			}
		}
		if oldest == math.MaxUint64 {
			return
		}
		s.removeLocked(victim)
		s.stats.Evictions++
	}
}

// removeLocked drops one file and its index entry. Called with s.mu held.
func (s *Store) removeLocked(fp artifact.Fingerprint) {
	if fi, ok := s.index[fp]; ok {
		s.bytes -= fi.size
		delete(s.index, fp)
	}
	os.Remove(s.path(fp))
}

// Get reads and decodes the stored artifact. A missing fingerprint is
// ErrNotFound; an undecodable file is removed from the store (it can
// never become valid — content addressing means a rewrite of the same
// fingerprint writes the same bytes) and reported as ErrCorrupt.
func (s *Store) Get(fp artifact.Fingerprint) (*compiler.Compiled, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[fp]; !ok {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		// Index said present, disk disagrees: drop the entry.
		s.removeLocked(fp)
		return nil, ErrNotFound
	}
	cp, err := Decode(data)
	if err != nil {
		s.removeLocked(fp)
		s.stats.CorruptDropped++
		return nil, err
	}
	s.stats.Restores++
	return cp, nil
}

// Load implements artifact.Store: a boolean Get for the cache's restore
// path. Every failure mode — absent, unreadable, corrupt — is a plain
// miss; the cache then recompiles and respills.
func (s *Store) Load(fp artifact.Fingerprint) (*compiler.Compiled, bool) {
	cp, err := s.Get(fp)
	return cp, err == nil
}

// Save implements artifact.Store.
func (s *Store) Save(fp artifact.Fingerprint, cp *compiler.Compiled) error {
	return s.Put(fp, cp)
}

// Len returns the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Files = len(s.index)
	st.Bytes = s.bytes
	st.MaxBytes = s.maxBytes
	return st
}

// ---------------------------------------------------------------------------
// Encoding

// enc accumulates the little-endian payload.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) i64(v int64)   { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *enc) f64(v float64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.i64(int64(len(s)))
	e.buf = append(e.buf, s...)
}

// length writes a slice/map length with nil preserved as -1: decode must
// reconstruct the artifact exactly — reflect.DeepEqual against a fresh
// compile is the restart-warm test's bar, and it distinguishes a nil
// slice from an empty one.
func (e *enc) length(n int, isNil bool) {
	if isNil {
		e.i64(-1)
		return
	}
	e.i64(int64(n))
}

// Encode renders the artifact in the store's versioned, checksummed wire
// form. The encoding is canonical — map fields are written in sorted
// order — so encoding the same artifact twice yields identical bytes
// (content addressing depends on it: a re-spill of a fingerprint
// rewrites the same file).
func Encode(cp *compiler.Compiled) []byte {
	e := &enc{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, magic[:]...)
	e.u32(Version)

	e.length(len(cp.Programs), cp.Programs == nil)
	for _, p := range cp.Programs {
		e.length(len(p.Instrs), p.Instrs == nil)
		for _, in := range p.Instrs {
			e.u8(uint8(in.Op))
			e.u8(in.Rd)
			e.u8(in.Rs1)
			e.u8(in.Rs2)
			e.u32(uint32(in.Imm))
		}
		names := make([]string, 0, len(p.Symbols))
		for n := range p.Symbols {
			names = append(names, n)
		}
		sort.Strings(names)
		e.length(len(names), p.Symbols == nil)
		for _, n := range names {
			e.str(n)
			e.i64(int64(p.Symbols[n]))
		}
	}

	e.length(len(cp.Tables), cp.Tables == nil)
	for _, table := range cp.Tables {
		e.length(len(table), table == nil)
		for _, t := range table {
			e.u8(uint8(t.Role))
			e.u8(uint8(t.Kind))
			e.f64(t.Param)
			e.i64(int64(t.Qubit))
			e.i64(int64(t.Partner))
			e.i64(int64(t.Channel))
			e.str(t.Sym)
		}
	}

	e.length(len(cp.BitOwner), cp.BitOwner == nil)
	for _, o := range cp.BitOwner {
		e.i64(int64(o))
	}
	e.i64(int64(cp.MemBytes))

	e.i64(int64(cp.Stats.Instructions))
	e.i64(int64(cp.Stats.NearbySyncs))
	e.i64(int64(cp.Stats.RegionSyncs))
	e.i64(int64(cp.Stats.Sends))
	e.i64(int64(cp.Stats.Recvs))
	e.i64(int64(cp.Stats.TableEntries))

	e.length(len(cp.Mapping), cp.Mapping == nil)
	for _, m := range cp.Mapping {
		e.i64(int64(m))
	}

	e.length(len(cp.ParamSlots), cp.ParamSlots == nil)
	for _, ps := range cp.ParamSlots {
		e.i64(int64(ps.Ctrl))
		e.i64(int64(ps.Index))
		e.str(ps.Sym)
	}

	sum := sha256.Sum256(e.buf)
	return append(e.buf, sum[:]...)
}

// dec is a bounds-checked payload reader: every read reports truncation
// as an error instead of slicing past the end, which is what keeps
// FuzzStoreDecode panic-free by construction.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(uint64(d.i64())) }

func (d *dec) str() string {
	n := d.i64()
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+int(n) > len(d.buf) {
		d.fail()
		return ""
	}
	v := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

// count reads a length prefix (-1 = the nil slice/map, per enc.length)
// and validates it against the bytes that could possibly remain at
// minBytes per element, so a forged count can never trigger a huge
// allocation.
func (d *dec) count(minBytes int) int {
	n := d.i64()
	if d.err != nil {
		return -1
	}
	if n == -1 {
		return -1
	}
	if n < 0 || int(n) > (len(d.buf)-d.off)/minBytes+1 {
		d.fail()
		return -1
	}
	return int(n)
}

// Decode parses the wire form back into an artifact. The trailing
// checksum is verified before any field is parsed; a mismatch, an
// unknown version, bad magic, truncation, or trailing garbage all return
// an error wrapping ErrCorrupt. A successful decode is structurally
// identical (reflect.DeepEqual) to the encoded artifact.
func Decode(data []byte) (*compiler.Compiled, error) {
	if len(data) < minFileLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(data), minFileLen)
	}
	body, tail := data[:len(data)-checksumLen], data[len(data)-checksumLen:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if string(body[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrCorrupt, v, Version)
	}

	d := &dec{buf: body, off: headerLen}
	cp := &compiler.Compiled{}

	nProg := d.count(9) // per program: instr count + symbol count minimum
	if nProg >= 0 {
		cp.Programs = make([]*isa.Program, nProg)
	}
	for i := 0; i < nProg && d.err == nil; i++ {
		p := &isa.Program{}
		nIns := d.count(8)
		if nIns >= 0 {
			p.Instrs = make([]isa.Instr, nIns)
		}
		for k := 0; k < nIns && d.err == nil; k++ {
			p.Instrs[k] = isa.Instr{
				Op: isa.Op(d.u8()), Rd: d.u8(), Rs1: d.u8(), Rs2: d.u8(),
				Imm: int32(d.u32()),
			}
		}
		nSym := d.count(16)
		if nSym >= 0 {
			p.Symbols = make(map[string]int, nSym)
		}
		for k := 0; k < nSym && d.err == nil; k++ {
			name := d.str()
			p.Symbols[name] = int(d.i64())
		}
		cp.Programs[i] = p
	}

	nTables := d.count(8)
	if nTables >= 0 {
		cp.Tables = make([][]chip.TableEntry, nTables)
	}
	for i := 0; i < nTables && d.err == nil; i++ {
		nEnt := d.count(2 + 8*4 + 8)
		if nEnt >= 0 {
			cp.Tables[i] = make([]chip.TableEntry, nEnt)
		}
		for k := 0; k < nEnt && d.err == nil; k++ {
			cp.Tables[i][k] = chip.TableEntry{
				Role: chip.Role(d.u8()), Kind: circuit.Kind(d.u8()),
				Param: d.f64(), Qubit: int(d.i64()),
				Partner: int(d.i64()), Channel: int(d.i64()), Sym: d.str(),
			}
		}
	}

	nBits := d.count(8)
	if nBits >= 0 {
		cp.BitOwner = make([]int, nBits)
	}
	for i := 0; i < nBits && d.err == nil; i++ {
		cp.BitOwner[i] = int(d.i64())
	}
	cp.MemBytes = int(d.i64())

	cp.Stats.Instructions = int(d.i64())
	cp.Stats.NearbySyncs = int(d.i64())
	cp.Stats.RegionSyncs = int(d.i64())
	cp.Stats.Sends = int(d.i64())
	cp.Stats.Recvs = int(d.i64())
	cp.Stats.TableEntries = int(d.i64())

	nMap := d.count(8)
	if nMap >= 0 {
		cp.Mapping = make([]int, nMap)
	}
	for i := 0; i < nMap && d.err == nil; i++ {
		cp.Mapping[i] = int(d.i64())
	}

	nSlots := d.count(24)
	if nSlots >= 0 {
		cp.ParamSlots = make([]compiler.ParamSlot, nSlots)
	}
	for i := 0; i < nSlots && d.err == nil; i++ {
		cp.ParamSlots[i] = compiler.ParamSlot{
			Ctrl: int(d.i64()), Index: int(d.i64()), Sym: d.str(),
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return cp, nil
}
