package store_test

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dhisq/internal/artifact"
	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/isa"
	"dhisq/internal/machine"
	"dhisq/internal/store"
	"dhisq/internal/workloads"
)

// compileGHZ produces a real compiler artifact — the round-trip tests run
// against what the pipeline actually emits, not a hand-built facsimile.
func compileGHZ(t *testing.T, n int) *compiler.Compiled {
	t.Helper()
	c := workloads.GHZ(n)
	m, err := machine.NewForCircuit(c, 2, 2, machine.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.CompileFresh(c, nil, m.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// compileSkeleton produces a parameterized skeleton — ParamSlots and a
// symbolic table Sym populated, the fields the restart-warm contract most
// depends on surviving the disk round-trip.
func compileSkeleton(t *testing.T, n int) *compiler.Compiled {
	t.Helper()
	c := workloads.QFTSweep(n)
	cfg := machine.DefaultConfig(c.NumQubits)
	cfg.Artifacts = artifact.New(4) // keep the Shared cache out of it
	m, err := machine.NewForCircuit(c, 2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.CompileSkeleton(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func fpOf(b byte) artifact.Fingerprint {
	var fp artifact.Fingerprint
	fp[0] = b
	return fp
}

// The store's reason to exist: what comes back from disk is structurally
// identical to what the compiler produced — for a concrete circuit and
// for a parameterized skeleton with live ParamSlots.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for name, cp := range map[string]*compiler.Compiled{
		"ghz":      compileGHZ(t, 4),
		"skeleton": compileSkeleton(t, 4),
	} {
		got, err := store.Decode(store.Encode(cp))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Errorf("%s: decoded artifact differs from compiled original", name)
		}
	}
}

// Synthetic edge shapes the compiler doesn't currently emit but the
// format promises to preserve: non-nil Symbols, empty-vs-nil slices, and
// negative/extreme scalar values.
func TestRoundTripEdgeShapes(t *testing.T) {
	cases := map[string]*compiler.Compiled{
		"empty": {},
		"symbols": {
			Programs: []*isa.Program{{
				Instrs:  []isa.Instr{{Op: isa.OpHALT, Rd: 1, Rs1: 2, Rs2: 3, Imm: -7}},
				Symbols: map[string]int{"loop": 4, "end": -1},
			}},
		},
		"empty-inner": {
			Programs: []*isa.Program{{}},
			Tables:   [][]chip.TableEntry{nil, {}},
			Mapping:  []int{},
		},
		"values": {
			Tables: [][]chip.TableEntry{{
				{Role: chip.RoleSingle, Kind: circuit.RZ, Param: -3.14159, Qubit: 7, Partner: -1, Channel: 2, Sym: "theta0"},
			}},
			BitOwner:   []int{0, 3, -1},
			MemBytes:   1 << 20,
			Mapping:    []int{3, 2, 1, 0},
			ParamSlots: []compiler.ParamSlot{{Ctrl: 1, Index: 0, Sym: "theta0"}},
		},
	}
	for name, cp := range cases {
		got, err := store.Decode(store.Encode(cp))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Errorf("%s: round trip altered the artifact:\n got %+v\nwant %+v", name, got, cp)
		}
	}
}

// Encoding is canonical: the same artifact always produces the same
// bytes (content addressing rewrites files in place on re-spill).
func TestEncodeDeterministic(t *testing.T) {
	cp := &compiler.Compiled{
		Programs: []*isa.Program{{Symbols: map[string]int{"a": 1, "b": 2, "c": 3, "d": 4}}},
	}
	first := store.Encode(cp)
	for i := 0; i < 8; i++ {
		if string(store.Encode(cp)) != string(first) {
			t.Fatal("two encodings of one artifact differ")
		}
	}
}

func TestPutGetAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp := compileSkeleton(t, 4)
	fp := fpOf(1)
	if err := s.Put(fp, cp); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Error("same-process Get differs from Put")
	}

	// The restart: a brand-new Store over the same directory serves the
	// artifact — that is the whole point of the spill tier.
	s2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened store indexed %d artifacts, want 1", s2.Len())
	}
	got2, err := s2.Get(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, cp) {
		t.Error("post-reopen Get differs from pre-restart Put")
	}
	if _, err := s2.Get(fpOf(9)); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("absent key: got %v, want ErrNotFound", err)
	}
}

// The byte budget is enforced by evicting least-recently-written files,
// and the artifact just written is never its own victim.
func TestGCBoundsBytes(t *testing.T) {
	cp := compileGHZ(t, 4)
	one := int64(len(store.Encode(cp)))
	dir := t.TempDir()
	s, err := store.Open(dir, 3*one)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 8; i++ {
		if err := s.Put(fpOf(i), cp); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 3*one {
		t.Errorf("store holds %d bytes, budget %d", st.Bytes, 3*one)
	}
	if st.Evictions == 0 {
		t.Error("GC evicted nothing despite exceeding the budget")
	}
	// The newest write must have survived; the oldest must be gone.
	if _, err := s.Get(fpOf(7)); err != nil {
		t.Errorf("newest artifact evicted: %v", err)
	}
	if _, err := s.Get(fpOf(0)); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("oldest artifact survived a full GC cycle: %v", err)
	}

	// A budget smaller than a single artifact still persists the latest
	// write — the just-written file is exempt from its own GC.
	tiny, err := store.Open(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.Put(fpOf(1), cp); err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Get(fpOf(1)); err != nil {
		t.Errorf("oversized artifact did not persist: %v", err)
	}
}

// A corrupted file is rejected with ErrCorrupt and dropped from the
// store; it never decodes into a wrong artifact.
func TestCorruptFileDropped(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	fp := fpOf(2)
	if err := s.Put(fp, compileGHZ(t, 4)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp.String()+".art")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(fp); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("bit-flipped file: got %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt file was not removed")
	}
	if st := s.Stats(); st.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
	// A truncated file fails the same way.
	fp2 := fpOf(3)
	if err := s.Put(fp2, compileGHZ(t, 4)); err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, fp2.String()+".art")
	if err := os.Truncate(path2, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(fp2); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("truncated file: got %v, want ErrCorrupt", err)
	}
}

// A version-bumped file — a store written by a future encoding — is
// rejected outright rather than misparsed. The checksum is recomputed so
// the failure is the version check, not the integrity check.
func TestFutureVersionRejected(t *testing.T) {
	data := store.Encode(&compiler.Compiled{})
	body := data[:len(data)-sha256.Size]
	body[8]++ // little-endian version word sits after the 8-byte magic
	sum := sha256.Sum256(body)
	bumped := append(append([]byte(nil), body...), sum[:]...)
	if _, err := store.Decode(bumped); !errors.Is(err, store.ErrCorrupt) {
		t.Fatalf("future version: got %v, want ErrCorrupt", err)
	}
}

// Open ignores files that aren't well-formed artifact names and never
// trips over them later.
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README", "short.art", "spill-123.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("indexed %d foreign files as artifacts", s.Len())
	}
}

// Concurrent spills, restores, and evictions on one store: the -race
// battery for the persistence tier. Correctness bar: no data race, no
// panic, and every successful Get decodes a structurally valid artifact.
func TestConcurrentSpillRestoreEviction(t *testing.T) {
	cp := compileGHZ(t, 4)
	one := int64(len(store.Encode(cp)))
	s, err := store.Open(t.TempDir(), 4*one) // tight budget: evictions race the Gets
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				fp := fpOf(byte(i % 10))
				if w%2 == 0 {
					if err := s.Put(fp, cp); err != nil {
						t.Errorf("Put: %v", err)
					}
				} else if got, ok := s.Load(fp); ok {
					if len(got.Programs) != len(cp.Programs) {
						t.Error("restored artifact is malformed")
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// The store under the cache: GetOrCompile spills compiles and restores
// them after a Clear (the in-process model of a restart) with zero fresh
// compiles — the contract the serve-level crash/restart test re-proves
// over HTTP.
func TestCacheSpillRestore(t *testing.T) {
	s, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := artifact.New(8)
	cache.SetStore(s)

	want := compileGHZ(t, 4)
	fp := fpOf(5)
	compiles := 0
	compile := func() (*compiler.Compiled, error) { compiles++; return want, nil }

	if _, hit, err := cache.GetOrCompile(fp, compile); err != nil || hit {
		t.Fatalf("cold GetOrCompile: hit=%v err=%v", hit, err)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Spills != 1 || st.StoreMisses != 1 {
		t.Fatalf("after compile: %+v (want 1 miss, 1 spill, 1 store miss)", st)
	}

	cache.Clear() // the restart: memory gone, disk and attachment persist
	got, hit, err := cache.GetOrCompile(fp, compile)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("restore from store did not report a hit")
	}
	if compiles != 1 {
		t.Fatalf("restart recompiled: %d compiles, want 1", compiles)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("restored artifact differs from the compiled original")
	}
	st := cache.Stats()
	if st.Misses != 0 {
		t.Errorf("restore charged %d misses, want 0 (misses must equal compiles)", st.Misses)
	}
	if st.StoreHits != 1 || st.Hits != 1 {
		t.Errorf("restore counters: %+v (want hits=1, store_hits=1)", st)
	}

	// Get (the probe path the service uses) restores too.
	cache.Clear()
	if _, ok := cache.Get(fp); !ok {
		t.Error("Get did not restore from the store after Clear")
	}

	// Detached store: a Clear is now genuinely cold.
	cache.SetStore(nil)
	cache.Clear()
	if _, ok := cache.Get(fp); ok {
		t.Error("detached store still served a restore")
	}
}

// Spill failures are best-effort: the request still succeeds, the error
// is counted, nothing else changes.
func TestSpillErrorIsNonFatal(t *testing.T) {
	cache := artifact.New(8)
	cache.SetStore(failingStore{})
	want := &compiler.Compiled{}
	cp, _, err := cache.GetOrCompile(fpOf(1), func() (*compiler.Compiled, error) { return want, nil })
	if err != nil || cp != want {
		t.Fatalf("compile through failing store: cp=%v err=%v", cp, err)
	}
	if st := cache.Stats(); st.SpillErrors != 1 || st.Spills != 0 {
		t.Errorf("spill-error counters: %+v", st)
	}
}

type failingStore struct{}

func (failingStore) Load(artifact.Fingerprint) (*compiler.Compiled, bool) { return nil, false }
func (failingStore) Save(artifact.Fingerprint, *compiler.Compiled) error {
	return fmt.Errorf("disk on fire")
}

// Concurrent GetOrCompile through a cache with a store attached, racing
// Clear: the restart-warm machinery itself must be race-free.
func TestCacheStoreConcurrency(t *testing.T) {
	s, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := artifact.New(4)
	cache.SetStore(s)
	want := compileGHZ(t, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				fp := fpOf(byte(i % 6))
				switch w % 3 {
				case 0:
					cp, _, err := cache.GetOrCompile(fp, func() (*compiler.Compiled, error) { return want, nil })
					if err != nil || cp == nil {
						t.Errorf("GetOrCompile: %v", err)
					}
				case 1:
					cache.Get(fp)
				default:
					if i%10 == 0 {
						cache.Clear()
					}
					cache.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
}
