package machine

import (
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
)

// feedForwardCircuit builds a 9-qubit dynamic circuit that exercises every
// collective lowering shape: single-bit fetches (repeated, so the
// broadcast tree grows past the owner), multi-bit parity gathers spanning
// several owners (the XOR relay chain), and plain local conditions.
func feedForwardCircuit() *circuit.Circuit {
	c := circuit.New(9)
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	for q := 0; q < 6; q++ {
		c.MeasureInto(q, q)
	}
	// Single remote bit, consumed twice by different far-away actors: the
	// second consumer should find a nearer holder than the owner.
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{0}, Parity: 1}, 8)
	c.CondGate(circuit.Z, circuit.Condition{Bits: []int{0}, Parity: 1}, 7)
	// Multi-owner parity gathers: relay chains of length 4 and 2.
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{0, 1, 2, 3}, Parity: 1}, 6)
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{2, 4}, Parity: 0}, 8)
	// Mixed local + remote: actor 5 owns bit 5.
	c.CondGate(circuit.Z, circuit.Condition{Bits: []int{5, 1}, Parity: 1}, 5)
	for q := 6; q < 9; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// runCollective is runFull with Config.Collective set.
func runCollective(t *testing.T, c *circuit.Circuit, meshW, meshH int, collective string, backend BackendKind, seed int64) (Result, []int) {
	t.Helper()
	cfg := DefaultConfig(c.NumQubits)
	cfg.Backend = backend
	cfg.Seed = seed
	cfg.Collective = collective
	m, err := NewForCircuit(c, meshW, meshH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Violations != 0 || res.Misalignments != 0 || res.Overlaps != 0 {
		t.Fatalf("collective run unhealthy: %+v", res)
	}
	bits, err := m.ReadBits()
	if err != nil {
		t.Fatal(err)
	}
	return res, bits
}

// TestCollectiveLoweringEquivalence pins the semantic contract of
// Options.Collective: for the same circuit, seed and backend, the
// collective-aware lowering produces exactly the bits the legacy star
// distribution produces — the relay chains and nearest-holder fetches
// move the same values, just over fewer and shorter paths.
func TestCollectiveLoweringEquivalence(t *testing.T) {
	c := feedForwardCircuit()
	for _, backend := range []BackendKind{BackendStateVec, BackendSeeded} {
		for seed := int64(1); seed <= 5; seed++ {
			_, _, legacy := runFull(t, c, 3, 3, nil, backend, seed)
			res, coll := runCollective(t, c, 3, 3, "auto", backend, seed)
			for b := range legacy {
				if legacy[b] != coll[b] {
					t.Fatalf("backend %d seed %d: bit %d: legacy %d, collective %d",
						backend, seed, b, legacy[b], coll[b])
				}
			}
			if res.Net.CollectiveOps != 1 {
				t.Fatalf("expected 1 collective op (the digest reduce), got %d", res.Net.CollectiveOps)
			}
			// The digest phase self-checks against the host fold inside Run;
			// verify the exposed value against the bits we read out too.
			var want uint32
			for b, v := range coll {
				want += uint32(v&1) << uint(b%24)
			}
			if res.CollectiveDigest != want {
				t.Fatalf("digest %#x, bits fold to %#x", res.CollectiveDigest, want)
			}
			if res.CollectiveCycles <= 0 {
				t.Fatal("digest reduce reported zero cycles")
			}
		}
	}
}

// TestCollectiveLongRangeCNOT re-runs the Fig. 14 dual-rail flow with the
// collective lowering on every schedule name: the target must still flip,
// whatever schedule the digest phase uses.
func TestCollectiveLongRangeCNOT(t *testing.T) {
	logical := circuit.New(4)
	logical.X(0)
	logical.CNOT(0, 3)
	logical.MeasureInto(0, 0)
	logical.MeasureInto(3, 1)
	phys, err := circuit.DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range network.CollScheduleNames() {
		_, bits := runCollective(t, phys, 4, 2, sched, BackendStateVec, 3)
		if bits[0] != 1 || bits[1] != 1 {
			t.Fatalf("schedule %s: long-range CNOT wrong: %v", sched, bits[:2])
		}
	}
}

// TestCollectiveFingerprint pins the cache-key semantics: the lowering
// toggle is part of the compile fingerprint (keyVersion 6), but the
// schedule *name* is runtime configuration — every schedule shares one
// artifact, and internal/service separates their replica pools instead.
func TestCollectiveFingerprint(t *testing.T) {
	c := feedForwardCircuit()
	cfg := DefaultConfig(c.NumQubits)
	off, err := KeyFor(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Collective = "ring"
	ring, err := KeyFor(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Collective = "tree"
	tree, err := KeyFor(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off == ring {
		t.Fatal("collective on/off share a fingerprint")
	}
	if ring != tree {
		t.Fatal("collective schedules must share the compiled artifact")
	}
}

// TestCollectiveBadSchedule pins that an unknown schedule name fails the
// run with the parser's error instead of silently running legacy.
func TestCollectiveBadSchedule(t *testing.T) {
	c := circuit.New(2)
	c.H(0).MeasureInto(0, 0)
	cfg := DefaultConfig(c.NumQubits)
	cfg.Collective = "bogus"
	m, err := NewForCircuit(c, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("bad collective schedule did not error")
	}
}
