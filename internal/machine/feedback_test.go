package machine

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
)

// starCircuit is the adversarial placement workload: every data qubit
// CNOTs into one hub, so the hub's links congest under finite bandwidth.
func starCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	hub := n - 1
	for round := 0; round < 3; round++ {
		for q := 0; q < n-1; q++ {
			c.CNOT(q, hub)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func contendedConfig(n int) Config {
	cfg := DefaultConfig(n)
	cfg.Backend = BackendSeeded
	cfg.Seed = 1
	cfg.Net.LinkSerialization = 4
	return cfg
}

// measuredFeedback runs one shot under the given mapping and harvests its
// congestion digest (plus the measured stall, for never-worse checks).
func measuredFeedback(t *testing.T, c *circuit.Circuit, cfg Config, mapping []int) (*compiler.Feedback, int64) {
	t.Helper()
	m, err := NewForCircuit(c, cfg.Net.MeshW, cfg.Net.MeshH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.CompileFresh(c, mapping, m.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunShots(1)
	if err != nil {
		t.Fatal(err)
	}
	return HarvestFeedback(rs), int64(rs[0].Net.TotalStall())
}

// TestRePlaceDeterministic: identical feedback must yield the identical
// re-placed mapping and measured stall — the property the service's
// worker-count-independent re-placement rests on.
func TestRePlaceDeterministic(t *testing.T) {
	c := starCircuit(9)
	cfg := contendedConfig(9)
	fb, _ := measuredFeedback(t, c, cfg, nil)
	m1, s1, err := RePlace(c, cfg, nil, fb)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := RePlace(c, cfg, nil, fb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) || s1 != s2 {
		t.Fatalf("RePlace not deterministic: (%v, %d) vs (%v, %d)", m1, s1, m2, s2)
	}
}

// TestRePlaceNeverMeasurablyWorse: the returned mapping's measured stall
// must not exceed the incumbent's — the incumbent is candidate zero and
// only strict improvements are accepted.
func TestRePlaceNeverMeasurablyWorse(t *testing.T) {
	c := starCircuit(9)
	cfg := contendedConfig(9)
	fb, incumbentStall := measuredFeedback(t, c, cfg, nil)
	if incumbentStall == 0 {
		t.Fatal("star workload produced no stall — contention model off?")
	}
	mapping, stall, err := RePlace(c, cfg, nil, fb)
	if err != nil {
		t.Fatal(err)
	}
	if stall > incumbentStall {
		t.Fatalf("re-place selected stall %d above incumbent %d", stall, incumbentStall)
	}
	// The reported stall must be real: re-measure the returned mapping.
	_, remeasured := measuredFeedback(t, c, cfg, mapping)
	if remeasured != stall {
		t.Fatalf("reported stall %d != re-measured %d", stall, remeasured)
	}
}

// TestRePlaceEmptyFeedbackKeepsIncumbent: with no stall signal there are
// no candidates beyond the incumbent, so the prior mapping comes back.
func TestRePlaceEmptyFeedbackKeepsIncumbent(t *testing.T) {
	c := starCircuit(6)
	cfg := contendedConfig(6)
	cfg.Net.LinkSerialization = 0 // contention off: probes read zero stall
	prior := []int{2, 1, 0, 3, 5, 4}
	mapping, stall, err := RePlace(c, cfg, prior, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stall != 0 {
		t.Fatalf("contention-free probe reported stall %d", stall)
	}
	if !reflect.DeepEqual(mapping, prior) {
		t.Fatalf("empty feedback changed the mapping: %v -> %v", prior, mapping)
	}
}

// TestHarvestFeedback: the bridge from shot results to the compiler's
// digest sums stalls across shots and keeps the max utilization.
func TestHarvestFeedback(t *testing.T) {
	c := starCircuit(9)
	cfg := contendedConfig(9)
	m, err := NewForCircuit(c, cfg.Net.MeshW, cfg.Net.MeshH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunShots(3)
	if err != nil {
		t.Fatal(err)
	}
	fb := HarvestFeedback(rs)
	if fb.Shots != 3 {
		t.Fatalf("harvested %d shots, want 3", fb.Shots)
	}
	var want int64
	for _, r := range rs {
		want += int64(r.Net.TotalStall())
	}
	if fb.TotalStall != want {
		t.Fatalf("TotalStall %d, want %d", fb.TotalStall, want)
	}
	if want > 0 && len(fb.Links) == 0 {
		t.Fatal("stall recorded but no link attribution")
	}
}
