package machine

import (
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
	"dhisq/internal/sim"
)

// runBits compiles, loads and runs c on a fresh machine built from cfg and
// returns the public classical bits, failing the test on any timing
// violation.
func runBits(t *testing.T, c *circuit.Circuit, cfg Config, seed int64) []int {
	t.Helper()
	cfg.Seed = seed
	w, h := network.NearSquareMesh(cfg.TotalQubits(c.NumQubits))
	m, err := NewForCircuit(c, w, h, cfg)
	if err != nil {
		t.Fatalf("NewForCircuit: %v", err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("machine did not halt")
	}
	if res.Misalignments != 0 || res.Overlaps != 0 || res.Inversions != 0 {
		t.Fatalf("timing violations: misalign=%d overlaps=%d inversions=%d",
			res.Misalignments, res.Overlaps, res.Inversions)
	}
	bits, err := m.ReadBits()
	if err != nil {
		t.Fatalf("ReadBits: %v", err)
	}
	return bits
}

// TestRemoteGateTruthTable runs every teleported gate construction end to
// end through the machine — EPR generation, herald traffic, feed-forward
// corrections — on computational-basis inputs where the outcome is
// deterministic, on both simulation backends and both placement policies.
func TestRemoteGateTruthTable(t *testing.T) {
	for _, backend := range []BackendKind{BackendStateVec, BackendStabilizer} {
		for _, pol := range []string{"rowmajor", "interaction"} {
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					for _, gate := range []string{"cnot", "cz-conj", "swap"} {
						c := circuit.New(2)
						if a == 1 {
							c.X(0)
						}
						if b == 1 {
							c.X(1)
						}
						switch gate {
						case "cnot":
							c.CNOT(0, 1)
						case "cz-conj": // H(1) CZ H(1) == CNOT(0,1)
							c.H(1)
							c.CZ(0, 1)
							c.H(1)
						case "swap":
							c.SWAP(0, 1)
						}
						c.MeasureNew(0)
						c.MeasureNew(1)
						var want0, want1 int
						if gate == "swap" {
							want0, want1 = b, a
						} else {
							want0, want1 = a, a^b
						}
						cfg := DefaultConfig(2)
						cfg.Chips = 2
						cfg.Backend = backend
						cfg.Placement = pol
						for seed := int64(1); seed <= 4; seed++ {
							bits := runBits(t, c, cfg, seed)
							if bits[0] != want0 || bits[1] != want1 {
								t.Fatalf("backend=%d pol=%s %s a=%d b=%d seed=%d: bits %d%d, want %d%d",
									backend, pol, gate, a, b, seed, bits[0], bits[1], want0, want1)
							}
						}
					}
				}
			}
		}
	}
}

// TestRemoteGHZAcrossChips entangles qubits spread over 2 and 3 chips into
// a GHZ state and checks the defining correlation shot by shot: all public
// bits agree, and both outcomes appear over the shot stream.
func TestRemoteGHZAcrossChips(t *testing.T) {
	for _, backend := range []BackendKind{BackendStateVec, BackendStabilizer} {
		for _, chips := range []int{2, 3} {
			n := 6
			c := circuit.New(n)
			c.H(0)
			for q := 1; q < n; q++ {
				c.CNOT(q-1, q)
			}
			for q := 0; q < n; q++ {
				c.MeasureNew(q)
			}
			cfg := DefaultConfig(n)
			cfg.Chips = chips
			cfg.Backend = backend
			seen := map[int]int{}
			for seed := int64(1); seed <= 40; seed++ {
				bits := runBits(t, c, cfg, seed)
				if len(bits) != n {
					t.Fatalf("chips=%d: %d public bits, want %d", chips, len(bits), n)
				}
				for q := 1; q < n; q++ {
					if bits[q] != bits[0] {
						t.Fatalf("backend=%d chips=%d seed=%d: GHZ correlation broken: %v", backend, chips, seed, bits)
					}
				}
				seen[bits[0]]++
			}
			if seen[0] == 0 || seen[1] == 0 {
				t.Fatalf("backend=%d chips=%d: GHZ outcomes not both observed: %v", backend, chips, seen)
			}
		}
	}
}

// TestSingleChipConfigByteIdentical proves Chips=1 is the degenerate case:
// it must produce the identical artifact fingerprint and the identical
// controller programs as the legacy Chips=0 config.
func TestSingleChipConfigByteIdentical(t *testing.T) {
	c := circuit.New(4)
	c.H(0).CNOT(0, 1).CNOT(1, 2).CNOT(2, 3)
	for q := 0; q < 4; q++ {
		c.MeasureNew(q)
	}
	base := DefaultConfig(4)
	one := base
	one.Chips = 1

	k0, err := KeyFor(c, nil, base)
	if err != nil {
		t.Fatalf("KeyFor chips=0: %v", err)
	}
	k1, err := KeyFor(c, nil, one)
	if err != nil {
		t.Fatalf("KeyFor chips=1: %v", err)
	}
	if k0 != k1 {
		t.Fatalf("chips=1 fingerprint differs from chips=0: %s vs %s", k1, k0)
	}

	m0, err := NewForCircuit(c, 2, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewForCircuit(c, 2, 2, one)
	if err != nil {
		t.Fatal(err)
	}
	cp0, err := m0.CompileFresh(c, nil, m0.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	cp1, err := m1.CompileFresh(c, nil, m1.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cp0.Programs) != len(cp1.Programs) {
		t.Fatalf("program counts differ: %d vs %d", len(cp0.Programs), len(cp1.Programs))
	}
	for i := range cp0.Programs {
		a, b := cp0.Programs[i].Instrs, cp1.Programs[i].Instrs
		if len(a) != len(b) {
			t.Fatalf("controller %d: instruction counts differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("controller %d instr %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
	if cp1.PublicBits != 0 {
		t.Fatalf("chips=1 artifact has PublicBits=%d, want 0 (all public)", cp1.PublicBits)
	}
}

// TestRemoteGateStats checks the remote-gate accounting surfaces: the
// compile stats count cut gates, the run counts EPR pairs, and a
// single-chip run counts none.
func TestRemoteGateStats(t *testing.T) {
	c := circuit.New(4)
	c.H(0)
	c.CNOT(0, 2) // crosses the contiguous 2-chip boundary {0,1}|{2,3}
	c.CNOT(0, 1) // local
	for q := 0; q < 4; q++ {
		c.MeasureNew(q)
	}
	cfg := DefaultConfig(4)
	cfg.Chips = 2
	cfg.Backend = BackendStateVec
	w, h := network.NearSquareMesh(cfg.TotalQubits(4))
	m, err := NewForCircuit(c, w, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Stats.RemoteGates != 1 {
		t.Fatalf("RemoteGates = %d, want 1", cp.Stats.RemoteGates)
	}
	if cp.PublicBits != 4 {
		t.Fatalf("PublicBits = %d, want 4", cp.PublicBits)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.EPRPairs != 1 {
		t.Fatalf("EPRPairs = %d, want 1", res.EPRPairs)
	}

	single := DefaultConfig(4)
	single.Backend = BackendStateVec
	ms, err := NewForCircuit(c, 2, 2, single)
	if err != nil {
		t.Fatal(err)
	}
	cps, err := ms.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Load(cps); err != nil {
		t.Fatal(err)
	}
	ress, err := ms.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ress.EPRPairs != 0 || cps.Stats.RemoteGates != 0 {
		t.Fatalf("single-chip run counted EPR pairs (%d) or remote gates (%d)", ress.EPRPairs, cps.Stats.RemoteGates)
	}
}

// TestEPRLatencyShowsInMakespan: raising the EPR latency must not change
// results but must stretch the makespan of a remote-gate circuit.
func TestEPRLatencyShowsInMakespan(t *testing.T) {
	c := circuit.New(4)
	c.H(0)
	c.X(0)
	c.CNOT(0, 2)
	for q := 0; q < 4; q++ {
		c.MeasureNew(q)
	}
	run := func(lat int64) Result {
		cfg := DefaultConfig(4)
		cfg.Chips = 2
		cfg.EPRLatency = sim.Time(lat)
		cfg.Backend = BackendStateVec
		w, h := network.NearSquareMesh(cfg.TotalQubits(4))
		m, err := NewForCircuit(c, w, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := m.Compile(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(cp); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(40)
	slow := run(2000)
	if slow.Makespan <= fast.Makespan {
		t.Fatalf("EPR latency 2000 makespan %d not above latency 40 makespan %d", slow.Makespan, fast.Makespan)
	}
}

// TestChipsExceedQubitsRejected: a partition needs at least one data qubit
// per chip.
func TestChipsExceedQubitsRejected(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	cfg := DefaultConfig(2)
	cfg.Chips = 3
	w, h := network.NearSquareMesh(cfg.TotalQubits(2))
	if _, err := NewForCircuit(c, w, h, cfg); err == nil {
		t.Fatalf("3 chips on 2 qubits must be rejected")
	}
}
