package machine

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
)

// buildLoaded assembles a machine for c, compiles and loads it.
func buildLoaded(t *testing.T, c *circuit.Circuit, meshW, meshH int, cfg Config) *Machine {
	t.Helper()
	m, err := NewForCircuit(c, meshW, meshH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	return m
}

func cliffordCircuit() *circuit.Circuit {
	// 16 qubits forces the stabilizer backend under BackendAuto.
	n := 16
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func nonCliffordCircuit() *circuit.Circuit {
	// T gates + a conditioned correction: dense backend, feed-forward path.
	c := circuit.New(6)
	c.H(0).T(0).CNOT(0, 1).T(1).H(2).CNOT(2, 3)
	c.MeasureInto(3, 0)
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{0}, Parity: 1}, 4)
	c.T(4).CNOT(4, 5)
	for q := 0; q < 6; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

// run executes and snapshots everything the reset invariant promises:
// the aggregate result and the measured classical bits.
func runOnce(t *testing.T, m *Machine) (Result, []int) {
	t.Helper()
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	bits, err := m.ReadBits()
	if err != nil {
		t.Fatal(err)
	}
	return res, bits
}

// TestResetRerunBitIdentical is the satellite determinism check: for a
// Clifford and a non-Clifford workload, Reset + re-run yields a
// bit-identical Result (makespan, commits, gates, measured bits) to a
// freshly built machine with the same seed.
func TestResetRerunBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name         string
		c            *circuit.Circuit
		meshW, meshH int
	}{
		{"clifford", cliffordCircuit(), 4, 4},
		{"non-clifford", nonCliffordCircuit(), 3, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 99
			cfg := DefaultConfig(tc.c.NumQubits)
			cfg.Seed = seed

			m := buildLoaded(t, tc.c, tc.meshW, tc.meshH, cfg)
			res1, bits1 := runOnce(t, m)

			// Same machine, reset in place, same seed.
			m.Reset(seed)
			res2, bits2 := runOnce(t, m)

			// Fresh machine, same seed.
			fresh := buildLoaded(t, tc.c, tc.meshW, tc.meshH, cfg)
			res3, bits3 := runOnce(t, fresh)

			if !reflect.DeepEqual(res1, res2) {
				t.Fatalf("reset re-run result diverged:\n  first %+v\n  reset %+v", res1, res2)
			}
			if !reflect.DeepEqual(res1, res3) {
				t.Fatalf("reset machine diverged from fresh build:\n  reset %+v\n  fresh %+v", res1, res3)
			}
			if !reflect.DeepEqual(bits1, bits2) || !reflect.DeepEqual(bits1, bits3) {
				t.Fatalf("measured bits diverged: first %v reset %v fresh %v", bits1, bits2, bits3)
			}
			if res1.Makespan <= 0 || res1.Commits == 0 || res1.Gates == 0 {
				t.Fatalf("degenerate run: %+v", res1)
			}
		})
	}
}

// TestRunShotsMatchesFreshMachines checks the compile-once/reset-per-shot
// path against a fresh machine per shot with the same derived seed.
func TestRunShotsMatchesFreshMachines(t *testing.T) {
	c := cliffordCircuit()
	cfg := DefaultConfig(c.NumQubits)
	cfg.Seed = 5

	m := buildLoaded(t, c, 4, 4, cfg)
	results, err := m.RunShots(4)
	if err != nil {
		t.Fatal(err)
	}
	for k, res := range results {
		shotCfg := cfg
		shotCfg.Seed = DeriveSeed(cfg.Seed, k)
		fresh := buildLoaded(t, c, 4, 4, shotCfg)
		want, _ := runOnce(t, fresh)
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("shot %d: RunShots %+v != fresh machine %+v", k, res, want)
		}
	}
}

// TestDeriveSeed pins the stream's contract: shot 0 is the base seed, later
// shots are distinct and stable.
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(123, 0) != 123 {
		t.Fatal("shot 0 must use the base seed")
	}
	seen := map[int64]int{123: 0}
	for k := 1; k < 1000; k++ {
		s := DeriveSeed(123, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between shots %d and %d", prev, k)
		}
		seen[s] = k
		if s != DeriveSeed(123, k) {
			t.Fatal("derivation not stable")
		}
	}
}

// TestNewResolvesAuto pins the satellite fix: machine.New resolves
// BackendAuto to the seeded backend instead of silently falling through.
func TestNewResolvesAuto(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Net.MeshW, cfg.Net.MeshH = 2, 2
	m, err := New(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Backend != BackendSeeded {
		t.Fatalf("New left Backend=%v, want BackendSeeded", m.Cfg.Backend)
	}
}
