package machine

import (
	"testing"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/workloads"
)

// runFull compiles and runs a circuit on an identity-mapped meshW×meshH
// machine, failing the test on any wedge, chip error, timing violation,
// co-commitment misalignment, or qubit-occupancy overlap.
func runFull(t *testing.T, c *circuit.Circuit, meshW, meshH int, mapping []int, backend BackendKind, seed int64) (Result, *Machine, []int) {
	t.Helper()
	cfg := DefaultConfig(c.NumQubits)
	cfg.Backend = backend
	cfg.Seed = seed
	m, err := NewForCircuit(c, meshW, meshH, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.Compile(c, mapping)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(cp); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("machine did not halt")
	}
	if res.Violations != 0 {
		t.Fatalf("timing violations: %d", res.Violations)
	}
	if res.Misalignments != 0 {
		t.Fatalf("two-qubit co-commitment misalignments: %d (%v)", res.Misalignments, m.Chip.Violations)
	}
	if res.Overlaps != 0 {
		t.Fatalf("qubit occupancy overlaps: %d", res.Overlaps)
	}
	if res.Inversions != 0 {
		t.Fatalf("out-of-order backend applications: %d", res.Inversions)
	}
	if m.Chip.PendingHalves() != 0 {
		t.Fatalf("unmatched two-qubit halves: %d", m.Chip.PendingHalves())
	}
	bits := make([]int, c.NumBits)
	for b := range bits {
		v, err := m.ReadBit(cp, b)
		if err != nil {
			t.Fatalf("bit %d: %v", b, err)
		}
		bits[b] = v
	}
	return res, m, bits
}

func TestGHZThroughFullStack(t *testing.T) {
	// 3x3 mesh, 9 qubits, identity mapping. GHZ exercises 1q gates, chained
	// 2q gates with nearby sync, and measurement readout into memory.
	for seed := int64(1); seed <= 5; seed++ {
		c := workloads.GHZ(9)
		res, _, bits := runFull(t, c, 3, 3, nil, BackendStateVec, seed)
		for i := 1; i < 9; i++ {
			if bits[i] != bits[0] {
				t.Fatalf("seed %d: GHZ broken: %v", seed, bits)
			}
		}
		if res.Gates == 0 || res.Measurements != 9 {
			t.Fatalf("gates=%d meas=%d", res.Gates, res.Measurements)
		}
	}
}

func TestBVThroughFullStack(t *testing.T) {
	// Deterministic algorithm: the full stack must recover the secret.
	secret := func(i int) bool { return i%2 == 1 }
	c := workloads.BV(6, secret)
	_, _, bits := runFull(t, c, 3, 2, nil, BackendStateVec, 3)
	for i := 0; i < 5; i++ {
		want := 0
		if secret(i) {
			want = 1
		}
		if bits[i] != want {
			t.Fatalf("bit %d = %d, want %d", i, bits[i], want)
		}
	}
}

func TestAdderThroughFullStack(t *testing.T) {
	// 2-bit Cuccaro adder: 2+3=5, through real T gates (statevec backend).
	c := workloads.CuccaroAdder(2, 2, 3)
	_, _, bits := runFull(t, c, 3, 2, nil, BackendStateVec, 4)
	got := bits[0] | bits[1]<<1 | bits[2]<<2
	if got != 5 {
		t.Fatalf("adder through stack: 2+3 = %d", got)
	}
}

func TestDynamicLongRangeCNOTThroughFullStack(t *testing.T) {
	// The paper's Fig. 14 flow end to end: X on the control, long-range CNOT
	// over a dual-rail chain with measurements and parity feed-forward
	// (send/recv across controllers), then readout. Target must flip.
	logical := circuit.New(4)
	logical.X(0)
	logical.CNOT(0, 3)
	logical.MeasureInto(0, 0)
	logical.MeasureInto(3, 1)
	phys, err := circuit.DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		res, _, bits := runFull(t, phys, 4, 2, nil, BackendStateVec, seed)
		if bits[0] != 1 || bits[1] != 1 {
			t.Fatalf("seed %d: long-range CNOT wrong: %v", seed, bits[:2])
		}
		if res.RecvStall == 0 {
			t.Fatal("expected recv stalls from feed-forward messages")
		}
	}
}

func TestBarrierRegionSyncThroughFullStack(t *testing.T) {
	c := circuit.New(4)
	c.H(0).H(1).H(2).H(3)
	c.BarrierAll()
	c.CNOT(0, 1)
	c.CNOT(2, 3)
	c.BarrierAll()
	for q := 0; q < 4; q++ {
		c.MeasureInto(q, q)
	}
	res, m, _ := runFull(t, c, 2, 2, nil, BackendStateVec, 9)
	if res.Makespan == 0 {
		t.Fatal("zero makespan")
	}
	// Every router round must have completed (no half-collected bookings).
	for r := 0; r < m.Topo.NumRouters; r++ {
		router := m.Fab.Router(m.Topo.N + r)
		_ = router
	}
}

func TestStabilizerBackendLargeGHZ(t *testing.T) {
	// 64 qubits on an 8x8 mesh with the tableau backend.
	c := workloads.GHZ(64)
	_, _, bits := runFull(t, c, 8, 8, nil, BackendStabilizer, 11)
	for i := 1; i < 64; i++ {
		if bits[i] != bits[0] {
			t.Fatalf("large GHZ broken at %d", i)
		}
	}
}

func TestSeededBackendDeterminism(t *testing.T) {
	// Two runs with the same seed must produce identical makespans and bit
	// records — the property the Fig. 15 BISP-vs-baseline comparison needs.
	build := func() (Result, []int) {
		b, err := workloads.BuildScaled("qft_n30", 2)
		if err != nil {
			t.Fatal(err)
		}
		res, _, bits := runFull(t, b.Circuit, b.MeshW, b.MeshH, b.Mapping, BackendSeeded, 42)
		return res, bits
	}
	r1, b1 := build()
	r2, b2 := build()
	if r1.Makespan != r2.Makespan {
		t.Fatalf("nondeterministic makespan: %d vs %d", r1.Makespan, r2.Makespan)
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("bit %d differs across identical runs", i)
		}
	}
}

func TestScaledBenchmarksRunCleanly(t *testing.T) {
	// Every Fig. 15 benchmark (scaled down 16x) must run through the full
	// stack without violations, misalignments, or wedges.
	for _, name := range workloads.Fig15Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := workloads.BuildScaled(name, 16)
			if err != nil {
				t.Fatal(err)
			}
			backend := BackendSeeded
			if b.Circuit.IsClifford() {
				backend = BackendStabilizer
			}
			res, _, _ := runFull(t, b.Circuit, b.MeshW, b.MeshH, b.Mapping, backend, 7)
			if res.Makespan == 0 {
				t.Fatal("zero makespan")
			}
		})
	}
}

func TestCoCommitmentInvariantUnderFabricLatencies(t *testing.T) {
	// Stress the invariant with several different link latency settings:
	// two-qubit halves must land on the same cycle regardless.
	for _, lat := range []int64{1, 2, 5, 9} {
		c := workloads.GHZ(6)
		cfg := DefaultConfig(6)
		cfg.Backend = BackendStateVec
		cfg.Net.MeshW, cfg.Net.MeshH = 3, 2
		cfg.Net.NeighborLatency = lat
		m, err := New(cfg, 6)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := m.Compile(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Load(cp); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Misalignments != 0 {
			t.Fatalf("latency %d: %d misalignments", lat, res.Misalignments)
		}
		if res.Violations != 0 {
			t.Fatalf("latency %d: %d violations", lat, res.Violations)
		}
	}
}

func TestChipRejectsBadCodeword(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Net.MeshW, cfg.Net.MeshH = 2, 1
	m, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip.SetTable(0, []chip.TableEntry{})
	m.Chip.Commit(0, chip.PortXY, 5, 10)
	if len(m.Chip.Errs) == 0 {
		t.Fatal("expected table-range error")
	}
}

// TestCompileSkeletonStructuralSharing: every binding of a parameterized
// circuit shares the skeleton's structural fingerprint and its single
// cached compile, while the run-oriented compile paths reject unbound
// skeletons outright.
func TestCompileSkeletonStructuralSharing(t *testing.T) {
	c := circuit.New(2)
	c.RZSym(0, "a").RZSym(1, "b")
	c.MeasureInto(0, 0)
	c.MeasureInto(1, 1)
	cfg := DefaultConfig(2)
	cfg.Net.MeshW, cfg.Net.MeshH = 2, 1

	skelFP, err := StructuralKeyFor(c, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c.Bind(map[string]float64{"a": 0.5, "b": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := StructuralKeyFor(b1, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != skelFP {
		t.Fatal("binding changed the structural fingerprint")
	}
	full, err := KeyFor(b1, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full == skelFP {
		t.Fatal("full key collides with structural key")
	}

	m, err := NewForCircuit(c, 2, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compile(c, nil); err == nil {
		t.Fatal("Compile accepted an unbound skeleton")
	}
	if _, err := m.CompileFresh(c, nil, m.CompileOptions()); err == nil {
		t.Fatal("CompileFresh accepted an unbound skeleton")
	}
	skel, err := m.CompileSkeleton(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skel.ParamSlots) != 2 {
		t.Fatalf("skeleton recorded %d slots, want 2", len(skel.ParamSlots))
	}
	// A second skeleton compile is a cache hit (same artifact pointer).
	again, err := m.CompileSkeleton(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skel != again {
		t.Fatal("skeleton recompiled despite the structural cache entry")
	}
	// The bound artifact runs and honors the bound angles end to end.
	bound, err := skel.BindParams(map[string]float64{"a": 0.5, "b": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(bound); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
