package machine

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/network"
	"dhisq/internal/placement"
)

// RePlace closes the compile↔fabric loop for one circuit: given congestion
// feedback measured under the prior mapping (nil = identity), it generates
// stall-weighted candidate placements (placement.CongestionCandidates),
// probes each with a one-shot run, refines the winner by measured pairwise
// swaps, and returns the mapping with the lowest observed fabric stall
// alongside that stall count.
//
// The incumbent mapping is always candidate zero and ties keep the
// earliest candidate, so the result is never measurably worse than prior.
// Every step — candidate generation, probe order, swap order, strict-
// improvement acceptance — is deterministic, so identical feedback yields
// identical re-placed mappings (and therefore identical re-compiled
// programs) at any worker count.
//
// cfg must describe the machine the feedback was measured on (mesh shape,
// contention model, backend, seed). With contention disabled, or with
// empty feedback, the probe reads zero stall everywhere and the incumbent
// wins: RePlace degrades to a no-op rather than an error.
func RePlace(c *circuit.Circuit, cfg Config, prior []int, fb *compiler.Feedback) ([]int, int64, error) {
	topo, err := network.NewTopology(cfg.Net)
	if err != nil {
		return nil, 0, err
	}
	// Probes are single unbatched shots; lanes and event logging only cost.
	cfg.ShotLanes = 0
	cfg.LogEvents = false
	incumbent := prior
	if incumbent == nil {
		incumbent = make([]int, c.NumQubits)
		for q := range incumbent {
			incumbent[q] = q
		}
	}

	probe := func(mapping []int) (int64, error) {
		m, err := NewForCircuit(c, cfg.Net.MeshW, cfg.Net.MeshH, cfg)
		if err != nil {
			return 0, err
		}
		cp, err := m.CompileFresh(c, mapping, m.CompileOptions())
		if err != nil {
			return 0, err
		}
		if err := m.Load(cp); err != nil {
			return 0, err
		}
		rs, err := m.RunShots(1)
		if err != nil {
			return 0, err
		}
		return int64(rs[0].Net.TotalStall()), nil
	}

	candidates := [][]int{incumbent}
	if fb != nil && !fb.Empty() {
		more, err := placement.CongestionCandidates(c, topo, incumbent, fb.LinkLoads())
		if err != nil {
			return nil, 0, err
		}
		candidates = append(candidates, more...)
	}

	best, bestStall := -1, int64(0)
	for i, cand := range candidates {
		stall, err := probe(cand)
		if err != nil {
			return nil, 0, fmt.Errorf("machine: re-place probe %d: %w", i, err)
		}
		if best < 0 || stall < bestStall {
			best, bestStall = i, stall
		}
	}
	bestMap := append([]int(nil), candidates[best]...)
	if bestStall == 0 {
		return bestMap, 0, nil
	}

	// Measured swap descent: walk qubit pairs in fixed order, keep any swap
	// that strictly lowers the probed stall, and stop after a pass with no
	// improvement (or when the probe budget runs out). First-improvement in
	// a fixed order is deterministic.
	const maxPasses, maxProbes = 2, 512
	probes := 0
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for a := 0; a < c.NumQubits && probes < maxProbes; a++ {
			for b := a + 1; b < c.NumQubits && probes < maxProbes; b++ {
				bestMap[a], bestMap[b] = bestMap[b], bestMap[a]
				stall, err := probe(bestMap)
				probes++
				if err != nil {
					return nil, 0, fmt.Errorf("machine: re-place swap probe: %w", err)
				}
				if stall < bestStall {
					bestStall = stall
					improved = true
				} else {
					bestMap[a], bestMap[b] = bestMap[b], bestMap[a]
				}
			}
		}
		if !improved {
			break
		}
	}
	return bestMap, bestStall, nil
}

// HarvestFeedback folds a run's results into a Feedback digest — the
// bridge from machine.Result.Net back into the compiler's feedback types.
func HarvestFeedback(results []Result) *compiler.Feedback {
	fb := &compiler.Feedback{}
	for _, r := range results {
		fb.Absorb(r.Net, r.RouterUtilization)
	}
	return fb
}
