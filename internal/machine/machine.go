// Package machine assembles a complete Distributed-HISQ system: the
// simulation engine, the hybrid-topology fabric with its routers, one HISQ
// core per mesh position, and the quantum chip model — then loads compiled
// programs and runs them to completion. It is the top of the simulation
// stack that the experiments and the public API drive.
package machine

import (
	"fmt"

	"dhisq/internal/artifact"
	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/core"
	"dhisq/internal/network"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// BackendKind selects the quantum-state substrate.
type BackendKind int

const (
	// BackendAuto picks StateVec for small circuits, Stabilizer for Clifford
	// circuits, and Seeded otherwise.
	BackendAuto BackendKind = iota
	BackendStateVec
	BackendStabilizer
	BackendSeeded
)

// Config parameterizes a machine.
type Config struct {
	Net         network.Config
	Durations   circuit.Durations
	MeasLatency sim.Time
	Backend     BackendKind
	Seed        int64
	// LogEvents stores individual TELF events (disable for large runs;
	// counters are kept either way).
	LogEvents bool
	// Deadline bounds the run in cycles (0 = 4 billion cycles ≈ 17 s of
	// device time, effectively unbounded for our workloads).
	Deadline sim.Time
	// Placement names the placement policy the compiler's Place pass uses
	// for circuits submitted without an explicit mapping ("" = identity,
	// the legacy byte-identical behavior; see internal/placement). Part of
	// the compile fingerprint via CompileOptions.
	Placement string
	// Schedule names the scheduling policy the compiler's Schedule pass
	// uses ("" = fixed, the legacy byte-identical replay; see the schedule
	// registry in internal/compiler). Part of the compile fingerprint via
	// CompileOptions, exactly like Placement.
	Schedule string
	// Collective, when non-empty, names a network.CollSchedule ("naive",
	// "ring", "halving", "tree", "auto") and switches two things on at
	// once: the compiler's collective-aware feed-forward lowering
	// (compiler.Options.Collective — part of the compile fingerprint), and
	// a post-run digest phase where every controller's owned-bit digest is
	// reduced to controller 0 over the fabric with the named schedule
	// (Result.CollectiveDigest / CollectiveCycles). "" — the default — is
	// byte-identical legacy behavior. The schedule name itself is runtime
	// configuration, not compile input: internal/service keys replica
	// pools on it separately.
	Collective string
	// Chips splits the data qubits across this many chips (0 or 1 = the
	// single-chip legacy machine, byte-identical to before). A multi-chip
	// machine appends one communication qubit per chip after the data
	// qubits, sizes its backends and mesh for the total, and the compiler
	// teleports cross-chip two-qubit gates through the EPR resource
	// (DESIGN.md §13). Part of the compile fingerprint via CompileOptions.
	Chips int
	// EPRLatency is the cycle cost of one inter-chip EPR-pair generation
	// (0 = DefaultEPRLatency when Chips > 1). Part of the compile
	// fingerprint via CompileOptions.
	EPRLatency sim.Time
	// ShotLanes > 1 builds the chip backend as that many independent state
	// lanes: one event-simulation replay drives every lane, so a block of
	// ShotLanes shots costs one Run (see runner.RunBatched). Deliberately
	// not part of the compile fingerprint — lane count changes nothing
	// about the compiled artifact. 0 or 1 = the unbatched single substrate.
	ShotLanes int
	// Artifacts is the compiled-artifact cache Compile/CompileWith/
	// CompileSkeleton consult (nil = the process-wide artifact.Shared).
	// Injecting a private cache isolates cache accounting — the in-process
	// multi-shard cluster tests give each shard its own cache+store pair.
	// Deliberately not part of any fingerprint: which cache serves a
	// compile changes nothing about its output.
	Artifacts *artifact.Cache
}

// artifacts resolves the cache a machine compiles through.
func (cfg Config) artifacts() *artifact.Cache {
	if cfg.Artifacts != nil {
		return cfg.Artifacts
	}
	return artifact.Shared
}

// DefaultEPRLatency is the EPR-pair generation cost in cycles a multi-chip
// machine assumes when Config.EPRLatency is zero: 400 ns on the 4 ns grid —
// an optimistic-but-plausible heralded-entanglement figure, deliberately an
// order of magnitude above the two-qubit gate so remote gates are visibly
// expensive by default.
const DefaultEPRLatency sim.Time = 100

// effectiveEPRLatency resolves the EPR latency a machine built from cfg
// charges (0 for single-chip configs).
func (cfg Config) effectiveEPRLatency() sim.Time {
	switch {
	case cfg.Chips <= 1:
		return 0
	case cfg.EPRLatency > 0:
		return cfg.EPRLatency
	default:
		return DefaultEPRLatency
	}
}

// TotalQubits is the device qubit count a machine built from cfg for n data
// qubits carries: the data qubits plus one communication qubit per chip.
func (cfg Config) TotalQubits(n int) int {
	if cfg.Chips > 1 {
		return n + cfg.Chips
	}
	return n
}

// DefaultConfig sizes a machine for n qubits with the paper's constants.
func DefaultConfig(n int) Config {
	d := circuit.PaperDurations()
	return Config{
		Net:         network.DefaultConfig(n),
		Durations:   d,
		MeasLatency: d.Measure + 5,
		Backend:     BackendAuto,
		Seed:        1,
		LogEvents:   false,
	}
}

// Machine is an assembled system.
type Machine struct {
	Cfg   Config
	Eng   *sim.Engine
	Topo  *network.Topology
	Fab   *network.Fabric
	Ctrls []*core.Controller
	Chip  *chip.Model
	Log   *telf.Log

	numQubits int
	loaded    *compiler.Compiled
}

// New builds the fabric and controllers for the given qubit count.
//
// BackendAuto resolves to BackendSeeded here: the Auto rules need the
// circuit (qubit count for StateVec, the Clifford check for Stabilizer),
// which New does not have. Use NewForCircuit to get circuit-aware backend
// selection; direct callers of New get the timing-only seeded substrate
// unless they pass a concrete kind.
func New(cfg Config, numQubits int) (*Machine, error) {
	total := cfg.TotalQubits(numQubits)
	if cfg.Chips > 1 {
		if cfg.Chips > numQubits {
			return nil, fmt.Errorf("machine: %d chips exceed %d qubits (each chip needs at least one data qubit)", cfg.Chips, numQubits)
		}
		if cfg.Net.MeshW*cfg.Net.MeshH < total {
			// Backstop for callers that sized the mesh for the data qubits
			// only; the entry points (service, CLIs) resize identically up
			// front so fingerprints computed at admission match the machine.
			cfg.Net.MeshW, cfg.Net.MeshH = network.NearSquareMesh(total)
		}
	}
	topo, err := network.NewTopology(cfg.Net)
	if err != nil {
		return nil, err
	}
	if topo.N < 1 {
		return nil, fmt.Errorf("machine: empty mesh")
	}
	if cfg.Backend == BackendAuto {
		cfg.Backend = BackendSeeded
	}
	eng := sim.NewEngine()
	log := telf.NewLog()
	log.SetEnabled(cfg.LogEvents)
	fab := network.NewFabric(eng, topo, log)

	mkBackend := func(int) chip.Backend {
		var b chip.Backend
		switch cfg.Backend {
		case BackendStateVec:
			b = chip.NewStateVec(total, cfg.Seed)
		case BackendStabilizer:
			b = chip.NewStabilizer(total, cfg.Seed)
		default:
			b = chip.NewSeeded(cfg.Seed)
		}
		if cfg.Chips > 1 {
			if ca, ok := b.(chip.CommAware); ok {
				ca.SetCommFrom(numQubits)
			}
		}
		return b
	}
	var backend chip.Backend
	if cfg.ShotLanes > 1 {
		backend = chip.NewLanes(mkBackend, cfg.ShotLanes)
	} else {
		backend = mkBackend(0)
	}
	chipModel := chip.New(eng, backend, cfg.Durations, cfg.MeasLatency)
	chipModel.EPRLatency = cfg.effectiveEPRLatency()

	m := &Machine{
		Cfg: cfg, Eng: eng, Topo: topo, Fab: fab,
		Chip: chipModel, Log: log, numQubits: numQubits,
	}
	m.Ctrls = make([]*core.Controller, topo.N)
	for i := range m.Ctrls {
		cc := core.Config{ID: i, Ports: 4, QueueDepth: 1024, MemSize: 64 << 10, BurstBudget: 4096}
		m.Ctrls[i] = core.NewController(eng, cc, fab, chipModel, log)
		fab.Attach(i, m.Ctrls[i])
	}
	chipModel.SetDelivery(func(node, ch int, val uint32, at sim.Time) {
		t := at
		if now := eng.Now(); t < now {
			t = now
		}
		ctrl := m.Ctrls[node]
		eng.At(t, sim.PriDeliver, func() { ctrl.PushResult(ch, val, at) })
	})
	return m, nil
}

// ResolveBackend applies the BackendAuto rules for a circuit: dense
// state vector while it fits (≤14 qubits), stabilizer tableau for
// Clifford circuits, seeded outcome source otherwise. Non-Auto kinds
// pass through unchanged.
func ResolveBackend(c *circuit.Circuit, k BackendKind) BackendKind {
	return resolveBackendFor(c, k, c.NumQubits)
}

// resolveBackendFor is ResolveBackend with the device total (data + comm
// qubits) as the state-size criterion: a multi-chip expansion must not push
// a dense state vector past what fits.
func resolveBackendFor(c *circuit.Circuit, k BackendKind, total int) BackendKind {
	if k != BackendAuto {
		return k
	}
	switch {
	case total <= 14:
		return BackendStateVec
	case c.IsClifford():
		return BackendStabilizer
	default:
		return BackendSeeded
	}
}

// NewForCircuit builds a machine sized for a circuit with an explicit mesh
// shape, picking a backend per BackendAuto rules.
func NewForCircuit(c *circuit.Circuit, meshW, meshH int, cfg Config) (*Machine, error) {
	cfg.Net.MeshW, cfg.Net.MeshH = meshW, meshH
	cfg.Backend = resolveBackendFor(c, cfg.Backend, cfg.TotalQubits(c.NumQubits))
	return New(cfg, c.NumQubits)
}

// CompileOptions derives compiler options consistent with this machine.
func (m *Machine) CompileOptions() compiler.Options {
	opt := compiler.DefaultOptions(m.Topo.Root, m.Topo.N)
	opt.Durations = m.Cfg.Durations
	opt.MeasLatency = m.Cfg.MeasLatency
	opt.Placement = m.Cfg.Placement
	opt.Schedule = m.Cfg.Schedule
	opt.Collective = m.Cfg.Collective != ""
	if m.Cfg.Chips > 1 {
		opt.Chips = m.Cfg.Chips
		opt.EPRLatency = m.Cfg.effectiveEPRLatency()
	}
	return opt
}

// CompileOptionsFor derives the compiler options a machine built from cfg
// would use, constructing only the topology — not the fabric, controllers
// or chip. internal/service fingerprints submissions with it, so job
// admission never has to build a machine.
func CompileOptionsFor(cfg Config) (compiler.Options, error) {
	topo, err := network.NewTopology(cfg.Net)
	if err != nil {
		return compiler.Options{}, err
	}
	opt := compiler.DefaultOptions(topo.Root, topo.N)
	opt.Durations = cfg.Durations
	opt.MeasLatency = cfg.MeasLatency
	opt.Placement = cfg.Placement
	opt.Schedule = cfg.Schedule
	opt.Collective = cfg.Collective != ""
	if cfg.Chips > 1 {
		// Chips <= 1 stays zero so a Chips=1 config fingerprints — and
		// compiles — identically to the legacy single-chip machine.
		opt.Chips = cfg.Chips
		opt.EPRLatency = cfg.effectiveEPRLatency()
	}
	return opt, nil
}

// KeyFor is the shared-cache fingerprint Compile would use for a machine
// built from cfg.
func KeyFor(c *circuit.Circuit, mapping []int, cfg Config) (artifact.Fingerprint, error) {
	opt, err := CompileOptionsFor(cfg)
	if err != nil {
		return artifact.Fingerprint{}, err
	}
	return artifact.Key(c, mapping, cfg.Net, opt), nil
}

// StructuralKeyFor is the bind-invariant fingerprint CompileSkeleton would
// use for a machine built from cfg: every binding of one parameterized
// circuit shares it, so job admission can batch a whole sweep onto one
// compiled skeleton without building a machine.
func StructuralKeyFor(c *circuit.Circuit, mapping []int, cfg Config) (artifact.Fingerprint, error) {
	opt, err := CompileOptionsFor(cfg)
	if err != nil {
		return artifact.Fingerprint{}, err
	}
	return artifact.StructuralKey(c, mapping, cfg.Net, opt), nil
}

// Compile lowers a circuit for this machine, consulting the shared
// artifact cache: a repeat submission of the same (circuit, mapping,
// topology, options) tuple returns the cached per-controller binaries
// without recompiling. The returned artifact is shared — treat it as
// immutable, the same contract Load and the runner replicas already obey.
func (m *Machine) Compile(c *circuit.Circuit, mapping []int) (*compiler.Compiled, error) {
	return m.CompileWith(c, mapping, m.CompileOptions())
}

// CompileWith lowers a circuit with explicit compiler options (ablations
// toggle scheduling policies this way). The options are part of the cache
// fingerprint, so variants never alias each other's artifacts.
func (m *Machine) CompileWith(c *circuit.Circuit, mapping []int, opt compiler.Options) (*compiler.Compiled, error) {
	if err := rejectUnbound(c); err != nil {
		return nil, err
	}
	fp := artifact.Key(c, mapping, m.Cfg.Net, opt)
	cp, _, err := m.Cfg.artifacts().GetOrCompile(fp, func() (*compiler.Compiled, error) {
		return m.compile(c, mapping, opt)
	})
	return cp, err
}

// rejectUnbound keeps skeleton circuits out of the run-oriented compile
// paths: a table Param defaulting to 0 would silently execute as an
// angle-0 rotation. CompileSkeleton is the deliberate entry point.
func rejectUnbound(c *circuit.Circuit) error {
	if ub := c.UnboundParams(); len(ub) > 0 {
		return fmt.Errorf("machine: circuit has unbound parameters %v (Bind them, or compile via CompileSkeleton)", ub)
	}
	return nil
}

// CompileSkeleton lowers a parameterized circuit once under its
// bind-invariant structural fingerprint: the artifact is cached with the
// symbolic params elided from the key, so every binding of the skeleton —
// a whole angle sweep — shares one compilation. Patch the returned
// (shared, immutable) artifact per point with Compiled.BindParams; the
// result is byte-identical to a full compile of the bound circuit.
// Concrete circuits are legal too (the structural key then fixes every
// angle), so callers need not special-case parameter-free submissions.
func (m *Machine) CompileSkeleton(c *circuit.Circuit, mapping []int) (*compiler.Compiled, error) {
	opt := m.CompileOptions()
	fp := artifact.StructuralKey(c, mapping, m.Cfg.Net, opt)
	cp, _, err := m.Cfg.artifacts().GetOrCompile(fp, func() (*compiler.Compiled, error) {
		return m.compile(c, mapping, opt)
	})
	return cp, err
}

// compile runs the standard pass pipeline with this machine's topology —
// the entry point that lets the Place pass resolve non-identity placement
// policies (they need mesh distances, which the Windows interface hides).
func (m *Machine) compile(c *circuit.Circuit, mapping []int, opt compiler.Options) (*compiler.Compiled, error) {
	return compiler.NewPipeline().Run(&compiler.State{
		Circuit: c, Mapping: mapping, Topo: m.Topo, Windows: m.Fab, Opt: opt,
	})
}

// CompileFresh lowers a circuit without consulting the artifact cache.
// It exists for the paths whose meaning depends on paying the compile
// every time — runner.RunRebuild's legacy baseline and the cold side of
// cache benchmarks.
func (m *Machine) CompileFresh(c *circuit.Circuit, mapping []int, opt compiler.Options) (*compiler.Compiled, error) {
	if err := rejectUnbound(c); err != nil {
		return nil, err
	}
	return m.compile(c, mapping, opt)
}

// ArtifactKey is the shared-cache fingerprint Compile would use for this
// circuit and mapping on this machine.
func (m *Machine) ArtifactKey(c *circuit.Circuit, mapping []int) artifact.Fingerprint {
	return artifact.Key(c, mapping, m.Cfg.Net, m.CompileOptions())
}

// Load installs compiled programs and tables on every controller.
func (m *Machine) Load(cp *compiler.Compiled) error {
	if len(cp.Programs) != len(m.Ctrls) {
		return fmt.Errorf("machine: %d programs for %d controllers", len(cp.Programs), len(m.Ctrls))
	}
	for i, p := range cp.Programs {
		if cp.MemBytes > m.Ctrls[i].Cfg.MemSize {
			m.Ctrls[i] = core.NewController(m.Eng, core.Config{
				ID: i, Ports: 4, QueueDepth: 1024,
				MemSize: cp.MemBytes, BurstBudget: 4096,
			}, m.Fab, m.Chip, m.Log)
			m.Fab.Attach(i, m.Ctrls[i])
		}
		m.Ctrls[i].Load(p)
		m.Chip.SetTable(i, cp.Tables[i])
	}
	m.loaded = cp
	return nil
}

// Loaded returns the artifact installed by the last Load (nil before any).
func (m *Machine) Loaded() *compiler.Compiled { return m.loaded }

// Reset rewinds a loaded machine to its just-loaded state so the same
// compiled program can run again without rebuilding anything: the engine
// drains and its clock rewinds, every controller clears back to pc 0 with
// its program in place, the routers drop pending bookings, the TELF log
// empties, and the chip resets its quantum state with the given seed. No
// component is reallocated — this is the cheap per-shot path that
// RunShots and internal/runner are built on.
func (m *Machine) Reset(seed int64) {
	m.Eng.Reset()
	m.Log.Reset()
	m.Fab.Reset()
	m.Chip.Reset(seed)
	for _, c := range m.Ctrls {
		c.Reset()
	}
}

// Lanes returns the number of shot lanes this machine's backend carries
// (1 when unbatched).
func (m *Machine) Lanes() int {
	if m.Cfg.ShotLanes > 1 {
		return m.Cfg.ShotLanes
	}
	return 1
}

// ResetBatch is the batched-block counterpart of Reset: the engine,
// routers, log and controllers rewind identically, but lane l of the chip
// backend reseeds with seeds[l] so each lane replays the loaded program as
// an independent shot. Requires a machine built with Cfg.ShotLanes > 1.
func (m *Machine) ResetBatch(seeds []int64) error {
	m.Eng.Reset()
	m.Log.Reset()
	m.Fab.Reset()
	if err := m.Chip.ResetBatch(seeds); err != nil {
		return err
	}
	for _, c := range m.Ctrls {
		c.Reset()
	}
	return nil
}

// BatchMeas exposes the per-lane measurement records of the last batched
// run, in commit order (empty for unbatched machines).
func (m *Machine) BatchMeas() []chip.BatchMeas { return m.Chip.BatchMeas }

// DeriveSeed returns the backend seed for shot number `shot` of a run whose
// base seed is `base`. Shot 0 uses the base seed itself, so a one-shot run
// is bit-identical to the legacy build-run path; later shots draw from a
// SplitMix64 stream over (base, shot), so shot k is reproducible in
// isolation without replaying shots 0..k-1.
func DeriveSeed(base int64, shot int) int64 {
	if shot == 0 {
		return base
	}
	x := uint64(base) + uint64(shot)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// Result summarizes a run.
type Result struct {
	Makespan      sim.Time // latest controller end time (cycles)
	Halted        bool     // every controller reached halt
	Violations    uint64   // TCU timing violations across controllers
	Misalignments int      // two-qubit co-commitment failures (chip)
	Overlaps      int      // per-qubit occupancy overlaps (chip)
	Inversions    int      // out-of-timestamp-order backend applications (chip)
	SyncStall     sim.Time // total cycles spent paused at sync gates
	RecvStall     sim.Time
	// NetStall is the total queueing delay of controller-originated
	// traffic at busy links and router ports (0 unless the fabric's
	// contention model is enabled).
	NetStall     sim.Time
	Instructions uint64
	Commits      uint64
	Gates        uint64
	Measurements uint64
	// EPRPairs counts inter-chip EPR-pair generations (0 on single-chip
	// machines) — the remote-gate resource consumption of the run.
	EPRPairs uint64
	// Net snapshots the fabric's congestion counters for this run.
	Net network.CongestionStats
	// RouterUtilization is the busiest single router port's occupancy
	// divided by the makespan (0 when contention is disabled or the run
	// was empty).
	RouterUtilization float64
	// CollectiveDigest and CollectiveCycles report the post-run digest
	// reduction (Config.Collective): every controller contributes a digest
	// word of the classical bits it owns, reduced to controller 0 over the
	// fabric with the configured schedule and self-checked against the
	// host-side fold. Both zero when the phase is off or the run did not
	// halt.
	CollectiveDigest uint32
	CollectiveCycles sim.Time
}

// Run starts every controller and drives the engine until all halt (or the
// deadline passes). It returns the aggregate result and a descriptive error
// if the system wedged.
func (m *Machine) Run() (Result, error) {
	for _, c := range m.Ctrls {
		c.Start()
	}
	deadline := m.Cfg.Deadline
	if deadline <= 0 {
		deadline = 4_000_000_000
	}
	m.Eng.RunUntil(deadline)

	res := Result{Halted: true}
	for _, c := range m.Ctrls {
		if err := c.Err(); err != nil {
			return res, err
		}
		if !c.Halted() {
			res.Halted = false
		}
		if t := c.EndTime(); t > res.Makespan {
			res.Makespan = t
		}
		st := c.Stats
		res.Violations += st.Violations
		res.SyncStall += st.StallSync
		res.RecvStall += st.StallRecv
		res.NetStall += st.StallNet
		res.Instructions += st.Instrs
		res.Commits += st.Commits
	}
	if m.Cfg.Collective != "" && res.Halted {
		// The engine is drained (RunUntil advanced it to the deadline), so
		// the collective layer can step it further without foreign events
		// interleaving; Reset rewinds the clock for the next shot as usual.
		if err := m.reduceDigest(&res); err != nil {
			return res, err
		}
	}
	res.Net = m.Fab.Congestion()
	if res.Net.Enabled && res.Makespan > 0 {
		res.RouterUtilization = float64(res.Net.PortBusiest) / float64(res.Makespan)
	}
	res.Misalignments = len(m.Chip.Violations)
	res.Overlaps = m.Chip.Overlaps
	res.Inversions = m.Chip.OrderInversions
	res.Gates = m.Chip.Gates
	res.Measurements = m.Chip.Measurements
	res.EPRPairs = m.Chip.EPRPairs
	if len(m.Chip.Errs) > 0 {
		return res, m.Chip.Errs[0]
	}
	if !res.Halted {
		for _, c := range m.Ctrls {
			if !c.Halted() {
				return res, fmt.Errorf("machine: controller %d wedged (%s at pc=%d)", c.Cfg.ID, c.Blocked(), c.PC())
			}
		}
	}
	return res, nil
}

// reduceDigest is the post-run collective phase of Config.Collective:
// each controller contributes one digest word folding the classical bits
// it owns (position-salted so distinct outcomes yield distinct digests),
// and the fabric reduces the words to controller 0 with the configured
// schedule — real timestamped messages through the same links, ports and
// congestion counters as program traffic. The reduced value is
// self-checked against a host-side fold; a mismatch is a hard error, the
// same role the naive schedule plays as the collective layer's oracle.
func (m *Machine) reduceDigest(res *Result) error {
	sched, err := network.ParseCollSchedule(m.Cfg.Collective)
	if err != nil {
		return err
	}
	if m.loaded == nil {
		return nil
	}
	inputs := make([][]uint32, m.Topo.N)
	for i := range inputs {
		inputs[i] = []uint32{0}
	}
	for b, owner := range m.loaded.BitOwner {
		if owner < 0 {
			continue
		}
		mem := m.Ctrls[owner].ReadMem(4*b, 4)
		if mem == nil {
			return fmt.Errorf("machine: collective digest: bit %d address out of range", b)
		}
		inputs[owner][0] += (uint32(mem[0]) & 1) << uint(b%24)
	}
	parts := make([]int, m.Topo.N)
	for i := range parts {
		parts[i] = i
	}
	spec := network.CollSpec{
		Kind: network.CollReduce, Schedule: sched,
		Parts: parts, Root: 0, Width: 1, Op: network.ReduceSum,
	}
	cres, err := network.RunCollective(m.Fab, spec, inputs, m.Eng.Now())
	if err != nil {
		return fmt.Errorf("machine: collective digest: %w", err)
	}
	var want uint32
	for _, in := range inputs {
		want += in[0]
	}
	if got := cres.Values[0][0]; got != want {
		return fmt.Errorf("machine: collective digest mismatch: fabric %#x, host fold %#x", cres.Values[0][0], want)
	}
	res.CollectiveDigest = want
	res.CollectiveCycles = cres.Makespan()
	return nil
}

// RunCircuit is the one-call path: compile, load, run.
func RunCircuit(c *circuit.Circuit, meshW, meshH int, mapping []int, cfg Config) (Result, *Machine, error) {
	m, err := NewForCircuit(c, meshW, meshH, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	cp, err := m.Compile(c, mapping)
	if err != nil {
		return Result{}, nil, err
	}
	if err := m.Load(cp); err != nil {
		return Result{}, nil, err
	}
	res, err := m.Run()
	return res, m, err
}

// RunShots executes the loaded program n times on this machine — reset,
// run, repeat — deriving the shot-k backend seed from Cfg.Seed via
// DeriveSeed. The machine is reset before every shot including the first,
// so RunShots(n) is independent of whatever ran before it; shot results
// are returned in shot order. On error the shots completed so far are
// returned alongside it.
func (m *Machine) RunShots(n int) ([]Result, error) {
	if m.loaded == nil {
		return nil, fmt.Errorf("machine: RunShots before Load")
	}
	out := make([]Result, 0, n)
	for k := 0; k < n; k++ {
		m.Reset(DeriveSeed(m.Cfg.Seed, k))
		res, err := m.Run()
		if err != nil {
			return out, fmt.Errorf("machine: shot %d: %w", k, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ReadBit reads classical bit b from its owner's data memory after a run.
func (m *Machine) ReadBit(cp *compiler.Compiled, b int) (int, error) {
	owner := cp.BitOwner[b]
	if owner < 0 {
		return 0, fmt.Errorf("machine: bit %d was never measured", b)
	}
	mem := m.Ctrls[owner].ReadMem(4*b, 4)
	if mem == nil {
		return 0, fmt.Errorf("machine: bit %d address out of range", b)
	}
	return int(mem[0]) & 1, nil
}

// ReadBits reads every public classical bit of the loaded program after a
// run. Bits that were never measured (owner < 0) read as 0. On multi-chip
// artifacts the teleport-correction bits after Compiled.PublicBits are
// machine-internal and excluded, so the result has the same shape as a
// single-chip run of the pre-expansion circuit.
func (m *Machine) ReadBits() ([]int, error) {
	if m.loaded == nil {
		return nil, fmt.Errorf("machine: ReadBits before Load")
	}
	n := len(m.loaded.BitOwner)
	if pb := m.loaded.PublicBits; pb > 0 && pb < n {
		n = pb
	}
	bits := make([]int, n)
	for b, owner := range m.loaded.BitOwner[:n] {
		if owner < 0 {
			continue
		}
		mem := m.Ctrls[owner].ReadMem(4*b, 4)
		if mem == nil {
			return nil, fmt.Errorf("machine: bit %d address out of range", b)
		}
		bits[b] = int(mem[0]) & 1
	}
	return bits, nil
}
