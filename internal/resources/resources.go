// Package resources models the FPGA footprint of the HISQ microarchitecture
// (Table 1). We cannot re-synthesize the commercial DQCtrl bitstream, so
// this is a calibrated linear cost model — and the published numbers are in
// fact exactly linear in the channel count: both board rows decompose into a
// shared core base plus one event queue per channel:
//
//	base:        1747 LUTs, 1912 FFs, 33 BRAM blocks
//	event queue:   86 LUTs,  160 FFs, 1.5 BRAM blocks   (38 bit × 1024)
//
//	control board (28 ch): 1747+28·86 = 4155 LUTs, 1912+28·160 = 6392 FFs,
//	                        33+28·1.5 = 75 blocks
//	readout board  (8 ch): 1747+8·86 = 2435 LUTs, 1912+8·160 = 3192 FFs,
//	                        33+8·1.5 = 45 blocks
//
// which reproduces Table 1 row for row. The SyncU contributes 13 LUTs (§4.1)
// and is included in the base.
package resources

import "fmt"

// BRAMBlockKbit is the block size Table 1 reports (32 Kb per block).
const BRAMBlockKbit = 32

// Estimate is an FPGA resource footprint.
type Estimate struct {
	LUTs       int
	FFs        int
	BRAMBlocks float64
}

// Add sums two estimates.
func (e Estimate) Add(o Estimate) Estimate {
	return Estimate{e.LUTs + o.LUTs, e.FFs + o.FFs, e.BRAMBlocks + o.BRAMBlocks}
}

// Scale multiplies an estimate by n.
func (e Estimate) Scale(n int) Estimate {
	return Estimate{e.LUTs * n, e.FFs * n, e.BRAMBlocks * float64(n)}
}

// BRAMKbit returns the Block-RAM footprint in kilobits.
func (e Estimate) BRAMKbit() float64 { return e.BRAMBlocks * BRAMBlockKbit }

func (e Estimate) String() string {
	return fmt.Sprintf("%d LUTs, %d FFs, %.1f BRAM blocks (%.2f Mb)",
		e.LUTs, e.FFs, e.BRAMBlocks, e.BRAMKbit()/1024)
}

// SyncULUTs is the synchronization unit's footprint (§4.1: "SyncU consumes
// only 13 LUTs").
const SyncULUTs = 13

// CoreBase is the per-core cost excluding event queues: classical pipeline,
// decoder, timing manager, SyncU, MsgU, instruction/data memory.
func CoreBase() Estimate { return Estimate{LUTs: 1747, FFs: 1912, BRAMBlocks: 33} }

// refQueue is the Table 1 event queue: 38 bit × 1024 entries.
const (
	refQueueBits  = 38
	refQueueDepth = 1024
)

// EventQueue estimates one codeword event queue of the given width (bits)
// and depth (entries), scaling the calibrated 38×1024 reference: BRAM scales
// with capacity; LUTs/FFs scale with width (the datapath) and weakly with
// depth (the pointers).
func EventQueue(bits, depth int) Estimate {
	if bits <= 0 {
		bits = refQueueBits
	}
	if depth <= 0 {
		depth = refQueueDepth
	}
	widthScale := float64(bits) / refQueueBits
	capScale := float64(bits*depth) / (refQueueBits * refQueueDepth)
	return Estimate{
		LUTs:       int(86*widthScale + 0.5),
		FFs:        int(160*widthScale + 0.5),
		BRAMBlocks: 1.5 * capScale,
	}
}

// Board estimates a HISQ board with the given number of codeword channels
// and Table 1 queue geometry.
func Board(channels int) Estimate {
	return CoreBase().Add(EventQueue(refQueueBits, refQueueDepth).Scale(channels))
}

// ControlBoard is the §6.1 28-channel AWG board (8 XY + 20 Z).
func ControlBoard() Estimate { return Board(28) }

// ReadoutBoard is the §6.1 8-channel readout board (4 in + 4 out).
func ReadoutBoard() Estimate { return Board(8) }
