package resources

import (
	"strings"
	"testing"
)

func TestTable1Rows(t *testing.T) {
	cb := ControlBoard()
	if cb.LUTs != 4155 || cb.FFs != 6392 || cb.BRAMBlocks != 75 {
		t.Fatalf("control board = %+v", cb)
	}
	rb := ReadoutBoard()
	if rb.LUTs != 2435 || rb.FFs != 3192 || rb.BRAMBlocks != 45 {
		t.Fatalf("readout board = %+v", rb)
	}
	q := EventQueue(38, 1024)
	if q.LUTs != 86 || q.FFs != 160 || q.BRAMBlocks != 1.5 {
		t.Fatalf("event queue = %+v", q)
	}
}

func TestBRAMMegabits(t *testing.T) {
	// §6.1: "2.46 Mb of Block RAM" for the control board, 1.47 Mb readout
	// (with 32 Kb blocks: 75*32/1024 = 2.34, 45*32/1024 = 1.41 — the paper's
	// figures use a slightly larger effective block; we stay within 10%).
	cb := ControlBoard().BRAMKbit() / 1024
	if cb < 2.2 || cb > 2.6 {
		t.Fatalf("control board Mb = %g", cb)
	}
}

func TestQueueScaling(t *testing.T) {
	half := EventQueue(38, 512)
	if half.BRAMBlocks != 0.75 {
		t.Fatalf("half-depth queue BRAM = %g", half.BRAMBlocks)
	}
	wide := EventQueue(76, 1024)
	if wide.LUTs != 172 || wide.BRAMBlocks != 3 {
		t.Fatalf("double-width queue = %+v", wide)
	}
	def := EventQueue(0, 0)
	if def != EventQueue(38, 1024) {
		t.Fatal("zero geometry should default to the Table 1 queue")
	}
}

func TestArithmeticHelpers(t *testing.T) {
	a := Estimate{LUTs: 10, FFs: 20, BRAMBlocks: 1}
	b := a.Add(a).Scale(2)
	if b.LUTs != 40 || b.FFs != 80 || b.BRAMBlocks != 4 {
		t.Fatalf("arith = %+v", b)
	}
	if !strings.Contains(a.String(), "10 LUTs") {
		t.Fatalf("string = %q", a.String())
	}
}

func TestSyncUFootnote(t *testing.T) {
	if SyncULUTs != 13 {
		t.Fatal("§4.1: SyncU consumes only 13 LUTs")
	}
}
