package circuit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// WriteQASM renders the circuit as OpenQASM 2.0 (§6.4.2 benchmarks are
// OpenQASM programs). One quantum register q[n] is used; every classical bit
// becomes a one-bit register c<i>[1] because OpenQASM 2.0 conditions test
// whole registers. Parity conditions on self-inverse gates (X/Z/Y — the only
// conditioned gates our transforms emit) are decomposed into a chain of
// single-bit conditioned gates, which is XOR-equivalent.
func WriteQASM(c *Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for i := 0; i < c.NumBits; i++ {
		fmt.Fprintf(&b, "creg c%d[1];\n", i)
	}
	emit := func(prefix, body string) {
		b.WriteString(prefix)
		b.WriteString(body)
		b.WriteString(";\n")
	}
	for _, op := range c.Ops {
		body, err := qasmBody(op)
		if err != nil {
			return "", err
		}
		switch {
		case op.Cond == nil:
			emit("", body)
		case len(op.Cond.Bits) == 1:
			emit(fmt.Sprintf("if(c%d==%d) ", op.Cond.Bits[0], op.Cond.Parity), body)
		default:
			if op.Kind != X && op.Kind != Z && op.Kind != Y {
				return "", fmt.Errorf("circuit: cannot express parity condition on %s in QASM", op.Kind)
			}
			// X^(b0 xor b1 xor ...): chain per-bit conditionals; if Parity is
			// 0 the correction is inverted by one unconditional application.
			if op.Cond.Parity == 0 {
				emit("", body)
			}
			for _, bit := range op.Cond.Bits {
				emit(fmt.Sprintf("if(c%d==1) ", bit), body)
			}
		}
	}
	return b.String(), nil
}

func qasmBody(op Op) (string, error) {
	q := func(i int) string { return fmt.Sprintf("q[%d]", op.Qubits[i]) }
	switch op.Kind {
	case H, X, Y, Z, S, T, Reset:
		return fmt.Sprintf("%s %s", op.Kind, q(0)), nil
	case Sdg:
		return "sdg " + q(0), nil
	case Tdg:
		return "tdg " + q(0), nil
	case RX, RY, RZ:
		if op.Symbolic() {
			return fmt.Sprintf("%s(%s) %s", op.Kind, op.Sym, q(0)), nil
		}
		return fmt.Sprintf("%s(%.17g) %s", op.Kind, op.Param, q(0)), nil
	case CPhase:
		if op.Symbolic() {
			return fmt.Sprintf("cp(%s) %s,%s", op.Sym, q(0), q(1)), nil
		}
		return fmt.Sprintf("cp(%.17g) %s,%s", op.Param, q(0), q(1)), nil
	case CNOT:
		return fmt.Sprintf("cx %s,%s", q(0), q(1)), nil
	case CZ:
		return fmt.Sprintf("cz %s,%s", q(0), q(1)), nil
	case SWAP:
		return fmt.Sprintf("swap %s,%s", q(0), q(1)), nil
	case Measure:
		return fmt.Sprintf("measure %s -> c%d[0]", q(0), op.CBit), nil
	case Barrier:
		if len(op.Qubits) == 0 {
			return "barrier q", nil
		}
		parts := make([]string, len(op.Qubits))
		for i := range op.Qubits {
			parts[i] = q(i)
		}
		return "barrier " + strings.Join(parts, ","), nil
	}
	return "", fmt.Errorf("circuit: cannot express %s in QASM", op.Kind)
}

// ParseQASM reads the OpenQASM 2.0 subset produced by WriteQASM (plus the
// common single-register "creg c[n]" style with c[i] bit references).
func ParseQASM(src string) (*Circuit, error) {
	c := &Circuit{}
	bitOf := map[string]int{} // "c3" or "c[3]" -> circuit bit index
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStmt(c, bitOf, stmt); err != nil {
				return nil, fmt.Errorf("qasm line %d: %w", lineNo, err)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseStmt(c *Circuit, bitOf map[string]int, stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		n, err := parseRegSize(stmt)
		if err != nil {
			return err
		}
		c.NumQubits = n
		return nil
	case strings.HasPrefix(stmt, "creg"):
		name, n, err := parseRegDecl(stmt)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s[%d]", name, i)
			bitOf[key] = c.NumBits
			if n == 1 {
				bitOf[name] = c.NumBits
			}
			c.NumBits++
		}
		return nil
	case strings.HasPrefix(stmt, "barrier"):
		c.BarrierAll()
		return nil
	}
	var cond *Condition
	if strings.HasPrefix(stmt, "if(") {
		close := strings.Index(stmt, ")")
		if close < 0 {
			return fmt.Errorf("unterminated if")
		}
		inner := stmt[3:close]
		eq := strings.Index(inner, "==")
		if eq < 0 {
			return fmt.Errorf("if without ==")
		}
		reg := strings.TrimSpace(inner[:eq])
		val, err := strconv.Atoi(strings.TrimSpace(inner[eq+2:]))
		if err != nil {
			return err
		}
		bit, ok := bitOf[reg]
		if !ok {
			return fmt.Errorf("unknown creg %q", reg)
		}
		cond = &Condition{Bits: []int{bit}, Parity: val & 1}
		stmt = strings.TrimSpace(stmt[close+1:])
	}

	name, rest, _ := strings.Cut(stmt, " ")
	var param float64
	var sym string
	if open := strings.Index(name, "("); open >= 0 {
		// Take the paren group from the whole statement, not the first
		// space-split token: "rz( pi / 2 ) q[0]" is legal QASM, and an
		// unterminated "rz(0" must be an error, not a slice panic (the
		// angle-grammar fuzzer found the latter).
		open = strings.Index(stmt, "(")
		close := strings.Index(stmt, ")")
		if close < open {
			return fmt.Errorf("unterminated angle in %q", stmt)
		}
		v, s, err := parseAngle(stmt[open+1 : close])
		if err != nil {
			return err
		}
		param, sym = v, s
		name = stmt[:open]
		rest = strings.TrimSpace(stmt[close+1:])
	}
	args := strings.Split(rest, ",")
	qubits := make([]int, 0, 2)
	if name != "measure" {
		for _, a := range args {
			q, err := parseIndex(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			qubits = append(qubits, q)
		}
	}
	kinds := map[string]Kind{
		"h": H, "x": X, "y": Y, "z": Z, "s": S, "sdg": Sdg, "t": T, "tdg": Tdg, "reset": Reset,
		"rx": RX, "ry": RY, "rz": RZ, "cp": CPhase, "cu1": CPhase,
		"cx": CNOT, "CX": CNOT, "cz": CZ, "swap": SWAP,
	}
	if k, ok := kinds[name]; ok {
		op := Op{Kind: k, Qubits: qubits, Param: param, CBit: -1, Cond: cond, Sym: sym}
		c.Ops = append(c.Ops, op)
		return nil
	}
	if name == "measure" {
		parts := strings.Split(rest, "->")
		if len(parts) != 2 {
			return fmt.Errorf("bad measure %q", stmt)
		}
		q, err := parseIndex(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		key := strings.TrimSpace(parts[1])
		bit, ok := bitOf[key]
		if !ok {
			return fmt.Errorf("unknown classical bit %q", key)
		}
		c.Ops = append(c.Ops, Op{Kind: Measure, Qubits: []int{q}, CBit: bit, Cond: cond})
		return nil
	}
	return fmt.Errorf("unsupported statement %q", stmt)
}

func parseRegSize(stmt string) (int, error) {
	_, n, err := parseRegDecl(stmt)
	return n, err
}

func parseRegDecl(stmt string) (string, int, error) {
	open := strings.Index(stmt, "[")
	close := strings.Index(stmt, "]")
	if open < 0 || close < open {
		return "", 0, fmt.Errorf("bad register decl %q", stmt)
	}
	n, err := strconv.Atoi(stmt[open+1 : close])
	if err != nil {
		return "", 0, err
	}
	fields := strings.Fields(stmt[:open])
	name := fields[len(fields)-1]
	return name, n, nil
}

func parseIndex(ref string) (int, error) {
	open := strings.Index(ref, "[")
	close := strings.Index(ref, "]")
	if open < 0 || close < open {
		return 0, fmt.Errorf("bad qubit reference %q", ref)
	}
	return strconv.Atoi(ref[open+1 : close])
}

// isIdent reports whether s is a legal parameter identifier:
// [A-Za-z_][A-Za-z0-9_]*.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseAngle evaluates the QASM angle grammar: an optional leading sign
// followed by a product/quotient chain whose factors are float literals or
// "pi" — so "pi", "pi/2", "-pi/4", "2*pi", "pi*2", "3*pi/2" and plain
// numbers like "0.25" or "1e-3" all evaluate. A bare identifier that is
// not "pi" names a symbolic parameter and is returned as sym (val 0).
// Errors name the offending token and its offset within the angle text.
func parseAngle(s string) (val float64, sym string, err error) {
	expr := strings.ReplaceAll(strings.TrimSpace(s), " ", "")
	if expr == "" {
		return 0, "", fmt.Errorf("empty angle")
	}
	if expr != "pi" && isIdent(expr) {
		// Reserved words never become symbols: a misspelled constant must
		// stay a parse error here, not resurface later as a confusing
		// "unbound parameter PI" at job admission.
		switch strings.ToLower(expr) {
		case "pi":
			return 0, "", fmt.Errorf("bad angle %q: the constant is lowercase \"pi\"", expr)
		case "nan", "inf", "infinity":
			return 0, "", fmt.Errorf("bad angle %q: angles must be finite", expr)
		}
		return 0, expr, nil
	}
	rest := expr
	neg := false
	switch rest[0] {
	case '-':
		neg, rest = true, rest[1:]
	case '+':
		rest = rest[1:]
	}
	badAt := func(tok string) error {
		off := len(expr) - len(rest)
		if tok != "" {
			return fmt.Errorf("bad angle %q: unexpected %q at offset %d", expr, tok, off)
		}
		return fmt.Errorf("bad angle %q: missing factor at offset %d", expr, off)
	}
	// Evaluate factor (('*'|'/') factor)* left to right. Factors never
	// contain '*' or '/', so a float's exponent sign ("1e-3") survives.
	factor := func() (float64, error) {
		end := strings.IndexAny(rest, "*/")
		tok := rest
		if end >= 0 {
			tok = rest[:end]
		}
		if tok == "" {
			return 0, badAt("")
		}
		if tok == "pi" {
			rest = rest[len(tok):]
			return math.Pi, nil
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, badAt(tok)
		}
		rest = rest[len(tok):]
		return v, nil
	}
	acc, err := factor()
	if err != nil {
		return 0, "", err
	}
	for rest != "" {
		op := rest[0]
		rest = rest[1:]
		f, err := factor()
		if err != nil {
			return 0, "", err
		}
		if op == '*' {
			acc *= f
		} else {
			acc /= f
		}
	}
	if neg {
		acc = -acc
	}
	if math.IsNaN(acc) || math.IsInf(acc, 0) {
		return 0, "", fmt.Errorf("bad angle %q: evaluates to %v (angles must be finite)", expr, acc)
	}
	return acc, "", nil
}
