package circuit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// WriteQASM renders the circuit as OpenQASM 2.0 (§6.4.2 benchmarks are
// OpenQASM programs). One quantum register q[n] is used; every classical bit
// becomes a one-bit register c<i>[1] because OpenQASM 2.0 conditions test
// whole registers. Parity conditions on self-inverse gates (X/Z/Y — the only
// conditioned gates our transforms emit) are decomposed into a chain of
// single-bit conditioned gates, which is XOR-equivalent.
func WriteQASM(c *Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for i := 0; i < c.NumBits; i++ {
		fmt.Fprintf(&b, "creg c%d[1];\n", i)
	}
	emit := func(prefix, body string) {
		b.WriteString(prefix)
		b.WriteString(body)
		b.WriteString(";\n")
	}
	for _, op := range c.Ops {
		body, err := qasmBody(op)
		if err != nil {
			return "", err
		}
		switch {
		case op.Cond == nil:
			emit("", body)
		case len(op.Cond.Bits) == 1:
			emit(fmt.Sprintf("if(c%d==%d) ", op.Cond.Bits[0], op.Cond.Parity), body)
		default:
			if op.Kind != X && op.Kind != Z && op.Kind != Y {
				return "", fmt.Errorf("circuit: cannot express parity condition on %s in QASM", op.Kind)
			}
			// X^(b0 xor b1 xor ...): chain per-bit conditionals; if Parity is
			// 0 the correction is inverted by one unconditional application.
			if op.Cond.Parity == 0 {
				emit("", body)
			}
			for _, bit := range op.Cond.Bits {
				emit(fmt.Sprintf("if(c%d==1) ", bit), body)
			}
		}
	}
	return b.String(), nil
}

func qasmBody(op Op) (string, error) {
	q := func(i int) string { return fmt.Sprintf("q[%d]", op.Qubits[i]) }
	switch op.Kind {
	case H, X, Y, Z, S, T, Reset:
		return fmt.Sprintf("%s %s", op.Kind, q(0)), nil
	case Sdg:
		return "sdg " + q(0), nil
	case Tdg:
		return "tdg " + q(0), nil
	case RX, RY, RZ:
		return fmt.Sprintf("%s(%.17g) %s", op.Kind, op.Param, q(0)), nil
	case CPhase:
		return fmt.Sprintf("cp(%.17g) %s,%s", op.Param, q(0), q(1)), nil
	case CNOT:
		return fmt.Sprintf("cx %s,%s", q(0), q(1)), nil
	case CZ:
		return fmt.Sprintf("cz %s,%s", q(0), q(1)), nil
	case SWAP:
		return fmt.Sprintf("swap %s,%s", q(0), q(1)), nil
	case Measure:
		return fmt.Sprintf("measure %s -> c%d[0]", q(0), op.CBit), nil
	case Barrier:
		if len(op.Qubits) == 0 {
			return "barrier q", nil
		}
		parts := make([]string, len(op.Qubits))
		for i := range op.Qubits {
			parts[i] = q(i)
		}
		return "barrier " + strings.Join(parts, ","), nil
	}
	return "", fmt.Errorf("circuit: cannot express %s in QASM", op.Kind)
}

// ParseQASM reads the OpenQASM 2.0 subset produced by WriteQASM (plus the
// common single-register "creg c[n]" style with c[i] bit references).
func ParseQASM(src string) (*Circuit, error) {
	c := &Circuit{}
	bitOf := map[string]int{} // "c3" or "c[3]" -> circuit bit index
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStmt(c, bitOf, stmt); err != nil {
				return nil, fmt.Errorf("qasm line %d: %w", lineNo, err)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseStmt(c *Circuit, bitOf map[string]int, stmt string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		n, err := parseRegSize(stmt)
		if err != nil {
			return err
		}
		c.NumQubits = n
		return nil
	case strings.HasPrefix(stmt, "creg"):
		name, n, err := parseRegDecl(stmt)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("%s[%d]", name, i)
			bitOf[key] = c.NumBits
			if n == 1 {
				bitOf[name] = c.NumBits
			}
			c.NumBits++
		}
		return nil
	case strings.HasPrefix(stmt, "barrier"):
		c.BarrierAll()
		return nil
	}
	var cond *Condition
	if strings.HasPrefix(stmt, "if(") {
		close := strings.Index(stmt, ")")
		if close < 0 {
			return fmt.Errorf("unterminated if")
		}
		inner := stmt[3:close]
		eq := strings.Index(inner, "==")
		if eq < 0 {
			return fmt.Errorf("if without ==")
		}
		reg := strings.TrimSpace(inner[:eq])
		val, err := strconv.Atoi(strings.TrimSpace(inner[eq+2:]))
		if err != nil {
			return err
		}
		bit, ok := bitOf[reg]
		if !ok {
			return fmt.Errorf("unknown creg %q", reg)
		}
		cond = &Condition{Bits: []int{bit}, Parity: val & 1}
		stmt = strings.TrimSpace(stmt[close+1:])
	}

	name, rest, _ := strings.Cut(stmt, " ")
	var param float64
	if open := strings.Index(name, "("); open >= 0 {
		pstr := name[open+1 : strings.LastIndex(name, ")")]
		v, err := parseAngle(pstr)
		if err != nil {
			return err
		}
		param = v
		name = name[:open]
	}
	args := strings.Split(rest, ",")
	qubits := make([]int, 0, 2)
	if name != "measure" {
		for _, a := range args {
			q, err := parseIndex(strings.TrimSpace(a))
			if err != nil {
				return err
			}
			qubits = append(qubits, q)
		}
	}
	kinds := map[string]Kind{
		"h": H, "x": X, "y": Y, "z": Z, "s": S, "sdg": Sdg, "t": T, "tdg": Tdg, "reset": Reset,
		"rx": RX, "ry": RY, "rz": RZ, "cp": CPhase, "cu1": CPhase,
		"cx": CNOT, "CX": CNOT, "cz": CZ, "swap": SWAP,
	}
	if k, ok := kinds[name]; ok {
		op := Op{Kind: k, Qubits: qubits, Param: param, CBit: -1, Cond: cond}
		c.Ops = append(c.Ops, op)
		return nil
	}
	if name == "measure" {
		parts := strings.Split(rest, "->")
		if len(parts) != 2 {
			return fmt.Errorf("bad measure %q", stmt)
		}
		q, err := parseIndex(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		key := strings.TrimSpace(parts[1])
		bit, ok := bitOf[key]
		if !ok {
			return fmt.Errorf("unknown classical bit %q", key)
		}
		c.Ops = append(c.Ops, Op{Kind: Measure, Qubits: []int{q}, CBit: bit, Cond: cond})
		return nil
	}
	return fmt.Errorf("unsupported statement %q", stmt)
}

func parseRegSize(stmt string) (int, error) {
	_, n, err := parseRegDecl(stmt)
	return n, err
}

func parseRegDecl(stmt string) (string, int, error) {
	open := strings.Index(stmt, "[")
	close := strings.Index(stmt, "]")
	if open < 0 || close < open {
		return "", 0, fmt.Errorf("bad register decl %q", stmt)
	}
	n, err := strconv.Atoi(stmt[open+1 : close])
	if err != nil {
		return "", 0, err
	}
	fields := strings.Fields(stmt[:open])
	name := fields[len(fields)-1]
	return name, n, nil
}

func parseIndex(ref string) (int, error) {
	open := strings.Index(ref, "[")
	close := strings.Index(ref, "]")
	if open < 0 || close < open {
		return 0, fmt.Errorf("bad qubit reference %q", ref)
	}
	return strconv.Atoi(ref[open+1 : close])
}

// parseAngle evaluates the tiny angle grammar QASM files use: a float, "pi",
// "pi/N", "-pi/N", "N*pi/M".
func parseAngle(s string) (float64, error) {
	s = strings.ReplaceAll(strings.TrimSpace(s), " ", "")
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	num, den := 1.0, 1.0
	if i := strings.Index(s, "/"); i >= 0 {
		d, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		den = d
		s = s[:i]
	}
	if i := strings.Index(s, "*"); i >= 0 {
		n, err := strconv.ParseFloat(s[:i], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		num = n
		s = s[i+1:]
	}
	if s != "pi" {
		return 0, fmt.Errorf("bad angle %q", s)
	}
	v := num * math.Pi / den
	if neg {
		v = -v
	}
	return v, nil
}
