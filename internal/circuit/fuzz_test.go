package circuit

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// FuzzParseAngle drives the QASM angle grammar — the seeds cover every
// production (floats, pi products/quotients, signs, identifiers) plus the
// malformed shapes the parser must reject cleanly. Properties: no panic,
// a successful parse is either a non-NaN value or a legal identifier
// (never both), and the value survives a full rz(...) round trip through
// WriteQASM/ParseQASM.
func FuzzParseAngle(f *testing.F) {
	for _, seed := range []string{
		"0.5", "-0.25", "1e-3", "2E5", "3.14159",
		"pi", "-pi", "+pi", "pi/2", "-pi/4", "pi/16",
		"2*pi", "pi*2", "3*pi/2", "pi*3/4", "-3*pi/8", "2*pi/3",
		"pi*pi", "pi/pi", "1/3", "2*3/4",
		"theta0", "_t", "Phi_2", "gamma",
		"", "*", "/", "-", "pi*", "*pi", "pi//2", "2**pi",
		"pi+1", "2pi", "1x", "-theta", "0/0", "pi/0", "1e999",
		" pi / 2 ", "--pi", "+-1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, sym, err := parseAngle(s)
		if err != nil {
			return
		}
		if sym != "" {
			if v != 0 || !isIdent(sym) || sym == "pi" {
				t.Fatalf("parseAngle(%q) = (%v, %q): bad symbolic result", s, v, sym)
			}
			return
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("parseAngle(%q) returned non-finite %v without error", s, v)
		}
		// Round trip: the parsed value must survive emission as a literal.
		src := fmt.Sprintf("OPENQASM 2.0;\nqreg q[1];\nrz(%.17g) q[0];\n", v)
		c, err := ParseQASM(src)
		if err != nil {
			t.Fatalf("round trip of %q (= %v) failed: %v", s, v, err)
		}
		if got := c.Ops[0].Param; got != v {
			t.Fatalf("round trip of %q: %v != %v", s, got, v)
		}
	})
}

// FuzzParseQASMAngleStmt feeds raw angle text through a whole rz
// statement: the parser must never panic and every accepted circuit must
// validate.
func FuzzParseQASMAngleStmt(f *testing.F) {
	for _, seed := range []string{"pi/2", "theta0", "2*pi", "bogus**", "0/0", "-pi*3/4"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if strings.ContainsAny(s, ");\n") {
			return // statement structure itself is FuzzParseAngle's job
		}
		src := "OPENQASM 2.0;\nqreg q[2];\nrz(" + s + ") q[0];\ncp(" + s + ") q[0],q[1];\n"
		c, err := ParseQASM(src)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted circuit fails validation for angle %q: %v", s, err)
		}
	})
}
