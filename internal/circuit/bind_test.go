package circuit

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSymbolicBuildersAndParams(t *testing.T) {
	c := New(3)
	c.RXSym(0, "a").RYSym(1, "b").RZSym(2, "c").CPhaseSym(0, 1, "b")
	if got := c.Params(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Params() = %v", got)
	}
	if got := c.UnboundParams(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("UnboundParams() = %v", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("skeleton should validate: %v", err)
	}
}

func TestBindSemantics(t *testing.T) {
	c := New(2)
	c.RZSym(0, "theta").CPhaseSym(0, 1, "phi").MeasureInto(0, 0)
	bound, err := c.Bind(map[string]float64{"theta": 0.25, "phi": math.Copysign(0, -1)})
	if err != nil {
		t.Fatal(err)
	}
	// Binding is a deep copy: the skeleton stays unbound.
	if got := c.UnboundParams(); len(got) != 2 {
		t.Fatalf("skeleton mutated: UnboundParams() = %v", got)
	}
	if got := bound.UnboundParams(); len(got) != 0 {
		t.Fatalf("bound circuit still unbound: %v", got)
	}
	if bound.Ops[0].Param != 0.25 || !bound.Ops[0].Bound || bound.Ops[0].Sym != "theta" {
		t.Fatalf("op 0 after bind: %+v", bound.Ops[0])
	}
	// -0.0 canonicalizes to +0.0.
	if v := bound.Ops[1].Param; math.Signbit(v) || v != 0 {
		t.Fatalf("phi = %v, want canonical +0", v)
	}
	// Simulation requires a bound circuit.
	if _, _, err := c.RunStateVector(nil); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("skeleton simulated: %v", err)
	}

	// Error cases.
	if _, err := c.Bind(map[string]float64{"theta": 1}); err == nil {
		t.Error("partial binding accepted")
	}
	if _, err := c.Bind(map[string]float64{"theta": 1, "phi": 2, "zz": 3}); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := c.Bind(map[string]float64{"theta": math.NaN(), "phi": 2}); err == nil {
		t.Error("NaN binding accepted")
	}
	// Rebinding a bound circuit (full map) is allowed.
	re, err := bound.Bind(map[string]float64{"theta": 1, "phi": 2})
	if err != nil {
		t.Fatal(err)
	}
	if re.Ops[0].Param != 1 || re.Ops[1].Param != 2 {
		t.Fatalf("rebind wrong: %v %v", re.Ops[0].Param, re.Ops[1].Param)
	}
}

func TestValidateRejectsBadDelays(t *testing.T) {
	mk := func(p float64) *Circuit {
		c := New(1)
		c.Ops = append(c.Ops, Op{Kind: Delay, Qubits: []int{0}, Param: p, CBit: -1})
		return c
	}
	for _, tc := range []struct {
		p  float64
		ok bool
	}{
		{0, true},
		{1, true},
		{40, true},
		{float64(1 << 53), true},
		{-1, false},
		{-0.5, false},
		{0.5, false},
		{39.999, false},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
		{float64(1<<53) * 2, false},
	} {
		err := mk(tc.p).Validate()
		if tc.ok && err != nil {
			t.Errorf("delay %v rejected: %v", tc.p, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("delay %v accepted", tc.p)
		}
	}
}

func TestValidateRejectsNaNAndMisplacedSymbols(t *testing.T) {
	c := New(1)
	c.RZGate(0, math.NaN())
	if err := c.Validate(); err == nil {
		t.Error("NaN rotation accepted")
	}
	c2 := New(2)
	c2.Ops = append(c2.Ops, Op{Kind: CNOT, Qubits: []int{0, 1}, CBit: -1, Sym: "x"})
	if err := c2.Validate(); err == nil {
		t.Error("symbolic CNOT accepted")
	}
	c3 := New(1)
	c3.Ops = append(c3.Ops, Op{Kind: Delay, Qubits: []int{0}, Param: 4, CBit: -1, Sym: "d"})
	if err := c3.Validate(); err == nil {
		t.Error("symbolic delay accepted")
	}
}

func TestQASMSymbolicRoundTrip(t *testing.T) {
	c := New(2)
	c.H(0).RZSym(0, "theta0").CPhaseSym(0, 1, "g_1").MeasureInto(0, 0)
	src, err := WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "rz(theta0) q[0]") || !strings.Contains(src, "cp(g_1) q[0],q[1]") {
		t.Fatalf("symbols not written:\n%s", src)
	}
	back, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.UnboundParams(); !reflect.DeepEqual(got, []string{"g_1", "theta0"}) {
		t.Fatalf("round-trip params = %v", got)
	}
	// A bound circuit writes literal angles and parses back concrete.
	bound, err := c.Bind(map[string]float64{"theta0": 0.5, "g_1": 0.75})
	if err != nil {
		t.Fatal(err)
	}
	src2, err := WriteQASM(bound)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := ParseQASM(src2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2.UnboundParams()) != 0 {
		t.Fatalf("bound circuit round-tripped symbols: %s", src2)
	}
	if back2.Ops[1].Param != 0.5 {
		t.Fatalf("bound angle lost: %+v", back2.Ops[1])
	}
}

func TestParseAngleGrammar(t *testing.T) {
	pi := math.Pi // force runtime float64 arithmetic (left-to-right, like the parser)
	for _, tc := range []struct {
		in   string
		want float64
		sym  string
	}{
		{"0.5", 0.5, ""},
		{"-0.25", -0.25, ""},
		{"1e-3", 1e-3, ""},
		{"pi", math.Pi, ""},
		{"-pi", -math.Pi, ""},
		{"+pi", math.Pi, ""},
		{"pi/2", pi / 2, ""},
		{"-pi/4", -pi / 4, ""},
		{"2*pi", 2 * pi, ""},
		{"pi*2", pi * 2, ""},
		{"3*pi/2", 3 * pi / 2, ""},
		{"pi*3/4", pi * 3 / 4, ""},
		{"-3*pi/8", -3 * pi / 8, ""},
		{" pi / 2 ", pi / 2, ""},
		{"2*pi/3", 2 * pi / 3, ""},
		{"theta0", 0, "theta0"},
		{"_t", 0, "_t"},
		{"Phi_2", 0, "Phi_2"},
	} {
		v, sym, err := parseAngle(tc.in)
		if err != nil {
			t.Errorf("parseAngle(%q): %v", tc.in, err)
			continue
		}
		if sym != tc.sym || v != tc.want {
			t.Errorf("parseAngle(%q) = (%v, %q), want (%v, %q)", tc.in, v, sym, tc.want, tc.sym)
		}
	}
	for _, bad := range []string{"", "*", "pi*", "*pi", "pi//2", "2**pi", "pi/", "-", "1x", "-theta", "pi+1", "2pi", "PI", "Pi", "NaN", "inf", "Infinity"} {
		if _, _, err := parseAngle(bad); err == nil {
			t.Errorf("parseAngle(%q) accepted", bad)
		}
	}
	// Errors carry the angle text and the offset of the offending token.
	_, _, err := parseAngle("pi/oops")
	if err == nil || !strings.Contains(err.Error(), `"oops"`) || !strings.Contains(err.Error(), "offset 3") {
		t.Errorf("position-free angle error: %v", err)
	}
}

func TestParseQASMBadAngleNamesLine(t *testing.T) {
	src := "OPENQASM 2.0;\nqreg q[1];\nrz(pi**2) q[0];\n"
	_, err := ParseQASM(src)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("bad angle error lacks line info: %v", err)
	}
}

func TestNonFiniteAnglesRejectedEverywhere(t *testing.T) {
	// The angle grammar: division by zero and literal overflow are errors.
	for _, bad := range []string{"1/0", "-pi/0", "1e999"} {
		if _, _, err := parseAngle(bad); err == nil {
			t.Errorf("parseAngle(%q) accepted a non-finite angle", bad)
		}
	}
	// Validation: an Inf rotation would propagate NaN amplitudes.
	c := New(1)
	c.RZGate(0, math.Inf(1))
	if err := c.Validate(); err == nil {
		t.Error("Inf rotation accepted by Validate")
	}
	// Binding: Inf values rejected like NaN.
	s := New(1)
	s.RZSym(0, "a")
	if _, err := s.Bind(map[string]float64{"a": math.Inf(-1)}); err == nil {
		t.Error("Inf binding accepted")
	}
}

func TestDualRailEmbedsBoundLongRangeCPhase(t *testing.T) {
	skel := New(4)
	skel.CPhaseSym(0, 3, "t")
	// Unbound: the decomposition needs the concrete angle.
	if _, err := (DualRailEmbedding{}).Embed(skel); err == nil {
		t.Fatal("unbound long-range cp embedded")
	}
	bound, err := skel.Bind(map[string]float64{"t": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := (DualRailEmbedding{}).Embed(bound)
	if err != nil {
		t.Fatalf("bound long-range cp rejected: %v", err)
	}
	lit := New(4)
	lit.CPhaseGate(0, 3, 0.5)
	want, err := (DualRailEmbedding{}).Embed(lit)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("bound embedding differs from literal: %d vs %d ops", len(got.Ops), len(want.Ops))
	}
}

func TestParseQASMAngleSpacesAndUntermination(t *testing.T) {
	// Spaces inside the paren group are legal QASM.
	c, err := ParseQASM("OPENQASM 2.0;\nqreg q[1];\nrz( pi / 2 ) q[0];\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Ops[0].Param; got != math.Pi/2 {
		t.Fatalf("spaced angle parsed as %v", got)
	}
	// An unterminated angle is an error, not a panic (fuzz regression:
	// "rz( 0) q[0]" used to slice with a -1 bound via the first token).
	if _, err := ParseQASM("OPENQASM 2.0;\nqreg q[1];\nrz(0 q[0];\n"); err == nil {
		t.Fatal("unterminated angle accepted")
	}
}
