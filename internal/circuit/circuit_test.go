package circuit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderAndValidate(t *testing.T) {
	c := New(3)
	c.H(0).CNOT(0, 1).CZ(1, 2)
	b := c.MeasureNew(2)
	c.CondGate(X, Condition{Bits: []int{b}, Parity: 1}, 0)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	st := c.CountStats()
	if st.OneQubit != 2 || st.TwoQubit != 2 || st.Measurements != 1 || st.Conditioned != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidateRejectsBadOps(t *testing.T) {
	bad := []*Circuit{
		New(2).Gate(CNOT, 0),    // arity
		New(2).Gate(CNOT, 0, 0), // duplicate qubit
		New(2).Gate(H, 5),       // out of range
		{NumQubits: 1, Ops: []Op{{Kind: Measure, Qubits: []int{0}, CBit: 3}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRunStateVectorBell(t *testing.T) {
	c := New(2)
	c.H(0).CNOT(0, 1)
	c.MeasureNew(0)
	c.MeasureNew(1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		_, bits, err := c.RunStateVector(rng)
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] != bits[1] {
			t.Fatalf("bell outcomes differ: %v", bits)
		}
	}
}

func TestConditionedOpRuns(t *testing.T) {
	// X on q0; measure; conditioned X on q1 must fire (parity 1).
	c := New(2)
	c.X(0)
	b := c.MeasureNew(0)
	c.CondGate(X, Condition{Bits: []int{b}, Parity: 1}, 1)
	m2 := c.MeasureNew(1)
	_, bits, err := c.RunStateVector(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if bits[m2] != 1 {
		t.Fatal("conditioned X did not fire")
	}
	// Parity 0 condition must not fire.
	c2 := New(2)
	c2.X(0)
	b2 := c2.MeasureNew(0)
	c2.CondGate(X, Condition{Bits: []int{b2}, Parity: 0}, 1)
	m22 := c2.MeasureNew(1)
	_, bits2, _ := c2.RunStateVector(rand.New(rand.NewSource(1)))
	if bits2[m22] != 0 {
		t.Fatal("parity-0 condition fired on bit value 1")
	}
}

func TestStabilizerAndStateVectorAgreeOnCircuit(t *testing.T) {
	c := New(3)
	c.H(0).CNOT(0, 1).CNOT(1, 2).S(2).CZ(0, 2)
	c.MeasureNew(0)
	c.MeasureNew(1)
	c.MeasureNew(2)
	// Same seed drives both runs; outcome draws may differ in count, so
	// compare correlation structure instead: b0==b1==b2 (GHZ-like parity).
	for seed := int64(0); seed < 20; seed++ {
		_, bits, err := c.RunStabilizer(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] != bits[1] || bits[1] != bits[2] {
			t.Fatalf("seed %d: GHZ correlation broken in tableau run: %v", seed, bits)
		}
		_, bits2, err := c.RunStateVector(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if bits2[0] != bits2[1] || bits2[1] != bits2[2] {
			t.Fatalf("seed %d: GHZ correlation broken in statevec run: %v", seed, bits2)
		}
	}
}

// resetAncillas measures each ancilla again and flips it back to |0⟩ so the
// whole-state fidelity against a reference with ancillas in |0⟩ is
// meaningful.
func resetAncillas(c *Circuit, ancillas []int) {
	for _, q := range ancillas {
		b := c.MeasureNew(q)
		c.CondGate(X, Condition{Bits: []int{b}, Parity: 1}, q)
	}
}

// randPrefix applies a random (generally non-Clifford) unitary prefix to the
// given qubits, identically to both circuits.
func randPrefix(rng *rand.Rand, qubits []int, cs ...*Circuit) {
	for g := 0; g < 12; g++ {
		q := qubits[rng.Intn(len(qubits))]
		switch rng.Intn(5) {
		case 0:
			for _, c := range cs {
				c.H(q)
			}
		case 1:
			th := rng.Float64() * 2 * math.Pi
			for _, c := range cs {
				c.RYGate(q, th)
			}
		case 2:
			th := rng.Float64() * 2 * math.Pi
			for _, c := range cs {
				c.RZGate(q, th)
			}
		case 3:
			for _, c := range cs {
				c.T(q)
			}
		case 4:
			p := qubits[rng.Intn(len(qubits))]
			if p != q {
				for _, c := range cs {
					c.CNOT(q, p)
				}
			}
		}
	}
}

// TestLongRangeCNOTExact checks that the dynamic construction implements an
// exact CNOT for 0..7 ancillas on random (entangled, non-Clifford) inputs:
// after resetting ancillas, the full state must match a direct CNOT with
// fidelity 1.
func TestLongRangeCNOTExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for m := 0; m <= 7; m++ {
		n := m + 3 // ctrl=0, ancillas 1..m, tgt=m+1, reference=m+2
		ctrl, tgt, ref := 0, m+1, m+2
		anc := make([]int, m)
		for i := range anc {
			anc[i] = i + 1
		}
		for trial := 0; trial < 10; trial++ {
			dyn := New(n)
			ideal := New(n)
			// Entangle ctrl/tgt with a reference qubit so the test also
			// catches phase errors invisible on product inputs.
			randPrefix(rng, []int{ctrl, tgt, ref}, dyn, ideal)
			dyn.LongRangeCNOT(ctrl, tgt, anc)
			resetAncillas(dyn, anc)
			ideal.CNOT(ctrl, tgt)

			sd, _, err := dyn.RunStateVector(rand.New(rand.NewSource(int64(trial))))
			if err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
			si, _, err := ideal.RunStateVector(rand.New(rand.NewSource(int64(trial))))
			if err != nil {
				t.Fatalf("m=%d: %v", m, err)
			}
			if f := sd.Fidelity(si); math.Abs(f-1) > 1e-9 {
				t.Fatalf("m=%d trial=%d: fidelity %g", m, trial, f)
			}
		}
	}
}

func TestLongRangeCZExact(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, m := range []int{0, 2, 4, 5} {
		n := m + 3
		ctrl, tgt, ref := 0, m+1, m+2
		anc := make([]int, m)
		for i := range anc {
			anc[i] = i + 1
		}
		dyn := New(n)
		ideal := New(n)
		randPrefix(rng, []int{ctrl, tgt, ref}, dyn, ideal)
		dyn.LongRangeCZ(ctrl, tgt, anc)
		resetAncillas(dyn, anc)
		ideal.CZ(ctrl, tgt)
		sd, _, _ := dyn.RunStateVector(rand.New(rand.NewSource(9)))
		si, _, _ := ideal.RunStateVector(rand.New(rand.NewSource(9)))
		if f := sd.Fidelity(si); math.Abs(f-1) > 1e-9 {
			t.Fatalf("m=%d: CZ fidelity %g", m, f)
		}
	}
}

func TestLongRangeCPhaseExact(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, m := range []int{1, 2, 3, 5} {
		for _, theta := range []float64{math.Pi / 2, math.Pi / 8, 1.234} {
			n := m + 3
			ctrl, tgt, ref := 0, m+1, m+2
			anc := make([]int, m)
			for i := range anc {
				anc[i] = i + 1
			}
			dyn := New(n)
			ideal := New(n)
			randPrefix(rng, []int{ctrl, tgt, ref}, dyn, ideal)
			dyn.LongRangeCPhase(ctrl, tgt, theta, anc)
			resetAncillas(dyn, anc)
			ideal.CPhaseGate(ctrl, tgt, theta)
			sd, _, _ := dyn.RunStateVector(rand.New(rand.NewSource(3)))
			si, _, _ := ideal.RunStateVector(rand.New(rand.NewSource(3)))
			if f := sd.Fidelity(si); math.Abs(f-1) > 1e-9 {
				t.Fatalf("m=%d theta=%g: fidelity %g", m, theta, f)
			}
		}
	}
}

func TestLongRangeCNOTConstantDepth(t *testing.T) {
	// Fig. 14's point: dynamic long-range CNOT depth is constant in the
	// distance, while SWAP routing grows linearly.
	d := PaperDurations()
	depthAt := func(m int) (dynamic, swapped int64) {
		anc := make([]int, m)
		for i := range anc {
			anc[i] = i + 1
		}
		dyn := New(m + 2)
		dyn.LongRangeCNOT(0, m+1, anc)
		sw := New(m + 2)
		sw.SwapRouteCNOT(0, m+1, anc)
		return dyn.Depth(d), sw.Depth(d)
	}
	d4, s4 := depthAt(4)
	d16, s16 := depthAt(16)
	d64, s64 := depthAt(64)
	if d16 != d4 || d64 != d4 {
		t.Fatalf("dynamic depth not constant: %d, %d, %d", d4, d16, d64)
	}
	if !(s4 < s16 && s16 < s64) {
		t.Fatalf("swap depth not growing: %d, %d, %d", s4, s16, s64)
	}
}

func TestSwapRouteCNOTExact(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, m := range []int{1, 3, 5} {
		n := m + 3
		anc := make([]int, m)
		for i := range anc {
			anc[i] = i + 1
		}
		dyn := New(n)
		ideal := New(n)
		randPrefix(rng, []int{0, m + 1, m + 2}, dyn, ideal)
		dyn.SwapRouteCNOT(0, m+1, anc)
		ideal.CNOT(0, m+1)
		sd, _, _ := dyn.RunStateVector(rand.New(rand.NewSource(5)))
		si, _, _ := ideal.RunStateVector(rand.New(rand.NewSource(5)))
		if f := sd.Fidelity(si); math.Abs(f-1) > 1e-9 {
			t.Fatalf("m=%d: swap-route fidelity %g", m, f)
		}
	}
}

func TestLineEmbeddingGHZ(t *testing.T) {
	logical := New(3)
	logical.H(0).CNOT(0, 1).CNOT(1, 2)
	for q := 0; q < 3; q++ {
		logical.MeasureInto(q, q)
	}
	emb := LineEmbedding{Spacing: 3}
	phys, err := emb.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	if phys.NumQubits != 7 {
		t.Fatalf("physical qubits = %d, want 7", phys.NumQubits)
	}
	// The embedded dynamic circuit must preserve the GHZ correlation of the
	// logical qubits (bits 0..2 were reserved for the logical measurements).
	for seed := int64(0); seed < 30; seed++ {
		_, bits, err := phys.RunStabilizer(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] != bits[1] || bits[1] != bits[2] {
			t.Fatalf("seed %d: embedded GHZ broken: %v", seed, bits[:3])
		}
	}
}

func TestQASMRoundTrip(t *testing.T) {
	c := New(3)
	c.H(0).CNOT(0, 1).CZ(1, 2).S(0).T(1).Sdg(2).Tdg(0)
	c.RXGate(0, math.Pi/4)
	c.CPhaseGate(0, 2, math.Pi/8)
	b := c.MeasureNew(2)
	c.CondGate(X, Condition{Bits: []int{b}, Parity: 1}, 0)
	src, err := WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseQASM(src)
	if err != nil {
		t.Fatalf("parse back: %v\n%s", err, src)
	}
	if c2.NumQubits != 3 || c2.NumBits != 1 {
		t.Fatalf("shape: %d qubits %d bits", c2.NumQubits, c2.NumBits)
	}
	if len(c2.Ops) != len(c.Ops) {
		t.Fatalf("ops: %d vs %d\n%s", len(c2.Ops), len(c.Ops), src)
	}
	for i := range c.Ops {
		a, b := c.Ops[i], c2.Ops[i]
		if a.Kind != b.Kind || math.Abs(a.Param-b.Param) > 1e-15 {
			t.Fatalf("op %d: %v vs %v", i, a, b)
		}
	}
}

func TestQASMParityDecomposition(t *testing.T) {
	// Multi-bit parity conditions decompose into per-bit conditionals.
	c := New(2)
	b1 := c.MeasureNew(0)
	b2 := c.MeasureNew(1)
	c.CondGate(X, Condition{Bits: []int{b1, b2}, Parity: 1}, 0)
	src, err := WriteQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	// Semantics check: X fires iff b1 xor b2 == 1 in both representations.
	for seed := int64(0); seed < 10; seed++ {
		s1, bits1, _ := c.RunStateVector(rand.New(rand.NewSource(seed)))
		s2, bits2, _ := c2.RunStateVector(rand.New(rand.NewSource(seed)))
		if bits1[0] != bits2[0] || bits1[1] != bits2[1] {
			t.Fatalf("outcome divergence: %v vs %v", bits1, bits2)
		}
		if f := s1.Fidelity(s2); math.Abs(f-1) > 1e-9 {
			t.Fatalf("states diverge: fidelity %g", f)
		}
	}
}

func TestDepthComputation(t *testing.T) {
	d := PaperDurations()
	c := New(2)
	c.H(0)       // q0: 0..5
	c.H(1)       // q1: 0..5 (parallel)
	c.CNOT(0, 1) // both: 5..15
	c.H(0)       // q0: 15..20
	if got := c.Depth(d); got != 20 {
		t.Fatalf("depth = %d, want 20", got)
	}
	c.MeasureNew(1) // q1: 15..90
	if got := c.Depth(d); got != 90 {
		t.Fatalf("depth with measure = %d, want 90", got)
	}
}

func TestDepthRespectsFeedforward(t *testing.T) {
	d := PaperDurations()
	c := New(2)
	b := c.MeasureNew(0) // 0..75
	c.CondGate(X, Condition{Bits: []int{b}, Parity: 1}, 1)
	if got := c.Depth(d); got != 80 {
		t.Fatalf("feedforward depth = %d, want 80", got)
	}
}

func TestDelayOp(t *testing.T) {
	d := PaperDurations()
	c := New(1)
	c.DelayGate(0, 1000)
	c.H(0)
	if got := c.Depth(d); got != 1005 {
		t.Fatalf("delay depth = %d, want 1005", got)
	}
	if _, _, err := c.RunStateVector(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

func TestDualRailReversedCNOT(t *testing.T) {
	// CNOT with control above target exercises the path-ordered ancilla
	// chain (descending columns on the ancilla rail).
	logical := New(3)
	logical.X(2)
	logical.CNOT(2, 0)
	logical.MeasureInto(0, 0)
	logical.MeasureInto(2, 1)
	phys, err := DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	if phys.NumQubits != 6 {
		t.Fatalf("physical qubits = %d, want 6", phys.NumQubits)
	}
	for seed := int64(0); seed < 10; seed++ {
		_, bits, err := phys.RunStabilizer(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] != 1 || bits[1] != 1 {
			t.Fatalf("seed %d: reversed CNOT broken: %v", seed, bits[:2])
		}
	}
}

func TestDualRailCrossingGatesPreserveData(t *testing.T) {
	// The failure mode that motivates the dual rail: a long-range gate whose
	// endpoints straddle another *live* logical qubit must not disturb it.
	logical := New(3)
	logical.H(1) // live superposition on the crossed qubit
	logical.X(0)
	logical.CNOT(0, 2) // crosses logical qubit 1
	logical.H(1)       // HH = I if qubit 1 was untouched
	logical.MeasureInto(1, 0)
	logical.MeasureInto(2, 1)
	phys, err := DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		_, bits, err := phys.RunStabilizer(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if bits[0] != 0 {
			t.Fatalf("seed %d: crossed qubit disturbed", seed)
		}
		if bits[1] != 1 {
			t.Fatalf("seed %d: CNOT did not fire", seed)
		}
	}
}

func TestDualRailGridLocality(t *testing.T) {
	// Every two-qubit gate in an embedded circuit must act on grid-adjacent
	// qubits (data rail row 0, ancilla rail row 1) — the property that lets
	// the compiler use nearest-neighbor BISP sync exclusively.
	logical := New(4)
	logical.H(0).CNOT(0, 3).CZ(3, 1).CPhaseGate(2, 0, math.Pi/4)
	phys, err := DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	w := DualRailEmbedding{}.GridW(4)
	for i, op := range phys.Ops {
		if op.Kind.IsTwoQubit() {
			a, b := op.Qubits[0], op.Qubits[1]
			dx := a%w - b%w
			dy := a/w - b/w
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx+dy != 1 {
				t.Fatalf("op %d (%s): grid distance %d", i, op, dx+dy)
			}
		}
	}
}

func TestLineEmbeddingRejectsCrossingGates(t *testing.T) {
	logical := New(3)
	logical.CNOT(0, 2)
	emb := LineEmbedding{Spacing: 2}
	if _, err := emb.Embed(logical); err == nil {
		t.Fatal("expected rejection of a gate routed across a logical qubit")
	}
}

func TestDualRailExactOnRandomInputs(t *testing.T) {
	// Whole-circuit unitary check: dual-rail embedding of a CNOT chain on
	// random non-Clifford inputs matches the logical circuit exactly.
	rng := rand.New(rand.NewSource(31))
	logical := New(4)
	idealView := New(8) // embedded space: 4 data + 4 ancilla
	randPrefix(rng, []int{0, 1, 2, 3}, logical, idealView)
	logical.CNOT(0, 3)
	logical.CNOT(2, 0)
	idealView.CNOT(0, 3)
	idealView.CNOT(2, 0)
	phys, err := DualRailEmbedding{}.Embed(logical)
	if err != nil {
		t.Fatal(err)
	}
	anc := []int{4, 5, 6, 7}
	resetAncillas(phys, anc)
	sd, _, err := phys.RunStateVector(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	si, _, err := idealView.RunStateVector(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if f := sd.Fidelity(si); math.Abs(f-1) > 1e-9 {
		t.Fatalf("dual-rail fidelity %g", f)
	}
}

func TestQASMRoundTripProperty(t *testing.T) {
	// Property: WriteQASM ∘ ParseQASM is the identity on random circuits
	// built from the full supported op set.
	rng := rand.New(rand.NewSource(55))
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed) + rng.Int63()))
		c := New(4)
		for i := 0; i < 20; i++ {
			q := r.Intn(4)
			p := (q + 1 + r.Intn(3)) % 4
			switch r.Intn(9) {
			case 0:
				c.H(q)
			case 1:
				c.T(q)
			case 2:
				c.RZGate(q, r.Float64())
			case 3:
				c.CNOT(q, p)
			case 4:
				c.CZ(q, p)
			case 5:
				c.CPhaseGate(q, p, r.Float64())
			case 6:
				c.MeasureNew(q)
			case 7:
				c.ResetGate(q)
			case 8:
				c.Sdg(q)
			}
		}
		src, err := WriteQASM(c)
		if err != nil {
			return false
		}
		back, err := ParseQASM(src)
		if err != nil {
			return false
		}
		if len(back.Ops) != len(c.Ops) || back.NumQubits != c.NumQubits {
			return false
		}
		for i := range c.Ops {
			a, b := c.Ops[i], back.Ops[i]
			if a.Kind != b.Kind || a.CBit != b.CBit || math.Abs(a.Param-b.Param) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthNonNegativeAndMonotoneProperty(t *testing.T) {
	// Property: appending any operation never decreases circuit depth.
	d := PaperDurations()
	f := func(seed uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		c := New(5)
		prev := int64(0)
		for i := 0; i < 30; i++ {
			q := r.Intn(5)
			switch r.Intn(4) {
			case 0:
				c.H(q)
			case 1:
				c.CNOT(q, (q+1)%5)
			case 2:
				c.MeasureNew(q)
			case 3:
				c.DelayGate(q, int64(r.Intn(100)))
			}
			dep := c.Depth(d)
			if dep < prev {
				return false
			}
			prev = dep
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
