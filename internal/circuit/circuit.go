// Package circuit defines the dynamic-circuit intermediate representation
// consumed by the Distributed-HISQ software stack (the "circuit-layer SISQ"
// of Fig. 10): gates, measurements into classical bits, and classically
// conditioned operations with parity conditions — the form produced by the
// long-range-CNOT transform of Fig. 14 and required by the logical-T
// workloads of Fig. 2.
package circuit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dhisq/internal/quantum"
	"dhisq/internal/stabilizer"
)

// Kind enumerates operations.
type Kind uint8

const (
	KindInvalid Kind = iota
	H
	X
	Y
	Z
	S
	Sdg
	T
	Tdg
	RX
	RY
	RZ
	CPhase // controlled phase (QFT primitive); Param is the angle
	CNOT
	CZ
	SWAP
	Measure // Qubits[0] measured into CBit
	Barrier // scheduling barrier across Qubits (empty = all)
	Delay   // hold Qubits[0] idle for Param cycles (decoder latency modeling, §6.4.2)
	Reset   // unconditional reset of Qubits[0] to |0> (reset drive pulse)
	// EPR prepares the maximally entangled pair (|00>+|11>)/sqrt(2) on its
	// two qubits, discarding their prior state. It is the inter-chip
	// entanglement resource of the multi-chip model: the expansion emits it
	// on communication qubits of different chips, and the chip model charges
	// it the configured generation latency with a heralding exchange over
	// the fabric (DESIGN.md §13). Semantically it is Reset+Reset+H+CNOT.
	EPR
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	H:           "h", X: "x", Y: "y", Z: "z", S: "s", Sdg: "sdg", T: "t", Tdg: "tdg",
	RX: "rx", RY: "ry", RZ: "rz", CPhase: "cp",
	CNOT: "cx", CZ: "cz", SWAP: "swap",
	Measure: "measure", Barrier: "barrier", Delay: "delay", Reset: "reset",
	EPR: "epr",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsTwoQubit reports whether the kind acts on exactly two qubits.
func (k Kind) IsTwoQubit() bool {
	switch k {
	case CNOT, CZ, SWAP, CPhase, EPR:
		return true
	}
	return false
}

// IsClifford reports whether the operation is simulable on a stabilizer
// tableau.
func (k Kind) IsClifford() bool {
	switch k {
	case H, X, Y, Z, S, Sdg, CNOT, CZ, SWAP, Measure, Barrier, Delay, Reset, EPR:
		return true
	}
	return false
}

// Condition guards an operation on classical bits: the op executes iff the
// XOR (parity) of the listed bits equals Parity. Single-bit feedback is the
// one-element case; the long-range CNOT corrections of Fig. 14 need the
// multi-bit parity form (the "XOR" box in the figure).
type Condition struct {
	Bits   []int
	Parity int // 0 or 1
}

// Op is one circuit operation.
//
// Sym names a symbolic parameter for rotation ops (RX/RY/RZ/CPhase): the
// angle is a free variable resolved by Bind rather than a literal. Sym
// survives binding — a bound op keeps its symbol name with Bound set and
// Param holding the bound value — so the compiler's codeword interning
// treats two different symbols as distinct table entries even when they
// happen to bind to the same angle, which is what makes BindParams on a
// structural artifact byte-identical to a fresh compile of the bound
// circuit (DESIGN.md §8).
type Op struct {
	Kind   Kind
	Qubits []int
	Param  float64
	CBit   int // Measure destination; -1 otherwise
	Cond   *Condition
	Sym    string // symbolic parameter name ("" = concrete Param)
	Bound  bool   // Sym has been bound (Param holds the value)
}

// Symbolic reports whether the op carries an unbound symbolic parameter.
func (o Op) Symbolic() bool { return o.Sym != "" && !o.Bound }

func (o Op) String() string {
	s := o.Kind.String()
	if o.Sym != "" {
		s += "(" + o.Sym + ")"
	}
	for _, q := range o.Qubits {
		s += fmt.Sprintf(" q%d", q)
	}
	if o.Kind == Measure {
		s += fmt.Sprintf(" -> c%d", o.CBit)
	}
	if o.Cond != nil {
		s = fmt.Sprintf("if(parity%v==%d) %s", o.Cond.Bits, o.Cond.Parity, s)
	}
	return s
}

// Circuit is a dynamic quantum circuit over NumQubits qubits and NumBits
// classical bits.
type Circuit struct {
	NumQubits int
	NumBits   int
	Ops       []Op
}

// New returns an empty circuit.
func New(qubits int) *Circuit { return &Circuit{NumQubits: qubits} }

func (c *Circuit) add(op Op) *Circuit {
	if op.Kind != Measure {
		op.CBit = -1
	}
	c.Ops = append(c.Ops, op)
	return c
}

// Gate appends an arbitrary unconditioned operation.
func (c *Circuit) Gate(k Kind, qubits ...int) *Circuit {
	return c.add(Op{Kind: k, Qubits: qubits})
}

// H and friends are builder conveniences.
func (c *Circuit) H(q int) *Circuit       { return c.Gate(H, q) }
func (c *Circuit) X(q int) *Circuit       { return c.Gate(X, q) }
func (c *Circuit) Y(q int) *Circuit       { return c.Gate(Y, q) }
func (c *Circuit) Z(q int) *Circuit       { return c.Gate(Z, q) }
func (c *Circuit) S(q int) *Circuit       { return c.Gate(S, q) }
func (c *Circuit) Sdg(q int) *Circuit     { return c.Gate(Sdg, q) }
func (c *Circuit) T(q int) *Circuit       { return c.Gate(T, q) }
func (c *Circuit) Tdg(q int) *Circuit     { return c.Gate(Tdg, q) }
func (c *Circuit) CNOT(a, b int) *Circuit { return c.Gate(CNOT, a, b) }
func (c *Circuit) CZ(a, b int) *Circuit   { return c.Gate(CZ, a, b) }
func (c *Circuit) SWAP(a, b int) *Circuit { return c.Gate(SWAP, a, b) }

// RXGate appends a rotation; name avoids clashing with the Kind constants.
func (c *Circuit) RXGate(q int, theta float64) *Circuit {
	return c.add(Op{Kind: RX, Qubits: []int{q}, Param: theta})
}

// RYGate appends an RY rotation.
func (c *Circuit) RYGate(q int, theta float64) *Circuit {
	return c.add(Op{Kind: RY, Qubits: []int{q}, Param: theta})
}

// RZGate appends an RZ rotation.
func (c *Circuit) RZGate(q int, theta float64) *Circuit {
	return c.add(Op{Kind: RZ, Qubits: []int{q}, Param: theta})
}

// CPhaseGate appends a controlled-phase rotation.
func (c *Circuit) CPhaseGate(a, b int, theta float64) *Circuit {
	return c.add(Op{Kind: CPhase, Qubits: []int{a, b}, Param: theta})
}

// RXSym appends an RX rotation by the symbolic parameter sym; the angle is
// supplied later via Bind.
func (c *Circuit) RXSym(q int, sym string) *Circuit {
	return c.add(Op{Kind: RX, Qubits: []int{q}, Sym: sym})
}

// RYSym appends a symbolic RY rotation.
func (c *Circuit) RYSym(q int, sym string) *Circuit {
	return c.add(Op{Kind: RY, Qubits: []int{q}, Sym: sym})
}

// RZSym appends a symbolic RZ rotation.
func (c *Circuit) RZSym(q int, sym string) *Circuit {
	return c.add(Op{Kind: RZ, Qubits: []int{q}, Sym: sym})
}

// CPhaseSym appends a symbolic controlled-phase rotation.
func (c *Circuit) CPhaseSym(a, b int, sym string) *Circuit {
	return c.add(Op{Kind: CPhase, Qubits: []int{a, b}, Sym: sym})
}

// Params returns the sorted set of symbolic parameter names appearing in
// the circuit, bound or not.
func (c *Circuit) Params() []string {
	return c.collectSyms(func(op Op) bool { return op.Sym != "" })
}

// UnboundParams returns the sorted set of symbolic parameters still
// awaiting a Bind. A circuit with unbound parameters is a skeleton: it can
// be compiled structurally (machine.CompileSkeleton) but not simulated or
// run directly.
func (c *Circuit) UnboundParams() []string {
	return c.collectSyms(Op.Symbolic)
}

func (c *Circuit) collectSyms(match func(Op) bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, op := range c.Ops {
		if match(op) && !seen[op.Sym] {
			seen[op.Sym] = true
			out = append(out, op.Sym)
		}
	}
	sort.Strings(out)
	return out
}

// CanonParam normalizes an angle for fingerprinting and table emission:
// -0.0 becomes +0.0, so the two zero encodings — which compile to
// identical programs — never fingerprint as different circuits.
func CanonParam(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

// Bind returns a copy of the circuit with every unbound symbolic parameter
// replaced by its value from vals. All unbound symbols must be supplied and
// every supplied name must appear in the circuit; values must not be NaN.
// Symbols survive binding (with Bound set), so compiling the bound circuit
// interns codeword-table entries exactly as the structural compile of the
// skeleton does — the property the BindParams equivalence proof rests on.
func (c *Circuit) Bind(vals map[string]float64) (*Circuit, error) {
	syms := map[string]bool{}
	for _, op := range c.Ops {
		if op.Sym != "" {
			syms[op.Sym] = true
		}
	}
	for name, v := range vals {
		if !syms[name] {
			return nil, fmt.Errorf("circuit: bind: unknown parameter %q", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("circuit: bind: parameter %q is %v (angles must be finite)", name, v)
		}
	}
	out := &Circuit{NumQubits: c.NumQubits, NumBits: c.NumBits, Ops: make([]Op, len(c.Ops))}
	for i, op := range c.Ops {
		cp := op
		cp.Qubits = append([]int(nil), op.Qubits...)
		if op.Cond != nil {
			cc := *op.Cond
			cc.Bits = append([]int(nil), op.Cond.Bits...)
			cp.Cond = &cc
		}
		if op.Sym != "" {
			if v, ok := vals[op.Sym]; ok {
				cp.Param = CanonParam(v)
				cp.Bound = true
			} else if !op.Bound {
				return nil, fmt.Errorf("circuit: bind: parameter %q left unbound", op.Sym)
			}
		}
		out.Ops[i] = cp
	}
	return out, nil
}

// MeasureInto measures qubit q into classical bit b (allocating bits as
// needed).
func (c *Circuit) MeasureInto(q, b int) *Circuit {
	if b >= c.NumBits {
		c.NumBits = b + 1
	}
	return c.add(Op{Kind: Measure, Qubits: []int{q}, CBit: b})
}

// MeasureNew measures q into a fresh classical bit and returns its index.
func (c *Circuit) MeasureNew(q int) int {
	b := c.NumBits
	c.MeasureInto(q, b)
	return b
}

// CondGate appends an operation conditioned on the parity of classical bits.
func (c *Circuit) CondGate(k Kind, cond Condition, qubits ...int) *Circuit {
	cc := cond
	cc.Bits = append([]int{}, cond.Bits...)
	return c.add(Op{Kind: k, Qubits: qubits, Cond: &cc})
}

// BarrierAll appends a global scheduling barrier.
func (c *Circuit) BarrierAll() *Circuit { return c.add(Op{Kind: Barrier}) }

// DelayGate holds qubit q idle for the given number of cycles (used to model
// decoder latency in the QEC workloads, §6.4.2).
func (c *Circuit) DelayGate(q int, cycles int64) *Circuit {
	return c.add(Op{Kind: Delay, Qubits: []int{q}, Param: float64(cycles)})
}

// ResetGate unconditionally returns qubit q to |0⟩ (a reset drive — the
// hardware alternative to measurement-conditioned X for ancilla recycling).
func (c *Circuit) ResetGate(q int) *Circuit { return c.add(Op{Kind: Reset, Qubits: []int{q}}) }

// Append concatenates another circuit's ops (qubit/bit spaces must already
// agree; use this for composing generated blocks).
func (c *Circuit) Append(o *Circuit) *Circuit {
	if o.NumQubits > c.NumQubits {
		c.NumQubits = o.NumQubits
	}
	if o.NumBits > c.NumBits {
		c.NumBits = o.NumBits
	}
	c.Ops = append(c.Ops, o.Ops...)
	return c
}

// symbolicKinds are the ops that may carry a symbolic parameter: the
// rotation angles, which never affect placement, guards, scheduling or
// sync arithmetic (the bind contract, DESIGN.md §8).
func symbolicOK(k Kind) bool {
	switch k {
	case RX, RY, RZ, CPhase:
		return true
	}
	return false
}

// maxDelay bounds Delay durations to the float64 exact-integer range, so
// the lowering's int64 conversion is always value-preserving.
const maxDelay = float64(1 << 53)

// Validate checks qubit/bit indices, arities and parameter sanity: NaN
// angles are rejected (they would break codeword-table interning, which
// keys on the parameter), Delay durations must be non-negative integers
// (the lowering converts them with int64(Param) — a fractional or negative
// value would silently compile to a garbage wait), and symbolic parameters
// are only legal on rotation ops.
func (c *Circuit) Validate() error {
	for i, op := range c.Ops {
		if math.IsNaN(op.Param) || math.IsInf(op.Param, 0) {
			return fmt.Errorf("circuit: op %d (%s): non-finite parameter %v", i, op, op.Param)
		}
		if op.Sym != "" && !symbolicOK(op.Kind) {
			return fmt.Errorf("circuit: op %d (%s): symbolic parameter %q on non-rotation op", i, op, op.Sym)
		}
		if op.Kind == Delay {
			switch p := op.Param; {
			case p < 0:
				return fmt.Errorf("circuit: op %d (%s): negative delay %v cycles", i, op, p)
			case p != math.Trunc(p):
				return fmt.Errorf("circuit: op %d (%s): fractional delay %v cycles (delays are integer cycle counts)", i, op, p)
			case p > maxDelay:
				return fmt.Errorf("circuit: op %d (%s): delay %v exceeds %v cycles", i, op, p, maxDelay)
			}
		}
		want := 1
		if op.Kind.IsTwoQubit() {
			want = 2
		}
		if op.Kind == Barrier {
			want = len(op.Qubits)
		}
		if len(op.Qubits) != want {
			return fmt.Errorf("circuit: op %d (%s): %d qubits, want %d", i, op, len(op.Qubits), want)
		}
		for _, q := range op.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit: op %d (%s): qubit %d out of range", i, op, q)
			}
		}
		if op.Kind.IsTwoQubit() && op.Qubits[0] == op.Qubits[1] {
			return fmt.Errorf("circuit: op %d (%s): duplicate qubit", i, op)
		}
		if op.Kind == Measure && (op.CBit < 0 || op.CBit >= c.NumBits) {
			return fmt.Errorf("circuit: op %d (%s): bad classical bit", i, op)
		}
		if op.Cond != nil {
			for _, b := range op.Cond.Bits {
				if b < 0 || b >= c.NumBits {
					return fmt.Errorf("circuit: op %d (%s): condition bit %d out of range", i, op, b)
				}
			}
		}
		if op.Kind == EPR && op.Cond != nil {
			return fmt.Errorf("circuit: op %d (%s): EPR generation cannot be conditioned", i, op)
		}
	}
	return nil
}

// Stats summarizes a circuit.
type Stats struct {
	OneQubit     int
	TwoQubit     int
	Measurements int
	Conditioned  int
	Feedforward  int // conditioned ops whose condition bits come from measurements
}

// CountStats tallies gate classes.
func (c *Circuit) CountStats() Stats {
	var s Stats
	for _, op := range c.Ops {
		switch {
		case op.Kind == Measure:
			s.Measurements++
		case op.Kind == Barrier:
		case op.Kind.IsTwoQubit():
			s.TwoQubit++
		default:
			s.OneQubit++
		}
		if op.Cond != nil {
			s.Conditioned++
			s.Feedforward++
		}
	}
	return s
}

// IsClifford reports whether every op is stabilizer-simulable.
func (c *Circuit) IsClifford() bool {
	for _, op := range c.Ops {
		if !op.Kind.IsClifford() {
			return false
		}
	}
	return true
}

func evalCond(cond *Condition, bits []int) bool {
	if cond == nil {
		return true
	}
	p := 0
	for _, b := range cond.Bits {
		p ^= bits[b]
	}
	return p == cond.Parity
}

// RunStateVector executes the circuit on a dense simulator, returning the
// final state and the classical bit values. Conditions are evaluated on the
// classical record exactly as the control stack would.
func (c *Circuit) RunStateVector(rng *rand.Rand) (*quantum.State, []int, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if ub := c.UnboundParams(); len(ub) > 0 {
		return nil, nil, fmt.Errorf("circuit: cannot simulate with unbound parameters %v (call Bind first)", ub)
	}
	st := quantum.NewState(c.NumQubits)
	bits := make([]int, c.NumBits)
	for _, op := range c.Ops {
		if !evalCond(op.Cond, bits) {
			continue
		}
		q := op.Qubits
		switch op.Kind {
		case H:
			st.H(q[0])
		case X:
			st.X(q[0])
		case Y:
			st.Y(q[0])
		case Z:
			st.Z(q[0])
		case S:
			st.S(q[0])
		case Sdg:
			st.Sdg(q[0])
		case T:
			st.T(q[0])
		case Tdg:
			st.Tdg(q[0])
		case RX:
			st.RX(q[0], op.Param)
		case RY:
			st.RY(q[0], op.Param)
		case RZ:
			st.RZ(q[0], op.Param)
		case CPhase:
			st.CPhase(q[0], q[1], op.Param)
		case CNOT:
			st.CNOT(q[0], q[1])
		case CZ:
			st.CZ(q[0], q[1])
		case SWAP:
			st.SWAP(q[0], q[1])
		case EPR:
			for _, qq := range q {
				if st.Measure(qq, rng) == 1 {
					st.X(qq)
				}
			}
			st.H(q[0])
			st.CNOT(q[0], q[1])
		case Measure:
			bits[op.CBit] = st.Measure(q[0], rng)
		case Reset:
			if st.Measure(q[0], rng) == 1 {
				st.X(q[0])
			}
		case Barrier, Delay:
		default:
			return nil, nil, fmt.Errorf("circuit: cannot simulate %s", op.Kind)
		}
	}
	return st, bits, nil
}

// RunStabilizer executes a Clifford circuit on a tableau.
func (c *Circuit) RunStabilizer(rng *rand.Rand) (*stabilizer.Tableau, []int, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if ub := c.UnboundParams(); len(ub) > 0 {
		return nil, nil, fmt.Errorf("circuit: cannot simulate with unbound parameters %v (call Bind first)", ub)
	}
	tb := stabilizer.New(c.NumQubits)
	bits := make([]int, c.NumBits)
	for _, op := range c.Ops {
		if !evalCond(op.Cond, bits) {
			continue
		}
		q := op.Qubits
		switch op.Kind {
		case H:
			tb.H(q[0])
		case X:
			tb.X(q[0])
		case Y:
			tb.Y(q[0])
		case Z:
			tb.Z(q[0])
		case S:
			tb.S(q[0])
		case Sdg:
			tb.Sdg(q[0])
		case CNOT:
			tb.CNOT(q[0], q[1])
		case CZ:
			tb.CZ(q[0], q[1])
		case SWAP:
			tb.SWAP(q[0], q[1])
		case EPR:
			for _, qq := range q {
				if tb.MeasureZ(qq, rng) == 1 {
					tb.X(qq)
				}
			}
			tb.H(q[0])
			tb.CNOT(q[0], q[1])
		case Measure:
			bits[op.CBit] = tb.MeasureZ(q[0], rng)
		case Reset:
			if tb.MeasureZ(q[0], rng) == 1 {
				tb.X(q[0])
			}
		case Barrier, Delay:
		default:
			return nil, nil, fmt.Errorf("circuit: %s is not Clifford", op.Kind)
		}
	}
	return tb, bits, nil
}

// Durations gives the fixed operation times of the evaluation (§6.4.1):
// 20 ns single-qubit, 40 ns two-qubit, 300 ns measurement, on a 4 ns grid.
type Durations struct {
	OneQubit int64 // cycles
	TwoQubit int64
	Measure  int64
}

// PaperDurations are the §6.4.1 constants in cycles.
func PaperDurations() Durations { return Durations{OneQubit: 5, TwoQubit: 10, Measure: 75} }

// Depth returns the circuit's time depth in cycles under d, using ASAP
// scheduling on per-qubit timelines and treating conditioned ops as ordinary
// gates (the dependency through classical bits is charged by the full-system
// simulation, not here). It is the metric for the Fig. 14 constant-depth
// claim.
func (c *Circuit) Depth(d Durations) int64 {
	avail := make([]int64, c.NumQubits)
	measDone := make([]int64, c.NumBits)
	var maxT int64
	for _, op := range c.Ops {
		if op.Kind == Barrier {
			qs := op.Qubits
			if len(qs) == 0 {
				var m int64
				for _, t := range avail {
					if t > m {
						m = t
					}
				}
				for i := range avail {
					avail[i] = m
				}
			}
			continue
		}
		var dur int64
		switch {
		case op.Kind == Measure:
			dur = d.Measure
		case op.Kind == Delay:
			dur = int64(op.Param)
		case op.Kind.IsTwoQubit():
			dur = d.TwoQubit
		default:
			dur = d.OneQubit
		}
		start := int64(0)
		for _, q := range op.Qubits {
			if avail[q] > start {
				start = avail[q]
			}
		}
		if op.Cond != nil {
			for _, b := range op.Cond.Bits {
				if measDone[b] > start {
					start = measDone[b]
				}
			}
		}
		end := start + dur
		for _, q := range op.Qubits {
			avail[q] = end
		}
		if op.Kind == Measure {
			measDone[op.CBit] = end
		}
		if end > maxT {
			maxT = end
		}
	}
	return maxT
}
