package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randChipOf draws a random assignment of n qubits to k chips with every
// chip non-empty.
func randChipOf(rng *rand.Rand, n, k int) []int {
	chipOf := make([]int, n)
	for {
		used := make([]bool, k)
		for q := range chipOf {
			chipOf[q] = rng.Intn(k)
			used[chipOf[q]] = true
		}
		ok := true
		for _, u := range used {
			ok = ok && u
		}
		if ok {
			return chipOf
		}
	}
}

// randUnitary builds a random measurement-free circuit mixing every gate
// kind the remote expansion handles, including plenty of two-qubit gates
// that will cross chip boundaries.
func randUnitary(rng *rand.Rand, n int) *Circuit {
	c := New(n)
	oneQ := []Kind{H, X, Y, Z, S, T}
	for i := 0; i < 8*n; i++ {
		if rng.Intn(2) == 0 {
			c.Gate(oneQ[rng.Intn(len(oneQ))], rng.Intn(n))
			continue
		}
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		switch rng.Intn(4) {
		case 0:
			c.CNOT(a, b)
		case 1:
			c.CZ(a, b)
		case 2:
			c.SWAP(a, b)
		default:
			c.CPhaseGate(a, b, 0.25+rng.Float64())
		}
	}
	return c
}

// TestExpandRemoteStateOracle is the circuit-level half of the remote-gate
// oracle battery: for random unitary circuits and random chip partitions,
// the expanded circuit (teleported cross-chip gates, comm qubits, herald
// measurements) must leave the data qubits in exactly the merged circuit's
// state and every comm qubit back in |0>, up to one global phase. The
// teleportation corrections make this hold for every herald outcome, so
// the check is independent of the RNG driving the comm measurements.
func TestExpandRemoteStateOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4) // 2..5 data qubits
		k := 2 + rng.Intn(2) // 2..3 chips
		if k > n {
			k = n
		}
		c := randUnitary(rng, n)
		chipOf := randChipOf(rng, n, k)
		exp, err := ExpandRemote(c, chipOf, k)
		if err != nil {
			t.Fatalf("trial %d: ExpandRemote: %v", trial, err)
		}
		if exp.NumQubits != n+k {
			t.Fatalf("trial %d: expanded to %d qubits, want %d", trial, exp.NumQubits, n+k)
		}

		want, _, err := c.RunStateVector(rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("trial %d: merged run: %v", trial, err)
		}
		got, _, err := exp.RunStateVector(rand.New(rand.NewSource(int64(trial) + 7)))
		if err != nil {
			t.Fatalf("trial %d: expanded run: %v", trial, err)
		}

		// Fix the global phase on the largest merged amplitude.
		ref := 0
		for i := 1; i < 1<<n; i++ {
			if cmplx.Abs(want.Amplitude(i)) > cmplx.Abs(want.Amplitude(ref)) {
				ref = i
			}
		}
		phase := got.Amplitude(ref) / want.Amplitude(ref)
		if math.Abs(cmplx.Abs(phase)-1) > 1e-9 {
			t.Fatalf("trial %d: reference amplitude magnitude drifted: |%v| != 1", trial, phase)
		}
		for i := 0; i < 1<<(n+k); i++ {
			var wantAmp complex128
			if i < 1<<n { // comm qubits n..n+k-1 all |0>
				wantAmp = phase * want.Amplitude(i)
			}
			if cmplx.Abs(got.Amplitude(i)-wantAmp) > 1e-9 {
				t.Fatalf("trial %d (n=%d k=%d chipOf=%v): amplitude %d = %v, want %v",
					trial, n, k, chipOf, i, got.Amplitude(i), wantAmp)
			}
		}
	}
}

// TestExpandRemoteTruthTable pins the deterministic behavior of each
// teleported gate on computational-basis inputs, measurement and
// feed-forward corrections included.
func TestExpandRemoteTruthTable(t *testing.T) {
	chipOf := []int{0, 1}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for _, gate := range []string{"cnot", "cz-conj", "swap"} {
				c := New(2)
				if a == 1 {
					c.X(0)
				}
				if b == 1 {
					c.X(1)
				}
				switch gate {
				case "cnot":
					c.CNOT(0, 1)
				case "cz-conj": // H(1) CZ H(1) == CNOT(0,1)
					c.H(1)
					c.CZ(0, 1)
					c.H(1)
				case "swap":
					c.SWAP(0, 1)
				}
				c.MeasureNew(0)
				c.MeasureNew(1)
				exp, err := ExpandRemote(c, chipOf, 2)
				if err != nil {
					t.Fatalf("%s a=%d b=%d: %v", gate, a, b, err)
				}
				var want0, want1 int
				if gate == "swap" {
					want0, want1 = b, a
				} else {
					want0, want1 = a, a^b
				}
				for seed := int64(0); seed < 8; seed++ {
					_, bits, err := exp.RunStateVector(rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("%s a=%d b=%d seed=%d: %v", gate, a, b, seed, err)
					}
					if bits[0] != want0 || bits[1] != want1 {
						t.Fatalf("%s a=%d b=%d seed=%d: bits %d%d, want %d%d",
							gate, a, b, seed, bits[0], bits[1], want0, want1)
					}
				}
			}
		}
	}
}

// TestExpandRemotePreservesSymbolicParams: a cross-chip CPhase with an
// unbound symbolic parameter must survive expansion still symbolic on the
// teleported gate, so remote circuits flow through the late-binding path.
func TestExpandRemotePreservesSymbolicParams(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CPhaseSym(0, 1, "theta")
	exp, err := ExpandRemote(c, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var found int
	for _, op := range exp.Ops {
		if op.Kind == CPhase {
			found++
			if op.Sym != "theta" || op.Bound {
				t.Fatalf("teleported CPhase lost its symbol: %+v", op)
			}
		}
	}
	if found != 1 {
		t.Fatalf("expanded circuit has %d CPhase ops, want 1", found)
	}
	if ps := exp.UnboundParams(); len(ps) != 1 || ps[0] != "theta" {
		t.Fatalf("expanded unbound params %v, want [theta]", ps)
	}
}

// TestExpandRemoteBitLayout: teleport herald bits must all be allocated
// after the original circuit's classical bits, whatever order measurements
// and remote gates interleave in.
func TestExpandRemoteBitLayout(t *testing.T) {
	c := New(4)
	c.H(0)
	c.CNOT(0, 2) // remote under the contiguous 2-chip split
	m := c.MeasureNew(1)
	c.CondGate(X, Condition{Bits: []int{m}, Parity: 1}, 3)
	c.CNOT(1, 3) // remote
	c.MeasureNew(0)
	exp, err := ExpandRemote(c, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exp.NumBits <= c.NumBits {
		t.Fatalf("expanded NumBits %d, want > original %d", exp.NumBits, c.NumBits)
	}
	for _, op := range exp.Ops {
		if op.Kind != Measure {
			continue
		}
		orig := op.Qubits[0] < c.NumQubits
		if orig && op.CBit < c.NumBits {
			continue // original measurement kept its bit
		}
		if !orig && op.CBit < c.NumBits {
			t.Fatalf("herald measurement of comm qubit %d landed in public bit %d", op.Qubits[0], op.CBit)
		}
	}
}

// TestExpandRemoteErrors exercises the rejection paths.
func TestExpandRemoteErrors(t *testing.T) {
	base := New(2)
	base.CNOT(0, 1)
	cases := []struct {
		name   string
		build  func() (*Circuit, []int, int)
		substr string
	}{
		{"chipOf-length", func() (*Circuit, []int, int) { return base, []int{0}, 2 }, "chip assignment"},
		{"chip-range", func() (*Circuit, []int, int) { return base, []int{0, 5}, 2 }, "chip"},
		{"conditioned-crossing", func() (*Circuit, []int, int) {
			c := New(2)
			m := c.MeasureNew(0)
			c.CondGate(CNOT, Condition{Bits: []int{m}, Parity: 1}, 0, 1)
			return c, []int{0, 1}, 2
		}, "conditioned"},
		{"epr-input", func() (*Circuit, []int, int) {
			c := New(2)
			c.Gate(EPR, 0, 1)
			return c, []int{0, 1}, 2
		}, "EPR"},
	}
	for _, tc := range cases {
		c, chipOf, k := tc.build()
		if _, err := ExpandRemote(c, chipOf, k); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestRemoteGateCount checks the cut metric: crossing two-qubit gates
// count once each (SWAP included), local gates and 1q/measure ops never.
func TestRemoteGateCount(t *testing.T) {
	c := New(4)
	c.H(0)
	c.CNOT(0, 1)            // local
	c.CNOT(0, 2)            // cut
	c.SWAP(1, 3)            // cut (counts once)
	c.CPhaseGate(2, 3, 0.5) // local
	c.MeasureNew(0)
	if got := RemoteGateCount(c, []int{0, 0, 1, 1}); got != 2 {
		t.Fatalf("RemoteGateCount = %d, want 2", got)
	}
	if got := RemoteGateCount(c, []int{0, 0, 0, 0}); got != 0 {
		t.Fatalf("single-chip RemoteGateCount = %d, want 0", got)
	}
}

// TestEPRKindProperties pins the enum-level contract of the EPR kind.
func TestEPRKindProperties(t *testing.T) {
	if !EPR.IsTwoQubit() || !EPR.IsClifford() {
		t.Fatalf("EPR must be a two-qubit Clifford resource op")
	}
	if EPR.String() != "epr" {
		t.Fatalf("EPR.String() = %q", EPR.String())
	}
	c := New(2)
	c.Ops = append(c.Ops, Op{Kind: EPR, Qubits: []int{0, 1}, Cond: &Condition{Bits: []int{0}, Parity: 1}})
	c.NumBits = 1
	if err := c.Validate(); err == nil {
		t.Fatalf("conditioned EPR must not validate")
	}
	// Semantics: EPR on |anything> yields a Bell pair.
	b := New(2)
	b.X(0).X(1) // junk the inputs; EPR must reset them first
	b.Gate(EPR, 0, 1)
	st, _, err := b.RunStateVector(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	inv := 1 / math.Sqrt2
	for i := 0; i < 4; i++ {
		want := complex(0, 0)
		if i == 0 || i == 3 {
			want = complex(inv, 0)
		}
		if cmplx.Abs(st.Amplitude(i)-want) > 1e-12 {
			t.Fatalf("EPR amplitude %d = %v, want %v", i, st.Amplitude(i), want)
		}
	}
	// Stabilizer path agrees.
	tb, _, err := b.RunStabilizer(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	_ = tb
}

func ExampleExpandRemote() {
	c := New(2)
	c.H(0)
	c.CNOT(0, 1)
	exp, _ := ExpandRemote(c, []int{0, 1}, 2)
	fmt.Println(exp.NumQubits, "qubits,", RemoteGateCount(c, []int{0, 1}), "remote gate")
	// Output: 4 qubits, 1 remote gate
}

// TestRemoteHelpersMatchLocalGates pins the public teleportation builders
// (RemoteCNOT/RemoteCZ/RemoteCPhase) directly: on 2 data + 2 comm qubits,
// each teleported gate leaves the data qubits in exactly the state the
// local gate produces, for every herald outcome (hence the seed loop).
func TestRemoteHelpersMatchLocalGates(t *testing.T) {
	cases := []struct {
		name   string
		local  func(c *Circuit)
		remote func(c *Circuit)
	}{
		{"cnot", func(c *Circuit) { c.CNOT(0, 1) }, func(c *Circuit) { c.RemoteCNOT(0, 1, 2, 3) }},
		{"cz", func(c *Circuit) { c.CZ(0, 1) }, func(c *Circuit) { c.RemoteCZ(0, 1, 2, 3) }},
		{"cphase", func(c *Circuit) { c.CPhaseGate(0, 1, 0.9) }, func(c *Circuit) { c.RemoteCPhase(0, 1, 0.9, 2, 3) }},
	}
	for _, tc := range cases {
		want := New(2)
		want.H(0)
		want.H(1)
		tc.local(want)
		ws, _, err := want.RunStateVector(rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: local run: %v", tc.name, err)
		}
		for seed := int64(0); seed < 8; seed++ {
			got := New(4)
			got.H(0)
			got.H(1)
			tc.remote(got)
			gs, _, err := got.RunStateVector(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%s seed %d: remote run: %v", tc.name, seed, err)
			}
			ref := 0
			for i := 1; i < 4; i++ {
				if cmplx.Abs(ws.Amplitude(i)) > cmplx.Abs(ws.Amplitude(ref)) {
					ref = i
				}
			}
			phase := gs.Amplitude(ref) / ws.Amplitude(ref)
			for i := 0; i < 1<<4; i++ {
				wantAmp := complex(0, 0)
				if i < 4 {
					wantAmp = phase * ws.Amplitude(i)
				}
				if cmplx.Abs(gs.Amplitude(i)-wantAmp) > 1e-9 {
					t.Fatalf("%s seed %d: amplitude %d = %v, want %v", tc.name, seed, i, gs.Amplitude(i), wantAmp)
				}
			}
		}
	}
}
