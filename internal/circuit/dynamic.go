package circuit

import "fmt"

// This file implements the dynamic-circuit constructions of Figure 14 and
// the paper's §6.4.2 benchmarks: long-range CNOT (and controlled-phase) via
// gate teleportation with measurement and parity-conditioned Pauli
// feed-forward, following Bäumer et al. [3]. The constructions keep circuit
// depth constant in the qubit distance — the property Figure 14 highlights —
// and they are verified against direct CNOT application in the package tests
// using the stabilizer oracle.

// LongRangeCNOT appends a CNOT between ctrl and tgt implemented through the
// given chain of ancilla qubits (all assumed |0⟩ and returned to classical
// states; they are measured inside the block). Works for any number of
// ancillas:
//
//	0 ancillas: plain CNOT
//	1 ancilla:  CNOT ladder + X-basis measurement + conditioned Z (cat method)
//	m ≥ 2:      constant-depth Bell-pair/entanglement-swap construction with
//	            only parity-conditioned X on target and Z on control at the
//	            end (the "XOR" boxes of Fig. 14). Odd m leaves one ancilla idle.
func (c *Circuit) LongRangeCNOT(ctrl, tgt int, ancillas []int) *Circuit {
	m := len(ancillas)
	if m == 0 {
		return c.CNOT(ctrl, tgt)
	}
	if m%2 == 1 {
		// Odd chain: copy the control's basis value onto the ancilla
		// adjacent to the target with the even-chain construction, apply the
		// CNOT locally, then uncompute the copy with an X-basis measurement
		// and a conditioned Z on the control (the cat method). For m == 1
		// this is the plain three-gate ladder.
		cat := ancillas[m-1]
		c.LongRangeCNOT(ctrl, cat, ancillas[:m-1])
		c.CNOT(cat, tgt)
		c.H(cat)
		mb := c.MeasureNew(cat)
		c.CondGate(Z, Condition{Bits: []int{mb}, Parity: 1}, ctrl)
		c.ResetGate(cat)
		return c
	}
	k := m / 2
	a := ancillas

	// Layer 1+2: Bell pairs (a[2i], a[2i+1]).
	for i := 0; i < k; i++ {
		c.H(a[2*i])
		c.CNOT(a[2*i], a[2*i+1])
	}
	// Layer 3 (all disjoint, constant depth): endpoint entangling CNOTs and
	// the entanglement-swap CNOTs at every junction (a[2i+1], a[2i+2]).
	c.CNOT(ctrl, a[0])
	for i := 0; i < k-1; i++ {
		c.CNOT(a[2*i+1], a[2*i+2])
	}
	c.CNOT(a[m-1], tgt)
	// Layer 4: X-basis rotations for the swap sources and the final half.
	for i := 0; i < k-1; i++ {
		c.H(a[2*i+1])
	}
	c.H(a[m-1])
	// Layer 5: measure everything in parallel.
	m1 := c.MeasureNew(a[0]) // Z basis
	xBits := make([]int, 0, k)
	zBits := make([]int, 0, k)
	for i := 0; i < k-1; i++ {
		xBits = append(xBits, c.MeasureNew(a[2*i+1])) // X basis (after H)
		zBits = append(zBits, c.MeasureNew(a[2*i+2])) // Z basis
	}
	m2 := c.MeasureNew(a[m-1]) // X basis (after H)

	// Feed-forward: X on target conditioned on m1 ⊕ (⊕ swap Z outcomes);
	// Z on control conditioned on m2 ⊕ (⊕ swap X outcomes).
	c.CondGate(X, Condition{Bits: append([]int{m1}, zBits...), Parity: 1}, tgt)
	c.CondGate(Z, Condition{Bits: append([]int{m2}, xBits...), Parity: 1}, ctrl)
	// Reset drive: every measured ancilla returns to |0⟩ so chains can be
	// reused by subsequent long-range gates.
	for i := 0; i < m; i++ {
		c.ResetGate(a[i])
	}
	return c
}

// LongRangeCZ appends a CZ between a and b through the ancilla chain,
// reusing the CNOT construction with a basis change on the target.
func (c *Circuit) LongRangeCZ(a, b int, ancillas []int) *Circuit {
	c.H(b)
	c.LongRangeCNOT(a, b, ancillas)
	c.H(b)
	return c
}

// LongRangeCPhase appends a controlled-phase between ctrl and tgt through
// the ancilla chain using the cat-state method: the control's basis value is
// copied to the ancilla nearest the target with a (long-range) CNOT, the
// phase is applied locally, and the copy is uncomputed by an X-basis
// measurement with a conditioned Z on the control [6]. This is the primitive
// that makes the distributed QFT of Fig. 1 possible.
func (c *Circuit) LongRangeCPhase(ctrl, tgt int, theta float64, ancillas []int) *Circuit {
	if len(ancillas) == 0 {
		return c.CPhaseGate(ctrl, tgt, theta)
	}
	last := len(ancillas) - 1
	cat := ancillas[last]
	c.LongRangeCNOT(ctrl, cat, ancillas[:last])
	c.CPhaseGate(cat, tgt, theta)
	c.H(cat)
	m := c.MeasureNew(cat)
	c.CondGate(Z, Condition{Bits: []int{m}, Parity: 1}, ctrl)
	c.ResetGate(cat)
	return c
}

// LineEmbedding spreads a logical circuit across a 1-D chain with the given
// spacing: logical qubit i maps to physical qubit i*spacing, and the
// spacing-1 physical qubits between consecutive logical qubits serve as
// ancillas for dynamic long-range gates.
//
// The ancilla chain of a long-range gate must consist of free qubits, so
// LineEmbedding only accepts two-qubit gates between logically adjacent
// qubits (|i-j| == 1); gates that would route through another logical
// qubit's position are rejected. For circuits with arbitrary interaction
// distance use DualRailEmbedding, which reserves a dedicated ancilla rail.
type LineEmbedding struct {
	Spacing int
}

// PhysicalQubits returns the chain length for n logical qubits.
func (e LineEmbedding) PhysicalQubits(logical int) int {
	if logical <= 1 {
		return logical
	}
	return (logical-1)*e.Spacing + 1
}

// Embed rewrites logical circuit lc into a dynamic physical circuit. Only
// CNOT/CZ/CPhase are rewritten long-range; single-qubit ops map directly.
// Gates between logical neighbors (physical distance == spacing) still go
// through the dynamic construction unless spacing == 1.
func (e LineEmbedding) Embed(lc *Circuit) (*Circuit, error) {
	if e.Spacing < 1 {
		return nil, fmt.Errorf("circuit: spacing %d < 1", e.Spacing)
	}
	phys := New(e.PhysicalQubits(lc.NumQubits))
	phys.NumBits = lc.NumBits
	loc := func(q int) int { return q * e.Spacing }
	// ancBetween returns the physical qubits strictly between two logical
	// qubits in path order from the first to the second: the construction
	// entangles ancillas[0] with the first endpoint and the last ancilla
	// with the second, so order is a locality requirement.
	ancBetween := func(from, to int) []int {
		a, b := loc(from), loc(to)
		step := 1
		if a > b {
			step = -1
		}
		anc := make([]int, 0)
		for p := a + step; p != b; p += step {
			anc = append(anc, p)
		}
		return anc
	}
	for _, op := range lc.Ops {
		if op.Kind.IsTwoQubit() {
			d := op.Qubits[0] - op.Qubits[1]
			if d < 0 {
				d = -d
			}
			if d > 1 {
				return nil, fmt.Errorf("circuit: LineEmbedding cannot route %s across logical qubits (distance %d); use DualRailEmbedding", op.Kind, d)
			}
		}
		switch {
		case op.Kind == CNOT && op.Cond == nil:
			phys.LongRangeCNOT(loc(op.Qubits[0]), loc(op.Qubits[1]), ancBetween(op.Qubits[0], op.Qubits[1]))
		case op.Kind == CZ && op.Cond == nil:
			phys.LongRangeCZ(loc(op.Qubits[0]), loc(op.Qubits[1]), ancBetween(op.Qubits[0], op.Qubits[1]))
		case op.Kind == CPhase && op.Cond == nil:
			if op.Symbolic() {
				return nil, fmt.Errorf("circuit: cannot route unbound cp(%s) long-range (the decomposition halves the angle; Bind first)", op.Sym)
			}
			phys.LongRangeCPhase(loc(op.Qubits[0]), loc(op.Qubits[1]), op.Param, ancBetween(op.Qubits[0], op.Qubits[1]))
		case op.Kind == SWAP && op.Cond == nil:
			a, b := loc(op.Qubits[0]), loc(op.Qubits[1])
			fwd := ancBetween(op.Qubits[0], op.Qubits[1])
			rev := ancBetween(op.Qubits[1], op.Qubits[0])
			phys.LongRangeCNOT(a, b, fwd)
			phys.LongRangeCNOT(b, a, rev)
			phys.LongRangeCNOT(a, b, fwd)
		default:
			mapped := Op{Kind: op.Kind, Param: op.Param, CBit: op.CBit, Cond: op.Cond, Sym: op.Sym, Bound: op.Bound}
			for _, q := range op.Qubits {
				mapped.Qubits = append(mapped.Qubits, loc(q))
			}
			if op.Kind.IsTwoQubit() && phys.distanceGreaterThanOne(mapped.Qubits) {
				return nil, fmt.Errorf("circuit: cannot embed %s long-range", op.Kind)
			}
			phys.Ops = append(phys.Ops, mapped)
		}
	}
	return phys, nil
}

func (c *Circuit) distanceGreaterThanOne(q []int) bool {
	d := q[0] - q[1]
	if d < 0 {
		d = -d
	}
	return d > 1
}

// DualRailEmbedding maps an L-qubit logical circuit onto a 2×L grid device:
// logical qubit i lives at physical index i (the data rail) and physical
// index L+i is its dedicated ancilla (the ancilla rail). A two-qubit gate
// between logical i and j routes through the contiguous ancilla segment
// anc(i)..anc(j), which is adjacent to both endpoints vertically and
// internally adjacent horizontally — so every emitted two-qubit gate is
// nearest-neighbor on the grid and no chain ever crosses live data. This is
// the device layout for the paper's benchmark conversion (§6.4.2): static
// circuits gain ancilla qubits and all non-adjacent interactions become
// Fig. 14 dynamic long-range gates.
type DualRailEmbedding struct{}

// PhysicalQubits returns 2·logical.
func (DualRailEmbedding) PhysicalQubits(logical int) int { return 2 * logical }

// GridW returns the mesh width the embedded circuit assumes (qubit p sits at
// mesh position (p%L, p/L)).
func (DualRailEmbedding) GridW(logical int) int { return logical }

// Embed rewrites the logical circuit into a dynamic physical circuit.
func (DualRailEmbedding) Embed(lc *Circuit) (*Circuit, error) {
	L := lc.NumQubits
	phys := New(2 * L)
	phys.NumBits = lc.NumBits
	anc := func(i int) int { return L + i }
	// chain returns the ancilla path from logical from to logical to,
	// inclusive of both endpoints' ancillas.
	chain := func(from, to int) []int {
		step := 1
		if from > to {
			step = -1
		}
		out := make([]int, 0, (to-from)*step+1)
		for i := from; ; i += step {
			out = append(out, anc(i))
			if i == to {
				return out
			}
		}
	}
	for _, op := range lc.Ops {
		if op.Kind.IsTwoQubit() && op.Cond == nil {
			a, b := op.Qubits[0], op.Qubits[1]
			d := a - b
			if d < 0 {
				d = -d
			}
			if d == 1 {
				phys.add(Op{Kind: op.Kind, Qubits: []int{a, b}, Param: op.Param, CBit: -1, Sym: op.Sym, Bound: op.Bound})
				continue
			}
			if op.Symbolic() {
				return nil, fmt.Errorf("circuit: cannot route unbound %s(%s) long-range (the decomposition halves the angle; Bind first)", op.Kind, op.Sym)
			}
			switch op.Kind {
			case CNOT:
				phys.LongRangeCNOT(a, b, chain(a, b))
			case CZ:
				phys.LongRangeCZ(a, b, chain(a, b))
			case CPhase:
				phys.LongRangeCPhase(a, b, op.Param, chain(a, b))
			case SWAP:
				phys.LongRangeCNOT(a, b, chain(a, b))
				phys.LongRangeCNOT(b, a, chain(b, a))
				phys.LongRangeCNOT(a, b, chain(a, b))
			}
			continue
		}
		mapped := Op{Kind: op.Kind, Param: op.Param, CBit: op.CBit, Cond: op.Cond, Sym: op.Sym, Bound: op.Bound}
		mapped.Qubits = append(mapped.Qubits, op.Qubits...)
		phys.Ops = append(phys.Ops, mapped)
		if op.Kind.IsTwoQubit() {
			d := op.Qubits[0] - op.Qubits[1]
			if d < 0 {
				d = -d
			}
			if d > 1 {
				return nil, fmt.Errorf("circuit: conditioned long-range %s not supported", op.Kind)
			}
		}
	}
	return phys, nil
}

// SwapRouteCNOT appends the static alternative Figure 14 contrasts against:
// a CNOT implemented by SWAP-routing the control next to the target and
// back. Depth grows linearly with distance — the ablation benchmark
// (exp.Fig14LongRange) measures exactly this against LongRangeCNOT.
func (c *Circuit) SwapRouteCNOT(ctrl, tgt int, chain []int) *Circuit {
	pos := ctrl
	for _, a := range chain {
		c.SWAP(pos, a)
		pos = a
	}
	c.CNOT(pos, tgt)
	for i := len(chain) - 1; i >= 0; i-- {
		prev := ctrl
		if i > 0 {
			prev = chain[i-1]
		}
		c.SWAP(chain[i], prev)
	}
	return c
}
