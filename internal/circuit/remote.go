package circuit

import "fmt"

// This file implements EPR-mediated remote two-qubit gates between chips,
// following the distributed-CNOT recipe of DiAdamo et al. and the squidasm
// routines (SNIPPETS.md §1–2): generate an EPR pair across the chip boundary,
// entangle the control with its half (the cat-entangler), apply the gate
// locally on the far side, and disentangle with an X-basis measurement and
// parity-conditioned Pauli corrections. Where dynamic.go routes through
// chains of free ancillas on one chip, these constructions consume a single
// shared EPR pair held on dedicated communication qubits — the inter-chip
// primitive of the multi-chip model (DESIGN.md §13). The constructions are
// verified against merged-single-chip execution in the package tests.

// remoteControlled appends the teleported version of the two-qubit gate op
// (control side = op.Qubits[0], on the chip owning comm qubit ka; target
// side = op.Qubits[1], on the chip owning comm qubit kb):
//
//	EPR(ka,kb); CNOT(ctrl,ka); m1 = M(ka); X(kb) if m1   — cat-entangler:
//	    kb now carries the control's basis value, entangled with ctrl
//	G(kb, tgt)                                           — the gate, locally
//	H(kb); m2 = M(kb); Z(ctrl) if m2                     — cat-disentangler
//	Reset(ka); Reset(kb)                                 — recycle the pair
//
// The comm qubits return to |0⟩ so subsequent remote gates can reuse them.
func (c *Circuit) remoteControlled(op Op, ka, kb int) *Circuit {
	ctrl, tgt := op.Qubits[0], op.Qubits[1]
	c.Gate(EPR, ka, kb)
	c.CNOT(ctrl, ka)
	m1 := c.MeasureNew(ka)
	c.CondGate(X, Condition{Bits: []int{m1}, Parity: 1}, kb)
	c.add(Op{Kind: op.Kind, Qubits: []int{kb, tgt}, Param: op.Param, Sym: op.Sym, Bound: op.Bound})
	c.H(kb)
	m2 := c.MeasureNew(kb)
	c.CondGate(Z, Condition{Bits: []int{m2}, Parity: 1}, ctrl)
	c.ResetGate(ka)
	c.ResetGate(kb)
	return c
}

// RemoteCNOT appends a CNOT between ctrl and tgt mediated by the EPR pair
// (ka, kb), where ka is a communication qubit co-located with ctrl and kb
// one co-located with tgt.
func (c *Circuit) RemoteCNOT(ctrl, tgt, ka, kb int) *Circuit {
	return c.remoteControlled(Op{Kind: CNOT, Qubits: []int{ctrl, tgt}}, ka, kb)
}

// RemoteCZ appends a CZ between a and b mediated by the EPR pair (ka, kb).
func (c *Circuit) RemoteCZ(a, b, ka, kb int) *Circuit {
	return c.remoteControlled(Op{Kind: CZ, Qubits: []int{a, b}}, ka, kb)
}

// RemoteCPhase appends a controlled-phase between a and b mediated by the
// EPR pair (ka, kb). Unlike the long-range chain construction, the teleported
// form applies the phase gate with its original angle (the control is copied,
// not half-angle decomposed), so symbolic parameters survive — remote-gate
// circuits flow through the bind path unchanged.
func (c *Circuit) RemoteCPhase(a, b int, theta float64, ka, kb int) *Circuit {
	return c.remoteControlled(Op{Kind: CPhase, Qubits: []int{a, b}, Param: theta}, ka, kb)
}

// ExpandRemote rewrites circuit c for a device of the given chip count:
// chipOf[q] names the chip holding data qubit q, and each chip j gains one
// communication qubit at index c.NumQubits+j. Two-qubit gates whose operands
// share a chip pass through unchanged; cross-chip CNOT/CZ/CPhase become
// teleported constructions over the two chips' comm-qubit EPR pair, and a
// cross-chip SWAP becomes three teleported CNOTs. The returned circuit has
// c.NumQubits+chips qubits; classical bits 0..c.NumBits-1 keep their
// meaning and teleport outcomes occupy new bits after them (the compiler
// records c.NumBits as PublicBits so results stay comparable to the
// unexpanded circuit).
func ExpandRemote(c *Circuit, chipOf []int, chips int) (*Circuit, error) {
	if chips < 1 {
		return nil, fmt.Errorf("circuit: ExpandRemote with %d chips", chips)
	}
	if len(chipOf) != c.NumQubits {
		return nil, fmt.Errorf("circuit: chip partition covers %d qubits, circuit has %d", len(chipOf), c.NumQubits)
	}
	for q, ch := range chipOf {
		if ch < 0 || ch >= chips {
			return nil, fmt.Errorf("circuit: qubit %d assigned to chip %d of %d", q, ch, chips)
		}
	}
	out := New(c.NumQubits + chips)
	out.NumBits = c.NumBits
	comm := func(chip int) int { return c.NumQubits + chip }
	remote := func(op Op) error {
		a, b := op.Qubits[0], op.Qubits[1]
		if op.Cond != nil {
			return fmt.Errorf("circuit: conditioned cross-chip %s not supported", op.Kind)
		}
		ka, kb := comm(chipOf[a]), comm(chipOf[b])
		switch op.Kind {
		case CNOT, CZ, CPhase:
			out.remoteControlled(op, ka, kb)
		case SWAP:
			out.RemoteCNOT(a, b, ka, kb)
			out.RemoteCNOT(b, a, kb, ka)
			out.RemoteCNOT(a, b, ka, kb)
		default:
			return fmt.Errorf("circuit: cannot expand cross-chip %s", op.Kind)
		}
		return nil
	}
	for i, op := range c.Ops {
		if op.Kind == EPR {
			return nil, fmt.Errorf("circuit: op %d: EPR in input circuit (already expanded?)", i)
		}
		if op.Kind.IsTwoQubit() && len(op.Qubits) == 2 && chipOf[op.Qubits[0]] != chipOf[op.Qubits[1]] {
			if err := remote(op); err != nil {
				return nil, fmt.Errorf("op %d: %w", i, err)
			}
			continue
		}
		cp := Op{Kind: op.Kind, Param: op.Param, CBit: op.CBit, Sym: op.Sym, Bound: op.Bound}
		cp.Qubits = append([]int{}, op.Qubits...)
		if op.Cond != nil {
			cc := *op.Cond
			cc.Bits = append([]int{}, op.Cond.Bits...)
			cp.Cond = &cc
		}
		out.Ops = append(out.Ops, cp)
	}
	return out, nil
}

// RemoteGateCount returns the number of two-qubit ops in c that cross the
// chip partition — the gates ExpandRemote would teleport (a cross-chip SWAP
// counts once).
func RemoteGateCount(c *Circuit, chipOf []int) int {
	n := 0
	for _, op := range c.Ops {
		if op.Kind.IsTwoQubit() && len(op.Qubits) == 2 && chipOf[op.Qubits[0]] != chipOf[op.Qubits[1]] {
			n++
		}
	}
	return n
}
