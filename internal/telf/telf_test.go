package telf

import (
	"strings"
	"testing"
)

func TestTextParseRoundTrip(t *testing.T) {
	l := NewLog()
	l.Add(Event{Time: 10, Node: 0, Kind: CWCommit, A: 7, B: 2})
	l.Add(Event{Time: 12, Node: 1, Kind: SyncBook, A: 36, B: 42})
	l.Add(Event{Time: 42, Node: 1, Kind: SyncDone, A: 36, B: 42})
	l.Add(Event{Time: 50, Node: 0, Kind: Violation, A: 3, B: 4})
	text := l.Text()
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(l.Events) {
		t.Fatalf("%d events, want %d", len(back.Events), len(l.Events))
	}
	for i := range l.Events {
		if back.Events[i] != l.Events[i] {
			t.Fatalf("event %d: %v != %v", i, back.Events[i], l.Events[i])
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse("not a telf line"); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Parse("5 node=1 nosuchkind a=0 b=0"); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestCountsSurviveDisabledStorage(t *testing.T) {
	l := NewLog()
	l.SetEnabled(false)
	l.Add(Event{Time: 1, Kind: Violation})
	l.Add(Event{Time: 2, Kind: Violation})
	if len(l.Events) != 0 {
		t.Fatal("events stored while disabled")
	}
	if l.Count(Violation) != 2 {
		t.Fatalf("count = %d, want 2", l.Count(Violation))
	}
}

func TestCommitsFilterAndSort(t *testing.T) {
	l := NewLog()
	l.Add(Event{Time: 30, Node: 0, Kind: CWCommit, A: 1, B: 7})
	l.Add(Event{Time: 10, Node: 0, Kind: CWCommit, A: 2, B: 7})
	l.Add(Event{Time: 20, Node: 0, Kind: CWCommit, A: 3, B: 5}) // other port
	l.Add(Event{Time: 15, Node: 1, Kind: CWCommit, A: 4, B: 7}) // other node
	got := l.Commits(0, 7)
	if len(got) != 2 || got[0].Time != 10 || got[1].Time != 30 {
		t.Fatalf("commits = %v", got)
	}
	if all := l.Commits(0, -1); len(all) != 3 {
		t.Fatalf("wildcard port commits = %d", len(all))
	}
}

func TestCheckAlignment(t *testing.T) {
	l := NewLog()
	for i := int64(0); i < 3; i++ {
		l.Add(Event{Time: 100 * (i + 1), Node: 0, Kind: CWCommit, A: 1, B: 7})
		l.Add(Event{Time: 100*(i+1) + 55, Node: 1, Kind: CWCommit, A: 1, B: 5})
	}
	rep := CheckAlignment(l, 0, 7, 1, 5)
	if rep.Pairs != 3 {
		t.Fatalf("pairs = %d", rep.Pairs)
	}
	if rep.MaxAbsDelta() != 55 {
		t.Fatalf("max delta = %d", rep.MaxAbsDelta())
	}
	if !rep.Aligned(55) || rep.Aligned(54) {
		t.Fatal("alignment tolerance logic broken")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 5, Node: 2, Kind: MsgSend, A: 1, B: 9}
	if s := e.String(); !strings.Contains(s, "msg_send") || !strings.Contains(s, "node=2") {
		t.Fatalf("bad string: %q", s)
	}
}
