// Package telf implements the Timing Event Logging Format used to verify the
// timing behaviour of Distributed-HISQ. The paper verifies CACTUS-Light
// against the FPGA implementation by comparing TELF traces (§6.4.1); here the
// TELF log is the ground truth that tests and the Figure 13 experiment
// inspect: every codeword commit, synchronization booking/resolution, message
// transfer and timing violation is recorded with its cycle timestamp.
package telf

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a timing event.
type Kind uint8

const (
	KindInvalid Kind = iota
	CWCommit         // codeword A committed to port B
	SyncBook         // sync booked: A = target address, B = booked time-point T_i
	SyncDone         // sync resolved: A = target address, B = resume time
	SyncLate         // sync resolved after its booked window: A = target, B = lateness
	MsgSend          // message sent: A = destination node, B = value
	MsgRecv          // message received: A = source node, B = value
	MeasStart        // measurement window opened: A = channel, B = qubit
	MeasResult       // measurement result latched: A = channel, B = value
	Violation        // timing violation: event enqueued after its commit time; B = slip cycles
	Stall            // pipeline stalled: A = reason code, B = duration
	Halt             // core halted
	NetStall         // message queued at a busy link/port: A = source node (-1 router-originated), B = wait cycles
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	CWCommit:    "cw_commit",
	SyncBook:    "sync_book",
	SyncDone:    "sync_done",
	SyncLate:    "sync_late",
	MsgSend:     "msg_send",
	MsgRecv:     "msg_recv",
	MeasStart:   "meas_start",
	MeasResult:  "meas_result",
	Violation:   "violation",
	Stall:       "stall",
	Halt:        "halt",
	NetStall:    "net_stall",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one timestamped occurrence on one node. The meaning of A and B
// depends on Kind (see the Kind constants).
type Event struct {
	Time int64
	Node int
	Kind Kind
	A    int64
	B    int64
}

// String renders the event as one TELF text line.
func (e Event) String() string {
	return fmt.Sprintf("%d node=%d %s a=%d b=%d", e.Time, e.Node, e.Kind, e.A, e.B)
}

// Log accumulates events. It is not safe for concurrent use; the simulation
// kernel is single-threaded by design.
type Log struct {
	Events  []Event
	enabled bool
	// counts is a dense array, not a map: Add sits on the per-event hot
	// path of every simulation, and a map increment there is pure hashing
	// overhead for a key space of a dozen kinds.
	counts [len(kindNames)]int
}

// NewLog returns an enabled log.
func NewLog() *Log {
	return &Log{enabled: true}
}

// SetEnabled toggles recording; counts are maintained regardless, so large
// benchmark runs can disable event storage but keep violation statistics.
func (l *Log) SetEnabled(on bool) { l.enabled = on }

// Reset clears recorded events and counts while keeping the enabled flag
// and the event storage capacity, so a multi-shot run reuses one log.
func (l *Log) Reset() {
	l.Events = l.Events[:0]
	l.counts = [len(kindNames)]int{}
}

// Add records an event.
func (l *Log) Add(e Event) {
	if int(e.Kind) < len(l.counts) {
		l.counts[e.Kind]++
	}
	if l.enabled {
		l.Events = append(l.Events, e)
	}
}

// Count returns how many events of kind k were recorded (including while
// storage was disabled).
func (l *Log) Count(k Kind) int {
	if int(k) >= len(l.counts) {
		return 0
	}
	return l.counts[k]
}

// Filter returns the events satisfying keep, in log order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range l.Events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Commits returns all codeword commits on the given node and port, sorted by
// time. port < 0 matches every port.
func (l *Log) Commits(node, port int) []Event {
	out := l.Filter(func(e Event) bool {
		return e.Kind == CWCommit && e.Node == node && (port < 0 || e.B == int64(port))
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Text serializes the log, one line per event, in insertion order.
func (l *Log) Text() string {
	var b strings.Builder
	for _, e := range l.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Parse reads the Text format back into a log. It is the inverse of Text for
// well-formed input and returns an error otherwise.
func Parse(s string) (*Log, error) {
	l := NewLog()
	for i, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Event
		var kind string
		_, err := fmt.Sscanf(line, "%d node=%d %s a=%d b=%d", &e.Time, &e.Node, &kind, &e.A, &e.B)
		if err != nil {
			return nil, fmt.Errorf("telf: line %d: %w", i+1, err)
		}
		e.Kind = KindInvalid
		for k, name := range kindNames {
			if name == kind {
				e.Kind = Kind(k)
				break
			}
		}
		if e.Kind == KindInvalid {
			return nil, fmt.Errorf("telf: line %d: unknown kind %q", i+1, kind)
		}
		l.Add(e)
	}
	return l, nil
}

// AlignmentReport describes how two commit streams line up in time. It is
// the software analogue of putting two board outputs on an oscilloscope
// (Figure 13): Deltas[i] is the cycle difference between the i-th commit of
// stream B and the i-th commit of stream A.
type AlignmentReport struct {
	Pairs  int
	Deltas []int64
}

// MaxAbsDelta returns the largest absolute misalignment, 0 for empty reports.
func (r AlignmentReport) MaxAbsDelta() int64 {
	var m int64
	for _, d := range r.Deltas {
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Aligned reports whether every pair committed within tol cycles.
func (r AlignmentReport) Aligned(tol int64) bool { return r.MaxAbsDelta() <= tol }

// CheckAlignment pairs the commit events of (nodeA, portA) with those of
// (nodeB, portB) in order and reports their time deltas. Unpaired trailing
// commits are ignored; Pairs reports how many were compared.
func CheckAlignment(l *Log, nodeA, portA, nodeB, portB int) AlignmentReport {
	a := l.Commits(nodeA, portA)
	b := l.Commits(nodeB, portB)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	r := AlignmentReport{Pairs: n, Deltas: make([]int64, n)}
	for i := 0; i < n; i++ {
		r.Deltas[i] = b[i].Time - a[i].Time
	}
	return r
}
