package network

import (
	"testing"

	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

func fabricFor(t *testing.T, cfg Config) (*Fabric, *sim.Engine, []*scriptedEndpoint, *telf.Log) {
	t.Helper()
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	log := telf.NewLog()
	fab := NewFabric(eng, topo, log)
	eps := make([]*scriptedEndpoint, topo.N)
	for i := range eps {
		eps[i] = &scriptedEndpoint{}
		fab.Attach(i, eps[i])
	}
	return fab, eng, eps, log
}

func TestLinkSerializationQueuesMessages(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH = 2, 2
	cfg.LinkSerialization = 3
	fab, eng, eps, log := fabricFor(t, cfg)

	// Two messages over the same directed link in the same cycle: the
	// second must wait out the first's 3-cycle serialization.
	fab.SendMessage(0, 1, 1, 100)
	fab.SendMessage(0, 1, 2, 100)
	eng.Run(0)

	want := []sim.Time{100 + cfg.NeighborLatency, 103 + cfg.NeighborLatency}
	if len(eps[1].msgAt) != 2 || eps[1].msgAt[0] != want[0] || eps[1].msgAt[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v", eps[1].msgAt, want)
	}
	st := fab.Congestion()
	if !st.Enabled {
		t.Fatal("congestion stats should be enabled")
	}
	if st.LinkMessages != 2 || st.LinkStall != 3 || st.LinkMaxQueue != 1 {
		t.Fatalf("link stats = %+v", st)
	}
	if log.Count(telf.NetStall) != 1 {
		t.Fatalf("net_stall events = %d, want 1", log.Count(telf.NetStall))
	}

	// Reset clears occupancy and counters.
	fab.Reset()
	if st := fab.Congestion(); st.LinkMessages != 0 || st.LinkStall != 0 || st.LinkMaxQueue != 0 {
		t.Fatalf("post-reset stats = %+v", st)
	}
}

func TestContentionDisabledIsTransparent(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH = 2, 2 // LinkSerialization stays 0
	fab, eng, eps, log := fabricFor(t, cfg)

	fab.SendMessage(0, 1, 1, 100)
	fab.SendMessage(0, 1, 2, 100)
	eng.Run(0)

	want := 100 + cfg.NeighborLatency
	if len(eps[1].msgAt) != 2 || eps[1].msgAt[0] != want || eps[1].msgAt[1] != want {
		t.Fatalf("arrivals = %v, want both %d", eps[1].msgAt, want)
	}
	if st := fab.Congestion(); st.Enabled || st.LinkMessages != 0 {
		t.Fatalf("disabled model recorded stats: %+v", st)
	}
	if log.Count(telf.NetStall) != 0 {
		t.Fatal("disabled model logged net_stall events")
	}
}

func TestNetStallAttributedToSourceController(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH = 2, 2
	cfg.LinkSerialization = 5
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	// Endpoint 0 is a stall sink; the rest are plain.
	sink := &stallSinkEndpoint{}
	fab.Attach(0, sink)
	for i := 1; i < 4; i++ {
		fab.Attach(i, &scriptedEndpoint{})
	}
	fab.SendMessage(0, 1, 1, 10)
	fab.SendMessage(0, 1, 2, 10)
	fab.SendMessage(0, 1, 3, 10)
	eng.Run(0)
	// Second message waits 5, third waits 10.
	if sink.stall != 15 {
		t.Fatalf("attributed stall = %d, want 15", sink.stall)
	}
}

type stallSinkEndpoint struct {
	scriptedEndpoint
	stall sim.Time
}

func (s *stallSinkEndpoint) AddNetStall(d sim.Time) { s.stall += d }

func TestTorusWraparound(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH = 4, 4
	cfg.Topology = TopoTorus
	topo := mustTopo(t, cfg)

	if !topo.Adjacent(0, 3) {
		t.Fatal("row ends must be adjacent on the torus")
	}
	if !topo.Adjacent(0, 12) {
		t.Fatal("column ends must be adjacent on the torus")
	}
	if d := topo.MeshDistance(0, 15); d != 2 {
		t.Fatalf("torus distance(0,15) = %d, want 2", d)
	}
	if s := topo.MeshStep(0, 3); s != 3 {
		t.Fatalf("torus step(0,3) = %d, want wraparound 3", s)
	}
	// The shortened metric shrinks the calibrated window.
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	if w := fab.NearbyWindow(0, 3); w != cfg.NeighborLatency {
		t.Fatalf("torus nearby window = %d, want %d", w, cfg.NeighborLatency)
	}
}

func TestTreeOnlyTopology(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 2, 2, 4
	cfg.Topology = TopoTree
	fab, eng, eps, _ := fabricFor(t, cfg)

	if fab.Topo.Adjacent(0, 1) {
		t.Fatal("tree-only topology must have no mesh links")
	}
	// Two leaves under one router: 2 hops * 4 + 1 router * 1 = 9.
	if w := fab.NearbyWindow(0, 1); w != 9 {
		t.Fatalf("tree nearby window = %d, want 9", w)
	}
	fab.SendSyncSignal(0, 1, 100)
	fab.SendMessage(0, 1, 7, 100)
	eng.Run(0)
	if len(eps[1].signals) != 1 || eps[1].signals[0] != 109 {
		t.Fatalf("sync signal at %v, want 109", eps[1].signals)
	}
	if len(eps[1].msgAt) != 1 || eps[1].msgAt[0] != 109 {
		t.Fatalf("message at %v, want 109", eps[1].msgAt)
	}
}

func TestRouterPortSharingSerializesBroadcast(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 2, 2, 4
	cfg.LinkSerialization = 2
	cfg.RouterPorts = 1 // all 4 downlinks share one physical port
	fab, eng, eps, _ := fabricFor(t, cfg)
	root := fab.Topo.Root

	window := fab.RegionWindow(0, root)
	for i := 0; i < 4; i++ {
		fab.BookRegion(i, root, 100+window, 100)
	}
	eng.Run(0)

	// Everyone still agrees on the common time-point (protocol correctness
	// survives contention), but the one-port broadcast serializes.
	for i, ep := range eps {
		if len(ep.tms) != 1 {
			t.Fatalf("leaf %d: %d resumes", i, len(ep.tms))
		}
		if ep.tms[0] != eps[0].tms[0] {
			t.Fatalf("leaf %d disagrees on Tm: %d vs %d", i, ep.tms[0], eps[0].tms[0])
		}
	}
	st := fab.Congestion()
	if st.PortStall == 0 || st.PortMaxQueue == 0 {
		t.Fatalf("one-port broadcast should queue: %+v", st)
	}
	if st.RouterBusiest == 0 || st.RouterBusy < st.RouterBusiest {
		t.Fatalf("router busy accounting: %+v", st)
	}
}

func TestLinkQueueCapCountsOverflows(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH = 2, 2
	cfg.LinkSerialization = 4
	cfg.LinkQueueCap = 2
	fab, eng, eps, _ := fabricFor(t, cfg)
	for i := 0; i < 6; i++ {
		fab.SendMessage(0, 1, uint32(i), 50)
	}
	eng.Run(0)
	if len(eps[1].msgs) != 6 {
		t.Fatalf("messages must never be dropped: got %d of 6", len(eps[1].msgs))
	}
	st := fab.Congestion()
	// Backlogs of 1,2,3,4,5 precede messages 2..6; depths >= cap(2) are
	// messages 3,4,5,6.
	if st.LinkOverflows != 4 {
		t.Fatalf("overflows = %d, want 4", st.LinkOverflows)
	}
	if st.LinkMaxQueue != 5 {
		t.Fatalf("max queue = %d, want 5", st.LinkMaxQueue)
	}
}

// TestCongestionLinkBreakdown pins the per-link attribution: every active
// link appears once with correct endpoints, messages, and stall; idle
// links are omitted; the breakdown sums back to the aggregate counters.
func TestCongestionLinkBreakdown(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH = 2, 2
	cfg.LinkSerialization = 3
	fab, eng, _, _ := fabricFor(t, cfg)

	// Two messages on 0->1 (second stalls 3), one on 2->3, none elsewhere.
	fab.SendMessage(0, 1, 1, 100)
	fab.SendMessage(0, 1, 2, 100)
	fab.SendMessage(2, 3, 3, 100)
	eng.Run(0)

	st := fab.Congestion()
	if len(st.Links) != 2 {
		t.Fatalf("links = %+v, want exactly the two active links", st.Links)
	}
	var sumMsgs uint64
	var sumStall sim.Time
	byPair := map[[2]int]LinkStat{}
	for _, l := range st.Links {
		byPair[[2]int{l.From, l.To}] = l
		sumMsgs += l.Messages
		sumStall += l.Stall
	}
	l01, ok := byPair[[2]int{0, 1}]
	if !ok || l01.Messages != 2 || l01.Stall != 3 || l01.MaxQueue != 1 {
		t.Fatalf("0->1 link stat = %+v (present %v)", l01, ok)
	}
	l23, ok := byPair[[2]int{2, 3}]
	if !ok || l23.Messages != 1 || l23.Stall != 0 {
		t.Fatalf("2->3 link stat = %+v (present %v)", l23, ok)
	}
	if sumMsgs != st.LinkMessages || sumStall != st.LinkStall {
		t.Fatalf("breakdown sums (%d msgs, %d stall) != aggregate (%d, %d)",
			sumMsgs, sumStall, st.LinkMessages, st.LinkStall)
	}
}

// TestLinkEndpointsInvertsLinkIndex: the reporting inverse must round-trip
// every directed neighbor link the reservation side can index, on both
// mesh (no wrap) and torus (wrap) shapes.
func TestLinkEndpointsInvertsLinkIndex(t *testing.T) {
	for _, kind := range []TopologyKind{TopoMesh, TopoTorus} {
		cfg := DefaultConfig(12)
		cfg.MeshW, cfg.MeshH = 4, 3
		cfg.Topology = kind
		cfg.LinkSerialization = 1
		fab, _, _, _ := fabricFor(t, cfg)
		topo := fab.Topo
		for from := 0; from < topo.N; from++ {
			for to := 0; to < topo.N; to++ {
				if from == to || !topo.Adjacent(from, to) {
					continue
				}
				i := fab.linkIndex(from, to)
				gotFrom, gotTo := fab.linkEndpoints(i)
				if gotFrom != from || gotTo != to {
					t.Fatalf("%v: linkEndpoints(linkIndex(%d,%d)) = (%d,%d)",
						kind, from, to, gotFrom, gotTo)
				}
			}
		}
	}
}
