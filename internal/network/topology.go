// Package network implements the distributed fabric of Distributed-HISQ
// (§5): the hybrid topology — a mesh-like intra-layer connecting leaf
// controllers (mirroring the qubit device topology) plus a tree-like
// inter-layer of routers — the Figure 8 routing mechanism for region-level
// synchronization, and classical message routing for feedback.
package network

import (
	"fmt"
	"sync"

	"dhisq/internal/sim"
)

// TopologyKind selects the intra-layer structure connecting leaf
// controllers. The inter-layer router tree is present in every kind.
type TopologyKind int

const (
	// TopoMesh is the paper's hybrid topology (§5.1): a 2-D nearest-neighbor
	// mesh mirroring the qubit device plus the balanced router tree. The
	// zero value, so legacy configs are unchanged.
	TopoMesh TopologyKind = iota
	// TopoTorus adds wraparound links to the mesh: row and column ends are
	// adjacent, halving worst-case mesh distance on large grids.
	TopoTorus
	// TopoTree removes the mesh entirely: every signal and message —
	// nearby syncs included — climbs the router tree, whose fanout
	// (RouterFanout) is the only connectivity knob. The "fat-tree-only"
	// point of the topology study.
	TopoTree
)

var topologyNames = map[TopologyKind]string{
	TopoMesh:  "mesh",
	TopoTorus: "torus",
	TopoTree:  "tree",
}

func (k TopologyKind) String() string {
	if n, ok := topologyNames[k]; ok {
		return n
	}
	return fmt.Sprintf("topology(%d)", int(k))
}

// ParseTopology maps a CLI flag value onto a TopologyKind.
func ParseTopology(s string) (TopologyKind, error) {
	for k, n := range topologyNames {
		if n == s {
			return k, nil
		}
	}
	return TopoMesh, fmt.Errorf("network: unknown topology %q (want mesh, torus, or tree)", s)
}

// Config parameterizes the fabric. All latencies are in cycles (4 ns).
type Config struct {
	// MeshW, MeshH give the leaf controller grid; controller i sits at
	// (i%MeshW, i/MeshW), matching a qubit-per-controller device layout.
	MeshW, MeshH int
	// RouterFanout is the number of children per router in the balanced
	// inter-layer tree (§5.1 adopts a balanced tree of minimal height).
	RouterFanout int
	// NeighborLatency is the one-way latency of a mesh link between adjacent
	// controllers — the calibrated N of nearby BISP sync (§4.1).
	NeighborLatency sim.Time
	// TreeHopLatency is the one-way latency of one tree edge.
	TreeHopLatency sim.Time
	// RouterProc is the processing delay a router adds per forwarded message.
	RouterProc sim.Time
	// Topology selects the intra-layer structure (zero value = TopoMesh,
	// the legacy hybrid topology).
	Topology TopologyKind
	// LinkSerialization is the occupancy one message places on a mesh link
	// or router port, in cycles — the reciprocal link bandwidth. 0 models
	// infinite bandwidth: no queueing, no congestion statistics, schedules
	// byte-identical to the pre-contention fabric (DESIGN.md §6).
	LinkSerialization sim.Time
	// RouterPorts is the number of physical ports per router. Routers have
	// one logical edge per child plus one to their parent; with fewer
	// ports than edges, edges share ports round-robin and contend. 0 gives
	// every edge a dedicated port (no port sharing).
	RouterPorts int
	// LinkQueueCap bounds the per-link/per-port FIFO depth tracked by the
	// congestion statistics; arrivals that find the backlog at or above
	// the cap are counted as overflows. Messages are never dropped (a
	// lossy fabric would break BISP). 0 = unbounded.
	LinkQueueCap int
}

// ContentionEnabled reports whether this config models finite link
// bandwidth (the serialization/queueing machinery activates).
func (c Config) ContentionEnabled() bool { return c.LinkSerialization > 0 }

// NearSquareMesh returns the smallest near-square controller mesh
// (w, h) that fits n qubits: w is the ceiling square root, h the rows
// needed. It is THE default placement heuristic — the facade's Sample,
// the job service, and the CLIs all place unmapped circuits with it, so
// the same circuit fingerprints identically at every entry point.
func NearSquareMesh(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	return w, (n + w - 1) / w
}

// DefaultConfig returns a fabric sized for n controllers with the latency
// constants used throughout the evaluation: 2-cycle (8 ns) mesh links,
// 4-cycle (16 ns) tree hops, 1-cycle router processing.
func DefaultConfig(n int) Config {
	w, h := NearSquareMesh(n)
	return Config{
		MeshW:           w,
		MeshH:           h,
		RouterFanout:    4,
		NeighborLatency: 2,
		TreeHopLatency:  4,
		RouterProc:      1,
	}
}

// Topology is the static structure: controller addresses are 0..N-1 in
// row-major mesh order; router addresses follow, level by level, ending at
// the root.
type Topology struct {
	Cfg        Config
	N          int // number of leaf controllers
	NumRouters int
	parent     []int   // node -> parent router (root's parent = -1)
	children   [][]int // router-local (indexed by router-N): child node addrs
	depth      []int   // node -> depth (root = 0)
	Root       int

	// Leaf spans: every subtree's leaf set is a contiguous run of leafBuf
	// (the balanced tree groups consecutive nodes), so Leaves returns a
	// shared subslice instead of allocating per call.
	leafBuf []int
	leafLo  []int // node -> span start in leafBuf
	leafHi  []int // node -> span end in leafBuf

	// TreePath memo: the contention layer re-derives the same paths for
	// every message, so computed paths are cached and shared. Guarded by a
	// mutex because runner replicas may probe placements concurrently.
	pathMu    sync.Mutex
	pathCache map[int64][]int
}

// NewTopology builds the hybrid topology for the given config.
func NewTopology(cfg Config) (*Topology, error) {
	n := cfg.MeshW * cfg.MeshH
	if n <= 0 {
		return nil, fmt.Errorf("network: empty mesh %dx%d", cfg.MeshW, cfg.MeshH)
	}
	if cfg.RouterFanout < 2 {
		return nil, fmt.Errorf("network: router fanout %d < 2", cfg.RouterFanout)
	}
	t := &Topology{Cfg: cfg, N: n}

	// Build the balanced tree bottom-up: group the current level into
	// parents of RouterFanout children until one node remains. A single
	// controller still gets one root router so region sync is well-defined.
	level := make([]int, n)
	for i := range level {
		level[i] = i
	}
	next := n // next router address
	parent := map[int]int{}
	children := map[int][]int{}
	for len(level) > 1 || next == n {
		var up []int
		for i := 0; i < len(level); i += cfg.RouterFanout {
			j := i + cfg.RouterFanout
			if j > len(level) {
				j = len(level)
			}
			r := next
			next++
			for _, c := range level[i:j] {
				parent[c] = r
			}
			children[r] = append([]int{}, level[i:j]...)
			up = append(up, r)
		}
		level = up
	}
	t.Root = level[0]
	t.NumRouters = next - n
	parent[t.Root] = -1

	t.parent = make([]int, next)
	t.children = make([][]int, t.NumRouters)
	t.depth = make([]int, next)
	for node := 0; node < next; node++ {
		p, ok := parent[node]
		if !ok {
			p = -1
		}
		t.parent[node] = p
	}
	for r, cs := range children {
		t.children[r-n] = cs
	}
	// Depth by walking up.
	for node := 0; node < next; node++ {
		d := 0
		for p := t.parent[node]; p >= 0; p = t.parent[p] {
			d++
		}
		t.depth[node] = d
	}
	// Precompute the leaf spans behind Leaves: one DFS fills a shared
	// buffer; every node's subtree leaves are a contiguous run of it.
	t.leafBuf = make([]int, 0, n)
	t.leafLo = make([]int, next)
	t.leafHi = make([]int, next)
	var fillLeaves func(node int)
	fillLeaves = func(node int) {
		t.leafLo[node] = len(t.leafBuf)
		if t.IsRouter(node) {
			for _, c := range t.Children(node) {
				fillLeaves(c)
			}
		} else {
			t.leafBuf = append(t.leafBuf, node)
		}
		t.leafHi[node] = len(t.leafBuf)
	}
	fillLeaves(t.Root)
	t.pathCache = map[int64][]int{}
	return t, nil
}

// IsRouter reports whether addr names a router.
func (t *Topology) IsRouter(addr int) bool { return addr >= t.N && addr < t.N+t.NumRouters }

// Parent returns the parent router of a node (-1 for the root).
func (t *Topology) Parent(addr int) int { return t.parent[addr] }

// Children returns the child nodes of a router.
func (t *Topology) Children(router int) []int { return t.children[router-t.N] }

// Coord returns the mesh coordinates of a controller.
func (t *Topology) Coord(ctrl int) (x, y int) { return ctrl % t.Cfg.MeshW, ctrl / t.Cfg.MeshW }

// MeshDistance is the distance between two controllers on the intra-layer
// grid: Manhattan for TopoMesh, wraparound Manhattan for TopoTorus. It is
// a metric either way (symmetric, triangle inequality) — the randomized
// invariant tests assert this on sampled triples. TopoTree keeps the
// geometric metric for placement heuristics even though it has no mesh
// links.
func (t *Topology) MeshDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if t.Cfg.Topology == TopoTorus {
		if wrap := t.Cfg.MeshW - dx; wrap < dx {
			dx = wrap
		}
		if wrap := t.Cfg.MeshH - dy; wrap < dy {
			dy = wrap
		}
	}
	return dx + dy
}

// Adjacent reports whether two controllers share an intra-layer link.
// TopoTree has no intra-layer links at all.
func (t *Topology) Adjacent(a, b int) bool {
	if t.Cfg.Topology == TopoTree {
		return false
	}
	return a != b && a < t.N && b < t.N && MeshDistanceOne(t, a, b)
}

// MeshStep returns the controller one intra-layer link from a toward b
// (x first, then y; torus steps wrap when the wraparound direction is
// shorter). a == b returns a.
func (t *Topology) MeshStep(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	w, h := t.Cfg.MeshW, t.Cfg.MeshH
	step := func(from, to, size int) int {
		if from == to {
			return from
		}
		fwd := to - from
		if fwd < 0 {
			fwd = -fwd
		}
		dir := 1
		if to < from {
			dir = -1
		}
		if t.Cfg.Topology == TopoTorus && size-fwd < fwd {
			dir = -dir // wrapping is shorter
		}
		return ((from+dir)%size + size) % size
	}
	if ax != bx {
		return ay*w + step(ax, bx, w)
	}
	if ay != by {
		return step(ay, by, h)*w + ax
	}
	return a
}

// TreePath returns the node sequence from a to b through their lowest
// common ancestor, endpoints included. It is the hop-by-hop form of
// TreePathHops: len(TreePath(a,b))-1 == TreePathHops(a,b).
//
// The returned slice is a shared, memoized table — the contention layer
// walks the same paths for every message — and must not be mutated.
func (t *Topology) TreePath(a, b int) []int {
	key := int64(a)*int64(t.N+t.NumRouters) + int64(b)
	t.pathMu.Lock()
	if p, ok := t.pathCache[key]; ok {
		t.pathMu.Unlock()
		return p
	}
	t.pathMu.Unlock()
	var up []int
	var down []int
	da, db := t.depth[a], t.depth[b]
	for da > db {
		up = append(up, a)
		a = t.parent[a]
		da--
	}
	for db > da {
		down = append(down, b)
		b = t.parent[b]
		db--
	}
	for a != b {
		up = append(up, a)
		down = append(down, b)
		a, b = t.parent[a], t.parent[b]
	}
	path := append(up, a)
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	t.pathMu.Lock()
	t.pathCache[key] = path
	t.pathMu.Unlock()
	return path
}

// MeshDistanceOne reports Manhattan distance exactly 1.
func MeshDistanceOne(t *Topology, a, b int) bool { return t.MeshDistance(a, b) == 1 }

// IsAncestor reports whether router r is an ancestor of node (controllers'
// region sync targets must be ancestors, §3.1.3).
func (t *Topology) IsAncestor(r, node int) bool {
	for p := t.parent[node]; p >= 0; p = t.parent[p] {
		if p == r {
			return true
		}
	}
	return false
}

// HopsUp counts tree edges from node up to ancestor router r.
func (t *Topology) HopsUp(node, r int) int {
	h := 0
	for p := node; p != r; p = t.parent[p] {
		if p < 0 {
			return -1
		}
		h++
	}
	return h
}

// MaxHopsDown returns the maximum number of tree edges from router r down to
// any leaf controller in its subtree.
func (t *Topology) MaxHopsDown(r int) int {
	if !t.IsRouter(r) {
		return 0
	}
	m := 0
	for _, c := range t.Children(r) {
		d := 1 + t.MaxHopsDown(c)
		if d > m {
			m = d
		}
	}
	return m
}

// Leaves returns all leaf controllers in node r's subtree (a controller is
// its own single leaf). The returned slice is a shared, precomputed
// read-only table — callers must not mutate it.
func (t *Topology) Leaves(r int) []int {
	return t.leafBuf[t.leafLo[r]:t.leafHi[r]:t.leafHi[r]]
}

// EdgeIndex returns the index of router r's edge to neighbor — children
// count 0..k-1 in child order, the parent edge is k. -1 if the nodes do
// not share a tree edge. Port contention maps edges onto physical ports
// with this index.
func (t *Topology) EdgeIndex(r, neighbor int) int {
	cs := t.Children(r)
	for i, c := range cs {
		if c == neighbor {
			return i
		}
	}
	if t.parent[r] == neighbor {
		return len(cs)
	}
	return -1
}

// NumEdges returns how many tree edges router r terminates (children plus
// parent; the root has no parent edge).
func (t *Topology) NumEdges(r int) int {
	n := len(t.Children(r))
	if t.parent[r] >= 0 {
		n++
	}
	return n
}

// TreePathHops counts tree edges on the path between two nodes via their
// lowest common ancestor.
func (t *Topology) TreePathHops(a, b int) int {
	h := 0
	da, db := t.depth[a], t.depth[b]
	for da > db {
		a = t.parent[a]
		da--
		h++
	}
	for db > da {
		b = t.parent[b]
		db--
		h++
	}
	for a != b {
		a, b = t.parent[a], t.parent[b]
		h += 2
	}
	return h
}
