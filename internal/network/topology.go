// Package network implements the distributed fabric of Distributed-HISQ
// (§5): the hybrid topology — a mesh-like intra-layer connecting leaf
// controllers (mirroring the qubit device topology) plus a tree-like
// inter-layer of routers — the Figure 8 routing mechanism for region-level
// synchronization, and classical message routing for feedback.
package network

import (
	"fmt"

	"dhisq/internal/sim"
)

// Config parameterizes the fabric. All latencies are in cycles (4 ns).
type Config struct {
	// MeshW, MeshH give the leaf controller grid; controller i sits at
	// (i%MeshW, i/MeshW), matching a qubit-per-controller device layout.
	MeshW, MeshH int
	// RouterFanout is the number of children per router in the balanced
	// inter-layer tree (§5.1 adopts a balanced tree of minimal height).
	RouterFanout int
	// NeighborLatency is the one-way latency of a mesh link between adjacent
	// controllers — the calibrated N of nearby BISP sync (§4.1).
	NeighborLatency sim.Time
	// TreeHopLatency is the one-way latency of one tree edge.
	TreeHopLatency sim.Time
	// RouterProc is the processing delay a router adds per forwarded message.
	RouterProc sim.Time
}

// NearSquareMesh returns the smallest near-square controller mesh
// (w, h) that fits n qubits: w is the ceiling square root, h the rows
// needed. It is THE default placement heuristic — the facade's Sample,
// the job service, and the CLIs all place unmapped circuits with it, so
// the same circuit fingerprints identically at every entry point.
func NearSquareMesh(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	return w, (n + w - 1) / w
}

// DefaultConfig returns a fabric sized for n controllers with the latency
// constants used throughout the evaluation: 2-cycle (8 ns) mesh links,
// 4-cycle (16 ns) tree hops, 1-cycle router processing.
func DefaultConfig(n int) Config {
	w, h := NearSquareMesh(n)
	return Config{
		MeshW:           w,
		MeshH:           h,
		RouterFanout:    4,
		NeighborLatency: 2,
		TreeHopLatency:  4,
		RouterProc:      1,
	}
}

// Topology is the static structure: controller addresses are 0..N-1 in
// row-major mesh order; router addresses follow, level by level, ending at
// the root.
type Topology struct {
	Cfg        Config
	N          int // number of leaf controllers
	NumRouters int
	parent     []int   // node -> parent router (root's parent = -1)
	children   [][]int // router-local (indexed by router-N): child node addrs
	depth      []int   // node -> depth (root = 0)
	Root       int
}

// NewTopology builds the hybrid topology for the given config.
func NewTopology(cfg Config) (*Topology, error) {
	n := cfg.MeshW * cfg.MeshH
	if n <= 0 {
		return nil, fmt.Errorf("network: empty mesh %dx%d", cfg.MeshW, cfg.MeshH)
	}
	if cfg.RouterFanout < 2 {
		return nil, fmt.Errorf("network: router fanout %d < 2", cfg.RouterFanout)
	}
	t := &Topology{Cfg: cfg, N: n}

	// Build the balanced tree bottom-up: group the current level into
	// parents of RouterFanout children until one node remains. A single
	// controller still gets one root router so region sync is well-defined.
	level := make([]int, n)
	for i := range level {
		level[i] = i
	}
	next := n // next router address
	parent := map[int]int{}
	children := map[int][]int{}
	for len(level) > 1 || next == n {
		var up []int
		for i := 0; i < len(level); i += cfg.RouterFanout {
			j := i + cfg.RouterFanout
			if j > len(level) {
				j = len(level)
			}
			r := next
			next++
			for _, c := range level[i:j] {
				parent[c] = r
			}
			children[r] = append([]int{}, level[i:j]...)
			up = append(up, r)
		}
		level = up
	}
	t.Root = level[0]
	t.NumRouters = next - n
	parent[t.Root] = -1

	t.parent = make([]int, next)
	t.children = make([][]int, t.NumRouters)
	t.depth = make([]int, next)
	for node := 0; node < next; node++ {
		p, ok := parent[node]
		if !ok {
			p = -1
		}
		t.parent[node] = p
	}
	for r, cs := range children {
		t.children[r-n] = cs
	}
	// Depth by walking up.
	for node := 0; node < next; node++ {
		d := 0
		for p := t.parent[node]; p >= 0; p = t.parent[p] {
			d++
		}
		t.depth[node] = d
	}
	return t, nil
}

// IsRouter reports whether addr names a router.
func (t *Topology) IsRouter(addr int) bool { return addr >= t.N && addr < t.N+t.NumRouters }

// Parent returns the parent router of a node (-1 for the root).
func (t *Topology) Parent(addr int) int { return t.parent[addr] }

// Children returns the child nodes of a router.
func (t *Topology) Children(router int) []int { return t.children[router-t.N] }

// Coord returns the mesh coordinates of a controller.
func (t *Topology) Coord(ctrl int) (x, y int) { return ctrl % t.Cfg.MeshW, ctrl / t.Cfg.MeshW }

// MeshDistance is the Manhattan distance between two controllers.
func (t *Topology) MeshDistance(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Adjacent reports whether two controllers share a mesh link.
func (t *Topology) Adjacent(a, b int) bool {
	return a != b && a < t.N && b < t.N && MeshDistanceOne(t, a, b)
}

// MeshDistanceOne reports Manhattan distance exactly 1.
func MeshDistanceOne(t *Topology, a, b int) bool { return t.MeshDistance(a, b) == 1 }

// IsAncestor reports whether router r is an ancestor of node (controllers'
// region sync targets must be ancestors, §3.1.3).
func (t *Topology) IsAncestor(r, node int) bool {
	for p := t.parent[node]; p >= 0; p = t.parent[p] {
		if p == r {
			return true
		}
	}
	return false
}

// HopsUp counts tree edges from node up to ancestor router r.
func (t *Topology) HopsUp(node, r int) int {
	h := 0
	for p := node; p != r; p = t.parent[p] {
		if p < 0 {
			return -1
		}
		h++
	}
	return h
}

// MaxHopsDown returns the maximum number of tree edges from router r down to
// any leaf controller in its subtree.
func (t *Topology) MaxHopsDown(r int) int {
	if !t.IsRouter(r) {
		return 0
	}
	m := 0
	for _, c := range t.Children(r) {
		d := 1 + t.MaxHopsDown(c)
		if d > m {
			m = d
		}
	}
	return m
}

// Leaves returns all leaf controllers in router r's subtree.
func (t *Topology) Leaves(r int) []int {
	if !t.IsRouter(r) {
		return []int{r}
	}
	var out []int
	for _, c := range t.Children(r) {
		out = append(out, t.Leaves(c)...)
	}
	return out
}

// TreePathHops counts tree edges on the path between two nodes via their
// lowest common ancestor.
func (t *Topology) TreePathHops(a, b int) int {
	h := 0
	da, db := t.depth[a], t.depth[b]
	for da > db {
		a = t.parent[a]
		da--
		h++
	}
	for db > da {
		b = t.parent[b]
		db--
		h++
	}
	for a != b {
		a, b = t.parent[a], t.parent[b]
		h += 2
	}
	return h
}
