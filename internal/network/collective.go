package network

import (
	"fmt"

	"dhisq/internal/sim"
)

// This file is the collective layer of the fabric: first-class broadcast,
// reduce, all-reduce, and reduce-scatter primitives with topology-aware
// message schedules. A collective executes as ordinary timestamped fabric
// messages — every word goes through Fabric.SendMessage, so link
// serialization, router-port sharing, and CongestionStats attribution
// apply unchanged. Schedules are static per (topology, spec): each
// participant gets a script of send/receive steps it executes strictly in
// order, which makes both the reduced values and the completion times
// deterministic regardless of message arrival interleaving.
//
// The naive fan-in/fan-out schedule is the baseline and correctness
// oracle: every schedule must produce the same reduced values, and the
// `-exp collective` gate holds the topology-aware schedules to "never
// slower than naive under contention".

// CollKind names a collective operation.
type CollKind int

const (
	// CollBroadcast distributes the root's vector to every participant.
	CollBroadcast CollKind = iota
	// CollReduce combines every participant's vector elementwise into the
	// root's buffer.
	CollReduce
	// CollAllReduce combines every participant's vector elementwise and
	// leaves the result at every participant.
	CollAllReduce
	// CollReduceScatter combines every participant's vector elementwise
	// and leaves reduced chunk i (of len(Parts) equal chunks) at rank i.
	CollReduceScatter
)

var collKindNames = map[CollKind]string{
	CollBroadcast:     "broadcast",
	CollReduce:        "reduce",
	CollAllReduce:     "allreduce",
	CollReduceScatter: "reduce-scatter",
}

func (k CollKind) String() string {
	if n, ok := collKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("collkind(%d)", int(k))
}

// CollKinds lists every collective kind in stable order (sweep/test order).
func CollKinds() []CollKind {
	return []CollKind{CollBroadcast, CollReduce, CollAllReduce, CollReduceScatter}
}

// CollSchedule selects the message schedule of a collective.
type CollSchedule int

const (
	// CollNaive is the fan-in/fan-out baseline: the root exchanges a
	// direct point-to-point message with every other participant
	// (all-to-all for reduce-scatter). It is the correctness oracle.
	CollNaive CollSchedule = iota
	// CollRing walks the participant order as a bidirectional ring —
	// the uPIMulator-style schedule; on a torus with snake-ordered
	// participants every hop is a neighbor link.
	CollRing
	// CollHalving is recursive halving/doubling over participant ranks
	// (binomial trees, butterfly all-reduce) — the mesh schedule.
	CollHalving
	// CollTree combines hierarchically along the router tree: each
	// subtree's participants fold into a representative, representatives
	// fold upward — the tree-topology schedule, mirroring the Figure 8
	// region-sync resolution.
	CollTree
	// CollAuto picks the schedule the topology favors: ring on torus,
	// halving/doubling on mesh, hierarchical subtree combining on tree.
	CollAuto
)

var collScheduleNames = []string{"naive", "ring", "halving", "tree", "auto"}

func (s CollSchedule) String() string {
	if s >= 0 && int(s) < len(collScheduleNames) {
		return collScheduleNames[s]
	}
	return fmt.Sprintf("collschedule(%d)", int(s))
}

// CollScheduleNames lists the schedule names in stable order.
func CollScheduleNames() []string {
	return append([]string(nil), collScheduleNames...)
}

// ParseCollSchedule maps a CLI/API string onto a CollSchedule.
func ParseCollSchedule(s string) (CollSchedule, error) {
	for i, n := range collScheduleNames {
		if n == s {
			return CollSchedule(i), nil
		}
	}
	return CollNaive, fmt.Errorf("network: unknown collective schedule %q (want %v)", s, collScheduleNames)
}

// Resolve maps CollAuto onto the schedule selected for the topology kind;
// concrete schedules pass through unchanged.
func (s CollSchedule) Resolve(k TopologyKind) CollSchedule {
	if s != CollAuto {
		return s
	}
	switch k {
	case TopoTorus:
		return CollRing
	case TopoTree:
		return CollTree
	default:
		return CollHalving
	}
}

// ResolveFor maps CollAuto onto a schedule using the full operation shape,
// not just the topology kind: on meshes an auto all-reduce with a
// non-power-of-two participant count routes to the ring reduce-scatter +
// all-gather instead of recursive halving/doubling, whose deficit folds cost
// roughly twice the naive volume there (the PR 9 caveat). Everything else
// matches Resolve, and concrete schedules pass through unchanged.
func (s CollSchedule) ResolveFor(k TopologyKind, kind CollKind, parts int) CollSchedule {
	if s != CollAuto {
		return s
	}
	r := s.Resolve(k)
	if kind == CollAllReduce && r == CollHalving && parts&(parts-1) != 0 {
		return CollRing
	}
	return r
}

// ReduceOp combines two words. Collective schedules reorder and re-bracket
// combines freely, so the operator must be associative and commutative.
type ReduceOp func(a, b uint32) uint32

// ReduceSum adds with uint32 wraparound.
func ReduceSum(a, b uint32) uint32 { return a + b }

// ReduceXor is bitwise exclusive or — the feed-forward parity operator.
func ReduceXor(a, b uint32) uint32 { return a ^ b }

// ReduceMax keeps the larger word — the Figure 8 time-point resolution.
func ReduceMax(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// CollSpec describes one collective operation.
type CollSpec struct {
	Kind     CollKind
	Schedule CollSchedule
	// Parts lists the participant controller addresses; the index in this
	// slice is the participant's rank, and rank order is the ring order of
	// CollRing (pass Topology.SnakeOrder for neighbor-adjacent rings).
	Parts []int
	// Root is the rank (index into Parts) that sources a broadcast and
	// receives a reduce.
	Root int
	// Width is the number of words in each participant's vector.
	// CollReduceScatter requires Width % len(Parts) == 0.
	Width int
	// Op combines words for the reducing kinds (ignored by CollBroadcast).
	Op ReduceOp
}

func (spec CollSpec) validate(t *Topology) error {
	n := len(spec.Parts)
	if n == 0 {
		return fmt.Errorf("network: collective with no participants")
	}
	seen := map[int]bool{}
	for _, a := range spec.Parts {
		if a < 0 || a >= t.N {
			return fmt.Errorf("network: collective participant %d outside controllers [0,%d)", a, t.N)
		}
		if seen[a] {
			return fmt.Errorf("network: duplicate collective participant %d", a)
		}
		seen[a] = true
	}
	if spec.Root < 0 || spec.Root >= n {
		return fmt.Errorf("network: collective root rank %d outside [0,%d)", spec.Root, n)
	}
	if spec.Width < 1 {
		return fmt.Errorf("network: collective width %d < 1", spec.Width)
	}
	if spec.Kind == CollReduceScatter && spec.Width%n != 0 {
		return fmt.Errorf("network: reduce-scatter width %d not divisible by %d participants", spec.Width, n)
	}
	if spec.Kind != CollBroadcast && spec.Op == nil {
		return fmt.Errorf("network: %s collective without a reduce op", spec.Kind)
	}
	return nil
}

// chunkWords returns the word indices of rank r's reduce-scatter chunk.
func (spec CollSpec) chunkWords(r int) []int {
	cw := spec.Width / len(spec.Parts)
	out := make([]int, cw)
	for i := range out {
		out[i] = r*cw + i
	}
	return out
}

// CollOwnedWords returns the word indices of Values[rank] that a completed
// collective defines: all of them for broadcast and all-reduce, the root's
// full vector for reduce (other ranks' buffers are undefined), and rank's
// own chunk for reduce-scatter.
func CollOwnedWords(spec CollSpec, rank int) []int {
	switch spec.Kind {
	case CollReduce:
		if rank != spec.Root {
			return nil
		}
	case CollReduceScatter:
		return spec.chunkWords(rank)
	}
	all := make([]int, spec.Width)
	for i := range all {
		all[i] = i
	}
	return all
}

// CollExpect computes the host-side expected outputs of a collective: the
// oracle every schedule is held to. Undefined words carry the rank's input.
func CollExpect(spec CollSpec, inputs [][]uint32) [][]uint32 {
	reduced := append([]uint32(nil), inputs[0]...)
	if spec.Kind != CollBroadcast {
		for _, in := range inputs[1:] {
			for w, v := range in {
				reduced[w] = spec.Op(reduced[w], v)
			}
		}
	}
	out := make([][]uint32, len(inputs))
	for r := range out {
		out[r] = append([]uint32(nil), inputs[r]...)
		for _, w := range CollOwnedWords(spec, r) {
			switch spec.Kind {
			case CollBroadcast:
				out[r][w] = inputs[spec.Root][w]
			default:
				out[r][w] = reduced[w]
			}
		}
	}
	return out
}

// SnakeOrder returns the controller addresses in boustrophedon row order:
// consecutive entries are mesh-adjacent, making rank order a near-
// Hamiltonian ring for CollRing on mesh and torus fabrics.
func (t *Topology) SnakeOrder() []int {
	out := make([]int, 0, t.N)
	for y := 0; y < t.Cfg.MeshH; y++ {
		if y%2 == 0 {
			for x := 0; x < t.Cfg.MeshW; x++ {
				out = append(out, y*t.Cfg.MeshW+x)
			}
		} else {
			for x := t.Cfg.MeshW - 1; x >= 0; x-- {
				out = append(out, y*t.Cfg.MeshW+x)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Schedules: per-participant step scripts
// ---------------------------------------------------------------------------

// collStep is one entry of a participant's script. Steps execute strictly
// in order: a send step fires all its words immediately (sends never
// block), a receive step completes once every expected word from the peer
// arrived. Word lists are read-only and may be shared between steps.
type collStep struct {
	send    bool
	peer    int   // peer rank
	words   []int // word indices, in wire order
	combine bool  // receive: fold with Op instead of overwrite
}

// collScripts accumulates the per-rank scripts while a schedule builder
// runs.
type collScripts struct {
	spec  CollSpec
	steps [][]collStep
	all   []int // shared [0..Width) word list
}

func newCollScripts(spec CollSpec) *collScripts {
	all := make([]int, spec.Width)
	for i := range all {
		all[i] = i
	}
	return &collScripts{spec: spec, steps: make([][]collStep, len(spec.Parts)), all: all}
}

func (b *collScripts) send(from, to int, words []int) {
	b.steps[from] = append(b.steps[from], collStep{send: true, peer: to, words: words})
}

func (b *collScripts) recv(at, from int, words []int, combine bool) {
	b.steps[at] = append(b.steps[at], collStep{peer: from, words: words, combine: combine})
}

// buildCollScripts resolves the schedule and constructs every
// participant's script. It is a pure function of (topology, spec), which
// is what makes collective completion times deterministic.
func buildCollScripts(t *Topology, spec CollSpec) ([][]collStep, error) {
	if err := spec.validate(t); err != nil {
		return nil, err
	}
	b := newCollScripts(spec)
	switch spec.Schedule.ResolveFor(t.Cfg.Topology, spec.Kind, len(spec.Parts)) {
	case CollNaive:
		b.naive(spec.Kind)
	case CollRing:
		b.ring(spec.Kind)
	case CollHalving:
		b.halving(spec.Kind)
	case CollTree:
		b.tree(spec.Kind, t)
	default:
		return nil, fmt.Errorf("network: unknown collective schedule %v", spec.Schedule)
	}
	return b.steps, nil
}

// naive: direct fan-out from / fan-in to the root (all-to-all for
// reduce-scatter). Every message crosses the full source→destination path.
func (b *collScripts) naive(kind CollKind) {
	n, r0 := len(b.spec.Parts), b.spec.Root
	switch kind {
	case CollBroadcast:
		for p := 0; p < n; p++ {
			if p == r0 {
				continue
			}
			b.send(r0, p, b.all)
			b.recv(p, r0, b.all, false)
		}
	case CollReduce:
		for p := 0; p < n; p++ {
			if p == r0 {
				continue
			}
			b.send(p, r0, b.all)
			b.recv(r0, p, b.all, true)
		}
	case CollAllReduce:
		b.naive(CollReduce)
		b.naive(CollBroadcast)
	case CollReduceScatter:
		// All-to-all: rank i sends chunk j directly to rank j.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				b.send(i, j, b.spec.chunkWords(j))
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				b.recv(i, j, b.spec.chunkWords(i), true)
			}
		}
	}
}

// ring: bidirectional chains around the participant order. Broadcast
// relays outward from the root along both arcs; reduce combines inward
// along both arcs; reduce-scatter is the classic N-1-step rotation where
// each chunk accumulates as it circles the ring.
func (b *collScripts) ring(kind CollKind) {
	n, r0 := len(b.spec.Parts), b.spec.Root
	if n == 1 {
		return
	}
	fwd := (n - 1 + 1) / 2 // successor-arc length
	bwd := n - 1 - fwd     // predecessor-arc length
	at := func(d int) int { return ((r0+d)%n + n) % n }
	switch kind {
	case CollBroadcast:
		if fwd >= 1 {
			b.send(r0, at(1), b.all)
		}
		if bwd >= 1 {
			b.send(r0, at(-1), b.all)
		}
		for d := 1; d <= fwd; d++ {
			b.recv(at(d), at(d-1), b.all, false)
			if d < fwd {
				b.send(at(d), at(d+1), b.all)
			}
		}
		for d := 1; d <= bwd; d++ {
			b.recv(at(-d), at(-d+1), b.all, false)
			if d < bwd {
				b.send(at(-d), at(-d-1), b.all)
			}
		}
	case CollReduce:
		for d := fwd; d >= 1; d-- {
			if d < fwd {
				b.recv(at(d), at(d+1), b.all, true)
			}
			b.send(at(d), at(d-1), b.all)
		}
		for d := bwd; d >= 1; d-- {
			if d < bwd {
				b.recv(at(-d), at(-d-1), b.all, true)
			}
			b.send(at(-d), at(-d+1), b.all)
		}
		if fwd >= 1 {
			b.recv(r0, at(1), b.all, true)
		}
		if bwd >= 1 {
			b.recv(r0, at(-1), b.all, true)
		}
	case CollAllReduce:
		// Reduce-scatter + all-gather rotation: per-node volume is
		// 2·W·(n-1)/n words at any n, replacing the reduce-then-broadcast
		// relay that walked the full vector along each arc. Chunks are the
		// locally uneven split [r·W/n, (r+1)·W/n) — no divisibility
		// requirement, and empty chunks (W < n) complete as zero-word steps.
		mod := func(x int) int { return (x%n + n) % n }
		W := b.spec.Width
		chunk := func(r int) []int {
			lo, hi := r*W/n, (r+1)*W/n
			out := make([]int, 0, hi-lo)
			for w := lo; w < hi; w++ {
				out = append(out, w)
			}
			return out
		}
		// Phase 1: the CollReduceScatter rotation below, with uneven
		// chunks; after n-1 rounds rank i holds the fully combined chunk i.
		for s := 0; s <= n-2; s++ {
			for i := 0; i < n; i++ {
				b.send(i, mod(i+1), chunk(mod(i-s-1)))
				b.recv(i, mod(i-1), chunk(mod(i-s-2)), true)
			}
		}
		// Phase 2: all-gather; each round forwards the chunk received in
		// the previous one.
		for s := 0; s <= n-2; s++ {
			for i := 0; i < n; i++ {
				b.send(i, mod(i+1), chunk(mod(i-s)))
				b.recv(i, mod(i-1), chunk(mod(i-s-1)), false)
			}
		}
	case CollReduceScatter:
		// Round s: rank i forwards the partial of chunk (i-s-1) to its
		// successor while folding its own contribution into chunk
		// (i-s-2) arriving from its predecessor. After n-1 rounds chunk c
		// has circled from rank c+1 around to rank c, combining every
		// contribution on the way.
		mod := func(x int) int { return (x%n + n) % n }
		for s := 0; s <= n-2; s++ {
			for i := 0; i < n; i++ {
				b.send(i, mod(i+1), b.spec.chunkWords(mod(i-s-1)))
				b.recv(i, mod(i-1), b.spec.chunkWords(mod(i-s-2)), true)
			}
		}
	}
}

// halving: recursive halving/doubling over ranks re-rooted at the root
// (virtual rank v = rank - root mod n). With n not a power of two the
// ranks beyond the largest power p fold into partners first and rejoin
// last, the standard deficit handling.
func (b *collScripts) halving(kind CollKind) {
	n, r0 := len(b.spec.Parts), b.spec.Root
	if n == 1 {
		return
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	rk := func(v int) int { return (v + r0) % n }
	foldIn := func() {
		for v := p; v < n; v++ {
			b.send(rk(v), rk(v-p), b.all)
		}
		for v := 0; v+p < n; v++ {
			b.recv(rk(v), rk(v+p), b.all, true)
		}
	}
	foldOut := func() {
		for v := 0; v+p < n; v++ {
			b.send(rk(v), rk(v+p), b.all)
		}
		for v := p; v < n; v++ {
			b.recv(rk(v), rk(v-p), b.all, false)
		}
	}
	switch kind {
	case CollBroadcast:
		for v := 0; v < p; v++ {
			// Masks descend: a node receives at its highest set bit, then
			// relays for every lower mask — the binomial broadcast tree.
			for mask := p >> 1; mask >= 1; mask >>= 1 {
				switch v % (2 * mask) {
				case mask:
					b.recv(rk(v), rk(v-mask), b.all, false)
				case 0:
					if v+mask < p {
						b.send(rk(v), rk(v+mask), b.all)
					}
				}
			}
		}
		foldOut()
	case CollReduce:
		foldIn()
		for v := 0; v < p; v++ {
			// Masks ascend: a node folds in partners above it until its
			// lowest set bit names the round it sends and retires.
			for mask := 1; mask < p; mask <<= 1 {
				if v%(2*mask) == mask {
					b.send(rk(v), rk(v-mask), b.all)
					break
				}
				if v+mask < p {
					b.recv(rk(v), rk(v+mask), b.all, true)
				}
			}
		}
	case CollAllReduce:
		foldIn()
		// Recursive-doubling butterfly: every round exchanges and folds
		// with the partner one bit away; sends precede receives per node,
		// so the exchanged value is the pre-round partial on both sides.
		for mask := 1; mask < p; mask <<= 1 {
			for v := 0; v < p; v++ {
				b.send(rk(v), rk(v^mask), b.all)
				b.recv(rk(v), rk(v^mask), b.all, true)
			}
		}
		foldOut()
	case CollReduceScatter:
		if n == p {
			// True recursive halving: each round exchanges the half of
			// the active chunk range owned by the partner's side, so
			// message volume halves as partner distance doubles.
			span := func(lo, hi int) []int {
				var out []int
				for u := lo; u < hi; u++ {
					out = append(out, b.spec.chunkWords(rk(u))...)
				}
				return out
			}
			for v := 0; v < p; v++ {
				lo, size := 0, p
				for size > 1 {
					half := size / 2
					if v < lo+half {
						b.send(rk(v), rk(v+half), span(lo+half, lo+size))
						b.recv(rk(v), rk(v+half), span(lo, lo+half), true)
						size = half
					} else {
						b.send(rk(v), rk(v-half), span(lo, lo+half))
						b.recv(rk(v), rk(v-half), span(lo+half, lo+size), true)
						lo, size = lo+half, half
					}
				}
			}
			return
		}
		// Deficit ranks: binomial reduce to the root, then direct chunk
		// scatter — still far fewer root-adjacent messages than naive.
		b.halving(CollReduce)
		for i := 0; i < n; i++ {
			if i == r0 {
				continue
			}
			b.send(r0, i, b.spec.chunkWords(i))
			b.recv(i, r0, b.spec.chunkWords(i), false)
		}
	}
}

// tree: hierarchical subtree combining along the router tree. Every
// router's participants fold into a representative (the subtree holding
// the root participant is always represented by it), representatives fold
// upward; broadcast and scatter mirror the combine downward.
func (b *collScripts) tree(kind CollKind, t *Topology) {
	spec := b.spec
	rankOf := make(map[int]int, len(spec.Parts))
	for r, a := range spec.Parts {
		rankOf[a] = r
	}
	rootAddr := spec.Parts[spec.Root]

	// rep(node) = participant address representing node's subtree (-1 when
	// the subtree holds none); memoized, preferring the collective root.
	repMemo := map[int]int{}
	var rep func(node int) int
	rep = func(node int) int {
		if r, ok := repMemo[node]; ok {
			return r
		}
		best := -1
		if !t.IsRouter(node) {
			if _, ok := rankOf[node]; ok {
				best = node
			}
		} else {
			for _, c := range t.Children(node) {
				cr := rep(c)
				if cr < 0 {
					continue
				}
				if cr == rootAddr {
					best = rootAddr
				} else if best < 0 {
					best = cr
				}
			}
		}
		repMemo[node] = best
		return best
	}

	// subWords(node) = the reduce-scatter words owned by the subtree's
	// participants, in leaf order (both sides of a scatter hop share it).
	subWords := func(node int) []int {
		var out []int
		for _, leaf := range t.Leaves(node) {
			if r, ok := rankOf[leaf]; ok {
				out = append(out, spec.chunkWords(r)...)
			}
		}
		return out
	}

	var emitReduce func(node int)
	emitReduce = func(node int) {
		if !t.IsRouter(node) {
			return
		}
		r := rep(node)
		if r < 0 {
			return
		}
		for _, c := range t.Children(node) {
			emitReduce(c)
		}
		for _, c := range t.Children(node) {
			cr := rep(c)
			if cr < 0 || cr == r {
				continue
			}
			b.send(rankOf[cr], rankOf[r], b.all)
			b.recv(rankOf[r], rankOf[cr], b.all, true)
		}
	}
	var emitBcast func(node int, words func(int) []int)
	emitBcast = func(node int, words func(int) []int) {
		if !t.IsRouter(node) {
			return
		}
		r := rep(node)
		if r < 0 {
			return
		}
		for _, c := range t.Children(node) {
			cr := rep(c)
			if cr < 0 {
				continue
			}
			if cr != r {
				w := words(c)
				if len(w) > 0 {
					b.send(rankOf[r], rankOf[cr], w)
					b.recv(rankOf[cr], rankOf[r], w, false)
				}
			}
			emitBcast(c, words)
		}
	}

	switch kind {
	case CollBroadcast:
		emitBcast(t.Root, func(int) []int { return b.all })
	case CollReduce:
		emitReduce(t.Root)
	case CollAllReduce:
		emitReduce(t.Root)
		emitBcast(t.Root, func(int) []int { return b.all })
	case CollReduceScatter:
		emitReduce(t.Root)
		emitBcast(t.Root, subWords)
	}
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// CollResult is a completed collective.
type CollResult struct {
	// Values holds each rank's final buffer; CollOwnedWords says which
	// words the operation defines.
	Values [][]uint32
	// Start and Done bound the operation: Done is the time the last
	// participant finished its script. Makespan = Done - Start.
	Start, Done sim.Time
	// Messages counts fabric messages sent (one per word per hop-path).
	Messages uint64
}

// Makespan is the wall-clock cost of the collective in cycles.
func (r *CollResult) Makespan() sim.Time { return r.Done - r.Start }

type collMsg struct {
	val uint32
	at  sim.Time
}

// collNode is one participant's runtime state machine, attached to the
// fabric as the endpoint of its controller address for the duration of
// the collective.
type collNode struct {
	run   *collRun
	rank  int
	buf   []uint32
	steps []collStep
	pc    int
	sub   int // words consumed within the current receive step
	clock sim.Time
	inbox map[int][]collMsg
	done  bool
}

// DeliverMessage implements Endpoint: queue the word and try to advance.
func (n *collNode) DeliverMessage(src int, val uint32, arrival sim.Time) {
	rank, ok := n.run.rankOf[src]
	if !ok {
		return // stray traffic from outside the collective: ignore
	}
	n.inbox[rank] = append(n.inbox[rank], collMsg{val: val, at: arrival})
	n.advance()
}

// DeliverSyncSignal implements Endpoint (collective nodes never sync).
func (n *collNode) DeliverSyncSignal(src int, arrival sim.Time) {}

// DeliverRegionResume implements Endpoint.
func (n *collNode) DeliverRegionResume(router int, tm, arrival sim.Time) {}

// advance executes script steps until one blocks on a missing word.
func (n *collNode) advance() {
	c := n.run
	for n.pc < len(n.steps) {
		st := &n.steps[n.pc]
		if st.send {
			from := c.spec.Parts[n.rank]
			to := c.spec.Parts[st.peer]
			for _, w := range st.words {
				c.fab.SendMessage(from, to, n.buf[w], n.clock)
				c.msgs++
			}
			n.pc++
			continue
		}
		q := n.inbox[st.peer]
		for n.sub < len(st.words) && len(q) > 0 {
			m := q[0]
			q = q[1:]
			w := st.words[n.sub]
			if st.combine {
				n.buf[w] = c.spec.Op(n.buf[w], m.val)
			} else {
				n.buf[w] = m.val
			}
			if m.at > n.clock {
				n.clock = m.at
			}
			n.sub++
		}
		n.inbox[st.peer] = q
		if n.sub < len(st.words) {
			return // wait for the rest of this step's words
		}
		n.sub = 0
		n.pc++
	}
	if !n.done {
		n.done = true
		c.remaining--
		if n.clock > c.done {
			c.done = n.clock
		}
	}
}

// collRun is the shared state of one executing collective.
type collRun struct {
	fab       *Fabric
	spec      CollSpec
	rankOf    map[int]int
	nodes     []*collNode
	remaining int
	msgs      uint64
	done      sim.Time
}

// RunCollective executes one collective on the fabric, starting no earlier
// than `at` (clamped to the engine's present). The participants' endpoints
// are temporarily replaced by collective state machines and restored on
// return, so a machine can run a collective after its program completes
// without disturbing controller state. inputs[rank] is rank's Width-word
// contribution; it is copied, never mutated.
//
// The engine is stepped until the collective completes, so any
// still-queued foreign events will also execute — callers interleaving
// collectives with program traffic should start them on a drained engine.
func RunCollective(f *Fabric, spec CollSpec, inputs [][]uint32, at sim.Time) (*CollResult, error) {
	steps, err := buildCollScripts(f.Topo, spec)
	if err != nil {
		return nil, err
	}
	if len(inputs) != len(spec.Parts) {
		return nil, fmt.Errorf("network: %d collective inputs for %d participants", len(inputs), len(spec.Parts))
	}
	for r, in := range inputs {
		if len(in) != spec.Width {
			return nil, fmt.Errorf("network: rank %d input has %d words, want %d", r, len(in), spec.Width)
		}
	}
	if now := f.eng.Now(); at < now {
		at = now
	}

	run := &collRun{fab: f, spec: spec, rankOf: make(map[int]int, len(spec.Parts)), done: at}
	for r, addr := range spec.Parts {
		run.rankOf[addr] = r
	}
	saved := make([]Endpoint, len(spec.Parts))
	run.nodes = make([]*collNode, len(spec.Parts))
	for r, addr := range spec.Parts {
		n := &collNode{
			run: run, rank: r,
			buf:   append([]uint32(nil), inputs[r]...),
			steps: steps[r],
			clock: at,
			inbox: map[int][]collMsg{},
		}
		run.nodes[r] = n
		saved[r] = f.endpoints[addr]
		f.endpoints[addr] = n
	}
	defer func() {
		for r, addr := range spec.Parts {
			f.endpoints[addr] = saved[r]
		}
		f.collActive = false
	}()
	f.collOps++
	f.collActive = true

	run.remaining = len(run.nodes)
	f.eng.At(at, sim.PriDeliver, func() {
		for _, n := range run.nodes {
			n.advance()
		}
	})
	for run.remaining > 0 && f.eng.Step() {
	}
	if run.remaining > 0 {
		return nil, fmt.Errorf("network: %s/%s collective stalled with %d of %d participants incomplete",
			spec.Kind, spec.Schedule, run.remaining, len(run.nodes))
	}

	res := &CollResult{
		Values:   make([][]uint32, len(run.nodes)),
		Start:    at,
		Done:     run.done,
		Messages: run.msgs,
	}
	for r, n := range run.nodes {
		res.Values[r] = n.buf
	}
	return res, nil
}
