package network

import (
	"math/rand"
	"testing"
)

// TestRandomizedTopologyInvariants builds ~200 randomly parameterized
// topologies across all three kinds and asserts the structural invariants
// every other layer leans on: the router tree is rooted and connected,
// and the intra-layer distance is a metric.
func TestRandomizedTopologyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []TopologyKind{TopoMesh, TopoTorus, TopoTree}
	for i := 0; i < 200; i++ {
		cfg := Config{
			MeshW:           1 + rng.Intn(12),
			MeshH:           1 + rng.Intn(12),
			RouterFanout:    2 + rng.Intn(5),
			NeighborLatency: 1 + rng.Int63n(4),
			TreeHopLatency:  1 + rng.Int63n(6),
			RouterProc:      rng.Int63n(3),
			Topology:        kinds[rng.Intn(len(kinds))],
		}
		topo, err := NewTopology(cfg)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, cfg, err)
		}
		n := topo.N
		total := n + topo.NumRouters

		// Every controller's Parent chain must reach Root without cycling.
		for c := 0; c < n; c++ {
			steps := 0
			node := c
			for node != topo.Root {
				node = topo.Parent(node)
				if node < 0 || node >= total {
					t.Fatalf("case %d: parent chain from %d left the node range at %d", i, c, node)
				}
				steps++
				if steps > total {
					t.Fatalf("case %d: parent chain from %d cycles", i, c)
				}
			}
			if !topo.IsAncestor(topo.Root, c) && c != topo.Root {
				t.Fatalf("case %d: root is not an ancestor of %d", i, c)
			}
		}
		if topo.Parent(topo.Root) != -1 {
			t.Fatalf("case %d: root has a parent", i)
		}

		// MeshDistance is a metric: identity, symmetry on sampled pairs,
		// triangle inequality on sampled triples.
		for s := 0; s < 12; s++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if d := topo.MeshDistance(a, a); d != 0 {
				t.Fatalf("case %d: d(%d,%d) = %d, want 0", i, a, a, d)
			}
			dab, dba := topo.MeshDistance(a, b), topo.MeshDistance(b, a)
			if dab != dba {
				t.Fatalf("case %d: asymmetric distance d(%d,%d)=%d d(%d,%d)=%d", i, a, b, dab, b, a, dba)
			}
			if dab < 0 {
				t.Fatalf("case %d: negative distance %d", i, dab)
			}
			if dac, dcb := topo.MeshDistance(a, c), topo.MeshDistance(c, b); dab > dac+dcb {
				t.Fatalf("case %d: triangle violated: d(%d,%d)=%d > %d+%d via %d",
					i, a, b, dab, dac, dcb, c)
			}
		}

		// MeshStep walks toward its target and terminates in exactly
		// MeshDistance hops (mesh-bearing topologies only).
		if cfg.Topology != TopoTree {
			a, b := rng.Intn(n), rng.Intn(n)
			cur, hops := a, 0
			for cur != b {
				next := topo.MeshStep(cur, b)
				if !topo.Adjacent(cur, next) && topo.MeshDistance(cur, next) != 1 {
					t.Fatalf("case %d: MeshStep(%d,%d) = %d is not one hop away", i, cur, b, next)
				}
				cur = next
				hops++
				if hops > n {
					t.Fatalf("case %d: MeshStep(%d->%d) does not terminate", i, a, b)
				}
			}
			if want := topo.MeshDistance(a, b); hops != want {
				t.Fatalf("case %d: MeshStep path %d->%d took %d hops, distance is %d", i, a, b, hops, want)
			}
		}
	}
}

// TestNearSquareMeshInvariants pins the placement heuristic: the mesh
// always fits n controllers, stays near-square, and wastes no whole row.
func TestNearSquareMeshInvariants(t *testing.T) {
	for n := 1; n <= 400; n++ {
		w, h := NearSquareMesh(n)
		if w*h < n {
			t.Fatalf("n=%d: mesh %dx%d too small", n, w, h)
		}
		if d := w - h; d < 0 || d > 1 {
			t.Fatalf("n=%d: mesh %dx%d not near-square (w-h=%d)", n, w, h, d)
		}
		if w*(h-1) >= n {
			t.Fatalf("n=%d: mesh %dx%d wastes a whole row", n, w, h)
		}
	}
}
