package network

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

func collFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatalf("NewTopology(%+v): %v", cfg, err)
	}
	return NewFabric(sim.NewEngine(), topo, telf.NewLog())
}

func randInputs(rng *rand.Rand, n, w int) [][]uint32 {
	in := make([][]uint32, n)
	for r := range in {
		in[r] = make([]uint32, w)
		for i := range in[r] {
			in[r][i] = rng.Uint32()
		}
	}
	return in
}

// checkCollective runs one collective and asserts every owned word equals
// the host-side oracle. It returns the completion time.
func checkCollective(t *testing.T, f *Fabric, spec CollSpec, inputs [][]uint32) sim.Time {
	t.Helper()
	res, err := RunCollective(f, spec, inputs, f.eng.Now())
	if err != nil {
		t.Fatalf("%s/%s on %s: %v", spec.Kind, spec.Schedule, f.Topo.Cfg.Topology, err)
	}
	want := CollExpect(spec, inputs)
	for r := range res.Values {
		for _, w := range CollOwnedWords(spec, r) {
			if res.Values[r][w] != want[r][w] {
				t.Fatalf("%s/%s on %s: rank %d word %d = %#x, want %#x",
					spec.Kind, spec.Schedule, f.Topo.Cfg.Topology, r, w, res.Values[r][w], want[r][w])
			}
		}
	}
	if res.Done < res.Start {
		t.Fatalf("%s/%s: Done %d before Start %d", spec.Kind, spec.Schedule, res.Done, res.Start)
	}
	return res.Makespan()
}

// TestCollectiveOracleProperty is the randomized schedule×topology×kind
// sweep of the satellite checklist: every schedule on every topology must
// reduce to the naive oracle's values at any participant count, and its
// completion time must be a pure function of the spec (run twice →
// identical makespan).
func TestCollectiveOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := CollKinds()
	schedules := []CollSchedule{CollNaive, CollRing, CollHalving, CollTree, CollAuto}
	topos := []TopologyKind{TopoMesh, TopoTorus, TopoTree}
	for iter := 0; iter < 60; iter++ {
		cfg := Config{
			MeshW:           2 + rng.Intn(5),
			MeshH:           1 + rng.Intn(5),
			RouterFanout:    2 + rng.Intn(3),
			NeighborLatency: 1 + rng.Int63n(3),
			TreeHopLatency:  1 + rng.Int63n(4),
			RouterProc:      rng.Int63n(2),
			Topology:        topos[rng.Intn(len(topos))],
		}
		if rng.Intn(2) == 0 {
			cfg.LinkSerialization = 1 + rng.Int63n(8)
			cfg.RouterPorts = 1 + rng.Intn(3)
		}
		topo, err := NewTopology(cfg)
		if err != nil {
			t.Fatalf("NewTopology: %v", err)
		}
		// Random participant subset (any worker count ≥ 1), random order.
		parts := rng.Perm(topo.N)[:1+rng.Intn(topo.N)]
		spec := CollSpec{
			Kind:     kinds[rng.Intn(len(kinds))],
			Schedule: schedules[rng.Intn(len(schedules))],
			Parts:    parts,
			Root:     rng.Intn(len(parts)),
			Width:    len(parts) * (1 + rng.Intn(3)),
			Op:       ReduceSum,
		}
		if rng.Intn(2) == 0 {
			spec.Op = ReduceXor
		}
		inputs := randInputs(rng, len(parts), spec.Width)

		f1 := NewFabric(sim.NewEngine(), topo, telf.NewLog())
		m1 := checkCollective(t, f1, spec, inputs)
		f2 := NewFabric(sim.NewEngine(), topo, telf.NewLog())
		m2 := checkCollective(t, f2, spec, inputs)
		if m1 != m2 {
			t.Fatalf("iter %d: %s/%s on %s: makespan %d then %d — not deterministic",
				iter, spec.Kind, spec.Schedule, cfg.Topology, m1, m2)
		}
	}
}

// TestCollectiveExhaustiveSmall walks every (kind, schedule, topology)
// cell at several fixed participant counts, including 1, 2, non-powers of
// two, and the full mesh.
func TestCollectiveExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tk := range []TopologyKind{TopoMesh, TopoTorus, TopoTree} {
		cfg := Config{
			MeshW: 4, MeshH: 4, RouterFanout: 2,
			NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1,
			Topology: tk, LinkSerialization: 4, RouterPorts: 2,
		}
		topo, err := NewTopology(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 3, 5, 8, 16} {
			parts := topo.SnakeOrder()[:n]
			for _, kind := range CollKinds() {
				for _, sched := range []CollSchedule{CollNaive, CollRing, CollHalving, CollTree} {
					spec := CollSpec{
						Kind: kind, Schedule: sched, Parts: parts,
						Root: rng.Intn(n), Width: 2 * n, Op: ReduceSum,
					}
					f := NewFabric(sim.NewEngine(), topo, telf.NewLog())
					checkCollective(t, f, spec, randInputs(rng, n, spec.Width))
				}
			}
		}
	}
}

// TestCollectiveCounters pins the CongestionStats plumbing: ops count with
// and without contention, stall cycles only with it, and Reset clears both.
func TestCollectiveCounters(t *testing.T) {
	cfg := Config{
		MeshW: 4, MeshH: 4, RouterFanout: 4,
		NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1,
		LinkSerialization: 8,
	}
	f := collFabric(t, cfg)
	parts := f.Topo.SnakeOrder()
	spec := CollSpec{Kind: CollReduce, Schedule: CollNaive, Parts: parts, Root: 0, Width: 4, Op: ReduceSum}
	rng := rand.New(rand.NewSource(3))
	if _, err := RunCollective(f, spec, randInputs(rng, len(parts), spec.Width), 0); err != nil {
		t.Fatal(err)
	}
	st := f.Congestion()
	if st.CollectiveOps != 1 {
		t.Fatalf("CollectiveOps = %d, want 1", st.CollectiveOps)
	}
	if st.CollectiveStall <= 0 {
		t.Fatalf("CollectiveStall = %d, want > 0 (16 senders fan into one root at ser=8)", st.CollectiveStall)
	}
	if st.TotalStall() < st.CollectiveStall {
		t.Fatalf("TotalStall %d < CollectiveStall %d", st.TotalStall(), st.CollectiveStall)
	}
	f.Reset()
	st = f.Congestion()
	if st.CollectiveOps != 0 || st.CollectiveStall != 0 {
		t.Fatalf("after Reset: ops=%d stall=%d, want 0/0", st.CollectiveOps, st.CollectiveStall)
	}

	// Without contention the ops still count; stalls cannot.
	cfg.LinkSerialization = 0
	f = collFabric(t, cfg)
	if _, err := RunCollective(f, spec, randInputs(rng, len(parts), spec.Width), 0); err != nil {
		t.Fatal(err)
	}
	st = f.Congestion()
	if st.Enabled {
		t.Fatal("contention unexpectedly enabled")
	}
	if st.CollectiveOps != 1 || st.CollectiveStall != 0 {
		t.Fatalf("uncontended: ops=%d stall=%d, want 1/0", st.CollectiveOps, st.CollectiveStall)
	}
}

// TestCollectiveEndpointRestore: a collective must leave the fabric's
// endpoints exactly as it found them.
func TestCollectiveEndpointRestore(t *testing.T) {
	f := collFabric(t, Config{MeshW: 3, MeshH: 3, RouterFanout: 4, NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1})
	eps := make([]*scriptedEndpoint, f.Topo.N)
	for i := range eps {
		eps[i] = &scriptedEndpoint{}
		f.Attach(i, eps[i])
	}
	spec := CollSpec{Kind: CollAllReduce, Schedule: CollAuto, Parts: f.Topo.SnakeOrder(), Root: 2, Width: 1, Op: ReduceMax}
	rng := rand.New(rand.NewSource(5))
	if _, err := RunCollective(f, spec, randInputs(rng, f.Topo.N, 1), 0); err != nil {
		t.Fatal(err)
	}
	for i := range eps {
		if f.endpoints[i] != Endpoint(eps[i]) {
			t.Fatalf("endpoint %d not restored", i)
		}
	}
}

// TestCollectiveValidation covers the spec error paths.
func TestCollectiveValidation(t *testing.T) {
	f := collFabric(t, Config{MeshW: 2, MeshH: 2, RouterFanout: 4, NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1})
	in := [][]uint32{{1}, {2}}
	cases := []CollSpec{
		{Kind: CollReduce, Parts: nil, Width: 1, Op: ReduceSum},
		{Kind: CollReduce, Parts: []int{0, 0}, Width: 1, Op: ReduceSum},
		{Kind: CollReduce, Parts: []int{0, 9}, Width: 1, Op: ReduceSum},
		{Kind: CollReduce, Parts: []int{0, 1}, Root: 5, Width: 1, Op: ReduceSum},
		{Kind: CollReduce, Parts: []int{0, 1}, Width: 0, Op: ReduceSum},
		{Kind: CollReduceScatter, Parts: []int{0, 1}, Width: 3, Op: ReduceSum},
		{Kind: CollReduce, Parts: []int{0, 1}, Width: 1},
	}
	for i, spec := range cases {
		if _, err := RunCollective(f, spec, in, 0); err == nil {
			t.Fatalf("case %d (%+v): expected error", i, spec)
		}
	}
	if _, err := RunCollective(f, CollSpec{Kind: CollReduce, Schedule: CollNaive, Parts: []int{0, 1}, Width: 1, Op: ReduceSum}, [][]uint32{{1}}, 0); err == nil {
		t.Fatal("expected input-arity error")
	}
}

// TestParseCollSchedule pins the name round-trip the CLIs depend on.
func TestParseCollSchedule(t *testing.T) {
	for _, name := range CollScheduleNames() {
		s, err := ParseCollSchedule(name)
		if err != nil {
			t.Fatalf("ParseCollSchedule(%q): %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("round-trip %q -> %v", name, s)
		}
	}
	if _, err := ParseCollSchedule("bogus"); err == nil {
		t.Fatal("expected error for unknown schedule")
	}
	if got := CollAuto.Resolve(TopoTorus); got != CollRing {
		t.Fatalf("auto on torus = %v, want ring", got)
	}
	if got := CollAuto.Resolve(TopoMesh); got != CollHalving {
		t.Fatalf("auto on mesh = %v, want halving", got)
	}
	if got := CollAuto.Resolve(TopoTree); got != CollTree {
		t.Fatalf("auto on tree = %v, want tree", got)
	}
	if got := CollRing.Resolve(TopoTree); got != CollRing {
		t.Fatalf("explicit schedule must pass through, got %v", got)
	}
}

// TestTreePathLeavesNoAlloc pins the satellite memoization: repeated
// TreePath and Leaves calls must not allocate (they return shared
// read-only tables).
func TestTreePathLeavesNoAlloc(t *testing.T) {
	topo := mustTopo(t, Config{MeshW: 4, MeshH: 4, RouterFanout: 2, NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1})
	pairs := [][2]int{{0, 15}, {3, 12}, {5, 5}, {topo.Root, 7}}
	for _, p := range pairs {
		topo.TreePath(p[0], p[1]) // warm the memo
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, p := range pairs {
			_ = topo.TreePath(p[0], p[1])
		}
		_ = topo.Leaves(topo.Root)
		_ = topo.Leaves(0)
		_ = topo.Leaves(topo.N + 1)
	})
	if allocs != 0 {
		t.Fatalf("TreePath/Leaves allocated %.1f per run, want 0", allocs)
	}
}

// TestLeavesMatchesRecursion checks the precomputed spans against a
// straightforward recursive enumeration.
func TestLeavesMatchesRecursion(t *testing.T) {
	topo := mustTopo(t, Config{MeshW: 5, MeshH: 3, RouterFanout: 3, NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1})
	var slow func(r int) []int
	slow = func(r int) []int {
		if !topo.IsRouter(r) {
			return []int{r}
		}
		var out []int
		for _, c := range topo.Children(r) {
			out = append(out, slow(c)...)
		}
		return out
	}
	for node := 0; node < topo.N+topo.NumRouters; node++ {
		if got, want := topo.Leaves(node), slow(node); !reflect.DeepEqual(got, want) {
			t.Fatalf("Leaves(%d) = %v, want %v", node, got, want)
		}
	}
}

// TestTreePathConcurrent drives the memoized TreePath from many
// goroutines — the -race leg for the shared path cache.
func TestTreePathConcurrent(t *testing.T) {
	topo := mustTopo(t, Config{MeshW: 6, MeshH: 6, RouterFanout: 2, NeighborLatency: 2, TreeHopLatency: 4, RouterProc: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				a, b := rng.Intn(topo.N), rng.Intn(topo.N)
				p := topo.TreePath(a, b)
				if len(p)-1 != topo.TreePathHops(a, b) {
					t.Errorf("path length %d vs hops %d", len(p)-1, topo.TreePathHops(a, b))
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestResolveForAllReduceRing pins the schedule-resolution fix for the
// recursive-doubling volume blowup: an auto all-reduce at a
// non-power-of-two participant count resolves to the ring reduce-scatter
// + all-gather on mesh, while power-of-two counts, other collective
// kinds, and concrete schedule names are untouched.
func TestResolveForAllReduceRing(t *testing.T) {
	cases := []struct {
		topo  TopologyKind
		kind  CollKind
		parts int
		want  CollSchedule
	}{
		{TopoMesh, CollAllReduce, 5, CollRing},    // the fixed case
		{TopoMesh, CollAllReduce, 9, CollRing},    // non-po2 again
		{TopoMesh, CollAllReduce, 8, CollHalving}, // po2 keeps halving
		{TopoMesh, CollReduce, 5, CollHalving},    // other kinds untouched
		{TopoTorus, CollAllReduce, 5, CollRing},   // torus was already ring
		{TopoTree, CollAllReduce, 5, CollTree},    // tree untouched
	}
	for _, tc := range cases {
		if got := CollAuto.ResolveFor(tc.topo, tc.kind, tc.parts); got != tc.want {
			t.Fatalf("ResolveFor(%s, %s, %d) = %s, want %s", tc.topo, tc.kind, tc.parts, got, tc.want)
		}
	}
	// Concrete schedules pass through whatever the shape.
	if got := CollHalving.ResolveFor(TopoMesh, CollAllReduce, 5); got != CollHalving {
		t.Fatalf("concrete schedule rewritten to %s", got)
	}
}

// TestRingAllReduceVolume quantifies what the ring schedule buys at
// non-power-of-two counts: strictly fewer fabric messages than recursive
// halving/doubling, whose deficit folds roughly double the volume there.
func TestRingAllReduceVolume(t *testing.T) {
	cfg := Config{MeshW: 3, MeshH: 3, RouterFanout: 2, NeighborLatency: 1, Topology: TopoMesh}
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{5, 6, 7, 9} {
		parts := topo.SnakeOrder()[:n]
		spec := CollSpec{Kind: CollAllReduce, Parts: parts, Root: 0, Width: 2 * n, Op: ReduceSum}
		inputs := randInputs(rng, n, spec.Width)
		run := func(s CollSchedule) *CollResult {
			spec.Schedule = s
			f := NewFabric(sim.NewEngine(), topo, telf.NewLog())
			res, err := RunCollective(f, spec, inputs, 0)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, s, err)
			}
			want := CollExpect(spec, inputs)
			for r := range res.Values {
				for _, w := range CollOwnedWords(spec, r) {
					if res.Values[r][w] != want[r][w] {
						t.Fatalf("n=%d %s: rank %d word %d diverged", n, s, r, w)
					}
				}
			}
			return res
		}
		ring, halving := run(CollRing), run(CollHalving)
		if ring.Messages >= halving.Messages {
			t.Fatalf("n=%d: ring all-reduce sent %d messages, halving %d — ring should be strictly leaner at non-po2",
				n, ring.Messages, halving.Messages)
		}
	}
}
