package network

import (
	"testing"

	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

func mustTopo(t *testing.T, cfg Config) *Topology {
	t.Helper()
	topo, err := NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyTreeStructure(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	if topo.N != 16 {
		t.Fatalf("N = %d", topo.N)
	}
	// 16 leaves, fanout 4: 4 level-1 routers + 1 root = 5.
	if topo.NumRouters != 5 {
		t.Fatalf("routers = %d, want 5", topo.NumRouters)
	}
	if topo.Root != 20 {
		t.Fatalf("root = %d, want 20", topo.Root)
	}
	// Every controller has the root as an ancestor.
	for c := 0; c < 16; c++ {
		if !topo.IsAncestor(topo.Root, c) {
			t.Fatalf("root not ancestor of %d", c)
		}
	}
	// The root's children are the level-1 routers.
	if kids := topo.Children(topo.Root); len(kids) != 4 {
		t.Fatalf("root children = %v", kids)
	}
	if topo.Parent(topo.Root) != -1 {
		t.Fatal("root should have no parent")
	}
}

func TestTopologySingleController(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MeshW, cfg.MeshH = 1, 1
	topo := mustTopo(t, cfg)
	if topo.NumRouters != 1 || topo.Root != 1 {
		t.Fatalf("1-leaf tree: routers=%d root=%d", topo.NumRouters, topo.Root)
	}
}

func TestMeshGeometry(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.MeshW, cfg.MeshH = 4, 3
	topo := mustTopo(t, cfg)
	if !topo.Adjacent(0, 1) || !topo.Adjacent(0, 4) {
		t.Fatal("expected adjacency")
	}
	if topo.Adjacent(3, 4) {
		t.Fatal("row wrap must not be adjacent")
	}
	if d := topo.MeshDistance(0, 11); d != 5 {
		t.Fatalf("manhattan(0,11) = %d, want 5", d)
	}
}

func TestHopsAndWindows(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())

	if h := topo.HopsUp(0, topo.Root); h != 2 {
		t.Fatalf("hops to root = %d, want 2", h)
	}
	if d := topo.MaxHopsDown(topo.Root); d != 2 {
		t.Fatalf("max down = %d, want 2", d)
	}
	// Window = (up + maxdown) * (hop + proc) = 4 * 5 = 20.
	if w := fab.RegionWindow(0, topo.Root); w != 20 {
		t.Fatalf("region window = %d, want 20", w)
	}
	if w := fab.NearbyWindow(0, 1); w != cfg.NeighborLatency {
		t.Fatalf("nearby window = %d", w)
	}
	// Non-adjacent pairs scale with distance.
	if w := fab.NearbyWindow(0, 15); w != 6*cfg.NeighborLatency {
		t.Fatalf("scaled window = %d", w)
	}
}

func TestTreePathHops(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	// Same level-1 router: up+down = 2.
	if h := topo.TreePathHops(0, 1); h != 2 {
		t.Fatalf("same-router hops = %d, want 2", h)
	}
	// Different level-1 routers: through the root = 4.
	if h := topo.TreePathHops(0, 15); h != 4 {
		t.Fatalf("cross-tree hops = %d, want 4", h)
	}
}

// scriptedEndpoint records deliveries for fabric tests.
type scriptedEndpoint struct {
	msgs    []uint32
	msgAt   []sim.Time
	signals []sim.Time
	resumes []sim.Time
	tms     []sim.Time
}

func (s *scriptedEndpoint) DeliverMessage(src int, val uint32, at sim.Time) {
	s.msgs = append(s.msgs, val)
	s.msgAt = append(s.msgAt, at)
}
func (s *scriptedEndpoint) DeliverSyncSignal(src int, at sim.Time) {
	s.signals = append(s.signals, at)
}
func (s *scriptedEndpoint) DeliverRegionResume(router int, tm, at sim.Time) {
	s.tms = append(s.tms, tm)
	s.resumes = append(s.resumes, at)
}

func TestMessageLatencies(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	eps := make([]*scriptedEndpoint, 16)
	for i := range eps {
		eps[i] = &scriptedEndpoint{}
		fab.Attach(i, eps[i])
	}
	fab.SendMessage(0, 1, 42, 100) // neighbor: mesh link
	fab.SendMessage(0, 15, 43, 100)
	eng.Run(0)
	if len(eps[1].msgs) != 1 || eps[1].msgAt[0] != 100+cfg.NeighborLatency {
		t.Fatalf("neighbor delivery: %+v", eps[1])
	}
	// Cross-tree: 4 hops * 4 + 3 routers * 1 = 19.
	if len(eps[15].msgs) != 1 || eps[15].msgAt[0] != 119 {
		t.Fatalf("tree delivery at %v, want 119", eps[15].msgAt)
	}
}

func TestRegionSyncRouterProtocol(t *testing.T) {
	// Figure 8 end-to-end: all 16 leaves book toward the root with staggered
	// times; everyone must receive the same Tm = max booked time, and the
	// notification must arrive at or before Tm (the window rule).
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	eps := make([]*scriptedEndpoint, 16)
	for i := range eps {
		eps[i] = &scriptedEndpoint{}
		fab.Attach(i, eps[i])
	}
	window := fab.RegionWindow(0, topo.Root)
	for i := 0; i < 16; i++ {
		book := sim.Time(100 + 10*i)
		fab.BookRegion(i, topo.Root, book+window, book)
	}
	eng.Run(0)
	wantTm := sim.Time(100+10*15) + window
	for i, ep := range eps {
		if len(ep.tms) != 1 {
			t.Fatalf("leaf %d: %d resumes", i, len(ep.tms))
		}
		if ep.tms[0] != wantTm {
			t.Fatalf("leaf %d: Tm = %d, want %d", i, ep.tms[0], wantTm)
		}
		if ep.resumes[0] > wantTm {
			t.Fatalf("leaf %d: notification at %d after Tm %d", i, ep.resumes[0], wantTm)
		}
	}
}

func TestRegionSyncRepeatedRoundsPairFIFO(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 2, 2, 4
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	eps := make([]*scriptedEndpoint, 4)
	for i := range eps {
		eps[i] = &scriptedEndpoint{}
		fab.Attach(i, eps[i])
	}
	// Leaf 0 books round 1 and round 2 before the slow leaves book round 1.
	fab.BookRegion(0, topo.Root, 50, 10)
	fab.BookRegion(0, topo.Root, 500, 60)
	for i := 1; i < 4; i++ {
		fab.BookRegion(i, topo.Root, 100+sim.Time(i), 90)
		fab.BookRegion(i, topo.Root, 600+sim.Time(i), 300)
	}
	eng.Run(0)
	for i, ep := range eps {
		if len(ep.tms) != 2 {
			t.Fatalf("leaf %d: %d rounds", i, len(ep.tms))
		}
		if ep.tms[0] != 103 {
			t.Fatalf("leaf %d round 1 Tm = %d, want 103", i, ep.tms[0])
		}
		if ep.tms[1] != 603 {
			t.Fatalf("leaf %d round 2 Tm = %d, want 603", i, ep.tms[1])
		}
	}
	if r := fab.Router(topo.Root); r.Rounds != 2 {
		t.Fatalf("root resolved %d rounds, want 2", r.Rounds)
	}
}

func TestBookRegionRejectsNonAncestor(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.MeshW, cfg.MeshH, cfg.RouterFanout = 4, 4, 4
	topo := mustTopo(t, cfg)
	eng := sim.NewEngine()
	fab := NewFabric(eng, topo, telf.NewLog())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ancestor router")
		}
	}()
	// Leaf 0's level-1 router is topo.N; leaf 15's is topo.N+3.
	fab.BookRegion(0, topo.N+3, 100, 50)
}

func TestDefaultConfigShapes(t *testing.T) {
	for _, n := range []int{1, 5, 27, 100, 1153} {
		cfg := DefaultConfig(n)
		if cfg.MeshW*cfg.MeshH < n {
			t.Fatalf("n=%d: mesh %dx%d too small", n, cfg.MeshW, cfg.MeshH)
		}
		topo := mustTopo(t, cfg)
		if topo.N < n {
			t.Fatalf("n=%d: topology holds %d", n, topo.N)
		}
	}
}
