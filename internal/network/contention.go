package network

import (
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// This file is the contention layer of the fabric: finite link bandwidth
// and router port sharing. Every mesh link direction and every router
// port is a sim.Resource — a busy-until FIFO that serializes messages at
// Config.LinkSerialization cycles apiece. With LinkSerialization == 0 the
// layer is inert: no resource is ever reserved, no statistic moves, and
// delivery times are byte-identical to the latency-only fabric
// (DESIGN.md §6).

// netStallSink is implemented by endpoints that account send-side network
// stalls (core.Controller records them in Stats.StallNet). The fabric
// attributes a message's total queueing wait — across every link of its
// path — to the controller that sent it.
type netStallSink interface {
	AddNetStall(d sim.Time)
}

// contention reports whether the finite-bandwidth model is active.
func (f *Fabric) contention() bool { return f.ser > 0 }

// linkIndex maps the directed mesh link from -> to (a neighbor pair) onto
// its resource slot: four directions per controller, +x -x +y -y. On a
// 2-wide torus dimension both directions resolve to the same physical
// link, which is exactly the hardware being modeled.
func (f *Fabric) linkIndex(from, to int) int {
	fx, fy := f.Topo.Coord(from)
	tx, ty := f.Topo.Coord(to)
	w, h := f.Topo.Cfg.MeshW, f.Topo.Cfg.MeshH
	switch {
	case ty == fy && tx == (fx+1)%w:
		return from*4 + 0
	case ty == fy && fx == (tx+1)%w:
		return from*4 + 1
	case tx == fx && ty == (fy+1)%h:
		return from*4 + 2
	case tx == fx && fy == (ty+1)%h:
		return from*4 + 3
	}
	panic("network: linkIndex on non-adjacent pair")
}

// linkEndpoints is the inverse of linkIndex: the (from, to) controller
// pair of resource slot i. Slots for mesh-edge directions that do not
// exist on a non-torus mesh are never reserved, so callers only see
// indices whose neighbor arithmetic is valid.
func (f *Fabric) linkEndpoints(i int) (from, to int) {
	from = i / 4
	fx, fy := f.Topo.Coord(from)
	w, h := f.Topo.Cfg.MeshW, f.Topo.Cfg.MeshH
	tx, ty := fx, fy
	switch i % 4 {
	case 0: // +x
		tx = (fx + 1) % w
	case 1: // -x
		tx = (fx - 1 + w) % w
	case 2: // +y
		ty = (fy + 1) % h
	case 3: // -y
		ty = (fy - 1 + h) % h
	}
	return from, ty*w + tx
}

// reserveLink books the directed mesh link from -> to for one message
// wanting to enter at `at`, charging any queueing wait to controller src.
func (f *Fabric) reserveLink(from, to, src int, at sim.Time) sim.Time {
	depart, waited := f.links[f.linkIndex(from, to)].Reserve(at, f.ser, f.qcap)
	f.chargeStall(from, src, waited, depart)
	return depart
}

// reservePort books router r's port serving its edge to neighbor for one
// message entering at `at`. With fewer ports than edges (Config.
// RouterPorts), edges share ports round-robin and contend.
func (f *Fabric) reservePort(r, neighbor, src int, at sim.Time) sim.Time {
	rt := f.Router(r)
	edge := f.Topo.EdgeIndex(r, neighbor)
	if edge < 0 {
		// Not a tree edge; treat as uncontended rather than corrupt state.
		return at
	}
	port := edge % len(rt.ports)
	depart, waited := rt.ports[port].Reserve(at, f.ser, f.qcap)
	f.chargeStall(r, src, waited, depart)
	return depart
}

// chargeStall records a queueing wait: a TELF event on the node where the
// backlog formed, and send-side attribution to the source controller.
func (f *Fabric) chargeStall(node, src int, waited, depart sim.Time) {
	if waited <= 0 {
		return
	}
	if f.collActive {
		f.collStall += waited
	}
	f.log.Add(telf.Event{Time: depart, Node: node, Kind: telf.NetStall, A: int64(src), B: waited})
	if src >= 0 && src < len(f.endpoints) {
		if s, ok := f.endpoints[src].(netStallSink); ok {
			s.AddNetStall(waited)
		}
	}
}

// meshArrival computes when a signal sent by src at `at` reaches dst over
// intra-layer links, walking the x-then-y path hop by hop and reserving
// each directed link. Without contention it reduces exactly to
// at + NearbyWindow(src, dst).
func (f *Fabric) meshArrival(src, dst int, at sim.Time) sim.Time {
	per := f.Topo.Cfg.NeighborLatency
	if !f.contention() {
		d := f.Topo.MeshDistance(src, dst)
		if d == 0 {
			d = 1
		}
		return at + sim.Time(d)*per
	}
	t := at
	cur := src
	hops := 0
	for cur != dst {
		next := f.Topo.MeshStep(cur, dst)
		t = f.reserveLink(cur, next, src, t) + per
		cur = next
		hops++
	}
	if hops == 0 {
		t = at + per // self-signal degenerate case, matches MeshDistance 0 -> 1
	}
	return t
}

// treeArrival computes when a message sent by src at `at` reaches dst over
// the router tree, reserving the router-side port of every edge on the
// path. Without contention it reduces exactly to
// at + hops*TreeHopLatency + (hops-1)*RouterProc — the MessageLatency
// formula.
func (f *Fabric) treeArrival(src, dst int, at sim.Time) sim.Time {
	if !f.contention() {
		// Uncontended latency is a pure function of the hop count; skip
		// materializing the path (three slice allocations per message).
		hops := f.Topo.TreePathHops(src, dst)
		t := at + sim.Time(hops)*f.Topo.Cfg.TreeHopLatency
		if hops > 1 {
			t += sim.Time(hops-1) * f.Topo.Cfg.RouterProc
		}
		return t
	}
	path := f.Topo.TreePath(src, dst)
	t := at
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if f.contention() {
			// The router terminating this edge owns the port: b when
			// climbing (a's parent), a when descending (b's parent).
			router := b
			if f.Topo.Parent(b) == a {
				router = a
			}
			t = f.reservePort(router, a+b-router, src, t)
		}
		t += f.Topo.Cfg.TreeHopLatency
		if i+2 < len(path) {
			t += f.Topo.Cfg.RouterProc
		}
	}
	return t
}

// CongestionStats aggregates fabric-wide contention counters, the payload
// behind machine.Result's network fields and /v1/stats. All zero when the
// model is disabled.
type CongestionStats struct {
	Enabled bool `json:"enabled"`
	// Mesh links.
	LinkMessages  uint64   `json:"link_messages"`
	LinkStall     sim.Time `json:"link_stall_cycles"`
	LinkMaxQueue  int      `json:"link_max_queue"`
	LinkOverflows uint64   `json:"link_overflows"`
	// Router ports.
	PortMessages  uint64   `json:"port_messages"`
	PortStall     sim.Time `json:"port_stall_cycles"`
	PortMaxQueue  int      `json:"port_max_queue"`
	PortOverflows uint64   `json:"port_overflows"`
	// RouterBusiest is the largest total port occupancy of any single
	// router (can exceed the makespan on a many-port router); PortBusiest
	// is the largest occupancy of any single port — divided by the
	// makespan it is a true 0..1 utilization.
	RouterBusiest sim.Time `json:"router_busiest_cycles"`
	PortBusiest   sim.Time `json:"port_busiest_cycles"`
	RouterBusy    sim.Time `json:"router_busy_cycles"`
	// Collective layer (collective.go): operations executed on the fabric
	// and the queueing cycles their messages accrued at busy links and
	// ports. CollectiveOps counts even with contention disabled — the
	// layer runs either way; only the stall cycles need finite bandwidth.
	CollectiveOps   uint64   `json:"collective_ops"`
	CollectiveStall sim.Time `json:"collective_stall_cycles"`
	// Links is the per-link breakdown behind the aggregate Link* counters:
	// one entry per directed mesh link that carried (or queued) at least one
	// message, ordered by resource slot — deterministic for a deterministic
	// run. It is what compiler.Feedback harvests to attribute stalls to
	// specific controller pairs; aggregate-only consumers can ignore it.
	Links []LinkStat `json:"links,omitempty"`
}

// LinkStat is one directed mesh link's contention snapshot.
type LinkStat struct {
	From     int      `json:"from"` // sending controller
	To       int      `json:"to"`   // receiving neighbor controller
	Messages uint64   `json:"messages"`
	Stall    sim.Time `json:"stall_cycles"`
	MaxQueue int      `json:"max_queue"`
}

// TotalStall is every cycle any message spent queued anywhere.
func (s CongestionStats) TotalStall() sim.Time { return s.LinkStall + s.PortStall }

// MaxQueue is the deepest backlog observed at any link or port.
func (s CongestionStats) MaxQueue() int {
	if s.LinkMaxQueue > s.PortMaxQueue {
		return s.LinkMaxQueue
	}
	return s.PortMaxQueue
}

// Congestion snapshots the fabric's contention counters for the run (or
// shot) since the last Reset.
func (f *Fabric) Congestion() CongestionStats {
	st := CongestionStats{
		Enabled:         f.contention(),
		CollectiveOps:   f.collOps,
		CollectiveStall: f.collStall,
	}
	if !st.Enabled {
		return st
	}
	for i := range f.links {
		r := &f.links[i]
		st.LinkMessages += r.Messages
		st.LinkStall += r.StallCycles
		st.LinkOverflows += r.Overflows
		if r.MaxQueue > st.LinkMaxQueue {
			st.LinkMaxQueue = r.MaxQueue
		}
		if r.Messages > 0 || r.StallCycles > 0 {
			from, to := f.linkEndpoints(i)
			st.Links = append(st.Links, LinkStat{
				From: from, To: to,
				Messages: r.Messages, Stall: r.StallCycles, MaxQueue: r.MaxQueue,
			})
		}
	}
	for _, rt := range f.routers {
		var busy sim.Time
		for i := range rt.ports {
			p := &rt.ports[i]
			st.PortMessages += p.Messages
			st.PortStall += p.StallCycles
			st.PortOverflows += p.Overflows
			busy += p.BusyCycles
			if p.BusyCycles > st.PortBusiest {
				st.PortBusiest = p.BusyCycles
			}
			if p.MaxQueue > st.PortMaxQueue {
				st.PortMaxQueue = p.MaxQueue
			}
		}
		st.RouterBusy += busy
		if busy > st.RouterBusiest {
			st.RouterBusiest = busy
		}
	}
	return st
}
