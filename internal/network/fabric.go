package network

import (
	"fmt"

	"dhisq/internal/core"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// Endpoint is the fabric's view of a leaf controller — implemented by
// *core.Controller. Keeping it an interface lets tests drive the fabric with
// scripted endpoints.
type Endpoint interface {
	DeliverMessage(src int, val uint32, arrival sim.Time)
	DeliverSyncSignal(src int, arrival sim.Time)
	DeliverRegionResume(router int, tm, arrival sim.Time)
}

var _ Endpoint = (*core.Controller)(nil)

// Fabric implements core.Fabric over a Topology: nearby sync signals travel
// mesh links, region sync bookings climb the router tree per Figure 8, and
// classical messages use mesh links between neighbors or the tree otherwise.
type Fabric struct {
	Topo *Topology
	eng  *sim.Engine
	log  *telf.Log

	endpoints []Endpoint
	routers   []*Router

	// Contention model (inert when ser == 0; see contention.go).
	ser   sim.Time       // per-message link/port occupancy
	qcap  int            // FIFO depth used for the overflow statistic
	links []sim.Resource // directed mesh links, 4 per controller

	// Collective layer accounting (see collective.go): operations run on
	// this fabric since the last Reset, and the queueing cycles their
	// messages accrued while collActive.
	collOps    uint64
	collStall  sim.Time
	collActive bool
}

// NewFabric builds the fabric and its routers. Endpoints are attached later
// with Attach (controllers need the fabric at construction time).
func NewFabric(eng *sim.Engine, topo *Topology, log *telf.Log) *Fabric {
	if log == nil {
		log = telf.NewLog()
	}
	f := &Fabric{
		Topo: topo, eng: eng, log: log,
		endpoints: make([]Endpoint, topo.N),
		ser:       topo.Cfg.LinkSerialization,
		qcap:      topo.Cfg.LinkQueueCap,
	}
	if f.contention() && topo.Cfg.Topology != TopoTree {
		f.links = make([]sim.Resource, topo.N*4)
	}
	f.routers = make([]*Router, topo.NumRouters)
	for i := range f.routers {
		f.routers[i] = newRouter(f, topo.N+i)
	}
	return f
}

// Attach registers the endpoint serving controller address id.
func (f *Fabric) Attach(id int, ep Endpoint) {
	f.endpoints[id] = ep
}

// Reset restores every router to its post-construction state: pending
// booking FIFOs, statistics and link/port occupancy clear, while the
// topology, attached endpoints and calibrated latencies survive.
// In-flight traffic lives on the engine's event heap, so the owning
// machine must reset the engine in the same breath.
func (f *Fabric) Reset() {
	for _, r := range f.routers {
		clear(r.pending)
		r.Rounds = 0
		r.Messages = 0
		for i := range r.ports {
			r.ports[i].Reset()
		}
	}
	for i := range f.links {
		f.links[i].Reset()
	}
	f.collOps = 0
	f.collStall = 0
	f.collActive = false
}

// Router returns the router object at the given address.
func (f *Fabric) Router(addr int) *Router { return f.routers[addr-f.Topo.N] }

// IsRouter implements core.Fabric.
func (f *Fabric) IsRouter(addr int) bool { return f.Topo.IsRouter(addr) }

// NearbyWindow implements core.Fabric: the calibrated SyncU countdown for a
// neighbor pair. Non-adjacent pairs get distance-scaled latency — the
// compiler only emits nearest-neighbor syncs, but hand-written programs
// remain well-defined. On TopoTree there are no intra-layer links, so the
// calibrated window is the uncontended tree-path latency. Either way the
// window is a pure function of the topology: congestion can delay the
// actual signal past it (the sync then resolves late and the stall is
// accounted), but never changes the compiled booking.
func (f *Fabric) NearbyWindow(src, dst int) sim.Time {
	if f.Topo.Cfg.Topology == TopoTree {
		hops := f.Topo.TreePathHops(src, dst)
		if hops == 0 {
			return f.Topo.Cfg.TreeHopLatency
		}
		return sim.Time(hops)*f.Topo.Cfg.TreeHopLatency + sim.Time(hops-1)*f.Topo.Cfg.RouterProc
	}
	d := f.Topo.MeshDistance(src, dst)
	if d == 0 {
		d = 1
	}
	return sim.Time(d) * f.Topo.Cfg.NeighborLatency
}

// RegionWindow implements core.Fabric: booking lead time for (controller,
// router) = exact uplink latency plus the worst-case downlink latency in the
// router's subtree, making the time-point broadcast always arrive by Tm
// (DESIGN.md §2.4).
func (f *Fabric) RegionWindow(src, router int) sim.Time {
	up := f.Topo.HopsUp(src, router)
	if up < 0 {
		return f.Topo.Cfg.TreeHopLatency // not an ancestor; caller will error out
	}
	down := f.Topo.MaxHopsDown(router)
	perHop := f.Topo.Cfg.TreeHopLatency + f.Topo.Cfg.RouterProc
	return sim.Time(up)*perHop + sim.Time(down)*perHop
}

// SendSyncSignal implements core.Fabric: the 1-bit nearby sync signal.
// Under contention the signal queues at each busy link on its path, so
// its arrival may trail the calibrated window — the partner then resumes
// late and the slip lands in StallSync.
func (f *Fabric) SendSyncSignal(src, dst int, at sim.Time) {
	if dst < 0 || dst >= f.Topo.N {
		panic(fmt.Sprintf("network: sync signal to invalid controller %d", dst))
	}
	var arrival sim.Time
	if f.Topo.Cfg.Topology == TopoTree {
		arrival = f.treeArrival(src, dst, at)
	} else {
		arrival = f.meshArrival(src, dst, at)
	}
	f.schedule(arrival, func() { f.endpoints[dst].DeliverSyncSignal(src, arrival) })
}

// BookRegion implements core.Fabric: starts a Figure 8 region sync booking
// climbing from controller src toward the destination router.
func (f *Fabric) BookRegion(src, router int, ti, at sim.Time) {
	if !f.Topo.IsRouter(router) || !f.Topo.IsAncestor(router, src) {
		// §3.1.3: region sync targets must be an ancestor router.
		panic(fmt.Sprintf("network: sync target %d is not an ancestor router of %d", router, src))
	}
	parent := f.Topo.Parent(src)
	depart := at
	if f.contention() {
		depart = f.reservePort(parent, src, src, at)
	}
	arrival := depart + f.Topo.Cfg.TreeHopLatency
	f.schedule(arrival, func() { f.Router(parent).receiveBooking(src, router, ti, arrival) })
}

// MessageLatency returns the uncontended classical message latency
// between two controllers: one mesh link for neighbors, the router tree
// otherwise. Under contention the actual delivery time (SendMessage) may
// exceed it by the queueing delays on the path.
func (f *Fabric) MessageLatency(src, dst int) sim.Time {
	if src == dst {
		return 1
	}
	if f.Topo.Adjacent(src, dst) {
		return f.Topo.Cfg.NeighborLatency
	}
	hops := f.Topo.TreePathHops(src, dst)
	return sim.Time(hops)*f.Topo.Cfg.TreeHopLatency + sim.Time(hops-1)*f.Topo.Cfg.RouterProc
}

// SendMessage implements core.Fabric. Under contention the message
// reserves every link (or router port) on its path in order, inheriting
// the backlog each stage has already committed to — a virtual cut-through
// model: the whole path is booked at send time, so no per-hop events are
// needed and determinism is untouched.
func (f *Fabric) SendMessage(src, dst int, value uint32, at sim.Time) {
	if dst < 0 || dst >= f.Topo.N {
		panic(fmt.Sprintf("network: message to invalid controller %d", dst))
	}
	var arrival sim.Time
	switch {
	case src == dst:
		arrival = at + 1
	case f.Topo.Adjacent(src, dst):
		arrival = f.meshArrival(src, dst, at)
	default:
		arrival = f.treeArrival(src, dst, at)
	}
	f.schedule(arrival, func() { f.endpoints[dst].DeliverMessage(src, value, arrival) })
}

// schedule clamps event times to the engine's present; logical timestamps in
// payloads remain exact (see DESIGN.md §2).
func (f *Fabric) schedule(at sim.Time, fn func()) {
	if now := f.eng.Now(); at < now {
		at = now
	}
	f.eng.At(at, sim.PriDeliver, fn)
}

// ---------------------------------------------------------------------------
// Router — the Figure 8 mechanism
// ---------------------------------------------------------------------------

// Router aggregates region-sync bookings. For each destination router it
// buffers time-points per child; once every child in the subtree has booked,
// it forwards the maximum to its parent, or — when it is itself the
// destination — broadcasts the common time-point to all children.
type Router struct {
	fab  *Fabric
	addr int
	// pending[dest][child] = FIFO of booked time-points. FIFOs keep repeated
	// sync rounds (e.g., per-repetition global syncs) correctly paired.
	pending map[int]map[int][]sim.Time
	// ports are the physical serialization stages of the contention model:
	// one per tree edge, or fewer when Config.RouterPorts shares edges
	// across ports. Empty when contention is disabled.
	ports []sim.Resource
	// Stats
	Rounds   int
	Messages int
}

func newRouter(f *Fabric, addr int) *Router {
	r := &Router{fab: f, addr: addr, pending: map[int]map[int][]sim.Time{}}
	if f.contention() {
		n := f.Topo.NumEdges(addr)
		if p := f.Topo.Cfg.RouterPorts; p > 0 && p < n {
			n = p
		}
		r.ports = make([]sim.Resource, n)
	}
	return r
}

// receiveBooking handles an upward booking message from a child (Figure 8:
// "buffer the time-point; all received? → calculate max; destination? →
// broadcast, else send to parent").
func (r *Router) receiveBooking(child, dest int, t, arrival sim.Time) {
	r.Messages++
	byChild := r.pending[dest]
	if byChild == nil {
		byChild = map[int][]sim.Time{}
		r.pending[dest] = byChild
	}
	byChild[child] = append(byChild[child], t)

	children := r.fab.Topo.Children(r.addr)
	for _, c := range children {
		if len(byChild[c]) == 0 {
			return // still waiting for a sibling
		}
	}
	// All children booked: pop one round and reduce.
	max := sim.Time(0)
	for _, c := range children {
		q := byChild[c]
		if q[0] > max {
			max = q[0]
		}
		byChild[c] = q[1:]
	}
	r.Rounds++
	depart := arrival + r.fab.Topo.Cfg.RouterProc
	if dest == r.addr {
		r.broadcast(dest, max, depart)
		return
	}
	parent := r.fab.Topo.Parent(r.addr)
	if parent < 0 {
		panic(fmt.Sprintf("network: booking for %d climbed past the root", dest))
	}
	if r.fab.contention() {
		depart = r.fab.reservePort(parent, r.addr, -1, depart)
	}
	hop := depart + r.fab.Topo.Cfg.TreeHopLatency
	r.fab.schedule(hop, func() { r.fab.Router(parent).receiveBooking(r.addr, dest, max, hop) })
}

// broadcast pushes the resolved common time-point tm down to every child
// (Figure 8: a message from the parent is broadcast to all children).
func (r *Router) broadcast(dest int, tm, depart sim.Time) {
	r.Messages++
	for _, c := range r.fab.Topo.Children(r.addr) {
		hopStart := depart
		if r.fab.contention() {
			// Each child's copy serializes on the port serving that child's
			// edge: a fanout-F broadcast through P < F+1 ports queues.
			hopStart = r.fab.reservePort(r.addr, c, -1, depart)
		}
		arrival := hopStart + r.fab.Topo.Cfg.TreeHopLatency
		child := c
		if r.fab.Topo.IsRouter(child) {
			r.fab.schedule(arrival, func() {
				cr := r.fab.Router(child)
				cr.broadcast(dest, tm, arrival+r.fab.Topo.Cfg.RouterProc)
			})
		} else {
			r.fab.schedule(arrival, func() {
				r.fab.endpoints[child].DeliverRegionResume(dest, tm, arrival)
			})
		}
	}
}

var _ core.Fabric = (*Fabric)(nil)
