package exp

import "testing"

// TestPlacementSweepImproves runs the (small) sweep end to end and holds
// it to the headline claims: valid cells for every workload × policy, the
// hotspot never worse under the interaction placer, and a strict
// improvement somewhere.
func TestPlacementSweepImproves(t *testing.T) {
	points, err := PlacementSweep(PlacementOptions{Qubits: 12, Seed: 1, LinkBW: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(PlacementSweepWorkloads()) * 2
	if len(points) != wantCells {
		t.Fatalf("got %d points, want %d", len(points), wantCells)
	}
	for _, p := range points {
		if p.Makespan <= 0 {
			t.Errorf("%s/%s: makespan %d", p.Workload, p.Policy, p.Makespan)
		}
		if p.LinkSerialization != 4 {
			t.Errorf("%s/%s: serialization %d, want 4", p.Workload, p.Policy, p.LinkSerialization)
		}
	}
	if err := CheckPlacementImproves(points); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementSweepRejectsUnknownPolicy: bad policy names fail before
// any machine is built.
func TestPlacementSweepRejectsUnknownPolicy(t *testing.T) {
	if _, err := PlacementSweep(PlacementOptions{Qubits: 4, Policies: []string{"bogus"}}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestCheckPlacementImprovesCatchesRegression: a doctored sweep where the
// interaction placer lost on the hotspot must fail the check.
func TestCheckPlacementImprovesCatchesRegression(t *testing.T) {
	points := []PlacementPoint{
		{Workload: "hotspot", Policy: "rowmajor", TotalStall: 10, Makespan: 100},
		{Workload: "hotspot", Policy: "interaction", TotalStall: 50, Makespan: 100},
	}
	if err := CheckPlacementImproves(points); err == nil {
		t.Fatal("regression not caught")
	}
	// No strict improvement anywhere is also a failure.
	points = []PlacementPoint{
		{Workload: "hotspot", Policy: "rowmajor", TotalStall: 10, Makespan: 100},
		{Workload: "hotspot", Policy: "interaction", TotalStall: 10, Makespan: 100},
	}
	if err := CheckPlacementImproves(points); err == nil {
		t.Fatal("no-improvement sweep passed")
	}
}
