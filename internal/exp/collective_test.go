package exp

import (
	"testing"

	"dhisq/internal/network"
	"dhisq/internal/sim"
)

// TestCollectiveSweepGate runs a reduced grid of the collective experiment
// and enforces the same gate dhisq-bench -exp collective does: oracle
// equality in every cell, collective never slower than naive, strictly
// faster somewhere on torus and on tree.
func TestCollectiveSweepGate(t *testing.T) {
	points, err := CollectiveSweep(CollectiveOptions{
		Participants:   []int{4, 9, 18},
		Serializations: []sim.Time{2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCollective(points); err != nil {
		t.Fatalf("%v\n%s", err, RenderCollective(points))
	}
	// 3 kinds x 3 topologies x 3 participant counts x 2 bandwidths
	// (all-reduce joined the gated defaults with the ring schedule).
	if len(points) != 54 {
		t.Fatalf("got %d points, want 54", len(points))
	}
}

// TestCollectiveSweepRejectsInfiniteBandwidth pins the design note in the
// package comment: uncontended cells are meaningless for the schedule
// comparison, so ser=0 is an error, not a silently-skipped cell.
func TestCollectiveSweepRejectsInfiniteBandwidth(t *testing.T) {
	_, err := CollectiveSweep(CollectiveOptions{Serializations: []sim.Time{0}})
	if err == nil {
		t.Fatal("ser=0 cell accepted")
	}
}

// TestCheckCollectiveCatchesRegression pins that the gate actually bites:
// a doctored slower-than-naive cell and a missing strict win both fail.
func TestCheckCollectiveCatchesRegression(t *testing.T) {
	points, err := CollectiveSweep(CollectiveOptions{
		Participants:   []int{9},
		Serializations: []sim.Time{4},
		Kinds:          []network.CollKind{network.CollReduce},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]CollectivePoint(nil), points...)
	bad[0].CollMakespan = bad[0].NaiveMakespan + 1
	if err := CheckCollective(bad); err == nil {
		t.Fatal("slower-than-naive cell passed the gate")
	}
	flat := append([]CollectivePoint(nil), points...)
	for i := range flat {
		flat[i].CollMakespan = flat[i].NaiveMakespan
	}
	if err := CheckCollective(flat); err == nil {
		t.Fatal("never-strictly-better sweep passed the gate")
	}
}
