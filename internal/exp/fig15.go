package exp

import (
	"fmt"

	"dhisq/internal/baseline"
	"dhisq/internal/chip"
	"dhisq/internal/machine"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// Fig15Row is one bar of Figure 15: the normalized end-to-end runtime of a
// dynamic-circuit benchmark under BISP versus the lock-step baseline.
type Fig15Row struct {
	Name     string
	Qubits   int
	BISP     sim.Time // makespan, cycles
	Lockstep sim.Time // star-hub lock-step (broadcasts serialize at the hub)
	// Favorable is the lock-step makespan under the paper's fully favourable
	// assumption (§6.4.3): constant feedback latency with unlimited broadcast
	// concurrency.
	Favorable     sim.Time
	Normalized    float64 // BISP / Lockstep (baseline = 1.0)
	NormFavorable float64 // BISP / Favorable
	Feedbacks     uint64
	Syncs         sim.Time // total BISP sync stall cycles
}

// Fig15Options parameterizes the sweep.
type Fig15Options struct {
	// ScaleDiv divides every benchmark's qubit count (1 = the paper's full
	// sizes; tests use 8-16 for speed).
	ScaleDiv int
	Seed     int64
	// Names restricts the run (nil = the full Figure 15 suite).
	Names []string
}

// Fig15Result is the full figure.
type Fig15Result struct {
	Rows    []Fig15Row
	Average float64 // mean normalized runtime (paper: 0.772)
}

// Fig15Runtime reproduces Figure 15: every benchmark compiled and executed
// on the Distributed-HISQ machine (BISP), then replayed under the lock-step
// model with the same seeded outcome source, so both take identical
// branches.
func Fig15Runtime(opt Fig15Options) (Fig15Result, error) {
	if opt.ScaleDiv <= 0 {
		opt.ScaleDiv = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	names := opt.Names
	if names == nil {
		names = workloads.Fig15Names()
	}
	var out Fig15Result
	sum := 0.0
	for _, name := range names {
		b, err := workloads.BuildScaled(name, opt.ScaleDiv)
		if err != nil {
			return out, err
		}
		row, err := fig15One(b, opt.Seed)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out.Rows = append(out.Rows, row)
		sum += row.Normalized
	}
	if len(out.Rows) > 0 {
		out.Average = sum / float64(len(out.Rows))
	}
	return out, nil
}

func fig15One(b workloads.Benchmark, seed int64) (Fig15Row, error) {
	cfg := machine.DefaultConfig(b.Qubits)
	cfg.Backend = machine.BackendSeeded
	cfg.Seed = seed
	// One shot through the shot-execution subsystem; shot 0 runs with the
	// base seed, so the lock-step replay below takes identical branches.
	set, err := runner.Run(runner.Spec{
		Circuit: b.Circuit, MeshW: b.MeshW, MeshH: b.MeshH,
		Mapping: b.Mapping, Cfg: cfg,
	}, 1, 1)
	if err != nil {
		return Fig15Row{}, err
	}
	res := set.Shots[0].Result
	if res.Misalignments != 0 || res.Violations != 0 {
		return Fig15Row{}, fmt.Errorf("invariant broken: %d misalignments, %d violations",
			res.Misalignments, res.Violations)
	}

	bres, err := baseline.Run(b.Circuit, baseline.DefaultConfig(chip.NewSeeded(seed)))
	if err != nil {
		return Fig15Row{}, err
	}
	fres, err := baseline.Run(b.Circuit, baseline.FavorableConfig(chip.NewSeeded(seed)))
	if err != nil {
		return Fig15Row{}, err
	}
	norm, err := baseline.Compare(res.Makespan, bres.Makespan)
	if err != nil {
		return Fig15Row{}, err
	}
	normFav, err := baseline.Compare(res.Makespan, fres.Makespan)
	if err != nil {
		return Fig15Row{}, err
	}
	return Fig15Row{
		Name:          b.Name,
		Qubits:        b.Qubits,
		BISP:          res.Makespan,
		Lockstep:      bres.Makespan,
		Favorable:     fres.Makespan,
		Normalized:    norm,
		NormFavorable: normFav,
		Feedbacks:     bres.Feedbacks,
		Syncs:         res.SyncStall,
	}, nil
}

// Render formats the figure as a table.
func (r Fig15Result) Render() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	favSum := 0.0
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprint(row.Qubits),
			fmt.Sprint(row.BISP),
			fmt.Sprint(row.Lockstep),
			fmt.Sprintf("%.3f", row.Normalized),
			fmt.Sprintf("%.3f", row.NormFavorable),
		})
		favSum += row.NormFavorable
	}
	favAvg := 0.0
	if len(r.Rows) > 0 {
		favAvg = favSum / float64(len(r.Rows))
	}
	rows = append(rows, []string{"avg", "", "", "", fmt.Sprintf("%.3f", r.Average), fmt.Sprintf("%.3f", favAvg)})
	return Table([]string{"benchmark", "qubits", "bisp(cy)", "lockstep(cy)", "normalized", "vs favorable"}, rows)
}
