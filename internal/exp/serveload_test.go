package exp

import (
	"strings"
	"testing"
)

// A miniature serve-load run end to end: the open-loop sweep completes
// every rate (plus the burst step), the restart phase proves the
// restart-warm contract, and the CI gate accepts the result.
func TestServeLoadSmall(t *testing.T) {
	res, err := ServeLoad(ServeLoadOptions{
		Seed:        7,
		Rates:       []float64{2000}, // one fast finite rate keeps the test quick
		JobsPerRate: 12,
		Workers:     2,
		QueueDepth:  4, // small bound so the burst step saturates
		Shots:       2,
		StoreDir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d sweep points, want rate + burst", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Completed+p.Rejected != p.Jobs {
			t.Errorf("rate %.0f: %d completed + %d rejected != %d jobs",
				p.Rate, p.Completed, p.Rejected, p.Jobs)
		}
		if p.Completed > 0 && (p.P50Ms <= 0 || p.P99Ms < p.P50Ms) {
			t.Errorf("rate %.0f: incoherent percentiles p50=%.3f p99=%.3f",
				p.Rate, p.P50Ms, p.P99Ms)
		}
	}
	burst := res.Points[len(res.Points)-1]
	if burst.Rate != 0 {
		t.Fatal("burst step is not last")
	}
	if !burst.Saturated {
		t.Error("unthrottled burst did not saturate a depth-4 queue")
	}

	r := res.Restart
	if r.ColdCompiles == 0 || r.WarmCompiles != 0 {
		t.Errorf("restart compiles: cold=%d warm=%d, want cold>0 warm==0", r.ColdCompiles, r.WarmCompiles)
	}
	if r.StoreHits != r.ColdCompiles {
		t.Errorf("restored %d artifacts, want %d", r.StoreHits, r.ColdCompiles)
	}
	if !r.Identical {
		t.Error("histograms changed across restart")
	}
	if err := CheckServeRestart(res); err != nil {
		t.Errorf("gate rejected a passing run: %v", err)
	}

	out := RenderServeLoad(res)
	for _, want := range []string{"burst", "restart:", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// The restart gate rejects each violated invariant.
func TestCheckServeRestartRejects(t *testing.T) {
	good := func() *ServeLoadResult {
		return &ServeLoadResult{Restart: ServeLoadRestart{
			ColdCompiles: 3, WarmCompiles: 0, StoreHits: 3, Identical: true,
		}}
	}
	if err := CheckServeRestart(good()); err != nil {
		t.Fatalf("gate rejected the good case: %v", err)
	}
	recompiled := good()
	recompiled.Restart.WarmCompiles = 1
	if CheckServeRestart(recompiled) == nil {
		t.Error("gate accepted warm compiles")
	}
	partial := good()
	partial.Restart.StoreHits = 2
	if CheckServeRestart(partial) == nil {
		t.Error("gate accepted a partial restore")
	}
	drifted := good()
	drifted.Restart.Identical = false
	if CheckServeRestart(drifted) == nil {
		t.Error("gate accepted drifted histograms")
	}
}

// ServeLoad without a store directory is a configuration error, not a
// silent skip of the restart phase.
func TestServeLoadNeedsStoreDir(t *testing.T) {
	if _, err := ServeLoad(ServeLoadOptions{}); err == nil {
		t.Fatal("missing store dir accepted")
	}
}
