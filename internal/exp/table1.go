package exp

import (
	"fmt"

	"dhisq/internal/resources"
)

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Name         string
	Est          resources.Estimate
	PaperLUTs    int
	PaperFFs     int
	PaperBRAM    float64
	MatchesPaper bool
}

// Table1Result is the full table.
type Table1Result struct {
	Rows     []Table1Row
	AllMatch bool
}

// Table1 evaluates the resource model against the published numbers.
func Table1() Table1Result {
	rows := []Table1Row{
		{Name: "Control Board", Est: resources.ControlBoard(), PaperLUTs: 4155, PaperFFs: 6392, PaperBRAM: 75},
		{Name: "Readout Board", Est: resources.ReadoutBoard(), PaperLUTs: 2435, PaperFFs: 3192, PaperBRAM: 45},
		{Name: "Event Queue (38bit x 1024)", Est: resources.EventQueue(38, 1024), PaperLUTs: 86, PaperFFs: 160, PaperBRAM: 1.5},
	}
	all := true
	for i := range rows {
		r := &rows[i]
		r.MatchesPaper = r.Est.LUTs == r.PaperLUTs && r.Est.FFs == r.PaperFFs &&
			r.Est.BRAMBlocks == r.PaperBRAM
		all = all && r.MatchesPaper
	}
	return Table1Result{Rows: rows, AllMatch: all}
}

// Render formats the table with the paper's values for comparison.
func (t Table1Result) Render() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%d (%d)", r.Est.LUTs, r.PaperLUTs),
			fmt.Sprintf("%.1f (%.1f)", r.Est.BRAMBlocks, r.PaperBRAM),
			fmt.Sprintf("%d (%d)", r.Est.FFs, r.PaperFFs),
			fmt.Sprint(r.MatchesPaper),
		})
	}
	return Table([]string{"type", "#LUTs (paper)", "#BRAM blocks (paper)", "#FF (paper)", "match"}, rows)
}
