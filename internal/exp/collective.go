package exp

import (
	"fmt"

	"dhisq/internal/network"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// The collective experiment measures what the topology-aware schedules buy
// over the naive fan-in/fan-out baseline: the same reduction, on the same
// fabric, under the same contention model, scheduled two ways. Naive
// funnels every participant's vector through the root's links; the
// topology-aware schedules (ring on torus, recursive halving/doubling on
// mesh, hierarchical subtree combining on tree) spread the same traffic
// across the fabric. The sweep runs participant count × topology × link
// bandwidth, self-checks every cell's reduced values against the host
// oracle, and gates on the makespan contract: collective never worse than
// naive, strictly better somewhere on torus and tree.
//
// Cells only sweep finite bandwidth (ser > 0). With contention off,
// messages never queue, so the naive fan-in — every message in flight at
// once, no serialization anywhere — is already optimal; the schedules
// exist to relieve the congestion that finite links create.

// CollectivePoint is one (kind, topology, participants, bandwidth) cell:
// the naive baseline and the topology-resolved schedule, run on identical
// fresh fabrics over identical inputs.
type CollectivePoint struct {
	Kind         string `json:"kind"`
	Topology     string `json:"topology"`
	Participants int    `json:"participants"`
	// LinkSerialization is the cycles one word occupies a link (always > 0
	// in this sweep; see the package comment).
	LinkSerialization int64 `json:"link_serialization_cycles"`
	// Schedule is the concrete schedule CollAuto resolved to for this
	// topology (ring, halving, or tree).
	Schedule      string  `json:"schedule"`
	Width         int     `json:"width_words"`
	NaiveMakespan int64   `json:"naive_makespan_cycles"`
	CollMakespan  int64   `json:"collective_makespan_cycles"`
	NaiveMessages uint64  `json:"naive_messages"`
	CollMessages  uint64  `json:"collective_messages"`
	Speedup       float64 `json:"speedup_vs_naive"`
	// ValuesMatch records that both runs' owned words equaled the host
	// oracle (CheckCollective re-verifies it; a false here fails the gate).
	ValuesMatch bool `json:"values_match"`
}

// CollectiveOptions parameterizes the sweep. Zero values pick the defaults
// used by dhisq-bench -exp collective.
type CollectiveOptions struct {
	Seed           int64 // input-vector seed (default 1)
	Kinds          []network.CollKind
	Topologies     []network.TopologyKind
	Participants   []int      // participant counts (default 4, 9, 18, 36)
	Serializations []sim.Time // link occupancies, all > 0 (default 2, 4, 8)
	Width          int        // words per participant vector (default 8)
}

// collInputs builds deterministic pseudo-random input vectors from the
// seed via an xorshift generator (no global rand state, so a sweep is a
// pure function of its options).
func collInputs(seed int64, n, w int) [][]uint32 {
	x := uint64(seed)*2654435761 + 1
	next := func() uint32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return uint32(x)
	}
	in := make([][]uint32, n)
	for r := range in {
		in[r] = make([]uint32, w)
		for i := range in[r] {
			in[r][i] = next()
		}
	}
	return in
}

// runCollCell runs one schedule of one cell on a fresh fabric and verifies
// every owned word against the host oracle.
func runCollCell(cfg network.Config, spec network.CollSpec, inputs [][]uint32) (*network.CollResult, error) {
	topo, err := network.NewTopology(cfg)
	if err != nil {
		return nil, err
	}
	f := network.NewFabric(sim.NewEngine(), topo, telf.NewLog())
	res, err := network.RunCollective(f, spec, inputs, 0)
	if err != nil {
		return nil, err
	}
	want := network.CollExpect(spec, inputs)
	for r := range res.Values {
		for _, w := range network.CollOwnedWords(spec, r) {
			if res.Values[r][w] != want[r][w] {
				return nil, fmt.Errorf("exp: %s/%s on %s: rank %d word %d = %#x, oracle %#x",
					spec.Kind, spec.Schedule, cfg.Topology, r, w, res.Values[r][w], want[r][w])
			}
		}
	}
	return res, nil
}

// CollectiveSweep runs the full grid and returns one point per cell, in
// deterministic (kind, topology, participants, serialization) order.
func CollectiveSweep(opt CollectiveOptions) ([]CollectivePoint, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Kinds == nil {
		// Broadcast, reduce and all-reduce are all gated: broadcast and
		// reduce are the shapes the runtime consumers use (feed-forward
		// distribution, parity gathers, the digest reduce), and all-reduce
		// joined the gate once the ring schedule closed its old caveat —
		// recursive doubling sends ~2x naive's message volume at
		// non-power-of-two counts, so the resolver now routes those counts
		// to the volume-optimal reduce-scatter + all-gather ring instead.
		opt.Kinds = []network.CollKind{network.CollBroadcast, network.CollReduce, network.CollAllReduce}
	}
	if opt.Topologies == nil {
		opt.Topologies = []network.TopologyKind{network.TopoMesh, network.TopoTorus, network.TopoTree}
	}
	if opt.Participants == nil {
		opt.Participants = []int{4, 9, 18, 36}
	}
	if opt.Serializations == nil {
		opt.Serializations = []sim.Time{2, 4, 8}
	}
	for _, ser := range opt.Serializations {
		if ser <= 0 {
			return nil, fmt.Errorf("exp: collective sweep needs finite bandwidth (ser > 0), got %d", ser)
		}
	}
	if opt.Width <= 0 {
		opt.Width = 8
	}

	var out []CollectivePoint
	for _, kind := range opt.Kinds {
		for _, tk := range opt.Topologies {
			for _, n := range opt.Participants {
				for _, ser := range opt.Serializations {
					cfg := network.DefaultConfig(36)
					cfg.Topology = tk
					cfg.LinkSerialization = ser
					topo, err := network.NewTopology(cfg)
					if err != nil {
						return nil, err
					}
					if n > topo.N {
						return nil, fmt.Errorf("exp: %d participants on a %d-controller fabric", n, topo.N)
					}
					// Snake order makes ring neighbors physical neighbors on
					// mesh/torus — the order the runtime consumers use too.
					parts := topo.SnakeOrder()[:n]
					width := opt.Width
					if kind == network.CollReduceScatter && width%n != 0 {
						width = n * ((width + n - 1) / n)
					}
					spec := network.CollSpec{
						Kind: kind, Parts: parts, Root: 0,
						Width: width, Op: network.ReduceSum,
					}
					inputs := collInputs(opt.Seed, n, width)

					spec.Schedule = network.CollNaive
					naive, err := runCollCell(cfg, spec, inputs)
					if err != nil {
						return nil, err
					}
					// ResolveFor sees the collective kind and participant
					// count, so non-power-of-two all-reduce lands on the
					// ring schedule rather than recursive doubling.
					resolved := network.CollAuto.ResolveFor(tk, kind, n)
					spec.Schedule = resolved
					coll, err := runCollCell(cfg, spec, inputs)
					if err != nil {
						return nil, err
					}

					speedup := 0.0
					if coll.Makespan() > 0 {
						speedup = float64(naive.Makespan()) / float64(coll.Makespan())
					}
					out = append(out, CollectivePoint{
						Kind:              kind.String(),
						Topology:          tk.String(),
						Participants:      n,
						LinkSerialization: int64(ser),
						Schedule:          resolved.String(),
						Width:             width,
						NaiveMakespan:     int64(naive.Makespan()),
						CollMakespan:      int64(coll.Makespan()),
						NaiveMessages:     naive.Messages,
						CollMessages:      coll.Messages,
						Speedup:           speedup,
						ValuesMatch:       true,
					})
				}
			}
		}
	}
	return out, nil
}

// CheckCollective enforces the sweep's CI gate: every cell's values
// matched the oracle (both schedules), the topology-aware schedule is
// never slower than naive in any cell, and it is strictly faster in at
// least one torus cell and one tree cell (where the ring and subtree
// schedules respectively have real structure to exploit).
func CheckCollective(points []CollectivePoint) error {
	if len(points) == 0 {
		return fmt.Errorf("exp: empty collective sweep")
	}
	strictly := map[string]bool{}
	for _, p := range points {
		if !p.ValuesMatch {
			return fmt.Errorf("exp: %s/%s n=%d ser=%d: reduced values diverged from the oracle",
				p.Kind, p.Topology, p.Participants, p.LinkSerialization)
		}
		if p.CollMakespan > p.NaiveMakespan {
			return fmt.Errorf("exp: %s/%s n=%d ser=%d: %s schedule slower than naive (%d > %d cycles)",
				p.Kind, p.Topology, p.Participants, p.LinkSerialization,
				p.Schedule, p.CollMakespan, p.NaiveMakespan)
		}
		if p.CollMakespan < p.NaiveMakespan {
			strictly[p.Topology] = true
		}
	}
	for _, want := range []string{"torus", "tree"} {
		if !strictly[want] {
			return fmt.Errorf("exp: collective schedule never strictly beat naive on %s", want)
		}
	}
	return nil
}

// RenderCollective formats the sweep as a text table.
func RenderCollective(points []CollectivePoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Kind,
			p.Topology,
			fmt.Sprint(p.Participants),
			fmt.Sprint(p.LinkSerialization),
			p.Schedule,
			fmt.Sprint(p.NaiveMakespan),
			fmt.Sprint(p.CollMakespan),
			fmt.Sprintf("%.2f", p.Speedup),
			fmt.Sprintf("%d/%d", p.CollMessages, p.NaiveMessages),
		})
	}
	return Table([]string{"kind", "topology", "parts", "ser(cy)", "schedule", "naive(cy)", "coll(cy)", "speedup", "msgs coll/naive"}, rows)
}
