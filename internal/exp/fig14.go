package exp

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/sim"
)

// Fig14Point compares the dynamic long-range CNOT against SWAP routing at
// one qubit distance: circuit depth (the figure's claim: "this scheme
// maintains constant circuit depth as the number of qubits grows") and the
// measured makespan through the full control stack.
type Fig14Point struct {
	Distance     int
	DynamicDepth int64
	SwapDepth    int64
	DynamicMake  sim.Time
	SwapMake     sim.Time
}

// Fig14Result is the distance sweep.
type Fig14Result struct {
	Points []Fig14Point
}

// Fig14LongRange sweeps the control-target distance. runMachine additionally
// executes both variants on the Distributed-HISQ machine (slower; tests can
// disable it).
func Fig14LongRange(distances []int, runMachine bool, seed int64) (Fig14Result, error) {
	if len(distances) == 0 {
		distances = []int{2, 4, 8, 16, 32}
	}
	d := circuit.PaperDurations()
	var out Fig14Result
	for _, dist := range distances {
		logical := circuit.New(dist + 1)
		logical.X(0)
		logical.CNOT(0, dist)
		logical.MeasureInto(dist, 0)
		dyn, err := circuit.DualRailEmbedding{}.Embed(logical)
		if err != nil {
			return out, err
		}
		// SWAP-routed static alternative on the same dual-rail device.
		sw := circuit.New(2 * (dist + 1))
		sw.X(0)
		chain := make([]int, dist-1)
		for i := range chain {
			chain[i] = i + 1
		}
		sw.SwapRouteCNOT(0, dist, chain)
		sw.MeasureInto(dist, 0)

		p := Fig14Point{
			Distance:     dist,
			DynamicDepth: dyn.Depth(d),
			SwapDepth:    sw.Depth(d),
		}
		if runMachine {
			w := (dyn.NumQubits + 1) / 2
			cfg := machine.DefaultConfig(dyn.NumQubits)
			cfg.Backend = machine.BackendStabilizer
			cfg.Seed = seed
			res, _, err := machine.RunCircuit(dyn, w, 2, nil, cfg)
			if err != nil {
				return out, fmt.Errorf("distance %d dynamic: %w", dist, err)
			}
			p.DynamicMake = res.Makespan
			cfg2 := machine.DefaultConfig(sw.NumQubits)
			cfg2.Backend = machine.BackendStabilizer
			cfg2.Seed = seed
			res2, _, err := machine.RunCircuit(sw, w, 2, nil, cfg2)
			if err != nil {
				return out, fmt.Errorf("distance %d swap: %w", dist, err)
			}
			p.SwapMake = res2.Makespan
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// Render formats the sweep.
func (r Fig14Result) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprint(p.Distance),
			fmt.Sprint(p.DynamicDepth),
			fmt.Sprint(p.SwapDepth),
			fmt.Sprint(p.DynamicMake),
			fmt.Sprint(p.SwapMake),
		})
	}
	return Table([]string{"distance", "dyn depth(cy)", "swap depth(cy)", "dyn makespan", "swap makespan"}, rows)
}
