package exp

import (
	"fmt"

	"dhisq/internal/core"
	"dhisq/internal/isa"
	"dhisq/internal/network"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// Fig12ControlBoard is the control-board program of Figure 12, with board
// addresses mapped to our 0-based controller ids (control = 0, readout = 1).
// The waitr $1 makes its timing non-deterministic from the readout board's
// perspective — the as-needed synchronization scenario of §6.3.
const Fig12ControlBoard = `
addi $2,$0,120
addi $1,$0,0
loop:
waiti 1
cw.i.i 21,2
addi $1,$1,40
cw.i.i 20,2
waitr $1
sync 1
waiti 8
cw.i.i 7,1
waiti 50
bne $1,$2,loop
halt
`

// Fig12ReadoutBoard is the readout-board program of Figure 12 (sync target
// mapped to controller 0). The paper's version loops forever; ours runs the
// three inner-loop iterations of the control board and halts, which keeps
// the simulation finite without changing any timing.
const Fig12ReadoutBoard = `
addi $3,$0,3
loop:
waiti 2
sync 0
waiti 6
waiti 57
cw.i.i 5,1
addi $4,$4,1
bne $4,$3,loop
halt
`

// Fig13Result captures the §6.3 electronics-level verification: the commit
// times of the highlighted instruction pair across inner-loop iterations.
type Fig13Result struct {
	ControlCommits []sim.Time // cw.i.i 7,1 on the control board (yellow)
	ReadoutCommits []sim.Time // cw.i.i 5,1 on the readout board (blue)
	Deltas         []int64    // readout - control per iteration
	DeltaConstant  bool       // cycle-level sync: the offset never drifts
	SweepDeltas    []int64    // growth of the control board period per iteration
}

// Fig13SyncWaveforms runs the two Figure 12 programs on a two-board fabric
// and extracts the waveform alignment of Figure 13. The synchronized pair
// must commit with a constant mutual offset (55 cycles: the deliberate
// 8-vs-63 trigger-delay compensation) in every iteration even though the
// control board's progress shifts by 40 cycles per iteration.
func Fig13SyncWaveforms() (Fig13Result, error) {
	eng := sim.NewEngine()
	log := telf.NewLog()
	netCfg := network.DefaultConfig(2)
	netCfg.MeshW, netCfg.MeshH = 2, 1
	topo, err := network.NewTopology(netCfg)
	if err != nil {
		return Fig13Result{}, err
	}
	fab := network.NewFabric(eng, topo, log)
	ctrlBoard := core.NewController(eng, core.Config{ID: 0, Ports: 28, QueueDepth: 1024}, fab, nil, log)
	roBoard := core.NewController(eng, core.Config{ID: 1, Ports: 8, QueueDepth: 1024}, fab, nil, log)
	fab.Attach(0, ctrlBoard)
	fab.Attach(1, roBoard)
	ctrlBoard.Load(isa.MustAssemble(Fig12ControlBoard))
	roBoard.Load(isa.MustAssemble(Fig12ReadoutBoard))
	ctrlBoard.Start()
	roBoard.Start()
	eng.RunUntil(100_000)
	if !ctrlBoard.Halted() || !roBoard.Halted() {
		return Fig13Result{}, fmt.Errorf("fig13: boards wedged (ctrl=%v ro=%v)",
			ctrlBoard.Blocked(), roBoard.Blocked())
	}

	var res Fig13Result
	for _, e := range log.Commits(0, 7) {
		res.ControlCommits = append(res.ControlCommits, e.Time)
	}
	for _, e := range log.Commits(1, 5) {
		res.ReadoutCommits = append(res.ReadoutCommits, e.Time)
	}
	n := len(res.ControlCommits)
	if len(res.ReadoutCommits) < n {
		n = len(res.ReadoutCommits)
	}
	res.DeltaConstant = n > 0
	for i := 0; i < n; i++ {
		d := res.ReadoutCommits[i] - res.ControlCommits[i]
		res.Deltas = append(res.Deltas, d)
		if d != res.Deltas[0] {
			res.DeltaConstant = false
		}
	}
	for i := 1; i < len(res.ControlCommits); i++ {
		res.SweepDeltas = append(res.SweepDeltas, res.ControlCommits[i]-res.ControlCommits[i-1])
	}
	return res, nil
}

// Render formats the waveform table.
func (r Fig13Result) Render() string {
	rows := make([][]string, 0, len(r.Deltas))
	for i := range r.Deltas {
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprint(r.ControlCommits[i]),
			fmt.Sprint(r.ReadoutCommits[i]),
			fmt.Sprint(r.Deltas[i]),
		})
	}
	s := Table([]string{"iter", "control cw7 (cy)", "readout cw5 (cy)", "delta"}, rows)
	return s + fmt.Sprintf("delta constant: %v; control-period growth: %v cycles\n",
		r.DeltaConstant, r.SweepDeltas)
}
