package exp

import (
	"fmt"

	"dhisq/internal/machine"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// AblationRow compares BISP's booking-in-advance placement (Fig. 6) against
// the as-needed scheme that inserts the sync immediately before the
// synchronized instruction (QubiC 2.0 style, §2.1.3) — the paper's claim
// that advancing the booking hides the sync round-trip, isolated from every
// other difference: same programs, same fabric, same windows.
type AblationRow struct {
	Name         string
	Advance      sim.Time // makespan with Fig. 6 booking advance
	NoAdvance    sim.Time // makespan with sync immediately before the commit
	AdvanceStall sim.Time // cycles the TCU timers spent paused (advance)
	NoAdvStall   sim.Time
	Saved        float64 // 1 - Advance/NoAdvance
}

// AblationSyncAdvance runs the comparison on the named benchmarks (nil =
// the qft family, the most sync-dense workloads).
func AblationSyncAdvance(names []string, scaleDiv int, seed int64) ([]AblationRow, error) {
	if names == nil {
		names = []string{"qft_n30", "qft_n100"}
	}
	if scaleDiv <= 0 {
		scaleDiv = 1
	}
	var rows []AblationRow
	for _, name := range names {
		b, err := workloads.BuildScaled(name, scaleDiv)
		if err != nil {
			return nil, err
		}
		run := func(advance bool) (machine.Result, error) {
			cfg := machine.DefaultConfig(b.Qubits)
			cfg.Backend = machine.BackendSeeded
			cfg.Seed = seed
			// The compiler-option override rides on the runner spec; one
			// shot at the base seed matches the pre-runner behaviour.
			m, err := machine.NewForCircuit(b.Circuit, b.MeshW, b.MeshH, cfg)
			if err != nil {
				return machine.Result{}, err
			}
			opt := m.CompileOptions()
			opt.AdvanceBooking = advance
			set, err := runner.Run(runner.Spec{
				Circuit: b.Circuit, MeshW: b.MeshW, MeshH: b.MeshH,
				Mapping: b.Mapping, Cfg: cfg, Options: &opt,
			}, 1, 1)
			if err != nil {
				return machine.Result{}, err
			}
			res := set.Shots[0].Result
			if res.Misalignments != 0 || res.Violations != 0 {
				return machine.Result{}, fmt.Errorf("%s advance=%v: invariants broken", name, advance)
			}
			return res, nil
		}
		adv, err := run(true)
		if err != nil {
			return nil, err
		}
		noadv, err := run(false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:         b.Name,
			Advance:      adv.Makespan,
			NoAdvance:    noadv.Makespan,
			AdvanceStall: adv.SyncStall,
			NoAdvStall:   noadv.SyncStall,
			Saved:        1 - float64(adv.Makespan)/float64(noadv.Makespan),
		})
	}
	return rows, nil
}

// RenderAblation formats the rows.
func RenderAblation(rows []AblationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Name,
			fmt.Sprint(r.Advance),
			fmt.Sprint(r.NoAdvance),
			fmt.Sprintf("%.1f%%", 100*r.Saved),
		})
	}
	return Table([]string{"benchmark", "advance(cy)", "no-advance(cy)", "saved"}, out)
}
