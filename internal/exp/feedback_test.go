package exp

import (
	"strings"
	"testing"
)

// TestFeedbackSweepImproves runs the (small) sweep end to end and holds
// it to the headline claims: a cold and a replaced cell for every
// workload, sane fields, no workload regressing and the hotspot
// improving strictly.
func TestFeedbackSweepImproves(t *testing.T) {
	points, err := FeedbackSweep(FeedbackOptions{Qubits: 12, Seed: 1, LinkBW: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(FeedbackWorkloads()) * 2
	if len(points) != wantCells {
		t.Fatalf("got %d points, want %d", len(points), wantCells)
	}
	for _, p := range points {
		if p.Makespan <= 0 {
			t.Errorf("%s/%s: makespan %d", p.Workload, p.Phase, p.Makespan)
		}
		if p.LinkSerialization != 4 {
			t.Errorf("%s/%s: serialization %d, want 4", p.Workload, p.Phase, p.LinkSerialization)
		}
		if len(p.Mapping) != 12 {
			t.Errorf("%s/%s: mapping length %d, want 12", p.Workload, p.Phase, len(p.Mapping))
		}
		if p.Phase == "cold" && p.FeedbackLinks == 0 {
			t.Errorf("%s cold run attributed stall to no links", p.Workload)
		}
	}
	if err := CheckFeedbackImproves(points); err != nil {
		t.Fatal(err)
	}
	table := RenderFeedback(points)
	for _, w := range FeedbackWorkloads() {
		if !strings.Contains(table, w) {
			t.Fatalf("rendered table is missing workload %q:\n%s", w, table)
		}
	}
}

// TestCheckFeedbackImprovesCatchesRegression: doctored sweeps — a
// stall regression anywhere, a flat hotspot, or a missing phase — must
// all fail the check.
func TestCheckFeedbackImprovesCatchesRegression(t *testing.T) {
	mk := func(hotCold, hotRep, qftCold, qftRep int64) []FeedbackPoint {
		return []FeedbackPoint{
			{Workload: "hotspot", Phase: "cold", TotalStall: hotCold},
			{Workload: "hotspot", Phase: "replaced", TotalStall: hotRep},
			{Workload: "qft", Phase: "cold", TotalStall: qftCold},
			{Workload: "qft", Phase: "replaced", TotalStall: qftRep},
			{Workload: "bv", Phase: "cold", TotalStall: 5},
			{Workload: "bv", Phase: "replaced", TotalStall: 5},
		}
	}
	if err := CheckFeedbackImproves(mk(100, 50, 40, 40)); err != nil {
		t.Fatalf("healthy sweep rejected: %v", err)
	}
	if err := CheckFeedbackImproves(mk(100, 50, 40, 60)); err == nil {
		t.Fatal("qft stall regression not caught")
	}
	if err := CheckFeedbackImproves(mk(100, 100, 40, 40)); err == nil {
		t.Fatal("flat hotspot passed the strict-improvement gate")
	}
	if err := CheckFeedbackImproves(mk(100, 50, 40, 40)[:5]); err == nil {
		t.Fatal("missing replaced phase not caught")
	}
}
