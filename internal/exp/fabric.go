package exp

import (
	"fmt"

	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// The fabric experiment is the topology/bandwidth study the contention
// model exists for: the same workloads executed across every intra-layer
// topology and a sweep of link bandwidths, reporting how congestion —
// queueing stalls, backlog depth, router utilization — grows as bandwidth
// shrinks and how topology choice shifts where traffic piles up.

// FabricPoint is one (workload, topology, bandwidth) cell of the sweep.
type FabricPoint struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	Topology string `json:"topology"`
	// LinkSerialization is the cycles one message occupies a link or
	// router port (0 = infinite bandwidth, the contention-free baseline).
	LinkSerialization int64   `json:"link_serialization_cycles"`
	Makespan          int64   `json:"makespan_cycles"`
	NetStall          int64   `json:"net_stall_cycles"`   // charged to controller traffic
	TotalStall        int64   `json:"total_stall_cycles"` // links + router ports, all traffic
	SyncStall         int64   `json:"sync_stall_cycles"`
	MaxQueue          int     `json:"max_queue_depth"`
	LinkMessages      uint64  `json:"link_messages"`
	PortMessages      uint64  `json:"port_messages"`
	RouterUtilization float64 `json:"router_utilization"`
	// Misalignments counts two-qubit co-commitment failures: congestion
	// that delays one side of a calibrated sync past its window breaks
	// the paper's core timing guarantee, and this is where it shows.
	Misalignments int `json:"misalignments"`
}

// FabricOptions parameterizes the sweep. Zero values pick the defaults
// used by dhisq-bench -exp fabric.
type FabricOptions struct {
	Qubits         int   // workload size (default 16)
	Seed           int64 // backend seed (default 1)
	Topologies     []network.TopologyKind
	Serializations []sim.Time // link occupancies to sweep (must include 0 to anchor the baseline)
}

// FabricSweepWorkloads names the circuits the sweep runs.
func FabricSweepWorkloads() []string { return []string{"ghz", "qft", "bv"} }

func fabricCircuit(name string, n int) (*runner.Spec, error) {
	var spec runner.Spec
	switch name {
	case "ghz":
		spec.Circuit = workloads.GHZ(n)
	case "qft":
		spec.Circuit = workloads.QFT(n)
	case "bv":
		spec.Circuit = workloads.BV(n, workloads.AlternatingSecret)
	default:
		return nil, fmt.Errorf("exp: unknown fabric workload %q", name)
	}
	return &spec, nil
}

// FabricSweep runs the full grid and returns one point per cell, in
// deterministic (workload, topology, serialization) order.
func FabricSweep(opt FabricOptions) ([]FabricPoint, error) {
	if opt.Qubits <= 0 {
		opt.Qubits = 16
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Topologies == nil {
		opt.Topologies = []network.TopologyKind{network.TopoMesh, network.TopoTorus, network.TopoTree}
	}
	if opt.Serializations == nil {
		opt.Serializations = []sim.Time{0, 1, 2, 4, 8, 16}
	}
	var out []FabricPoint
	for _, name := range FabricSweepWorkloads() {
		for _, topo := range opt.Topologies {
			for _, ser := range opt.Serializations {
				spec, err := fabricCircuit(name, opt.Qubits)
				if err != nil {
					return nil, err
				}
				c := spec.Circuit
				cfg := machine.DefaultConfig(c.NumQubits)
				cfg.Backend = machine.BackendSeeded
				cfg.Seed = opt.Seed
				cfg.Net.Topology = topo
				cfg.Net.LinkSerialization = ser
				m, err := machine.New(cfg, c.NumQubits)
				if err != nil {
					return nil, err
				}
				cp, err := m.Compile(c, nil)
				if err != nil {
					return nil, err
				}
				if err := m.Load(cp); err != nil {
					return nil, err
				}
				res, err := m.Run()
				if err != nil {
					return nil, fmt.Errorf("exp: fabric %s/%s/ser=%d: %w", name, topo, ser, err)
				}
				out = append(out, FabricPoint{
					Workload:          name,
					Qubits:            c.NumQubits,
					Topology:          topo.String(),
					LinkSerialization: int64(ser),
					Makespan:          int64(res.Makespan),
					NetStall:          int64(res.NetStall),
					TotalStall:        int64(res.Net.TotalStall()),
					SyncStall:         int64(res.SyncStall),
					MaxQueue:          res.Net.MaxQueue(),
					LinkMessages:      res.Net.LinkMessages,
					PortMessages:      res.Net.PortMessages,
					RouterUtilization: res.RouterUtilization,
					Misalignments:     res.Misalignments,
				})
			}
		}
	}
	return out, nil
}

// CheckFabricMonotone verifies the sweep's headline property: for every
// (workload, topology) series, total stall cycles never shrink as the
// link bandwidth shrinks (serialization grows), and the zero-serialization
// anchor records no stalls at all. Points must be in FabricSweep order.
func CheckFabricMonotone(points []FabricPoint) error {
	type seriesKey struct{ w, t string }
	last := map[seriesKey]FabricPoint{}
	for _, p := range points {
		k := seriesKey{p.Workload, p.Topology}
		if p.LinkSerialization == 0 && (p.TotalStall != 0 || p.Misalignments != 0) {
			return fmt.Errorf("exp: %s/%s: contention disabled but %d stall cycles, %d misalignments recorded",
				p.Workload, p.Topology, p.TotalStall, p.Misalignments)
		}
		if prev, ok := last[k]; ok && p.LinkSerialization > prev.LinkSerialization {
			if p.TotalStall < prev.TotalStall {
				return fmt.Errorf("exp: %s/%s: stalls shrank from %d (ser=%d) to %d (ser=%d) as bandwidth fell",
					p.Workload, p.Topology, prev.TotalStall, prev.LinkSerialization,
					p.TotalStall, p.LinkSerialization)
			}
		}
		last[k] = p
	}
	return nil
}

// RenderFabric formats the sweep as a text table.
func RenderFabric(points []FabricPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload,
			p.Topology,
			fmt.Sprint(p.LinkSerialization),
			fmt.Sprint(p.Makespan),
			fmt.Sprint(p.TotalStall),
			fmt.Sprint(p.MaxQueue),
			fmt.Sprintf("%.3f", p.RouterUtilization),
			fmt.Sprint(p.Misalignments),
		})
	}
	return Table([]string{"workload", "topology", "ser(cy)", "makespan(cy)", "stall(cy)", "maxq", "port util", "misalign"}, rows)
}
