package exp

import (
	"strings"
	"testing"
)

// TestRemoteSweepGate runs a reduced grid of the remote experiment and
// enforces the same gate dhisq-bench -exp remote does: single-chip cells
// degenerate cleanly, every multi-chip cell generated pairs for its cut,
// and the interaction partition is never worse than row-major with a
// strict win somewhere.
func TestRemoteSweepGate(t *testing.T) {
	points, err := RemoteSweep(RemoteOptions{
		Qubits:    8,
		Chips:     []int{1, 2},
		Latencies: []int64{40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRemote(points); err != nil {
		t.Fatalf("%v\n%s", err, RenderRemote(points))
	}
	// 3 workloads x 2 chip counts x 1 latency x 2 policies.
	if len(points) != 12 {
		t.Fatalf("got %d points, want 12", len(points))
	}
	if !strings.Contains(RenderRemote(points), "dvqe") {
		t.Fatal("rendered table lost the dvqe rows")
	}
}

// TestCheckRemoteCatchesRegression pins that the gate bites on every
// contract clause: a leaking single-chip cell, a pair deficit, a
// worse-than-rowmajor cut, and a sweep with no strict win.
func TestCheckRemoteCatchesRegression(t *testing.T) {
	base := []RemotePoint{
		{Workload: "w", Chips: 1, EPRLatency: 40, Policy: "rowmajor"},
		{Workload: "w", Chips: 1, EPRLatency: 40, Policy: "interaction"},
		{Workload: "w", Chips: 2, EPRLatency: 40, Policy: "rowmajor", CutGates: 4, EPRPairs: 4},
		{Workload: "w", Chips: 2, EPRLatency: 40, Policy: "interaction", CutGates: 2, EPRPairs: 2},
	}
	if err := CheckRemote(base); err != nil {
		t.Fatalf("healthy sweep rejected: %v", err)
	}
	if err := CheckRemote(nil); err == nil {
		t.Fatal("empty sweep passed")
	}

	leak := append([]RemotePoint(nil), base...)
	leak[0].EPRPairs = 1
	if err := CheckRemote(leak); err == nil {
		t.Fatal("single-chip cell with EPR pairs passed")
	}

	deficit := append([]RemotePoint(nil), base...)
	deficit[3].EPRPairs = 1
	if err := CheckRemote(deficit); err == nil {
		t.Fatal("pair deficit (fewer pairs than cut gates) passed")
	}

	worse := append([]RemotePoint(nil), base...)
	worse[3].CutGates, worse[3].EPRPairs = 9, 9
	if err := CheckRemote(worse); err == nil {
		t.Fatal("interaction worse than rowmajor passed")
	}

	flat := append([]RemotePoint(nil), base...)
	flat[3].CutGates, flat[3].EPRPairs = 4, 4
	if err := CheckRemote(flat); err == nil {
		t.Fatal("never-strictly-better sweep passed")
	}
}

// TestRemoteCircuitUnknownWorkload pins the error path.
func TestRemoteCircuitUnknownWorkload(t *testing.T) {
	if _, err := remoteCircuit("bogus", 8); err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, name := range RemoteSweepWorkloads() {
		c, err := remoteCircuit(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumQubits != 8 {
			t.Fatalf("%s: %d qubits, want 8", name, c.NumQubits)
		}
	}
}
