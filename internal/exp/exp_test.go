package exp

import (
	"math"
	"strings"
	"testing"

	"dhisq/internal/sim"
)

func TestTable1MatchesPaper(t *testing.T) {
	res := Table1()
	if !res.AllMatch {
		t.Fatalf("resource model diverges from Table 1:\n%s", res.Render())
	}
}

func TestFig13ConstantDelta(t *testing.T) {
	res, err := Fig13SyncWaveforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != 3 {
		t.Fatalf("expected 3 inner-loop iterations, got %d deltas", len(res.Deltas))
	}
	if !res.DeltaConstant {
		t.Fatalf("sync pair drifted: deltas %v", res.Deltas)
	}
	// The deliberate trigger-delay compensation: readout commits 63 cycles
	// after its sync point, the control board 8 — constant 55-cycle offset.
	if res.Deltas[0] != 55 {
		t.Fatalf("delta = %d, want 55", res.Deltas[0])
	}
	// The control board's progress shifts with $1 (+40 cycles/iteration on
	// top of the fixed loop body) — the non-determinism the sync absorbs.
	if len(res.SweepDeltas) != 2 || res.SweepDeltas[1]-res.SweepDeltas[0] != 40 {
		t.Fatalf("period growth %v, want +40/iter", res.SweepDeltas)
	}
}

func TestFig15ScaledShape(t *testing.T) {
	res, err := Fig15Runtime(Fig15Options{ScaleDiv: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("%d rows, want 12", len(res.Rows))
	}
	// Headline shape: BISP beats lock-step on average.
	if res.Average >= 1.0 {
		t.Fatalf("average normalized runtime %.3f, want < 1", res.Average)
	}
	for _, r := range res.Rows {
		if r.BISP <= 0 || r.Lockstep <= 0 {
			t.Fatalf("%s: degenerate makespans %d/%d", r.Name, r.BISP, r.Lockstep)
		}
		if r.Normalized <= 0.05 || r.Normalized > 3 {
			t.Fatalf("%s: implausible normalized runtime %.3f", r.Name, r.Normalized)
		}
	}
	if !strings.Contains(res.Render(), "avg") {
		t.Fatal("render missing average row")
	}
}

func TestFig16RatioShape(t *testing.T) {
	res, err := Fig16Fidelity(0, 0, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("%d points, want 10", len(res.Points))
	}
	if res.BISPMakespan >= res.LockstepMakespan {
		t.Fatalf("BISP (%d) should beat lock-step (%d) on the all-feedback circuit",
			res.BISPMakespan, res.LockstepMakespan)
	}
	first := res.Points[0].Ratio
	for _, p := range res.Points {
		if p.LockstepInfid <= p.BISPInfid {
			t.Fatalf("T1=%v: no infidelity reduction", p.T1us)
		}
		if p.Ratio < 2 {
			t.Fatalf("T1=%v: reduction ratio %.2f too small", p.T1us, p.Ratio)
		}
		// The paper's ratio is roughly constant across the sweep.
		if math.Abs(p.Ratio-first)/first > 0.3 {
			t.Fatalf("ratio drifts: %.2f vs %.2f", p.Ratio, first)
		}
	}
}

func TestFig14DepthShape(t *testing.T) {
	res, err := Fig14LongRange([]int{2, 4, 8, 16}, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic depth constant beyond the smallest distances; swap grows.
	d8, d16 := res.Points[2], res.Points[3]
	if d8.DynamicDepth != d16.DynamicDepth {
		t.Fatalf("dynamic depth not constant: %d vs %d", d8.DynamicDepth, d16.DynamicDepth)
	}
	if !(res.Points[0].SwapDepth < res.Points[1].SwapDepth &&
		res.Points[1].SwapDepth < res.Points[2].SwapDepth) {
		t.Fatal("swap depth not growing")
	}
}

func TestFig14MachineMakespans(t *testing.T) {
	res, err := Fig14LongRange([]int{4, 12}, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Through the full stack the dynamic construction's makespan grows only
	// mildly with distance (message latency), while swap routing pays the
	// full serial chain.
	growthDyn := float64(res.Points[1].DynamicMake) / float64(res.Points[0].DynamicMake)
	growthSwap := float64(res.Points[1].SwapMake) / float64(res.Points[0].SwapMake)
	if growthDyn >= growthSwap {
		t.Fatalf("dynamic growth %.2f should be below swap growth %.2f", growthDyn, growthSwap)
	}
}

func TestFig11Circle(t *testing.T) {
	res, err := Fig11DrawCircle(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 48 {
		t.Fatalf("%d IQ points, want 48", len(res.Points))
	}
	if math.Abs(res.Circle.R-1) > 0.15 {
		t.Fatalf("circle radius %.3f, want ~1", res.Circle.R)
	}
	if math.Hypot(res.Circle.X0, res.Circle.Y0) > 0.2 {
		t.Fatalf("circle center (%.3f, %.3f) far from origin", res.Circle.X0, res.Circle.Y0)
	}
	// The deviation from an ideal circle is the interference signature:
	// visible but small.
	if res.RMSE < 0.005 || res.RMSE > 0.2 {
		t.Fatalf("interference RMSE %.4f outside expected band", res.RMSE)
	}
}

func TestFig11Spectroscopy(t *testing.T) {
	res, err := Fig11Spectroscopy(41, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit.X0-res.TrueF0) > 0.01 {
		t.Fatalf("resonance fit %.4f GHz, want %.4f±0.01", res.Fit.X0, res.TrueF0)
	}
}

func TestFig11Rabi(t *testing.T) {
	res, err := Fig11Rabi(33, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePi <= 0 {
		t.Fatal("bad reference pi amplitude")
	}
	if math.Abs(res.PiAmp-res.TruePi)/res.TruePi > 0.1 {
		t.Fatalf("pi amplitude fit %.4f, want %.4f±10%%", res.PiAmp, res.TruePi)
	}
}

func TestFig11T1(t *testing.T) {
	res, err := Fig11T1(21, 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 11(d): 9.9 µs with natural statistical fluctuation (the paper's
	// own cross-check differed by 3%: 9.9 vs 10.2 µs).
	if math.Abs(res.T1Us-res.TrueT1Us)/res.TrueT1Us > 0.25 {
		t.Fatalf("T1 fit %.2f µs, want %.2f±25%%", res.T1Us, res.TrueT1Us)
	}
}

func TestTableRenderer(t *testing.T) {
	s := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(s, "333") || !strings.Contains(s, "bb") {
		t.Fatalf("bad table:\n%s", s)
	}
}

func TestAblationSyncAdvance(t *testing.T) {
	rows, err := AblationSyncAdvance([]string{"qft_n30"}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// Advancing the booking must never hurt, and on the sync-dense dynamic
	// QFT it must strictly win: the countdown overlaps deterministic work
	// instead of padding the timeline (§4.2 vs §2.1.3).
	if r.Advance >= r.NoAdvance {
		t.Fatalf("advance %d should beat no-advance %d", r.Advance, r.NoAdvance)
	}
	if r.Saved <= 0 {
		t.Fatalf("saved = %f", r.Saved)
	}
	if !strings.Contains(RenderAblation(rows), "qft_n30") {
		t.Fatal("render")
	}
}

func TestFabricSweepMonotoneAndAnchored(t *testing.T) {
	points, err := FabricSweep(FabricOptions{
		Qubits:         12,
		Seed:           3,
		Serializations: []sim.Time{0, 2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x 3 topologies x 3 serializations.
	if len(points) != 27 {
		t.Fatalf("got %d points, want 27", len(points))
	}
	if err := CheckFabricMonotone(points); err != nil {
		t.Fatal(err)
	}
	// Contention must actually bite somewhere: at least one enabled point
	// records stalls, or the sweep is measuring nothing.
	var sawStall bool
	for _, p := range points {
		if p.LinkSerialization > 0 && p.TotalStall > 0 {
			sawStall = true
		}
		if p.LinkSerialization == 0 && p.Makespan == 0 {
			t.Fatalf("%s/%s baseline has no makespan", p.Workload, p.Topology)
		}
	}
	if !sawStall {
		t.Fatal("no point recorded any stall cycles under finite bandwidth")
	}
	if out := RenderFabric(points); !strings.Contains(out, "torus") {
		t.Fatalf("render missing topology column:\n%s", out)
	}
}

func TestFabricTreeCongestsHarderThanMesh(t *testing.T) {
	// The headline architecture result: pushing all traffic through the
	// router tree (no mesh) must congest at least as much as the hybrid
	// topology at equal bandwidth, for every workload.
	points, err := FabricSweep(FabricOptions{
		Qubits:         12,
		Seed:           3,
		Serializations: []sim.Time{0, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	stall := map[[2]string]int64{}
	for _, p := range points {
		if p.LinkSerialization == 4 {
			stall[[2]string{p.Workload, p.Topology}] = p.TotalStall
		}
	}
	for _, w := range FabricSweepWorkloads() {
		if stall[[2]string{w, "tree"}] < stall[[2]string{w, "mesh"}] {
			t.Fatalf("%s: tree stalls (%d) below mesh stalls (%d)",
				w, stall[[2]string{w, "tree"}], stall[[2]string{w, "mesh"}])
		}
	}
}
