package exp

import (
	"fmt"

	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/placement"
	"dhisq/internal/sim"
)

// The feedback experiment measures what closing the compile↔fabric loop
// buys: the same workloads first compiled cold (interaction placement —
// the best static policy, chosen blind to runtime contention), then
// re-placed from the congestion feedback that cold run measured
// (machine.RePlace: stall-weighted candidates plus measured swap descent).
// Static cost models cannot see temporal contention — two edges of equal
// weight can load one link in bursts or spread evenly — so the measured
// loop is expected to shave stall cycles the interaction placer leaves on
// the table, most visibly on the adversarial hotspot workload.

// FeedbackPoint is one (workload, phase) cell: phase "cold" is the static
// interaction placement, phase "replaced" the feedback-re-placed mapping
// of the same circuit on the same fabric.
type FeedbackPoint struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	// Phase is "cold" or "replaced".
	Phase             string  `json:"phase"`
	LinkSerialization int64   `json:"link_serialization_cycles"`
	Mapping           []int   `json:"mapping"`
	Makespan          int64   `json:"makespan_cycles"`
	TotalStall        int64   `json:"total_stall_cycles"`
	SyncStall         int64   `json:"sync_stall_cycles"`
	MaxQueue          int     `json:"max_queue_depth"`
	RouterUtilization float64 `json:"router_utilization"`
	// FeedbackLinks is the number of distinct congested links the cold
	// run attributed stall to (0 on replaced rows).
	FeedbackLinks int `json:"feedback_links,omitempty"`
}

// FeedbackOptions parameterizes the experiment. Zero values pick the
// defaults used by dhisq-bench -exp feedback (the same fabric as the
// placement sweep, so the two BENCH files are directly comparable).
type FeedbackOptions struct {
	Qubits int      // workload size (default 16)
	Seed   int64    // backend seed (default 1)
	LinkBW sim.Time // link serialization in cycles (default 4)
}

// FeedbackWorkloads names the circuits the experiment runs: the hotspot
// star (the CI-gated workload) plus qft and bv as must-not-regress
// companions.
func FeedbackWorkloads() []string { return []string{"hotspot", "qft", "bv"} }

// FeedbackSweep runs each workload twice — cold under interaction
// placement, then re-placed from that run's measured congestion — and
// returns the paired points in deterministic order (cold before replaced,
// workloads in FeedbackWorkloads order).
func FeedbackSweep(opt FeedbackOptions) ([]FeedbackPoint, error) {
	if opt.Qubits <= 0 {
		opt.Qubits = 16
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.LinkBW <= 0 {
		opt.LinkBW = 4
	}
	var out []FeedbackPoint
	for _, name := range FeedbackWorkloads() {
		c, err := placementCircuit(name, opt.Qubits)
		if err != nil {
			return nil, err
		}
		cfg := machine.DefaultConfig(c.NumQubits)
		cfg.Backend = machine.BackendSeeded
		cfg.Seed = opt.Seed
		cfg.Net.LinkSerialization = opt.LinkBW

		topo, err := network.NewTopology(cfg.Net)
		if err != nil {
			return nil, err
		}
		pol, err := placement.Get("interaction")
		if err != nil {
			return nil, err
		}
		cold, err := pol.Place(c, topo)
		if err != nil {
			return nil, err
		}

		run := func(mapping []int) (machine.Result, error) {
			m, err := machine.NewForCircuit(c, cfg.Net.MeshW, cfg.Net.MeshH, cfg)
			if err != nil {
				return machine.Result{}, err
			}
			cp, err := m.CompileFresh(c, mapping, m.CompileOptions())
			if err != nil {
				return machine.Result{}, err
			}
			if err := m.Load(cp); err != nil {
				return machine.Result{}, err
			}
			rs, err := m.RunShots(1)
			if err != nil {
				return machine.Result{}, err
			}
			return rs[0], nil
		}

		coldRes, err := run(cold)
		if err != nil {
			return nil, fmt.Errorf("exp: feedback %s cold: %w", name, err)
		}
		fb := machine.HarvestFeedback([]machine.Result{coldRes})
		out = append(out, feedbackPoint(name, "cold", opt, cold, coldRes, len(fb.Links)))

		replaced, _, err := machine.RePlace(c, cfg, cold, fb)
		if err != nil {
			return nil, fmt.Errorf("exp: feedback %s re-place: %w", name, err)
		}
		repRes, err := run(replaced)
		if err != nil {
			return nil, fmt.Errorf("exp: feedback %s replaced: %w", name, err)
		}
		out = append(out, feedbackPoint(name, "replaced", opt, replaced, repRes, 0))
	}
	return out, nil
}

func feedbackPoint(name, phase string, opt FeedbackOptions, mapping []int, res machine.Result, links int) FeedbackPoint {
	return FeedbackPoint{
		Workload:          name,
		Qubits:            opt.Qubits,
		Phase:             phase,
		LinkSerialization: int64(opt.LinkBW),
		Mapping:           append([]int(nil), mapping...),
		Makespan:          int64(res.Makespan),
		TotalStall:        int64(res.Net.TotalStall()),
		SyncStall:         int64(res.SyncStall),
		MaxQueue:          res.Net.MaxQueue(),
		RouterUtilization: res.RouterUtilization,
		FeedbackLinks:     links,
	}
}

// CheckFeedbackImproves verifies the experiment's headline claims: on the
// hotspot workload the re-placed mapping must strictly reduce total stall
// cycles below the cold interaction run, and no workload may regress
// (RePlace's probe selection keeps the incumbent unless a candidate
// measures strictly better, so a regression means the loop is broken).
func CheckFeedbackImproves(points []FeedbackPoint) error {
	rows := map[string]map[string]FeedbackPoint{}
	for _, p := range points {
		if rows[p.Workload] == nil {
			rows[p.Workload] = map[string]FeedbackPoint{}
		}
		rows[p.Workload][p.Phase] = p
	}
	for _, w := range FeedbackWorkloads() {
		cold, okC := rows[w]["cold"]
		rep, okR := rows[w]["replaced"]
		if !okC || !okR {
			return fmt.Errorf("exp: feedback: workload %q missing a phase", w)
		}
		if rep.TotalStall > cold.TotalStall {
			return fmt.Errorf("exp: feedback: %s re-place regressed stalls %d -> %d", w, cold.TotalStall, rep.TotalStall)
		}
		if w == "hotspot" && rep.TotalStall >= cold.TotalStall {
			return fmt.Errorf("exp: feedback: hotspot re-place did not strictly improve (stalls %d -> %d)", cold.TotalStall, rep.TotalStall)
		}
	}
	return nil
}

// RenderFeedback formats the paired sweep as a text table.
func RenderFeedback(points []FeedbackPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload,
			p.Phase,
			fmt.Sprint(p.TotalStall),
			fmt.Sprint(p.Makespan),
			fmt.Sprint(p.SyncStall),
			fmt.Sprint(p.MaxQueue),
			fmt.Sprint(p.FeedbackLinks),
		})
	}
	return Table([]string{"workload", "phase", "stall(cy)", "makespan(cy)", "sync(cy)", "maxq", "fb links"}, rows)
}
