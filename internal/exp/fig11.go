package exp

import (
	"fmt"
	"math"

	"dhisq/internal/core"
	"dhisq/internal/fit"
	"dhisq/internal/isa"
	"dhisq/internal/physics"
	"dhisq/internal/sim"
)

// The Figure 11 calibration experiments run a real HISQ core against the
// pulse-level device model: the host builds waveform tables and HISQ
// programs (cw triggers + waits, exactly the Fig. 10 flow), the controller
// commits codewords at TCU-precise times, and the device produces IQ samples
// and discriminated bits. That one unmodified core drives both AWG-style
// and readout-style actions is the §6.1 adaptability demonstration.

// calRig is a single-board rig: engine + controller + device.
type calRig struct {
	eng  *sim.Engine
	ctrl *core.Controller
	dev  *physics.Device
}

func newCalRig(seed int64) *calRig {
	eng := sim.NewEngine()
	qb := physics.NewQubit(seed)
	dev := physics.NewDevice(qb, 80)
	ctrl := core.NewController(eng, core.Config{ID: 0, Ports: 28, QueueDepth: 1024}, nil, dev, nil)
	dev.SetDelivery(func(node, ch int, val uint32, at sim.Time) {
		t := at
		if now := eng.Now(); t < now {
			t = now
		}
		eng.At(t, sim.PriDeliver, func() { ctrl.PushResult(ch, val, at) })
	})
	return &calRig{eng: eng, ctrl: ctrl, dev: dev}
}

// run assembles and executes a program to completion.
func (r *calRig) run(src string) error {
	r.ctrl.Load(isa.MustAssemble(src))
	return r.exec()
}

// runShots assembles src once and executes it `shots` times, resetting the
// engine and controller between repetitions — the calibration-rig instance
// of the compile-once/reset-per-shot pattern (see internal/runner for the
// machine-level subsystem). Device state deliberately survives the resets:
// the waveform table is part of the compiled artifact, the qubit RNG keeps
// advancing so shots stay statistically independent, and the IQ/bit
// accumulators are the sweep's measurement record. Every shot body begins
// with an active reset pulse, which re-anchors the qubit's Bloch vector and
// decay clock, so rewinding the engine clock does not perturb the physics.
func (r *calRig) runShots(src string, shots int) error {
	r.ctrl.Load(isa.MustAssemble(src))
	for s := 0; s < shots; s++ {
		r.eng.Reset()
		r.ctrl.Reset()
		if err := r.exec(); err != nil {
			return fmt.Errorf("shot %d: %w", s, err)
		}
	}
	return nil
}

// exec drives the loaded program to completion.
func (r *calRig) exec() error {
	r.ctrl.Start()
	r.eng.RunUntil(r.eng.Now() + 500_000_000)
	if err := r.ctrl.Err(); err != nil {
		return err
	}
	if !r.ctrl.Halted() {
		return fmt.Errorf("fig11: controller wedged (%v)", r.ctrl.Blocked())
	}
	return nil
}

const (
	drivePulseCy   = 5  // 20 ns pulses
	readoutPulseCy = 75 // 300 ns readout window
)

// Fig11CircleResult is the Fig. 11(a) phase-sweep experiment.
type Fig11CircleResult struct {
	Points  []physics.IQPoint
	Circle  fit.Circle
	RMSE    float64 // deviation from the ideal circle (interference signature)
	MaxDist float64
}

// Fig11DrawCircle emits readout pulses with linearly increasing phase and
// fits the IQ response: a circle with a small interference-driven deviation.
func Fig11DrawCircle(points int, seed int64) (Fig11CircleResult, error) {
	if points <= 0 {
		points = 64
	}
	rig := newCalRig(seed)
	src := ""
	for k := 0; k < points; k++ {
		phase := 2 * math.Pi * float64(k) / float64(points)
		cw := rig.dev.AddPulse(physics.Pulse{Kind: physics.PulseReadout, Phase: phase, Dur: readoutPulseCy})
		src += fmt.Sprintf("cw.i.i 2,%d\nwaiti %d\n", cw, readoutPulseCy+5)
	}
	src += "halt\n"
	if err := rig.run(src); err != nil {
		return Fig11CircleResult{}, err
	}
	xs := make([]float64, len(rig.dev.IQ))
	ys := make([]float64, len(rig.dev.IQ))
	for i, p := range rig.dev.IQ {
		xs[i], ys[i] = p.I, p.Q
	}
	c, err := fit.FitCircle(xs, ys)
	if err != nil {
		return Fig11CircleResult{}, err
	}
	res := Fig11CircleResult{Points: rig.dev.IQ, Circle: c, RMSE: c.RMSE(xs, ys)}
	for i := range xs {
		d := math.Hypot(xs[i]-c.X0, ys[i]-c.Y0)
		if d > res.MaxDist {
			res.MaxDist = d
		}
	}
	return res, nil
}

// sweepP1 runs, for every sweep value, `shots` repetitions of
// [reset][prep...][readout] and returns the measured P1 per value. The
// per-shot program body is produced by body(cw builder helpers). Each sweep
// value's shot program is assembled once and re-run under the reset path,
// instead of unrolling points x shots bodies into one giant binary.
func sweepP1(rig *calRig, values []float64, shots int, body func(v float64) string) ([]float64, error) {
	resetCW := rig.dev.AddPulse(physics.Pulse{Kind: physics.PulseReset})
	readCW := rig.dev.AddPulse(physics.Pulse{Kind: physics.PulseReadout, Dur: readoutPulseCy})
	for _, v := range values {
		src := fmt.Sprintf("cw.i.i 1,%d\nwaiti 2\n", resetCW)
		src += body(v)
		src += fmt.Sprintf("cw.i.i 2,%d\nwaiti %d\nhalt\n", readCW, readoutPulseCy+10)
		if err := rig.runShots(src, shots); err != nil {
			return nil, err
		}
	}
	if want := len(values) * shots; len(rig.dev.Bits) != want {
		return nil, fmt.Errorf("fig11: %d outcomes, want %d", len(rig.dev.Bits), want)
	}
	p1 := make([]float64, len(values))
	for i := range values {
		ones := 0
		for s := 0; s < shots; s++ {
			ones += rig.dev.Bits[i*shots+s]
		}
		p1[i] = float64(ones) / float64(shots)
	}
	return p1, nil
}

// Fig11SpectroscopyResult is the Fig. 11(b) frequency sweep.
type Fig11SpectroscopyResult struct {
	FreqGHz []float64
	P1      []float64
	Fit     fit.Lorentzian
	TrueF0  float64
}

// Fig11Spectroscopy sweeps the drive frequency and fits the resonance.
func Fig11Spectroscopy(points, shots int, seed int64) (Fig11SpectroscopyResult, error) {
	if points <= 0 {
		points = 41
	}
	if shots <= 0 {
		shots = 60
	}
	rig := newCalRig(seed)
	freqs := make([]float64, points)
	for i := range freqs {
		freqs[i] = 4.52 + 0.2*float64(i)/float64(points-1) // 4.52..4.72 GHz
	}
	p1, err := sweepP1(rig, freqs, shots, func(f float64) string {
		cw := rig.dev.AddPulse(physics.Pulse{
			Kind: physics.PulseDrive, Freq: f, Rabi: 0.025, Dur: drivePulseCy,
		})
		return fmt.Sprintf("cw.i.i 0,%d\nwaiti %d\n", cw, drivePulseCy+2)
	})
	if err != nil {
		return Fig11SpectroscopyResult{}, err
	}
	lor, err := fit.FitLorentzian(freqs, p1)
	if err != nil {
		return Fig11SpectroscopyResult{}, err
	}
	return Fig11SpectroscopyResult{FreqGHz: freqs, P1: p1, Fit: lor, TrueF0: rig.dev.Qubit.FreqGHz}, nil
}

// Fig11RabiResult is the Fig. 11(c) amplitude sweep.
type Fig11RabiResult struct {
	Amp    []float64
	P1     []float64
	Fit    fit.Rabi
	PiAmp  float64
	TruePi float64
}

// Fig11Rabi sweeps the drive amplitude at the qubit frequency and fits the
// oscillation, yielding the pi-pulse amplitude for a high-fidelity X gate.
func Fig11Rabi(points, shots int, seed int64) (Fig11RabiResult, error) {
	if points <= 0 {
		points = 33
	}
	if shots <= 0 {
		shots = 60
	}
	rig := newCalRig(seed)
	f0 := rig.dev.Qubit.FreqGHz
	amps := make([]float64, points)
	for i := range amps {
		amps[i] = 0.12 * float64(i) / float64(points-1) // Rabi rate, GHz
	}
	p1, err := sweepP1(rig, amps, shots, func(a float64) string {
		cw := rig.dev.AddPulse(physics.Pulse{
			Kind: physics.PulseDrive, Freq: f0, Rabi: a, Dur: drivePulseCy,
		})
		return fmt.Sprintf("cw.i.i 0,%d\nwaiti %d\n", cw, drivePulseCy+2)
	})
	if err != nil {
		return Fig11RabiResult{}, err
	}
	rfit, err := fit.FitRabi(amps, p1)
	if err != nil {
		return Fig11RabiResult{}, err
	}
	// Pi rotation: 2*pi*rabi * t_ns = pi -> rabi = 1/(2 t_ns).
	truePi := 1 / (2 * float64(sim.Nanoseconds(drivePulseCy)))
	return Fig11RabiResult{Amp: amps, P1: p1, Fit: rfit, PiAmp: rfit.PiAmplitude(), TruePi: truePi}, nil
}

// Fig11T1Result is the Fig. 11(d) relaxation measurement.
type Fig11T1Result struct {
	DelayUs  []float64
	P1       []float64
	Fit      fit.Exponential
	T1Us     float64
	TrueT1Us float64
}

// Fig11T1 prepares |1> with a pi pulse, waits a register-programmed delay
// (waitr — the long waits exercise the li expansion), and measures the decay.
func Fig11T1(points, shots int, seed int64) (Fig11T1Result, error) {
	if points <= 0 {
		points = 21
	}
	if shots <= 0 {
		shots = 80
	}
	rig := newCalRig(seed)
	f0 := rig.dev.Qubit.FreqGHz
	truePi := 1 / (2 * float64(sim.Nanoseconds(drivePulseCy)))
	piCW := rig.dev.AddPulse(physics.Pulse{
		Kind: physics.PulseDrive, Freq: f0, Rabi: truePi, Dur: drivePulseCy,
	})
	delays := make([]float64, points)
	for i := range delays {
		delays[i] = 30_000 * float64(i) / float64(points-1) // ns, up to 30 us
	}
	p1, err := sweepP1(rig, delays, shots, func(d float64) string {
		cy := sim.Cycles(int64(d))
		return fmt.Sprintf("cw.i.i 0,%d\nwaiti %d\nli $3,%d\nwaitr $3\n", piCW, drivePulseCy, cy)
	})
	if err != nil {
		return Fig11T1Result{}, err
	}
	us := make([]float64, len(delays))
	for i, d := range delays {
		us[i] = d / 1000
	}
	efit, err := fit.FitExponential(us, p1)
	if err != nil {
		return Fig11T1Result{}, err
	}
	return Fig11T1Result{
		DelayUs: us, P1: p1, Fit: efit,
		T1Us: efit.Tau, TrueT1Us: rig.dev.Qubit.T1ns / 1000,
	}, nil
}
