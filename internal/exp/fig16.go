package exp

import (
	"fmt"

	"dhisq/internal/baseline"
	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/fidelity"
	"dhisq/internal/machine"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
)

// Fig16Point is one T1 setting of Figure 16.
type Fig16Point struct {
	T1us          float64
	BISPInfid     float64
	LockstepInfid float64
	Ratio         float64 // lockstep / BISP infidelity (paper: ~5x)
}

// Fig16Result is the sweep plus the underlying makespans.
type Fig16Result struct {
	BISPMakespan     sim.Time
	LockstepMakespan sim.Time
	Qubits           int
	Points           []Fig16Point
}

// Fig16Fidelity reproduces Figure 16: the long-range CNOT circuit of
// Fig. 14 executed under BISP and lock-step, with infidelity from the
// coherence model swept over T1 = 30..300 µs. BISP's win comes from
// concurrent feedback: the ancilla measurement results of simultaneous
// long-range CNOTs flow point-to-point in parallel, while the shared-flow
// baseline serializes every result through the central controller.
// Infidelity is accounted over the protocol's data qubits (the ancillas are
// measured out and reset), keeping the sweep in the paper's 1e-3..1e-2 band.
func Fig16Fidelity(distance, repetitions int, t1us []float64, seed int64) (Fig16Result, error) {
	if distance < 2 {
		distance = 10
	}
	if repetitions < 1 {
		repetitions = 2
	}
	if len(t1us) == 0 {
		for t := 30.0; t <= 300; t += 30 {
			t1us = append(t1us, t)
		}
	}
	// Independent simultaneous long-range CNOT lanes (Fig. 14 plus the
	// simultaneous-feedback opportunity of §2.1.2), repeated. The lock-step
	// baseline must serialize every lane's ancilla results through its
	// central controller; BISP runs them concurrently.
	const lanes = 4
	logical := circuit.New(lanes * distance)
	for rep := 0; rep < repetitions; rep++ {
		for k := 0; k < lanes; k++ {
			logical.H(k * distance)
		}
		for k := 0; k < lanes; k++ {
			logical.CNOT(k*distance, (k+1)*distance-1)
		}
	}
	for k := 0; k < lanes; k++ {
		logical.MeasureInto((k+1)*distance-1, k)
	}
	phys, err := circuit.DualRailEmbedding{}.Embed(logical)
	if err != nil {
		return Fig16Result{}, err
	}

	cfg := machine.DefaultConfig(phys.NumQubits)
	cfg.Backend = machine.BackendSeeded
	cfg.Seed = seed
	w := (phys.NumQubits + 1) / 2
	// Shot 0 through the runner runs with the base seed, keeping the
	// lock-step replay below on identical branches.
	set, err := runner.Run(runner.Spec{Circuit: phys, MeshW: w, MeshH: 2, Cfg: cfg}, 1, 1)
	if err != nil {
		return Fig16Result{}, err
	}
	res := set.Shots[0].Result
	bres, err := baseline.Run(phys, baseline.DefaultConfig(chip.NewSeeded(seed)))
	if err != nil {
		return Fig16Result{}, err
	}

	// Infidelity is quoted per data qubit (the figure's y-axis normalization;
	// ancillas are measured out and reset, and per-qubit exposure keeps the
	// sweep in the paper's 1e-3..1e-2 decade).
	dataQubits := 1
	out := Fig16Result{
		BISPMakespan:     res.Makespan,
		LockstepMakespan: bres.Makespan,
		Qubits:           phys.NumQubits,
	}
	for _, t1 := range t1us {
		c := fidelity.Microseconds(t1)
		bi := fidelity.ProgramInfidelity(res.Makespan, dataQubits, c)
		li := fidelity.ProgramInfidelity(bres.Makespan, dataQubits, c)
		out.Points = append(out.Points, Fig16Point{
			T1us:          t1,
			BISPInfid:     bi,
			LockstepInfid: li,
			Ratio:         fidelity.ReductionRatio(bi, li),
		})
	}
	return out, nil
}

// Render formats the sweep.
func (r Fig16Result) Render() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.T1us),
			fmt.Sprintf("%.3e", p.BISPInfid),
			fmt.Sprintf("%.3e", p.LockstepInfid),
			fmt.Sprintf("%.2f", p.Ratio),
		})
	}
	head := fmt.Sprintf("makespans: bisp=%d cy, lockstep=%d cy, %d qubits\n",
		r.BISPMakespan, r.LockstepMakespan, r.Qubits)
	return head + Table([]string{"T1(us)", "bisp infid", "lockstep infid", "reduction"}, rows)
}
