// Package exp implements the paper's evaluation: one runner per table and
// figure (see DESIGN.md §4 for the index). Each runner returns structured
// results that the tests assert on, the root benchmarks time, and the
// dhisq-bench command prints.
package exp

import (
	"fmt"
	"strings"
)

// Table renders rows of labeled values as a fixed-width text table.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
