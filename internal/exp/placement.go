package exp

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/placement"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// The placement experiment measures what the compilation pipeline's Place
// pass buys under finite link bandwidth: the same workloads compiled with
// the row-major baseline versus the interaction-aware partitioner, on the
// same contended fabric. Better placement shortens calibrated sync windows
// and keeps feed-forward traffic local, which shows up as lower makespan
// and fewer queueing stall cycles.

// PlacementPoint is one (workload, policy) cell of the sweep.
type PlacementPoint struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	Policy   string `json:"policy"`
	// LinkSerialization is the cycles one message occupies a link or
	// router port — finite bandwidth is the regime placement matters in.
	LinkSerialization int64 `json:"link_serialization_cycles"`
	// MappingCost is the placer's objective: total interaction weight ×
	// mesh distance of the mapping the artifact compiled with.
	MappingCost       int64   `json:"mapping_cost"`
	Makespan          int64   `json:"makespan_cycles"`
	NetStall          int64   `json:"net_stall_cycles"`   // charged to controller traffic
	TotalStall        int64   `json:"total_stall_cycles"` // links + router ports, all traffic
	SyncStall         int64   `json:"sync_stall_cycles"`
	MaxQueue          int     `json:"max_queue_depth"`
	RouterUtilization float64 `json:"router_utilization"`
	Misalignments     int     `json:"misalignments"`
}

// PlacementOptions parameterizes the sweep. Zero values pick the defaults
// used by dhisq-bench -exp placement.
type PlacementOptions struct {
	Qubits   int      // workload size (default 16)
	Seed     int64    // backend seed (default 1)
	LinkBW   sim.Time // link serialization in cycles (default 4)
	Policies []string // placement policies (default rowmajor, interaction)
}

// PlacementSweepWorkloads names the circuits the sweep runs. hotspot is
// the adversarial star circuit — every data qubit talks to a hub that
// row-major order parks in the mesh corner — the workload the CI smoke
// holds the interaction placer to.
func PlacementSweepWorkloads() []string { return []string{"ghz", "qft", "bv", "hotspot"} }

// hotspotCircuit builds the star workload: three rounds of CNOTs from
// every data qubit into the last qubit, then full measurement.
func hotspotCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	hub := n - 1
	for round := 0; round < 3; round++ {
		for q := 0; q < n-1; q++ {
			c.CNOT(q, hub)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	return c
}

func placementCircuit(name string, n int) (*circuit.Circuit, error) {
	switch name {
	case "ghz":
		return workloads.GHZ(n), nil
	case "qft":
		return workloads.QFT(n), nil
	case "bv":
		return workloads.BV(n, workloads.AlternatingSecret), nil
	case "hotspot":
		return hotspotCircuit(n), nil
	}
	return nil, fmt.Errorf("exp: unknown placement workload %q", name)
}

// PlacementSweep runs every (workload, policy) cell on the contended mesh
// fabric and returns the points in deterministic order.
func PlacementSweep(opt PlacementOptions) ([]PlacementPoint, error) {
	if opt.Qubits <= 0 {
		opt.Qubits = 16
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.LinkBW <= 0 {
		opt.LinkBW = 4
	}
	if opt.Policies == nil {
		opt.Policies = []string{"rowmajor", "interaction"}
	}
	var out []PlacementPoint
	for _, name := range PlacementSweepWorkloads() {
		for _, policy := range opt.Policies {
			if err := placement.Valid(policy); err != nil {
				return nil, err
			}
			c, err := placementCircuit(name, opt.Qubits)
			if err != nil {
				return nil, err
			}
			cfg := machine.DefaultConfig(c.NumQubits)
			cfg.Backend = machine.BackendSeeded
			cfg.Seed = opt.Seed
			cfg.Net.LinkSerialization = opt.LinkBW
			cfg.Placement = policy
			set, err := runner.Run(runner.Spec{
				Circuit: c, MeshW: cfg.Net.MeshW, MeshH: cfg.Net.MeshH, Cfg: cfg,
			}, 1, 1)
			if err != nil {
				return nil, fmt.Errorf("exp: placement %s/%s: %w", name, policy, err)
			}
			res := set.Shots[0].Result
			cost, err := mappingCost(c, policy, cfg.Net)
			if err != nil {
				return nil, err
			}
			out = append(out, PlacementPoint{
				Workload:          name,
				Qubits:            c.NumQubits,
				Policy:            policy,
				LinkSerialization: int64(opt.LinkBW),
				MappingCost:       cost,
				Makespan:          int64(res.Makespan),
				NetStall:          int64(res.NetStall),
				TotalStall:        int64(res.Net.TotalStall()),
				SyncStall:         int64(res.SyncStall),
				MaxQueue:          res.Net.MaxQueue(),
				RouterUtilization: res.RouterUtilization,
				Misalignments:     res.Misalignments,
			})
		}
	}
	return out, nil
}

// mappingCost recomputes the weighted-distance objective of the policy's
// mapping for the report (the compiled artifact records the mapping, but
// recomputing from the policy keeps this a pure function of the inputs).
func mappingCost(c *circuit.Circuit, policy string, net network.Config) (int64, error) {
	topo, err := network.NewTopology(net)
	if err != nil {
		return 0, err
	}
	pol, err := placement.Get(policy)
	if err != nil {
		return 0, err
	}
	m, err := pol.Place(c, topo)
	if err != nil {
		return 0, err
	}
	return placement.CircuitCost(c, m, topo), nil
}

// CheckPlacementImproves verifies the sweep's headline claims: on the
// hotspot workload the interaction placer must not exceed row-major in
// either total stall cycles or makespan, and across the sweep at least
// one workload must show a strict improvement in one of the two. Points
// must contain both policies for each workload (PlacementSweep order).
func CheckPlacementImproves(points []PlacementPoint) error {
	rows := map[string]map[string]PlacementPoint{}
	for _, p := range points {
		if rows[p.Workload] == nil {
			rows[p.Workload] = map[string]PlacementPoint{}
		}
		rows[p.Workload][p.Policy] = p
	}
	strict := false
	for _, w := range PlacementSweepWorkloads() {
		rm, okR := rows[w]["rowmajor"]
		in, okI := rows[w]["interaction"]
		if !okR || !okI {
			continue
		}
		if w == "hotspot" {
			if in.TotalStall > rm.TotalStall {
				return fmt.Errorf("exp: hotspot: interaction stalls %d exceed rowmajor %d", in.TotalStall, rm.TotalStall)
			}
			if in.Makespan > rm.Makespan {
				return fmt.Errorf("exp: hotspot: interaction makespan %d exceeds rowmajor %d", in.Makespan, rm.Makespan)
			}
		}
		if in.TotalStall < rm.TotalStall || in.Makespan < rm.Makespan {
			strict = true
		}
	}
	if !strict {
		return fmt.Errorf("exp: interaction placer improved no workload over rowmajor")
	}
	return nil
}

// RenderPlacement formats the sweep as a text table.
func RenderPlacement(points []PlacementPoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload,
			p.Policy,
			fmt.Sprint(p.MappingCost),
			fmt.Sprint(p.Makespan),
			fmt.Sprint(p.TotalStall),
			fmt.Sprint(p.SyncStall),
			fmt.Sprint(p.MaxQueue),
			fmt.Sprint(p.Misalignments),
		})
	}
	return Table([]string{"workload", "policy", "map cost", "makespan(cy)", "stall(cy)", "sync(cy)", "maxq", "misalign"}, rows)
}
