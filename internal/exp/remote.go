package exp

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/placement"
	"dhisq/internal/runner"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// The remote experiment measures the cost surface of multi-chip execution:
// every cross-chip two-qubit gate compiles into an EPR-mediated teleported
// gate — pair generation, herald traffic over the contended fabric, and
// feed-forward corrections — so the chip partition decides how much of the
// circuit turns into inter-chip protocol. The sweep runs workload × chip
// count × EPR latency × partition policy and reports the cut size, the EPR
// pairs actually generated, and where the time went. The gate holds the
// interaction partitioner to the contract its never-worse fallback
// promises: cut size at most the contiguous row-major split everywhere,
// strictly below it somewhere.

// RemotePoint is one (workload, chips, EPR latency, policy) cell.
type RemotePoint struct {
	Workload string `json:"workload"`
	Qubits   int    `json:"qubits"`
	// Chips is the partition size (1 = the single-chip baseline; its
	// cells pin the degenerate contract: zero cut, zero EPR pairs).
	Chips int `json:"chips"`
	// EPRLatency is the pair-generation latency in cycles.
	EPRLatency int64  `json:"epr_latency_cycles"`
	Policy     string `json:"policy"`
	// CutGates counts the original circuit's two-qubit gates that cross
	// the policy's chip partition — each becomes one teleported gate.
	CutGates int `json:"cut_gates"`
	// EPRPairs counts the pairs the chip actually generated during the
	// shot (teleported SWAPs expand to three pairs, so this can exceed
	// CutGates).
	EPRPairs  uint64 `json:"epr_pairs"`
	Makespan  int64  `json:"makespan_cycles"`
	NetStall  int64  `json:"net_stall_cycles"`
	SyncStall int64  `json:"sync_stall_cycles"`
}

// RemoteOptions parameterizes the sweep. Zero values pick the defaults
// used by dhisq-bench -exp remote.
type RemoteOptions struct {
	Qubits    int      // workload size (default 16)
	Seed      int64    // backend seed (default 1)
	LinkBW    sim.Time // link serialization in cycles (default 4)
	Chips     []int    // partition sizes (default 1, 2, 4)
	Latencies []int64  // EPR latencies in cycles (default 40, 200)
	Policies  []string // partition policies (default rowmajor, interaction)
}

// RemoteSweepWorkloads names the circuits the sweep runs: the GHZ chain
// (nearest-neighbor structure contiguous splits handle well), the QFT
// (all-to-all controlled phases — no partition is clean), and the
// distributed VQE ansatz (cross-half entangler rungs built to reward an
// interaction-aware partition).
func RemoteSweepWorkloads() []string { return []string{"ghz", "qft", "dvqe"} }

func remoteCircuit(name string, n int) (*circuit.Circuit, error) {
	switch name {
	case "ghz":
		return workloads.GHZ(n), nil
	case "qft":
		return workloads.QFT(n), nil
	case "dvqe":
		// The sweep measures compiled structure, not angles; bind the
		// ansatz at sweep point 0 (remote-gate angle sweeps go through
		// the service's params path instead).
		return workloads.DistributedVQE(n, 2).Bind(workloads.DistributedVQEPoint(n, 2, 0))
	}
	return nil, fmt.Errorf("exp: unknown remote workload %q", name)
}

// RemoteSweep runs every cell on the contended mesh fabric and returns
// the points in deterministic (workload, chips, latency, policy) order.
func RemoteSweep(opt RemoteOptions) ([]RemotePoint, error) {
	if opt.Qubits <= 0 {
		opt.Qubits = 16
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.LinkBW <= 0 {
		opt.LinkBW = 4
	}
	if opt.Chips == nil {
		opt.Chips = []int{1, 2, 4}
	}
	if opt.Latencies == nil {
		opt.Latencies = []int64{40, 200}
	}
	if opt.Policies == nil {
		opt.Policies = []string{"rowmajor", "interaction"}
	}
	var out []RemotePoint
	for _, name := range RemoteSweepWorkloads() {
		c, err := remoteCircuit(name, opt.Qubits)
		if err != nil {
			return nil, err
		}
		for _, chips := range opt.Chips {
			for _, lat := range opt.Latencies {
				for _, policy := range opt.Policies {
					if err := placement.Valid(policy); err != nil {
						return nil, err
					}
					// The cut is a pure function of circuit, chip count
					// and policy — recomputed here so the report never
					// depends on compiler internals.
					chipOf, err := placement.PartitionChips(c, chips, policy)
					if err != nil {
						return nil, err
					}
					cut := placement.ChipCut(c, chipOf)

					cfg := machine.DefaultConfig(c.NumQubits)
					cfg.Backend = machine.BackendSeeded
					cfg.Seed = opt.Seed
					cfg.Net.LinkSerialization = opt.LinkBW
					cfg.Placement = policy
					if chips > 1 {
						cfg.Chips = chips
						cfg.EPRLatency = sim.Time(lat)
					}
					w, h := network.NearSquareMesh(cfg.TotalQubits(c.NumQubits))
					cfg.Net.MeshW, cfg.Net.MeshH = w, h
					set, err := runner.Run(runner.Spec{
						Circuit: c, MeshW: w, MeshH: h, Cfg: cfg,
					}, 1, 1)
					if err != nil {
						return nil, fmt.Errorf("exp: remote %s chips=%d lat=%d %s: %w", name, chips, lat, policy, err)
					}
					res := set.Shots[0].Result
					out = append(out, RemotePoint{
						Workload:   name,
						Qubits:     c.NumQubits,
						Chips:      chips,
						EPRLatency: lat,
						Policy:     policy,
						CutGates:   cut,
						EPRPairs:   res.EPRPairs,
						Makespan:   int64(res.Makespan),
						NetStall:   int64(res.NetStall),
						SyncStall:  int64(res.SyncStall),
					})
				}
			}
		}
	}
	return out, nil
}

// CheckRemote enforces the sweep's CI gate:
//   - single-chip cells are exactly the legacy machine: zero cut gates,
//     zero EPR pairs;
//   - multi-chip cells generated at least one EPR pair per cut gate;
//   - the interaction partition never cuts more gates than row-major in
//     any cell, and cuts strictly fewer in at least one.
func CheckRemote(points []RemotePoint) error {
	if len(points) == 0 {
		return fmt.Errorf("exp: empty remote sweep")
	}
	type cell struct {
		workload string
		chips    int
		lat      int64
	}
	byPolicy := map[cell]map[string]RemotePoint{}
	strict := false
	for _, p := range points {
		if p.Chips <= 1 {
			if p.CutGates != 0 || p.EPRPairs != 0 {
				return fmt.Errorf("exp: remote %s/%s chips=%d: single-chip cell has %d cut gates, %d EPR pairs",
					p.Workload, p.Policy, p.Chips, p.CutGates, p.EPRPairs)
			}
			continue
		}
		if p.EPRPairs < uint64(p.CutGates) {
			return fmt.Errorf("exp: remote %s/%s chips=%d: %d EPR pairs for %d cut gates",
				p.Workload, p.Policy, p.Chips, p.EPRPairs, p.CutGates)
		}
		k := cell{p.Workload, p.Chips, p.EPRLatency}
		if byPolicy[k] == nil {
			byPolicy[k] = map[string]RemotePoint{}
		}
		byPolicy[k][p.Policy] = p
	}
	for k, pols := range byPolicy {
		rm, okR := pols["rowmajor"]
		in, okI := pols["interaction"]
		if !okR || !okI {
			continue
		}
		if in.CutGates > rm.CutGates {
			return fmt.Errorf("exp: remote %s chips=%d lat=%d: interaction cuts %d gates, rowmajor %d — never-worse contract broken",
				k.workload, k.chips, k.lat, in.CutGates, rm.CutGates)
		}
		if in.CutGates < rm.CutGates {
			strict = true
		}
	}
	if !strict {
		return fmt.Errorf("exp: interaction partition never cut strictly fewer gates than rowmajor")
	}
	return nil
}

// RenderRemote formats the sweep as a text table.
func RenderRemote(points []RemotePoint) string {
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			p.Workload,
			fmt.Sprint(p.Chips),
			fmt.Sprint(p.EPRLatency),
			p.Policy,
			fmt.Sprint(p.CutGates),
			fmt.Sprint(p.EPRPairs),
			fmt.Sprint(p.Makespan),
			fmt.Sprint(p.NetStall),
			fmt.Sprint(p.SyncStall),
		})
	}
	return Table([]string{"workload", "chips", "epr(cy)", "policy", "cut", "pairs", "makespan(cy)", "net stall(cy)", "sync(cy)"}, rows)
}
