package exp

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"dhisq/internal/artifact"
	"dhisq/internal/service"
	"dhisq/internal/store"
	"dhisq/internal/workloads"
)

// ServeLoadOptions configures the serve-load experiment: an open-loop
// load driver against one dhisq service plus a warm-vs-cold restart
// comparison through the persistent artifact store.
type ServeLoadOptions struct {
	Seed        int64
	Rates       []float64 // arrival rates in jobs/sec (nil = default sweep)
	JobsPerRate int       // arrivals per rate step (<1 = 40)
	Workers     int       // service job workers (<1 = 2)
	QueueDepth  int       // bounded queue depth (<1 = 16)
	Shots       int       // shots per job (<1 = 8)
	StoreDir    string    // artifact-store directory for the restart phase (required)
}

// ServeLoadPoint is one step of the arrival-rate sweep. Rate 0 is the
// unthrottled burst step: every job submitted back to back, which drives
// the bounded queue past capacity on any host and pins the saturation
// behavior (rejections, not collapse) even where the finite rates all
// fit.
type ServeLoadPoint struct {
	Rate      float64 `json:"rate_per_sec"` // 0 = unthrottled burst
	Jobs      int     `json:"jobs"`
	Completed int     `json:"completed"`
	Rejected  int     `json:"rejected"` // queue-full submissions
	P50Ms     float64 `json:"p50_ms"`   // submit→done latency percentiles
	P99Ms     float64 `json:"p99_ms"`
	Saturated bool    `json:"saturated"` // any rejection at this step
}

// ServeLoadRestart is the warm-vs-cold restart comparison: the same job
// set served by a fresh process three ways — truly cold (empty cache, no
// store), once to populate the store, and again after a simulated restart
// (new cache, same store directory). The restart-warm contract is
// WarmCompiles == 0 with byte-identical results.
type ServeLoadRestart struct {
	ColdCompiles uint64  `json:"cold_compiles"` // compiles with an empty store
	WarmCompiles uint64  `json:"warm_compiles"` // compiles after restart (must be 0)
	StoreHits    uint64  `json:"store_hits"`    // artifacts restored from disk
	ColdMs       float64 `json:"cold_ms"`       // wall time of the cold run
	WarmMs       float64 `json:"warm_ms"`       // wall time of the restarted run
	Identical    bool    `json:"histograms_identical"`
}

// ServeLoadResult is the BENCH_serve.json payload.
type ServeLoadResult struct {
	Points []ServeLoadPoint `json:"points"`
	// SaturationRate is the lowest finite arrival rate that rejected
	// work; 0 means only the burst step saturated (the service kept up
	// with every finite rate probed).
	SaturationRate float64          `json:"saturation_rate_per_sec"`
	Restart        ServeLoadRestart `json:"restart"`
}

// serveLoadFamilies is the job mix for the load sweep: three GHZ sizes,
// so the sweep exercises routing across distinct structural keys while
// every family stays cheap enough for high arrival rates.
func serveLoadFamilies(shots int, seed int64) []service.Request {
	reqs := make([]service.Request, 0, 3)
	for n := 3; n <= 5; n++ {
		reqs = append(reqs, service.Request{Circuit: workloads.GHZ(n), Shots: shots, Seed: seed})
	}
	return reqs
}

// ServeLoad runs the full experiment: the open-loop rate sweep, then the
// restart comparison over opt.StoreDir.
func ServeLoad(opt ServeLoadOptions) (*ServeLoadResult, error) {
	if opt.JobsPerRate < 1 {
		opt.JobsPerRate = 40
	}
	if opt.Workers < 1 {
		opt.Workers = 2
	}
	if opt.QueueDepth < 1 {
		opt.QueueDepth = 16
	}
	if opt.Shots < 1 {
		opt.Shots = 8
	}
	rates := opt.Rates
	if rates == nil {
		rates = []float64{50, 100, 200, 400}
	}
	if opt.StoreDir == "" {
		return nil, fmt.Errorf("serve-load needs a store directory for the restart phase")
	}

	res := &ServeLoadResult{}
	for _, rate := range append(append([]float64{}, rates...), 0) {
		pt, err := serveLoadStep(opt, rate)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
		if pt.Saturated && pt.Rate > 0 && res.SaturationRate == 0 {
			res.SaturationRate = pt.Rate
		}
	}

	restart, err := serveLoadRestart(opt)
	if err != nil {
		return nil, err
	}
	res.Restart = restart
	return res, nil
}

// serveLoadStep drives one arrival rate open-loop: submissions land on a
// fixed interval regardless of completions (rate 0 = back to back), each
// accepted job's submit→done latency is tracked by its own waiter, and
// queue-full rejections are counted rather than retried.
func serveLoadStep(opt ServeLoadOptions, rate float64) (ServeLoadPoint, error) {
	svc := service.New(service.Config{
		Workers: opt.Workers, QueueDepth: opt.QueueDepth,
		Artifacts: artifact.New(16),
	})
	defer svc.Close()
	families := serveLoadFamilies(opt.Shots, opt.Seed)

	// Pre-warm every family: the sweep measures serving latency, not
	// first-compile latency (the restart phase owns compile costs).
	for _, req := range families {
		id, err := svc.Submit(req)
		if err != nil {
			return ServeLoadPoint{}, err
		}
		if st, ok := svc.Wait(id); !ok || st.State != service.StateDone {
			return ServeLoadPoint{}, fmt.Errorf("prewarm job failed: %+v", st)
		}
	}

	pt := ServeLoadPoint{Rate: rate, Jobs: opt.JobsPerRate}
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	var mu sync.Mutex
	var latencies []time.Duration
	var waiters sync.WaitGroup
	next := time.Now()
	for i := 0; i < opt.JobsPerRate; i++ {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		start := time.Now()
		id, err := svc.Submit(families[i%len(families)])
		if err != nil {
			pt.Rejected++ // open loop: a full queue is data, not a retry
			continue
		}
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			if st, ok := svc.Wait(id); ok && st.State == service.StateDone {
				mu.Lock()
				latencies = append(latencies, time.Since(start))
				mu.Unlock()
			}
		}()
	}
	waiters.Wait()

	pt.Completed = len(latencies)
	pt.Saturated = pt.Rejected > 0
	if pt.Completed == 0 {
		return pt, fmt.Errorf("rate %.0f/s completed no jobs (%d rejected)", rate, pt.Rejected)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	pt.P50Ms, pt.P99Ms = pct(0.50), pct(0.99)
	return pt, nil
}

// restartJobs is the mixed-family job set for the restart comparison:
// plain GHZ, a scaled Fig. 15 benchmark, and a parameterized QFT binding
// — one artifact each of the three compile paths (plain, mapped
// benchmark, skeleton+bind).
func restartJobs(opt ServeLoadOptions) ([]service.Request, error) {
	bv, err := workloads.BuildScaled("bv_n400", 16)
	if err != nil {
		return nil, err
	}
	return []service.Request{
		{Circuit: workloads.GHZ(4), Shots: opt.Shots, Seed: opt.Seed},
		{Circuit: bv.Circuit, MeshW: bv.MeshW, MeshH: bv.MeshH,
			Mapping: bv.Mapping, Shots: opt.Shots, Seed: opt.Seed},
		{Circuit: workloads.QFTSweep(4), Shots: opt.Shots, Seed: opt.Seed,
			Params: workloads.QFTSweepPoint(4, 1)},
	}, nil
}

// serveLoadRestart measures the restart-warm contract. Three runs of the
// same jobs, each through a brand-new service and compile cache:
//
//	populate — empty store directory: every family compiles and spills.
//	warm     — new cache over the same directory (the restarted daemon):
//	           every artifact restores from disk, zero compiles.
//	cold     — no store at all (the pre-store baseline): every family
//	           compiles again.
//
// ColdCompiles/ColdMs report the cold baseline; WarmCompiles/WarmMs the
// restarted run. The gate — warm beats cold — is checked by
// CheckServeRestart, not here, so the bench can print the numbers first.
func serveLoadRestart(opt ServeLoadOptions) (ServeLoadRestart, error) {
	jobs, err := restartJobs(opt)
	if err != nil {
		return ServeLoadRestart{}, err
	}

	runAll := func(arts *artifact.Cache) ([]service.JobStatus, float64, error) {
		svc := service.New(service.Config{Workers: 1, QueueDepth: len(jobs) + 1, Artifacts: arts})
		defer svc.Close()
		out := make([]service.JobStatus, len(jobs))
		start := time.Now()
		for i, req := range jobs {
			id, err := svc.Submit(req)
			if err != nil {
				return nil, 0, err
			}
			st, ok := svc.Wait(id)
			if !ok || st.State != service.StateDone {
				return nil, 0, fmt.Errorf("restart job %d: %+v", i, st)
			}
			out[i] = st
		}
		return out, float64(time.Since(start)) / float64(time.Millisecond), nil
	}

	// Populate: compile everything into the store.
	st1, err := store.Open(opt.StoreDir, 0)
	if err != nil {
		return ServeLoadRestart{}, err
	}
	arts1 := artifact.New(16)
	arts1.SetStore(st1)
	popRes, _, err := runAll(arts1)
	if err != nil {
		return ServeLoadRestart{}, err
	}

	// Restarted process: fresh cache, fresh store handle, same directory.
	st2, err := store.Open(opt.StoreDir, 0)
	if err != nil {
		return ServeLoadRestart{}, err
	}
	arts2 := artifact.New(16)
	arts2.SetStore(st2)
	warmRes, warmMs, err := runAll(arts2)
	if err != nil {
		return ServeLoadRestart{}, err
	}

	// Cold baseline: no store, every compile paid again.
	arts3 := artifact.New(16)
	coldRes, coldMs, err := runAll(arts3)
	if err != nil {
		return ServeLoadRestart{}, err
	}

	warmStats := arts2.Stats()
	out := ServeLoadRestart{
		ColdCompiles: arts3.Stats().Misses,
		WarmCompiles: warmStats.Misses,
		StoreHits:    warmStats.StoreHits,
		ColdMs:       coldMs,
		WarmMs:       warmMs,
		Identical:    true,
	}
	for i := range jobs {
		if !reflect.DeepEqual(popRes[i].Histogram, warmRes[i].Histogram) ||
			!reflect.DeepEqual(popRes[i].Histogram, coldRes[i].Histogram) {
			out.Identical = false
		}
	}
	return out, nil
}

// CheckServeRestart enforces the restart-warm gate on a completed run: a
// restarted process recompiles nothing (strictly fewer compiles than a
// cold start — zero, in fact), restores every artifact from the store,
// and serves byte-identical results.
func CheckServeRestart(res *ServeLoadResult) error {
	r := res.Restart
	if r.WarmCompiles != 0 {
		return fmt.Errorf("restarted process compiled %d times, want 0", r.WarmCompiles)
	}
	if r.WarmCompiles >= r.ColdCompiles {
		return fmt.Errorf("warm restart (%d compiles) did not beat cold start (%d)", r.WarmCompiles, r.ColdCompiles)
	}
	if r.StoreHits != r.ColdCompiles {
		return fmt.Errorf("restored %d artifacts, want %d (one per family)", r.StoreHits, r.ColdCompiles)
	}
	if !r.Identical {
		return fmt.Errorf("histograms changed across restart")
	}
	return nil
}

// RenderServeLoad renders the rate sweep and restart comparison.
func RenderServeLoad(res *ServeLoadResult) string {
	rows := make([][]string, 0, len(res.Points))
	for _, p := range res.Points {
		rate := fmt.Sprintf("%.0f", p.Rate)
		if p.Rate == 0 {
			rate = "burst"
		}
		rows = append(rows, []string{
			rate, fmt.Sprint(p.Jobs), fmt.Sprint(p.Completed), fmt.Sprint(p.Rejected),
			fmt.Sprintf("%.2f", p.P50Ms), fmt.Sprintf("%.2f", p.P99Ms),
		})
	}
	s := Table([]string{"rate/s", "jobs", "done", "rejected", "p50 ms", "p99 ms"}, rows)
	if res.SaturationRate > 0 {
		s += fmt.Sprintf("saturation at %.0f jobs/s\n", res.SaturationRate)
	} else {
		s += "no finite rate saturated (burst step pins the queue bound)\n"
	}
	r := res.Restart
	s += fmt.Sprintf("restart: cold %d compiles %.1f ms, warm %d compiles %.1f ms (%d store hits, identical=%v)\n",
		r.ColdCompiles, r.ColdMs, r.WarmCompiles, r.WarmMs, r.StoreHits, r.Identical)
	return s
}
