// Package runner is the shot-execution subsystem: it compiles a circuit
// once and runs it many times, fanning the shots out across a pool of
// independent machine replicas.
//
// The paper's evaluation is dominated by repetition — calibration sweeps
// run points × shots executions (Fig. 11), Fig. 16 sweeps repetitions ×
// T1 settings, Fig. 15 runs whole benchmark suites — and the legacy path
// rebuilt the topology, fabric, controllers and chip and recompiled the
// circuit for every single execution. The runner instead exploits the
// machine-wide Reset path: one compile produces an immutable artifact
// (programs, codeword tables, bit owners) that W replicas share read-only,
// and each shot is a cheap reset+run on one replica. Compilation itself
// goes through the shared content-addressed cache (internal/artifact), so
// a repeat Run of a previously seen circuit skips even the one compile.
//
// Determinism is a hard invariant, not a best effort: shot k's backend
// seed is machine.DeriveSeed(base, k) regardless of which worker executes
// it, and merged results are ordered by shot index, not completion order.
// Run with W workers is therefore byte-identical to W=1 and to the legacy
// rebuild-per-shot path (RunRebuild), which the package tests verify
// shot-for-shot.
package runner

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/machine"
	"dhisq/internal/sim"
)

// Spec describes a repeatable execution: the circuit, its placement on the
// mesh, and the machine configuration. Cfg.Seed is the base seed of the
// shot stream.
type Spec struct {
	Circuit *circuit.Circuit
	MeshW   int
	MeshH   int
	Mapping []int // qubit -> controller; nil = identity
	Cfg     machine.Config
	// Placement names the placement policy applied when Mapping is nil
	// ("" defers to Cfg.Placement, whose zero value is the legacy identity
	// policy). Carried on the spec so callers that don't build a
	// machine.Config by hand can still select a placer; build() folds it
	// into the config before construction, keeping one source of truth.
	Placement string
	// Schedule names the scheduling policy of the compiler's Schedule pass
	// ("" defers to Cfg.Schedule, whose zero value is the legacy fixed
	// replay). Folded into the config by build(), exactly like Placement.
	Schedule string
	// Options overrides the machine-derived compiler options when non-nil
	// (ablations toggle scheduling policies this way).
	Options *compiler.Options
	// FreshCompile bypasses the shared artifact cache for this spec:
	// every compile is paid in full and nothing is cached. It is the
	// measured baseline of the cache experiments and an escape hatch if
	// a cached artifact is ever suspect; normal runs leave it false.
	FreshCompile bool
}

// Shot is the outcome of one repetition.
type Shot struct {
	Index  int
	Seed   int64 // backend seed this shot ran with
	Result machine.Result
	Bits   []int // classical bits in bit order (empty circuit = empty)
}

// ShotSet is the merged outcome of a multi-shot run, ordered by shot index.
type ShotSet struct {
	Shots   []Shot
	NumBits int
}

// Key renders a shot's classical bits as a bitstring, bit 0 leftmost.
func (s Shot) Key() string {
	var b strings.Builder
	for _, bit := range s.Bits {
		b.WriteByte('0' + byte(bit&1))
	}
	return b.String()
}

// Histogram counts shots per classical-bitstring outcome.
type Histogram map[string]int

// histogramGrain is the chunk size below which Histogram counts
// sequentially; larger shot sets count per-chunk partial histograms
// concurrently and merge them with TreeReduce.
const histogramGrain = 512

// Histogram aggregates the shot outcomes. Large sets are counted as
// per-chunk partial histograms merged over the host reduction tree
// (TreeReduce); map-key insertion order is irrelevant to a map, so the
// result is identical to the sequential count for any chunking.
func (s *ShotSet) Histogram() Histogram {
	count := func(shots []Shot) Histogram {
		h := Histogram{}
		for _, shot := range shots {
			h[shot.Key()]++
		}
		return h
	}
	if len(s.Shots) <= histogramGrain {
		return count(s.Shots)
	}
	parts := make([]Histogram, (len(s.Shots)+histogramGrain-1)/histogramGrain)
	var wg sync.WaitGroup
	for i := range parts {
		lo := i * histogramGrain
		hi := lo + histogramGrain
		if hi > len(s.Shots) {
			hi = len(s.Shots)
		}
		i, chunk := i, s.Shots[lo:hi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			parts[i] = count(chunk)
		}()
	}
	wg.Wait()
	h, _ := TreeReduce(parts, 1, mergeHistograms)
	return h
}

// mergeHistograms folds b into a and returns a (TreeReduce combiner; each
// partial enters exactly one combine call, so mutating a is safe).
func mergeHistograms(a, b Histogram) Histogram {
	for k, n := range b {
		a[k] += n
	}
	return a
}

// Makespans returns the per-shot makespans in shot order.
func (s *ShotSet) Makespans() []sim.Time {
	out := make([]sim.Time, len(s.Shots))
	for i, shot := range s.Shots {
		out[i] = shot.Result.Makespan
	}
	return out
}

// Keys returns the outcomes in lexicographic order (deterministic render).
func (h Histogram) Keys() []string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the histogram one "bitstring count" line per outcome.
func (h Histogram) String() string {
	var b strings.Builder
	for _, k := range h.Keys() {
		fmt.Fprintf(&b, "%s %d\n", k, h[k])
	}
	return b.String()
}

// build constructs one machine replica for the spec and loads cp into it
// (cp == nil compiles first — through the shared artifact cache, or
// freshly when fresh is set; the compiled artifact is returned either
// way).
func build(spec Spec, cp *compiler.Compiled, fresh bool) (*machine.Machine, *compiler.Compiled, error) {
	if spec.Placement != "" {
		spec.Cfg.Placement = spec.Placement
	}
	if spec.Schedule != "" {
		spec.Cfg.Schedule = spec.Schedule
	}
	m, err := machine.NewForCircuit(spec.Circuit, spec.MeshW, spec.MeshH, spec.Cfg)
	if err != nil {
		return nil, nil, err
	}
	if cp == nil {
		opt := m.CompileOptions()
		if spec.Options != nil {
			opt = *spec.Options
			if opt.Placement == "" {
				// An explicit Options override (the ablation knob) names no
				// policy of its own: keep the spec's placement rather than
				// silently reverting to identity.
				opt.Placement = spec.Cfg.Placement
			}
			if opt.Schedule == "" {
				opt.Schedule = spec.Cfg.Schedule
			}
		}
		if fresh || spec.FreshCompile {
			cp, err = m.CompileFresh(spec.Circuit, spec.Mapping, opt)
		} else {
			cp, err = m.CompileWith(spec.Circuit, spec.Mapping, opt)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	if err := m.Load(cp); err != nil {
		return nil, nil, err
	}
	return m, cp, nil
}

// Build constructs one loaded machine replica for the spec, compiling
// through the shared artifact cache when cp is nil. internal/service uses
// it to grow per-artifact replica pools that outlive a single Run call.
func Build(spec Spec, cp *compiler.Compiled) (*machine.Machine, *compiler.Compiled, error) {
	return build(spec, cp, false)
}

// runShot executes shot k on an already-loaded replica and reads it out.
func runShot(m *machine.Machine, base int64, k int) (Shot, error) {
	seed := machine.DeriveSeed(base, k)
	m.Reset(seed)
	res, err := m.Run()
	if err != nil {
		return Shot{}, fmt.Errorf("runner: shot %d: %w", k, err)
	}
	bits, err := m.ReadBits()
	if err != nil {
		return Shot{}, fmt.Errorf("runner: shot %d: %w", k, err)
	}
	return Shot{Index: k, Seed: seed, Result: res, Bits: bits}, nil
}

// Run compiles the spec once and executes `shots` repetitions across
// `workers` machine replicas (workers <= 0 picks GOMAXPROCS, capped at the
// shot count). The merged ShotSet is ordered by shot index and is
// byte-identical for every worker count.
func Run(spec Spec, shots, workers int) (*ShotSet, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("runner: nil circuit")
	}
	if shots < 0 {
		return nil, fmt.Errorf("runner: negative shot count %d", shots)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shots {
		workers = shots
	}
	if shots == 0 {
		return &ShotSet{Shots: []Shot{}, NumBits: spec.Circuit.NumBits}, nil
	}

	// Compile once on replica 0 (a shared-cache hit if this circuit has
	// been seen before); the artifact is immutable from here on and every
	// replica shares it.
	first, cp, err := build(spec, nil, false)
	if err != nil {
		return nil, err
	}
	machines := make([]*machine.Machine, workers)
	machines[0] = first
	for w := 1; w < workers; w++ {
		if machines[w], _, err = build(spec, cp, false); err != nil {
			return nil, err
		}
	}
	return RunOn(machines, spec.Cfg.Seed, shots, spec.Circuit.NumBits)
}

// RunOn executes `shots` repetitions across the given already-loaded
// replicas, deriving shot k's seed from base via machine.DeriveSeed. It
// is the deterministic merge core of Run, exported so callers that pool
// machines across calls (internal/service batches jobs sharing an
// artifact onto the same replicas) reuse the exact same shot-indexed
// semantics: results land at their shot index, so the merged ShotSet is
// byte-identical for every replica count and completion order.
//
// Every machine must already be loaded with the same compiled artifact;
// each is reset before its first shot, so pool reuse cannot leak state
// between jobs.
func RunOn(machines []*machine.Machine, base int64, shots, numBits int) (*ShotSet, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("runner: RunOn with no machines")
	}
	if shots < 0 {
		return nil, fmt.Errorf("runner: negative shot count %d", shots)
	}
	set := &ShotSet{Shots: make([]Shot, shots), NumBits: numBits}
	if shots == 0 {
		return set, nil
	}
	if len(machines) == 1 {
		for k := 0; k < shots; k++ {
			shot, err := runShot(machines[0], base, k)
			if err != nil {
				return nil, err
			}
			set.Shots[k] = shot
		}
		return set, nil
	}

	// Fan shots out. Each worker owns one replica; results land in the
	// pre-sized slice at their shot index, so merge order never depends on
	// completion order. Errors keep the lowest failing shot index so the
	// reported failure is deterministic too.
	idx := make(chan int)
	errs := make([]error, shots)
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *machine.Machine) {
			defer wg.Done()
			for k := range idx {
				shot, err := runShot(m, base, k)
				if err != nil {
					errs[k] = err
					continue
				}
				set.Shots[k] = shot
			}
		}(m)
	}
	for k := 0; k < shots; k++ {
		idx <- k
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return set, nil
}

// RunRebuild is the legacy rebuild-per-shot reference path: every shot
// constructs a fresh machine and recompiles the circuit, deliberately
// bypassing the shared artifact cache (a cached "rebuild" would no longer
// measure what it claims to). It exists as the semantic baseline the
// reset path is verified against and as the "before" side of the
// shot-throughput benchmarks; new code should call Run.
func RunRebuild(spec Spec, shots int) (*ShotSet, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("runner: nil circuit")
	}
	if shots < 0 {
		return nil, fmt.Errorf("runner: negative shot count %d", shots)
	}
	set := &ShotSet{Shots: make([]Shot, shots), NumBits: spec.Circuit.NumBits}
	for k := 0; k < shots; k++ {
		shotSpec := spec
		shotSpec.Cfg.Seed = machine.DeriveSeed(spec.Cfg.Seed, k)
		m, _, err := build(shotSpec, nil, true)
		if err != nil {
			return nil, err
		}
		res, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("runner: rebuild shot %d: %w", k, err)
		}
		bits, err := m.ReadBits()
		if err != nil {
			return nil, fmt.Errorf("runner: rebuild shot %d: %w", k, err)
		}
		set.Shots[k] = Shot{Index: k, Seed: shotSpec.Cfg.Seed, Result: res, Bits: bits}
	}
	return set, nil
}
