package runner

import (
	"reflect"
	"testing"

	"dhisq/internal/artifact"
	"dhisq/internal/machine"
	"dhisq/internal/workloads"
)

func sweepSpec(n, layers int) (Spec, []map[string]float64) {
	c := workloads.VQEAnsatz(n, layers)
	cfg := machine.DefaultConfig(n)
	cfg.Seed = 11
	points := make([]map[string]float64, 5)
	for k := range points {
		points[k] = workloads.VQEAnsatzPoint(n, layers, k)
	}
	return Spec{Circuit: c, MeshW: (n + 1) / 2, MeshH: 2, Cfg: cfg}, points
}

// TestRunSweepDeterministicAcrossWorkers: the merged sweep is
// byte-identical for every worker count, and every point carries real
// sampled outcomes.
func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	spec, points := sweepSpec(6, 1)
	w1, err := RunSweep(spec, points, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	w3, err := RunSweep(spec, points, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1, w3) {
		t.Fatal("sweep results differ across worker counts")
	}
	for k, pt := range w1 {
		if pt.Index != k || len(pt.Set.Shots) != 8 {
			t.Fatalf("point %d malformed: %+v", k, pt)
		}
	}
}

// TestRunSweepMatchesBoundRuns: point k of a sweep is bit-identical to a
// plain Run of the circuit bound at point k with the derived point seed —
// the bind path changes cost, never results.
func TestRunSweepMatchesBoundRuns(t *testing.T) {
	spec, points := sweepSpec(6, 1)
	sweep, err := RunSweep(spec, points, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, pt := range sweep {
		bound, err := spec.Circuit.Bind(points[k])
		if err != nil {
			t.Fatal(err)
		}
		bs := spec
		bs.Circuit = bound
		bs.Cfg.Seed = machine.DeriveSeed(spec.Cfg.Seed, k)
		want, err := Run(bs, 6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pt.Set, want) {
			t.Fatalf("point %d differs from a plain run of the bound circuit", k)
		}
	}
}

// TestRunSweepCompilesOnce: an N-point sweep charges the shared cache
// exactly one compile, and a repeat sweep charges none.
func TestRunSweepCompilesOnce(t *testing.T) {
	spec, points := sweepSpec(7, 1) // unique shape: no other test caches it
	before := artifact.Shared.Stats()
	if _, err := RunSweep(spec, points, 2, 2); err != nil {
		t.Fatal(err)
	}
	mid := artifact.Shared.Stats()
	if got := mid.Misses - before.Misses; got != 1 {
		t.Fatalf("first sweep compiled %d times, want 1", got)
	}
	if _, err := RunSweep(spec, points, 2, 2); err != nil {
		t.Fatal(err)
	}
	after := artifact.Shared.Stats()
	if got := after.Misses - mid.Misses; got != 0 {
		t.Fatalf("repeat sweep compiled %d times, want 0", got)
	}
}

// TestRunSweepRejectsBadPoints: a point missing a parameter fails with
// the lowest failing index, and a plain Run of a skeleton is rejected.
func TestRunSweepRejectsBadPoints(t *testing.T) {
	spec, points := sweepSpec(6, 1)
	points[2] = map[string]float64{"t0_0": 1} // incomplete
	if _, err := RunSweep(spec, points, 1, 2); err == nil {
		t.Fatal("incomplete point accepted")
	}
	if _, err := Run(spec, 1, 1); err == nil {
		t.Fatal("running an unbound skeleton accepted")
	}
}

// TestRunSweepEdgeCases: degenerate inputs fail (or no-op) cleanly.
func TestRunSweepEdgeCases(t *testing.T) {
	spec, points := sweepSpec(6, 1)
	if out, err := RunSweep(spec, nil, 4, 2); err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: %v %v", out, err)
	}
	if _, err := RunSweep(Spec{}, points, 1, 1); err == nil {
		t.Fatal("nil circuit accepted")
	}
	if _, err := RunSweep(spec, points, -1, 1); err == nil {
		t.Fatal("negative shots accepted")
	}
	if _, err := RunSweepOn(nil, nil, points, 1, 1, 0); err == nil {
		t.Fatal("no machines accepted")
	}
	m, skel, err := BuildSkeleton(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweepOn([]*machine.Machine{m}, nil, points, 1, 1, 0); err == nil {
		t.Fatal("nil skeleton accepted")
	}
	// Zero shots: points come back with empty sets, deterministically.
	out, err := RunSweepOn([]*machine.Machine{m}, skel, points, 1, 0, spec.Circuit.NumBits)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(points) || len(out[0].Set.Shots) != 0 {
		t.Fatalf("zero-shot sweep malformed: %+v", out)
	}
}
