package runner

import (
	"fmt"
	"runtime"
	"sync"

	"dhisq/internal/compiler"
	"dhisq/internal/machine"
)

// Parameter-sweep execution: the VQE/calibration-style workload where one
// circuit skeleton is run at many rotation-angle settings. The skeleton is
// compiled exactly once under its structural fingerprint
// (machine.CompileSkeleton); each point then costs one BindParams patch —
// a table copy, no re-placement, no re-scheduling — plus a Load and the
// shots themselves. Determinism mirrors Run: point k's shot stream is
// seeded from machine.DeriveSeed(base, k) (point 0 = base, so a one-point
// sweep is bit-identical to a plain run of the bound circuit), and results
// land at their point index regardless of worker count.

// SweepPoint is the outcome of one parameter setting.
type SweepPoint struct {
	Index  int
	Params map[string]float64
	Set    *ShotSet
}

// BuildSkeleton constructs one loaded machine replica for the spec,
// compiling the circuit under its bind-invariant structural fingerprint
// when cp is nil (a shared-cache hit on every replica after the first,
// and on every later sweep of the same skeleton). The loaded artifact is
// the unbound skeleton; callers patch it per point with BindParams.
// Unlike Build, spec.Options and spec.FreshCompile are ignored — sweeps
// always run the machine-derived options through the cache.
func BuildSkeleton(spec Spec, cp *compiler.Compiled) (*machine.Machine, *compiler.Compiled, error) {
	if spec.Placement != "" {
		spec.Cfg.Placement = spec.Placement
	}
	m, err := machine.NewForCircuit(spec.Circuit, spec.MeshW, spec.MeshH, spec.Cfg)
	if err != nil {
		return nil, nil, err
	}
	if cp == nil {
		if cp, err = m.CompileSkeleton(spec.Circuit, spec.Mapping); err != nil {
			return nil, nil, err
		}
	}
	if err := m.Load(cp); err != nil {
		return nil, nil, err
	}
	return m, cp, nil
}

// RunSweep compiles the spec's circuit once and executes `shots`
// repetitions at every parameter point, fanning points out across
// `workers` machine replicas (workers <= 0 picks GOMAXPROCS, capped at
// the point count). Each point's map must bind every symbolic parameter
// of the circuit. The returned points are ordered by point index and are
// byte-identical for every worker count.
func RunSweep(spec Spec, points []map[string]float64, shots, workers int) ([]SweepPoint, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("runner: nil circuit")
	}
	if shots < 0 {
		return nil, fmt.Errorf("runner: negative shot count %d", shots)
	}
	if len(points) == 0 {
		return []SweepPoint{}, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	first, skel, err := BuildSkeleton(spec, nil)
	if err != nil {
		return nil, err
	}
	machines := make([]*machine.Machine, workers)
	machines[0] = first
	for w := 1; w < workers; w++ {
		if machines[w], _, err = BuildSkeleton(spec, skel); err != nil {
			return nil, err
		}
	}
	return RunSweepOn(machines, skel, points, spec.Cfg.Seed, shots, spec.Circuit.NumBits)
}

// RunSweepOn executes the sweep on caller-owned replicas loaded with the
// skeleton artifact skel (internal/service pools such replicas across
// jobs). Each point binds the skeleton, loads the bound artifact on one
// replica, and runs its shots there with base seed
// machine.DeriveSeed(base, pointIndex); results land at their point
// index, so the merge never depends on completion order. On error the
// lowest failing point index is reported.
func RunSweepOn(machines []*machine.Machine, skel *compiler.Compiled, points []map[string]float64, base int64, shots, numBits int) ([]SweepPoint, error) {
	return RunSweepOnObserved(machines, skel, points, base, shots, numBits, nil)
}

// RunSweepOnObserved is RunSweepOn with a completion observer: observe
// (when non-nil) is called once per finished point, in completion order —
// which under multiple replicas is not point order, and may be concurrent
// (the observer must be safe to call from several worker goroutines).
// The observed SweepPoint is the same value that lands in the returned
// slice. This is the streaming hook: internal/service publishes each
// observed point to /v1/jobs/{id}/stream watchers while the sweep is
// still running. The final merged slice (and its determinism guarantee)
// is unchanged by observation.
func RunSweepOnObserved(machines []*machine.Machine, skel *compiler.Compiled, points []map[string]float64, base int64, shots, numBits int, observe func(SweepPoint)) ([]SweepPoint, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("runner: RunSweepOn with no machines")
	}
	if skel == nil {
		return nil, fmt.Errorf("runner: RunSweepOn with nil skeleton artifact")
	}
	out := make([]SweepPoint, len(points))
	runPoint := func(m *machine.Machine, k int) error {
		bound, err := skel.BindParams(points[k])
		if err != nil {
			return fmt.Errorf("runner: point %d: %w", k, err)
		}
		if err := m.Load(bound); err != nil {
			return fmt.Errorf("runner: point %d: %w", k, err)
		}
		set, err := RunOn([]*machine.Machine{m}, machine.DeriveSeed(base, k), shots, numBits)
		if err != nil {
			return fmt.Errorf("runner: point %d: %w", k, err)
		}
		out[k] = SweepPoint{Index: k, Params: points[k], Set: set}
		if observe != nil {
			observe(out[k])
		}
		return nil
	}
	if len(machines) == 1 {
		for k := range points {
			if err := runPoint(machines[0], k); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	idx := make(chan int)
	errs := make([]error, len(points))
	var wg sync.WaitGroup
	for _, m := range machines {
		wg.Add(1)
		go func(m *machine.Machine) {
			defer wg.Done()
			for k := range idx {
				errs[k] = runPoint(m, k)
			}
		}(m)
	}
	for k := range points {
		idx <- k
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
