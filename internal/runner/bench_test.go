package runner

import (
	"fmt"
	"testing"

	"dhisq/internal/machine"
	"dhisq/internal/workloads"
)

// benchSpec is a mid-size Clifford benchmark: big enough that a shot does
// real work, small enough that b.N shots stay benchmark-friendly.
func benchSpec(tb testing.TB) Spec {
	b, err := workloads.BuildScaled("bv_n400", 8)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := machine.DefaultConfig(b.Qubits)
	cfg.Backend = machine.BackendSeeded
	cfg.Seed = 1
	return Spec{Circuit: b.Circuit, MeshW: b.MeshW, MeshH: b.MeshH, Mapping: b.Mapping, Cfg: cfg}
}

// BenchmarkShotRunner compares the three shot-execution strategies on the
// same workload: the legacy rebuild-per-shot path, the compile-once/reset
// path at one worker, and the worker pool at four. The acceptance bar is
// reset-w1 beating rebuild and reset-w4 at >= 2x rebuild throughput.
func BenchmarkShotRunner(b *testing.B) {
	spec := benchSpec(b)
	b.Run("rebuild", func(b *testing.B) {
		if _, err := RunRebuild(spec, b.N); err != nil {
			b.Fatal(err)
		}
	})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("reset-w%d", w), func(b *testing.B) {
			if _, err := Run(spec, b.N, w); err != nil {
				b.Fatal(err)
			}
		})
	}
}
