package runner

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
)

// statevecSpec is a feed-forward-free non-Clifford circuit on 6 qubits
// with random measurement outcomes: BackendAuto resolves to the dense
// state vector, so batching must keep every lane's RNG stream in step.
func statevecSpec(seed int64) Spec {
	c := circuit.New(6)
	c.H(0).T(0).CNOT(0, 1).T(1).H(2).CNOT(2, 3).RXGate(4, 0.7).CNOT(4, 5)
	for q := 0; q < 6; q++ {
		c.MeasureInto(q, q)
	}
	cfg := machine.DefaultConfig(6)
	cfg.Seed = seed
	return Spec{Circuit: c, MeshW: 3, MeshH: 2, Cfg: cfg}
}

// seededSpec forces the timing-only seeded backend on the Clifford chain —
// the block-replay configuration the shot benchmarks gate on.
func seededSpec(seed int64) Spec {
	spec := cliffordSpec(seed)
	spec.Cfg.Backend = machine.BackendSeeded
	return spec
}

// TestBatchedMatchesUnbatched is the batched-shot determinism invariant:
// RunBatched with any lane count is byte-identical to Run, shot for shot —
// bits, seeds and Results — across every backend kind.
func TestBatchedMatchesUnbatched(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"stabilizer", cliffordSpec(7)},
		{"statevec", statevecSpec(19)},
		{"seeded", seededSpec(23)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const shots = 13
			plain, err := Run(tc.spec, shots, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, lanes := range []int{2, 4, 13, 16} {
				batched, err := RunBatched(tc.spec, shots, lanes)
				if err != nil {
					t.Fatalf("lanes=%d: %v", lanes, err)
				}
				if !reflect.DeepEqual(plain, batched) {
					for k := range plain.Shots {
						if !reflect.DeepEqual(plain.Shots[k], batched.Shots[k]) {
							t.Fatalf("lanes=%d: shot %d diverged:\nunbatched %+v\nbatched   %+v",
								lanes, k, plain.Shots[k], batched.Shots[k])
						}
					}
					t.Fatalf("lanes=%d: sets diverged outside shots", lanes)
				}
			}
		})
	}
}

// TestBatchableRejectsFeedForward pins the validity predicate: conditioned
// ops and re-measured bits disqualify a circuit, and RunBatched refuses it.
func TestBatchableRejectsFeedForward(t *testing.T) {
	ff := dynamicSpec(3)
	if Batchable(ff.Circuit) {
		t.Fatal("feed-forward circuit reported batchable")
	}
	if _, err := RunBatched(ff, 4, 2); err == nil {
		t.Fatal("RunBatched accepted a feed-forward circuit")
	}

	re := circuit.New(2)
	re.H(0).MeasureInto(0, 0).H(1).MeasureInto(1, 0) // bit 0 written twice
	if Batchable(re) {
		t.Fatal("re-measured bit reported batchable")
	}

	if !Batchable(cliffordSpec(1).Circuit) {
		t.Fatal("plain measured circuit reported unbatchable")
	}
}

// TestBatchedLaneFallback: lanes <= 1 must defer to the plain path.
func TestBatchedLaneFallback(t *testing.T) {
	spec := cliffordSpec(5)
	plain, err := Run(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunBatched(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, one) {
		t.Fatal("RunBatched(lanes=1) diverged from Run")
	}
}

// TestBatchedNonIdentityPlacement runs the batched path under a
// non-identity placement policy, where bit reconstruction must follow the
// compiled BitOwner table rather than the logical qubit index.
func TestBatchedNonIdentityPlacement(t *testing.T) {
	spec := cliffordSpec(9)
	spec.Placement = "interaction"
	plain, err := Run(spec, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := RunBatched(spec, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, batched) {
		t.Fatal("batched run diverged under non-identity placement")
	}
}
