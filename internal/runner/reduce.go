package runner

// Host-side reduction tree: the software mirror of the fabric's collective
// layer (internal/network.RunCollective). Where the fabric reduces values
// across simulated controllers, the host reduces values across shots and
// sweep points — and both replace linear accumulation loops with a balanced
// combining tree so the merge parallelizes without giving up determinism.

// TreeReduce folds xs with combine over a balanced binary tree and reports
// whether there was anything to fold (false only for an empty slice). The
// pairing is a pure function of len(xs) — always split at the midpoint,
// always combine(left, right) — so the result is deterministic for any
// worker interleaving. Halves longer than grain are reduced concurrently;
// grain <= 1 parallelizes all the way down, and a grain >= len(xs) is a
// plain sequential left fold.
//
// combine must be associative for the tree to agree with a linear left
// fold (every consumer in this repo reduces counters, histograms and
// congestion digests, which are). combine may mutate and return its first
// argument: every element enters exactly one combine call, so no value is
// ever visible to two goroutines at once.
func TreeReduce[T any](xs []T, grain int, combine func(T, T) T) (T, bool) {
	if len(xs) == 0 {
		var zero T
		return zero, false
	}
	if grain < 1 {
		grain = 1
	}
	return treeReduce(xs, grain, combine), true
}

func treeReduce[T any](xs []T, grain int, combine func(T, T) T) T {
	if len(xs) <= grain {
		acc := xs[0]
		for _, x := range xs[1:] {
			acc = combine(acc, x)
		}
		return acc
	}
	mid := len(xs) / 2
	var right T
	done := make(chan struct{})
	go func() {
		right = treeReduce(xs[mid:], grain, combine)
		close(done)
	}()
	left := treeReduce(xs[:mid], grain, combine)
	<-done
	return combine(left, right)
}
