package runner

import (
	"math"
	"math/rand"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/network"
)

// remoteOracleCircuit builds a fixed random circuit with cross-half
// two-qubit gates, mid-circuit measurement and feed-forward — the shape
// the multi-chip expansion has to get right.
func remoteOracleCircuit(seed int64, n int, clifford bool) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	oneQ := []circuit.Kind{circuit.H, circuit.X, circuit.S, circuit.Z}
	for i := 0; i < 5*n; i++ {
		switch rng.Intn(4) {
		case 0:
			c.Gate(oneQ[rng.Intn(len(oneQ))], rng.Intn(n))
		case 1, 2:
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			switch k := rng.Intn(4); {
			case k == 0:
				c.CNOT(a, b)
			case k == 1:
				c.CZ(a, b)
			case k == 2:
				c.SWAP(a, b)
			case clifford:
				c.CNOT(a, b)
			default:
				c.CPhaseGate(a, b, 0.25+0.5*rng.Float64())
			}
		default:
			q := rng.Intn(n)
			mb := c.MeasureNew(q)
			c.CondGate(circuit.X, circuit.Condition{Bits: []int{mb}, Parity: 1}, (q+1)%n)
		}
	}
	for q := 0; q < n; q++ {
		c.MeasureNew(q)
	}
	return c
}

func remoteSpec(c *circuit.Circuit, chips int, backend machine.BackendKind, policy string) Spec {
	cfg := machine.DefaultConfig(c.NumQubits)
	cfg.Chips = chips
	cfg.Backend = backend
	cfg.Placement = policy
	w, h := network.NearSquareMesh(cfg.TotalQubits(c.NumQubits))
	return Spec{Circuit: c, MeshW: w, MeshH: h, Cfg: cfg}
}

func tvd(a, b Histogram, shots int) float64 {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var d float64
	for k := range keys {
		d += math.Abs(float64(a[k])-float64(b[k])) / float64(shots)
	}
	return d / 2
}

// TestRemoteDistributionEquality is the machine-level half of the
// remote-gate oracle battery: over a large shot stream, a multi-chip
// machine's public-bit histogram must match the merged single-chip
// machine's for the same circuit. The comparison is statistical (total
// variation distance) because the two machines interleave their RNG draws
// differently; a broken teleportation correction shifts outcome mass by
// 0.25 or more, far above the sampling threshold used here.
func TestRemoteDistributionEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shot distribution comparison")
	}
	const shots = 1200
	cases := []struct {
		name    string
		backend machine.BackendKind
		seed    int64
	}{
		{"statevec", machine.BackendStateVec, 11},
		{"stabilizer", machine.BackendStabilizer, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := remoteOracleCircuit(tc.seed, 4, tc.backend == machine.BackendStabilizer)
			for _, chips := range []int{2, 3} {
				for _, policy := range []string{"rowmajor", "interaction"} {
					multi, err := Run(remoteSpec(c, chips, tc.backend, policy), shots, 4)
					if err != nil {
						t.Fatalf("chips=%d policy=%s: %v", chips, policy, err)
					}
					single, err := Run(remoteSpec(c, 0, tc.backend, policy), shots, 4)
					if err != nil {
						t.Fatalf("single-chip policy=%s: %v", policy, err)
					}
					if multi.NumBits != single.NumBits {
						t.Fatalf("chips=%d: public bit width %d, single-chip %d", chips, multi.NumBits, single.NumBits)
					}
					if d := tvd(multi.Histogram(), single.Histogram(), shots); d > 0.15 {
						t.Fatalf("chips=%d policy=%s: TVD %.3f between multi-chip and merged histograms", chips, policy, d)
					}
				}
			}
		})
	}
}

// TestRemoteWorkerCountInvariance: shot streams of a multi-chip spec are
// byte-identical whatever the worker count, exactly like single-chip runs.
func TestRemoteWorkerCountInvariance(t *testing.T) {
	c := remoteOracleCircuit(21, 4, false)
	spec := remoteSpec(c, 2, machine.BackendStateVec, "interaction")
	spec.Cfg.Seed = 9
	const shots = 64
	ref, err := Run(spec, shots, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := Run(spec, shots, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for k := range ref.Shots {
			if got.Shots[k].Key() != ref.Shots[k].Key() {
				t.Fatalf("workers=%d shot %d: %s, want %s (W=1)", workers, k, got.Shots[k].Key(), ref.Shots[k].Key())
			}
			if got.Shots[k].Seed != ref.Shots[k].Seed {
				t.Fatalf("workers=%d shot %d: seed %d, want %d", workers, k, got.Shots[k].Seed, ref.Shots[k].Seed)
			}
		}
	}
}
