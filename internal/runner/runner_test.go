package runner

import (
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
)

// cliffordSpec is a feed-forward-free GHZ chain on 16 qubits: Clifford and
// large enough that BackendAuto resolves to the stabilizer tableau.
func cliffordSpec(seed int64) Spec {
	n := 16
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CNOT(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.MeasureInto(q, q)
	}
	cfg := machine.DefaultConfig(n)
	cfg.Seed = seed
	return Spec{Circuit: c, MeshW: 4, MeshH: 4, Cfg: cfg}
}

// dynamicSpec is a non-Clifford feed-forward circuit on 6 qubits (T gates
// plus a measurement-conditioned correction): BackendAuto resolves to the
// dense state vector, and the conditional exercises the classical message
// path between controllers.
func dynamicSpec(seed int64) Spec {
	c := circuit.New(6)
	c.H(0).T(0).CNOT(0, 1).T(1).H(2).CNOT(2, 3)
	c.MeasureInto(3, 0)
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{0}, Parity: 1}, 4)
	c.T(4).CNOT(4, 5)
	for q := 0; q < 6; q++ {
		c.MeasureInto(q, q)
	}
	cfg := machine.DefaultConfig(6)
	cfg.Seed = seed
	return Spec{Circuit: c, MeshW: 3, MeshH: 2, Cfg: cfg}
}

func checkSet(t *testing.T, set *ShotSet, shots int) {
	t.Helper()
	if len(set.Shots) != shots {
		t.Fatalf("got %d shots, want %d", len(set.Shots), shots)
	}
	for k, s := range set.Shots {
		if s.Index != k {
			t.Fatalf("shot %d carries index %d", k, s.Index)
		}
		if !s.Result.Halted {
			t.Fatalf("shot %d did not halt", k)
		}
		if s.Result.Misalignments != 0 || s.Result.Violations != 0 {
			t.Fatalf("shot %d broke invariants: %+v", k, s.Result)
		}
	}
}

// TestParallelMatchesSequential is the determinism invariant: W workers
// produce byte-identical merged output to W=1 and to the legacy
// rebuild-per-shot path, shot for shot.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"clifford", cliffordSpec(7)},
		{"dynamic", dynamicSpec(11)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const shots = 12
			seq, err := Run(tc.spec, shots, 1)
			if err != nil {
				t.Fatal(err)
			}
			checkSet(t, seq, shots)
			par, err := Run(tc.spec, shots, 4)
			if err != nil {
				t.Fatal(err)
			}
			rebuild, err := RunRebuild(tc.spec, shots)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatal("W=4 diverged from W=1")
			}
			if !reflect.DeepEqual(seq, rebuild) {
				t.Fatal("reset path diverged from rebuild-per-shot")
			}
		})
	}
}

// TestShotStreamVariesAndReproduces checks that the derived per-shot seeds
// actually vary outcomes across shots (a stuck seed would make every shot
// identical) and that re-running the whole set reproduces it.
func TestShotStreamVariesAndReproduces(t *testing.T) {
	spec := cliffordSpec(3)
	set, err := Run(spec, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := set.Histogram()
	if len(h) < 2 {
		t.Fatalf("24 GHZ shots collapsed to %d outcome(s): %v", len(h), h)
	}
	for key := range h {
		// GHZ: all bits agree within a shot.
		for i := 1; i < len(key); i++ {
			if key[i] != key[0] {
				t.Fatalf("non-GHZ outcome %q", key)
			}
		}
	}
	again, err := Run(spec, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set, again) {
		t.Fatal("re-run with different worker count not reproducible")
	}
}

// TestShotZeroMatchesLegacySingleRun pins DeriveSeed(base, 0) == base: the
// runner's first shot is bit-identical to the one-call machine path.
func TestShotZeroMatchesLegacySingleRun(t *testing.T) {
	spec := dynamicSpec(42)
	set, err := Run(spec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, m, err := machine.RunCircuit(spec.Circuit, spec.MeshW, spec.MeshH, spec.Mapping, spec.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set.Shots[0].Result, res) {
		t.Fatalf("shot 0 result %+v != legacy %+v", set.Shots[0].Result, res)
	}
	bits, err := m.ReadBits()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(set.Shots[0].Bits, bits) {
		t.Fatalf("shot 0 bits %v != legacy %v", set.Shots[0].Bits, bits)
	}
}

func TestHistogramRender(t *testing.T) {
	set := &ShotSet{Shots: []Shot{
		{Bits: []int{1, 0}}, {Bits: []int{1, 0}}, {Bits: []int{0, 1}},
	}}
	h := set.Histogram()
	if h["10"] != 2 || h["01"] != 1 {
		t.Fatalf("bad histogram %v", h)
	}
	if got, want := h.String(), "01 1\n10 2\n"; got != want {
		t.Fatalf("render %q, want %q", got, want)
	}
}

func TestZeroShots(t *testing.T) {
	set, err := Run(cliffordSpec(1), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Shots) != 0 {
		t.Fatal("expected empty set")
	}
}

// Spec.Placement folds into the machine config and survives an explicit
// compiler-options override that names no policy of its own.
func TestSpecPlacementThreads(t *testing.T) {
	c := circuit.New(6)
	c.H(0)
	for q := 0; q < 5; q++ {
		c.CNOT(q, 5)
	}
	for q := 0; q < 6; q++ {
		c.MeasureInto(q, q)
	}
	spec := Spec{
		Circuit: c, MeshW: 3, MeshH: 2,
		Cfg: machine.DefaultConfig(6), Placement: "interaction",
	}
	m, cp, err := Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Mapping) != 6 {
		t.Fatalf("placement did not thread: mapping %v", cp.Mapping)
	}

	// Ablation-style Options override with no policy of its own: the
	// spec's placement must not silently revert to identity.
	opt := m.CompileOptions()
	opt.Placement = ""
	opt.AdvanceBooking = false
	spec.Options = &opt
	_, cp2, err := Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp2.Mapping) != 6 {
		t.Fatalf("Options override dropped the placement: mapping %v", cp2.Mapping)
	}
}
