package runner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestTreeReduceMatchesLinearFold pins the core contract: for an
// associative combiner the balanced tree agrees with a sequential left
// fold at every length and grain, including the degenerate ones.
func TestTreeReduceMatchesLinearFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 100, 1023} {
		xs := make([]int, n)
		want := 0
		for i := range xs {
			xs[i] = rng.Intn(1000)
			want += xs[i]
		}
		for _, grain := range []int{-1, 0, 1, 2, 16, n, n + 1} {
			got, ok := TreeReduce(xs, grain, func(a, b int) int { return a + b })
			if ok != (n > 0) {
				t.Fatalf("n=%d grain=%d: ok=%v", n, grain, ok)
			}
			if ok && got != want {
				t.Fatalf("n=%d grain=%d: got %d want %d", n, grain, got, want)
			}
		}
	}
}

// TestTreeReduceOrdered pins that the pairing preserves element order:
// an associative but non-commutative combiner (concatenation) must still
// produce the left-fold result, whatever the goroutine interleaving.
func TestTreeReduceOrdered(t *testing.T) {
	xs := make([]string, 200)
	var want strings.Builder
	for i := range xs {
		xs[i] = fmt.Sprintf("%d,", i)
		want.WriteString(xs[i])
	}
	for iter := 0; iter < 20; iter++ {
		got, ok := TreeReduce(xs, 1, func(a, b string) string { return a + b })
		if !ok || got != want.String() {
			t.Fatalf("iter %d: concatenation reordered: %q", iter, got)
		}
	}
}

// TestTreeReduceMutatingCombiner pins the ownership contract the
// congestion-digest and histogram consumers rely on: a combiner that
// mutates and returns its first argument is safe because every element
// enters exactly one combine call. Run under -race this is the
// concurrency leg for the reduction tree.
func TestTreeReduceMutatingCombiner(t *testing.T) {
	xs := make([]map[string]int, 300)
	for i := range xs {
		xs[i] = map[string]int{fmt.Sprintf("k%d", i%17): i}
	}
	got, ok := TreeReduce(xs, 1, func(a, b map[string]int) map[string]int {
		for k, v := range b {
			a[k] += v
		}
		return a
	})
	if !ok {
		t.Fatal("non-empty reduce reported empty")
	}
	want := map[string]int{}
	for i := range xs {
		want[fmt.Sprintf("k%d", i%17)] += i
	}
	if len(got) != len(want) {
		t.Fatalf("key count %d != %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: got %d want %d", k, got[k], v)
		}
	}
}

// TestHistogramChunkedMatchesSequential pins that the chunked, tree-merged
// Histogram is identical to the naive sequential count once the shot count
// crosses the parallel threshold.
func TestHistogramChunkedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	set := &ShotSet{NumBits: 3}
	for i := 0; i < 4*histogramGrain+37; i++ {
		bits := []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
		set.Shots = append(set.Shots, Shot{Index: i, Bits: bits})
	}
	want := Histogram{}
	for _, shot := range set.Shots {
		want[shot.Key()]++
	}
	got := set.Histogram()
	if got.String() != want.String() {
		t.Fatalf("chunked histogram diverged:\n%s\nvs\n%s", got, want)
	}
}
