package runner

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/machine"
	"dhisq/internal/network"
	"dhisq/internal/workloads"
)

// The golden fixtures pin the end-to-end observable behavior of the whole
// stack — compiler, fabric, controllers, chip backend, shot merge — for
// three canonical workloads at fixed seeds. Any change that shifts a
// makespan by one cycle or flips one measurement outcome fails the
// byte-for-byte diff, so results cannot drift silently between PRs.
//
// Refresh intentionally-changed fixtures with:
//
//	go test ./internal/runner -run TestGolden -update
//
// and justify the diff in the PR description.
var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenShot is one shot's pinned observables.
type goldenShot struct {
	Seed     int64  `json:"seed"`
	Makespan int64  `json:"makespan_cycles"`
	Bits     string `json:"bits"`
}

// goldenRun is the committed fixture: everything a regression should catch.
// Chips is omitempty so the pre-multi-chip fixtures stay byte-identical —
// the single-chip configs' golden files are themselves the regression test
// for the "chips=0 unchanged" contract.
type goldenRun struct {
	Name      string         `json:"name"`
	Qubits    int            `json:"qubits"`
	Chips     int            `json:"chips,omitempty"`
	MeshW     int            `json:"mesh_w"`
	MeshH     int            `json:"mesh_h"`
	Seed      int64          `json:"seed"`
	Shots     int            `json:"shots"`
	Histogram map[string]int `json:"histogram"`
	PerShot   []goldenShot   `json:"per_shot"`
}

// goldenCases lists the pinned workloads. Sizes are chosen so the auto
// backend resolves to the dense state vector (<= 14 qubits): real sampled
// quantum outcomes, not just timing, are under regression.
func goldenCases() []struct {
	name  string
	chips int
	build func() *circuit.Circuit
} {
	return []struct {
		name  string
		chips int
		build func() *circuit.Circuit
	}{
		{"ghz_n9", 0, func() *circuit.Circuit { return workloads.GHZ(9) }},
		{"bv_n10", 0, func() *circuit.Circuit { return workloads.BV(10, workloads.AlternatingSecret) }},
		{"qft_n8", 0, func() *circuit.Circuit { return workloads.QFT(8) }},
		// A Bell pair split across two chips: the CNOT teleports via an EPR
		// pair, so the fixture pins the remote-gate expansion, the herald
		// traffic timing, and the feed-forward corrections byte-for-byte.
		{"remote_cnot_2chip", 2, func() *circuit.Circuit {
			c := circuit.New(4)
			c.H(0)
			c.CNOT(0, 2) // crosses the {0,1}|{2,3} contiguous partition
			c.CNOT(2, 3)
			for q := 0; q < 4; q++ {
				c.MeasureInto(q, q)
			}
			return c
		}},
	}
}

func goldenRunFor(t *testing.T, name string, chips int, c *circuit.Circuit) goldenRun {
	t.Helper()
	const (
		seed  = 7
		shots = 24
	)
	cfg := machine.DefaultConfig(c.NumQubits)
	cfg.Seed = seed
	if chips > 1 {
		cfg.Chips = chips
		cfg.EPRLatency = 40
		cfg.Net.MeshW, cfg.Net.MeshH = network.NearSquareMesh(cfg.TotalQubits(c.NumQubits))
	}
	set, err := Run(Spec{
		Circuit: c,
		MeshW:   cfg.Net.MeshW,
		MeshH:   cfg.Net.MeshH,
		Cfg:     cfg,
	}, shots, 1)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	g := goldenRun{
		Name:      name,
		Qubits:    c.NumQubits,
		Chips:     cfg.Chips,
		MeshW:     cfg.Net.MeshW,
		MeshH:     cfg.Net.MeshH,
		Seed:      seed,
		Shots:     shots,
		Histogram: set.Histogram(),
	}
	for _, s := range set.Shots {
		g.PerShot = append(g.PerShot, goldenShot{
			Seed:     s.Seed,
			Makespan: int64(s.Result.Makespan),
			Bits:     s.Key(),
		})
	}
	return g
}

// TestGoldenFixtures re-runs every pinned workload and diffs the serialized
// result byte-for-byte against the committed fixture.
func TestGoldenFixtures(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := goldenRunFor(t, tc.name, tc.chips, tc.build())
			data, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture %s (run with -update to create): %v", path, err)
			}
			if !bytes.Equal(data, want) {
				t.Errorf("%s drifted from its golden fixture.\nIf this change is intentional, refresh with:\n  go test ./internal/runner -run TestGolden -update\ngot:\n%swant:\n%s", tc.name, data, want)
			}
		})
	}
}
