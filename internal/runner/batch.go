package runner

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/compiler"
	"dhisq/internal/machine"
)

// Batched-shot execution: a machine built with Cfg.ShotLanes = B carries B
// independent state lanes behind one chip, so one event-simulation replay
// of the loaded program (controllers, fabric, timing — the expensive part
// of a shot) executes a whole block of B shots. Each committed gate is
// dispatched to the backend once and applied to every lane; each
// measurement collapses every lane with its own RNG.
//
// The mode is valid exactly when the program's control flow is
// outcome-independent: no feed-forward (conditioned ops) and no classical
// bit written twice. Then every lane sees the same gate/measure sequence
// an unbatched shot would, so lane l of block b is byte-identical to
// unbatched shot b*B+l — including the Result, which without feed-forward
// does not depend on outcomes at all. Lane 0's bits flow through the
// controllers' result FIFOs into memory as usual; the other lanes' bits
// are reconstructed from the chip's per-lane measurement records, and
// lane 0's reconstruction is cross-checked against ReadBits every block.

// Batchable reports whether the circuit can run in batched-shot mode:
// outcome-independent control flow (no conditioned operations) and every
// classical bit measured at most once.
func Batchable(c *circuit.Circuit) bool {
	seen := make(map[int]bool)
	for _, op := range c.Ops {
		if op.Cond != nil {
			return false
		}
		if op.Kind == circuit.Measure {
			if op.CBit < 0 || seen[op.CBit] {
				return false
			}
			seen[op.CBit] = true
		}
	}
	return true
}

// measureOrder maps each controller to the classical bits its measurement
// commits write, in program order: commits from one controller happen in
// program order, so the k-th BatchMeas record with Node == n writes
// measureOrder[n][k].
func measureOrder(c *circuit.Circuit, cp *compiler.Compiled) map[int][]int {
	order := make(map[int][]int)
	for _, op := range c.Ops {
		if op.Kind == circuit.Measure {
			owner := cp.BitOwner[op.CBit]
			order[owner] = append(order[owner], op.CBit)
		}
	}
	return order
}

// laneBits reconstructs every lane's classical bits from the chip's
// per-lane measurement records.
func laneBits(m *machine.Machine, order map[int][]int, numBits int) ([][]int, error) {
	lanes := m.Lanes()
	bits := make([][]int, lanes)
	for l := range bits {
		bits[l] = make([]int, numBits)
	}
	taken := make(map[int]int, len(order))
	for _, rec := range m.BatchMeas() {
		k := taken[rec.Node]
		cbits := order[rec.Node]
		if k >= len(cbits) {
			return nil, fmt.Errorf("runner: controller %d committed %d measurements, program lowers %d", rec.Node, k+1, len(cbits))
		}
		taken[rec.Node] = k + 1
		cb := cbits[k]
		for l, out := range rec.Outcomes {
			bits[l][cb] = out
		}
	}
	return bits, nil
}

// RunBatched compiles the spec once and executes `shots` repetitions in
// blocks of `lanes` on a single lane-structured replica. Shot k runs with
// seed machine.DeriveSeed(base, k) exactly as in Run, so the merged
// ShotSet is byte-identical to the unbatched path; the package tests
// verify this shot-for-shot across backends. Circuits that are not
// Batchable are rejected — callers decide the fallback (plain Run).
func RunBatched(spec Spec, shots, lanes int) (*ShotSet, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("runner: nil circuit")
	}
	if shots < 0 {
		return nil, fmt.Errorf("runner: negative shot count %d", shots)
	}
	if lanes <= 1 {
		return Run(spec, shots, 1)
	}
	if !Batchable(spec.Circuit) {
		return nil, fmt.Errorf("runner: circuit is not batchable (feed-forward or re-measured bit)")
	}
	set := &ShotSet{Shots: make([]Shot, shots), NumBits: spec.Circuit.NumBits}
	if shots == 0 {
		return set, nil
	}
	spec.Cfg.ShotLanes = lanes
	m, cp, err := build(spec, nil, false)
	if err != nil {
		return nil, err
	}
	order := measureOrder(spec.Circuit, cp)
	numBits := len(cp.BitOwner)
	base := spec.Cfg.Seed
	seeds := make([]int64, lanes)
	for k0 := 0; k0 < shots; k0 += lanes {
		for l := range seeds {
			seeds[l] = machine.DeriveSeed(base, k0+l)
		}
		if err := m.ResetBatch(seeds); err != nil {
			return nil, err
		}
		res, err := m.Run()
		if err != nil {
			return nil, fmt.Errorf("runner: block at shot %d: %w", k0, err)
		}
		bits, err := laneBits(m, order, numBits)
		if err != nil {
			return nil, err
		}
		// Lane 0 also flowed through the result FIFOs into controller
		// memory; the architectural readout must agree with the chip-side
		// reconstruction, or the program-order assumption broke.
		mem, err := m.ReadBits()
		if err != nil {
			return nil, err
		}
		for b := range mem {
			if mem[b] != bits[0][b] {
				return nil, fmt.Errorf("runner: lane-0 bit %d mismatch: memory %d, chip records %d", b, mem[b], bits[0][b])
			}
		}
		for l := 0; l < lanes && k0+l < shots; l++ {
			set.Shots[k0+l] = Shot{Index: k0 + l, Seed: seeds[l], Result: res, Bits: bits[l]}
		}
	}
	return set, nil
}
