// Package fidelity estimates program infidelity from execution time and
// qubit coherence, the metric of the paper's Figure 16: longer control
// timelines expose qubits to more decoherence, so the synchronization
// scheme's latency directly costs fidelity.
package fidelity

import (
	"math"

	"dhisq/internal/sim"
)

// Coherence describes qubit decay times in nanoseconds. The paper sweeps
// T1 (= T2 in its setup) from 30 µs to 300 µs.
type Coherence struct {
	T1 float64 // energy relaxation, ns
	T2 float64 // dephasing, ns (<= 2*T1)
}

// Microseconds builds a Coherence with T1 = T2 = t µs, the Fig. 16 setting.
func Microseconds(t float64) Coherence {
	return Coherence{T1: t * 1000, T2: t * 1000}
}

// SurvivalProbability returns the probability that one qubit retains its
// state over t cycles: the product of the T1 and pure-dephasing channels'
// fidelity proxies exp(-t/T1)·exp(-t/Tphi), with 1/Tphi = 1/T2 - 1/(2 T1).
func (c Coherence) SurvivalProbability(t sim.Time) float64 {
	ns := float64(sim.Nanoseconds(t))
	if ns <= 0 {
		return 1
	}
	gamma := 1 / c.T1
	if c.T2 > 0 {
		phi := 1/c.T2 - 1/(2*c.T1)
		if phi > 0 {
			gamma += phi
		}
	}
	return math.Exp(-ns * gamma)
}

// ProgramInfidelity estimates 1 - F for a program holding `qubits` active
// qubits live for `makespan` cycles. Every active qubit decoheres for the
// full program duration — the conservative model matching the paper's
// argument that execution-time overhead "dampens program fidelity" (§2.1.2).
func ProgramInfidelity(makespan sim.Time, qubits int, c Coherence) float64 {
	if qubits <= 0 {
		return 0
	}
	p := c.SurvivalProbability(makespan)
	return 1 - math.Pow(p, float64(qubits))
}

// ReductionRatio is baselineInfidelity / bispInfidelity, the Fig. 16 series
// (~5x in the paper).
func ReductionRatio(bisp, base float64) float64 {
	if bisp <= 0 {
		return math.Inf(1)
	}
	return base / bisp
}
