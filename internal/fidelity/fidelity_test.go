package fidelity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSurvivalProbability(t *testing.T) {
	c := Microseconds(30) // T1 = T2 = 30 us
	// Effective rate: 1/T1 + (1/T2 - 1/(2 T1)) = 1.5/T1.
	tCycles := int64(30_000 / 4) // exactly T1 worth of wall time
	got := c.SurvivalProbability(tCycles)
	want := math.Exp(-1.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("survival = %g, want %g", got, want)
	}
	if c.SurvivalProbability(0) != 1 {
		t.Fatal("zero time must not decay")
	}
}

func TestProgramInfidelityMonotone(t *testing.T) {
	c := Microseconds(100)
	a := ProgramInfidelity(1000, 4, c)
	b := ProgramInfidelity(2000, 4, c)
	d := ProgramInfidelity(1000, 8, c)
	if !(a < b && a < d) {
		t.Fatalf("infidelity not monotone: %g %g %g", a, b, d)
	}
	if ProgramInfidelity(1000, 0, c) != 0 {
		t.Fatal("zero qubits must have zero infidelity")
	}
}

func TestLinearRegimeRatio(t *testing.T) {
	// For small exposure, infidelity ratio tracks the makespan ratio.
	c := Microseconds(300)
	bisp := ProgramInfidelity(500, 1, c)
	lock := ProgramInfidelity(2000, 1, c)
	ratio := ReductionRatio(bisp, lock)
	if math.Abs(ratio-4) > 0.1 {
		t.Fatalf("linear-regime ratio = %g, want ~4", ratio)
	}
}

func TestReductionRatioEdge(t *testing.T) {
	if !math.IsInf(ReductionRatio(0, 0.5), 1) {
		t.Fatal("zero denominator should be +Inf")
	}
}

func TestSurvivalMonotoneProperty(t *testing.T) {
	// Property: longer exposure and shorter T1 never increase survival.
	f := func(t1 uint16, dt uint16) bool {
		c1 := Microseconds(float64(t1%300) + 1)
		c2 := Microseconds(float64(t1%300) + 50)
		tt := int64(dt)
		return c1.SurvivalProbability(tt) <= c2.SurvivalProbability(tt)+1e-12 &&
			c1.SurvivalProbability(tt+100) <= c1.SurvivalProbability(tt)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
