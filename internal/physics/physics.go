// Package physics models one superconducting qubit at the pulse level: a
// two-level system with Bloch-vector dynamics under detuned Rabi drive and
// T1/T2 decay, plus an IQ readout chain with feedline interference. It backs
// the calibration experiments of Figure 11: the same HISQ core that drives
// the benchmark chip model drives this device through codeword tables, which
// is exactly the adaptability argument of §6.1 — identical digital hardware,
// different analog binding.
package physics

import (
	"math"
	"math/rand"

	"dhisq/internal/sim"
)

// Qubit is the modeled device-under-calibration.
type Qubit struct {
	FreqGHz    float64 // qubit transition frequency
	T1ns       float64 // relaxation time
	T2ns       float64 // dephasing time
	ReadoutAmp float64 // IQ signal radius
	Noise      float64 // IQ additive noise sigma

	// Interference models the "small but non-negligible interference from
	// adjacent qubits coupled to the same feedline" that distorts the
	// Fig. 11(a) circle: a 3rd-harmonic ripple of this relative amplitude.
	Interference float64

	// Bloch vector (x, y, z); |0> is z=+1.
	X, Y, Z float64

	lastTouch sim.Time
	rng       *rand.Rand
}

// NewQubit returns a rested qubit in |0> with the paper's Fig. 11 values:
// 4.62 GHz transition, T1 = 9.9 µs.
func NewQubit(seed int64) *Qubit {
	return &Qubit{
		FreqGHz:      4.62,
		T1ns:         9900,
		T2ns:         7000,
		ReadoutAmp:   1.0,
		Noise:        0.01,
		Interference: 0.06,
		Z:            1,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Reset returns the qubit to |0> at time t.
func (q *Qubit) Reset(t sim.Time) {
	q.X, q.Y, q.Z = 0, 0, 1
	q.lastTouch = t
}

// P1 is the excited-state population.
func (q *Qubit) P1() float64 { return (1 - q.Z) / 2 }

// decayTo applies T1/T2 damping for the idle period up to time t.
func (q *Qubit) decayTo(t sim.Time) {
	dt := float64(sim.Nanoseconds(t - q.lastTouch))
	if dt > 0 {
		e1 := math.Exp(-dt / q.T1ns)
		e2 := math.Exp(-dt / q.T2ns)
		q.X *= e2
		q.Y *= e2
		q.Z = 1 - (1-q.Z)*e1
	}
	q.lastTouch = t
}

// Drive applies a resonant-frame pulse at time t: drive frequency fGHz,
// Rabi rate rabiGHz (proportional to amplitude), phase phi, and the given
// duration in cycles. The Bloch vector rotates about the axis
// (Ω cos φ, Ω sin φ, Δ) by angle √(Ω²+Δ²)·duration — the textbook detuned
// Rabi evolution producing the Fig. 11(b) spectroscopy line and the
// Fig. 11(c) oscillation.
func (q *Qubit) Drive(t sim.Time, fGHz, rabiGHz, phi float64, durCycles sim.Time) {
	q.decayTo(t)
	durNs := float64(sim.Nanoseconds(durCycles))
	delta := 2 * math.Pi * (fGHz - q.FreqGHz)
	omega := 2 * math.Pi * rabiGHz
	ax, ay, az := omega*math.Cos(phi), omega*math.Sin(phi), delta
	norm := math.Sqrt(ax*ax + ay*ay + az*az)
	if norm > 1e-15 {
		q.rotate(ax/norm, ay/norm, az/norm, norm*durNs)
	}
	q.lastTouch = t + durCycles
}

// rotate applies a Bloch rotation about unit axis (ux,uy,uz) by angle theta
// (Rodrigues' formula).
func (q *Qubit) rotate(ux, uy, uz, theta float64) {
	c, s := math.Cos(theta), math.Sin(theta)
	x, y, z := q.X, q.Y, q.Z
	dot := ux*x + uy*y + uz*z
	q.X = x*c + (uy*z-uz*y)*s + ux*dot*(1-c)
	q.Y = y*c + (uz*x-ux*z)*s + uy*dot*(1-c)
	q.Z = z*c + (ux*y-uy*x)*s + uz*dot*(1-c)
}

// IQPoint is one demodulated, integrated readout sample.
type IQPoint struct {
	I, Q float64
}

// Readout measures the qubit at time t with a readout pulse of the given
// phase: it returns the discriminated bit (projective) and the IQ sample.
// The IQ response rotates with the excitation pulse phase — sweeping it
// draws the Fig. 11(a) circle — and carries the feedline interference
// ripple plus Gaussian noise.
func (q *Qubit) Readout(t sim.Time, phase float64, durCycles sim.Time) (int, IQPoint) {
	q.decayTo(t)
	outcome := 0
	if q.rng.Float64() < q.P1() {
		outcome = 1
	}
	// Projective collapse.
	q.X, q.Y = 0, 0
	if outcome == 1 {
		q.Z = -1
	} else {
		q.Z = 1
	}
	q.lastTouch = t + durCycles
	r := q.ReadoutAmp * (1 + q.Interference*math.Cos(3*phase+0.7))
	if outcome == 1 {
		r *= 0.55 // dispersive shift moves the |1> blob inward
	}
	pt := IQPoint{
		I: r*math.Cos(phase) + q.rng.NormFloat64()*q.Noise,
		Q: r*math.Sin(phase) + q.rng.NormFloat64()*q.Noise,
	}
	return outcome, pt
}
