package physics

import (
	"math"
	"testing"

	"dhisq/internal/sim"
)

func TestResonantPiPulseFlips(t *testing.T) {
	q := NewQubit(1)
	q.T1ns, q.T2ns = 1e12, 1e12 // disable decay for the algebra check
	// Rabi rate such that 2*pi*rabi*t = pi over 20 ns.
	rabi := 1.0 / (2 * 20.0)
	q.Drive(0, q.FreqGHz, rabi, 0, sim.Cycles(20))
	if math.Abs(q.P1()-1) > 1e-9 {
		t.Fatalf("P1 after pi pulse = %g", q.P1())
	}
	// A second pi pulse returns to |0>.
	q.Drive(100, q.FreqGHz, rabi, 0, sim.Cycles(20))
	if math.Abs(q.P1()) > 1e-9 {
		t.Fatalf("P1 after 2pi = %g", q.P1())
	}
}

func TestDetunedDriveSuppressed(t *testing.T) {
	q := NewQubit(2)
	q.T1ns, q.T2ns = 1e12, 1e12
	rabi := 1.0 / (2 * 20.0)
	q.Drive(0, q.FreqGHz+0.5, rabi, 0, sim.Cycles(20)) // 500 MHz detuned
	if q.P1() > 0.05 {
		t.Fatalf("far-detuned drive excited P1 = %g", q.P1())
	}
}

func TestSpectroscopyLineShape(t *testing.T) {
	// P1 peaks at resonance and falls off symmetrically.
	probe := func(f float64) float64 {
		q := NewQubit(3)
		q.T1ns, q.T2ns = 1e12, 1e12
		q.Drive(0, f, 0.02, 0, sim.Cycles(20))
		return q.P1()
	}
	center := probe(4.62)
	off := probe(4.70)
	if center < 0.5 || off > center/2 {
		t.Fatalf("line shape wrong: center %g, off %g", center, off)
	}
}

func TestT1DecayBetweenOps(t *testing.T) {
	q := NewQubit(4)
	q.X, q.Y, q.Z = 0, 0, -1 // |1>
	q.lastTouch = 0
	q.decayTo(sim.Cycles(9900)) // one T1
	want := 1 / math.E
	if math.Abs(q.P1()-want) > 1e-6 {
		t.Fatalf("P1 after T1 = %g, want %g", q.P1(), want)
	}
}

func TestReadoutCollapsesAndDiscriminates(t *testing.T) {
	ones := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		q := NewQubit(int64(i))
		q.T1ns, q.T2ns = 1e12, 1e12
		rabi := 1.0 / (2 * 20.0)
		q.Drive(0, q.FreqGHz, rabi/2, 0, sim.Cycles(20)) // pi/2: P1 = 0.5
		bit, _ := q.Readout(50, 0, 75)
		ones += bit
		// Post-measurement state is the eigenstate.
		if bit == 1 && math.Abs(q.P1()-1) > 1e-9 {
			t.Fatal("collapse to |1> failed")
		}
		if bit == 0 && math.Abs(q.P1()) > 1e-9 {
			t.Fatal("collapse to |0> failed")
		}
	}
	frac := float64(ones) / trials
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("pi/2 readout bias: %g", frac)
	}
}

func TestReadoutIQGeometry(t *testing.T) {
	q := NewQubit(7)
	q.Noise = 0
	q.Interference = 0
	_, p0 := q.Readout(0, 0, 75)
	q.Reset(1000)
	_, p90 := q.Readout(2000, math.Pi/2, 75)
	if math.Abs(p0.I-1) > 1e-6 || math.Abs(p0.Q) > 1e-6 {
		t.Fatalf("phase 0 point: %+v", p0)
	}
	if math.Abs(p90.Q-1) > 1e-6 || math.Abs(p90.I) > 1e-6 {
		t.Fatalf("phase 90 point: %+v", p90)
	}
}

func TestDeviceTableBinding(t *testing.T) {
	q := NewQubit(9)
	dev := NewDevice(q, 80)
	rabi := 1.0 / (2 * 20.0)
	piCW := dev.AddPulse(Pulse{Kind: PulseDrive, Freq: q.FreqGHz, Rabi: rabi, Dur: sim.Cycles(20)})
	roCW := dev.AddPulse(Pulse{Kind: PulseReadout, Dur: 75})
	var got []uint32
	dev.SetDelivery(func(node, ch int, val uint32, at sim.Time) { got = append(got, val) })

	dev.Commit(0, 0, piCW, 0)
	dev.Commit(0, 2, roCW, 100)
	if len(dev.Errs) != 0 {
		t.Fatalf("device errors: %v", dev.Errs)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("discriminated bits = %v, want [1]", got)
	}
	if len(dev.IQ) != 1 {
		t.Fatalf("IQ samples = %d", len(dev.IQ))
	}
	// Unknown codeword is an error, not a panic.
	dev.Commit(0, 0, 99, 200)
	if len(dev.Errs) == 0 {
		t.Fatal("expected table-range error")
	}
}
