package physics

import (
	"fmt"

	"dhisq/internal/sim"
)

// PulseKind classifies the analog action a codeword triggers on this device.
type PulseKind uint8

const (
	PulseInvalid PulseKind = iota
	PulseDrive             // microwave drive: Freq, Rabi, Phase, Dur
	PulseReadout           // measurement excitation + acquisition: Phase, Dur
	PulseReset             // active qubit reset to |0>
)

// Pulse is one waveform-table entry of the calibration device — the analog
// half of the codeword binding (cf. §3.1.2: "a codeword can correspond to
// triggering a Gaussian pulse, setting the frequency of the NCO, or any
// hardware action").
type Pulse struct {
	Kind  PulseKind
	Freq  float64  // GHz (drive)
	Rabi  float64  // GHz Rabi rate at this amplitude (drive)
	Phase float64  // radians
	Dur   sim.Time // cycles
}

// Device is the pulse-level analog model of one AWG+readout chain driving a
// single qubit. It implements core.CWSink: codeword k (1-based) triggers
// Table[k-1]. Discriminated readout bits go back to the controller through
// deliver (wired to PushResult), and raw IQ samples accumulate for the host.
type Device struct {
	Qubit   *Qubit
	Table   []Pulse
	deliver func(node, ch int, val uint32, at sim.Time)

	// MeasLatency is trigger-to-result availability in cycles.
	MeasLatency sim.Time

	IQ   []IQPoint
	Bits []int
	Errs []error
}

// NewDevice wraps a qubit with an empty waveform table.
func NewDevice(q *Qubit, measLatency sim.Time) *Device {
	return &Device{Qubit: q, MeasLatency: measLatency}
}

// SetDelivery installs the result path back to the controller.
func (d *Device) SetDelivery(f func(node, ch int, val uint32, at sim.Time)) { d.deliver = f }

// AddPulse appends a waveform-table entry and returns its codeword value.
func (d *Device) AddPulse(p Pulse) uint32 {
	d.Table = append(d.Table, p)
	return uint32(len(d.Table))
}

// Commit implements core.CWSink.
func (d *Device) Commit(node, port int, cw uint32, at sim.Time) {
	idx := int(cw) - 1
	if idx < 0 || idx >= len(d.Table) {
		d.Errs = append(d.Errs, fmt.Errorf("physics: codeword %d outside waveform table", cw))
		return
	}
	p := d.Table[idx]
	switch p.Kind {
	case PulseDrive:
		d.Qubit.Drive(at, p.Freq, p.Rabi, p.Phase, p.Dur)
	case PulseReset:
		d.Qubit.Reset(at)
	case PulseReadout:
		bit, iq := d.Qubit.Readout(at, p.Phase, p.Dur)
		d.IQ = append(d.IQ, iq)
		d.Bits = append(d.Bits, bit)
		if d.deliver != nil {
			d.deliver(node, 0, uint32(bit), at+d.MeasLatency)
		}
	default:
		d.Errs = append(d.Errs, fmt.Errorf("physics: invalid pulse kind for codeword %d", cw))
	}
}
