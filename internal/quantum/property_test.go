package quantum

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The kernel-oracle property tests: randomized circuits over every gate
// kind × qubit count × seed, executed through both the rewritten kernels
// and the retained reference kernels, must produce identical amplitudes
// and identical measurement outcomes. "Identical" is float equality
// (==): the rewritten kernels perform the same per-amplitude arithmetic
// in the same order, so nothing weaker would hide a real divergence.
// Only explicit fusion (Fuse/ApplyMat1 chains) reassociates arithmetic
// and is compared with an epsilon.

// refOp mirrors one State operation onto a shadow state via the Ref
// kernels.
type refOp func(s *State, ref *State, sRng, refRng *rand.Rand)

// randOp draws a random gate application over n qubits.
func randOp(rng *rand.Rand, n int) refOp {
	q := rng.Intn(n)
	p := q
	if n > 1 {
		for p == q {
			p = rng.Intn(n)
		}
	}
	theta := (rng.Float64() - 0.5) * 4 * math.Pi
	kinds := 16
	if n == 1 { // two-qubit cases (12..15) need a distinct partner
		kinds = 12
	}
	switch rng.Intn(kinds) {
	case 0:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.H(q)
			RefApply1(ref, q, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
		}
	case 1:
		return func(s, ref *State, _, _ *rand.Rand) { s.X(q); RefApply1(ref, q, 0, 1, 1, 0) }
	case 2:
		return func(s, ref *State, _, _ *rand.Rand) { s.Y(q); RefApply1(ref, q, 0, -1i, 1i, 0) }
	case 3:
		return func(s, ref *State, _, _ *rand.Rand) { s.Z(q); RefApply1(ref, q, 1, 0, 0, -1) }
	case 4:
		return func(s, ref *State, _, _ *rand.Rand) { s.S(q); RefApply1(ref, q, 1, 0, 0, 1i) }
	case 5:
		return func(s, ref *State, _, _ *rand.Rand) { s.Sdg(q); RefApply1(ref, q, 1, 0, 0, -1i) }
	case 6:
		return func(s, ref *State, _, _ *rand.Rand) { s.T(q); RefApply1(ref, q, MatT.A, MatT.B, MatT.C, MatT.D) }
	case 7:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.Tdg(q)
			RefApply1(ref, q, MatTdg.A, MatTdg.B, MatTdg.C, MatTdg.D)
		}
	case 8:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.RX(q, theta)
			m := MatRX(theta)
			RefApply1(ref, q, m.A, m.B, m.C, m.D)
		}
	case 9:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.RY(q, theta)
			m := MatRY(theta)
			RefApply1(ref, q, m.A, m.B, m.C, m.D)
		}
	case 10:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.RZ(q, theta)
			m := MatRZ(theta)
			RefApply1(ref, q, m.A, m.B, m.C, m.D)
		}
	case 11:
		return func(s, ref *State, _, _ *rand.Rand) {
			s.Phase(q, theta)
			m := MatPhase(theta)
			RefApply1(ref, q, m.A, m.B, m.C, m.D)
		}
	case 12:
		return func(s, ref *State, _, _ *rand.Rand) { s.CNOT(q, p); RefCNOT(ref, q, p) }
	case 13:
		return func(s, ref *State, _, _ *rand.Rand) { s.CZ(q, p); RefCZ(ref, q, p) }
	case 14:
		return func(s, ref *State, _, _ *rand.Rand) { s.CPhase(q, p, theta); RefCPhase(ref, q, p, theta) }
	default:
		return func(s, ref *State, _, _ *rand.Rand) { s.SWAP(q, p); RefSWAP(ref, q, p) }
	}
}

// sameAmps requires exact (==) amplitude agreement.
func sameAmps(t *testing.T, s, ref *State, ctx string) {
	t.Helper()
	for i := range s.amp {
		if s.amp[i] != ref.amp[i] {
			t.Fatalf("%s: amplitude %d diverged: new %v vs ref %v", ctx, i, s.amp[i], ref.amp[i])
		}
	}
}

func runRandomCircuit(t *testing.T, n, ops int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, ref := NewState(n), NewState(n)
	sRng := rand.New(rand.NewSource(seed * 7))
	refRng := rand.New(rand.NewSource(seed * 7))
	for k := 0; k < ops; k++ {
		randOp(rng, n)(s, ref, sRng, refRng)
		// Interleave measurements sparsely so collapse paths are hit
		// mid-circuit, with both sides drawing from twinned rngs.
		if rng.Intn(11) == 0 {
			q := rng.Intn(n)
			got := s.Measure(q, sRng)
			want := RefMeasure(ref, q, refRng)
			if got != want {
				t.Fatalf("n=%d seed=%d op %d: Measure(%d) = %d, ref %d", n, seed, k, q, got, want)
			}
		}
	}
	sameAmps(t, s, ref, fmt.Sprintf("n=%d seed=%d", n, seed))
	for q := 0; q < n; q++ {
		if got, want := s.Prob(q), RefProb(ref, q); got != want {
			t.Fatalf("n=%d seed=%d: Prob(%d) = %v, ref %v", n, seed, q, got, want)
		}
	}
}

// TestKernelOracleRandomCircuits is the main equivalence property: all
// gate kinds × qubit counts × seeds, serial paths.
func TestKernelOracleRandomCircuits(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 10} {
		for seed := int64(1); seed <= 6; seed++ {
			runRandomCircuit(t, n, 120, seed)
		}
	}
}

// TestKernelOracleParallelForced reruns the property with the parallel
// apply path forced on (threshold 1, several workers), so -race sweeps
// the goroutine fan-out and the result stays bit-identical to serial.
func TestKernelOracleParallelForced(t *testing.T) {
	defer setParallel(1, 4)()
	for _, n := range []int{2, 5, 8, 10} {
		for seed := int64(1); seed <= 4; seed++ {
			runRandomCircuit(t, n, 100, seed+100)
		}
	}
}

// TestParallelMatchesSerial applies the same gate sequence once serially
// and once with the parallel path forced, requiring exact agreement.
func TestParallelMatchesSerial(t *testing.T) {
	build := func() *State {
		s := NewState(9)
		rng := rand.New(rand.NewSource(42))
		mRng := rand.New(rand.NewSource(43))
		for k := 0; k < 200; k++ {
			randOp(rng, 9)(s, s.Clone(), mRng, mRng) // shadow discarded; drives s only
		}
		return s
	}
	serial := build()
	restore := setParallel(1, 8)
	parallel := build()
	restore()
	sameAmps(t, parallel, serial, "parallel vs serial")
}

// TestProjectMatchesReference covers the public Project fast path.
func TestProjectMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, ref := NewState(6), NewState(6)
		for k := 0; k < 40; k++ {
			randOp(rng, 6)(s, ref, nil, nil)
		}
		q := rng.Intn(6)
		p1 := s.Prob(q)
		outcome := 0
		if p1 > 0.5 {
			outcome = 1
		}
		s.Project(q, outcome)
		RefProject(ref, q, outcome)
		sameAmps(t, s, ref, fmt.Sprintf("project seed=%d", seed))
	}
}

// TestFusedChainMatchesSequential checks gate fusion against sequential
// application to rounding error (fusion reassociates arithmetic, so
// exact equality is not expected).
func TestFusedChainMatchesSequential(t *testing.T) {
	chains := [][]Mat2{
		{MatH, MatT, MatH, MatS},
		{MatX, MatH, MatZ, MatTdg, MatH},
		{MatRX(0.3), MatRY(1.1), MatRZ(-0.7), MatPhase(2.2)},
		{MatH, MatH}, // composes to identity up to rounding
	}
	for ci, chain := range chains {
		seq, fused := NewState(5), NewState(5)
		rng := rand.New(rand.NewSource(int64(ci + 1)))
		for k := 0; k < 30; k++ {
			op := randOp(rng, 5)
			op(seq, fused, nil, nil) // note: applies new kernels to seq, ref kernels to fused
		}
		q := ci % 5
		for _, m := range chain {
			seq.ApplyMat1(q, m)
		}
		fused.ApplyMat1(q, Fuse(chain...))
		for i := range seq.amp {
			if d := cabs(seq.amp[i] - fused.amp[i]); d > 1e-12 {
				t.Fatalf("chain %d: amplitude %d off by %g", ci, i, d)
			}
		}
	}
}

func cabs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}

// TestSwapMatchesThreeCNOT pins the one-pass SWAP to the legacy
// decomposition exactly (both are permutations).
func TestSwapMatchesThreeCNOT(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, ref := NewState(7), NewState(7)
		for k := 0; k < 60; k++ {
			randOp(rng, 7)(s, ref, nil, nil)
		}
		for trial := 0; trial < 10; trial++ {
			a, b := rng.Intn(7), rng.Intn(7)
			if a == b {
				continue
			}
			s.SWAP(a, b)
			RefSWAP(ref, a, b)
		}
		sameAmps(t, s, ref, fmt.Sprintf("swap seed=%d", seed))
	}
}
