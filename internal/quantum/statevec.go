// Package quantum implements a dense state-vector simulator. It is the
// semantic ground truth for small circuits: integration tests compare the
// measurement statistics of programs executed through the full
// Distributed-HISQ stack (compiler → HISQ binaries → controllers → chip
// model) against direct simulation here.
//
// The kernels are written for throughput (DESIGN.md §9): single-qubit
// gates iterate pair blocks branch-free (outer stride 2^(q+1), inner run
// 2^q) instead of testing the qubit bit of every index, diagonal gates
// (Z/S/T/RZ/Phase/CZ/CPhase) scale amplitudes in place without loading
// pair partners, measurement is fused into two passes (one probability
// pass that accumulates both outcome weights, one combined
// collapse+renormalize pass), and large states fan element-wise kernels
// out across goroutines with a deterministic index-range partition. The
// pre-optimization kernels are retained verbatim in reference.go as the
// oracle the property tests and the kernels benchmark compare against.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds dense simulation; 2^26 amplitudes is ~1 GiB.
const MaxQubits = 26

// State is an n-qubit pure state. Qubit 0 is the least significant bit of
// the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> on n qubits.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Reset returns the state to |0...0> in place, reusing the amplitude array.
func (s *State) Reset() {
	forSpan(len(s.amp), 1, func(lo, hi int) {
		amp := s.amp[lo:hi]
		for i := range amp {
			amp[i] = 0
		}
	})
	s.amp[0] = 1
}

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 { return s.amp[idx] }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

func (s *State) check(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range (n=%d)", q, s.n))
	}
}

// Apply1 applies the 2x2 unitary {{a,b},{c,d}} to qubit q. Diagonal
// matrices take the scaling-only fast path; general matrices walk
// amplitude-pair blocks branch-free. Per-amplitude arithmetic is the same
// multiply-add sequence as the reference kernel, so results are
// bit-identical to RefApply1 (modulo the sign of zero terms the reference
// materializes by multiplying by a zero coefficient).
func (s *State) Apply1(q int, a, b, c, d complex128) {
	s.check(q)
	if b == 0 && c == 0 {
		s.applyDiag1(q, a, d)
		return
	}
	h := 1 << uint(q)
	amp := s.amp
	forSpan(len(amp), 2*h, func(lo, hi int) {
		for base := lo; base < hi; base += 2 * h {
			p0 := amp[base : base+h : base+h]
			p1 := amp[base+h : base+2*h : base+2*h]
			for i := range p0 {
				a0, a1 := p0[i], p1[i]
				p0[i] = a*a0 + b*a1
				p1[i] = c*a0 + d*a1
			}
		}
	})
}

// applyDiag1 applies diag(d0, d1) to qubit q: pure scaling, no pair loads.
func (s *State) applyDiag1(q int, d0, d1 complex128) {
	h := 1 << uint(q)
	amp := s.amp
	switch {
	case d0 == 1 && d1 == -1: // Z: negation beats a full complex multiply
		forSpan(len(amp), 2*h, func(lo, hi int) {
			for base := lo; base < hi; base += 2 * h {
				p1 := amp[base+h : base+2*h]
				for i := range p1 {
					p1[i] = -p1[i]
				}
			}
		})
	case d0 == 1:
		forSpan(len(amp), 2*h, func(lo, hi int) {
			for base := lo; base < hi; base += 2 * h {
				p1 := amp[base+h : base+2*h]
				for i := range p1 {
					p1[i] *= d1
				}
			}
		})
	default:
		forSpan(len(amp), 2*h, func(lo, hi int) {
			for base := lo; base < hi; base += 2 * h {
				p0 := amp[base : base+h : base+h]
				p1 := amp[base+h : base+2*h : base+2*h]
				for i := range p0 {
					p0[i] *= d0
					p1[i] *= d1
				}
			}
		})
	}
}

var invSqrt2 = complex(1/math.Sqrt2, 0)

// H applies a Hadamard.
func (s *State) H(q int) { s.Apply1(q, invSqrt2, invSqrt2, invSqrt2, -invSqrt2) }

// X applies a Pauli X.
func (s *State) X(q int) { s.Apply1(q, 0, 1, 1, 0) }

// Y applies a Pauli Y.
func (s *State) Y(q int) { s.Apply1(q, 0, -1i, 1i, 0) }

// Z applies a Pauli Z.
func (s *State) Z(q int) { s.Apply1(q, 1, 0, 0, -1) }

// S applies the phase gate diag(1, i).
func (s *State) S(q int) { s.Apply1(q, 1, 0, 0, 1i) }

// Sdg applies S†.
func (s *State) Sdg(q int) { s.Apply1(q, 1, 0, 0, -1i) }

// T applies diag(1, e^{iπ/4}).
func (s *State) T(q int) { s.Apply1(q, 1, 0, 0, cmplx.Exp(1i*math.Pi/4)) }

// Tdg applies T†.
func (s *State) Tdg(q int) { s.Apply1(q, 1, 0, 0, cmplx.Exp(-1i*math.Pi/4)) }

// RX rotates about X by theta.
func (s *State) RX(q int, theta float64) {
	c, sn := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
	s.Apply1(q, c, sn, sn, c)
}

// RY rotates about Y by theta.
func (s *State) RY(q int, theta float64) {
	c, sn := math.Cos(theta/2), math.Sin(theta/2)
	s.Apply1(q, complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0))
}

// RZ rotates about Z by theta.
func (s *State) RZ(q int, theta float64) {
	s.Apply1(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

// Phase applies diag(1, e^{iθ}) — the controlled-phase building block of QFT.
func (s *State) Phase(q int, theta float64) {
	s.Apply1(q, 1, 0, 0, cmplx.Exp(complex(0, theta)))
}

// CNOT applies a controlled-X with the given control and target. The
// iteration visits only indices with the control bit set and the target
// bit clear, swapping contiguous runs with their target-set partners.
func (s *State) CNOT(ctrl, tgt int) {
	s.check(ctrl)
	s.check(tgt)
	if ctrl == tgt {
		panic("quantum: cnot with ctrl == tgt")
	}
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	amp := s.amp
	if ctrl > tgt {
		forSpan(len(amp), 2*cb, func(lo, hi int) {
			for base := lo + cb; base < hi; base += 2 * cb {
				for j := base; j < base+cb; j += 2 * tb {
					p0 := amp[j : j+tb : j+tb]
					p1 := amp[j+tb : j+2*tb : j+2*tb]
					for i := range p0 {
						p0[i], p1[i] = p1[i], p0[i]
					}
				}
			}
		})
		return
	}
	forSpan(len(amp), 2*tb, func(lo, hi int) {
		for base := lo; base < hi; base += 2 * tb {
			for j := base + cb; j < base+tb; j += 2 * cb {
				p0 := amp[j : j+cb : j+cb]
				p1 := amp[j+tb : j+tb+cb : j+tb+cb]
				for i := range p0 {
					p0[i], p1[i] = p1[i], p0[i]
				}
			}
		}
	})
}

// CZ applies a controlled-Z (symmetric): a pure negation of the quarter of
// the amplitudes with both bits set, visited directly.
func (s *State) CZ(a, b int) {
	s.check(a)
	s.check(b)
	if a == b {
		panic("quantum: cz with a == b")
	}
	hb, lb := 1<<uint(a), 1<<uint(b)
	if hb < lb {
		hb, lb = lb, hb
	}
	amp := s.amp
	forSpan(len(amp), 2*hb, func(lo, hi int) {
		for base := lo + hb; base < hi; base += 2 * hb {
			for j := base + lb; j < base+hb; j += 2 * lb {
				seg := amp[j : j+lb]
				for i := range seg {
					seg[i] = -seg[i]
				}
			}
		}
	})
}

// CPhase applies a controlled phase rotation (QFT's primitive): a pure
// scaling of the both-bits-set quarter, visited directly.
func (s *State) CPhase(a, b int, theta float64) {
	s.check(a)
	s.check(b)
	if a == b {
		panic("quantum: cphase with a == b")
	}
	ph := cmplx.Exp(complex(0, theta))
	hb, lb := 1<<uint(a), 1<<uint(b)
	if hb < lb {
		hb, lb = lb, hb
	}
	amp := s.amp
	forSpan(len(amp), 2*hb, func(lo, hi int) {
		for base := lo + hb; base < hi; base += 2 * hb {
			for j := base + lb; j < base+hb; j += 2 * lb {
				seg := amp[j : j+lb]
				for i := range seg {
					seg[i] *= ph
				}
			}
		}
	})
}

// SWAP exchanges two qubits in a single pass: every amplitude whose bits
// at (a, b) are (1, 0) trades places with its (0, 1) partner. The legacy
// three-CNOT scan survives as RefSWAP; both are exact permutations, so
// the results are bit-identical.
func (s *State) SWAP(a, b int) {
	s.check(a)
	s.check(b)
	if a == b {
		panic("quantum: swap with a == b")
	}
	hb, lb := 1<<uint(a), 1<<uint(b)
	if hb < lb {
		hb, lb = lb, hb
	}
	amp := s.amp
	forSpan(len(amp), 2*hb, func(lo, hi int) {
		for base := lo + hb; base < hi; base += 2 * hb {
			for j := base; j < base+hb; j += 2 * lb {
				p0 := amp[j : j+lb : j+lb]                 // hb set, lb clear
				p1 := amp[j-hb+lb : j-hb+2*lb : j-hb+2*lb] // hb clear, lb set
				for i := range p0 {
					p0[i], p1[i] = p1[i], p0[i]
				}
			}
		}
	})
}

// Prob returns the probability of measuring qubit q as 1.
func (s *State) Prob(q int) float64 {
	s.check(q)
	_, p1 := s.probPair(q)
	return p1
}

// probPair accumulates both outcome weights in one pass. Each class is
// summed in ascending index order — the same order the reference kernels
// use — so p1 matches RefProb bit-for-bit and p0 matches the norm
// RefProject computes for outcome 0. Serial on purpose: splitting a
// floating-point reduction across goroutines would change the summation
// order and with it the last-ulp value the measurement draw compares
// against.
func (s *State) probPair(q int) (p0, p1 float64) {
	h := 1 << uint(q)
	amp := s.amp
	for base := 0; base < len(amp); base += 2 * h {
		for _, a := range amp[base : base+h] {
			p0 += real(a)*real(a) + imag(a)*imag(a)
		}
		for _, a := range amp[base+h : base+2*h] {
			p1 += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p0, p1
}

// Measure performs a projective Z measurement of qubit q using rng for the
// outcome draw, collapsing the state. It returns 0 or 1.
//
// Two passes total: probPair reads the state once for both outcome
// weights, then collapse zeroes the discarded branch and renormalizes the
// kept one in a single combined pass, reusing the already-computed weight
// as the norm instead of re-summing it (the reference path takes three
// passes: probability, zero+norm, scale).
func (s *State) Measure(q int, rng *rand.Rand) int {
	s.check(q)
	p0, p1 := s.probPair(q)
	outcome, norm := 0, p0
	if rng.Float64() < p1 {
		outcome, norm = 1, p1
	}
	s.collapse(q, outcome, norm)
	return outcome
}

// Project collapses qubit q to the given outcome and renormalizes. A
// zero-probability projection panics: it means the caller's outcome record
// diverged from the state, which is always a bug.
func (s *State) Project(q int, outcome int) {
	s.check(q)
	h := 1 << uint(q)
	amp := s.amp
	// One read-only pass over the kept half for the norm (ascending index
	// order, matching the reference), then the fused zero+scale pass.
	norm := 0.0
	off := 0
	if outcome == 1 {
		off = h
	}
	for base := off; base < len(amp); base += 2 * h {
		for _, a := range amp[base : base+h] {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	s.collapse(q, outcome, norm)
}

// collapse zeroes the discarded outcome branch and scales the kept one by
// 1/sqrt(norm) in a single pass.
func (s *State) collapse(q int, outcome int, norm float64) {
	if norm < 1e-12 {
		panic(fmt.Sprintf("quantum: projecting qubit %d to impossible outcome %d", q, outcome))
	}
	inv := complex(1/math.Sqrt(norm), 0)
	h := 1 << uint(q)
	amp := s.amp
	forSpan(len(amp), 2*h, func(lo, hi int) {
		for base := lo; base < hi; base += 2 * h {
			keep := amp[base+h : base+2*h : base+2*h]
			drop := amp[base : base+h : base+h]
			if outcome == 0 {
				keep, drop = drop, keep
			}
			for i := range keep {
				keep[i] *= inv
				drop[i] = 0
			}
		}
	})
}

// Fidelity returns |<s|o>|^2.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("quantum: fidelity of different-sized states")
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Probabilities returns the full basis distribution (for small-n tests).
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.amp))
	for i, a := range s.amp {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// Norm returns the state norm (should always be ~1).
func (s *State) Norm() float64 {
	p := 0.0
	for _, a := range s.amp {
		p += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(p)
}
