// Package quantum implements a dense state-vector simulator. It is the
// semantic ground truth for small circuits: integration tests compare the
// measurement statistics of programs executed through the full
// Distributed-HISQ stack (compiler → HISQ binaries → controllers → chip
// model) against direct simulation here.
package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// MaxQubits bounds dense simulation; 2^26 amplitudes is ~1 GiB.
const MaxQubits = 26

// State is an n-qubit pure state. Qubit 0 is the least significant bit of
// the basis index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns |0...0> on n qubits.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Reset returns the state to |0...0> in place, reusing the amplitude array.
func (s *State) Reset() {
	for i := range s.amp {
		s.amp[i] = 0
	}
	s.amp[0] = 1
}

// Amplitude returns the amplitude of basis state idx.
func (s *State) Amplitude(idx int) complex128 { return s.amp[idx] }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

func (s *State) check(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range (n=%d)", q, s.n))
	}
}

// Apply1 applies the 2x2 unitary {{a,b},{c,d}} to qubit q.
func (s *State) Apply1(q int, a, b, c, d complex128) {
	s.check(q)
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit == 0 {
			j := i | bit
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = a*a0 + b*a1
			s.amp[j] = c*a0 + d*a1
		}
	}
}

var invSqrt2 = complex(1/math.Sqrt2, 0)

// H applies a Hadamard.
func (s *State) H(q int) { s.Apply1(q, invSqrt2, invSqrt2, invSqrt2, -invSqrt2) }

// X applies a Pauli X.
func (s *State) X(q int) { s.Apply1(q, 0, 1, 1, 0) }

// Y applies a Pauli Y.
func (s *State) Y(q int) { s.Apply1(q, 0, -1i, 1i, 0) }

// Z applies a Pauli Z.
func (s *State) Z(q int) { s.Apply1(q, 1, 0, 0, -1) }

// S applies the phase gate diag(1, i).
func (s *State) S(q int) { s.Apply1(q, 1, 0, 0, 1i) }

// Sdg applies S†.
func (s *State) Sdg(q int) { s.Apply1(q, 1, 0, 0, -1i) }

// T applies diag(1, e^{iπ/4}).
func (s *State) T(q int) { s.Apply1(q, 1, 0, 0, cmplx.Exp(1i*math.Pi/4)) }

// Tdg applies T†.
func (s *State) Tdg(q int) { s.Apply1(q, 1, 0, 0, cmplx.Exp(-1i*math.Pi/4)) }

// RX rotates about X by theta.
func (s *State) RX(q int, theta float64) {
	c, sn := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
	s.Apply1(q, c, sn, sn, c)
}

// RY rotates about Y by theta.
func (s *State) RY(q int, theta float64) {
	c, sn := math.Cos(theta/2), math.Sin(theta/2)
	s.Apply1(q, complex(c, 0), complex(-sn, 0), complex(sn, 0), complex(c, 0))
}

// RZ rotates about Z by theta.
func (s *State) RZ(q int, theta float64) {
	s.Apply1(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

// Phase applies diag(1, e^{iθ}) — the controlled-phase building block of QFT.
func (s *State) Phase(q int, theta float64) {
	s.Apply1(q, 1, 0, 0, cmplx.Exp(complex(0, theta)))
}

// CNOT applies a controlled-X with the given control and target.
func (s *State) CNOT(ctrl, tgt int) {
	s.check(ctrl)
	s.check(tgt)
	if ctrl == tgt {
		panic("quantum: cnot with ctrl == tgt")
	}
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	for i := range s.amp {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// CZ applies a controlled-Z (symmetric).
func (s *State) CZ(a, b int) {
	s.check(a)
	s.check(b)
	if a == b {
		panic("quantum: cz with a == b")
	}
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// CPhase applies a controlled phase rotation (QFT's primitive).
func (s *State) CPhase(a, b int, theta float64) {
	s.check(a)
	s.check(b)
	ph := cmplx.Exp(complex(0, theta))
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] *= ph
		}
	}
}

// SWAP exchanges two qubits.
func (s *State) SWAP(a, b int) {
	s.CNOT(a, b)
	s.CNOT(b, a)
	s.CNOT(a, b)
}

// Prob returns the probability of measuring qubit q as 1.
func (s *State) Prob(q int) float64 {
	s.check(q)
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amp {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Measure performs a projective Z measurement of qubit q using rng for the
// outcome draw, collapsing the state. It returns 0 or 1.
func (s *State) Measure(q int, rng *rand.Rand) int {
	p1 := s.Prob(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.Project(q, outcome)
	return outcome
}

// Project collapses qubit q to the given outcome and renormalizes. A
// zero-probability projection panics: it means the caller's outcome record
// diverged from the state, which is always a bug.
func (s *State) Project(q int, outcome int) {
	s.check(q)
	bit := 1 << uint(q)
	norm := 0.0
	for i, a := range s.amp {
		keep := (i&bit != 0) == (outcome == 1)
		if keep {
			norm += real(a)*real(a) + imag(a)*imag(a)
		} else {
			s.amp[i] = 0
		}
	}
	if norm < 1e-12 {
		panic(fmt.Sprintf("quantum: projecting qubit %d to impossible outcome %d", q, outcome))
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= inv
	}
}

// Fidelity returns |<s|o>|^2.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("quantum: fidelity of different-sized states")
	}
	var ip complex128
	for i := range s.amp {
		ip += cmplx.Conj(s.amp[i]) * o.amp[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// Probabilities returns the full basis distribution (for small-n tests).
func (s *State) Probabilities() []float64 {
	out := make([]float64, len(s.amp))
	for i, a := range s.amp {
		out[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return out
}

// Norm returns the state norm (should always be ~1).
func (s *State) Norm() float64 {
	p := 0.0
	for _, a := range s.amp {
		p += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(p)
}
