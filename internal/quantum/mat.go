package quantum

import (
	"math"
	"math/cmplx"
)

// Mat2 is a 2x2 complex matrix {{A, B}, {C, D}} — the unit of single-qubit
// gate fusion. A chain of single-qubit gates on one qubit composes into
// one Mat2 (Mul2 right-to-left), which ApplyMat1 then applies in a single
// amplitude pass instead of one pass per gate. Fusion reassociates the
// per-amplitude arithmetic, so fused results agree with the sequential
// reference to rounding error, not bit-for-bit; the gate-dispatch paths
// (chip backends) apply gates one at a time for exactly that reason, and
// fusion is an explicit opt-in for callers that own a whole gate list
// (the kernels benchmark, analysis code).
type Mat2 struct {
	A, B complex128
	C, D complex128
}

// Mul2 returns the matrix product m·n: the composition that applies n
// first, then m.
func Mul2(m, n Mat2) Mat2 {
	return Mat2{
		A: m.A*n.A + m.B*n.C, B: m.A*n.B + m.B*n.D,
		C: m.C*n.A + m.D*n.C, D: m.C*n.B + m.D*n.D,
	}
}

// Fuse composes a gate chain into one matrix. Gates are given in
// application order (gates[0] acts first).
func Fuse(gates ...Mat2) Mat2 {
	out := MatI
	for _, g := range gates {
		out = Mul2(g, out)
	}
	return out
}

// ApplyMat1 applies m to qubit q in one amplitude pass (diagonal fast
// path included, via Apply1).
func (s *State) ApplyMat1(q int, m Mat2) { s.Apply1(q, m.A, m.B, m.C, m.D) }

// Fixed gate matrices for fusion chains.
var (
	MatI   = Mat2{A: 1, D: 1}
	MatH   = Mat2{A: invSqrt2, B: invSqrt2, C: invSqrt2, D: -invSqrt2}
	MatX   = Mat2{B: 1, C: 1}
	MatY   = Mat2{B: -1i, C: 1i}
	MatZ   = Mat2{A: 1, D: -1}
	MatS   = Mat2{A: 1, D: 1i}
	MatSdg = Mat2{A: 1, D: -1i}
	MatT   = Mat2{A: 1, D: cmplx.Exp(1i * math.Pi / 4)}
	MatTdg = Mat2{A: 1, D: cmplx.Exp(-1i * math.Pi / 4)}
)

// MatRX returns the X-rotation matrix for theta.
func MatRX(theta float64) Mat2 {
	c, sn := complex(math.Cos(theta/2), 0), complex(0, -math.Sin(theta/2))
	return Mat2{A: c, B: sn, C: sn, D: c}
}

// MatRY returns the Y-rotation matrix for theta.
func MatRY(theta float64) Mat2 {
	c, sn := math.Cos(theta/2), math.Sin(theta/2)
	return Mat2{A: complex(c, 0), B: complex(-sn, 0), C: complex(sn, 0), D: complex(c, 0)}
}

// MatRZ returns the Z-rotation matrix for theta.
func MatRZ(theta float64) Mat2 {
	return Mat2{A: cmplx.Exp(complex(0, -theta/2)), D: cmplx.Exp(complex(0, theta/2))}
}

// MatPhase returns diag(1, e^{iθ}).
func MatPhase(theta float64) Mat2 {
	return Mat2{A: 1, D: cmplx.Exp(complex(0, theta))}
}
