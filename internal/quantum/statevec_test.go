package quantum

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[3], 0.5) || !approx(p[1], 0) || !approx(p[2], 0) {
		t.Fatalf("bell probabilities: %v", p)
	}
	// Measurement outcomes are perfectly correlated.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := s.Clone()
		m0 := c.Measure(0, rng)
		m1 := c.Measure(1, rng)
		if m0 != m1 {
			t.Fatalf("bell correlation broken: %d vs %d", m0, m1)
		}
	}
}

func TestPauliAlgebra(t *testing.T) {
	s := NewState(1)
	s.X(0)
	if !approx(s.Prob(0), 1) {
		t.Fatal("X|0> != |1>")
	}
	s.X(0)
	if !approx(s.Prob(0), 0) {
		t.Fatal("XX != I")
	}
	// HZH = X
	s2 := NewState(1)
	s2.H(0)
	s2.Z(0)
	s2.H(0)
	if !approx(s2.Prob(0), 1) {
		t.Fatal("HZH|0> != |1>")
	}
	// S^2 = Z
	a := NewState(1)
	a.H(0)
	a.S(0)
	a.S(0)
	b := NewState(1)
	b.H(0)
	b.Z(0)
	if !approx(a.Fidelity(b), 1) {
		t.Fatal("SS != Z")
	}
	// T^2 = S
	c := NewState(1)
	c.H(0)
	c.T(0)
	c.T(0)
	d := NewState(1)
	d.H(0)
	d.S(0)
	if !approx(c.Fidelity(d), 1) {
		t.Fatal("TT != S")
	}
}

func TestRotations(t *testing.T) {
	s := NewState(1)
	s.RY(0, math.Pi) // |0> -> |1>
	if !approx(s.Prob(0), 1) {
		t.Fatalf("RY(pi) prob = %g", s.Prob(0))
	}
	s2 := NewState(1)
	s2.RX(0, math.Pi/2)
	if !approx(s2.Prob(0), 0.5) {
		t.Fatalf("RX(pi/2) prob = %g", s2.Prob(0))
	}
	// Rabi-style sweep: P1(theta) = sin^2(theta/2).
	for _, th := range []float64{0.1, 0.7, 1.9, 3.0} {
		s3 := NewState(1)
		s3.RX(0, th)
		want := math.Sin(th/2) * math.Sin(th/2)
		if !approx(s3.Prob(0), want) {
			t.Fatalf("RX(%g): prob %g, want %g", th, s3.Prob(0), want)
		}
	}
}

func TestCZSymmetric(t *testing.T) {
	a := NewState(2)
	a.H(0)
	a.H(1)
	a.CZ(0, 1)
	b := NewState(2)
	b.H(0)
	b.H(1)
	b.CZ(1, 0)
	if !approx(a.Fidelity(b), 1) {
		t.Fatal("CZ not symmetric")
	}
	// CZ = H(t) CNOT H(t)
	c := NewState(2)
	c.H(0)
	c.H(1)
	c.H(1)
	c.CNOT(0, 1)
	c.H(1)
	if !approx(a.Fidelity(c), 1) {
		t.Fatal("CZ != H CNOT H")
	}
}

func TestSwap(t *testing.T) {
	s := NewState(2)
	s.X(0)
	s.SWAP(0, 1)
	if !approx(s.Prob(0), 0) || !approx(s.Prob(1), 1) {
		t.Fatalf("swap failed: p0=%g p1=%g", s.Prob(0), s.Prob(1))
	}
}

func TestProjectRenormalizes(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	s.Project(0, 1)
	if !approx(s.Norm(), 1) {
		t.Fatalf("norm = %g", s.Norm())
	}
	if !approx(s.Prob(1), 1) {
		t.Fatalf("correlated qubit prob = %g", s.Prob(1))
	}
}

func TestProjectImpossiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewState(1) // |0>
	s.Project(0, 1)
}

func TestMeasureStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := NewState(1)
		s.H(0)
		ones += s.Measure(0, rng)
	}
	frac := float64(ones) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("H measurement bias: %g", frac)
	}
}

func TestNormPreservedUnderRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		s := NewState(4)
		for g := 0; g < 50; g++ {
			q := rng.Intn(4)
			switch rng.Intn(7) {
			case 0:
				s.H(q)
			case 1:
				s.T(q)
			case 2:
				s.S(q)
			case 3:
				s.RX(q, rng.Float64()*2*math.Pi)
			case 4:
				s.RZ(q, rng.Float64()*2*math.Pi)
			case 5:
				s.CNOT(q, (q+1)%4)
			case 6:
				s.CZ(q, (q+1)%4)
			}
		}
		if !approx(s.Norm(), 1) {
			t.Fatalf("trial %d: norm drifted to %g", trial, s.Norm())
		}
	}
}

func TestGHZ(t *testing.T) {
	const n = 5
	s := NewState(n)
	s.H(0)
	for q := 0; q < n-1; q++ {
		s.CNOT(q, q+1)
	}
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[(1<<n)-1], 0.5) {
		t.Fatalf("GHZ probabilities wrong: p0=%g pN=%g", p[0], p[(1<<n)-1])
	}
}
