package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// This file retains the pre-optimization state-vector kernels verbatim as
// the semantic oracle for the rewritten ones — the compileMonolithic
// pattern: the slow, obviously-correct implementation survives so the
// fast one can be proven against it forever. The property tests
// (property_test.go) drive randomized circuits through both and require
// identical amplitudes; the kernels benchmark (dhisq-bench -exp kernels)
// times the two against each other and CI gates on the speedup.
//
// Every Ref kernel scans the full amplitude array testing the qubit bit
// of each index — the branch-per-index shape the rewrite replaced with
// block iteration — and RefMeasure takes the original three passes
// (probability, zero+norm, scale).

// RefApply1 applies the 2x2 unitary {{a,b},{c,d}} to qubit q with the
// legacy full-array scan.
func RefApply1(s *State, q int, a, b, c, d complex128) {
	s.check(q)
	bit := 1 << uint(q)
	for i := 0; i < len(s.amp); i++ {
		if i&bit == 0 {
			j := i | bit
			a0, a1 := s.amp[i], s.amp[j]
			s.amp[i] = a*a0 + b*a1
			s.amp[j] = c*a0 + d*a1
		}
	}
}

// RefCNOT applies a controlled-X with the legacy full-array scan.
func RefCNOT(s *State, ctrl, tgt int) {
	s.check(ctrl)
	s.check(tgt)
	if ctrl == tgt {
		panic("quantum: cnot with ctrl == tgt")
	}
	cb, tb := 1<<uint(ctrl), 1<<uint(tgt)
	for i := range s.amp {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// RefCZ applies a controlled-Z with the legacy full-array scan.
func RefCZ(s *State, a, b int) {
	s.check(a)
	s.check(b)
	if a == b {
		panic("quantum: cz with a == b")
	}
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] = -s.amp[i]
		}
	}
}

// RefCPhase applies a controlled phase rotation with the legacy scan.
func RefCPhase(s *State, a, b int, theta float64) {
	s.check(a)
	s.check(b)
	ph := cmplx.Exp(complex(0, theta))
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amp {
		if i&ab != 0 && i&bb != 0 {
			s.amp[i] *= ph
		}
	}
}

// RefSWAP exchanges two qubits as three CNOT scans (the legacy
// decomposition the single-pass SWAP replaced).
func RefSWAP(s *State, a, b int) {
	RefCNOT(s, a, b)
	RefCNOT(s, b, a)
	RefCNOT(s, a, b)
}

// RefProb returns the probability of measuring qubit q as 1 with the
// legacy full-array scan.
func RefProb(s *State, q int) float64 {
	s.check(q)
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amp {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// RefMeasure performs the legacy three-pass projective measurement:
// probability scan, zero+norm scan, renormalization scan.
func RefMeasure(s *State, q int, rng *rand.Rand) int {
	p1 := RefProb(s, q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	RefProject(s, q, outcome)
	return outcome
}

// RefProject collapses qubit q with the legacy two-pass zero+norm then
// scale sequence.
func RefProject(s *State, q int, outcome int) {
	s.check(q)
	bit := 1 << uint(q)
	norm := 0.0
	for i, a := range s.amp {
		keep := (i&bit != 0) == (outcome == 1)
		if keep {
			norm += real(a)*real(a) + imag(a)*imag(a)
		} else {
			s.amp[i] = 0
		}
	}
	if norm < 1e-12 {
		panic(fmt.Sprintf("quantum: projecting qubit %d to impossible outcome %d", q, outcome))
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s.amp {
		s.amp[i] *= inv
	}
}
