package quantum

import (
	"runtime"
	"sync"
)

// Parallelism knobs. Element-wise kernels (gate applications, the
// collapse pass) fan out across goroutines once a state reaches
// parallelThreshold amplitudes. The partition is by contiguous index
// range aligned to the kernel's outer block stride, and every worker runs
// the identical per-element multiply-add sequence, so the result is
// bit-identical to the serial path at any worker count — parallelism
// never enters a floating-point reduction (see probPair). Vars rather
// than consts so the property tests can force the parallel path on
// states small enough to cross-check against the reference kernels.
var (
	parallelThreshold = 1 << 20
	parallelWorkers   = runtime.GOMAXPROCS(0)
)

// setParallel overrides the parallel-path knobs and returns a restore
// function; tests force the parallel path on small states with it.
func setParallel(threshold, workers int) func() {
	oldT, oldW := parallelThreshold, parallelWorkers
	parallelThreshold, parallelWorkers = threshold, workers
	return func() { parallelThreshold, parallelWorkers = oldT, oldW }
}

// forSpan runs fn over [0, n) split into stride-aligned spans. Small
// spans (or single-worker configs) run serially in place; large ones are
// partitioned into contiguous block ranges, one goroutine per worker.
// fn must be safe for concurrent invocation on disjoint ranges.
func forSpan(n, stride int, fn func(lo, hi int)) {
	workers := parallelWorkers
	blocks := n / stride
	if n < parallelThreshold || workers <= 1 || blocks <= 1 {
		fn(0, n)
		return
	}
	if workers > blocks {
		workers = blocks
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := blocks * w / workers * stride
		hi := blocks * (w + 1) / workers * stride
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
