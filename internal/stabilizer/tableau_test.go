package stabilizer

import (
	"math"
	"math/rand"
	"testing"

	"dhisq/internal/quantum"
)

func TestInitialState(t *testing.T) {
	tb := New(3)
	for q := 0; q < 3; q++ {
		out, det := tb.MeasureDeterministic(q)
		if !det || out != 0 {
			t.Fatalf("qubit %d of |000>: out=%d det=%v", q, out, det)
		}
	}
}

func TestXFlips(t *testing.T) {
	tb := New(2)
	tb.X(0)
	if out := tb.MeasureZ(0, rand.New(rand.NewSource(1))); out != 1 {
		t.Fatalf("X|0> measured %d", out)
	}
	if out := tb.MeasureZ(1, rand.New(rand.NewSource(1))); out != 0 {
		t.Fatalf("untouched qubit measured %d", out)
	}
}

func TestHHIsIdentity(t *testing.T) {
	tb := New(1)
	tb.H(0)
	tb.H(0)
	out, det := tb.MeasureDeterministic(0)
	if !det || out != 0 {
		t.Fatalf("HH|0>: out=%d det=%v", out, det)
	}
}

func TestBellCorrelations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ones := 0
	for trial := 0; trial < 200; trial++ {
		tb := New(2)
		tb.H(0)
		tb.CNOT(0, 1)
		m0 := tb.MeasureZ(0, rng)
		// After measuring qubit 0, qubit 1 is deterministic and equal.
		m1, det := tb.MeasureDeterministic(1)
		if !det {
			t.Fatal("bell partner not deterministic after first measurement")
		}
		if m0 != m1 {
			t.Fatalf("bell correlation broken: %d vs %d", m0, m1)
		}
		ones += m0
	}
	if ones < 60 || ones > 140 {
		t.Fatalf("outcome bias: %d/200 ones", ones)
	}
}

func TestSGate(t *testing.T) {
	// S|+> = |+i>; measuring X-basis via H gives 50/50, but S²|+> = Z|+> = |->
	tb := New(1)
	tb.H(0)
	tb.S(0)
	tb.S(0)
	tb.H(0) // H Z H |0> = X|0> = |1>
	out, det := tb.MeasureDeterministic(0)
	if !det || out != 1 {
		t.Fatalf("HSSH|0>: out=%d det=%v", out, det)
	}
}

func TestSdg(t *testing.T) {
	tb := New(1)
	tb.H(0)
	tb.S(0)
	tb.Sdg(0)
	tb.H(0)
	out, det := tb.MeasureDeterministic(0)
	if !det || out != 0 {
		t.Fatalf("H S Sdg H |0>: out=%d det=%v", out, det)
	}
}

func TestYGate(t *testing.T) {
	tb := New(1)
	tb.Y(0)
	out, det := tb.MeasureDeterministic(0)
	if !det || out != 1 {
		t.Fatalf("Y|0>: out=%d det=%v", out, det)
	}
}

func TestCZViaStabilizers(t *testing.T) {
	// CZ on |++> produces the graph state with stabilizers X⊗Z and Z⊗X.
	tb := New(2)
	tb.H(0)
	tb.H(1)
	tb.CZ(0, 1)
	can := tb.Canonical()
	want := map[string]bool{"+XZ": true, "+ZX": true}
	for _, s := range can {
		if !want[s] {
			t.Fatalf("unexpected canonical stabilizers %v", can)
		}
	}
}

func TestSwapMovesState(t *testing.T) {
	tb := New(3)
	tb.X(0)
	tb.SWAP(0, 2)
	if out, _ := tb.MeasureDeterministic(0); out != 0 {
		t.Fatal("swap: qubit 0 still excited")
	}
	if out, _ := tb.MeasureDeterministic(2); out != 1 {
		t.Fatal("swap: qubit 2 not excited")
	}
}

func TestGHZParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 64 // crosses the word boundary
	for trial := 0; trial < 30; trial++ {
		tb := New(n)
		tb.H(0)
		for q := 0; q < n-1; q++ {
			tb.CNOT(q, q+1)
		}
		first := tb.MeasureZ(0, rng)
		for q := 1; q < n; q++ {
			out, det := tb.MeasureDeterministic(q)
			if !det || out != first {
				t.Fatalf("GHZ qubit %d: out=%d det=%v first=%d", q, out, det, first)
			}
		}
	}
}

func TestCanonicalEquality(t *testing.T) {
	// Different generator presentations of the same state compare equal.
	a := New(2)
	a.H(0)
	a.CNOT(0, 1)

	b := New(2)
	b.H(1)
	b.CNOT(1, 0)
	if !Equal(a, b) {
		t.Fatal("bell states built two ways should be equal")
	}

	c := New(2)
	c.H(0)
	if Equal(a, c) {
		t.Fatal("different states compare equal")
	}
}

// TestAgainstStateVector cross-checks random Clifford+measurement circuits
// against the dense simulator: identical gate streams and forced outcomes
// must produce identical deterministic-outcome patterns and probabilities.
func TestAgainstStateVector(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 5
	for trial := 0; trial < 60; trial++ {
		tb := New(n)
		sv := quantum.NewState(n)
		for g := 0; g < 60; g++ {
			q := rng.Intn(n)
			p := (q + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(6) {
			case 0:
				tb.H(q)
				sv.H(q)
			case 1:
				tb.S(q)
				sv.S(q)
			case 2:
				tb.X(q)
				sv.X(q)
			case 3:
				tb.Z(q)
				sv.Z(q)
			case 4:
				tb.CNOT(q, p)
				sv.CNOT(q, p)
			case 5:
				tb.CZ(q, p)
				sv.CZ(q, p)
			}
		}
		for q := 0; q < n; q++ {
			out, det := tb.MeasureDeterministic(q)
			pv := sv.Prob(q)
			if det {
				if math.Abs(pv-float64(out)) > 1e-9 {
					t.Fatalf("trial %d qubit %d: tableau says deterministic %d, statevec prob %g", trial, q, out, pv)
				}
			} else {
				if math.Abs(pv-0.5) > 1e-9 {
					t.Fatalf("trial %d qubit %d: tableau says random, statevec prob %g", trial, q, pv)
				}
			}
		}
		// Collapse one qubit in both and re-verify correlation survives.
		q := rng.Intn(n)
		m := tb.MeasureZ(q, rng)
		sv.Project(q, m)
		for p := 0; p < n; p++ {
			out, det := tb.MeasureDeterministic(p)
			pv := sv.Prob(p)
			if det && math.Abs(pv-float64(out)) > 1e-9 {
				t.Fatalf("post-collapse qubit %d: tableau %d, statevec %g", p, out, pv)
			}
		}
	}
}

func TestLargeTableauSmoke(t *testing.T) {
	// The paper's biggest benchmark is adder_n1153.
	const n = 1153
	tb := New(n)
	rng := rand.New(rand.NewSource(2))
	tb.H(0)
	for q := 0; q < n-1; q++ {
		tb.CNOT(q, q+1)
	}
	first := tb.MeasureZ(0, rng)
	last, det := tb.MeasureDeterministic(n - 1)
	if !det || last != first {
		t.Fatalf("giant GHZ broken: first=%d last=%d det=%v", first, last, det)
	}
}
