package stabilizer

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// This file retains the pre-optimization row-major tableau verbatim as the
// semantic oracle for the column-major rewrite — the compileMonolithic
// pattern: the slow, obviously-correct implementation survives so the fast
// one can be proven against it forever. The property tests drive random
// Clifford+measurement circuits through both and require bit-identical
// rows and identical outcomes; the kernels benchmark (dhisq-bench -exp
// kernels) times the two against each other and CI gates on the speedup.
// Canonicalization also runs here (via Tableau.toRef) so canonical forms
// stay byte-identical to the legacy output.

// RefTableau holds 2n+1 rows (n destabilizers, n stabilizers, one scratch
// row) of X/Z bit-matrices plus sign bits, bit-packed 64 columns per word —
// the legacy row-major layout.
type RefTableau struct {
	n     int
	words int
	x     [][]uint64 // [row][word]
	z     [][]uint64
	r     []uint8 // sign bit per row (0 => +, 1 => -)
}

// NewRef returns the reference tableau of |0...0>.
func NewRef(n int) *RefTableau {
	if n < 1 {
		panic("stabilizer: need at least one qubit")
	}
	w := (n + 63) / 64
	t := &RefTableau{n: n, words: w}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, w)
		t.z[i] = make([]uint64, w)
	}
	for q := 0; q < n; q++ {
		t.x[q][q/64] |= 1 << uint(q%64)   // destabilizer X_q
		t.z[n+q][q/64] |= 1 << uint(q%64) // stabilizer Z_q
	}
	return t
}

// NumQubits returns n.
func (t *RefTableau) NumQubits() int { return t.n }

func (t *RefTableau) check(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("stabilizer: qubit %d out of range (n=%d)", q, t.n))
	}
}

func (t *RefTableau) getBit(m [][]uint64, row, q int) uint64 {
	return m[row][q/64] >> uint(q%64) & 1
}

// Clone deep-copies the reference tableau.
func (t *RefTableau) Clone() *RefTableau {
	c := &RefTableau{n: t.n, words: t.words, r: append([]uint8{}, t.r...)}
	c.x = make([][]uint64, len(t.x))
	c.z = make([][]uint64, len(t.z))
	for i := range t.x {
		c.x[i] = append([]uint64{}, t.x[i]...)
		c.z[i] = append([]uint64{}, t.z[i]...)
	}
	return c
}

// H applies a Hadamard with the legacy branch-per-row loop.
func (t *RefTableau) H(q int) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&b, t.z[i][w]&b
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		if (xi != 0) != (zi != 0) {
			t.x[i][w] ^= b
			t.z[i][w] ^= b
		}
	}
}

// S applies the phase gate with the legacy branch-per-row loop.
func (t *RefTableau) S(q int) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&b != 0 {
			if t.z[i][w]&b != 0 {
				t.r[i] ^= 1
			}
			t.z[i][w] ^= b
		}
	}
}

// Sdg applies S† as the legacy S·Z composition.
func (t *RefTableau) Sdg(q int) { t.S(q); t.Z(q) }

// X applies a Pauli X with the legacy branch-per-row loop.
func (t *RefTableau) X(q int) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i][w]&b != 0 {
			t.r[i] ^= 1
		}
	}
}

// Z applies a Pauli Z with the legacy branch-per-row loop.
func (t *RefTableau) Z(q int) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&b != 0 {
			t.r[i] ^= 1
		}
	}
}

// Y applies a Pauli Y with the legacy branch-per-row loop.
func (t *RefTableau) Y(q int) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if (t.x[i][w]&b != 0) != (t.z[i][w]&b != 0) {
			t.r[i] ^= 1
		}
	}
}

// CNOT applies a controlled-X with the legacy branch-per-row loop.
func (t *RefTableau) CNOT(c, tg int) {
	t.check(c)
	t.check(tg)
	if c == tg {
		panic("stabilizer: cnot with ctrl == tgt")
	}
	cw, cb := c/64, uint64(1)<<uint(c%64)
	tw, tb := tg/64, uint64(1)<<uint(tg%64)
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw]&cb != 0
		zc := t.z[i][cw]&cb != 0
		xt := t.x[i][tw]&tb != 0
		zt := t.z[i][tw]&tb != 0
		if xc && zt && (xt == zc) {
			t.r[i] ^= 1
		}
		if xc {
			t.x[i][tw] ^= tb
		}
		if zt {
			t.z[i][cw] ^= cb
		}
	}
}

// CZ applies a controlled-Z as the legacy H·CNOT·H decomposition.
func (t *RefTableau) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// SWAP exchanges qubits a and b as the legacy three-CNOT decomposition.
func (t *RefTableau) SWAP(a, b int) {
	t.CNOT(a, b)
	t.CNOT(b, a)
	t.CNOT(a, b)
}

// rowsum implements the Aaronson–Gottesman phase-tracking row addition:
// row h := row h * row i (Pauli product), with sign bookkeeping mod 4.
func (t *RefTableau) rowsum(h, i int) {
	// Phase exponent accumulated mod 4: 2*r_h + 2*r_i + sum g().
	total := 2*int(t.r[h]) + 2*int(t.r[i])
	for w := 0; w < t.words; w++ {
		x1, z1 := t.x[i][w], t.z[i][w] // row i
		x2, z2 := t.x[h][w], t.z[h][w] // row h
		pos := (x1 & z1 & ^x2 & z2) | (x1 & ^z1 & x2 & z2) | (^x1 & z1 & x2 & ^z2)
		neg := (x1 & z1 & x2 & ^z2) | (x1 & ^z1 & ^x2 & z2) | (^x1 & z1 & x2 & z2)
		total += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		t.x[h][w] ^= x1
		t.z[h][w] ^= z1
	}
	total %= 4
	if total < 0 {
		total += 4
	}
	// Stabilizer-row sums always land on 0 or 2 (real sign). Destabilizer
	// rows may hit 1/3 (imaginary) — their signs are untracked by CHP, so
	// storing the high bit is sufficient there.
	t.r[h] = uint8(total >> 1)
}

// MeasureZ performs the legacy Z-basis measurement of qubit q.
func (t *RefTableau) MeasureZ(q int, rng *rand.Rand) int {
	out, _ := t.measure(q, func() int {
		if rng.Float64() < 0.5 {
			return 1
		}
		return 0
	})
	return out
}

// MeasureDeterministic is the legacy clone-then-measure definite-outcome
// probe the allocation-free rewrite replaced.
func (t *RefTableau) MeasureDeterministic(q int) (outcome int, deterministic bool) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&b != 0 {
			return 0, false
		}
	}
	c := t.Clone()
	out, _ := c.measure(q, func() int { return 0 })
	return out, true
}

func (t *RefTableau) measure(q int, draw func() int) (int, bool) {
	t.check(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	// Find a stabilizer anticommuting with Z_q.
	p := -1
	for i := t.n; i < 2*t.n; i++ {
		if t.x[i][w]&b != 0 {
			p = i
			break
		}
	}
	if p >= 0 {
		// Random outcome.
		for i := 0; i < 2*t.n; i++ {
			if i != p && t.x[i][w]&b != 0 {
				t.rowsum(i, p)
			}
		}
		// Destabilizer p-n becomes old stabilizer p; stabilizer p becomes Z_q.
		copy(t.x[p-t.n], t.x[p])
		copy(t.z[p-t.n], t.z[p])
		t.r[p-t.n] = t.r[p]
		for ww := 0; ww < t.words; ww++ {
			t.x[p][ww] = 0
			t.z[p][ww] = 0
		}
		outcome := draw()
		t.z[p][w] |= b
		t.r[p] = uint8(outcome)
		return outcome, false
	}
	// Deterministic outcome: accumulate into the scratch row.
	sc := 2 * t.n
	for ww := 0; ww < t.words; ww++ {
		t.x[sc][ww] = 0
		t.z[sc][ww] = 0
	}
	t.r[sc] = 0
	for i := 0; i < t.n; i++ {
		if t.x[i][w]&b != 0 {
			t.rowsum(sc, i+t.n)
		}
	}
	return int(t.r[sc]), true
}

// StabilizerString renders stabilizer row k (0..n-1) as a Pauli string.
func (t *RefTableau) StabilizerString(k int) string {
	row := t.n + k
	var sb strings.Builder
	if t.r[row] != 0 {
		sb.WriteByte('-')
	} else {
		sb.WriteByte('+')
	}
	for q := 0; q < t.n; q++ {
		x := t.getBit(t.x, row, q)
		z := t.getBit(t.z, row, q)
		switch {
		case x == 1 && z == 1:
			sb.WriteByte('Y')
		case x == 1:
			sb.WriteByte('X')
		case z == 1:
			sb.WriteByte('Z')
		default:
			sb.WriteByte('I')
		}
	}
	return sb.String()
}

// Canonical returns the stabilizer group in a canonical (Gauss-reduced)
// form. Tableau.Canonical delegates here after layout conversion.
func (t *RefTableau) Canonical() []string {
	c := t.Clone()
	// Gaussian elimination over the stabilizer rows (rows n..2n-1) with
	// column order X_0..X_{n-1}, Z_0..Z_{n-1}.
	row := c.n
	for col := 0; col < 2*c.n && row < 2*c.n; col++ {
		q := col % c.n
		isX := col < c.n
		get := func(i int) uint64 {
			if isX {
				return c.getBit(c.x, i, q)
			}
			return c.getBit(c.z, i, q)
		}
		pivot := -1
		for i := row; i < 2*c.n; i++ {
			if get(i) == 1 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		c.swapRows(pivot, row)
		for i := c.n; i < 2*c.n; i++ {
			if i != row && get(i) == 1 {
				c.rowsum(i, row)
			}
		}
		row++
	}
	out := make([]string, c.n)
	for k := 0; k < c.n; k++ {
		out[k] = c.StabilizerString(k)
	}
	return out
}

func (t *RefTableau) swapRows(a, b int) {
	t.x[a], t.x[b] = t.x[b], t.x[a]
	t.z[a], t.z[b] = t.z[b], t.z[a]
	t.r[a], t.r[b] = t.r[b], t.r[a]
}
