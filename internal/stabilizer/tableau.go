// Package stabilizer implements an Aaronson–Gottesman CHP tableau simulator
// for Clifford circuits with measurement. It scales to the thousands of
// qubits the paper's benchmarks use (adder_n1153, w_state_n1000, ...) and is
// the semantic oracle for the dynamic-circuit transforms: a long-range CNOT
// realized with ancillas, measurements and feed-forward corrections must
// leave the same stabilizer state as the textbook CNOT.
//
// The layout is column-major (DESIGN.md §9): x[q] and z[q] are bit-vectors
// over the 2n tableau rows, so a single-qubit gate is a handful of word
// operations over (2n+63)/64 words instead of a branch per row, CZ is a
// native word-parallel sign rule instead of H·CNOT·H, SWAP is a column
// pointer exchange, and both measurement branches are allocation-free:
// the random branch folds every anticommuting row's phase update into
// bitsliced mod-4 planes, and the deterministic branch reads the sign of
// the stabilizer product off exclusive-prefix parities without cloning
// the tableau. The previous row-major implementation is retained verbatim
// in reference.go as RefTableau, the oracle the property tests and the
// kernels benchmark compare against; the two are bit-identical row for
// row after any gate/measurement sequence.
package stabilizer

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// Tableau holds the destabilizer rows (0..n-1) and stabilizer rows
// (n..2n-1) of a CHP tableau, column-major: x[q][w] packs the X bits of
// qubit q for rows 64w..64w+63, z likewise, r is the sign bit-vector over
// rows. Not safe for concurrent use (measurement shares scratch planes).
type Tableau struct {
	n  int
	rw int        // words per row bit-vector (covers 2n rows)
	x  [][]uint64 // [qubit][rowWord]
	z  [][]uint64
	r  []uint64 // sign bit per row

	maskStab []uint64 // rows n..2n-1
	maskDest []uint64 // rows 0..n-1
	sel      []uint64 // scratch: target-row selection
	selw     []int    // scratch: indices of nonzero sel words
	lo, hi   []uint64 // scratch: bitsliced mod-4 phase planes
}

// New returns the tableau of |0...0>: destabilizers X_i, stabilizers Z_i.
func New(n int) *Tableau {
	if n < 1 {
		panic("stabilizer: need at least one qubit")
	}
	rw := (2*n + 63) / 64
	t := &Tableau{
		n: n, rw: rw,
		x: make([][]uint64, n), z: make([][]uint64, n),
		r:        make([]uint64, rw),
		maskStab: make([]uint64, rw),
		maskDest: make([]uint64, rw),
		sel:      make([]uint64, rw),
		selw:     make([]int, 0, rw),
		lo:       make([]uint64, rw),
		hi:       make([]uint64, rw),
	}
	for q := 0; q < n; q++ {
		t.x[q] = make([]uint64, rw)
		t.z[q] = make([]uint64, rw)
	}
	for i := 0; i < n; i++ {
		setBit(t.maskDest, i)
		setBit(t.maskStab, n+i)
	}
	t.seed()
	return t
}

// seed writes the |0...0> generators into zeroed columns.
func (t *Tableau) seed() {
	for q := 0; q < t.n; q++ {
		setBit(t.x[q], q)     // destabilizer X_q
		setBit(t.z[q], t.n+q) // stabilizer Z_q
	}
}

// NumQubits returns n.
func (t *Tableau) NumQubits() int { return t.n }

// Reset returns the tableau to |0...0> in place, reusing the bit-vectors.
func (t *Tableau) Reset() {
	for q := 0; q < t.n; q++ {
		clearWords(t.x[q])
		clearWords(t.z[q])
	}
	clearWords(t.r)
	t.seed()
}

// Clone deep-copies the tableau (scratch planes are fresh, masks shared —
// they are immutable after New).
func (t *Tableau) Clone() *Tableau {
	c := &Tableau{
		n: t.n, rw: t.rw,
		x: make([][]uint64, t.n), z: make([][]uint64, t.n),
		r:        append([]uint64{}, t.r...),
		maskStab: t.maskStab,
		maskDest: t.maskDest,
		sel:      make([]uint64, t.rw),
		selw:     make([]int, 0, t.rw),
		lo:       make([]uint64, t.rw),
		hi:       make([]uint64, t.rw),
	}
	for q := 0; q < t.n; q++ {
		c.x[q] = append([]uint64{}, t.x[q]...)
		c.z[q] = append([]uint64{}, t.z[q]...)
	}
	return c
}

func (t *Tableau) check(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("stabilizer: qubit %d out of range (n=%d)", q, t.n))
	}
}

// H applies a Hadamard to qubit q: sign flips where X and Z are both set,
// then the X and Z columns exchange — a pointer swap after the sign pass.
func (t *Tableau) H(q int) {
	t.check(q)
	x, z, r := t.x[q], t.z[q], t.r
	for w := range r {
		r[w] ^= x[w] & z[w]
	}
	t.x[q], t.z[q] = z, x
}

// S applies the phase gate to qubit q.
func (t *Tableau) S(q int) {
	t.check(q)
	x, z, r := t.x[q], t.z[q], t.r
	for w := range r {
		r[w] ^= x[w] & z[w]
		z[w] ^= x[w]
	}
}

// Sdg applies S† (the fused word-parallel form of S·Z).
func (t *Tableau) Sdg(q int) {
	t.check(q)
	x, z, r := t.x[q], t.z[q], t.r
	for w := range r {
		r[w] ^= x[w] &^ z[w]
		z[w] ^= x[w]
	}
}

// X applies a Pauli X to qubit q.
func (t *Tableau) X(q int) {
	t.check(q)
	z, r := t.z[q], t.r
	for w := range r {
		r[w] ^= z[w]
	}
}

// Z applies a Pauli Z to qubit q.
func (t *Tableau) Z(q int) {
	t.check(q)
	x, r := t.x[q], t.r
	for w := range r {
		r[w] ^= x[w]
	}
}

// Y applies a Pauli Y to qubit q.
func (t *Tableau) Y(q int) {
	t.check(q)
	x, z, r := t.x[q], t.z[q], t.r
	for w := range r {
		r[w] ^= x[w] ^ z[w]
	}
}

// CNOT applies a controlled-X with control c and target tg.
func (t *Tableau) CNOT(c, tg int) {
	t.check(c)
	t.check(tg)
	if c == tg {
		panic("stabilizer: cnot with ctrl == tgt")
	}
	xc, zc, xt, zt, r := t.x[c], t.z[c], t.x[tg], t.z[tg], t.r
	for w := range r {
		r[w] ^= xc[w] & zt[w] &^ (xt[w] ^ zc[w])
		xt[w] ^= xc[w]
		zc[w] ^= zt[w]
	}
}

// CZ applies a controlled-Z natively: the sign rule below is the exact
// word-parallel reduction of the H·CNOT·H decomposition (the three per-row
// flips collapse to x_a & x_b & (z_a ^ z_b)), so the resulting rows are
// bit-identical to the decomposed form at a third of the passes.
func (t *Tableau) CZ(a, b int) {
	t.check(a)
	t.check(b)
	if a == b {
		panic("stabilizer: cz with a == b")
	}
	xa, za, xb, zb, r := t.x[a], t.z[a], t.x[b], t.z[b], t.r
	for w := range r {
		r[w] ^= xa[w] & xb[w] & (za[w] ^ zb[w])
		za[w] ^= xb[w]
		zb[w] ^= xa[w]
	}
}

// SWAP exchanges qubits a and b — a column pointer exchange, O(1). SWAP
// conjugation relabels qubits without sign changes, so this is row-exact
// with the legacy three-CNOT decomposition.
func (t *Tableau) SWAP(a, b int) {
	t.check(a)
	t.check(b)
	t.x[a], t.x[b] = t.x[b], t.x[a]
	t.z[a], t.z[b] = t.z[b], t.z[a]
}

// anticommuting returns the lowest stabilizer row whose X bit at q is set,
// or -1 when every stabilizer commutes with Z_q (deterministic outcome).
func (t *Tableau) anticommuting(q int) int {
	x := t.x[q]
	for w := range x {
		if v := x[w] & t.maskStab[w]; v != 0 {
			return w*64 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// MeasureZ performs a Z-basis measurement of qubit q. Random outcomes are
// drawn from rng (one Float64 per random measurement); deterministic
// outcomes are read off the tableau without touching it.
func (t *Tableau) MeasureZ(q int, rng *rand.Rand) int {
	t.check(q)
	p := t.anticommuting(q)
	if p < 0 {
		return t.parityOutcome(q)
	}
	outcome := 0
	if rng.Float64() < 0.5 {
		outcome = 1
	}
	t.collapse(q, p, outcome)
	return outcome
}

// MeasureDeterministic reports whether measuring q would give a definite
// outcome, and that outcome (0/1) when it is definite, without collapsing.
// Read-only and allocation-free (the legacy path cloned the full tableau).
func (t *Tableau) MeasureDeterministic(q int) (outcome int, deterministic bool) {
	t.check(q)
	if t.anticommuting(q) >= 0 {
		return 0, false
	}
	return t.parityOutcome(q), true
}

// collapse performs the random-outcome update: every row anticommuting
// with Z_q (except pivot p) is multiplied by row p, then the pivot pair is
// rotated (destabilizer p-n := old row p, row p := ±Z_q).
//
// The row multiplications are bitsliced: the Aaronson–Gottesman phase
// exponent (mod 4) of every target row accumulates simultaneously in two
// bit-planes (lo = bit 0, hi = bit 1). Per qubit column the source row
// contributes +1/-1 exactly where the legacy rowsum's g() did, applied as
// word-parallel increments (carry = lo&pos) and decrements (borrow =
// ^lo&neg), so the final hi plane equals the legacy (total mod 4) >> 1
// sign for every target row at once.
func (t *Tableau) collapse(q, p, outcome int) {
	sel, lo, hi, r := t.sel, t.lo, t.hi, t.r
	copy(sel, t.x[q])
	clearBit(sel, p)
	// Phase planes start at 2*r_target + 2*r_p (mod 4): hi = r ^ r_p.
	rp := -(bitOf(r, p)) // 0 or all-ones
	for w := range sel {
		lo[w] = 0
		hi[w] = (r[w] ^ rp) & sel[w]
	}
	for j := 0; j < t.n; j++ {
		xs, zs := t.x[j], t.z[j]
		x1, z1 := bitOf(xs, p), bitOf(zs, p)
		switch {
		case x1 == 0 && z1 == 0:
		case x1 == 1 && z1 == 0: // source X: +1 on Y targets, -1 on Z targets
			for w := range sel {
				x2, z2, s := xs[w], zs[w], sel[w]
				pos := x2 & z2 & s
				neg := z2 &^ x2 & s
				lo[w], hi[w] = lo[w]^pos, hi[w]^(lo[w]&pos)
				hi[w] ^= ^lo[w] & neg
				lo[w] ^= neg
				xs[w] = x2 ^ s
			}
		case x1 == 0 && z1 == 1: // source Z: +1 on X targets, -1 on Y targets
			for w := range sel {
				x2, z2, s := xs[w], zs[w], sel[w]
				pos := x2 &^ z2 & s
				neg := x2 & z2 & s
				lo[w], hi[w] = lo[w]^pos, hi[w]^(lo[w]&pos)
				hi[w] ^= ^lo[w] & neg
				lo[w] ^= neg
				zs[w] = z2 ^ s
			}
		default: // source Y: +1 on Z targets, -1 on X targets
			for w := range sel {
				x2, z2, s := xs[w], zs[w], sel[w]
				pos := z2 &^ x2 & s
				neg := x2 &^ z2 & s
				lo[w], hi[w] = lo[w]^pos, hi[w]^(lo[w]&pos)
				hi[w] ^= ^lo[w] & neg
				lo[w] ^= neg
				xs[w] = x2 ^ s
				zs[w] = z2 ^ s
			}
		}
	}
	for w := range sel {
		r[w] = r[w]&^sel[w] | hi[w]&sel[w]
	}
	// Pivot rotation: destabilizer p-n takes old row p, row p becomes ±Z_q.
	d := p - t.n
	for j := 0; j < t.n; j++ {
		writeBit(t.x[j], d, bitOf(t.x[j], p))
		writeBit(t.z[j], d, bitOf(t.z[j], p))
		clearBit(t.x[j], p)
		clearBit(t.z[j], p)
	}
	writeBit(r, d, bitOf(r, p))
	setBit(t.z[q], p)
	writeBit(r, p, uint64(outcome))
}

// parityOutcome computes a deterministic measurement outcome: the sign of
// the product of the stabilizer rows n+i over destabilizers i that
// anticommute with Z_q, read off without mutating anything.
//
// The legacy path accumulated that product into a scratch row, one rowsum
// per factor. Here the accumulated row's bits at each step are exclusive
// prefix-XORs of the selected stabilizers' bits, so per qubit column the
// whole phase sum evaluates word-parallel: prefix parities via the
// doubling shift-XOR, the rowsum g() terms as bitwise masks, popcounts
// into one exact mod-4 total.
func (t *Tableau) parityOutcome(q int) int {
	sel := t.sel
	// sel = (x[q] & maskDest) << n : selected stabilizer rows, in row order.
	s, b := t.n/64, uint(t.n%64)
	for w := t.rw - 1; w >= 0; w-- {
		var v uint64
		if w-s >= 0 {
			v = (t.x[q][w-s] & t.maskDest[w-s]) << b
			if b > 0 && w-s-1 >= 0 {
				v |= (t.x[q][w-s-1] & t.maskDest[w-s-1]) >> (64 - b)
			}
		}
		sel[w] = v
	}
	// Words with no selected rows contribute nothing — every pos/neg term
	// and both carry updates are masked by sel[w] — so the O(n) column loop
	// walks only the nonzero words. The selection lives entirely in the
	// stabilizer half of the rows, so this skips at least half the words and
	// all of them for sparse selections.
	selw := t.selw[:0]
	total := 0
	for w := range sel {
		if sel[w] != 0 {
			selw = append(selw, w)
			total += 2 * bits.OnesCount64(t.r[w]&sel[w])
		}
	}
	t.selw = selw
	for j := 0; j < t.n; j++ {
		xs, zs := t.x[j], t.z[j]
		var cx, cz uint64 // running parity of lower words, 0 or all-ones
		for _, w := range selw {
			sx, sz := xs[w]&sel[w], zs[w]&sel[w]
			ix, iz := prefixXor(sx), prefixXor(sz)
			px, pz := ix<<1^cx, iz<<1^cz // exclusive prefix parities
			cx ^= -(ix >> 63)
			cz ^= -(iz >> 63)
			pos := sx&sz&^px&pz | sx&^sz&px&pz | sz&^sx&px&^pz
			neg := sx&sz&px&^pz | sx&^sz&^px&pz | sz&^sx&px&pz
			total += bits.OnesCount64(pos) - bits.OnesCount64(neg)
		}
	}
	total %= 4
	if total < 0 {
		total += 4
	}
	return total >> 1
}

// prefixXor returns the inclusive prefix parity of v: bit k of the result
// is the XOR of bits 0..k of v.
func prefixXor(v uint64) uint64 {
	v ^= v << 1
	v ^= v << 2
	v ^= v << 4
	v ^= v << 8
	v ^= v << 16
	v ^= v << 32
	return v
}

// Row bit-vector helpers.
func bitOf(v []uint64, i int) uint64 { return v[i>>6] >> uint(i&63) & 1 }
func setBit(v []uint64, i int)       { v[i>>6] |= 1 << uint(i&63) }
func clearBit(v []uint64, i int)     { v[i>>6] &^= 1 << uint(i&63) }
func writeBit(v []uint64, i int, b uint64) {
	v[i>>6] = v[i>>6]&^(1<<uint(i&63)) | b<<uint(i&63)
}
func clearWords(v []uint64) {
	for i := range v {
		v[i] = 0
	}
}

// StabilizerString renders stabilizer row k (0..n-1) as a Pauli string like
// "+XZII". Useful in tests and debugging.
func (t *Tableau) StabilizerString(k int) string {
	row := t.n + k
	var sb strings.Builder
	if bitOf(t.r, row) != 0 {
		sb.WriteByte('-')
	} else {
		sb.WriteByte('+')
	}
	for q := 0; q < t.n; q++ {
		x, z := bitOf(t.x[q], row), bitOf(t.z[q], row)
		switch {
		case x == 1 && z == 1:
			sb.WriteByte('Y')
		case x == 1:
			sb.WriteByte('X')
		case z == 1:
			sb.WriteByte('Z')
		default:
			sb.WriteByte('I')
		}
	}
	return sb.String()
}

// toRef converts to the row-major reference layout. Canonicalization runs
// there so canonical forms stay byte-identical to the legacy output.
func (t *Tableau) toRef() *RefTableau {
	rt := NewRef(t.n)
	for i := range rt.x {
		clearWords(rt.x[i])
		clearWords(rt.z[i])
		rt.r[i] = 0
	}
	for q := 0; q < t.n; q++ {
		for i := 0; i < 2*t.n; i++ {
			rt.x[i][q/64] |= bitOf(t.x[q], i) << uint(q%64)
			rt.z[i][q/64] |= bitOf(t.z[q], i) << uint(q%64)
		}
	}
	for i := 0; i < 2*t.n; i++ {
		rt.r[i] = uint8(bitOf(t.r, i))
	}
	return rt
}

// Canonical returns the stabilizer group in a canonical (Gauss-reduced)
// form, so two tableaux describing the same state compare equal even if
// their generators differ. Signs are included.
func (t *Tableau) Canonical() []string { return t.toRef().Canonical() }

// Equal reports whether two tableaux describe the same stabilizer state.
func Equal(a, b *Tableau) bool {
	if a.n != b.n {
		return false
	}
	ca, cb := a.Canonical(), b.Canonical()
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}
