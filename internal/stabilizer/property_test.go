package stabilizer

import (
	"fmt"
	"math/rand"
	"testing"
)

// The tableau-oracle property tests: random Clifford+measurement circuits
// over every gate kind × qubit count × seed, executed through both the
// column-major rewrite and the retained row-major reference, must leave
// bit-identical rows (destabilizers, stabilizers, signs), identical
// measurement outcomes from twinned rngs, and identical canonical forms.

// rowsEqual converts the column-major tableau to the reference layout and
// requires exact row/sign agreement (scratch row excluded).
func rowsEqual(t *testing.T, tb *Tableau, ref *RefTableau, ctx string) {
	t.Helper()
	conv := tb.toRef()
	for i := 0; i < 2*ref.n; i++ {
		for w := 0; w < ref.words; w++ {
			if conv.x[i][w] != ref.x[i][w] || conv.z[i][w] != ref.z[i][w] {
				t.Fatalf("%s: row %d word %d diverged: x %x/%x z %x/%x",
					ctx, i, w, conv.x[i][w], ref.x[i][w], conv.z[i][w], ref.z[i][w])
			}
		}
		if conv.r[i] != ref.r[i] {
			t.Fatalf("%s: sign of row %d diverged: %d vs %d", ctx, i, conv.r[i], ref.r[i])
		}
	}
}

// stepRandom applies one random op to both tableaux and cross-checks
// outcomes. Returns a context string describing the op for failures.
func stepRandom(t *testing.T, rng, tbRng, refRng *rand.Rand, tb *Tableau, ref *RefTableau, n int) string {
	t.Helper()
	q := rng.Intn(n)
	p := q
	if n > 1 {
		for p == q {
			p = rng.Intn(n)
		}
	}
	kinds := 11
	if n == 1 { // two-qubit cases (8..10) need a distinct partner
		kinds = 8
	}
	switch rng.Intn(kinds) {
	case 0:
		tb.H(q)
		ref.H(q)
		return fmt.Sprintf("H %d", q)
	case 1:
		tb.S(q)
		ref.S(q)
		return fmt.Sprintf("S %d", q)
	case 2:
		tb.Sdg(q)
		ref.Sdg(q)
		return fmt.Sprintf("Sdg %d", q)
	case 3:
		tb.X(q)
		ref.X(q)
		return fmt.Sprintf("X %d", q)
	case 4:
		tb.Y(q)
		ref.Y(q)
		return fmt.Sprintf("Y %d", q)
	case 5:
		tb.Z(q)
		ref.Z(q)
		return fmt.Sprintf("Z %d", q)
	case 6, 7:
		got := tb.MeasureZ(q, tbRng)
		want := ref.MeasureZ(q, refRng)
		if got != want {
			t.Fatalf("MeasureZ(%d) = %d, ref %d", q, got, want)
		}
		return fmt.Sprintf("M %d", q)
	case 8:
		tb.CNOT(q, p)
		ref.CNOT(q, p)
		return fmt.Sprintf("CNOT %d %d", q, p)
	case 9:
		tb.CZ(q, p)
		ref.CZ(q, p)
		return fmt.Sprintf("CZ %d %d", q, p)
	default:
		tb.SWAP(q, p)
		ref.SWAP(q, p)
		return fmt.Sprintf("SWAP %d %d", q, p)
	}
}

// TestTableauOracleRandomCircuits is the main equivalence property. Qubit
// counts straddle the 64-row word boundary (2n = 64 at n = 32).
func TestTableauOracleRandomCircuits(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 31, 32, 33, 64, 65, 100} {
		ops := 150
		if n > 40 {
			ops = 80
		}
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tbRng := rand.New(rand.NewSource(seed * 13))
			refRng := rand.New(rand.NewSource(seed * 13))
			tb, ref := New(n), NewRef(n)
			var last string
			for k := 0; k < ops; k++ {
				last = stepRandom(t, rng, tbRng, refRng, tb, ref, n)
				// Row-exact check every few ops keeps runtime sane at n=100.
				if k%9 == 0 {
					rowsEqual(t, tb, ref, fmt.Sprintf("n=%d seed=%d op %d (%s)", n, seed, k, last))
				}
			}
			rowsEqual(t, tb, ref, fmt.Sprintf("n=%d seed=%d final (%s)", n, seed, last))
			for q := 0; q < n; q++ {
				gotO, gotD := tb.MeasureDeterministic(q)
				wantO, wantD := ref.MeasureDeterministic(q)
				if gotD != wantD || (gotD && gotO != wantO) {
					t.Fatalf("n=%d seed=%d: MeasureDeterministic(%d) = (%d,%v), ref (%d,%v)",
						n, seed, q, gotO, gotD, wantO, wantD)
				}
			}
		}
	}
}

// TestCanonicalMatchesReference pins canonical forms (and hence Equal) to
// the legacy byte output.
func TestCanonicalMatchesReference(t *testing.T) {
	for _, n := range []int{2, 5, 33, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		tbRng := rand.New(rand.NewSource(int64(n) * 3))
		refRng := rand.New(rand.NewSource(int64(n) * 3))
		tb, ref := New(n), NewRef(n)
		for k := 0; k < 120; k++ {
			stepRandom(t, rng, tbRng, refRng, tb, ref, n)
		}
		can, refCan := tb.Canonical(), ref.Canonical()
		for i := range can {
			if can[i] != refCan[i] {
				t.Fatalf("n=%d: canonical row %d: %q vs ref %q", n, i, can[i], refCan[i])
			}
		}
	}
}

// TestMeasureDeterministicReadOnly guards the allocation-free rewrite: the
// probe must not change any row.
func TestMeasureDeterministicReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mRng := rand.New(rand.NewSource(8))
	tb := New(40)
	for k := 0; k < 200; k++ {
		q := rng.Intn(40)
		switch rng.Intn(5) {
		case 0:
			tb.H(q)
		case 1:
			tb.S(q)
		case 2:
			tb.CNOT(q, (q+1)%40)
		case 3:
			tb.CZ(q, (q+3)%40)
		case 4:
			tb.MeasureZ(q, mRng)
		}
		before := tb.Clone()
		tb.MeasureDeterministic(rng.Intn(40))
		rowsEqual(t, tb, before.toRef(), fmt.Sprintf("probe after op %d", k))
	}
}

// TestMeasureDeterministicAllocFree asserts the probe performs zero heap
// allocations (the legacy path cloned the full tableau per call).
func TestMeasureDeterministicAllocFree(t *testing.T) {
	tb := New(257)
	rng := rand.New(rand.NewSource(3))
	tb.H(0)
	for q := 0; q < 256; q++ {
		tb.CNOT(q, q+1)
	}
	tb.MeasureZ(0, rng)
	allocs := testing.AllocsPerRun(100, func() {
		tb.MeasureDeterministic(200)
	})
	if allocs != 0 {
		t.Fatalf("MeasureDeterministic allocates %.1f times per call", allocs)
	}
}

// TestSwapPointerExchange pins the O(1) SWAP to the legacy three-CNOT rows.
func TestSwapPointerExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tbRng := rand.New(rand.NewSource(18))
	refRng := rand.New(rand.NewSource(18))
	tb, ref := New(70), NewRef(70)
	for k := 0; k < 100; k++ {
		stepRandom(t, rng, tbRng, refRng, tb, ref, 70)
	}
	for trial := 0; trial < 30; trial++ {
		a, b := rng.Intn(70), rng.Intn(70)
		if a == b {
			continue
		}
		tb.SWAP(a, b)
		ref.SWAP(a, b)
	}
	rowsEqual(t, tb, ref, "swap battery")
}
