package compiler

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/placement"
)

// expandChips rewrites the compilation state for a multi-chip device
// (Options.Chips > 1): the placement policy's chip partitioner splits the
// data qubits across chips, circuit.ExpandRemote appends one communication
// qubit per chip and teleports every cross-chip two-qubit gate through the
// EPR resource, and controllers are laid out chip-grouped — chip j's data
// qubits in ascending order, then its comm qubit — so intra-chip traffic
// stays local on the mesh whatever shape the partition takes. The original
// classical-bit count is recorded as PublicBits; the teleport-correction
// bits after it are machine-internal.
func expandChips(st *State) error {
	k, n := st.Opt.Chips, st.Circuit.NumQubits
	if k > n {
		return fmt.Errorf("compiler: %d chips exceed %d qubits (each chip needs at least one data qubit)", k, n)
	}
	if st.Mapping != nil {
		return fmt.Errorf("compiler: explicit mapping with %d chips unsupported (the chip expansion adds communication qubits; use a placement policy)", k)
	}
	chipOf, err := placement.PartitionChips(st.Circuit, k, st.Opt.Placement)
	if err != nil {
		return err
	}
	expanded, err := circuit.ExpandRemote(st.Circuit, chipOf, k)
	if err != nil {
		return err
	}
	st.stats.RemoteGates = placement.ChipCut(st.Circuit, chipOf)
	st.PublicBits = st.Circuit.NumBits
	st.Circuit = expanded

	mapping := make([]int, expanded.NumQubits)
	pos := 0
	for j := 0; j < k; j++ {
		for q := 0; q < n; q++ {
			if chipOf[q] == j {
				mapping[q] = pos
				pos++
			}
		}
		mapping[n+j] = pos
		pos++
	}
	st.Mapping = mapping
	return nil
}
