package compiler

import (
	"math"
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
	"dhisq/internal/workloads"
)

// The bind-equivalence suite is the parameter-binding layer's contract:
// for any parameter map, BindParams applied to the structural (skeleton)
// artifact must be byte-for-byte identical to a fresh full compile of the
// pre-bound circuit — proving that rotation angles never affect placement,
// guards, sync bookings or any instruction byte, only codeword-table
// Params. It runs across concrete and parameterized workloads, all three
// topologies, and every placement policy.

func bindCases() []struct {
	name    string
	build   func() *circuit.Circuit
	binding func(k int) map[string]float64 // nil params -> empty map
} {
	empty := func(int) map[string]float64 { return map[string]float64{} }
	return []struct {
		name    string
		build   func() *circuit.Circuit
		binding func(k int) map[string]float64
	}{
		{"ghz_n9", func() *circuit.Circuit { return workloads.GHZ(9) }, empty},
		{"qft_n8", func() *circuit.Circuit { return workloads.QFT(8) }, empty},
		{"qft_sweep_n8", func() *circuit.Circuit { return workloads.QFTSweep(8) },
			func(k int) map[string]float64 { return workloads.QFTSweepPoint(8, k) }},
		{"vqe_n8x2", func() *circuit.Circuit { return workloads.VQEAnsatz(8, 2) },
			func(k int) map[string]float64 { return workloads.VQEAnsatzPoint(8, 2, k) }},
	}
}

func compileWith(t *testing.T, c *circuit.Circuit, kind network.TopologyKind, policy string) *Compiled {
	t.Helper()
	topo, fab := fabricFor(t, c.NumQubits, kind)
	opt := DefaultOptions(topo.Root, topo.N)
	opt.Placement = policy
	cp, err := NewPipeline().Run(&State{Circuit: c, Topo: topo, Windows: fab, Opt: opt})
	if err != nil {
		t.Fatalf("compile(%s, %q): %v", kind, policy, err)
	}
	return cp
}

// TestBindEquivalence: BindParams(structural artifact) == full compile of
// the bound circuit, byte-for-byte, across workloads × mesh/torus/tree ×
// identity/rowmajor/interaction, at several parameter points.
func TestBindEquivalence(t *testing.T) {
	kinds := []network.TopologyKind{network.TopoMesh, network.TopoTorus, network.TopoTree}
	policies := []string{"", "rowmajor", "interaction"}
	for _, tc := range bindCases() {
		for _, kind := range kinds {
			for _, policy := range policies {
				skeleton := tc.build()
				skel := compileWith(t, skeleton, kind, policy)
				for _, k := range []int{0, 1, 7} {
					label := tc.name + "/" + kind.String() + "/" + policy
					binding := tc.binding(k)
					bound, err := skeleton.Bind(binding)
					if err != nil {
						t.Fatalf("%s: bind point %d: %v", label, k, err)
					}
					want := compileWith(t, bound, kind, policy)
					got, err := skel.BindParams(binding)
					if err != nil {
						t.Fatalf("%s: BindParams point %d: %v", label, k, err)
					}
					assertSameArtifact(t, label, got, want)
					if !reflect.DeepEqual(got.Mapping, want.Mapping) {
						t.Errorf("%s: mappings differ: %v vs %v", label, got.Mapping, want.Mapping)
					}
					if !reflect.DeepEqual(got.ParamSlots, want.ParamSlots) {
						t.Errorf("%s: param slots differ: %v vs %v", label, got.ParamSlots, want.ParamSlots)
					}
				}
			}
		}
	}
}

// TestBindLeavesSkeletonUntouched: the cached skeleton artifact is shared
// process-wide; patching must never write through to it.
func TestBindLeavesSkeletonUntouched(t *testing.T) {
	c := workloads.VQEAnsatz(6, 1)
	skel := compileWith(t, c, network.TopoMesh, "")
	snapshot := make([][]float64, len(skel.Tables))
	for i, tbl := range skel.Tables {
		for _, e := range tbl {
			snapshot[i] = append(snapshot[i], e.Param)
		}
	}
	if _, err := skel.BindParams(workloads.VQEAnsatzPoint(6, 1, 3)); err != nil {
		t.Fatal(err)
	}
	for i, tbl := range skel.Tables {
		for j, e := range tbl {
			if e.Param != snapshot[i][j] {
				t.Fatalf("BindParams mutated the shared skeleton: table %d row %d", i, j)
			}
		}
	}
}

// TestRebind: a bound artifact keeps its slots, so re-binding it equals
// binding the skeleton directly.
func TestRebind(t *testing.T) {
	c := workloads.VQEAnsatz(6, 1)
	skel := compileWith(t, c, network.TopoMesh, "")
	p1, p2 := workloads.VQEAnsatzPoint(6, 1, 1), workloads.VQEAnsatzPoint(6, 1, 2)
	once, err := skel.BindParams(p2)
	if err != nil {
		t.Fatal(err)
	}
	step, err := skel.BindParams(p1)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := step.BindParams(p2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameArtifact(t, "rebind", twice, once)
}

// TestBindSharedAndCollidingSymbols: one symbol reused on one qubit shares
// a table row (and so a slot); two symbols bound to the same value keep
// distinct rows — patching one must not alias the other.
func TestBindSharedAndCollidingSymbols(t *testing.T) {
	c := circuit.New(2)
	c.RZSym(0, "a").RZSym(0, "a").RZSym(1, "b")
	c.MeasureInto(0, 0).MeasureInto(1, 1)
	skel := compileWith(t, c, network.TopoMesh, "")
	if got := len(skel.ParamSlots); got != 2 {
		t.Fatalf("want 2 slots (a interned once, b once), got %d: %v", got, skel.ParamSlots)
	}
	binding := map[string]float64{"a": 0.5, "b": 0.5}
	bc, err := c.Bind(binding)
	if err != nil {
		t.Fatal(err)
	}
	want := compileWith(t, bc, network.TopoMesh, "")
	got, err := skel.BindParams(binding)
	if err != nil {
		t.Fatal(err)
	}
	assertSameArtifact(t, "colliding-values", got, want)
	// Distinct rows: rebinding only b must leave a's row at 0.5.
	again, err := got.BindParams(map[string]float64{"a": 0.5, "b": 1.25})
	if err != nil {
		t.Fatal(err)
	}
	var seen []float64
	for _, tbl := range again.Tables {
		for _, e := range tbl {
			if e.Sym != "" {
				seen = append(seen, e.Param)
			}
		}
	}
	if !reflect.DeepEqual(seen, []float64{0.5, 1.25}) && !reflect.DeepEqual(seen, []float64{1.25, 0.5}) {
		t.Fatalf("symbol rows aliased: %v", seen)
	}
}

// TestBindErrors: missing symbols, unknown symbols, and NaN values all
// fail loudly, and a concrete artifact rejects any binding.
func TestBindErrors(t *testing.T) {
	c := workloads.VQEAnsatz(4, 1)
	skel := compileWith(t, c, network.TopoMesh, "")
	full := workloads.VQEAnsatzPoint(4, 1, 0)
	partial := map[string]float64{}
	for k, v := range full {
		partial[k] = v
	}
	delete(partial, "t0_0")
	if _, err := skel.BindParams(partial); err == nil {
		t.Error("missing parameter accepted")
	}
	unknown := map[string]float64{}
	for k, v := range full {
		unknown[k] = v
	}
	unknown["bogus"] = 1
	if _, err := skel.BindParams(unknown); err == nil {
		t.Error("unknown parameter accepted")
	}
	nan := map[string]float64{}
	for k, v := range full {
		nan[k] = v
	}
	nan["t0_0"] = math.NaN()
	if _, err := skel.BindParams(nan); err == nil {
		t.Error("NaN parameter accepted")
	}
	concrete := compileWith(t, workloads.GHZ(4), network.TopoMesh, "")
	if _, err := concrete.BindParams(map[string]float64{"x": 1}); err == nil {
		t.Error("binding a concrete artifact accepted")
	}
	if cp, err := concrete.BindParams(map[string]float64{}); err != nil || cp == nil {
		t.Errorf("empty binding of a concrete artifact rejected: %v", err)
	}
}

// TestCompiledParams: the artifact reports its symbol set sorted.
func TestCompiledParams(t *testing.T) {
	c := circuit.New(2)
	c.RZSym(1, "zz").RYSym(0, "aa").RZSym(1, "zz")
	skel := compileWith(t, c, network.TopoMesh, "")
	if got := skel.Params(); !reflect.DeepEqual(got, []string{"aa", "zz"}) {
		t.Fatalf("Params() = %v", got)
	}
}
