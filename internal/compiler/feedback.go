package compiler

import (
	"sort"

	"dhisq/internal/network"
	"dhisq/internal/placement"
)

// Feedback carries measured fabric congestion back into compilation: the
// per-link stall attribution and router utilization harvested from
// machine.Result.Net. It closes the compile↔fabric loop — a placement was
// chosen blind, the fabric measured where its traffic actually queued, and
// Feedback is the digest a re-placement (placement.CongestionPlace, the
// service's re-place path) consumes.
//
// Feedback aggregation is commutative: Absorb sums per-link stalls and
// maxes utilization, so folding the same shot set in any order — any
// worker count — produces the identical struct. That is what makes the
// re-placed program deterministic.
type Feedback struct {
	// Links is the per-directed-link stall attribution, sorted by
	// (From, To); only links that carried traffic appear.
	Links []LinkStall
	// TotalStall is every cycle any message spent queued anywhere (links
	// and router ports), summed over absorbed shots.
	TotalStall int64
	// RouterUtilization is the largest single-shot busiest-port occupancy
	// ratio seen across absorbed shots.
	RouterUtilization float64
	// Shots counts the absorbed congestion snapshots.
	Shots int
}

// LinkStall is one directed controller-mesh link's aggregated queueing
// stall.
type LinkStall struct {
	From, To int    // controller endpoints of the directed link
	Stall    int64  // cycles messages waited to enter it, summed over shots
	Messages uint64 // messages it carried, summed over shots
}

// Absorb folds one run's congestion snapshot (and its router utilization)
// into the feedback. Snapshots with the contention model disabled are
// ignored — they carry no attribution.
func (f *Feedback) Absorb(net network.CongestionStats, routerUtil float64) {
	if !net.Enabled {
		return
	}
	f.Shots++
	f.TotalStall += int64(net.TotalStall())
	if routerUtil > f.RouterUtilization {
		f.RouterUtilization = routerUtil
	}
	for _, l := range net.Links {
		f.addLink(l.From, l.To, int64(l.Stall), l.Messages)
	}
}

// addLink merges one link observation, keeping Links sorted by (From, To).
func (f *Feedback) addLink(from, to int, stall int64, messages uint64) {
	i := sort.Search(len(f.Links), func(i int) bool {
		if f.Links[i].From != from {
			return f.Links[i].From >= from
		}
		return f.Links[i].To >= to
	})
	if i < len(f.Links) && f.Links[i].From == from && f.Links[i].To == to {
		f.Links[i].Stall += stall
		f.Links[i].Messages += messages
		return
	}
	f.Links = append(f.Links, LinkStall{})
	copy(f.Links[i+1:], f.Links[i:])
	f.Links[i] = LinkStall{From: from, To: to, Stall: stall, Messages: messages}
}

// Merge folds another feedback digest into f. Like Absorb it is
// commutative and associative, so per-job digests merged in any completion
// order yield the identical aggregate.
func (f *Feedback) Merge(o *Feedback) {
	if o == nil {
		return
	}
	f.Shots += o.Shots
	f.TotalStall += o.TotalStall
	if o.RouterUtilization > f.RouterUtilization {
		f.RouterUtilization = o.RouterUtilization
	}
	for _, l := range o.Links {
		f.addLink(l.From, l.To, l.Stall, l.Messages)
	}
}

// Empty reports whether the feedback carries no stall signal — nothing for
// a congestion-weighted re-placement to act on.
func (f *Feedback) Empty() bool { return f == nil || f.TotalStall == 0 }

// LinkLoads converts the attribution into the neutral form the placement
// package consumes (placement cannot import compiler).
func (f *Feedback) LinkLoads() []placement.LinkLoad {
	if f == nil {
		return nil
	}
	out := make([]placement.LinkLoad, 0, len(f.Links))
	for _, l := range f.Links {
		if l.Stall > 0 {
			out = append(out, placement.LinkLoad{From: l.From, To: l.To, Stall: l.Stall})
		}
	}
	return out
}
