package compiler

import (
	"reflect"
	"testing"

	"dhisq/internal/network"
	"dhisq/internal/sim"
)

func snap(links ...network.LinkStat) network.CongestionStats {
	st := network.CongestionStats{Enabled: true, Links: links}
	for _, l := range links {
		st.LinkMessages += l.Messages
		st.LinkStall += l.Stall
	}
	return st
}

// TestFeedbackAbsorb pins the digest semantics: disabled snapshots are
// ignored, links merge by (From, To) and stay sorted, totals sum,
// utilization maxes.
func TestFeedbackAbsorb(t *testing.T) {
	var fb Feedback
	fb.Absorb(network.CongestionStats{Enabled: false, LinkStall: 99}, 0.9)
	if fb.Shots != 0 || fb.TotalStall != 0 || !fb.Empty() {
		t.Fatalf("disabled snapshot absorbed: %+v", fb)
	}
	fb.Absorb(snap(
		network.LinkStat{From: 3, To: 2, Messages: 4, Stall: 10},
		network.LinkStat{From: 1, To: 2, Messages: 2, Stall: 5},
	), 0.5)
	fb.Absorb(snap(
		network.LinkStat{From: 1, To: 2, Messages: 1, Stall: 7},
	), 0.25)
	if fb.Shots != 2 || fb.TotalStall != 22 {
		t.Fatalf("totals wrong: %+v", fb)
	}
	if fb.RouterUtilization != 0.5 {
		t.Fatalf("utilization %v, want max 0.5", fb.RouterUtilization)
	}
	want := []LinkStall{
		{From: 1, To: 2, Stall: 12, Messages: 3},
		{From: 3, To: 2, Stall: 10, Messages: 4},
	}
	if !reflect.DeepEqual(fb.Links, want) {
		t.Fatalf("links = %+v, want %+v", fb.Links, want)
	}
	if fb.Empty() {
		t.Fatal("non-zero feedback reported empty")
	}
}

// TestFeedbackMergeCommutes: folding per-job digests in any order yields
// the identical aggregate — the property that makes the service's
// re-place trigger deterministic at any completion order.
func TestFeedbackMergeCommutes(t *testing.T) {
	mk := func(stats ...network.CongestionStats) *Feedback {
		fb := &Feedback{}
		for _, s := range stats {
			fb.Absorb(s, 0.1*float64(s.LinkStall))
		}
		return fb
	}
	a := mk(snap(network.LinkStat{From: 0, To: 1, Messages: 1, Stall: 3}))
	b := mk(snap(
		network.LinkStat{From: 2, To: 1, Messages: 5, Stall: 8},
		network.LinkStat{From: 0, To: 1, Messages: 2, Stall: 1},
	))
	c := mk(snap(network.LinkStat{From: 0, To: 3, Messages: 9, Stall: 2}))

	fold := func(order ...*Feedback) Feedback {
		var out Feedback
		for _, f := range order {
			out.Merge(f)
		}
		return out
	}
	ref := fold(a, b, c)
	if got := fold(c, a, b); !reflect.DeepEqual(got, ref) {
		t.Fatalf("merge order changed the aggregate:\n  %+v\nvs %+v", got, ref)
	}
	if got := fold(b, c, a); !reflect.DeepEqual(got, ref) {
		t.Fatalf("merge order changed the aggregate:\n  %+v\nvs %+v", got, ref)
	}
	var zero Feedback
	zero.Merge(nil)
	if !zero.Empty() {
		t.Fatal("merging nil changed an empty feedback")
	}
}

// TestFeedbackLinkLoads: conversion keeps only stalled links, in sorted
// order, and a nil feedback converts to nothing.
func TestFeedbackLinkLoads(t *testing.T) {
	var fb Feedback
	fb.Absorb(snap(
		network.LinkStat{From: 2, To: 3, Messages: 6, Stall: 0},
		network.LinkStat{From: 0, To: 1, Messages: 1, Stall: sim.Time(4)},
	), 0)
	loads := fb.LinkLoads()
	if len(loads) != 1 || loads[0].From != 0 || loads[0].To != 1 || loads[0].Stall != 4 {
		t.Fatalf("LinkLoads = %+v", loads)
	}
	if (*Feedback)(nil).LinkLoads() != nil {
		t.Fatal("nil feedback produced loads")
	}
	if !(*Feedback)(nil).Empty() {
		t.Fatal("nil feedback not empty")
	}
}
