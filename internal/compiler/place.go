package compiler

import (
	"fmt"

	"dhisq/internal/placement"
)

// Place resolves the qubit→controller mapping. An explicit caller mapping
// always wins (benchmark suites and hand-placed circuits keep their
// layouts); otherwise the policy named by Options.Placement computes one.
// The identity policy keeps the nil-mapping convention — byte-identical to
// the pre-pipeline compiler, and hash-identical in the artifact cache.
type Place struct{}

// Name implements Pass.
func (Place) Name() string { return "place" }

// Run implements Pass.
func (Place) Run(st *State) error {
	pol, err := placement.Get(st.Opt.Placement)
	if err != nil {
		return err
	}
	if st.Opt.Chips > 1 {
		// Multi-chip: partition qubits across chips, expand cross-chip gates
		// into EPR-mediated remote constructions, and lay controllers out
		// chip-grouped. Computes st.Mapping itself, so the pass ends here.
		return expandChips(st)
	}
	if st.Mapping != nil || pol.Name() == placement.Default {
		// Explicit mapping, or identity: nothing to compute. Identity skips
		// the policy call entirely so topology-less callers (unit tests
		// driving Compile with stub windows) stay supported.
		return nil
	}
	if st.Topo == nil {
		return fmt.Errorf("compiler: placement policy %q needs a topology (use the State entry point)", pol.Name())
	}
	mapping, err := pol.Place(st.Circuit, st.Topo)
	if err != nil {
		return err
	}
	st.Mapping = mapping
	return nil
}
