package compiler

import (
	"reflect"
	"testing"

	"dhisq/internal/network"
	"dhisq/internal/workloads"
)

// TestScheduleRegistry pins the registry surface: stable names, "" →
// DefaultSchedule, every registered name valid, unknown names rejected
// with the valid set in the message.
func TestScheduleRegistry(t *testing.T) {
	want := []string{"fixed", "padded"}
	if got := ScheduleNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ScheduleNames() = %v, want %v", got, want)
	}
	for _, name := range append(want, "") {
		p, err := GetSchedule(name)
		if err != nil {
			t.Fatalf("GetSchedule(%q): %v", name, err)
		}
		if name == "" && p.Name() != DefaultSchedule {
			t.Fatalf("GetSchedule(\"\") resolved to %q, want %q", p.Name(), DefaultSchedule)
		}
		if err := ValidSchedule(name); err != nil {
			t.Fatalf("ValidSchedule(%q): %v", name, err)
		}
	}
	if _, err := GetSchedule("bogus"); err == nil {
		t.Fatal("unknown schedule policy accepted")
	}
	if err := ValidSchedule("bogus"); err == nil {
		t.Fatal("ValidSchedule accepted unknown policy")
	}
}

// TestFixedPolicyMatchesDefaultBytes: naming "fixed" explicitly must
// produce byte-identical artifacts to the empty default — the same
// ""-vs-named redundancy contract the placement registry has.
func TestFixedPolicyMatchesDefaultBytes(t *testing.T) {
	for _, tc := range equivCases() {
		c := tc.build()
		topo, fab := fabricFor(t, c.NumQubits, network.TopoMesh)
		opt := DefaultOptions(topo.Root, topo.N)
		want, err := Compile(c, nil, fab, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Schedule = "fixed"
		got, err := Compile(tc.build(), nil, fab, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameArtifact(t, tc.name+"/fixed-vs-default", got, want)
	}
}

// TestPaddedPolicyMatchesNoAdvance: the padded policy is the
// AdvanceBooking=false ablation as a named schedule — its artifacts must
// be byte-identical to the fixed replay with advance booking disabled,
// and distinguishable from the advance-booked default on a workload with
// calibrated syncs.
func TestPaddedPolicyMatchesNoAdvance(t *testing.T) {
	c := workloads.GHZ(9)
	topo, fab := fabricFor(t, c.NumQubits, network.TopoMesh)
	opt := DefaultOptions(topo.Root, topo.N)
	opt.AdvanceBooking = false
	want, err := Compile(workloads.GHZ(9), nil, fab, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.AdvanceBooking = true
	opt.Schedule = "padded"
	got, err := Compile(c, nil, fab, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameArtifact(t, "padded-vs-no-advance", got, want)
}

// TestUnknownSchedulePolicyFailsCompile: an unknown schedule name must
// fail the pipeline with the registry's error, not silently fall back.
func TestUnknownSchedulePolicyFailsCompile(t *testing.T) {
	c := workloads.GHZ(4)
	topo, fab := fabricFor(t, 4, network.TopoMesh)
	opt := DefaultOptions(topo.Root, topo.N)
	opt.Schedule = "bogus"
	if _, err := Compile(c, nil, fab, opt); err == nil {
		t.Fatal("unknown schedule policy compiled")
	}
}
