package compiler

import (
	"fmt"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/isa"
)

// compileMonolithic is the pre-pipeline compiler, kept verbatim (in this
// test-only file, so production binaries don't ship it) as the reference
// implementation the pass pipeline is proven against: the equivalence
// tests assert that the default pipeline produces byte-for-byte identical
// programs, tables, bit owners and stats for every workload × topology
// cell. When the pipeline and the monolith ever need to diverge
// intentionally, the monolith is deleted and the golden fixtures take
// over as the sole byte-level anchor.
// legacyStream restores the monolith's inline codeword interning on top
// of the scheduled-stream type (the pipeline interns in Lower instead, so
// production streams no longer carry the intern map).
type legacyStream struct {
	stream
	tableIdx map[chip.TableEntry]int
}

func newStream(id int) *legacyStream {
	return &legacyStream{stream: stream{id: id}, tableIdx: map[chip.TableEntry]int{}}
}

func (s *legacyStream) cwInstrs(e chip.TableEntry) []isa.Instr {
	idx, ok := s.tableIdx[e]
	if !ok {
		idx = len(s.table)
		s.table = append(s.table, e)
		s.tableIdx[e] = idx
	}
	return cwTrigger(idx, uint8(e.Port()))
}

func compileMonolithic(c *circuit.Circuit, mapping []int, fab Windows, opt Options) (*Compiled, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Controllers <= 0 {
		return nil, fmt.Errorf("compiler: no controllers")
	}
	if opt.PipeGuard <= 0 {
		opt.PipeGuard = 6
	}
	ctrlOf := func(q int) int {
		if mapping == nil {
			return q
		}
		return mapping[q]
	}
	for q := 0; q < c.NumQubits; q++ {
		if m := ctrlOf(q); m < 0 || m >= opt.Controllers {
			return nil, fmt.Errorf("compiler: qubit %d maps to controller %d of %d", q, m, opt.Controllers)
		}
	}

	streams := make([]*legacyStream, opt.Controllers)
	for i := range streams {
		streams[i] = newStream(i)
	}
	st := Stats{}
	bitOwner := make([]int, c.NumBits)
	bitMeasured := make([]bool, c.NumBits)
	for i := range bitOwner {
		bitOwner[i] = -1
	}

	barrier := func() {
		for _, s := range streams {
			s.insertSyncBack(opt.Root, fab.RegionWindow(s.id, opt.Root), opt.AdvanceBooking)
			st.RegionSyncs++
		}
	}
	if opt.InitialBarrier {
		barrier()
	}

	d := opt.Durations
	for opIdx, op := range c.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			barrier()

		case op.Kind == circuit.Delay:
			streams[ctrlOf(op.Qubits[0])].wait(int64(op.Param))

		case op.Kind == circuit.Measure:
			if op.Cond != nil {
				return nil, fmt.Errorf("compiler: op %d: conditioned measurement unsupported", opIdx)
			}
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := chip.TableEntry{Role: chip.RoleMeasure, Kind: circuit.Measure, Qubit: q, Channel: 0}
			s.guard(opt.PipeGuard, 1)
			s.push(unit{ins: s.cwInstrs(entry), det: true})
			// Fetch the result (pipeline blocks until MeasLatency elapses,
			// which re-anchors the timing point past the window) and store
			// it at the bit's home address.
			s.push(unit{ins: []isa.Instr{{Op: isa.OpFMR, Rd: regScratch, Imm: 0}}})
			s.anchor()
			store := append(loadImm(regAddr, int32(4*op.CBit)),
				isa.Instr{Op: isa.OpSW, Rs1: regAddr, Rs2: regScratch})
			s.push(unit{ins: store, det: true})
			// Timing point already advanced to the result time by the fmr
			// anchor; nothing further to wait for.
			bitOwner[op.CBit] = s.id
			bitMeasured[op.CBit] = true

		case op.Cond != nil:
			if op.Kind.IsTwoQubit() {
				return nil, fmt.Errorf("compiler: op %d: conditioned two-qubit gate unsupported", opIdx)
			}
			q := op.Qubits[0]
			actor := ctrlOf(q)
			s := streams[actor]
			for _, b := range op.Cond.Bits {
				if !bitMeasured[b] {
					return nil, fmt.Errorf("compiler: op %d uses bit %d before it is measured", opIdx, b)
				}
			}
			// Owners forward remote bits at this consumption site. Send units
			// are slide-stops (det: false): a later sync must never be booked
			// before them, because the simulated pipeline parks at a pending
			// sync and a deferred send can deadlock the consumer whose
			// progress that very sync transitively needs.
			for _, b := range op.Cond.Bits {
				owner := bitOwner[b]
				if owner == actor {
					continue
				}
				os := streams[owner]
				ins := append(loadImm(regAddr, int32(4*b)),
					isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
					isa.Instr{Op: isa.OpSEND, Rs1: regScratch, Imm: int32(actor)})
				os.push(unit{ins: ins})
				st.Sends++
			}
			// Actor gathers, xors, branches, and conditionally commits.
			var ins []isa.Instr
			ins = append(ins, isa.Instr{Op: isa.OpADDI, Rd: regParity}) // r2 = 0
			anchored := false
			for _, b := range op.Cond.Bits {
				if bitOwner[b] == actor {
					ins = append(ins, loadImm(regAddr, int32(4*b))...)
					ins = append(ins, isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr})
				} else {
					ins = append(ins, isa.Instr{Op: isa.OpRECV, Rd: regScratch, Imm: int32(bitOwner[b])})
					anchored = true
					st.Recvs++
				}
				ins = append(ins, isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
			}
			// Branch over the conditional body.
			brOp := isa.OpBEQ // parity==1 required: skip when parity == 0
			if op.Cond.Parity == 0 {
				brOp = isa.OpBNE
			}
			entry := tableEntryFor(op, q, ctrlOf)
			// The in-branch guard wait covers every instruction that can
			// retire between the last pipeline anchor and the commit.
			guardAmt := opt.PipeGuard + s.instrSum + int64(len(ins)) + 8
			if anchored {
				guardAmt = opt.PipeGuard + int64(len(ins)) + 8
			}
			body := waitInstrs(guardAmt)
			body = append(body, s.cwInstrs(entry)...)
			body = append(body, waitInstrs(gateDur(op, d))...)
			ins = append(ins, isa.Instr{Op: brOp, Rs1: regParity, Imm: int32(4 * (len(body) + 1))})
			ins = append(ins, body...)
			s.push(unit{ins: ins})
			if anchored {
				s.anchor()
				// The body retires after the anchor; seed the counters so the
				// next guard still covers it.
				s.instrSum = int64(len(body)) + 4
			}

		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			ca, cb := ctrlOf(a), ctrlOf(b)
			ctrlEntry := chip.TableEntry{Role: chip.RoleControl, Kind: op.Kind, Param: op.Param, Qubit: a, Partner: b}
			partEntry := chip.TableEntry{Role: chip.RoleParticipant, Kind: op.Kind, Param: op.Param, Qubit: b, Partner: a}
			if ca == cb {
				// Both halves on one node commit at the same timing point.
				s := streams[ca]
				s.guard(opt.PipeGuard, 2)
				ins := append(s.cwInstrs(ctrlEntry), s.cwInstrs(partEntry)...)
				s.push(unit{ins: ins, det: true})
				s.wait(d.TwoQubit)
				break
			}
			sa, sb := streams[ca], streams[cb]
			n := fab.NearbyWindow(ca, cb)
			// Guards first so the sync window measured backwards from the
			// commit point is identical (= n) on both sides.
			sa.guard(opt.PipeGuard, 1)
			sb.guard(opt.PipeGuard, 1)
			sa.insertSyncBack(cb, n, opt.AdvanceBooking)
			sb.insertSyncBack(ca, n, opt.AdvanceBooking)
			st.NearbySyncs += 2
			// The synchronized commit belongs to its sync's window: nothing —
			// in particular no later sync — may be inserted between them, or
			// the parked pipeline would delay the commit past foreign events.
			sa.push(unit{ins: sa.cwInstrs(ctrlEntry), det: true, window: true})
			sb.push(unit{ins: sb.cwInstrs(partEntry), det: true, window: true})
			sa.wait(d.TwoQubit)
			sb.wait(d.TwoQubit)

		default: // unconditioned one-qubit gate
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := tableEntryFor(op, q, ctrlOf)
			s.guard(opt.PipeGuard, 1)
			s.push(unit{ins: s.cwInstrs(entry), det: true})
			s.wait(gateDur(op, d))
		}
	}

	out := &Compiled{
		Programs: make([]*isa.Program, opt.Controllers),
		Tables:   make([][]chip.TableEntry, opt.Controllers),
		BitOwner: bitOwner,
		MemBytes: 4*c.NumBits + 4096,
	}
	for i, s := range streams {
		p := &isa.Program{}
		for _, u := range s.units {
			p.Instrs = append(p.Instrs, u.ins...)
		}
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHALT})
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("compiler: controller %d: %w", i, err)
		}
		out.Programs[i] = p
		out.Tables[i] = s.table
		st.Instructions += p.Len()
		st.TableEntries += len(s.table)
	}
	out.Stats = st
	return out, nil
}
