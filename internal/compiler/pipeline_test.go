package compiler

import (
	"bytes"
	"reflect"
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/isa"
	"dhisq/internal/network"
	"dhisq/internal/sim"
	"dhisq/internal/workloads"
)

// The pipeline-equivalence suite is the refactor's contract: the default
// pass pipeline must produce byte-for-byte the same compiled programs —
// not merely the same shot results — as the pre-refactor monolithic
// compiler (legacy_test.go) across workloads and topologies.

func equivCases() []struct {
	name  string
	build func() *circuit.Circuit
} {
	return []struct {
		name  string
		build func() *circuit.Circuit
	}{
		{"ghz_n9", func() *circuit.Circuit { return workloads.GHZ(9) }},
		{"bv_n10", func() *circuit.Circuit { return workloads.BV(10, workloads.AlternatingSecret) }},
		{"qft_n8", func() *circuit.Circuit { return workloads.QFT(8) }},
	}
}

func fabricFor(t *testing.T, n int, kind network.TopologyKind) (*network.Topology, *network.Fabric) {
	t.Helper()
	cfg := network.DefaultConfig(n)
	cfg.Topology = kind
	topo, err := network.NewTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo, network.NewFabric(sim.NewEngine(), topo, nil)
}

// assertSameArtifact diffs two compiled artifacts byte-for-byte: encoded
// program bytes per controller, codeword tables, bit owners, memory
// footprint and stats.
func assertSameArtifact(t *testing.T, label string, got, want *Compiled) {
	t.Helper()
	if len(got.Programs) != len(want.Programs) {
		t.Fatalf("%s: %d programs vs %d", label, len(got.Programs), len(want.Programs))
	}
	for i := range got.Programs {
		gb, err := isa.EncodeProgram(got.Programs[i])
		if err != nil {
			t.Fatalf("%s: encode got[%d]: %v", label, i, err)
		}
		wb, err := isa.EncodeProgram(want.Programs[i])
		if err != nil {
			t.Fatalf("%s: encode want[%d]: %v", label, i, err)
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s: controller %d program bytes differ (%d vs %d bytes)", label, i, len(gb), len(wb))
		}
		if !reflect.DeepEqual(got.Tables[i], want.Tables[i]) {
			t.Errorf("%s: controller %d codeword tables differ", label, i)
		}
	}
	if !reflect.DeepEqual(got.BitOwner, want.BitOwner) {
		t.Errorf("%s: bit owners differ: %v vs %v", label, got.BitOwner, want.BitOwner)
	}
	if got.MemBytes != want.MemBytes {
		t.Errorf("%s: mem bytes %d vs %d", label, got.MemBytes, want.MemBytes)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats %+v vs %+v", label, got.Stats, want.Stats)
	}
}

// TestPipelineMatchesMonolith: default pipeline == pre-refactor compiler,
// byte-for-byte, on GHZ/BV/QFT × mesh/torus/tree, with advance booking
// both on and off (the ablation path must stay pinned too).
func TestPipelineMatchesMonolith(t *testing.T) {
	kinds := []network.TopologyKind{network.TopoMesh, network.TopoTorus, network.TopoTree}
	for _, tc := range equivCases() {
		for _, kind := range kinds {
			for _, advance := range []bool{true, false} {
				c := tc.build()
				topo, fab := fabricFor(t, c.NumQubits, kind)
				opt := DefaultOptions(topo.Root, topo.N)
				opt.AdvanceBooking = advance
				label := tc.name + "/" + kind.String()
				if !advance {
					label += "/no-advance"
				}
				want, err := compileMonolithic(c, nil, fab, opt)
				if err != nil {
					t.Fatalf("%s: monolith: %v", label, err)
				}
				got, err := Compile(c, nil, fab, opt)
				if err != nil {
					t.Fatalf("%s: pipeline: %v", label, err)
				}
				assertSameArtifact(t, label, got, want)
			}
		}
	}
}

// TestPipelineMatchesMonolithWithFeedforward covers the conditioned-commit
// directive (send/recv/xor/branch assembly happens in Schedule) and
// explicit mappings, which the standard workloads don't exercise.
func TestPipelineMatchesMonolithWithFeedforward(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New(6)
		c.H(0)
		c.CNOT(0, 3)
		c.MeasureInto(0, 0)
		c.MeasureInto(3, 1)
		c.CondGate(circuit.X, circuit.Condition{Bits: []int{0, 1}, Parity: 1}, 5)
		c.BarrierAll()
		c.CondGate(circuit.Z, circuit.Condition{Bits: []int{0}, Parity: 0}, 0)
		c.DelayGate(2, 40)
		c.CNOT(4, 5)
		for q := 0; q < 6; q++ {
			c.MeasureInto(q, q)
		}
		return c
	}
	mappings := map[string][]int{
		"identity-nil": nil,
		"reversed":     {5, 4, 3, 2, 1, 0},
	}
	for name, mapping := range mappings {
		c := build()
		topo, fab := fabricFor(t, c.NumQubits, network.TopoMesh)
		opt := DefaultOptions(topo.Root, topo.N)
		want, err := compileMonolithic(c, mapping, fab, opt)
		if err != nil {
			t.Fatalf("%s: monolith: %v", name, err)
		}
		got, err := Compile(c, mapping, fab, opt)
		if err != nil {
			t.Fatalf("%s: pipeline: %v", name, err)
		}
		assertSameArtifact(t, name, got, want)
	}
}

// TestRowMajorPolicyMatchesIdentityBytes: the rowmajor policy writes the
// identity assignment out explicitly, so its programs must be
// byte-identical to the legacy nil-mapping compile (only the cache
// fingerprint differs).
func TestRowMajorPolicyMatchesIdentityBytes(t *testing.T) {
	c := workloads.GHZ(9)
	topo, fab := fabricFor(t, 9, network.TopoMesh)
	opt := DefaultOptions(topo.Root, topo.N)
	want, err := Compile(c, nil, fab, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Placement = "rowmajor"
	got, err := NewPipeline().Run(&State{Circuit: c, Topo: topo, Windows: fab, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapping == nil {
		t.Fatal("rowmajor pipeline recorded no mapping")
	}
	assertSameArtifact(t, "rowmajor-vs-identity", got, want)
}

// TestInteractionPolicyCompiles: a non-trivial policy resolves through the
// Place pass, records its mapping on the artifact, and the programs still
// validate.
func TestInteractionPolicyCompiles(t *testing.T) {
	c := workloads.BV(10, workloads.AlternatingSecret)
	topo, fab := fabricFor(t, 10, network.TopoMesh)
	opt := DefaultOptions(topo.Root, topo.N)
	opt.Placement = "interaction"
	cp, err := NewPipeline().Run(&State{Circuit: c, Topo: topo, Windows: fab, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Mapping) != c.NumQubits {
		t.Fatalf("mapping length %d, want %d", len(cp.Mapping), c.NumQubits)
	}
	// An explicit caller mapping beats the policy.
	explicit := []int{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	cp2, err := NewPipeline().Run(&State{Circuit: c, Mapping: explicit, Topo: topo, Windows: fab, Opt: opt})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp2.Mapping, explicit) {
		t.Fatalf("explicit mapping overridden: %v", cp2.Mapping)
	}
}

// TestPlacementPolicyErrors: unknown policies and topology-less
// non-identity placement fail loudly.
func TestPlacementPolicyErrors(t *testing.T) {
	c := workloads.GHZ(4)
	_, fab := fabricFor(t, 4, network.TopoMesh)
	opt := DefaultOptions(4, 4)
	opt.Placement = "bogus"
	if _, err := Compile(c, nil, fab, opt); err == nil {
		t.Fatal("unknown policy accepted")
	}
	opt.Placement = "interaction"
	if _, err := Compile(c, nil, fab, opt); err == nil {
		t.Fatal("interaction placement without topology accepted")
	}
}

// TestMalformedCircuitFailsBeforePlacement: a circuit that fails
// validation must return the validator's error — not panic inside a
// placement policy that walks the op list (regression: interaction
// weights index op.CBit/op.Qubits before Lower's own validation).
func TestMalformedCircuitFailsBeforePlacement(t *testing.T) {
	c := circuit.New(4)
	c.H(0)
	c.Ops = append(c.Ops, circuit.Op{Kind: circuit.Measure, Qubits: []int{1}, CBit: 99})
	topo, fab := fabricFor(t, 4, network.TopoMesh)
	opt := DefaultOptions(topo.Root, topo.N)
	opt.Placement = "interaction"
	_, err := NewPipeline().Run(&State{Circuit: c, Topo: topo, Windows: fab, Opt: opt})
	if err == nil {
		t.Fatal("malformed circuit compiled")
	}
}
