// Package compiler is the backend of the quantum software stack (Fig. 10):
// it lowers a dynamic circuit (internal/circuit) into one HISQ binary per
// controller plus the codeword tables the chip model binds them with.
//
// The lowering follows the Distributed-HISQ execution model:
//
//   - each controller gets its own instruction stream and runs at its own
//     pace (§7.2); there is no global schedule;
//   - two-qubit gates between controllers are aligned with nearby BISP sync:
//     the sync instruction is placed exactly N cycles of deterministic work
//     before the gate's commit point, sliding backwards over already-emitted
//     deterministic operations ("advancing the sync instruction", Fig. 6),
//     and padding when the available deterministic window is shorter than N
//     (the §4.4 overhead case);
//   - barriers become region-level syncs against the root router;
//   - measurement results are fetched with fmr, stored to data memory, and
//     forwarded with send/recv at each consumption site; parity conditions
//     compile to xor chains and a branch (the "XOR" boxes of Fig. 14).
package compiler

import (
	"fmt"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/isa"
	"dhisq/internal/sim"
)

// Windows supplies the calibrated BISP windows; *network.Fabric implements it.
type Windows interface {
	NearbyWindow(src, dst int) sim.Time
	RegionWindow(src, router int) sim.Time
}

// Options parameterizes compilation.
type Options struct {
	Durations   circuit.Durations
	MeasLatency sim.Time // trigger commit -> result available (>= Measure window)
	Root        int      // root router address for region sync
	Controllers int      // total controllers (mesh size); all join barriers
	// InitialBarrier emits a program-start region sync, the per-repetition
	// global synchronization of §2.1.4.
	InitialBarrier bool
	// PipeGuard is the margin (cycles) added when padding the timing point
	// past the classical pipeline to guarantee violation-free commits.
	PipeGuard int64
	// AdvanceBooking enables the Fig. 6 placement: sync instructions slide
	// backwards over deterministic work so the N-cycle countdown overlaps
	// useful execution (zero-cycle overhead when slack suffices, §4.2).
	// When false, every sync sits immediately before its synchronized
	// instruction with the window fully padded — the QubiC-style scheme the
	// paper improves on (§2.1.3), kept for the ablation experiment.
	AdvanceBooking bool
}

// DefaultOptions uses the paper's durations and a 5-cycle (20 ns) readout
// discrimination latency on top of the 300 ns window.
func DefaultOptions(root, controllers int) Options {
	d := circuit.PaperDurations()
	return Options{
		Durations:      d,
		MeasLatency:    d.Measure + 5,
		Root:           root,
		Controllers:    controllers,
		InitialBarrier: true,
		PipeGuard:      6,
		AdvanceBooking: true,
	}
}

// Compiled is the result: one program and codeword table per controller.
type Compiled struct {
	Programs []*isa.Program
	Tables   [][]chip.TableEntry
	// BitOwner maps each classical bit to the controller that measures it;
	// the bit's value is stored at data-memory address 4*bit on that node.
	BitOwner []int
	MemBytes int
	Stats    Stats
}

// Stats summarizes the lowering.
type Stats struct {
	Instructions int
	NearbySyncs  int
	RegionSyncs  int
	Sends        int
	Recvs        int
	TableEntries int
}

// Register conventions of generated code.
const (
	regScratch = 1 // fmr/recv/lw destination
	regParity  = 2 // xor accumulator
	regAddr    = 5 // memory addressing
	regCW      = 6 // wide codewords
	regWait    = 7 // wide waits
)

// unit is one atomic chunk of a controller stream. det units may have a
// sync instruction inserted before them by the backward scan; wait units may
// additionally be split.
type unit struct {
	ins    []isa.Instr
	dur    int64 // deterministic timing-point advance contributed by this unit
	det    bool
	wait   bool // pure wait (splittable)
	window bool // inside a sync window [B, B+N): later syncs must not book here
}

type stream struct {
	id       int
	units    []unit
	instrSum int64 // instructions since the last pipeline anchor
	waitSum  int64 // timing-point advance since the last pipeline anchor
	table    []chip.TableEntry
	tableIdx map[chip.TableEntry]int
}

func newStream(id int) *stream {
	return &stream{id: id, tableIdx: map[chip.TableEntry]int{}}
}

func (s *stream) push(u unit) {
	s.units = append(s.units, u)
	s.instrSum += int64(len(u.ins))
	if u.det {
		s.waitSum += u.dur
	}
}

// anchor marks a pipeline anchor: a blocking fmr/recv re-synchronized the
// timing point to the pipeline clock, or a commit resumed the pipeline at
// its own commit time — in both cases the pipeline clock equals the timing
// point and the guard accounting restarts.
func (s *stream) anchor() {
	s.instrSum = 0
	s.waitSum = 0
}

// waitInstrs renders a timing-point advance of d cycles.
func waitInstrs(d int64) []isa.Instr {
	if d <= 0 {
		return nil
	}
	if d <= 2047 {
		return []isa.Instr{{Op: isa.OpWAITI, Imm: int32(d)}}
	}
	return append(loadImm(regWait, int32(d)), isa.Instr{Op: isa.OpWAITR, Rs1: regWait})
}

// loadImm renders li reg, v.
func loadImm(reg uint8, v int32) []isa.Instr {
	if v >= -2048 && v <= 2047 {
		return []isa.Instr{{Op: isa.OpADDI, Rd: reg, Imm: v}}
	}
	lo := v << 20 >> 20
	hi := (v - lo) >> 12 & 0xFFFFF
	return []isa.Instr{
		{Op: isa.OpLUI, Rd: reg, Imm: hi},
		{Op: isa.OpADDI, Rd: reg, Rs1: reg, Imm: lo},
	}
}

func (s *stream) wait(d int64) {
	if d <= 0 {
		return
	}
	s.push(unit{ins: waitInstrs(d), dur: d, det: true, wait: true})
}

// cwInstrs renders the codeword trigger for a table entry, interning it.
func (s *stream) cwInstrs(e chip.TableEntry) []isa.Instr {
	idx, ok := s.tableIdx[e]
	if !ok {
		idx = len(s.table)
		s.table = append(s.table, e)
		s.tableIdx[e] = idx
	}
	v := int32(idx + 1)
	port := uint8(e.Port())
	if v <= 2047 {
		return []isa.Instr{{Op: isa.OpCWII, Rd: port, Imm: v}}
	}
	return append(loadImm(regCW, v), isa.Instr{Op: isa.OpCWIR, Rd: port, Rs1: regCW})
}

// guard pads the timing point so the next commit cannot trail the classical
// pipeline (commit time >= pipeline time, no TELF violations). extraInstrs
// accounts for instructions that will execute before the commit.
func (s *stream) guard(pipeGuard, extraInstrs int64) {
	need := s.instrSum + extraInstrs + pipeGuard - s.waitSum
	if need > 0 {
		s.wait(need)
	}
}

// insertSyncBack places a sync instruction exactly `window` cycles of
// deterministic time before the end of the stream (where the caller is about
// to emit the synchronized commit), sliding backwards over deterministic
// units and splitting waits — the Fig. 6 "advance the sync instruction"
// placement. When less deterministic slack is available (the stream starts,
// a non-deterministic operation, or a previous sync's own window bounds the
// slide), the sync books as early as permitted and the shortfall is padded
// at the gate end — the §4.4 overhead case.
//
// Every unit between the sync and the commit is marked as window territory:
// a later sync must not book inside [B, B+N) of an earlier one, because its
// booking would be transmitted at a pre-pause wall time the controller
// cannot honor (see DESIGN.md §2.3).
func (s *stream) insertSyncBack(target int, window int64, advance bool) {
	syncU := unit{ins: []isa.Instr{{Op: isa.OpSYNC, Imm: int32(target)}}, window: true}
	acc := int64(0)
	i := len(s.units)
	for advance && i > 0 && acc < window {
		u := s.units[i-1]
		if !u.det || u.window {
			break
		}
		if u.wait && acc+u.dur > window {
			// Split the wait: [dur-need] stays outside, [need] joins the window.
			need := window - acc
			before := u.dur - need
			s.units[i-1] = unit{ins: waitInstrs(before), dur: before, det: true, wait: true}
			rest := unit{ins: waitInstrs(need), dur: need, det: true, wait: true, window: true}
			s.units = append(s.units, unit{})
			copy(s.units[i+1:], s.units[i:len(s.units)-1])
			s.units[i] = rest
			s.instrSum += int64(len(rest.ins))
			acc = window
			break
		}
		acc += u.dur
		i--
	}
	// Insert the sync at position i and claim everything after it as window.
	s.units = append(s.units, unit{})
	copy(s.units[i+1:], s.units[i:len(s.units)-1])
	s.units[i] = syncU
	s.instrSum += int64(len(syncU.ins))
	for j := i + 1; j < len(s.units); j++ {
		s.units[j].window = true
	}
	if pad := window - acc; pad > 0 {
		// Shortfall: pad at the gate end so earlier commits stay put.
		s.push(unit{ins: waitInstrs(pad), dur: pad, det: true, wait: true, window: true})
	}
}

// Compile lowers the circuit. mapping[q] gives the controller of qubit q
// (nil = identity); fab supplies BISP windows.
func Compile(c *circuit.Circuit, mapping []int, fab Windows, opt Options) (*Compiled, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Controllers <= 0 {
		return nil, fmt.Errorf("compiler: no controllers")
	}
	if opt.PipeGuard <= 0 {
		opt.PipeGuard = 6
	}
	ctrlOf := func(q int) int {
		if mapping == nil {
			return q
		}
		return mapping[q]
	}
	for q := 0; q < c.NumQubits; q++ {
		if m := ctrlOf(q); m < 0 || m >= opt.Controllers {
			return nil, fmt.Errorf("compiler: qubit %d maps to controller %d of %d", q, m, opt.Controllers)
		}
	}

	streams := make([]*stream, opt.Controllers)
	for i := range streams {
		streams[i] = newStream(i)
	}
	st := Stats{}
	bitOwner := make([]int, c.NumBits)
	bitMeasured := make([]bool, c.NumBits)
	for i := range bitOwner {
		bitOwner[i] = -1
	}

	barrier := func() {
		for _, s := range streams {
			s.insertSyncBack(opt.Root, fab.RegionWindow(s.id, opt.Root), opt.AdvanceBooking)
			st.RegionSyncs++
		}
	}
	if opt.InitialBarrier {
		barrier()
	}

	d := opt.Durations
	for opIdx, op := range c.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			barrier()

		case op.Kind == circuit.Delay:
			streams[ctrlOf(op.Qubits[0])].wait(int64(op.Param))

		case op.Kind == circuit.Measure:
			if op.Cond != nil {
				return nil, fmt.Errorf("compiler: op %d: conditioned measurement unsupported", opIdx)
			}
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := chip.TableEntry{Role: chip.RoleMeasure, Kind: circuit.Measure, Qubit: q, Channel: 0}
			s.guard(opt.PipeGuard, 1)
			s.push(unit{ins: s.cwInstrs(entry), det: true})
			// Fetch the result (pipeline blocks until MeasLatency elapses,
			// which re-anchors the timing point past the window) and store
			// it at the bit's home address.
			s.push(unit{ins: []isa.Instr{{Op: isa.OpFMR, Rd: regScratch, Imm: 0}}})
			s.anchor()
			store := append(loadImm(regAddr, int32(4*op.CBit)),
				isa.Instr{Op: isa.OpSW, Rs1: regAddr, Rs2: regScratch})
			s.push(unit{ins: store, det: true})
			// Timing point already advanced to the result time by the fmr
			// anchor; nothing further to wait for.
			bitOwner[op.CBit] = s.id
			bitMeasured[op.CBit] = true

		case op.Cond != nil:
			if op.Kind.IsTwoQubit() {
				return nil, fmt.Errorf("compiler: op %d: conditioned two-qubit gate unsupported", opIdx)
			}
			q := op.Qubits[0]
			actor := ctrlOf(q)
			s := streams[actor]
			for _, b := range op.Cond.Bits {
				if !bitMeasured[b] {
					return nil, fmt.Errorf("compiler: op %d uses bit %d before it is measured", opIdx, b)
				}
			}
			// Owners forward remote bits at this consumption site. Send units
			// are slide-stops (det: false): a later sync must never be booked
			// before them, because the simulated pipeline parks at a pending
			// sync and a deferred send can deadlock the consumer whose
			// progress that very sync transitively needs.
			for _, b := range op.Cond.Bits {
				owner := bitOwner[b]
				if owner == actor {
					continue
				}
				os := streams[owner]
				ins := append(loadImm(regAddr, int32(4*b)),
					isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
					isa.Instr{Op: isa.OpSEND, Rs1: regScratch, Imm: int32(actor)})
				os.push(unit{ins: ins})
				st.Sends++
			}
			// Actor gathers, xors, branches, and conditionally commits.
			var ins []isa.Instr
			ins = append(ins, isa.Instr{Op: isa.OpADDI, Rd: regParity}) // r2 = 0
			anchored := false
			for _, b := range op.Cond.Bits {
				if bitOwner[b] == actor {
					ins = append(ins, loadImm(regAddr, int32(4*b))...)
					ins = append(ins, isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr})
				} else {
					ins = append(ins, isa.Instr{Op: isa.OpRECV, Rd: regScratch, Imm: int32(bitOwner[b])})
					anchored = true
					st.Recvs++
				}
				ins = append(ins, isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
			}
			// Branch over the conditional body.
			brOp := isa.OpBEQ // parity==1 required: skip when parity == 0
			if op.Cond.Parity == 0 {
				brOp = isa.OpBNE
			}
			entry := tableEntryFor(op, q, ctrlOf)
			// The in-branch guard wait covers every instruction that can
			// retire between the last pipeline anchor and the commit.
			guardAmt := opt.PipeGuard + s.instrSum + int64(len(ins)) + 8
			if anchored {
				guardAmt = opt.PipeGuard + int64(len(ins)) + 8
			}
			body := waitInstrs(guardAmt)
			body = append(body, s.cwInstrs(entry)...)
			body = append(body, waitInstrs(gateDur(op, d))...)
			ins = append(ins, isa.Instr{Op: brOp, Rs1: regParity, Imm: int32(4 * (len(body) + 1))})
			ins = append(ins, body...)
			s.push(unit{ins: ins})
			if anchored {
				s.anchor()
				// The body retires after the anchor; seed the counters so the
				// next guard still covers it.
				s.instrSum = int64(len(body)) + 4
			}

		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			ca, cb := ctrlOf(a), ctrlOf(b)
			ctrlEntry := chip.TableEntry{Role: chip.RoleControl, Kind: op.Kind, Param: op.Param, Qubit: a, Partner: b}
			partEntry := chip.TableEntry{Role: chip.RoleParticipant, Kind: op.Kind, Param: op.Param, Qubit: b, Partner: a}
			if ca == cb {
				// Both halves on one node commit at the same timing point.
				s := streams[ca]
				s.guard(opt.PipeGuard, 2)
				ins := append(s.cwInstrs(ctrlEntry), s.cwInstrs(partEntry)...)
				s.push(unit{ins: ins, det: true})
				s.wait(d.TwoQubit)
				break
			}
			sa, sb := streams[ca], streams[cb]
			n := fab.NearbyWindow(ca, cb)
			// Guards first so the sync window measured backwards from the
			// commit point is identical (= n) on both sides.
			sa.guard(opt.PipeGuard, 1)
			sb.guard(opt.PipeGuard, 1)
			sa.insertSyncBack(cb, n, opt.AdvanceBooking)
			sb.insertSyncBack(ca, n, opt.AdvanceBooking)
			st.NearbySyncs += 2
			// The synchronized commit belongs to its sync's window: nothing —
			// in particular no later sync — may be inserted between them, or
			// the parked pipeline would delay the commit past foreign events.
			sa.push(unit{ins: sa.cwInstrs(ctrlEntry), det: true, window: true})
			sb.push(unit{ins: sb.cwInstrs(partEntry), det: true, window: true})
			sa.wait(d.TwoQubit)
			sb.wait(d.TwoQubit)

		default: // unconditioned one-qubit gate
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := tableEntryFor(op, q, ctrlOf)
			s.guard(opt.PipeGuard, 1)
			s.push(unit{ins: s.cwInstrs(entry), det: true})
			s.wait(gateDur(op, d))
		}
	}

	out := &Compiled{
		Programs: make([]*isa.Program, opt.Controllers),
		Tables:   make([][]chip.TableEntry, opt.Controllers),
		BitOwner: bitOwner,
		MemBytes: 4*c.NumBits + 4096,
	}
	for i, s := range streams {
		p := &isa.Program{}
		for _, u := range s.units {
			p.Instrs = append(p.Instrs, u.ins...)
		}
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHALT})
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("compiler: controller %d: %w", i, err)
		}
		out.Programs[i] = p
		out.Tables[i] = s.table
		st.Instructions += p.Len()
		st.TableEntries += len(s.table)
	}
	out.Stats = st
	return out, nil
}

func tableEntryFor(op circuit.Op, q int, ctrlOf func(int) int) chip.TableEntry {
	return chip.TableEntry{Role: chip.RoleSingle, Kind: op.Kind, Param: op.Param, Qubit: q}
}

func gateDur(op circuit.Op, d circuit.Durations) int64 {
	switch {
	case op.Kind == circuit.Measure:
		return d.Measure
	case op.Kind == circuit.Delay:
		return int64(op.Param)
	case op.Kind.IsTwoQubit():
		return d.TwoQubit
	default:
		return d.OneQubit
	}
}
