// Package compiler is the backend of the quantum software stack (Fig. 10):
// it lowers a dynamic circuit (internal/circuit) into one HISQ binary per
// controller plus the codeword tables the chip model binds them with.
//
// Compilation is an explicit pass pipeline (see pipeline.go):
//
//	Place    — resolve the qubit→controller mapping via a pluggable
//	           placement policy (internal/placement) when the caller did
//	           not fix one;
//	Lower    — translate circuit ops into per-controller directive streams:
//	           the instruction payloads (codeword triggers, fmr/store,
//	           send/recv/xor sequences) plus symbolic scheduling directives
//	           (guards, anchors, sync bookings);
//	Schedule — resolve the directives into timed unit streams: the BISP
//	           sync-back/advance-booking placement against calibrated
//	           fabric windows, pipeline-guard padding, and anchor
//	           accounting;
//	Assemble — concatenate the scheduled units into validated HISQ
//	           programs and collect the codeword tables.
//
// The lowering follows the Distributed-HISQ execution model:
//
//   - each controller gets its own instruction stream and runs at its own
//     pace (§7.2); there is no global schedule;
//   - two-qubit gates between controllers are aligned with nearby BISP sync:
//     the sync instruction is placed exactly N cycles of deterministic work
//     before the gate's commit point, sliding backwards over already-emitted
//     deterministic operations ("advancing the sync instruction", Fig. 6),
//     and padding when the available deterministic window is shorter than N
//     (the §4.4 overhead case);
//   - barriers become region-level syncs against the root router;
//   - measurement results are fetched with fmr, stored to data memory, and
//     forwarded with send/recv at each consumption site; parity conditions
//     compile to xor chains and a branch (the "XOR" boxes of Fig. 14).
package compiler

import (
	"fmt"
	"math"
	"sort"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/isa"
	"dhisq/internal/sim"
)

// Windows supplies the calibrated BISP windows; *network.Fabric implements it.
type Windows interface {
	NearbyWindow(src, dst int) sim.Time
	RegionWindow(src, router int) sim.Time
}

// Options parameterizes compilation.
type Options struct {
	Durations   circuit.Durations
	MeasLatency sim.Time // trigger commit -> result available (>= Measure window)
	Root        int      // root router address for region sync
	Controllers int      // total controllers (mesh size); all join barriers
	// InitialBarrier emits a program-start region sync, the per-repetition
	// global synchronization of §2.1.4.
	InitialBarrier bool
	// PipeGuard is the margin (cycles) added when padding the timing point
	// past the classical pipeline to guarantee violation-free commits.
	PipeGuard int64
	// AdvanceBooking enables the Fig. 6 placement: sync instructions slide
	// backwards over deterministic work so the N-cycle countdown overlaps
	// useful execution (zero-cycle overhead when slack suffices, §4.2).
	// When false, every sync sits immediately before its synchronized
	// instruction with the window fully padded — the QubiC-style scheme the
	// paper improves on (§2.1.3), kept for the ablation experiment.
	AdvanceBooking bool
	// Placement names the placement policy the Place pass applies when no
	// explicit mapping is given ("" = "identity", the legacy behavior).
	// Part of the artifact fingerprint: two policies never share a cache
	// entry even when they happen to compute the same mapping.
	Placement string
	// Schedule names the scheduling policy the Schedule pass applies
	// ("" = "fixed", the legacy directive replay). Part of the artifact
	// fingerprint, exactly like Placement: two policies never share a
	// cache entry even when they emit the same programs.
	Schedule string
	// Collective enables the collective-aware feed-forward lowering
	// (collective.go): a consumed remote bit is fetched from its nearest
	// holder and re-stored at the consumer — repeated consumption grows a
	// broadcast tree instead of a star around the owner — and multi-bit
	// parity gathers lower to farthest-first XOR relay chains, a software
	// reduce over the fabric instead of an all-owners fan-in at the actor.
	// Off (the default) is byte-identical to the pre-collective lowering.
	// Part of the artifact fingerprint (keyVersion 6). Requires the
	// State-based entry points: nearest-holder selection needs the
	// topology, which the Windows interface hides.
	Collective bool
	// Chips splits the data qubits across this many chips (0 or 1 = the
	// single-chip legacy model, byte-identical to before the multi-chip
	// refactor). The Place pass partitions qubits across chips, appends one
	// communication qubit per chip, and rewrites cross-chip two-qubit gates
	// into EPR-mediated teleported constructions (DESIGN.md §13). Part of
	// the artifact fingerprint (keyVersion 7).
	Chips int
	// EPRLatency is the cycle cost of one inter-chip EPR-pair generation
	// (0 falls back to the two-qubit gate duration). Part of the artifact
	// fingerprint.
	EPRLatency sim.Time
}

// DefaultOptions uses the paper's durations and a 5-cycle (20 ns) readout
// discrimination latency on top of the 300 ns window.
func DefaultOptions(root, controllers int) Options {
	d := circuit.PaperDurations()
	return Options{
		Durations:      d,
		MeasLatency:    d.Measure + 5,
		Root:           root,
		Controllers:    controllers,
		InitialBarrier: true,
		PipeGuard:      6,
		AdvanceBooking: true,
	}
}

// ParamSlot locates one bindable angle inside a compiled artifact: the
// codeword-table row (Ctrl, Index) whose Param holds the value of symbolic
// parameter Sym. The Lower pass records one slot per interned symbolic
// entry, so BindParams can patch a copied artifact without re-running any
// pass — rotation angles never appear in instruction bytes, guards or sync
// arithmetic (the bind contract, DESIGN.md §8).
type ParamSlot struct {
	Ctrl  int    // controller whose table holds the slot
	Index int    // row index within that controller's table
	Sym   string // symbolic parameter name
}

// Compiled is the result: one program and codeword table per controller.
type Compiled struct {
	Programs []*isa.Program
	Tables   [][]chip.TableEntry
	// BitOwner maps each classical bit to the controller that measures it;
	// the bit's value is stored at data-memory address 4*bit on that node.
	BitOwner []int
	MemBytes int
	Stats    Stats
	// Mapping is the qubit→controller mapping this artifact was compiled
	// with, after placement resolution (nil = identity). Job APIs echo it
	// so remote users can see where the Place pass put their qubits.
	Mapping []int
	// ParamSlots locates every bindable angle (empty for fully concrete
	// circuits). Slots survive binding, so a bound artifact can be re-bound.
	ParamSlots []ParamSlot
	// PublicBits is the classical-bit count of the pre-expansion circuit
	// when the multi-chip expansion appended teleport-correction bits after
	// it (0 = every bit is public). Result readers truncate to this, so a
	// k-chip histogram is directly comparable to the single-chip run.
	PublicBits int
}

// Params returns the sorted set of symbolic parameter names the artifact's
// slots reference (nil when the circuit was fully concrete).
func (c *Compiled) Params() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range c.ParamSlots {
		if !seen[s.Sym] {
			seen[s.Sym] = true
			out = append(out, s.Sym)
		}
	}
	sort.Strings(out)
	return out
}

// BindParams returns a copy of the artifact with every parameter slot
// patched to its value from vals: programs, bit owners, mapping and stats
// are shared (they cannot depend on rotation angles), and only the
// codeword tables containing slots are copied. Every slot symbol must be
// supplied, every supplied name must name a slot, and values must not be
// NaN; ±0 is canonicalized exactly as circuit.Bind does, so the result is
// byte-for-byte identical to a fresh full compile of the pre-bound
// circuit (the equivalence the compiler tests prove). The receiver — which
// may be the cached, shared structural artifact — is never mutated.
func (c *Compiled) BindParams(vals map[string]float64) (*Compiled, error) {
	need := map[string]bool{}
	for _, s := range c.ParamSlots {
		need[s.Sym] = true
	}
	for name, v := range vals {
		if !need[name] {
			return nil, fmt.Errorf("compiler: bind: unknown parameter %q", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("compiler: bind: parameter %q is %v (angles must be finite)", name, v)
		}
	}
	for name := range need {
		if _, ok := vals[name]; !ok {
			return nil, fmt.Errorf("compiler: bind: parameter %q left unbound", name)
		}
	}
	out := *c
	out.Tables = append([][]chip.TableEntry(nil), c.Tables...)
	copied := map[int]bool{}
	for _, s := range c.ParamSlots {
		if !copied[s.Ctrl] {
			out.Tables[s.Ctrl] = append([]chip.TableEntry(nil), c.Tables[s.Ctrl]...)
			copied[s.Ctrl] = true
		}
		out.Tables[s.Ctrl][s.Index].Param = circuit.CanonParam(vals[s.Sym])
	}
	return &out, nil
}

// Stats summarizes the lowering.
type Stats struct {
	Instructions int
	NearbySyncs  int
	RegionSyncs  int
	Sends        int
	Recvs        int
	TableEntries int
	// RemoteGates counts the two-qubit gates the chip expansion teleported
	// across chips (0 for single-chip compiles).
	RemoteGates int
}

// Register conventions of generated code.
const (
	regScratch = 1 // fmr/recv/lw destination
	regParity  = 2 // xor accumulator
	regAddr    = 5 // memory addressing
	regCW      = 6 // wide codewords
	regWait    = 7 // wide waits
)

// unit is one atomic chunk of a controller stream. det units may have a
// sync instruction inserted before them by the backward scan; wait units may
// additionally be split.
type unit struct {
	ins    []isa.Instr
	dur    int64 // deterministic timing-point advance contributed by this unit
	det    bool
	wait   bool // pure wait (splittable)
	window bool // inside a sync window [B, B+N): later syncs must not book here
}

// stream is one controller's scheduled unit stream. Codeword interning
// happens at lowering time (lowerStream.cwInstrs); Schedule attaches the
// finished table here for Assemble to collect.
type stream struct {
	id       int
	units    []unit
	instrSum int64 // instructions since the last pipeline anchor
	waitSum  int64 // timing-point advance since the last pipeline anchor
	table    []chip.TableEntry
}

func (s *stream) push(u unit) {
	s.units = append(s.units, u)
	s.instrSum += int64(len(u.ins))
	if u.det {
		s.waitSum += u.dur
	}
}

// anchor marks a pipeline anchor: a blocking fmr/recv re-synchronized the
// timing point to the pipeline clock, or a commit resumed the pipeline at
// its own commit time — in both cases the pipeline clock equals the timing
// point and the guard accounting restarts.
func (s *stream) anchor() {
	s.instrSum = 0
	s.waitSum = 0
}

// waitInstrs renders a timing-point advance of d cycles.
func waitInstrs(d int64) []isa.Instr {
	if d <= 0 {
		return nil
	}
	if d <= 2047 {
		return []isa.Instr{{Op: isa.OpWAITI, Imm: int32(d)}}
	}
	return append(loadImm(regWait, int32(d)), isa.Instr{Op: isa.OpWAITR, Rs1: regWait})
}

// loadImm renders li reg, v.
func loadImm(reg uint8, v int32) []isa.Instr {
	if v >= -2048 && v <= 2047 {
		return []isa.Instr{{Op: isa.OpADDI, Rd: reg, Imm: v}}
	}
	lo := v << 20 >> 20
	hi := (v - lo) >> 12 & 0xFFFFF
	return []isa.Instr{
		{Op: isa.OpLUI, Rd: reg, Imm: hi},
		{Op: isa.OpADDI, Rd: reg, Rs1: reg, Imm: lo},
	}
}

func (s *stream) wait(d int64) {
	if d <= 0 {
		return
	}
	s.push(unit{ins: waitInstrs(d), dur: d, det: true, wait: true})
}

// cwTrigger renders the codeword trigger for interned table index idx on
// the given port (indices are 1-based on the wire).
func cwTrigger(idx int, port uint8) []isa.Instr {
	v := int32(idx + 1)
	if v <= 2047 {
		return []isa.Instr{{Op: isa.OpCWII, Rd: port, Imm: v}}
	}
	return append(loadImm(regCW, v), isa.Instr{Op: isa.OpCWIR, Rd: port, Rs1: regCW})
}

// guard pads the timing point so the next commit cannot trail the classical
// pipeline (commit time >= pipeline time, no TELF violations). extraInstrs
// accounts for instructions that will execute before the commit.
func (s *stream) guard(pipeGuard, extraInstrs int64) {
	need := s.instrSum + extraInstrs + pipeGuard - s.waitSum
	if need > 0 {
		s.wait(need)
	}
}

// insertSyncBack places a sync instruction exactly `window` cycles of
// deterministic time before the end of the stream (where the caller is about
// to emit the synchronized commit), sliding backwards over deterministic
// units and splitting waits — the Fig. 6 "advance the sync instruction"
// placement. When less deterministic slack is available (the stream starts,
// a non-deterministic operation, or a previous sync's own window bounds the
// slide), the sync books as early as permitted and the shortfall is padded
// at the gate end — the §4.4 overhead case.
//
// Every unit between the sync and the commit is marked as window territory:
// a later sync must not book inside [B, B+N) of an earlier one, because its
// booking would be transmitted at a pre-pause wall time the controller
// cannot honor (see DESIGN.md §2.3).
func (s *stream) insertSyncBack(target int, window int64, advance bool) {
	syncU := unit{ins: []isa.Instr{{Op: isa.OpSYNC, Imm: int32(target)}}, window: true}
	acc := int64(0)
	i := len(s.units)
	for advance && i > 0 && acc < window {
		u := s.units[i-1]
		if !u.det || u.window {
			break
		}
		if u.wait && acc+u.dur > window {
			// Split the wait: [dur-need] stays outside, [need] joins the window.
			need := window - acc
			before := u.dur - need
			s.units[i-1] = unit{ins: waitInstrs(before), dur: before, det: true, wait: true}
			rest := unit{ins: waitInstrs(need), dur: need, det: true, wait: true, window: true}
			s.units = append(s.units, unit{})
			copy(s.units[i+1:], s.units[i:len(s.units)-1])
			s.units[i] = rest
			s.instrSum += int64(len(rest.ins))
			acc = window
			break
		}
		acc += u.dur
		i--
	}
	// Insert the sync at position i and claim everything after it as window.
	s.units = append(s.units, unit{})
	copy(s.units[i+1:], s.units[i:len(s.units)-1])
	s.units[i] = syncU
	s.instrSum += int64(len(syncU.ins))
	for j := i + 1; j < len(s.units); j++ {
		s.units[j].window = true
	}
	if pad := window - acc; pad > 0 {
		// Shortfall: pad at the gate end so earlier commits stay put.
		s.push(unit{ins: waitInstrs(pad), dur: pad, det: true, wait: true, window: true})
	}
}

// Compile lowers the circuit through the standard pass pipeline.
// mapping[q] gives the controller of qubit q (nil = identity, or, when
// opt.Placement names a non-identity policy, "let the Place pass decide" —
// which requires the State-based entry point since placement needs the
// topology; this convenience wrapper has none and rejects such options).
// fab supplies BISP windows.
func Compile(c *circuit.Circuit, mapping []int, fab Windows, opt Options) (*Compiled, error) {
	return NewPipeline().Run(&State{Circuit: c, Mapping: mapping, Windows: fab, Opt: opt})
}

func tableEntryFor(op circuit.Op, q int, ctrlOf func(int) int) chip.TableEntry {
	return chip.TableEntry{Role: chip.RoleSingle, Kind: op.Kind, Param: op.Param, Qubit: q, Sym: op.Sym}
}

func gateDur(op circuit.Op, d circuit.Durations) int64 {
	switch {
	case op.Kind == circuit.Measure:
		return d.Measure
	case op.Kind == circuit.Delay:
		return int64(op.Param)
	case op.Kind.IsTwoQubit():
		return d.TwoQubit
	default:
		return d.OneQubit
	}
}
