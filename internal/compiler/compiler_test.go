package compiler

import (
	"testing"

	"dhisq/internal/circuit"
	"dhisq/internal/isa"
	"dhisq/internal/sim"
)

// fixedWindows is a Windows stub with constant latencies.
type fixedWindows struct {
	nearby, region sim.Time
}

func (f fixedWindows) NearbyWindow(src, dst int) sim.Time    { return f.nearby }
func (f fixedWindows) RegionWindow(src, router int) sim.Time { return f.region }

func opts(controllers int) Options {
	o := DefaultOptions(controllers, controllers) // root address unused by stub
	o.InitialBarrier = false
	return o
}

func countOp(p *isa.Program, op isa.Op) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestCompileSingleQubitGate(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	cp, err := Compile(c, nil, fixedWindows{2, 10}, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := countOp(cp.Programs[0], isa.OpCWII); got != 1 {
		t.Fatalf("controller 0 cw count = %d", got)
	}
	if got := countOp(cp.Programs[1], isa.OpCWII); got != 0 {
		t.Fatalf("controller 1 should be idle, cw count = %d", got)
	}
	// Every program halts.
	for i, p := range cp.Programs {
		if p.Instrs[p.Len()-1].Op != isa.OpHALT {
			t.Fatalf("program %d missing halt", i)
		}
	}
	if len(cp.Tables[0]) != 1 {
		t.Fatalf("table size = %d", len(cp.Tables[0]))
	}
}

func TestCompileTwoQubitGateEmitsPairedSyncs(t *testing.T) {
	c := circuit.New(2)
	c.CNOT(0, 1)
	cp, err := Compile(c, nil, fixedWindows{4, 10}, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := countOp(cp.Programs[i], isa.OpSYNC); got != 1 {
			t.Fatalf("controller %d sync count = %d", i, got)
		}
	}
	// The sync targets cross-reference each other.
	findSync := func(p *isa.Program) int32 {
		for _, in := range p.Instrs {
			if in.Op == isa.OpSYNC {
				return in.Imm
			}
		}
		return -1
	}
	if findSync(cp.Programs[0]) != 1 || findSync(cp.Programs[1]) != 0 {
		t.Fatal("sync targets do not cross-reference")
	}
	if cp.Stats.NearbySyncs != 2 {
		t.Fatalf("stats syncs = %d", cp.Stats.NearbySyncs)
	}
}

func TestSyncWindowPlacement(t *testing.T) {
	// The wait time between each sync and its gate commit must equal the
	// window on both sides — the alignment precondition (DESIGN.md §2.3).
	c := circuit.New(2)
	c.H(0) // 5 cycles of slack on controller 0 only
	c.CNOT(0, 1)
	const window = 4
	cp, err := Compile(c, nil, fixedWindows{window, 10}, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	for side := 0; side < 2; side++ {
		p := cp.Programs[side]
		syncAt := -1
		for i, in := range p.Instrs {
			if in.Op == isa.OpSYNC {
				syncAt = i
				break
			}
		}
		if syncAt < 0 {
			t.Fatalf("side %d: no sync", side)
		}
		// Sum waits from the sync to the first Z-port commit.
		var waits int64
		found := false
		for _, in := range p.Instrs[syncAt+1:] {
			if in.Op == isa.OpWAITI {
				waits += int64(in.Imm)
				continue
			}
			if in.Op == isa.OpCWII && in.Rd == 1 { // Z port
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("side %d: no synchronized commit", side)
		}
		if waits != window {
			t.Fatalf("side %d: window = %d cycles, want %d", side, waits, window)
		}
	}
}

func TestCompileMeasurementAndFeedback(t *testing.T) {
	c := circuit.New(2)
	b := c.MeasureNew(0)
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{b}, Parity: 1}, 1)
	cp, err := Compile(c, nil, fixedWindows{2, 10}, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := cp.Programs[0], cp.Programs[1]
	if countOp(p0, isa.OpFMR) != 1 {
		t.Fatal("owner missing fmr")
	}
	if countOp(p0, isa.OpSEND) != 1 {
		t.Fatal("owner missing send")
	}
	if countOp(p1, isa.OpRECV) != 1 {
		t.Fatal("consumer missing recv")
	}
	if countOp(p1, isa.OpBEQ) != 1 {
		t.Fatal("consumer missing branch")
	}
	if cp.BitOwner[b] != 0 {
		t.Fatalf("bit owner = %d", cp.BitOwner[b])
	}
}

func TestCompileParityCondition(t *testing.T) {
	c := circuit.New(3)
	b1 := c.MeasureNew(0)
	b2 := c.MeasureNew(1)
	c.CondGate(circuit.Z, circuit.Condition{Bits: []int{b1, b2}, Parity: 1}, 2)
	cp, err := Compile(c, nil, fixedWindows{2, 10}, opts(3))
	if err != nil {
		t.Fatal(err)
	}
	p2 := cp.Programs[2]
	if countOp(p2, isa.OpRECV) != 2 || countOp(p2, isa.OpXOR) != 2 {
		t.Fatalf("parity chain: %d recv, %d xor", countOp(p2, isa.OpRECV), countOp(p2, isa.OpXOR))
	}
}

func TestCompileRejectsUseBeforeMeasure(t *testing.T) {
	c := &circuit.Circuit{NumQubits: 2, NumBits: 1}
	c.CondGate(circuit.X, circuit.Condition{Bits: []int{0}, Parity: 1}, 1)
	if _, err := Compile(c, nil, fixedWindows{2, 10}, opts(2)); err == nil {
		t.Fatal("expected use-before-measure error")
	}
}

func TestCompileRejectsConditionedTwoQubit(t *testing.T) {
	c := circuit.New(2)
	b := c.MeasureNew(0)
	c.CondGate(circuit.CNOT, circuit.Condition{Bits: []int{b}, Parity: 1}, 0, 1)
	if _, err := Compile(c, nil, fixedWindows{2, 10}, opts(2)); err == nil {
		t.Fatal("expected unsupported-op error")
	}
}

func TestCompileBadMapping(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	if _, err := Compile(c, []int{0, 9}, fixedWindows{2, 10}, opts(2)); err == nil {
		t.Fatal("expected mapping range error")
	}
}

func TestTableDeduplication(t *testing.T) {
	c := circuit.New(1)
	for i := 0; i < 50; i++ {
		c.H(0)
	}
	cp, err := Compile(c, nil, fixedWindows{2, 10}, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Tables[0]) != 1 {
		t.Fatalf("repeated gate interned %d entries", len(cp.Tables[0]))
	}
}

func TestInitialBarrierOnAllControllers(t *testing.T) {
	c := circuit.New(1)
	c.H(0)
	o := DefaultOptions(3, 3)
	cp, err := Compile(c, nil, fixedWindows{2, 10}, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if countOp(cp.Programs[i], isa.OpSYNC) != 1 {
			t.Fatalf("controller %d missing the start barrier", i)
		}
	}
}

func TestWideWaitUsesRegister(t *testing.T) {
	c := circuit.New(1)
	c.DelayGate(0, 100_000)
	cp, err := Compile(c, nil, fixedWindows{2, 10}, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if countOp(cp.Programs[0], isa.OpWAITR) != 1 {
		t.Fatal("expected li+waitr expansion for a wide wait")
	}
}
