package compiler

import (
	"sort"

	"dhisq/internal/circuit"
	"dhisq/internal/isa"
	"dhisq/internal/network"
)

// Collective-aware feed-forward lowering (Options.Collective). The legacy
// lowering distributes measured bits as a star: every consumption site
// makes each remote bit's owner send it straight to the actor, and the
// actor fan-ins one RECV per remote bit. This file lowers the same sites
// through the two collective shapes the fabric's network.Collective layer
// provides for runtime traffic:
//
//   - broadcast: a single remote bit is fetched from its *nearest current
//     holder*, and the actor stores the received value at the bit's home
//     address (4*bit) — becoming a holder itself. Consumers of a hot bit
//     therefore chain into a distance-ordered distribution tree instead of
//     all loading the owner's uplink.
//   - reduce: a multi-bit parity gather becomes an XOR relay chain over
//     the owners, ordered farthest-first from the actor. Each owner folds
//     its own bits locally, XORs in the running parity from its
//     predecessor, and forwards one word — the actor receives a single
//     combined value instead of one message per owner.
//
// Both shapes preserve the deadlock-freedom argument of the legacy sends:
// every unit emitted on a non-actor stream is a slide-stop (det: false),
// so no later sync can book before it, and the relay edges form a chain
// that only points forward (owner_i -> owner_i+1 -> actor), so the
// blocking RECVs resolve by induction over program order exactly like the
// actor's own gathers always have.

// holdsBit reports whether ctrl appears in the bit's holder set.
func holdsBit(holders []int, ctrl int) bool {
	for _, h := range holders {
		if h == ctrl {
			return true
		}
	}
	return false
}

// nearestHolder picks the holder closest to the consumer (smallest id on
// ties, so the choice — and the compiled program — is deterministic).
func nearestHolder(holders []int, to int, dist func(int, int) int) int {
	best, bestD := holders[0], dist(holders[0], to)
	for _, h := range holders[1:] {
		if d := dist(h, to); d < bestD || (d == bestD && h < best) {
			best, bestD = h, d
		}
	}
	return best
}

// topoDistance builds the hop-count metric nearest-holder selection and
// relay ordering use: mesh distance where intra-layer links exist, tree
// path hops on the pure-tree topology.
func topoDistance(topo *network.Topology) func(int, int) int {
	if topo.Cfg.Topology == network.TopoTree {
		return topo.TreePathHops
	}
	return topo.MeshDistance
}

// lowerCondCollective lowers one parity-conditioned commit with the
// collective shapes above. It mirrors the legacy dCond path exactly — same
// condSite, same branch assembly in the Schedule pass — and differs only
// in how the remote bits reach the actor.
func (st *State) lowerCondCollective(streams []*lowerStream, op circuit.Op, actor, q int, holders map[int][]int, dist func(int, int) int) {
	s := streams[actor]
	var local, remote []int
	for _, b := range op.Cond.Bits {
		if holdsBit(holders[b], actor) {
			local = append(local, b)
		} else {
			remote = append(remote, b)
		}
	}

	// Parity is an XOR fold — commutative — so gathering locals first and
	// remotes after computes the same bit as the legacy interleaved order.
	pre := []isa.Instr{{Op: isa.OpADDI, Rd: regParity}} // r2 = 0
	for _, b := range local {
		pre = append(pre, loadImm(regAddr, int32(4*b))...)
		pre = append(pre,
			isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
			isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
	}
	anchored := false

	switch {
	case len(remote) == 1:
		// Broadcast-tree fetch: nearest holder sends, actor re-stores.
		b := remote[0]
		h := nearestHolder(holders[b], actor, dist)
		hs := streams[h]
		ins := append(loadImm(regAddr, int32(4*b)),
			isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
			isa.Instr{Op: isa.OpSEND, Rs1: regScratch, Imm: int32(actor)})
		hs.unit(unit{ins: ins})
		st.stats.Sends++
		pre = append(pre, isa.Instr{Op: isa.OpRECV, Rd: regScratch, Imm: int32(h)})
		st.stats.Recvs++
		// Store the fetched value at the bit's home address: the actor is
		// now a holder, and the *next* consumer of this bit fetches from
		// whichever holder is nearest to it.
		pre = append(pre, loadImm(regAddr, int32(4*b))...)
		pre = append(pre,
			isa.Instr{Op: isa.OpSW, Rs1: regAddr, Rs2: regScratch},
			isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
		holders[b] = append(holders[b], actor)
		anchored = true

	case len(remote) >= 2:
		// Reduce relay chain: group the remote bits by owner, order the
		// owners farthest-first from the actor, and thread one running
		// parity word down the chain.
		groups := map[int][]int{}
		var order []int
		for _, b := range remote {
			o := st.bitOwner[b]
			if _, ok := groups[o]; !ok {
				order = append(order, o)
			}
			groups[o] = append(groups[o], b)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := dist(order[i], actor), dist(order[j], actor)
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		for i, o := range order {
			os := streams[o]
			next := actor
			if i+1 < len(order) {
				next = order[i+1]
			}
			gather := []isa.Instr{{Op: isa.OpADDI, Rd: regParity}}
			for _, b := range groups[o] {
				gather = append(gather, loadImm(regAddr, int32(4*b))...)
				gather = append(gather,
					isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
					isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
			}
			if i == 0 {
				// Chain head: local fold and forward, nothing to receive.
				gather = append(gather, isa.Instr{Op: isa.OpSEND, Rs1: regParity, Imm: int32(next)})
				os.unit(unit{ins: gather})
			} else {
				// Chain link: local fold, then block on the predecessor's
				// running parity. The RECV re-anchors the owner's timing
				// point (same contract as the actor's gathers), so the
				// anchor directive keeps its guard accounting honest.
				os.unit(unit{ins: gather})
				os.unit(unit{ins: []isa.Instr{{Op: isa.OpRECV, Rd: regScratch, Imm: int32(order[i-1])}}})
				os.anchorDir()
				os.unit(unit{ins: []isa.Instr{
					{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch},
					{Op: isa.OpSEND, Rs1: regParity, Imm: int32(next)},
				}})
				st.stats.Recvs++
			}
			st.stats.Sends++
		}
		pre = append(pre,
			isa.Instr{Op: isa.OpRECV, Rd: regScratch, Imm: int32(order[len(order)-1])},
			isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
		st.stats.Recvs++
		anchored = true
	}

	brOp := isa.OpBEQ // parity==1 required: skip when parity == 0
	if op.Cond.Parity == 0 {
		brOp = isa.OpBNE
	}
	entry := tableEntryFor(op, q, nil)
	s.dirs = append(s.dirs, directive{kind: dCond, cond: &condSite{
		pre:      pre,
		brOp:     brOp,
		cw:       s.cwInstrs(entry),
		gateWait: gateDur(op, st.Opt.Durations),
		anchored: anchored,
	}})
}
