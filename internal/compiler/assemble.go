package compiler

import (
	"fmt"

	"dhisq/internal/chip"
	"dhisq/internal/isa"
)

// Assemble is the emission pass: it concatenates each controller's
// scheduled units into one HISQ program, appends the halt, validates every
// binary, and packages programs, codeword tables, bit ownership and the
// resolved mapping into the immutable Compiled artifact.
type Assemble struct{}

// Name implements Pass.
func (Assemble) Name() string { return "assemble" }

// Run implements Pass.
func (Assemble) Run(st *State) error {
	if st.scheduled == nil {
		return fmt.Errorf("compiler: assemble before schedule")
	}
	out := &Compiled{
		Programs:   make([]*isa.Program, len(st.scheduled)),
		Tables:     make([][]chip.TableEntry, len(st.scheduled)),
		BitOwner:   st.bitOwner,
		MemBytes:   4*st.Circuit.NumBits + 4096,
		ParamSlots: st.paramSlots,
		PublicBits: st.PublicBits,
	}
	if st.Mapping != nil {
		// Copy: the artifact is cached and shared process-wide, and an
		// explicit st.Mapping aliases the caller's slice — a caller
		// mutating it later must not corrupt the echoed mapping.
		out.Mapping = append([]int(nil), st.Mapping...)
	}
	for i, s := range st.scheduled {
		p := &isa.Program{}
		for _, u := range s.units {
			p.Instrs = append(p.Instrs, u.ins...)
		}
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.OpHALT})
		if err := p.Validate(); err != nil {
			return fmt.Errorf("compiler: controller %d: %w", i, err)
		}
		out.Programs[i] = p
		out.Tables[i] = s.table
		st.stats.Instructions += p.Len()
		st.stats.TableEntries += len(s.table)
	}
	out.Stats = st.stats
	st.out = out
	return nil
}
