package compiler

import (
	"fmt"

	"dhisq/internal/chip"
	"dhisq/internal/circuit"
	"dhisq/internal/isa"
)

// The Lower pass translates circuit ops into per-controller directive
// streams. A directive is either a fully-rendered instruction payload
// (codeword triggers are interned here, so table layout is fixed at
// lowering time) or a symbolic scheduling request — guard, anchor, sync
// booking, timed wait — whose cycle arithmetic the Schedule pass resolves.
// The split is exact: Schedule replays each stream's directives through
// the same per-stream accounting the monolithic compiler ran inline, so
// the pipeline's output is byte-identical (legacy_test.go + the equivalence
// tests hold it to that).

type dirKind uint8

const (
	// dUnit appends a pre-rendered unit verbatim.
	dUnit dirKind = iota
	// dWait advances the timing point by amt cycles (no-op when <= 0).
	dWait
	// dGuard pads so the next commit cannot trail the classical pipeline;
	// amt counts the instructions that will retire before the commit.
	dGuard
	// dAnchor restarts the guard accounting at a pipeline anchor.
	dAnchor
	// dSync books a BISP sync against target with the given window,
	// sliding backwards over deterministic work (Fig. 6).
	dSync
	// dCond emits a parity-conditioned commit; the branch body depends on
	// schedule-time guard state, so only its ingredients are recorded.
	dCond
)

type directive struct {
	kind   dirKind
	u      unit  // dUnit
	amt    int64 // dWait advance / dGuard extra instructions
	target int   // dSync target address
	window int64 // dSync calibrated window
	cond   *condSite
}

// condSite carries the schedule-independent parts of a conditioned commit:
// the gather/xor prefix, the branch polarity, the interned codeword
// trigger, the gate-duration wait, and whether a recv anchored the stream.
type condSite struct {
	pre      []isa.Instr
	brOp     isa.Op
	cw       []isa.Instr
	gateWait int64
	anchored bool
}

// lowerStream is one controller's lowering output: its directive stream
// plus the codeword table interned in emission order and the parameter
// slots (table rows holding a symbolic angle) discovered while interning.
type lowerStream struct {
	id       int
	dirs     []directive
	table    []chip.TableEntry
	tableIdx map[chip.TableEntry]int
	slots    []ParamSlot
}

func newLowerStream(id int) *lowerStream {
	return &lowerStream{id: id, tableIdx: map[chip.TableEntry]int{}}
}

// cwInstrs interns a table entry and renders its trigger — the same
// interning the monolithic compiler did on its streams, so indices (and
// therefore instruction bytes) match exactly. A freshly interned symbolic
// entry records a parameter slot: that table row's Param is what
// BindParams patches. Interning keys on (entry, Sym), so two symbols never
// share a row even while their Params coincide.
func (l *lowerStream) cwInstrs(e chip.TableEntry) []isa.Instr {
	idx, ok := l.tableIdx[e]
	if !ok {
		idx = len(l.table)
		l.table = append(l.table, e)
		l.tableIdx[e] = idx
		if e.Sym != "" {
			l.slots = append(l.slots, ParamSlot{Ctrl: l.id, Index: idx, Sym: e.Sym})
		}
	}
	return cwTrigger(idx, uint8(e.Port()))
}

func (l *lowerStream) unit(u unit)  { l.dirs = append(l.dirs, directive{kind: dUnit, u: u}) }
func (l *lowerStream) wait(d int64) { l.dirs = append(l.dirs, directive{kind: dWait, amt: d}) }
func (l *lowerStream) guard(extra int64) {
	l.dirs = append(l.dirs, directive{kind: dGuard, amt: extra})
}
func (l *lowerStream) anchorDir() { l.dirs = append(l.dirs, directive{kind: dAnchor}) }
func (l *lowerStream) sync(tgt int, w int64) {
	l.dirs = append(l.dirs, directive{kind: dSync, target: tgt, window: w})
}

// Lower translates the validated circuit into directive streams.
type Lower struct{}

// Name implements Pass.
func (Lower) Name() string { return "lower" }

// Run implements Pass.
func (Lower) Run(st *State) error {
	c, mapping, fab, opt := st.Circuit, st.Mapping, st.Windows, st.Opt
	if opt.Controllers <= 0 {
		return fmt.Errorf("compiler: no controllers")
	}
	if fab == nil {
		return fmt.Errorf("compiler: no window calibration (nil Windows)")
	}
	ctrlOf := func(q int) int {
		if mapping == nil {
			return q
		}
		return mapping[q]
	}
	for q := 0; q < c.NumQubits; q++ {
		if m := ctrlOf(q); m < 0 || m >= opt.Controllers {
			return fmt.Errorf("compiler: qubit %d maps to controller %d of %d", q, m, opt.Controllers)
		}
	}

	streams := make([]*lowerStream, opt.Controllers)
	for i := range streams {
		streams[i] = newLowerStream(i)
	}
	st.bitOwner = make([]int, c.NumBits)
	st.bitMeasured = make([]bool, c.NumBits)
	for i := range st.bitOwner {
		st.bitOwner[i] = -1
	}
	// Collective lowering state: which controllers hold each bit's value at
	// its home address (the owner after a measure, plus every consumer that
	// re-stored it; see collective.go). The distance metric steers
	// nearest-holder selection and relay-chain ordering, so the topology is
	// a hard requirement when the option is on.
	var holders map[int][]int
	var dist func(int, int) int
	if opt.Collective {
		if st.Topo == nil {
			return fmt.Errorf("compiler: Options.Collective needs the fabric topology (compile via machine, not the Windows-only entry points)")
		}
		holders = map[int][]int{}
		dist = topoDistance(st.Topo)
	}

	barrier := func() {
		for _, s := range streams {
			s.sync(opt.Root, int64(fab.RegionWindow(s.id, opt.Root)))
			st.stats.RegionSyncs++
		}
	}
	if opt.InitialBarrier {
		barrier()
	}

	d := opt.Durations
	for opIdx, op := range c.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			barrier()

		case op.Kind == circuit.Delay:
			streams[ctrlOf(op.Qubits[0])].wait(int64(op.Param))

		case op.Kind == circuit.Measure:
			if op.Cond != nil {
				return fmt.Errorf("compiler: op %d: conditioned measurement unsupported", opIdx)
			}
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := chip.TableEntry{Role: chip.RoleMeasure, Kind: circuit.Measure, Qubit: q, Channel: 0}
			s.guard(1)
			s.unit(unit{ins: s.cwInstrs(entry), det: true})
			// Fetch the result (pipeline blocks until MeasLatency elapses,
			// which re-anchors the timing point past the window) and store
			// it at the bit's home address.
			s.unit(unit{ins: []isa.Instr{{Op: isa.OpFMR, Rd: regScratch, Imm: 0}}})
			s.anchorDir()
			store := append(loadImm(regAddr, int32(4*op.CBit)),
				isa.Instr{Op: isa.OpSW, Rs1: regAddr, Rs2: regScratch})
			s.unit(unit{ins: store, det: true})
			// Timing point already advanced to the result time by the fmr
			// anchor; nothing further to wait for.
			st.bitOwner[op.CBit] = s.id
			st.bitMeasured[op.CBit] = true
			if holders != nil {
				// A re-measure invalidates every stale copy: the owner is
				// the only holder again.
				holders[op.CBit] = []int{s.id}
			}

		case op.Kind == circuit.EPR:
			// Inter-chip EPR-pair generation: both comm qubits co-commit at
			// one synchronized point (the pair is one physical event), the
			// generation occupies them for EPRLatency cycles, and delivery is
			// heralded with an ordinary fabric message from the generating
			// side to its peer — so EPR traffic shares link serialization and
			// congestion accounting with all other classical traffic.
			a, b := op.Qubits[0], op.Qubits[1]
			ca, cb := ctrlOf(a), ctrlOf(b)
			ctrlEntry := chip.TableEntry{Role: chip.RoleControl, Kind: circuit.EPR, Qubit: a, Partner: b}
			partEntry := chip.TableEntry{Role: chip.RoleParticipant, Kind: circuit.EPR, Qubit: b, Partner: a}
			epr := int64(opt.EPRLatency)
			if epr <= 0 {
				epr = d.TwoQubit
			}
			if ca == cb {
				s := streams[ca]
				s.guard(2)
				ins := append(s.cwInstrs(ctrlEntry), s.cwInstrs(partEntry)...)
				s.unit(unit{ins: ins, det: true})
				s.wait(epr)
				break
			}
			sa, sb := streams[ca], streams[cb]
			n := int64(fab.NearbyWindow(ca, cb))
			sa.guard(1)
			sb.guard(1)
			sa.sync(cb, n)
			sb.sync(ca, n)
			st.stats.NearbySyncs += 2
			sa.unit(unit{ins: sa.cwInstrs(ctrlEntry), det: true, window: true})
			sb.unit(unit{ins: sb.cwInstrs(partEntry), det: true, window: true})
			sa.wait(epr)
			sb.wait(epr)
			// Herald: slide-stop send (det: false, like bit forwarding — a
			// later sync must not be booked before it), blocking recv + anchor
			// on the peer.
			herald := append(loadImm(regScratch, 1),
				isa.Instr{Op: isa.OpSEND, Rs1: regScratch, Imm: int32(cb)})
			sa.unit(unit{ins: herald})
			st.stats.Sends++
			sb.unit(unit{ins: []isa.Instr{{Op: isa.OpRECV, Rd: regScratch, Imm: int32(ca)}}})
			sb.anchorDir()
			st.stats.Recvs++

		case op.Cond != nil:
			if op.Kind.IsTwoQubit() {
				return fmt.Errorf("compiler: op %d: conditioned two-qubit gate unsupported", opIdx)
			}
			q := op.Qubits[0]
			actor := ctrlOf(q)
			s := streams[actor]
			for _, b := range op.Cond.Bits {
				if !st.bitMeasured[b] {
					return fmt.Errorf("compiler: op %d uses bit %d before it is measured", opIdx, b)
				}
			}
			if holders != nil {
				st.lowerCondCollective(streams, op, actor, q, holders, dist)
				break
			}
			// Owners forward remote bits at this consumption site. Send units
			// are slide-stops (det: false): a later sync must never be booked
			// before them, because the simulated pipeline parks at a pending
			// sync and a deferred send can deadlock the consumer whose
			// progress that very sync transitively needs.
			for _, b := range op.Cond.Bits {
				owner := st.bitOwner[b]
				if owner == actor {
					continue
				}
				os := streams[owner]
				ins := append(loadImm(regAddr, int32(4*b)),
					isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr},
					isa.Instr{Op: isa.OpSEND, Rs1: regScratch, Imm: int32(actor)})
				os.unit(unit{ins: ins})
				st.stats.Sends++
			}
			// Actor gathers, xors, branches, and conditionally commits. The
			// guard wait inside the branch body depends on the stream's
			// schedule-time instruction count, so the body is assembled by
			// the Schedule pass from the pieces recorded here.
			var pre []isa.Instr
			pre = append(pre, isa.Instr{Op: isa.OpADDI, Rd: regParity}) // r2 = 0
			anchored := false
			for _, b := range op.Cond.Bits {
				if st.bitOwner[b] == actor {
					pre = append(pre, loadImm(regAddr, int32(4*b))...)
					pre = append(pre, isa.Instr{Op: isa.OpLW, Rd: regScratch, Rs1: regAddr})
				} else {
					pre = append(pre, isa.Instr{Op: isa.OpRECV, Rd: regScratch, Imm: int32(st.bitOwner[b])})
					anchored = true
					st.stats.Recvs++
				}
				pre = append(pre, isa.Instr{Op: isa.OpXOR, Rd: regParity, Rs1: regParity, Rs2: regScratch})
			}
			// Branch over the conditional body.
			brOp := isa.OpBEQ // parity==1 required: skip when parity == 0
			if op.Cond.Parity == 0 {
				brOp = isa.OpBNE
			}
			entry := tableEntryFor(op, q, ctrlOf)
			s.dirs = append(s.dirs, directive{kind: dCond, cond: &condSite{
				pre:      pre,
				brOp:     brOp,
				cw:       s.cwInstrs(entry),
				gateWait: gateDur(op, d),
				anchored: anchored,
			}})

		case op.Kind.IsTwoQubit():
			a, b := op.Qubits[0], op.Qubits[1]
			ca, cb := ctrlOf(a), ctrlOf(b)
			ctrlEntry := chip.TableEntry{Role: chip.RoleControl, Kind: op.Kind, Param: op.Param, Qubit: a, Partner: b, Sym: op.Sym}
			partEntry := chip.TableEntry{Role: chip.RoleParticipant, Kind: op.Kind, Param: op.Param, Qubit: b, Partner: a, Sym: op.Sym}
			if ca == cb {
				// Both halves on one node commit at the same timing point.
				s := streams[ca]
				s.guard(2)
				ins := append(s.cwInstrs(ctrlEntry), s.cwInstrs(partEntry)...)
				s.unit(unit{ins: ins, det: true})
				s.wait(d.TwoQubit)
				break
			}
			sa, sb := streams[ca], streams[cb]
			n := int64(fab.NearbyWindow(ca, cb))
			// Guards first so the sync window measured backwards from the
			// commit point is identical (= n) on both sides.
			sa.guard(1)
			sb.guard(1)
			sa.sync(cb, n)
			sb.sync(ca, n)
			st.stats.NearbySyncs += 2
			// The synchronized commit belongs to its sync's window: nothing —
			// in particular no later sync — may be inserted between them, or
			// the parked pipeline would delay the commit past foreign events.
			sa.unit(unit{ins: sa.cwInstrs(ctrlEntry), det: true, window: true})
			sb.unit(unit{ins: sb.cwInstrs(partEntry), det: true, window: true})
			sa.wait(d.TwoQubit)
			sb.wait(d.TwoQubit)

		default: // unconditioned one-qubit gate
			q := op.Qubits[0]
			s := streams[ctrlOf(q)]
			entry := tableEntryFor(op, q, ctrlOf)
			s.guard(1)
			s.unit(unit{ins: s.cwInstrs(entry), det: true})
			s.wait(gateDur(op, d))
		}
	}

	// Collect parameter slots in controller order: a deterministic slot
	// table is part of the artifact (Assemble packages it).
	for _, s := range streams {
		st.paramSlots = append(st.paramSlots, s.slots...)
	}
	st.lowered = streams
	return nil
}
