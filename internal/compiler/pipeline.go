package compiler

import (
	"fmt"

	"dhisq/internal/circuit"
	"dhisq/internal/network"
)

// State is the shared compilation state the passes transform in sequence.
// Callers fill the input fields (Circuit, Mapping, Topo, Windows, Opt);
// each pass reads what its predecessors produced and writes its own
// section. The zero value of every derived field means "not yet computed",
// so a custom pipeline omitting a pass fails loudly rather than silently.
type State struct {
	// Inputs.
	Circuit *circuit.Circuit
	Mapping []int // qubit -> controller; nil lets the Place pass decide
	// Topo is the built fabric topology. Only the Place pass needs it (for
	// mesh distances), and only when a non-identity policy must compute a
	// mapping; window calibration goes through Windows.
	Topo    *network.Topology
	Windows Windows
	Opt     Options

	// Produced by Place when Opt.Chips > 1: the pre-expansion classical-bit
	// count (teleport bits live after it in the expanded circuit).
	PublicBits int

	// Produced by Lower: one directive stream per controller, the bit
	// ownership table, the parameter-slot table (symbolic angles interned
	// into codeword tables), and the lowering-side stats.
	lowered     []*lowerStream
	bitOwner    []int
	bitMeasured []bool
	paramSlots  []ParamSlot

	// Produced by Schedule: the timed unit streams.
	scheduled []*stream

	// Accumulated across passes; Assemble finalizes it into out.Stats.
	stats Stats

	// Produced by Assemble.
	out *Compiled
}

// Pass is one stage of the compilation pipeline. Passes mutate the State
// they are handed; an error aborts the pipeline.
type Pass interface {
	Name() string
	Run(st *State) error
}

// Pipeline is an ordered pass sequence over a State.
type Pipeline struct {
	Passes []Pass
}

// NewPipeline returns the standard four-pass pipeline:
// Place → Lower → Schedule → Assemble.
func NewPipeline() *Pipeline {
	return &Pipeline{Passes: []Pass{Place{}, Lower{}, Schedule{}, Assemble{}}}
}

// Run executes the passes in order and returns the assembled artifact.
// Option normalization (the PipeGuard default the monolithic compiler
// applied) happens once, up front, so every pass sees the same values.
func (p *Pipeline) Run(st *State) (*Compiled, error) {
	if st.Circuit == nil {
		return nil, fmt.Errorf("compiler: nil circuit")
	}
	// Validate before any pass runs: placement policies walk the op list
	// (interaction graphs index bits and qubits), so a malformed circuit
	// must fail here with the validator's error, exactly as the
	// pre-pipeline compiler did, not panic inside a policy.
	if err := st.Circuit.Validate(); err != nil {
		return nil, err
	}
	if st.Opt.PipeGuard <= 0 {
		st.Opt.PipeGuard = 6
	}
	for _, pass := range p.Passes {
		if err := pass.Run(st); err != nil {
			return nil, err
		}
	}
	if st.out == nil {
		return nil, fmt.Errorf("compiler: pipeline %v produced no artifact (missing Assemble?)", p.names())
	}
	return st.out, nil
}

func (p *Pipeline) names() []string {
	out := make([]string, len(p.Passes))
	for i, pass := range p.Passes {
		out[i] = pass.Name()
	}
	return out
}
