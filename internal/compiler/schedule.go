package compiler

import (
	"fmt"

	"dhisq/internal/isa"
)

// Schedule resolves each controller's directive stream into a timed unit
// stream: guard padding so commits never trail the classical pipeline,
// the Fig. 6 backward sync slide (insertSyncBack) against the calibrated
// windows Lower recorded, anchor accounting at blocking fmr/recv points,
// and branch-body assembly for conditioned commits (whose in-branch guard
// wait depends on the instruction count accumulated here).
//
// How the directives are resolved is a pluggable policy, mirroring the
// Place pass: Options.Schedule names a registered SchedulePolicy and the
// pass delegates to it. The "fixed" policy is the legacy replay,
// byte-identical to the pre-registry Schedule pass.
type Schedule struct{}

// Name implements Pass.
func (Schedule) Name() string { return "schedule" }

// Run implements Pass.
func (Schedule) Run(st *State) error {
	if st.lowered == nil {
		return fmt.Errorf("compiler: schedule before lower")
	}
	pol, err := GetSchedule(st.Opt.Schedule)
	if err != nil {
		return err
	}
	return pol.Run(st)
}

// SchedulePolicy resolves a State's lowered directive streams into the
// timed unit streams Assemble concatenates. Policies run after Lower, so
// st.lowered, the interned tables and the option set are all available;
// a policy must fill st.scheduled with one stream per controller.
//
// Policies must be deterministic — the same State input always yields the
// same streams — which is what makes a policy name safe to hash into the
// artifact fingerprint (internal/artifact keyVersion 5).
type SchedulePolicy interface {
	// Name is the registry key ("fixed", "padded").
	Name() string
	// Run resolves st.lowered into st.scheduled.
	Run(st *State) error
}

// DefaultSchedule is the policy an empty name resolves to: the legacy
// fixed replay, guaranteed byte-identical to the pre-registry compiler.
const DefaultSchedule = "fixed"

// schedulePolicies is the fixed registry, in documentation order.
var schedulePolicies = []SchedulePolicy{fixedPolicy{}, paddedPolicy{}}

// ScheduleNames lists the registered scheduling policies in stable order.
func ScheduleNames() []string {
	out := make([]string, len(schedulePolicies))
	for i, p := range schedulePolicies {
		out[i] = p.Name()
	}
	return out
}

// GetSchedule resolves a scheduling policy by name ("" = DefaultSchedule).
// Unknown names error with the valid set, so CLI and API validation share
// one message.
func GetSchedule(name string) (SchedulePolicy, error) {
	if name == "" {
		name = DefaultSchedule
	}
	for _, p := range schedulePolicies {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("compiler: unknown schedule policy %q (want %v)", name, ScheduleNames())
}

// ValidSchedule reports whether name resolves to a registered scheduling
// policy ("" counts — it resolves to DefaultSchedule). The client-side
// check dhisq-sim -serve runs before a submission travels to the daemon.
func ValidSchedule(name string) error {
	_, err := GetSchedule(name)
	return err
}

// fixedPolicy is the legacy schedule: replay every directive in lowering
// order, honoring Options.AdvanceBooking for sync placement. Streams are
// independent — no directive reads another controller's state — so
// replaying them one at a time reproduces the monolithic compiler's
// interleaved emission exactly.
type fixedPolicy struct{}

func (fixedPolicy) Name() string { return "fixed" }

func (fixedPolicy) Run(st *State) error {
	return replayStreams(st, st.Opt.AdvanceBooking)
}

// paddedPolicy replays the directives with advance booking forced off:
// every sync sits immediately before its synchronized instruction with the
// window fully padded — the QubiC-style scheme of §2.1.3 as a selectable
// policy, so the ablation no longer needs a separate option plumbed
// through every layer.
type paddedPolicy struct{}

func (paddedPolicy) Name() string { return "padded" }

func (paddedPolicy) Run(st *State) error {
	return replayStreams(st, false)
}

// replayStreams is the shared directive replay: one timed stream per
// controller, with advance deciding whether sync bookings slide backwards
// (Fig. 6) or pad in place.
func replayStreams(st *State, advance bool) error {
	opt := st.Opt
	st.scheduled = make([]*stream, len(st.lowered))
	for i, l := range st.lowered {
		s := &stream{id: l.id}
		for _, d := range l.dirs {
			switch d.kind {
			case dUnit:
				s.push(d.u)
			case dWait:
				s.wait(d.amt)
			case dGuard:
				s.guard(opt.PipeGuard, d.amt)
			case dAnchor:
				s.anchor()
			case dSync:
				s.insertSyncBack(d.target, d.window, advance)
			case dCond:
				scheduleCond(s, d.cond, opt.PipeGuard)
			default:
				return fmt.Errorf("compiler: controller %d: unknown directive kind %d", l.id, d.kind)
			}
		}
		// The scheduled stream inherits the table interned at lowering time.
		s.table = l.table
		st.scheduled[i] = s
	}
	return nil
}

// scheduleCond assembles a conditioned commit. The in-branch guard wait
// covers every instruction that can retire between the last pipeline
// anchor and the commit; a recv inside the gather sequence re-anchors the
// stream, shrinking the guard to the local instruction count.
func scheduleCond(s *stream, c *condSite, pipeGuard int64) {
	guardAmt := pipeGuard + s.instrSum + int64(len(c.pre)) + 8
	if c.anchored {
		guardAmt = pipeGuard + int64(len(c.pre)) + 8
	}
	body := waitInstrs(guardAmt)
	body = append(body, c.cw...)
	body = append(body, waitInstrs(c.gateWait)...)
	ins := make([]isa.Instr, 0, len(c.pre)+1+len(body))
	ins = append(ins, c.pre...)
	ins = append(ins, isa.Instr{Op: c.brOp, Rs1: regParity, Imm: int32(4 * (len(body) + 1))})
	ins = append(ins, body...)
	s.push(unit{ins: ins})
	if c.anchored {
		s.anchor()
		// The body retires after the anchor; seed the counters so the
		// next guard still covers it.
		s.instrSum = int64(len(body)) + 4
	}
}
