package compiler

import (
	"fmt"

	"dhisq/internal/isa"
)

// Schedule resolves each controller's directive stream into a timed unit
// stream: guard padding so commits never trail the classical pipeline,
// the Fig. 6 backward sync slide (insertSyncBack) against the calibrated
// windows Lower recorded, anchor accounting at blocking fmr/recv points,
// and branch-body assembly for conditioned commits (whose in-branch guard
// wait depends on the instruction count accumulated here).
//
// Streams are independent — no directive reads another controller's state
// — so replaying them one at a time reproduces the monolithic compiler's
// interleaved emission exactly.
type Schedule struct{}

// Name implements Pass.
func (Schedule) Name() string { return "schedule" }

// Run implements Pass.
func (Schedule) Run(st *State) error {
	if st.lowered == nil {
		return fmt.Errorf("compiler: schedule before lower")
	}
	opt := st.Opt
	st.scheduled = make([]*stream, len(st.lowered))
	for i, l := range st.lowered {
		s := &stream{id: l.id}
		for _, d := range l.dirs {
			switch d.kind {
			case dUnit:
				s.push(d.u)
			case dWait:
				s.wait(d.amt)
			case dGuard:
				s.guard(opt.PipeGuard, d.amt)
			case dAnchor:
				s.anchor()
			case dSync:
				s.insertSyncBack(d.target, d.window, opt.AdvanceBooking)
			case dCond:
				scheduleCond(s, d.cond, opt.PipeGuard)
			default:
				return fmt.Errorf("compiler: controller %d: unknown directive kind %d", l.id, d.kind)
			}
		}
		// The scheduled stream inherits the table interned at lowering time.
		s.table = l.table
		st.scheduled[i] = s
	}
	return nil
}

// scheduleCond assembles a conditioned commit. The in-branch guard wait
// covers every instruction that can retire between the last pipeline
// anchor and the commit; a recv inside the gather sequence re-anchors the
// stream, shrinking the guard to the local instruction count.
func scheduleCond(s *stream, c *condSite, pipeGuard int64) {
	guardAmt := pipeGuard + s.instrSum + int64(len(c.pre)) + 8
	if c.anchored {
		guardAmt = pipeGuard + int64(len(c.pre)) + 8
	}
	body := waitInstrs(guardAmt)
	body = append(body, c.cw...)
	body = append(body, waitInstrs(c.gateWait)...)
	ins := make([]isa.Instr, 0, len(c.pre)+1+len(body))
	ins = append(ins, c.pre...)
	ins = append(ins, isa.Instr{Op: c.brOp, Rs1: regParity, Imm: int32(4 * (len(body) + 1))})
	ins = append(ins, body...)
	s.push(unit{ins: ins})
	if c.anchored {
		s.anchor()
		// The body retires after the anchor; seed the counters so the
		// next guard still covers it.
		s.instrSum = int64(len(body)) + 4
	}
}
