package core

import (
	"fmt"

	"dhisq/internal/isa"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// Fabric is the controller's view of the distributed interconnect
// (implemented by internal/network). All times are absolute cycles; the
// fabric is responsible for scheduling deliveries on the engine and for
// knowing the calibrated link latencies that parameterize BISP windows.
type Fabric interface {
	// IsRouter reports whether a sync target address names a router
	// (region-level sync) rather than a neighbor controller.
	IsRouter(addr int) bool
	// NearbyWindow returns the SyncU countdown N for the (src,dst) neighbor
	// pair — the calibrated one-way signal latency of §4.1.
	NearbyWindow(src, dst int) sim.Time
	// RegionWindow returns the booking window N_i for (controller, router):
	// the lead a booking needs for zero-overhead region sync (§4.3).
	RegionWindow(src, router int) sim.Time
	// SendSyncSignal propagates the 1-bit nearby sync signal emitted at
	// cycle `at`; the fabric delivers it to dst with link latency applied.
	SendSyncSignal(src, dst int, at sim.Time)
	// BookRegion sends a region-sync booking carrying earliest start time ti
	// toward the target router, emitted at cycle `at`.
	BookRegion(src, router int, ti, at sim.Time)
	// SendMessage transmits a classical value (MsgU, §3.1.4) emitted at `at`.
	SendMessage(src, dst int, value uint32, at sim.Time)
}

// CWSink receives committed codewords — the digital/analog boundary. The
// quantum chip model (internal/chip) and the pulse-level device models
// (internal/physics) implement it; a nil-safe no-op sink is used for pure
// timing studies.
type CWSink interface {
	Commit(node, port int, cw uint32, at sim.Time)
}

// NopSink discards codewords (timing-only simulations).
type NopSink struct{}

// Commit implements CWSink.
func (NopSink) Commit(int, int, uint32, sim.Time) {}

// Config parameterizes one HISQ core. The defaults mirror the DQCtrl boards
// of §6.1.
type Config struct {
	ID          int // global controller address
	Ports       int // number of codeword queues (28 control board, 8 readout)
	QueueDepth  int // event queue depth (1024 in Table 1)
	MemSize     int // data memory bytes
	BurstBudget int // instructions executed per engine turn
}

// DefaultConfig returns a control-board-like configuration.
func DefaultConfig(id int) Config {
	return Config{ID: id, Ports: 28, QueueDepth: 1024, MemSize: 64 << 10, BurstBudget: 4096}
}

// BlockReason says why a controller's pipeline is stalled.
type BlockReason uint8

const (
	NotBlocked      BlockReason = iota
	BlockRecv                   // recv with empty mailbox
	BlockFMR                    // fmr with no pending measurement result
	BlockSyncNear               // nearby sync awaiting the partner's signal
	BlockSyncRegion             // region sync awaiting the router's time-point broadcast
)

func (b BlockReason) String() string {
	switch b {
	case NotBlocked:
		return "running"
	case BlockRecv:
		return "recv"
	case BlockFMR:
		return "fmr"
	case BlockSyncNear:
		return "sync-near"
	case BlockSyncRegion:
		return "sync-region"
	}
	return "unknown"
}

// Stats aggregates per-controller execution counters.
type Stats struct {
	Instrs     uint64
	Commits    uint64
	Syncs      uint64
	Violations uint64
	StallRecv  sim.Time
	StallFMR   sim.Time
	StallSync  sim.Time
	// StallNet is the total queueing delay the contention-aware fabric
	// charged to this controller's outgoing traffic (zero when the
	// contention model is disabled). Credited by the fabric through
	// AddNetStall, not by the pipeline itself.
	StallNet sim.Time
}

type delivered struct {
	val uint32
	at  sim.Time
}

// fifo is an in-place queue of delivered values: pops advance a head index
// instead of reslicing, so the backing array drains back to [:0] and is
// reused — steady-state message traffic allocates nothing after warm-up.
type fifo struct {
	q    []delivered
	head int
}

func (f *fifo) push(v delivered) { f.q = append(f.q, v) }
func (f *fifo) len() int         { return len(f.q) - f.head }

func (f *fifo) pop() delivered {
	v := f.q[f.head]
	f.head++
	if f.head == len(f.q) {
		f.q, f.head = f.q[:0], 0
	}
	return v
}

func (f *fifo) reset() { f.q, f.head = f.q[:0], 0 }

// growFifos extends qs so index i exists (queues are indexed by dense
// small ids: source controller, result channel, sync neighbor).
func growFifos(qs []fifo, i int) []fifo {
	for len(qs) <= i {
		qs = append(qs, fifo{})
	}
	return qs
}

// Controller is one HISQ core: classical pipeline + TCU + SyncU + MsgU
// (Fig. 3a). It executes an assembled HISQ program against a Fabric and a
// CWSink on a shared simulation engine.
type Controller struct {
	Cfg  Config
	eng  *sim.Engine
	fab  Fabric
	sink CWSink
	log  *telf.Log

	prog *isa.Program
	regs [32]uint32
	mem  []byte
	// memHigh is the store high-water mark: bytes at and beyond it are
	// guaranteed zero (store is the only writer), so Reset clears only
	// [0, memHigh) instead of the whole 64 KB data memory per shot.
	memHigh int
	pc      int

	tc sim.Time // classical pipeline clock (absolute cycles)
	tl timeline // TCU timing manager

	mail    []fifo // MsgU inbox, per source controller
	results []fifo // measurement result FIFOs, per channel
	syncSig []fifo // SyncU per-neighbor signal arrival FIFOs (at only)

	block     BlockReason
	blockOn   int      // peer/channel/router id while blocked
	blockAt   sim.Time // pipeline time when the block began
	pendCondI sim.Time // Condition-I time of an in-flight sync
	inRun     bool

	// Pre-bound event callbacks and the in-flight codeword commit they
	// act on. A controller has at most one commit pending (the pipeline
	// yields until it fires), so binding once at construction removes the
	// two closure allocations execCW used to pay per yielded commit.
	runFn    func()
	commitFn func()
	pendPort int
	pendCW   uint32
	pendCT   sim.Time

	halted bool
	err    error

	Stats Stats
}

// NewController builds a controller bound to the engine, fabric, sink and
// TELF log. Any of fab may be nil only for single-node programs that never
// execute sync/send; sink and log may be nil (replaced by no-ops).
func NewController(eng *sim.Engine, cfg Config, fab Fabric, sink CWSink, log *telf.Log) *Controller {
	if cfg.MemSize <= 0 {
		cfg.MemSize = 64 << 10
	}
	if cfg.BurstBudget <= 0 {
		cfg.BurstBudget = 4096
	}
	if sink == nil {
		sink = NopSink{}
	}
	if log == nil {
		log = telf.NewLog()
	}
	c := &Controller{
		Cfg:  cfg,
		eng:  eng,
		fab:  fab,
		sink: sink,
		log:  log,
		mem:  make([]byte, cfg.MemSize),
	}
	c.runFn = c.run
	c.commitFn = func() {
		c.doCommit()
		c.run()
	}
	return c
}

// Load installs a program and resets execution state (registers, memory,
// clocks, queues are cleared).
func (c *Controller) Load(p *isa.Program) {
	c.prog = p
	c.Reset()
}

// Reset restores the core to its just-loaded state — registers, data
// memory, clocks, mailboxes, result FIFOs, stall state and counters clear,
// while the installed program stays in place. Memory and every queue's
// backing array are reused, not reallocated, so resetting a loaded core is
// cheap; together with Engine.Reset it is what lets a machine re-run the
// same compiled program shot after shot.
func (c *Controller) Reset() {
	c.regs = [32]uint32{}
	clear(c.mem[:c.memHigh])
	c.memHigh = 0
	c.pc = 0
	c.tc = 0
	c.tl.reset()
	for i := range c.mail {
		c.mail[i].reset()
	}
	for i := range c.results {
		c.results[i].reset()
	}
	for i := range c.syncSig {
		c.syncSig[i].reset()
	}
	c.block = NotBlocked
	c.blockOn = 0
	c.blockAt = 0
	c.pendCondI = 0
	c.halted = false
	c.err = nil
	c.Stats = Stats{}
}

// Start schedules the controller's first execution turn at the current
// engine time.
func (c *Controller) Start() {
	c.eng.After(0, sim.PriResume, c.runFn)
}

// Halted reports whether the core has stopped (halt instruction, program
// end, or runtime error).
func (c *Controller) Halted() bool { return c.halted }

// Err returns the runtime error that halted the core, if any.
func (c *Controller) Err() error { return c.err }

// Blocked returns the current pipeline stall reason.
func (c *Controller) Blocked() BlockReason { return c.block }

// PC returns the current program counter (instruction index).
func (c *Controller) PC() int { return c.pc }

// Reg returns the value of GPR n.
func (c *Controller) Reg(n int) uint32 { return c.regs[n&31] }

// EndTime returns the controller-local completion time: the later of the
// pipeline clock and the TCU timing point.
func (c *Controller) EndTime() sim.Time {
	tp := c.tl.Point()
	if c.tc > tp {
		return c.tc
	}
	return tp
}

// Log exposes the TELF log the controller writes to.
func (c *Controller) Log() *telf.Log { return c.log }

// ReadMem copies n bytes of data memory starting at addr (for tests/tools).
func (c *Controller) ReadMem(addr, n int) []byte {
	if addr < 0 || n < 0 || addr+n > len(c.mem) {
		return nil
	}
	out := make([]byte, n)
	copy(out, c.mem[addr:addr+n])
	return out
}

func (c *Controller) fail(format string, args ...any) {
	c.err = fmt.Errorf("core: node %d pc=%d: %s", c.Cfg.ID, c.pc, fmt.Sprintf(format, args...))
	c.haltNow()
}

func (c *Controller) haltNow() {
	c.halted = true
	c.log.Add(telf.Event{Time: c.EndTime(), Node: c.Cfg.ID, Kind: telf.Halt})
}

func (c *Controller) setReg(n uint8, v uint32) {
	if n != 0 {
		c.regs[n] = v
	}
}

// scheduleAt schedules fn no earlier than t; events cannot be scheduled in
// the engine's past, but logical timestamps carried in payloads stay exact.
func (c *Controller) scheduleAt(t sim.Time, pri sim.Priority, fn func()) {
	if now := c.eng.Now(); t < now {
		t = now
	}
	c.eng.At(t, pri, fn)
}

// ---------------------------------------------------------------------------
// Delivery entry points (called by the fabric / chip model via engine events)
// ---------------------------------------------------------------------------

// DeliverMessage appends a classical message from src arriving at cycle
// `arrival` and wakes the pipeline if it is blocked in recv on that source.
func (c *Controller) DeliverMessage(src int, val uint32, arrival sim.Time) {
	c.mail = growFifos(c.mail, src)
	c.mail[src].push(delivered{val: val, at: arrival})
	if c.block == BlockRecv && c.blockOn == src && !c.halted {
		c.block = NotBlocked
		c.run()
	}
}

// DeliverSyncSignal records a nearby-sync 1-bit signal from neighbor src
// (SyncU flag set, §4.1) and completes an in-flight sync if one is waiting.
func (c *Controller) DeliverSyncSignal(src int, arrival sim.Time) {
	c.syncSig = growFifos(c.syncSig, src)
	c.syncSig[src].push(delivered{at: arrival})
	if c.block == BlockSyncNear && c.blockOn == src && !c.halted {
		a := c.syncSig[src].pop().at
		c.block = NotBlocked
		c.finishSync(src, c.pendCondI, a)
		c.run()
	}
}

// DeliverRegionResume completes a region sync: the router's broadcast of the
// common time-point tm arrived at cycle `arrival` (§4.3).
func (c *Controller) DeliverRegionResume(router int, tm, arrival sim.Time) {
	if c.block != BlockSyncRegion || c.blockOn != router || c.halted {
		c.fail("unexpected region-sync resume from router %d", router)
		return
	}
	c.block = NotBlocked
	r := tm
	if arrival > r {
		// The booking window was violated: the notification could not make
		// it back by tm, so this member resumes late (Fig. 7 situation).
		c.log.Add(telf.Event{Time: arrival, Node: c.Cfg.ID, Kind: telf.SyncLate, A: int64(router), B: arrival - tm})
		r = arrival
	}
	c.finishSync(router, c.pendCondI, r)
	c.run()
}

// AddNetStall credits queueing delay the fabric charged to this
// controller's outgoing traffic (contention accounting; the fabric calls
// it at reservation time).
func (c *Controller) AddNetStall(d sim.Time) { c.Stats.StallNet += d }

// PushResult delivers a measurement result for channel ch, available at
// cycle availAt (measurement window + discrimination latency already
// applied by the chip model).
func (c *Controller) PushResult(ch int, val uint32, availAt sim.Time) {
	c.results = growFifos(c.results, ch)
	c.results[ch].push(delivered{val: val, at: availAt})
	if c.block == BlockFMR && c.blockOn == ch && !c.halted {
		c.block = NotBlocked
		c.run()
	}
}

// finishSync applies a resolved synchronization to the TCU timer: pause at
// condI, resume at max(condI, peerTime).
func (c *Controller) finishSync(target int, condI, peer sim.Time) {
	r := condI
	if peer > r {
		r = peer
	}
	c.tl.AddGate(condI, r)
	c.Stats.Syncs++
	if r > condI {
		c.Stats.StallSync += r - condI
	}
	c.log.Add(telf.Event{Time: r, Node: c.Cfg.ID, Kind: telf.SyncDone, A: int64(target), B: r})
	c.pc++ // the sync instruction retires on resolution
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

// run executes instructions until the core halts, blocks, or exhausts its
// burst budget (in which case it reschedules itself so other nodes make
// progress).
func (c *Controller) run() {
	if c.inRun {
		panic("core: reentrant run")
	}
	c.inRun = true
	defer func() { c.inRun = false }()

	if c.prog == nil {
		c.fail("no program loaded")
		return
	}
	for budget := c.Cfg.BurstBudget; !c.halted; budget-- {
		if budget <= 0 {
			c.scheduleAt(c.tc, sim.PriResume, c.runFn)
			return
		}
		if c.pc < 0 || c.pc >= len(c.prog.Instrs) {
			c.haltNow() // running off the end is a clean stop
			return
		}
		if !c.step() {
			return // blocked or yielded; a future event resumes us
		}
	}
}

// step executes the instruction at pc. It returns false when the pipeline
// must yield (blocked on an external event or a scheduled commit).
func (c *Controller) step() bool {
	in := c.prog.Instrs[c.pc]
	c.Stats.Instrs++
	switch in.Op {
	case isa.OpRECV:
		src := int(in.Imm)
		if src >= len(c.mail) || c.mail[src].len() == 0 {
			c.block, c.blockOn, c.blockAt = BlockRecv, src, c.tc
			return false
		}
		m := c.mail[src].pop()
		c.tc++
		if m.at > c.tc {
			c.Stats.StallRecv += m.at - c.tc
			c.tc = m.at
		}
		c.tl.AnchorAt(c.tc) // §3.2: the timer resumes at the trigger
		c.setReg(in.Rd, m.val)
		c.log.Add(telf.Event{Time: c.tc, Node: c.Cfg.ID, Kind: telf.MsgRecv, A: int64(src), B: int64(m.val)})
		c.pc++
	case isa.OpFMR:
		ch := int(in.Imm)
		if ch >= len(c.results) || c.results[ch].len() == 0 {
			c.block, c.blockOn, c.blockAt = BlockFMR, ch, c.tc
			return false
		}
		m := c.results[ch].pop()
		c.tc++
		if m.at > c.tc {
			c.Stats.StallFMR += m.at - c.tc
			c.tc = m.at
		}
		c.tl.AnchorAt(c.tc) // §3.2: the timer resumes at the trigger
		c.setReg(in.Rd, m.val)
		c.log.Add(telf.Event{Time: c.tc, Node: c.Cfg.ID, Kind: telf.MeasResult, A: int64(ch), B: int64(m.val)})
		c.pc++
	case isa.OpSEND:
		c.tc++
		dst := int(in.Imm)
		val := c.regs[in.Rs1]
		// The MsgU issues in TCU order: a send cannot leave before the wall
		// clock of the controller's last resume point, even though the
		// classical pipeline may have run ahead during a TCU stall. This
		// keeps every delivery in global timestamp order (conservative
		// modeling decision; see DESIGN.md §2).
		at := c.tc
		if now := c.eng.Now(); now > at {
			at = now
		}
		c.log.Add(telf.Event{Time: at, Node: c.Cfg.ID, Kind: telf.MsgSend, A: int64(dst), B: int64(val)})
		c.fab.SendMessage(c.Cfg.ID, dst, val, at)
		c.pc++
	case isa.OpSYNC:
		return c.execSync(int(in.Imm))
	case isa.OpWAITI:
		c.tc++
		c.tl.Advance(sim.Time(in.Imm))
		c.pc++
	case isa.OpWAITR:
		c.tc++
		c.tl.Advance(sim.Time(c.regs[in.Rs1]))
		c.pc++
	case isa.OpCWII, isa.OpCWIR, isa.OpCWRI, isa.OpCWRR:
		return c.execCW(in)
	case isa.OpHALT:
		c.tc++
		c.haltNow()
		return false
	default:
		c.tc++
		if !c.execClassical(in) {
			return false // runtime error; fail() already halted us
		}
	}
	return !c.halted
}

// execCW commits a codeword trigger: "send codeword, to port, at the current
// timing point" (§3.1.2). If the commit time is in the engine's future the
// pipeline yields until then so that all chip-model commits arrive in global
// time order.
func (c *Controller) execCW(in isa.Instr) bool {
	c.tc++
	var port int
	var cw uint32
	switch in.Op {
	case isa.OpCWII:
		port, cw = int(in.Rd), uint32(in.Imm)
	case isa.OpCWIR:
		port, cw = int(in.Rd), c.regs[in.Rs1]
	case isa.OpCWRI:
		port, cw = int(c.regs[in.Rs1]), uint32(in.Imm)
	case isa.OpCWRR:
		port, cw = int(c.regs[in.Rs1]), c.regs[in.Rs2]
	}
	if c.Cfg.Ports > 0 && (port < 0 || port >= c.Cfg.Ports) {
		c.fail("cw to port %d but board has %d ports", port, c.Cfg.Ports)
		return false
	}
	ct := c.tl.Point()
	if c.tc > ct {
		// The pipeline fell behind the timing point: the event commits late.
		c.Stats.Violations++
		c.log.Add(telf.Event{Time: c.tc, Node: c.Cfg.ID, Kind: telf.Violation, A: int64(port), B: c.tc - ct})
		ct = c.tc
	}
	c.Stats.Commits++
	c.pc++
	c.pendPort, c.pendCW, c.pendCT = port, cw, ct
	if ct > c.eng.Now() {
		c.eng.At(ct, sim.PriResume, c.commitFn)
		return false
	}
	c.doCommit()
	return true
}

// doCommit delivers the pending codeword commit to the sink. The pending
// fields are stable until the commit fires: execCW yields the pipeline
// whenever the commit is deferred, so no second commit can overwrite them.
func (c *Controller) doCommit() {
	c.sink.Commit(c.Cfg.ID, c.pendPort, c.pendCW, c.pendCT)
	c.log.Add(telf.Event{Time: c.pendCT, Node: c.Cfg.ID, Kind: telf.CWCommit, A: int64(c.pendCW), B: int64(c.pendPort)})
}

// execSync books a synchronization (BISP §4.1/§4.3). The booking time is the
// sync event's position in the timed stream, or the pipeline clock if the
// pipeline is running behind it.
func (c *Controller) execSync(tgt int) bool {
	if c.fab == nil {
		c.fail("sync %d with no fabric attached", tgt)
		return false
	}
	c.tc++
	bEff := c.tl.Point()
	if c.tc > bEff {
		// Late booking: the pipeline delivered the sync event after its
		// scheduled position. The TCU processes it now, and — as with any
		// queue-based timing control — subsequent events cannot commit
		// before the event that precedes them was enqueued, so the timing
		// point re-anchors here. This keeps Condition I exactly N cycles
		// before the synchronized commit, preserving co-commitment.
		bEff = c.tc
		c.tl.AnchorAt(bEff)
	}
	if c.fab.IsRouter(tgt) {
		n := c.fab.RegionWindow(c.Cfg.ID, tgt)
		ti := bEff + n
		c.log.Add(telf.Event{Time: bEff, Node: c.Cfg.ID, Kind: telf.SyncBook, A: int64(tgt), B: ti})
		c.fab.BookRegion(c.Cfg.ID, tgt, ti, bEff)
		c.block, c.blockOn, c.blockAt = BlockSyncRegion, tgt, c.tc
		c.pendCondI = ti
		return false
	}
	n := c.fab.NearbyWindow(c.Cfg.ID, tgt)
	condI := bEff + n
	c.log.Add(telf.Event{Time: bEff, Node: c.Cfg.ID, Kind: telf.SyncBook, A: int64(tgt), B: condI})
	c.fab.SendSyncSignal(c.Cfg.ID, tgt, bEff)
	if tgt < len(c.syncSig) && c.syncSig[tgt].len() > 0 {
		a := c.syncSig[tgt].pop().at
		c.finishSync(tgt, condI, a)
		return true
	}
	c.block, c.blockOn, c.blockAt = BlockSyncNear, tgt, c.tc
	c.pendCondI = condI
	return false
}

// execClassical retires one RV32I instruction. Returns false on a runtime
// error (already reported through fail).
func (c *Controller) execClassical(in isa.Instr) bool {
	r := &c.regs
	switch in.Op {
	case isa.OpLUI:
		c.setReg(in.Rd, uint32(in.Imm)<<12)
	case isa.OpAUIPC:
		c.setReg(in.Rd, uint32(c.pc*4)+uint32(in.Imm)<<12)
	case isa.OpJAL:
		c.setReg(in.Rd, uint32((c.pc+1)*4))
		c.pc += int(in.Imm / 4)
		return true
	case isa.OpJALR:
		t := (r[in.Rs1] + uint32(in.Imm)) &^ 1
		c.setReg(in.Rd, uint32((c.pc+1)*4))
		c.pc = int(t / 4)
		return true
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		if c.branchTaken(in) {
			c.pc += int(in.Imm / 4)
			return true
		}
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		v, ok := c.load(in)
		if !ok {
			return false
		}
		c.setReg(in.Rd, v)
	case isa.OpSB, isa.OpSH, isa.OpSW:
		if !c.store(in) {
			return false
		}
	case isa.OpADDI:
		c.setReg(in.Rd, r[in.Rs1]+uint32(in.Imm))
	case isa.OpSLTI:
		c.setReg(in.Rd, boolToU32(int32(r[in.Rs1]) < in.Imm))
	case isa.OpSLTIU:
		c.setReg(in.Rd, boolToU32(r[in.Rs1] < uint32(in.Imm)))
	case isa.OpXORI:
		c.setReg(in.Rd, r[in.Rs1]^uint32(in.Imm))
	case isa.OpORI:
		c.setReg(in.Rd, r[in.Rs1]|uint32(in.Imm))
	case isa.OpANDI:
		c.setReg(in.Rd, r[in.Rs1]&uint32(in.Imm))
	case isa.OpSLLI:
		c.setReg(in.Rd, r[in.Rs1]<<uint(in.Imm&31))
	case isa.OpSRLI:
		c.setReg(in.Rd, r[in.Rs1]>>uint(in.Imm&31))
	case isa.OpSRAI:
		c.setReg(in.Rd, uint32(int32(r[in.Rs1])>>uint(in.Imm&31)))
	case isa.OpADD:
		c.setReg(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.OpSUB:
		c.setReg(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.OpSLL:
		c.setReg(in.Rd, r[in.Rs1]<<(r[in.Rs2]&31))
	case isa.OpSLT:
		c.setReg(in.Rd, boolToU32(int32(r[in.Rs1]) < int32(r[in.Rs2])))
	case isa.OpSLTU:
		c.setReg(in.Rd, boolToU32(r[in.Rs1] < r[in.Rs2]))
	case isa.OpXOR:
		c.setReg(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.OpSRL:
		c.setReg(in.Rd, r[in.Rs1]>>(r[in.Rs2]&31))
	case isa.OpSRA:
		c.setReg(in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)))
	case isa.OpOR:
		c.setReg(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.OpAND:
		c.setReg(in.Rd, r[in.Rs1]&r[in.Rs2])
	default:
		c.fail("unexecutable op %s", in.Op)
		return false
	}
	c.pc++
	return true
}

func (c *Controller) branchTaken(in isa.Instr) bool {
	a, b := c.regs[in.Rs1], c.regs[in.Rs2]
	switch in.Op {
	case isa.OpBEQ:
		return a == b
	case isa.OpBNE:
		return a != b
	case isa.OpBLT:
		return int32(a) < int32(b)
	case isa.OpBGE:
		return int32(a) >= int32(b)
	case isa.OpBLTU:
		return a < b
	case isa.OpBGEU:
		return a >= b
	}
	return false
}

func (c *Controller) load(in isa.Instr) (uint32, bool) {
	addr := int(int32(c.regs[in.Rs1]) + in.Imm)
	var size int
	switch in.Op {
	case isa.OpLB, isa.OpLBU:
		size = 1
	case isa.OpLH, isa.OpLHU:
		size = 2
	default:
		size = 4
	}
	if addr < 0 || addr+size > len(c.mem) {
		c.fail("load out of bounds: addr=%d size=%d", addr, size)
		return 0, false
	}
	var v uint32
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint32(c.mem[addr+i])
	}
	switch in.Op {
	case isa.OpLB:
		v = uint32(int32(v<<24) >> 24)
	case isa.OpLH:
		v = uint32(int32(v<<16) >> 16)
	}
	return v, true
}

func (c *Controller) store(in isa.Instr) bool {
	addr := int(int32(c.regs[in.Rs1]) + in.Imm)
	var size int
	switch in.Op {
	case isa.OpSB:
		size = 1
	case isa.OpSH:
		size = 2
	default:
		size = 4
	}
	if addr < 0 || addr+size > len(c.mem) {
		c.fail("store out of bounds: addr=%d size=%d", addr, size)
		return false
	}
	if end := addr + size; end > c.memHigh {
		c.memHigh = end
	}
	v := c.regs[in.Rs2]
	for i := 0; i < size; i++ {
		c.mem[addr+i] = byte(v)
		v >>= 8
	}
	return true
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
