package core_test

import (
	"testing"

	"dhisq/internal/core"
	"dhisq/internal/isa"
	"dhisq/internal/sim"
	"dhisq/internal/telf"
)

// stubFabric wires two controllers back-to-back with a fixed-latency link —
// the minimal fabric for exercising nearby BISP sync and messaging.
type stubFabric struct {
	eng     *sim.Engine
	ctrl    map[int]*core.Controller
	latency sim.Time
}

func newStubFabric(eng *sim.Engine, latency sim.Time) *stubFabric {
	return &stubFabric{eng: eng, ctrl: map[int]*core.Controller{}, latency: latency}
}

func (f *stubFabric) IsRouter(addr int) bool                { return false }
func (f *stubFabric) NearbyWindow(src, dst int) sim.Time    { return f.latency }
func (f *stubFabric) RegionWindow(src, router int) sim.Time { return f.latency }
func (f *stubFabric) SendSyncSignal(src, dst int, at sim.Time) {
	arrival := at + f.latency
	t := arrival
	if now := f.eng.Now(); t < now {
		t = now
	}
	f.eng.At(t, sim.PriDeliver, func() { f.ctrl[dst].DeliverSyncSignal(src, arrival) })
}
func (f *stubFabric) BookRegion(src, router int, ti, at sim.Time) {}
func (f *stubFabric) SendMessage(src, dst int, value uint32, at sim.Time) {
	arrival := at + f.latency
	t := arrival
	if now := f.eng.Now(); t < now {
		t = now
	}
	f.eng.At(t, sim.PriDeliver, func() { f.ctrl[dst].DeliverMessage(src, value, arrival) })
}

// collectSink records commits.
type collectSink struct {
	commits []commitRec
}

type commitRec struct {
	node, port int
	cw         uint32
	at         sim.Time
}

func (s *collectSink) Commit(node, port int, cw uint32, at sim.Time) {
	s.commits = append(s.commits, commitRec{node, port, cw, at})
}

func runProgram(t *testing.T, src string) (*core.Controller, *collectSink, *telf.Log) {
	t.Helper()
	eng := sim.NewEngine()
	fab := newStubFabric(eng, 2)
	sink := &collectSink{}
	log := telf.NewLog()
	c := core.NewController(eng, core.DefaultConfig(0), fab, sink, log)
	fab.ctrl[0] = c
	c.Load(isa.MustAssemble(src))
	c.Start()
	eng.Run(0)
	if c.Err() != nil {
		t.Fatalf("controller error: %v", c.Err())
	}
	return c, sink, log
}

func TestClassicalArithmetic(t *testing.T) {
	c, _, _ := runProgram(t, `
		addi $1, $0, 10
		addi $2, $0, 3
		add  $3, $1, $2
		sub  $4, $1, $2
		xor  $5, $1, $2
		slli $6, $1, 2
		srai $7, $1, 1
		slt  $8, $2, $1
		sltu $9, $1, $2
		halt
	`)
	checks := map[int]uint32{3: 13, 4: 7, 5: 9, 6: 40, 7: 5, 8: 1, 9: 0}
	for reg, want := range checks {
		if got := c.Reg(reg); got != want {
			t.Errorf("$%d = %d, want %d", reg, got, want)
		}
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	c, _, _ := runProgram(t, "addi $0, $0, 55\nhalt")
	if c.Reg(0) != 0 {
		t.Fatalf("$0 = %d, want 0", c.Reg(0))
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c, _, _ := runProgram(t, `
		li   $1, 0x1234
		addi $2, $0, 100
		sw   $1, 0($2)
		lw   $3, 0($2)
		lb   $4, 0($2)
		lh   $5, 0($2)
		sb   $1, 8($2)
		lbu  $6, 8($2)
		halt
	`)
	if got := c.Reg(3); got != 0x1234 {
		t.Errorf("lw = %#x", got)
	}
	if got := c.Reg(4); got != 0x34 {
		t.Errorf("lb = %#x", got)
	}
	if got := c.Reg(5); got != 0x1234 {
		t.Errorf("lh = %#x", got)
	}
	if got := c.Reg(6); got != 0x34 {
		t.Errorf("lbu = %#x", got)
	}
}

func TestSignExtensionOnLoads(t *testing.T) {
	c, _, _ := runProgram(t, `
		li  $1, -2
		sw  $1, 0($0)
		lb  $2, 0($0)
		lbu $3, 0($0)
		lh  $4, 0($0)
		lhu $5, 0($0)
		halt
	`)
	if int32(c.Reg(2)) != -2 {
		t.Errorf("lb = %d, want -2", int32(c.Reg(2)))
	}
	if c.Reg(3) != 0xFE {
		t.Errorf("lbu = %#x, want 0xFE", c.Reg(3))
	}
	if int32(c.Reg(4)) != -2 {
		t.Errorf("lh = %d, want -2", int32(c.Reg(4)))
	}
	if c.Reg(5) != 0xFFFE {
		t.Errorf("lhu = %#x, want 0xFFFE", c.Reg(5))
	}
}

func TestBranchLoop(t *testing.T) {
	c, _, _ := runProgram(t, `
		li $1, 0
		li $2, 10
	loop:
		addi $1, $1, 1
		bne $1, $2, loop
		halt
	`)
	if got := c.Reg(1); got != 10 {
		t.Fatalf("$1 = %d, want 10", got)
	}
}

func TestJalLinksAndJalrReturns(t *testing.T) {
	c, _, _ := runProgram(t, `
		jal $1, sub      # call
		addi $3, $0, 7   # executed after return
		halt
	sub:
		addi $2, $0, 42
		jalr $0, $1, 0   # return
	`)
	if c.Reg(2) != 42 || c.Reg(3) != 7 {
		t.Fatalf("$2=%d $3=%d, want 42,7", c.Reg(2), c.Reg(3))
	}
}

func TestMemoryOutOfBoundsHalts(t *testing.T) {
	eng := sim.NewEngine()
	c := core.NewController(eng, core.DefaultConfig(0), newStubFabric(eng, 1), nil, nil)
	c.Load(isa.MustAssemble("li $1, -4\nlw $2, 0($1)\nhalt"))
	c.Start()
	eng.Run(0)
	if c.Err() == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestWaitAndCommitTiming(t *testing.T) {
	// Timing-point algebra: the classical setup instructions do not delay
	// commits; waits define exact commit cycles.
	_, sink, _ := runProgram(t, `
		addi $1, $0, 5    # pipeline cycle 1
		waiti 10          # timing point 10
		cw.i.i 3, 7       # commits at 10
		waiti 20          # timing point 30
		cw.i.i 4, 9       # commits at 30
		cw.i.i 5, 1       # same point: commits at 30
		halt
	`)
	if len(sink.commits) != 3 {
		t.Fatalf("commits = %d, want 3", len(sink.commits))
	}
	if sink.commits[0].at != 10 || sink.commits[0].port != 3 || sink.commits[0].cw != 7 {
		t.Errorf("commit 0 = %+v", sink.commits[0])
	}
	if sink.commits[1].at != 30 {
		t.Errorf("commit 1 at %d, want 30", sink.commits[1].at)
	}
	if sink.commits[2].at != 30 || sink.commits[2].port != 5 {
		t.Errorf("commit 2 = %+v", sink.commits[2])
	}
}

func TestTimingViolationFlagged(t *testing.T) {
	// 20 classical instructions before a cw scheduled at cycle 2: the
	// pipeline (1 instr/cycle) cannot make it; the commit slips and the
	// violation is logged.
	src := "waiti 2\n"
	for i := 0; i < 20; i++ {
		src += "addi $1, $1, 1\n"
	}
	src += "cw.i.i 1, 1\nhalt"
	c, sink, log := runProgram(t, src)
	if log.Count(telf.Violation) != 1 {
		t.Fatalf("violations = %d, want 1", log.Count(telf.Violation))
	}
	if c.Stats.Violations != 1 {
		t.Fatalf("stats violations = %d", c.Stats.Violations)
	}
	if sink.commits[0].at <= 2 {
		t.Fatalf("late commit at %d, should slip past 2", sink.commits[0].at)
	}
}

func TestWaitrUsesRegister(t *testing.T) {
	_, sink, _ := runProgram(t, `
		li $1, 120
		waitr $1
		cw.i.i 2, 2
		halt
	`)
	if sink.commits[0].at != 120 {
		t.Fatalf("commit at %d, want 120", sink.commits[0].at)
	}
}

// twoControllers runs srcA on node 0 and srcB on node 1 over a latency-L
// stub link and returns both controllers plus the shared sink.
func twoControllers(t *testing.T, srcA, srcB string, latency sim.Time) (*core.Controller, *core.Controller, *collectSink) {
	t.Helper()
	eng := sim.NewEngine()
	fab := newStubFabric(eng, latency)
	sink := &collectSink{}
	log := telf.NewLog()
	a := core.NewController(eng, core.DefaultConfig(0), fab, sink, log)
	b := core.NewController(eng, core.DefaultConfig(1), fab, sink, log)
	fab.ctrl[0], fab.ctrl[1] = a, b
	a.Load(isa.MustAssemble(srcA))
	b.Load(isa.MustAssemble(srcB))
	a.Start()
	b.Start()
	eng.Run(0)
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("errors: a=%v b=%v", a.Err(), b.Err())
	}
	return a, b, sink
}

func commitsOf(s *collectSink, node int) []commitRec {
	var out []commitRec
	for _, c := range s.commits {
		if c.node == node {
			out = append(out, c)
		}
	}
	return out
}

func TestNearbySyncZeroOverhead(t *testing.T) {
	// Fig. 5(a): both controllers book L cycles before their earliest start;
	// the synchronous task commits at max(T0, T1) on both — zero overhead.
	// Node 0 earliest start: booking at 10 + window 2 = 12... then both
	// commit 8 cycles after resume.
	const L = 2
	a, b, sink := twoControllers(t,
		`waiti 10
		 sync 1
		 waiti 8
		 cw.i.i 1, 1
		 halt`,
		`waiti 30
		 sync 0
		 waiti 8
		 cw.i.i 1, 2
		 halt`, L)
	ca, cb := commitsOf(sink, 0), commitsOf(sink, 1)
	if len(ca) != 1 || len(cb) != 1 {
		t.Fatalf("commits: %d, %d", len(ca), len(cb))
	}
	// Booking times 10 and 30. The paused timer resumes where it left off,
	// so both synchronous tasks commit at max(B0,B1) + 8 = 38 — the same
	// wall cycle, anchored by the later booking (zero overhead for it).
	if ca[0].at != 38 || cb[0].at != 38 {
		t.Fatalf("commits at %d and %d, want both 38", ca[0].at, cb[0].at)
	}
	// The slower node (later booking) pauses zero cycles.
	if b.Stats.StallSync != 0 {
		t.Fatalf("late node stalled %d cycles, want 0", b.Stats.StallSync)
	}
	if a.Stats.StallSync != 20 {
		t.Fatalf("early node stalled %d cycles, want 20", a.Stats.StallSync)
	}
}

func TestNearbySyncSymmetric(t *testing.T) {
	// Swapping which controller books first must not change the common
	// resume time (§4.2: "If we swap C0 and C1 ... both controllers still
	// begin executing the synchronous task at the same time").
	progA := "waiti 30\nsync 1\nwaiti 8\ncw.i.i 1,1\nhalt"
	progB := "waiti 10\nsync 0\nwaiti 8\ncw.i.i 1,2\nhalt"
	_, _, sink := twoControllers(t, progA, progB, 2)
	ca, cb := commitsOf(sink, 0), commitsOf(sink, 1)
	if ca[0].at != cb[0].at {
		t.Fatalf("commits misaligned: %d vs %d", ca[0].at, cb[0].at)
	}
	if ca[0].at != 38 {
		t.Fatalf("commit at %d, want 38", ca[0].at)
	}
}

func TestNearbySyncBothSameTime(t *testing.T) {
	prog := func(other int) string {
		return `waiti 10
sync ` + string(rune('0'+other)) + `
waiti 8
cw.i.i 1, 1
halt`
	}
	_, _, sink := twoControllers(t, prog(1), prog(0), 3)
	ca, cb := commitsOf(sink, 0), commitsOf(sink, 1)
	// Both book at 10; signals arrive exactly at Condition I (cycle 13), so
	// neither timer pauses: true zero-overhead case, commits at 10+8=18.
	if ca[0].at != 18 || cb[0].at != 18 {
		t.Fatalf("commits at %d, %d want 18", ca[0].at, cb[0].at)
	}
}

func TestRepeatedSyncsPairInOrder(t *testing.T) {
	// Two sequential syncs: flags queue per neighbor and pair FIFO (§4.1,
	// "stacked boxes for each neighbor ... cleared after being read").
	progA := `waiti 10
sync 1
waiti 10
cw.i.i 1,1
sync 1
waiti 5
cw.i.i 1,2
halt`
	progB := `waiti 40
sync 0
waiti 10
cw.i.i 1,1
sync 0
waiti 5
cw.i.i 1,2
halt`
	_, _, sink := twoControllers(t, progA, progB, 2)
	ca, cb := commitsOf(sink, 0), commitsOf(sink, 1)
	if len(ca) != 2 || len(cb) != 2 {
		t.Fatalf("commits %d,%d want 2,2", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].at != cb[i].at {
			t.Fatalf("pair %d misaligned: %d vs %d", i, ca[i].at, cb[i].at)
		}
	}
	if !(ca[1].at > ca[0].at) {
		t.Fatalf("second sync commit %d not after first %d", ca[1].at, ca[0].at)
	}
}

func TestSendRecvFeedback(t *testing.T) {
	// Node 0 computes a value and sends it; node 1 blocks in recv, then
	// branches on it (a feedback skeleton).
	a, b, _ := twoControllers(t,
		`addi $1, $0, 1
		 send $1, 1
		 halt`,
		`recv $2, 0
		 beq $2, $0, skip
		 addi $3, $0, 77
	skip:
		 halt`, 5)
	_ = a
	if b.Reg(3) != 77 {
		t.Fatalf("conditional path not taken: $3 = %d", b.Reg(3))
	}
	if b.Stats.StallRecv == 0 {
		t.Fatal("receiver should have stalled waiting for the message")
	}
}

func TestRecvOrderIsFIFO(t *testing.T) {
	_, b, _ := twoControllers(t,
		`addi $1, $0, 11
		 send $1, 1
		 addi $1, $0, 22
		 send $1, 1
		 halt`,
		`recv $2, 0
		 recv $3, 0
		 halt`, 3)
	if b.Reg(2) != 11 || b.Reg(3) != 22 {
		t.Fatalf("got %d,%d want 11,22", b.Reg(2), b.Reg(3))
	}
}

func TestFMRBlocksUntilResult(t *testing.T) {
	eng := sim.NewEngine()
	fab := newStubFabric(eng, 1)
	c := core.NewController(eng, core.DefaultConfig(0), fab, nil, nil)
	fab.ctrl[0] = c
	c.Load(isa.MustAssemble("fmr $1, 3\nhalt"))
	c.Start()
	// Result arrives on channel 3 at cycle 100.
	eng.At(100, sim.PriDeliver, func() { c.PushResult(3, 1, 100) })
	eng.Run(0)
	if !c.Halted() {
		t.Fatalf("controller stuck: %v", c.Blocked())
	}
	if c.Reg(1) != 1 {
		t.Fatalf("$1 = %d, want 1", c.Reg(1))
	}
	if c.Stats.StallFMR == 0 {
		t.Fatal("expected fmr stall")
	}
}

func TestHaltStopsExecution(t *testing.T) {
	c, sink, _ := runProgram(t, "cw.i.i 1,1\nhalt\ncw.i.i 1,2")
	if !c.Halted() {
		t.Fatal("not halted")
	}
	if len(sink.commits) != 1 {
		t.Fatalf("instructions after halt executed: %d commits", len(sink.commits))
	}
}

func TestRunOffEndHaltsCleanly(t *testing.T) {
	c, _, _ := runProgram(t, "addi $1, $0, 4")
	if !c.Halted() || c.Err() != nil {
		t.Fatalf("halted=%v err=%v", c.Halted(), c.Err())
	}
}

func TestBurstBudgetYieldsFairly(t *testing.T) {
	// A long classical loop must not starve the other controller: both
	// finish even though node 0 runs 50k instructions.
	a, b, _ := twoControllers(t,
		`li $2, 25000
	loop:
		addi $1, $1, 1
		bne $1, $2, loop
		halt`,
		`addi $1, $0, 1
		halt`, 1)
	if !a.Halted() || !b.Halted() {
		t.Fatal("starvation: not all controllers finished")
	}
	if a.Reg(1) != 25000 {
		t.Fatalf("$1 = %d", a.Reg(1))
	}
}

func TestDeadlineStopsInfiniteProgram(t *testing.T) {
	eng := sim.NewEngine()
	fab := newStubFabric(eng, 1)
	c := core.NewController(eng, core.DefaultConfig(0), fab, nil, nil)
	fab.ctrl[0] = c
	// Fig. 12-style endless outer loop.
	c.Load(isa.MustAssemble("loop:\nwaiti 10\ncw.i.i 1,1\njal $0,loop"))
	c.Start()
	eng.RunUntil(10_000)
	if c.Halted() {
		t.Fatal("infinite loop halted unexpectedly")
	}
	if c.Stats.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestStatsCounting(t *testing.T) {
	c, _, _ := runProgram(t, `
		addi $1, $0, 1
		waiti 4
		cw.i.i 1, 1
		cw.i.i 2, 1
		halt
	`)
	if c.Stats.Commits != 2 {
		t.Fatalf("commits = %d", c.Stats.Commits)
	}
	if c.Stats.Instrs < 5 {
		t.Fatalf("instrs = %d", c.Stats.Instrs)
	}
}
